// Production-grid comparison (paper Fig. 2 vs Fig. 4): run the same mixed
// workload against (a) the classic deployment — a GRAM gatekeeper and a
// separate GRIS, two ports, two protocols — and (b) a single InfoGram
// endpoint, printing the connection/handshake/byte accounting for both.
//
//   ./build/examples/production_grid
#include <cstdio>

#include "core/infogram_client.hpp"
#include "grid/virtual_organization.hpp"
#include "mds/filter.hpp"
#include "mds/service.hpp"

using namespace ig;  // NOLINT: example brevity

namespace {

void print_stats(const char* label, const net::TrafficStats& stats) {
  std::printf("  %-22s connects=%llu  round_trips=%llu  bytes=%llu  virtual=%.2fms\n",
              label, static_cast<unsigned long long>(stats.connects),
              static_cast<unsigned long long>(stats.requests),
              static_cast<unsigned long long>(stats.bytes_sent + stats.bytes_received),
              static_cast<double>(stats.virtual_time.count()) / 1000.0);
}

}  // namespace

int main() {
  VirtualClock clock(seconds(1000));
  net::Network network;
  grid::VirtualOrganization vo("production", network, clock, 2026);
  auto alice = vo.enroll_user("alice", "alice");

  grid::ResourceOptions options;
  options.host = "compute.production";
  options.run_infogram = true;
  options.run_gram = true;
  options.run_mds = true;
  auto resource = vo.add_resource(options);
  if (!resource.ok()) {
    std::fprintf(stderr, "resource: %s\n", resource.error().to_string().c_str());
    return 1;
  }

  constexpr int kRounds = 10;
  std::printf("Workload: %d rounds of (query CPULoad, submit echo job, poll result)\n\n",
              kRounds);

  // ---------- Fig. 2: GRAM + MDS, two services, two protocols ----------
  {
    gram::GramClient gram_client(network, (*resource)->gram_address(), alice, vo.trust(),
                                 clock);
    mds::MdsClient mds_client(network, (*resource)->mds_address(), alice, vo.trust(),
                              clock);
    auto filter = mds::Filter::parse("(kw=CPULoad)").value();
    for (int i = 0; i < kRounds; ++i) {
      auto entries = mds_client.search("o=Grid", mds::Scope::kSubtree, filter);
      if (!entries.ok()) return 1;
      auto contact = gram_client.submit("&(executable=/bin/echo)(arguments=classic)");
      if (!contact.ok()) return 1;
      if (!gram_client.wait(*contact, seconds(30)).ok()) return 1;
      clock.advance(ms(500));
    }
    std::printf("Fig. 2 deployment (separate GRAM + MDS):\n");
    print_stats("GRAM client", gram_client.stats());
    print_stats("MDS client", mds_client.stats());
    net::TrafficStats total = gram_client.stats();
    total.merge(mds_client.stats());
    print_stats("TOTAL", total);
  }

  // ---------- Fig. 4: one InfoGram endpoint ----------
  {
    core::InfoGramClient client(network, (*resource)->infogram_address(), alice,
                                vo.trust(), clock);
    for (int i = 0; i < kRounds; ++i) {
      // The combined request: info query AND job submission, one round trip.
      auto resp = client.request(
          "&(executable=/bin/echo)(arguments=unified)(info=CPULoad)(response=cached)");
      if (!resp.ok() || !resp->job_contact) return 1;
      if (!client.wait(*resp->job_contact, seconds(30)).ok()) return 1;
      clock.advance(ms(500));
    }
    std::printf("\nFig. 4 deployment (unified InfoGram):\n");
    print_stats("InfoGram client", client.stats());
  }

  std::printf(
      "\nThe InfoGram deployment needs one port, one protocol, one security\n"
      "handshake; the classic deployment pays for two of each, plus separate\n"
      "round trips for query and submission.\n");
  return 0;
}
