// Information-service explorer: walks through every xRSL information
// feature of the paper against a live service — response modes and their
// effect on command executions, quality thresholds with a degradation
// function, attribute filters, the performance tag, LDIF vs XML output,
// and MDS backwards compatibility through the GRIS export.
//
//   ./build/examples/info_explorer
#include <cstdio>

#include "core/config.hpp"
#include "core/infogram_client.hpp"
#include "core/infogram_service.hpp"
#include "exec/fork_backend.hpp"
#include "mds/filter.hpp"

using namespace ig;  // NOLINT: example brevity

int main() {
  VirtualClock clock(seconds(1000));
  net::Network network;
  auto host_system = std::make_shared<exec::SimSystem>(clock, 9, "explorer.sim");
  auto registry = exec::CommandRegistry::standard(clock, host_system, 10);

  security::CertificateAuthority ca("/O=Grid/CN=Explorer CA", seconds(365LL * 86400),
                                    clock, 11);
  security::TrustStore trust;
  trust.add_root(ca.root_certificate());
  auto user = ca.issue("/O=Grid/CN=explorer", security::CertType::kUser, seconds(86400));
  security::GridMap gridmap;
  gridmap.add("/O=Grid/CN=explorer", "explorer");
  security::AuthorizationPolicy policy(security::Decision::kAllow);
  auto logger = std::make_shared<logging::Logger>(clock);

  // Configuration with explicit degradation models per keyword.
  auto config = core::Configuration::parse(
      "60   Date    date -u\n"
      "80   Memory  /sbin/sysinfo.exe -mem degradation=linear\n"
      "100  CPU     /sbin/sysinfo.exe -cpu degradation=exponential\n"
      "50   CPULoad /usr/local/bin/cpuload.exe degradation=observed delay=5\n");
  if (!config.ok()) return 1;
  auto monitor = std::make_shared<info::SystemMonitor>(clock, "explorer.sim");
  if (!config->apply(*monitor, registry).ok()) return 1;

  auto backend = std::make_shared<exec::ForkBackend>(registry, clock);
  core::InfoGramConfig service_config;
  service_config.host = "explorer.sim";
  core::InfoGramService service(
      monitor, backend,
      ca.issue("/O=Grid/CN=host/explorer", security::CertType::kHost,
               seconds(365LL * 86400)),
      &trust, &gridmap, &policy, &clock, logger, service_config);
  if (!service.start(network).ok()) return 1;
  core::InfoGramClient client(network, service.address(), user, trust, clock);

  // ---- Response modes and the execution counter ----
  std::printf("== Response modes ==\n");
  auto runs = [&] { return monitor->provider("Memory")->refresh_count(); };
  (void)client.request("(info=Memory)");                       // cold: executes
  (void)client.request("(info=Memory)");                       // warm: cached
  std::printf("two cached queries     -> %llu execution(s)\n",
              static_cast<unsigned long long>(runs()));
  (void)client.request("(info=Memory)(response=immediate)");   // forced
  std::printf("plus response=immediate-> %llu execution(s)\n",
              static_cast<unsigned long long>(runs()));
  clock.advance(seconds(5));                                   // stale now
  auto last = client.request("(info=Memory)(response=last)");  // stale but served
  std::printf("response=last on stale -> %llu execution(s), quality %.1f%%\n",
              static_cast<unsigned long long>(runs()),
              last.ok() && !last->records.empty() ? last->records[0].min_quality() : -1.0);

  // ---- Quality threshold ----
  std::printf("\n== Quality threshold (linear degradation, ttl=80ms) ==\n");
  (void)client.request("(info=Memory)(response=immediate)");
  clock.advance(ms(60));
  auto q = client.request("(info=Memory)(quality=50)");
  std::printf("age 60ms, quality>=50  -> served from cache, quality %.1f%%\n",
              q.ok() && !q->records.empty() ? q->records[0].min_quality() : -1.0);
  auto before_refresh = runs();
  q = client.request("(info=Memory)(quality=90)");
  std::printf("age 60ms, quality>=90  -> %s (executions %llu -> %llu)\n",
              q.ok() ? "regenerated" : "failed",
              static_cast<unsigned long long>(before_refresh),
              static_cast<unsigned long long>(runs()));

  // ---- Filters ----
  std::printf("\n== Attribute filter ==\n");
  auto filtered = client.request("(info=Memory)(filter=Memory:free)");
  if (filtered.ok()) std::printf("%s", filtered->payload.c_str());

  // ---- Performance tag ----
  std::printf("\n== Performance tag ==\n");
  for (int i = 0; i < 5; ++i) {
    (void)client.request("(info=CPULoad)(response=immediate)");
    clock.advance(ms(20));
  }
  auto perf = client.request("(performance=CPULoad)");
  if (perf.ok()) std::printf("%s", perf->payload.c_str());

  // ---- Formats ----
  std::printf("\n== XML format ==\n");
  auto xml = client.request("(info=CPU)(format=xml)");
  if (xml.ok()) std::printf("%s", xml->payload.c_str());

  // ---- Schema reflection ----
  std::printf("\n== Schema (info=schema) ==\n");
  auto schema = client.request("(info=schema)");
  if (schema.ok()) std::printf("%s", schema->payload.c_str());

  // ---- MDS backwards compatibility ----
  std::printf("\n== Same providers through the MDS/GRIS view ==\n");
  auto gris = service.make_gris();
  auto entries =
      gris->search("o=Grid", mds::Scope::kSubtree, mds::Filter::parse("(kw=CPU)").value());
  if (entries.ok()) {
    for (const auto& entry : entries.value()) std::printf("%s", entry.serialize().c_str());
  }

  service.stop();
  return 0;
}
