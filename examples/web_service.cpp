// Web-services forward compatibility (paper Secs. 9-11): the same
// InfoGram service exposed as a SOAP endpoint with a generated WSDL —
// "it is straight forward to cast the InfoGram in WSDL" — plus a
// measurement of what the commodity protocol costs over the native one.
//
//   ./build/examples/web_service
#include <cstdio>

#include "core/config.hpp"
#include "core/infogram_client.hpp"
#include "exec/fork_backend.hpp"
#include "soap/gateway.hpp"

using namespace ig;  // NOLINT

int main() {
  VirtualClock clock(seconds(1000));
  net::Network network;
  auto host_system = std::make_shared<exec::SimSystem>(clock, 77, "ws.example.org");
  auto registry = exec::CommandRegistry::standard(clock, host_system, 78);

  security::CertificateAuthority ca("/O=Grid/CN=WS CA", seconds(365LL * 86400), clock, 79);
  security::TrustStore trust;
  trust.add_root(ca.root_certificate());
  auto user = ca.issue("/O=Grid/CN=web-user", security::CertType::kUser, seconds(86400));
  security::GridMap gridmap;
  gridmap.add("/O=Grid/CN=web-user", "web");
  security::AuthorizationPolicy policy(security::Decision::kAllow);
  auto logger = std::make_shared<logging::Logger>(clock);

  auto monitor = std::make_shared<info::SystemMonitor>(clock, "ws.example.org");
  if (!core::Configuration::table1().apply(*monitor, registry).ok()) return 1;
  auto backend = std::make_shared<exec::ForkBackend>(registry, clock);
  core::InfoGramConfig config;
  config.host = "ws.example.org";
  auto host_cred = ca.issue("/O=Grid/CN=host/ws", security::CertType::kHost,
                            seconds(365LL * 86400));
  core::InfoGramService service(monitor, backend, host_cred, &trust, &gridmap, &policy,
                                &clock, logger, config);
  if (!service.start(network).ok()) return 1;

  soap::SoapGateway gateway(service, host_cred, &trust, &gridmap, &clock);
  if (!gateway.start(network).ok()) return 1;
  std::printf("Native endpoint: %s    SOAP gateway: %s\n\n",
              service.address().to_string().c_str(),
              gateway.address().to_string().c_str());

  soap::SoapClient soap_client(network, gateway.address(), user, trust, clock);

  // --- WSDL ---
  auto wsdl = soap_client.fetch_wsdl();
  if (wsdl.ok()) {
    std::printf("=== WSDL (first lines) ===\n");
    std::size_t shown = 0;
    for (std::size_t pos = 0; shown < 12 && pos < wsdl->size(); ++shown) {
      std::size_t eol = wsdl->find('\n', pos);
      std::printf("%s\n", wsdl->substr(pos, eol - pos).c_str());
      pos = eol + 1;
    }
    std::printf("...\n\n");
  }

  // --- A job through SOAP ---
  auto contact = soap_client.submit_job("&(executable=/bin/echo)(arguments=soap world)");
  if (!contact.ok()) return 1;
  auto state = soap_client.wait(*contact, seconds(30));
  std::printf("submitJob -> %s, waitJob -> %s, jobOutput -> %s\n", contact->c_str(),
              state.ok() ? std::string(to_string(state.value())).c_str() : "?",
              soap_client.job_output(*contact).value_or("?").c_str());

  // --- An info query through SOAP ---
  auto records = soap_client.query_info({"Memory", "CPULoad"});
  if (records.ok()) {
    std::printf("queryInfo -> %zu records:\n", records->size());
    for (const auto& record : records.value()) {
      for (const auto& attr : record.attributes) {
        std::printf("  %s = %s\n", attr.name.c_str(), attr.value.c_str());
      }
    }
  }

  // --- The commodity-protocol cost ---
  core::InfoGramClient native(network, service.address(), user, trust, clock);
  for (int i = 0; i < 20; ++i) {
    (void)native.query_info({"Memory"});
    (void)soap_client.query_info({"Memory"});
  }
  auto soap_stats = soap_client.stats();
  auto native_stats = native.stats();
  std::printf(
      "\nSame 20 queries each:\n"
      "  native xRSL : %6llu bytes on the wire\n"
      "  SOAP gateway: %6llu bytes on the wire  (%.1fx)\n",
      static_cast<unsigned long long>(native_stats.bytes_sent +
                                      native_stats.bytes_received),
      static_cast<unsigned long long>(soap_stats.bytes_sent + soap_stats.bytes_received),
      static_cast<double>(soap_stats.bytes_sent + soap_stats.bytes_received) /
          static_cast<double>(native_stats.bytes_sent + native_stats.bytes_received));
  std::printf(
      "The paper's trade: interoperability with the Web-services world in\n"
      "exchange for protocol overhead — the step OGSA took next.\n");
  gateway.stop();
  service.stop();
  return 0;
}
