// Sporadic grid (paper Sec. 8): a Grid "created just for a short period of
// time during sophisticated experiments at synchrotrons or photon sources".
//
// A scanning experiment sweeps a focused electron probe over a 2-D field
// of view; at each point a diffraction pattern must be analyzed. This
// example provisions a short-lived VO of InfoGram nodes, registers the
// analysis code as a sandboxed task (the paper's untrusted-jar mechanism),
// places the per-point jobs with the load-aware broker, and tears the
// grid down — measuring how quickly the whole thing comes and goes.
//
//   ./build/examples/sporadic_grid
#include <cstdio>
#include <map>

#include "common/rng.hpp"
#include "common/strings.hpp"
#include "grid/broker.hpp"
#include "grid/virtual_organization.hpp"

using namespace ig;  // NOLINT: example brevity

namespace {

/// The "untrusted analysis code": given scan coordinates, synthesize a
/// diffraction pattern and report its peak intensity. Charged against the
/// sandbox budget per pixel.
Result<std::string> analyze_diffraction(exec::SandboxContext& ctx,
                                        const std::vector<std::string>& args) {
  if (args.size() != 2) return Error(ErrorCode::kInvalidArgument, "need x y");
  auto x = strings::parse_int(args[0]);
  auto y = strings::parse_int(args[1]);
  if (!x || !y) return Error(ErrorCode::kInvalidArgument, "bad coordinates");
  Rng rng(static_cast<std::uint64_t>(*x * 131 + *y));
  double peak = 0.0;
  constexpr int kPatternSize = 32;
  for (int i = 0; i < kPatternSize * kPatternSize; ++i) {
    if (auto s = ctx.charge(1); !s.ok()) return s.error();
    double intensity = rng.exponential(1.0) *
                       (1.0 + 0.5 * std::sin(0.2 * *x) * std::cos(0.2 * *y));
    peak = std::max(peak, intensity);
  }
  return strings::format("peak: %.4f", peak);
}

}  // namespace

int main() {
  VirtualClock clock(seconds(1000));
  net::Network network;

  // --- Provision the sporadic grid: 4 nodes, one call.
  grid::SporadicGrid::Options options;
  options.vo_name = "photon-source";
  options.resources = 4;
  options.batch_nodes_per_resource = 2;
  grid::SporadicGrid sporadic(network, clock, options);
  std::printf("Provisioned %zu InfoGram nodes for VO '%s'\n",
              sporadic.infogram_addresses().size(), sporadic.vo().name().c_str());

  auto user = sporadic.vo().enroll_user("experimenter", "exp");

  // --- Deploy the analysis "jar" on every node's sandbox.
  for (const auto& resource : sporadic.vo().resources()) {
    resource->sandbox()->register_task("diffraction.jar", analyze_diffraction);
  }

  // --- Broker with quality-gated load information.
  grid::LoadAwareBroker::Options broker_options;
  broker_options.load_keyword = "CPULoad";
  grid::LoadAwareBroker broker(broker_options);
  for (const auto& resource : sporadic.vo().resources()) {
    broker.add_resource(resource->host(),
                        std::make_shared<core::InfoGramClient>(
                            network, resource->infogram_address(), user,
                            sporadic.vo().trust(), clock));
  }

  // --- The scan: an 6x6 field of view, one sandboxed job per point.
  constexpr int kScan = 6;
  std::map<std::string, int> placements;
  std::vector<std::pair<std::string, std::string>> jobs;  // host, contact
  for (int x = 0; x < kScan; ++x) {
    for (int y = 0; y < kScan; ++y) {
      rsl::XrslBuilder builder;
      builder.executable("diffraction.jar")
          .job_type("jar")
          .argument(std::to_string(x))
          .argument(std::to_string(y));
      auto placement = broker.submit(builder.request());
      if (!placement.ok()) {
        std::fprintf(stderr, "placement failed: %s\n",
                     placement.error().to_string().c_str());
        return 1;
      }
      ++placements[placement->host];
      jobs.emplace_back(placement->host, placement->contact);
      clock.advance(ms(200));  // scan points arrive over time
    }
  }

  // --- Collect results.
  int completed = 0;
  double max_peak = 0.0;
  for (const auto& [host, contact] : jobs) {
    auto* client = broker.client(host);
    auto status = client->wait(contact, seconds(60));
    if (status.ok() && status->state == exec::JobState::kDone) {
      ++completed;
      auto output = client->job_output(contact);
      if (output.ok()) {
        auto value = strings::parse_double(
            strings::trim(strings::replace_all(*output, "peak:", "")));
        if (value) max_peak = std::max(max_peak, *value);
      }
    }
  }

  std::printf("Scan complete: %d/%d points analyzed, max peak intensity %.4f\n",
              completed, kScan * kScan, max_peak);
  std::printf("Placement distribution (load-aware):\n");
  for (const auto& [host, count] : placements) {
    std::printf("  %-24s %d jobs\n", host.c_str(), count);
  }

  // --- Accounting from the VO log (the paper's "simple Grid accounting").
  // (The logger only has memory sinks if attached; attach on demand for a
  // real deployment. Here we report from the broker instead.)
  std::printf("\nTearing the sporadic grid down...\n");
  return completed == kScan * kScan ? 0 : 1;
}
