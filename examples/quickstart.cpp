// Quickstart: bring up one InfoGram service with the paper's Table 1
// configuration and use the single endpoint for everything — an
// information query, a schema inspection, and a job — over one
// authenticated connection.
//
//   cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "core/config.hpp"
#include "core/infogram_client.hpp"
#include "core/infogram_service.hpp"
#include "exec/fork_backend.hpp"
#include "obs/telemetry.hpp"

using namespace ig;  // NOLINT: example brevity

int main() {
  // --- Substrate: a simulated host, its commands, and a virtual network.
  VirtualClock clock(seconds(1000));
  net::Network network;
  auto host_system = std::make_shared<exec::SimSystem>(clock, 42, "quick.example.org");
  auto registry = exec::CommandRegistry::standard(clock, host_system, 43);

  // --- Security fabric: CA, trusted root, one user mapped in the gridmap.
  security::CertificateAuthority ca("/O=Grid/CN=Example CA", seconds(365LL * 86400),
                                    clock, 7);
  security::TrustStore trust;
  trust.add_root(ca.root_certificate());
  auto alice = ca.issue("/O=Grid/CN=alice", security::CertType::kUser, seconds(86400));
  security::GridMap gridmap;
  gridmap.add("/O=Grid/CN=alice", "alice");
  security::AuthorizationPolicy policy(security::Decision::kAllow);
  auto logger = std::make_shared<logging::Logger>(clock);

  // --- Information providers from the paper's Table 1 configuration.
  core::Configuration config = core::Configuration::table1();
  std::printf("Configuration (paper Table 1):\n%s\n", config.serialize().c_str());
  auto monitor = std::make_shared<info::SystemMonitor>(clock, "quick.example.org");
  if (auto status = config.apply(*monitor, registry); !status.ok()) {
    std::fprintf(stderr, "config: %s\n", status.to_string().c_str());
    return 1;
  }

  // --- The unified service on ONE port.
  auto backend = std::make_shared<exec::ForkBackend>(registry, clock);
  core::InfoGramConfig service_config;
  service_config.host = "quick.example.org";
  // Opt in to telemetry: the service instruments itself and exposes the
  // result as ordinary info keywords (metrics / metrics.jobs / traces).
  service_config.telemetry = std::make_shared<obs::Telemetry>(clock);
  core::InfoGramService service(monitor, backend, ca.issue("/O=Grid/CN=host/quick",
                                                           security::CertType::kHost,
                                                           seconds(365LL * 86400)),
                                &trust, &gridmap, &policy, &clock, logger, service_config);
  if (auto status = service.start(network); !status.ok()) {
    std::fprintf(stderr, "start: %s\n", status.to_string().c_str());
    return 1;
  }
  std::printf("InfoGram listening at %s\n\n", service.address().to_string().c_str());

  // --- One client, one connection, one handshake.
  core::InfoGramClient client(network, service.address(), alice, trust, clock);

  // 1. Information query, exactly as the paper writes it.
  auto info = client.request("(info=Memory)(info=CPULoad)(response=cached)");
  if (!info.ok()) {
    std::fprintf(stderr, "query: %s\n", info.error().to_string().c_str());
    return 1;
  }
  std::printf("Information query (info=Memory)(info=CPULoad), LDIF return:\n%s\n",
              info->payload.c_str());

  // 2. Service reflection: (info=schema).
  auto schema = client.fetch_schema();
  if (schema.ok()) {
    std::printf("Schema reflection lists %zu keywords:\n", schema->keywords.size());
    for (const auto& kw : schema->keywords) {
      std::printf("  %-8s ttl=%lldms  command=%s\n", kw.keyword.c_str(),
                  static_cast<long long>(kw.ttl.count() / 1000), kw.command.c_str());
    }
    std::printf("\n");
  }

  // 3. A job — through the same endpoint and connection.
  auto job = client.request("&(executable=/bin/echo)(arguments=hello grid)");
  if (!job.ok() || !job->job_contact) {
    std::fprintf(stderr, "submit failed\n");
    return 1;
  }
  std::printf("Submitted job, contact: %s\n", job->job_contact->c_str());
  auto status = client.wait(*job->job_contact, seconds(30));
  if (status.ok()) {
    std::printf("Job state: %s, exit %d\n", std::string(to_string(status->state)).c_str(),
                status->exit_code);
    auto output = client.job_output(*job->job_contact);
    if (output.ok()) std::printf("Job output: %s", output->c_str());
  }

  // 4. The service describes its own behaviour: everything above was
  // counted and traced, queryable through the very same protocol.
  auto metrics = client.request("(info=metrics)(info=traces)");
  if (metrics.ok()) {
    std::printf("\nSelf-describing telemetry (info=metrics)(info=traces):\n%s\n",
                metrics->payload.c_str());
  }

  auto stats = client.stats();
  std::printf(
      "\nEverything above used %llu connection(s), %llu request round trip(s), "
      "%.1f KB on the wire.\n",
      static_cast<unsigned long long>(stats.connects),
      static_cast<unsigned long long>(stats.requests),
      static_cast<double>(stats.bytes_sent + stats.bytes_received) / 1024.0);
  service.stop();
  return 0;
}
