// igsh — the command-line face of InfoGram (paper Sec. 2: "Simple tools
// are available to access the basic functionality also from the command
// line", i.e. the globusrun / grid-info-search pair — here unified).
//
// The tool provisions a small in-process demo grid (two InfoGram nodes)
// and executes the commands given on argv against it:
//
//   igsh query  '(info=Memory)(info=CPULoad)'   # grid-info-search role
//   igsh submit '&(executable=/bin/echo)(arguments=hi)'   # globusrun role
//   igsh schema                                  # service reflection
//   igsh loads                                   # broker view of the VO
//   igsh accounting                              # per-user usage from the log
//
// With no arguments it runs a demonstration transcript of all of them.
#include <cstdio>
#include <vector>

#include "grid/broker.hpp"
#include "grid/virtual_organization.hpp"
#include "mds/search_engine.hpp"
#include "obs/telemetry.hpp"

using namespace ig;  // NOLINT

namespace {

struct Shell {
  VirtualClock clock{seconds(1000)};
  net::Network network;
  grid::VirtualOrganization vo{"igsh-demo", network, clock, 4242};
  security::Credential user;
  grid::LoadAwareBroker broker;
  std::unique_ptr<core::InfoGramClient> client;  // node0

  Shell() {
    user = vo.enroll_user("cli-user", "cli");
    for (int i = 0; i < 2; ++i) {
      grid::ResourceOptions options;
      options.host = "node" + std::to_string(i) + ".demo";
      options.seed = 42 + static_cast<std::uint64_t>(i) * 19;
      // Each node observes itself: igsh query '(info=metrics)' works.
      options.telemetry = std::make_shared<obs::Telemetry>(clock);
      if (!vo.add_resource(options).ok()) std::abort();
    }
    for (const auto& resource : vo.resources()) {
      broker.add_resource(resource->host(),
                          std::make_shared<core::InfoGramClient>(
                              network, resource->infogram_address(), user, vo.trust(),
                              clock));
    }
    client = std::make_unique<core::InfoGramClient>(
        network, vo.resources().front()->infogram_address(), user, vo.trust(), clock);
  }

  int query(const std::string& xrsl) {
    auto resp = client->request(xrsl);
    if (!resp.ok()) {
      std::fprintf(stderr, "igsh: query failed: %s\n", resp.error().to_string().c_str());
      return 1;
    }
    std::printf("%s", resp->payload.c_str());
    return 0;
  }

  int submit(const std::string& xrsl) {
    auto resp = client->request(xrsl);
    if (!resp.ok() || resp->job_contacts.empty()) {
      std::fprintf(stderr, "igsh: submit failed: %s\n",
                   resp.ok() ? "no job in request" : resp.error().to_string().c_str());
      return 1;
    }
    int rc = 0;
    for (const auto& contact : resp->job_contacts) {
      std::printf("contact: %s\n", contact.c_str());
      auto status = client->wait(contact, seconds(60));
      if (!status.ok()) {
        std::fprintf(stderr, "igsh: wait failed: %s\n", status.error().to_string().c_str());
        rc = 1;
        continue;
      }
      std::printf("state: %s (exit %d, restarts %d)\n",
                  std::string(to_string(status->state)).c_str(), status->exit_code,
                  status->restarts);
      auto output = client->job_output(contact);
      if (output.ok() && !output->empty()) std::printf("%s", output->c_str());
      if (status->state != exec::JobState::kDone) rc = 1;
    }
    return rc;
  }

  int schema() {
    auto schema = client->fetch_schema();
    if (!schema.ok()) {
      std::fprintf(stderr, "igsh: schema failed: %s\n", schema.error().to_string().c_str());
      return 1;
    }
    std::printf("%s", schema->to_xml().c_str());
    return 0;
  }

  int find(const std::string& query) {
    // Google-like search (paper Sec. 3) over the VO-wide GIIS.
    auto hits = mds::keyword_search(*vo.giis(), query);
    if (!hits.ok()) {
      std::fprintf(stderr, "igsh: find failed: %s\n", hits.error().to_string().c_str());
      return 1;
    }
    for (const auto& hit : hits.value()) {
      std::printf("%6.1f  %s\n", hit.score, hit.entry.dn.c_str());
    }
    if (hits->empty()) std::printf("no matches\n");
    return 0;
  }

  int loads() {
    auto loads = broker.loads();
    if (!loads.ok()) {
      std::fprintf(stderr, "igsh: loads failed: %s\n", loads.error().to_string().c_str());
      return 1;
    }
    for (const auto& [host, load] : loads.value()) {
      std::printf("%-16s load=%.3f\n", host.c_str(), load);
    }
    return 0;
  }

  int accounting(const logging::MemorySink& sink) {
    auto summary = logging::accounting_summary(sink.events());
    std::printf("%-40s %8s %8s %8s %8s\n", "user", "subm", "done", "failed", "queries");
    for (const auto& [user_dn, entry] : summary) {
      if (user_dn.empty()) continue;
      std::printf("%-40s %8llu %8llu %8llu %8llu\n", user_dn.c_str(),
                  static_cast<unsigned long long>(entry.jobs_submitted),
                  static_cast<unsigned long long>(entry.jobs_completed),
                  static_cast<unsigned long long>(entry.jobs_failed),
                  static_cast<unsigned long long>(entry.info_queries));
    }
    return 0;
  }
};

void usage() {
  std::printf(
      "usage: igsh <command> [arg]\n"
      "  query <xrsl>    information query, e.g. '(info=Memory)(format=xml)'\n"
      "  submit <xrsl>   job submission, e.g. '&(executable=/bin/echo)(arguments=hi)'\n"
      "  schema          service reflection (info=schema)\n"
      "  find <words>    google-like keyword search over the VO directory\n"
      "  loads           CPU load of every VO resource\n"
      "  accounting      per-user usage summary from the service log\n"
      "with no arguments: run a demo transcript of all commands\n");
}

}  // namespace

int main(int argc, char** argv) {
  Shell shell;
  auto sink = std::make_shared<logging::MemorySink>();
  shell.vo.logger()->add_sink(sink);

  if (argc >= 2) {
    std::string command = argv[1];
    std::string arg = argc >= 3 ? argv[2] : "";
    if (command == "query" && !arg.empty()) return shell.query(arg);
    if (command == "submit" && !arg.empty()) return shell.submit(arg);
    if (command == "find" && !arg.empty()) return shell.find(arg);
    if (command == "schema") return shell.schema();
    if (command == "loads") return shell.loads();
    if (command == "accounting") return shell.accounting(*sink);
    usage();
    return 2;
  }

  // Demo transcript.
  std::printf("$ igsh loads\n");
  (void)shell.loads();
  std::printf("\n$ igsh query '(info=Memory)(info=CPULoad)'\n");
  (void)shell.query("(info=Memory)(info=CPULoad)");
  std::printf("\n$ igsh submit '&(executable=/bin/echo)(arguments=hello from igsh)'\n");
  (void)shell.submit("&(executable=/bin/echo)(arguments=hello from igsh)");
  std::printf(
      "\n$ igsh submit '+(&(executable=/bin/echo)(arguments=a))"
      "(&(executable=/bin/echo)(arguments=b))'\n");
  (void)shell.submit(
      "+(&(executable=/bin/echo)(arguments=a))(&(executable=/bin/echo)(arguments=b))");
  std::printf("\n$ igsh schema   (first 10 lines)\n");
  {
    auto schema = shell.client->fetch_schema();
    if (schema.ok()) {
      std::string xml = schema->to_xml();
      std::size_t pos = 0;
      for (int line = 0; line < 10 && pos < xml.size(); ++line) {
        std::size_t eol = xml.find('\n', pos);
        std::printf("%s\n", xml.substr(pos, eol - pos).c_str());
        pos = eol + 1;
      }
      std::printf("...\n");
    }
  }
  std::printf("\n$ igsh find 'memory node1'\n");
  (void)shell.find("memory node1");
  std::printf("\n$ igsh accounting\n");
  (void)shell.accounting(*sink);
  return 0;
}
