#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "net/message.hpp"
#include "net/network.hpp"

namespace ig::net {
namespace {

// ---------- Message framing ----------

TEST(MessageTest, SerializeParseRoundtrip) {
  Message msg("SUBMIT", "body text\nwith lines");
  msg.with("contact", "https://h:1/j/2").with("zkey", "value with spaces");
  auto parsed = Message::parse(msg.serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->verb, "SUBMIT");
  EXPECT_EQ(parsed->body, "body text\nwith lines");
  EXPECT_EQ(parsed->header("contact"), "https://h:1/j/2");
  EXPECT_EQ(parsed->header("zkey"), "value with spaces");
  EXPECT_FALSE(parsed->header("missing"));
  EXPECT_EQ(parsed->header_or("missing", "d"), "d");
}

TEST(MessageTest, EmptyBodyRoundtrip) {
  Message msg("PING");
  auto parsed = Message::parse(msg.serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->verb, "PING");
  EXPECT_TRUE(parsed->body.empty());
  EXPECT_TRUE(parsed->headers.empty());
}

TEST(MessageTest, WireSizeMatchesSerializedLength) {
  Message msg("VERB", "0123456789");
  msg.with("a", "b").with("header", "value");
  EXPECT_EQ(msg.wire_size(), msg.serialize().size());
}

class MessageParseErrorTest : public ::testing::TestWithParam<const char*> {};

TEST_P(MessageParseErrorTest, Rejects) {
  auto parsed = Message::parse(GetParam());
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.code(), ErrorCode::kParseError);
}

INSTANTIATE_TEST_SUITE_P(Corpus, MessageParseErrorTest,
                         ::testing::Values("", "GET /", "IGP/1.0 ",
                                           "IGP/1.0 VERB\nno-colon-header\n\n",
                                           "IGP/1.0 VERB\nheader: x"));

TEST(MessageTest, ErrorHelpers) {
  Message err = Message::error(Error(ErrorCode::kDenied, "no gridmap entry"));
  EXPECT_TRUE(err.is_error());
  Error back = Message::to_error(err);
  EXPECT_EQ(back.code, ErrorCode::kDenied);
  EXPECT_EQ(back.message, "no gridmap entry");
}

TEST(MessageTest, ToErrorUnknownCodeFallsBackToInternal) {
  Message weird("ERROR", "boom");
  weird.with("code", "not-a-real-code");
  EXPECT_EQ(Message::to_error(weird).code, ErrorCode::kInternal);
}

// ---------- Network ----------

class NetworkTest : public ::testing::Test {
 protected:
  Network network;
  Address addr{"host.sim", 2135};
};

TEST_F(NetworkTest, ConnectToUnknownAddressFails) {
  auto conn = network.connect(addr);
  ASSERT_FALSE(conn.ok());
  EXPECT_EQ(conn.code(), ErrorCode::kUnavailable);
}

TEST_F(NetworkTest, ListenConnectRequest) {
  ASSERT_TRUE(network.listen(addr, [](const Message& req, Session&) {
    return Message::ok("echo:" + req.body);
  }));
  auto conn = network.connect(addr);
  ASSERT_TRUE(conn.ok());
  auto resp = (*conn)->request(Message("ECHO", "hello"));
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->body, "echo:hello");
}

TEST_F(NetworkTest, DoubleListenFails) {
  ASSERT_TRUE(network.listen(addr, [](const Message&, Session&) { return Message::ok(); }));
  auto second = network.listen(addr, [](const Message&, Session&) { return Message::ok(); });
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.code(), ErrorCode::kAlreadyExists);
}

TEST_F(NetworkTest, CloseMakesRequestsFail) {
  ASSERT_TRUE(network.listen(addr, [](const Message&, Session&) { return Message::ok(); }));
  auto conn = network.connect(addr);
  ASSERT_TRUE(conn.ok());
  network.close(addr);
  auto resp = (*conn)->request(Message("PING"));
  ASSERT_FALSE(resp.ok());
  EXPECT_EQ(resp.code(), ErrorCode::kUnavailable);
}

TEST_F(NetworkTest, PartitionAndHeal) {
  ASSERT_TRUE(network.listen(addr, [](const Message&, Session&) { return Message::ok(); }));
  network.partition(addr);
  EXPECT_FALSE(network.connect(addr).ok());
  network.heal(addr);
  auto conn = network.connect(addr);
  ASSERT_TRUE(conn.ok());
  // Partition mid-connection also fails requests.
  network.partition(addr);
  EXPECT_FALSE((*conn)->request(Message("PING")).ok());
  network.heal(addr);
  EXPECT_TRUE((*conn)->request(Message("PING")).ok());
}

TEST_F(NetworkTest, SessionStatePersistsAcrossRequests) {
  ASSERT_TRUE(network.listen(addr, [](const Message& req, Session& session) {
    if (req.verb == "SET") {
      session.set("k", req.body);
      return Message::ok();
    }
    return Message::ok(session.get("k").value_or("unset"));
  }));
  auto conn1 = network.connect(addr);
  auto conn2 = network.connect(addr);
  ASSERT_TRUE(conn1.ok());
  ASSERT_TRUE(conn2.ok());
  ASSERT_TRUE((*conn1)->request(Message("SET", "v1")).ok());
  EXPECT_EQ((*conn1)->request(Message("GET"))->body, "v1");
  // Sessions are per-connection: conn2 sees its own state.
  EXPECT_EQ((*conn2)->request(Message("GET"))->body, "unset");
}

TEST_F(NetworkTest, TrafficAccounting) {
  ASSERT_TRUE(network.listen(addr, [](const Message&, Session&) {
    return Message::ok("0123456789");
  }));
  auto conn = network.connect(addr);
  ASSERT_TRUE(conn.ok());
  EXPECT_EQ((*conn)->stats().connects, 1u);
  EXPECT_EQ((*conn)->stats().requests, 0u);
  Duration connect_time = (*conn)->stats().virtual_time;
  EXPECT_EQ(connect_time, network.cost_model().connect_latency);

  Message req("PING", "xx");
  std::size_t req_size = req.wire_size();
  ASSERT_TRUE((*conn)->request(req).ok());
  const auto& stats = (*conn)->stats();
  EXPECT_EQ(stats.requests, 1u);
  EXPECT_EQ(stats.bytes_sent, req_size);
  EXPECT_GT(stats.bytes_received, 0u);
  // Tiny messages may round to zero transfer time; the RTT is always paid.
  EXPECT_GE(stats.virtual_time, connect_time + network.cost_model().round_trip_latency);
}

TEST_F(NetworkTest, TotalStatsAggregateAcrossConnections) {
  ASSERT_TRUE(network.listen(addr, [](const Message&, Session&) { return Message::ok(); }));
  for (int i = 0; i < 3; ++i) {
    auto conn = network.connect(addr);
    ASSERT_TRUE(conn.ok());
    ASSERT_TRUE((*conn)->request(Message("PING")).ok());
  }
  auto totals = network.total_stats();
  EXPECT_EQ(totals.connects, 3u);
  EXPECT_EQ(totals.requests, 3u);
}

TEST_F(NetworkTest, ConcurrentRequestsAreHandled) {
  std::atomic<int> handled{0};
  ASSERT_TRUE(network.listen(addr, [&handled](const Message&, Session&) {
    handled.fetch_add(1);
    return Message::ok();
  }));
  std::vector<std::thread> threads;
  for (int i = 0; i < 8; ++i) {
    threads.emplace_back([this] {
      auto conn = network.connect(addr);
      ASSERT_TRUE(conn.ok());
      for (int j = 0; j < 50; ++j) {
        ASSERT_TRUE((*conn)->request(Message("PING")).ok());
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(handled.load(), 400);
}

TEST_F(NetworkTest, RepeatedPartitionHealRoundTrips) {
  ASSERT_TRUE(network.listen(addr, [](const Message&, Session&) { return Message::ok(); }));
  auto conn = network.connect(addr);
  ASSERT_TRUE(conn.ok());
  for (int cycle = 0; cycle < 5; ++cycle) {
    network.partition(addr);
    EXPECT_FALSE(network.connect(addr).ok()) << cycle;
    auto blocked = (*conn)->request(Message("PING"));
    ASSERT_FALSE(blocked.ok()) << cycle;
    EXPECT_EQ(blocked.code(), ErrorCode::kUnavailable);
    network.heal(addr);
    EXPECT_TRUE((*conn)->request(Message("PING")).ok()) << cycle;
    auto fresh = network.connect(addr);
    ASSERT_TRUE(fresh.ok()) << cycle;
    EXPECT_TRUE((*fresh)->request(Message("PING")).ok()) << cycle;
  }
  // Healing an address that was never partitioned is a no-op, not an error.
  network.heal(addr);
  EXPECT_TRUE((*conn)->request(Message("PING")).ok());
}

TEST_F(NetworkTest, CloseWithInFlightRequestsFailsGracefully) {
  ASSERT_TRUE(network.listen(addr, [](const Message&, Session&) { return Message::ok(); }));
  std::atomic<bool> stop{false};
  std::atomic<int> unavailable{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([this, &stop, &unavailable] {
      auto conn = network.connect(addr);
      if (!conn.ok()) return;
      while (!stop.load()) {
        auto resp = (*conn)->request(Message("PING"));
        if (!resp.ok()) {
          // Every in-flight failure during shutdown must be kUnavailable —
          // never a crash, hang, or kInternal.
          EXPECT_EQ(resp.code(), ErrorCode::kUnavailable);
          unavailable.fetch_add(1);
          return;
        }
      }
    });
  }
  network.close(addr);
  stop.store(true);
  for (auto& t : threads) t.join();
  EXPECT_FALSE(network.connect(addr).ok());
}

TEST_F(NetworkTest, InjectedRequestLatencyExtendsVirtualTime) {
  ASSERT_TRUE(network.listen(addr, [](const Message&, Session&) { return Message::ok(); }));
  auto baseline_conn = network.connect(addr);
  ASSERT_TRUE(baseline_conn.ok());
  ASSERT_TRUE((*baseline_conn)->request(Message("PING")).ok());
  Duration baseline = (*baseline_conn)->stats().virtual_time;

  FaultPlan plan;
  plan.seed = 42;
  FaultSpec slow;
  slow.kind = FaultKind::kLatency;
  slow.probability = 1.0;
  slow.latency = ms(25);
  plan.add("net.request", slow);
  network.set_fault_injector(std::make_shared<FaultInjector>(plan));
  auto conn = network.connect(addr);
  ASSERT_TRUE(conn.ok());
  auto resp = (*conn)->request(Message("PING"));
  ASSERT_TRUE(resp.ok());  // latency faults delay, they do not fail
  EXPECT_GE((*conn)->stats().virtual_time, baseline + ms(25));
}

TEST_F(NetworkTest, InjectedConnectAndDropFaults) {
  ASSERT_TRUE(network.listen(addr, [](const Message&, Session&) { return Message::ok(); }));
  FaultPlan plan;
  plan.seed = 7;
  FaultSpec refuse;
  refuse.kind = FaultKind::kError;
  refuse.probability = 1.0;
  refuse.max_fires = 1;
  plan.add("net.connect", refuse);
  FaultSpec drop;
  drop.kind = FaultKind::kDrop;
  drop.probability = 1.0;
  drop.max_fires = 1;
  plan.add("net.request", drop);
  auto injector = std::make_shared<FaultInjector>(plan);
  network.set_fault_injector(injector);

  auto refused = network.connect(addr);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.code(), ErrorCode::kUnavailable);
  auto conn = network.connect(addr);  // fault budget spent: connects again
  ASSERT_TRUE(conn.ok());
  auto dropped = (*conn)->request(Message("PING"));
  ASSERT_FALSE(dropped.ok());
  EXPECT_EQ(dropped.code(), ErrorCode::kUnavailable);
  // The dropped request still paid for its wire time.
  EXPECT_EQ((*conn)->stats().requests, 1u);
  EXPECT_GT((*conn)->stats().virtual_time, Duration(0));
  EXPECT_TRUE((*conn)->request(Message("PING")).ok());
  EXPECT_EQ(injector->fires("net.connect"), 1u);
  EXPECT_EQ(injector->fires("net.request"), 1u);
}

TEST(CostModelTest, TransferCostScalesWithBytes) {
  CostModel model;
  model.bytes_per_us = 10.0;
  EXPECT_EQ(model.transfer_cost(100), us(10));
  EXPECT_EQ(model.transfer_cost(0), us(0));
}

TEST(CostModelTest, TransferCostEdgeCases) {
  CostModel model;
  model.bytes_per_us = 100.0;
  // Sub-unit transfers truncate to zero — the RTT still bounds a request.
  EXPECT_EQ(model.transfer_cost(99), us(0));
  EXPECT_EQ(model.transfer_cost(100), us(1));
  EXPECT_EQ(model.transfer_cost(250), us(2));
  // A slow link makes bytes expensive.
  model.bytes_per_us = 0.5;
  EXPECT_EQ(model.transfer_cost(10), us(20));
}

}  // namespace
}  // namespace ig::net
