// Tests for DSML output (paper: "straightforward to support other formats
// such as DSML") and execution-service reflection (Sec. 6.5).
#include <gtest/gtest.h>

#include "core/config.hpp"
#include "core/infogram_client.hpp"
#include "exec/batch_backend.hpp"
#include "exec/sandbox.hpp"
#include "format/dsml.hpp"
#include "test_util.hpp"

namespace ig {
namespace {

format::InfoRecord sample_record() {
  format::InfoRecord record;
  record.keyword = "Memory";
  record.generated_at = seconds(100);
  record.ttl = ms(80);
  record.add("total", "524288", 100.0);
  record.add("free", "231115", 92.5);
  return record;
}

TEST(DsmlTest, RendersDirectoryEntries) {
  std::string dsml = format::to_dsml(sample_record());
  EXPECT_NE(dsml.find("<dsml:dsml"), std::string::npos);
  EXPECT_NE(dsml.find("<dsml:entry dn=\"kw=Memory, o=Grid\">"), std::string::npos);
  EXPECT_NE(dsml.find("name=\"Memory:total\""), std::string::npos);
  EXPECT_NE(dsml.find("<dsml:value>524288</dsml:value>"), std::string::npos);
}

TEST(DsmlTest, Roundtrip) {
  std::vector<format::InfoRecord> records{sample_record()};
  auto parsed = format::parse_dsml(format::to_dsml(records));
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->size(), 1u);
  const auto& back = parsed->front();
  EXPECT_EQ(back.keyword, "Memory");
  EXPECT_EQ(back.ttl, ms(80));
  ASSERT_EQ(back.attributes.size(), 2u);
  EXPECT_EQ(back.attributes[0].value, "524288");
  EXPECT_DOUBLE_EQ(back.attributes[1].quality, 92.5);
}

TEST(DsmlTest, EscapedValuesSurvive) {
  format::InfoRecord record;
  record.keyword = "Esc";
  record.ttl = ms(1);
  record.add("tricky", R"(<a & "b">)");
  auto parsed = format::parse_dsml(format::to_dsml(record));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->front().attributes[0].value, R"(<a & "b">)");
}

TEST(DsmlTest, ParseRejectsWrongRoot) {
  EXPECT_FALSE(format::parse_dsml("<notdsml/>").ok());
  EXPECT_FALSE(format::parse_dsml("<dsml:dsml></dsml:dsml>").ok());
}

TEST(XrslFormatTest, DsmlAccepted) {
  auto req = rsl::XrslRequest::parse("(info=Memory)(format=dsml)");
  ASSERT_TRUE(req.ok());
  EXPECT_EQ(req->format, rsl::OutputFormat::kDsml);
  // Round-trips through to_rsl.
  auto again = rsl::XrslRequest::parse(req->to_rsl());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->format, rsl::OutputFormat::kDsml);
}

class DsmlServiceTest : public ig::test::GridFixture {
 protected:
  DsmlServiceTest() {
    monitor = std::make_shared<info::SystemMonitor>(*clock, "dsml.sim");
    EXPECT_TRUE(core::Configuration::table1().apply(*monitor, registry).ok());
    exec::BatchConfig batch_config;
    batch_config.queues = {{"fast", 10}, {"slow", 0}};
    backend = std::make_shared<exec::BatchBackend>(registry, *clock, batch_config, system);
    sandbox = std::make_shared<exec::SandboxBackend>(*clock, exec::SandboxConfig{}, system);
    core::InfoGramConfig config;
    config.host = "dsml.sim";
    config.max_restarts = 2;
    config.jar_backend = sandbox;
    service = std::make_unique<core::InfoGramService>(monitor, backend, host_cred, &trust,
                                                      &gridmap, &policy, clock.get(),
                                                      logger, config);
    EXPECT_TRUE(service->start(*network).ok());
  }
  std::shared_ptr<info::SystemMonitor> monitor;
  std::shared_ptr<exec::BatchBackend> backend;
  std::shared_ptr<exec::SandboxBackend> sandbox;
  std::unique_ptr<core::InfoGramService> service;
};

TEST_F(DsmlServiceTest, DsmlOverTheWire) {
  core::InfoGramClient client(*network, service->address(), alice, trust, *clock);
  auto resp = client.request("(info=Memory)(format=dsml)");
  ASSERT_TRUE(resp.ok());
  EXPECT_NE(resp->payload.find("<dsml:dsml"), std::string::npos);
  ASSERT_EQ(resp->records.size(), 1u);  // client parsed the DSML payload
  EXPECT_NE(resp->records[0].find("Memory:total"), nullptr);
}

TEST_F(DsmlServiceTest, ExecutionReflection) {
  core::InfoGramClient client(*network, service->address(), alice, trust, *clock);
  auto schema = client.fetch_schema();
  ASSERT_TRUE(schema.ok());
  ASSERT_TRUE(schema->execution.has_value());
  EXPECT_EQ(schema->execution->backend, "batch");
  EXPECT_TRUE(schema->execution->jar_supported);
  EXPECT_EQ(schema->execution->max_restarts, 2);
  EXPECT_EQ(schema->execution->queues, (std::vector<std::string>{"fast", "slow"}));
}

TEST(ExecutionSchemaTest, XmlRoundtripWithExecution) {
  format::ServiceSchema schema;
  schema.service = "x";
  format::ExecutionSchema exec;
  exec.backend = "batch";
  exec.jar_supported = true;
  exec.max_restarts = 3;
  exec.queues = {"a", "b"};
  schema.execution = exec;
  schema.keywords.push_back({"K", "cmd", ms(10), {}});
  auto parsed = format::ServiceSchema::parse_xml(schema.to_xml());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value(), schema);
}

}  // namespace
}  // namespace ig
