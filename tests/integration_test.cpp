// Cross-module integration tests: the Fig. 2 vs Fig. 4 protocol comparison,
// crash recovery through a real log file, and concurrent multi-client load
// against one InfoGram endpoint.
#include <gtest/gtest.h>

#include <cstdio>
#include <thread>

#include "core/infogram_client.hpp"
#include "grid/broker.hpp"
#include "grid/virtual_organization.hpp"
#include "mds/filter.hpp"
#include "mds/service.hpp"
#include "obs/telemetry.hpp"

namespace ig {
namespace {

constexpr Duration kWait = seconds(30);

class IntegrationTest : public ::testing::Test {
 protected:
  IntegrationTest() : clock(seconds(1000)), vo("integration", network, clock, 1234) {
    user = vo.enroll_user("alice", "alice");
  }

  VirtualClock clock;
  net::Network network;
  grid::VirtualOrganization vo;
  security::Credential user;
};

// The architectural claim of Fig. 2 vs Fig. 4: the same workload (one job
// + one info query) needs two connections and two handshakes against the
// GRAM+MDS deployment but one of each against InfoGram.
TEST_F(IntegrationTest, UnifiedEndpointHalvesConnectionsAndHandshakes) {
  grid::ResourceOptions both;
  both.host = "dual.sim";
  both.run_infogram = true;
  both.run_gram = true;
  both.run_mds = true;
  auto resource = vo.add_resource(both);
  ASSERT_TRUE(resource.ok());

  // --- Fig. 2: separate services, separate protocols ---
  gram::GramClient gram_client(network, (*resource)->gram_address(), user, vo.trust(),
                               clock);
  mds::MdsClient mds_client(network, (*resource)->mds_address(), user, vo.trust(), clock);
  auto entries = mds_client.search("o=Grid", mds::Scope::kSubtree,
                                   *mds::Filter::parse("(kw=CPULoad)"));
  ASSERT_TRUE(entries.ok());
  auto contact = gram_client.submit("&(executable=/bin/echo)(arguments=fig2)");
  ASSERT_TRUE(contact.ok());
  ASSERT_TRUE(gram_client.wait(*contact, kWait).ok());
  net::TrafficStats separate = gram_client.stats();
  separate.merge(mds_client.stats());

  // --- Fig. 4: one InfoGram service ---
  core::InfoGramClient unified_client(network, (*resource)->infogram_address(), user,
                                      vo.trust(), clock);
  auto resp =
      unified_client.request("&(executable=/bin/echo)(arguments=fig4)(info=CPULoad)");
  ASSERT_TRUE(resp.ok());
  ASSERT_TRUE(resp->job_contact.has_value());
  ASSERT_TRUE(unified_client.wait(*resp->job_contact, kWait).ok());
  net::TrafficStats unified = unified_client.stats();

  EXPECT_EQ(separate.connects, 2u);
  EXPECT_EQ(unified.connects, 1u);
  // Two handshakes (2 round trips each) vs one; and the combined request
  // folds submit+query into one round trip.
  EXPECT_GT(separate.requests, unified.requests);
  EXPECT_GT(separate.virtual_time, unified.virtual_time);
}

// Crash recovery through a real on-disk log: submit jobs, "crash" before
// they are marked terminal, restart a fresh service from the same log
// file, and observe the incomplete ones resubmitted and completed.
TEST_F(IntegrationTest, CrashRecoveryThroughLogFile) {
  std::string log_path = ::testing::TempDir() + "/infogram_recovery_test.log";
  std::remove(log_path.c_str());
  vo.logger()->add_sink(std::make_shared<logging::FileSink>(log_path));

  grid::ResourceOptions options;
  options.host = "crashy.sim";
  auto resource = vo.add_resource(options);
  ASSERT_TRUE(resource.ok());

  core::InfoGramClient client(network, (*resource)->infogram_address(), user, vo.trust(),
                              clock);
  auto done = client.request("&(executable=/bin/echo)(arguments=survives)");
  ASSERT_TRUE(done.ok());
  ASSERT_TRUE(client.wait(*done->job_contact, kWait).ok());

  // Simulate the crash: append a submission event whose job never reached
  // a terminal state (as if the process died mid-execution).
  {
    logging::FileSink sink(log_path);
    logging::LogEvent event;
    event.sequence = 100000;
    event.time = clock.now();
    event.type = logging::EventType::kJobSubmitted;
    event.subject = user.base_subject();
    event.local_user = "alice";
    event.job_id = 888888;
    event.detail = "&(executable=/bin/echo)(arguments=recovered)";
    sink.append(event);
  }

  auto events = logging::FileSink::read(log_path);
  ASSERT_TRUE(events.ok());
  auto plan = logging::build_recovery_plan(events.value());
  ASSERT_EQ(plan.size(), 1u);

  auto recovered = (*resource)->infogram()->recover_from_log(events.value());
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered.value(), 1u);

  // The recovered job must actually run to completion; find it in the log.
  bool finished_after_recovery = false;
  for (int spin = 0; spin < 1000 && !finished_after_recovery; ++spin) {
    auto latest = logging::FileSink::read(log_path);
    ASSERT_TRUE(latest.ok());
    bool restarted = false;
    for (const auto& event : latest.value()) {
      if (event.type == logging::EventType::kJobRestarted) restarted = true;
      if (restarted && event.type == logging::EventType::kJobFinished) {
        finished_after_recovery = true;
      }
    }
    WallClock::instance().sleep_for(ms(2));
  }
  EXPECT_TRUE(finished_after_recovery);
  std::remove(log_path.c_str());
}

// Many clients hammer one InfoGram endpoint with mixed job + info traffic.
TEST_F(IntegrationTest, ConcurrentMixedWorkload) {
  grid::ResourceOptions options;
  options.host = "busy.sim";
  options.batch_nodes = 4;
  auto resource = vo.add_resource(options);
  ASSERT_TRUE(resource.ok());

  constexpr int kClients = 6;
  constexpr int kOpsPerClient = 15;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      core::InfoGramClient client(network, (*resource)->infogram_address(), user,
                                  vo.trust(), clock);
      for (int i = 0; i < kOpsPerClient; ++i) {
        if ((c + i) % 3 == 0) {
          rsl::XrslBuilder builder;
          builder.executable("/bin/echo").argument("c" + std::to_string(c));
          auto contact = client.submit_job(builder.request());
          if (!contact.ok() || !client.wait(*contact, kWait).ok()) {
            failures.fetch_add(1);
          }
        } else {
          auto records = client.query_info({"Memory", "CPULoad"});
          if (!records.ok() || records->size() != 2) failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  // Caching held: Memory (80ms TTL) executed far fewer times than it was
  // queried, while CPULoad (TTL 0) executed every time.
  auto memory_runs = (*resource)->monitor()->provider("Memory")->refresh_count();
  auto load_runs = (*resource)->monitor()->provider("CPULoad")->refresh_count();
  EXPECT_LT(memory_runs, load_runs);
}

// A delegated proxy credential drives the full stack end to end.
TEST_F(IntegrationTest, ProxyDelegationEndToEnd) {
  grid::ResourceOptions options;
  options.host = "proxy.sim";
  auto resource = vo.add_resource(options);
  ASSERT_TRUE(resource.ok());
  Rng rng(404);
  auto proxy = user.delegate_proxy(seconds(600), clock, rng);
  ASSERT_TRUE(proxy.ok());
  core::InfoGramClient client(network, (*resource)->infogram_address(), *proxy,
                              vo.trust(), clock);
  auto resp = client.request("&(executable=/bin/echo)(arguments=via-proxy)(info=Date)");
  ASSERT_TRUE(resp.ok());
  ASSERT_TRUE(resp->job_contact.has_value());
  EXPECT_EQ(client.wait(*resp->job_contact, kWait)->state, exec::JobState::kDone);

  // After the proxy expires, a fresh connection is refused.
  clock.advance(seconds(601));
  core::InfoGramClient expired(network, (*resource)->infogram_address(), *proxy,
                               vo.trust(), clock);
  auto denied = expired.query_info({"Date"});
  ASSERT_FALSE(denied.ok());
  EXPECT_EQ(denied.code(), ErrorCode::kDenied);
}

// Telemetry across the full stack: run a known workload against an
// instrumented resource and check the metric deltas match it — queried
// through the service itself, the way an operator would.
TEST_F(IntegrationTest, MetricDeltasMatchWorkload) {
  grid::ResourceOptions options;
  options.host = "observed.sim";
  options.telemetry = std::make_shared<obs::Telemetry>(clock);
  options.trace_sample_every = 1;  // assertions count every request's trace
  auto resource = vo.add_resource(options);
  ASSERT_TRUE(resource.ok());
  core::InfoGramClient client(network, (*resource)->infogram_address(), user, vo.trust(),
                              clock);

  auto metric = [&](const char* name) -> std::uint64_t {
    auto records = client.query_info({"metrics"});
    EXPECT_TRUE(records.ok());
    if (!records.ok() || records->empty()) return 0;
    const auto* attr = (*records)[0].find(std::string("metrics:") + name);
    return attr == nullptr ? 0 : std::stoull(attr->value);
  };

  std::uint64_t requests0 = metric("requests.total");
  std::uint64_t submitted0 = metric("gram.jobs.submitted");
  std::uint64_t queued0 = metric("exec.jobs.queued");
  std::uint64_t misses0 = metric("info.cache.misses");

  constexpr int kQueries = 4;
  for (int i = 0; i < kQueries; ++i) {
    ASSERT_TRUE(client.query_info({"CPULoad"}).ok());  // TTL 0: always a miss
    clock.advance(ms(10));
  }
  auto resp = client.request("&(executable=/bin/echo)(arguments=counted)");
  ASSERT_TRUE(resp.ok());
  ASSERT_TRUE(resp->job_contact.has_value());
  ASSERT_TRUE(client.wait(*resp->job_contact, kWait).ok());

  // Each metric() probe is itself a request, so requests.total moves by
  // more than the workload alone; the workload contributes exactly
  // kQueries + 1 on top of the probes in between.
  EXPECT_GE(metric("requests.total") - requests0, kQueries + 1u);
  EXPECT_EQ(metric("gram.jobs.submitted") - submitted0, 1u);
  EXPECT_EQ(metric("exec.jobs.queued") - queued0, 1u);
  EXPECT_GE(metric("info.cache.misses") - misses0, static_cast<std::uint64_t>(kQueries));
  // The completed job surfaced in the transition counters and its trace
  // is retained, queryable as info=traces.
  EXPECT_GE(metric("gram.transitions.DONE"), 1u);
  auto traces = client.query_info({"traces"});
  ASSERT_TRUE(traces.ok());
  ASSERT_EQ(traces->size(), 1u);
  const auto* completed = (*traces)[0].find("traces:completed");
  ASSERT_NE(completed, nullptr);
  EXPECT_GE(std::stoull(completed->value), static_cast<std::uint64_t>(kQueries) + 1);
}

// Network partition mid-session: requests fail cleanly, then recover.
TEST_F(IntegrationTest, PartitionAndRecovery) {
  grid::ResourceOptions options;
  options.host = "flaky.sim";
  auto resource = vo.add_resource(options);
  ASSERT_TRUE(resource.ok());
  core::InfoGramClient client(network, (*resource)->infogram_address(), user, vo.trust(),
                              clock);
  ASSERT_TRUE(client.query_info({"Date"}).ok());
  network.partition((*resource)->infogram_address());
  auto failed = client.query_info({"Date"});
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.code(), ErrorCode::kUnavailable);
  network.heal((*resource)->infogram_address());
  EXPECT_TRUE(client.query_info({"Date"}).ok());
}

}  // namespace
}  // namespace ig
