#include <gtest/gtest.h>

#include "rsl/parser.hpp"

namespace ig::rsl {
namespace {

// ---------- Basic parsing ----------

TEST(RslParseTest, SingleRelation) {
  auto node = parse("(executable=/bin/date)");
  ASSERT_TRUE(node.ok());
  EXPECT_EQ(node->kind, Node::Kind::kConjunction);
  ASSERT_EQ(node->relations.size(), 1u);
  EXPECT_EQ(node->relations[0].attribute, "executable");
  EXPECT_EQ(node->relations[0].op, Op::kEq);
  ASSERT_EQ(node->relations[0].values.size(), 1u);
  EXPECT_EQ(node->relations[0].values[0], Value::literal("/bin/date"));
}

TEST(RslParseTest, BareSequenceIsImplicitConjunction) {
  auto node = parse("(a=1)(b=2)(c=3)");
  ASSERT_TRUE(node.ok());
  EXPECT_EQ(node->kind, Node::Kind::kConjunction);
  EXPECT_EQ(node->relations.size(), 3u);
}

TEST(RslParseTest, ExplicitConjunction) {
  auto node = parse("& (executable=a.out) (count=4)");
  ASSERT_TRUE(node.ok());
  EXPECT_EQ(node->kind, Node::Kind::kConjunction);
  ASSERT_EQ(node->relations.size(), 2u);
  EXPECT_EQ(node->relations[1].attribute, "count");
}

TEST(RslParseTest, AttributeNamesAreCaseInsensitive) {
  auto node = parse("(ExEcUtAbLe=a)");
  ASSERT_TRUE(node.ok());
  EXPECT_EQ(node->relations[0].attribute, "executable");
}

TEST(RslParseTest, AllOperators) {
  auto node = parse("(a=1)(b!=2)(c<3)(d>4)(e<=5)(f>=6)");
  ASSERT_TRUE(node.ok());
  ASSERT_EQ(node->relations.size(), 6u);
  EXPECT_EQ(node->relations[0].op, Op::kEq);
  EXPECT_EQ(node->relations[1].op, Op::kNeq);
  EXPECT_EQ(node->relations[2].op, Op::kLt);
  EXPECT_EQ(node->relations[3].op, Op::kGt);
  EXPECT_EQ(node->relations[4].op, Op::kLe);
  EXPECT_EQ(node->relations[5].op, Op::kGe);
}

TEST(RslParseTest, ValueSequence) {
  auto node = parse("(arguments=a b c)");
  ASSERT_TRUE(node.ok());
  ASSERT_EQ(node->relations[0].values.size(), 3u);
  EXPECT_EQ(node->relations[0].values[2], Value::literal("c"));
}

TEST(RslParseTest, QuotedStrings) {
  auto node = parse(R"((stdout="file with spaces.txt"))");
  ASSERT_TRUE(node.ok());
  EXPECT_EQ(node->relations[0].values[0], Value::literal("file with spaces.txt"));
}

TEST(RslParseTest, DoubledQuoteEscape) {
  auto node = parse(R"((x="say ""hi"" now"))");
  ASSERT_TRUE(node.ok());
  EXPECT_EQ(node->relations[0].values[0], Value::literal("say \"hi\" now"));
}

TEST(RslParseTest, NestedValueLists) {
  auto node = parse("(environment=(HOME /home/alice)(PATH /bin))");
  ASSERT_TRUE(node.ok());
  const auto& values = node->relations[0].values;
  ASSERT_EQ(values.size(), 2u);
  EXPECT_EQ(values[0],
            Value::list({Value::literal("HOME"), Value::literal("/home/alice")}));
  EXPECT_EQ(values[1], Value::list({Value::literal("PATH"), Value::literal("/bin")}));
}

TEST(RslParseTest, VariableReference) {
  auto node = parse("(directory=$(HOME))");
  ASSERT_TRUE(node.ok());
  EXPECT_EQ(node->relations[0].values[0], Value::variable("HOME"));
}

TEST(RslParseTest, ConcatenationOfVariableAndLiteral) {
  auto node = parse("(directory=$(HOME)/data)");
  ASSERT_TRUE(node.ok());
  EXPECT_EQ(node->relations[0].values[0],
            Value::concat({Value::variable("HOME"), Value::literal("/data")}));
}

TEST(RslParseTest, MultiRequest) {
  auto node = parse("+(&(executable=a)(count=1))(&(executable=b)(count=2))");
  ASSERT_TRUE(node.ok());
  EXPECT_EQ(node->kind, Node::Kind::kMulti);
  ASSERT_EQ(node->children.size(), 2u);
  EXPECT_EQ(node->children[0].relations[0].values[0], Value::literal("a"));
  EXPECT_EQ(node->children[1].relations[1].values[0], Value::literal("2"));
}

TEST(RslParseTest, Disjunction) {
  auto node = parse("|(queue=fast)(queue=slow)");
  ASSERT_TRUE(node.ok());
  EXPECT_EQ(node->kind, Node::Kind::kDisjunction);
  EXPECT_EQ(node->relations.size(), 2u);
}

TEST(RslParseTest, NestedBoolean) {
  auto node = parse("&(executable=a)(|(queue=fast)(queue=slow))");
  ASSERT_TRUE(node.ok());
  EXPECT_EQ(node->relations.size(), 1u);
  ASSERT_EQ(node->children.size(), 1u);
  EXPECT_EQ(node->children[0].kind, Node::Kind::kDisjunction);
}

TEST(RslParseTest, FindHelpers) {
  auto node = parse("(info=Memory)(info=CPU)(format=xml)");
  ASSERT_TRUE(node.ok());
  ASSERT_NE(node->find("format"), nullptr);
  EXPECT_EQ(node->find("nonexistent"), nullptr);
  EXPECT_EQ(node->find_all("info").size(), 2u);
}

TEST(RslParseTest, WhitespaceTolerance) {
  auto node = parse("  &\n  ( executable = /bin/date )\n  ( count = 2 )\n");
  ASSERT_TRUE(node.ok());
  EXPECT_EQ(node->relations.size(), 2u);
}

// ---------- Errors ----------

class RslParseErrorTest : public ::testing::TestWithParam<const char*> {};

TEST_P(RslParseErrorTest, Rejects) {
  auto node = parse(GetParam());
  ASSERT_FALSE(node.ok()) << GetParam();
  EXPECT_EQ(node.code(), ErrorCode::kParseError);
}

INSTANTIATE_TEST_SUITE_P(Corpus, RslParseErrorTest,
                         ::testing::Values("", "   ", "(a=1", "(=1)", "(a 1)", "a=1",
                                           "(a=\"unterminated)", "(a=$(unclosed)",
                                           "(a=$())", "(a!1)", "&", "(a=1)trailing",
                                           "(a=(1 2)", "(a=1))"));

// ---------- Unparse / roundtrip ----------

class RslRoundtripTest : public ::testing::TestWithParam<const char*> {};

TEST_P(RslRoundtripTest, ParseUnparseParseIsStable) {
  auto first = parse(GetParam());
  ASSERT_TRUE(first.ok()) << GetParam();
  std::string text = unparse(first.value());
  auto second = parse(text);
  ASSERT_TRUE(second.ok()) << text;
  EXPECT_EQ(first.value(), second.value()) << text;
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, RslRoundtripTest,
    ::testing::Values("(executable=/bin/date)", "(a=1)(b=2)",
                      "&(executable=a.out)(count=4)(arguments=x y z)",
                      R"((stdout="a file"))", R"((x="""quoted"""))",
                      "(environment=(HOME /h)(PATH /p))", "(directory=$(HOME))",
                      "(directory=$(HOME)/data/run1)",
                      "+(&(executable=a))(&(executable=b))",
                      "|(queue=fast)(queue=slow)",
                      "&(executable=a)(|(queue=f)(queue=s))",
                      "(maxtime>=10)(count<=4)(x!=y)",
                      "(info=Memory)(info=CPU)(response=immediate)(format=xml)"));

// ---------- Substitution ----------

TEST(RslSubstituteTest, OuterBindings) {
  auto node = parse("(directory=$(HOME)/data)");
  ASSERT_TRUE(node.ok());
  auto resolved = substitute(node.value(), {{"HOME", "/home/alice"}});
  ASSERT_TRUE(resolved.ok());
  EXPECT_EQ(resolved->relations[0].values[0], Value::literal("/home/alice/data"));
}

TEST(RslSubstituteTest, RslSubstitutionRelationConsumed) {
  auto node = parse("(rsl_substitution=(BASE /usr/local))(executable=$(BASE)/bin/app)");
  ASSERT_TRUE(node.ok());
  auto resolved = substitute(node.value());
  ASSERT_TRUE(resolved.ok());
  EXPECT_EQ(resolved->find("rsl_substitution"), nullptr);
  EXPECT_EQ(resolved->relations[0].values[0], Value::literal("/usr/local/bin/app"));
}

TEST(RslSubstituteTest, InnerDefinitionShadowsOuter) {
  auto node = parse("(rsl_substitution=(V inner))(x=$(V))");
  ASSERT_TRUE(node.ok());
  auto resolved = substitute(node.value(), {{"V", "outer"}});
  ASSERT_TRUE(resolved.ok());
  EXPECT_EQ(resolved->relations[0].values[0], Value::literal("inner"));
}

TEST(RslSubstituteTest, ChainedDefinitions) {
  auto node = parse("(rsl_substitution=(A /a)(B $(A)/b))(x=$(B)/c)");
  ASSERT_TRUE(node.ok());
  auto resolved = substitute(node.value());
  ASSERT_TRUE(resolved.ok());
  EXPECT_EQ(resolved->relations[0].values[0], Value::literal("/a/b/c"));
}

TEST(RslSubstituteTest, UndefinedVariableFails) {
  auto node = parse("(x=$(NOPE))");
  ASSERT_TRUE(node.ok());
  auto resolved = substitute(node.value());
  ASSERT_FALSE(resolved.ok());
  EXPECT_EQ(resolved.code(), ErrorCode::kParseError);
}

TEST(RslSubstituteTest, SubstitutesInsideChildren) {
  auto node = parse("&(rsl_substitution=(Q fast))(|(queue=$(Q))(queue=slow))");
  ASSERT_TRUE(node.ok());
  auto resolved = substitute(node.value());
  ASSERT_TRUE(resolved.ok());
  EXPECT_EQ(resolved->children[0].relations[0].values[0], Value::literal("fast"));
}

TEST(RslSubstituteTest, MalformedSubstitutionPair) {
  auto node = parse("(rsl_substitution=(ONLY))");
  ASSERT_TRUE(node.ok());
  EXPECT_FALSE(substitute(node.value()).ok());
}

// ---------- Flatten / display ----------

TEST(RslValueTest, FlattenLiterals) {
  auto node = parse("(arguments=a b c)");
  ASSERT_TRUE(node.ok());
  auto flat = flatten(node->relations[0].values);
  ASSERT_TRUE(flat.ok());
  EXPECT_EQ(flat.value(), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(RslValueTest, FlattenRejectsUnresolved) {
  auto node = parse("(arguments=$(X))");
  ASSERT_TRUE(node.ok());
  EXPECT_FALSE(flatten(node->relations[0].values).ok());
  auto list = parse("(environment=(A 1))");
  ASSERT_TRUE(list.ok());
  EXPECT_FALSE(flatten(list->relations[0].values).ok());
}

TEST(RslValueTest, DisplayString) {
  auto node = parse("(arguments=a \"b c\" (d e))");
  ASSERT_TRUE(node.ok());
  EXPECT_EQ(to_display_string(node->relations[0].values), "a b c (d e)");
}

}  // namespace
}  // namespace ig::rsl
