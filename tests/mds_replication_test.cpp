// Replicated, sharded directory layer: shard assignment, replica apply/
// install semantics, coordinator fan-out and anti-entropy repair, the
// freshest-live-replica router, and the chaos scenarios the robustness
// story rests on — replica kills, partitions and registration churn with
// the registry continuously queryable throughout.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "common/fault.hpp"
#include "info/obs_provider.hpp"
#include "info/provider.hpp"
#include "info/system_monitor.hpp"
#include "mds/giis.hpp"
#include "mds/gris.hpp"
#include "mds/replication.hpp"
#include "mds/router.hpp"
#include "mds/service.hpp"
#include "test_util.hpp"

namespace ig::mds {
namespace {

DirectoryEntry make_entry(const std::string& dn,
                          std::map<std::string, std::string> attrs = {}) {
  DirectoryEntry entry;
  entry.dn = dn;
  entry.add("objectclass", "Test");
  for (auto& [k, v] : attrs) entry.add(k, v);
  return entry;
}

// ---------- ShardMap ----------

TEST(ShardMapTest, SubtreeEntriesColocate) {
  ShardMap map(8);
  EXPECT_EQ(ShardMap::shard_key("kw=Memory, host=a, o=Grid"), "host=a");
  EXPECT_EQ(ShardMap::shard_key("host=a, o=Grid"), "host=a");
  EXPECT_EQ(ShardMap::shard_key("o=Grid"), "");
  // Every entry of one host subtree — and a base query for it — must land
  // on the same shard, or scoped lookups would touch several replicas.
  EXPECT_EQ(map.shard_of("kw=Memory, host=a, o=Grid"), map.shard_of("host=a, o=Grid"));
  EXPECT_EQ(map.shard_of("kw=CPU, host=a, o=Grid"), map.shard_of("host=a, o=Grid"));
}

TEST(ShardMapTest, SpreadsHostsAndClampsCount) {
  ShardMap map(8);
  std::set<std::size_t> used;
  for (int i = 0; i < 64; ++i) {
    used.insert(map.shard_of("host=node" + std::to_string(i) + ", o=Grid"));
  }
  EXPECT_GT(used.size(), 4u);  // fnv1a should not collapse 64 hosts badly
  ShardMap one(0);             // count is clamped to >= 1
  EXPECT_EQ(one.shard_count(), 1u);
  EXPECT_EQ(one.shard_of("host=a, o=Grid"), 0u);
}

// ---------- ReplicationOp ----------

TEST(ReplicationOpTest, SerializeParseRoundtrip) {
  ReplicationOp put;
  put.generation = 7;
  put.entry = make_entry("kw=Memory, host=a, o=Grid", {{"total", "512"}});
  ReplicationOp tomb;
  tomb.generation = 8;
  tomb.tombstone = true;
  tomb.entry.dn = "kw=CPU, host=a, o=Grid";
  auto parsed = ReplicationOp::parse_all(put.serialize() + tomb.serialize());
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->size(), 2u);
  EXPECT_EQ((*parsed)[0].generation, 7u);
  EXPECT_FALSE((*parsed)[0].tombstone);
  EXPECT_EQ((*parsed)[0].entry, put.entry);  // framing attrs stripped again
  EXPECT_EQ((*parsed)[1].generation, 8u);
  EXPECT_TRUE((*parsed)[1].tombstone);
}

TEST(ReplicationOpTest, ParseRejectsMissingGeneration) {
  EXPECT_FALSE(ReplicationOp::parse_all(make_entry("kw=X, o=Grid").serialize()).ok());
}

// ---------- ReplicaStore ----------

std::vector<ReplicationOp> ops_from(std::uint64_t first_gen,
                                    std::vector<DirectoryEntry> entries) {
  std::vector<ReplicationOp> ops;
  for (auto& entry : entries) {
    ReplicationOp op;
    op.generation = first_gen++;
    op.entry = std::move(entry);
    ops.push_back(std::move(op));
  }
  return ops;
}

TEST(ReplicaStoreTest, AppliesDeltasAndRejectsGaps) {
  ReplicaStore store(2);
  std::size_t shard = 0;
  ASSERT_TRUE(store.apply(shard, 0, ops_from(1, {make_entry("host=a, o=Grid")})).ok());
  EXPECT_EQ(store.generation(shard), 1u);
  // A delta from the wrong base generation is stale, not applied.
  auto stale = store.apply(shard, 5, ops_from(6, {make_entry("host=b, o=Grid")}));
  EXPECT_EQ(stale.code(), ErrorCode::kStale);
  // A batch whose ops skip a generation is rejected outright.
  auto gap = store.apply(shard, 1, ops_from(3, {make_entry("host=b, o=Grid")}));
  EXPECT_EQ(gap.code(), ErrorCode::kInvalidArgument);
  // Tombstones erase; the view reflects the surviving set.
  std::vector<ReplicationOp> ops = ops_from(2, {make_entry("host=b, o=Grid")});
  ReplicationOp tomb;
  tomb.generation = 3;
  tomb.tombstone = true;
  tomb.entry.dn = "host=a, o=Grid";
  ops.push_back(tomb);
  ASSERT_TRUE(store.apply(shard, 1, ops).ok());
  ShardViewPtr view = store.view(shard);
  EXPECT_EQ(view->generation, 3u);
  EXPECT_EQ(view->entries.size(), 1u);
  EXPECT_EQ(view->entries.count("host=b, o=Grid"), 1u);
}

TEST(ReplicaStoreTest, InstallNeverRollsBack) {
  ReplicaStore store(1);
  ShardView fresh;
  fresh.generation = 10;
  fresh.entries["host=a, o=Grid"] = make_entry("host=a, o=Grid");
  ASSERT_TRUE(store.install(0, fresh).ok());
  EXPECT_EQ(store.generation(0), 10u);
  // A late, older full sync must not rewind the replica.
  ShardView old;
  old.generation = 4;
  ASSERT_TRUE(store.install(0, old).ok());
  EXPECT_EQ(store.generation(0), 10u);
  EXPECT_EQ(store.view(0)->entries.size(), 1u);
}

// ---------- Coordinator + replica servers over the network ----------

class ReplicationFixture : public ig::test::GridFixture {
 protected:
  /// Bring up `replica_count` replica servers and a coordinator that
  /// knows them all.
  void start_cluster(std::size_t replica_count, CoordinatorOptions options = {}) {
    coordinator = std::make_shared<ReplicationCoordinator>(*network, options);
    for (std::size_t i = 0; i < replica_count; ++i) {
      net::Address addr{"replica" + std::to_string(i) + ".sim", 2137};
      auto store = std::make_shared<ReplicaStore>(coordinator->shard_count());
      auto server = std::make_shared<ReplicaServer>(store);
      ASSERT_TRUE(server->start(*network, addr).ok());
      stores.push_back(store);
      servers.push_back(server);
      addrs.push_back(addr);
      coordinator->add_replica(addr);
    }
  }

  std::shared_ptr<ReplicationCoordinator> coordinator;
  std::vector<std::shared_ptr<ReplicaStore>> stores;
  std::vector<std::shared_ptr<ReplicaServer>> servers;
  std::vector<net::Address> addrs;
};

TEST_F(ReplicationFixture, PutFansOutToAssignedReplicas) {
  CoordinatorOptions options;
  options.shard_count = 4;
  options.replication_factor = 3;
  start_cluster(3, options);
  ASSERT_TRUE(coordinator->put(make_entry("host=a, o=Grid", {{"hostname", "a"}})).ok());
  ASSERT_TRUE(coordinator->put(make_entry("kw=Memory, host=a, o=Grid")).ok());
  std::size_t shard = coordinator->shard_map().shard_of("host=a, o=Grid");
  // With 3 hosts and factor 3 every replica holds every shard.
  for (std::size_t i = 0; i < stores.size(); ++i) {
    EXPECT_EQ(stores[i]->generation(shard), 2u) << "replica " << i;
    EXPECT_EQ(stores[i]->view(shard)->entries.size(), 2u) << "replica " << i;
    EXPECT_EQ(coordinator->acked_generation(addrs[i], shard), 2u) << "replica " << i;
  }
  EXPECT_EQ(coordinator->apply_failures(), 0u);
}

TEST_F(ReplicationFixture, EraseReplicatesTombstones) {
  start_cluster(2);
  ASSERT_TRUE(coordinator->put(make_entry("host=a, o=Grid")).ok());
  ASSERT_TRUE(coordinator->erase("host=a, o=Grid").ok());
  EXPECT_EQ(coordinator->erase("host=a, o=Grid").code(), ErrorCode::kNotFound);
  std::size_t shard = coordinator->shard_map().shard_of("host=a, o=Grid");
  for (const auto& store : stores) {
    EXPECT_EQ(store->generation(shard), 2u);
    EXPECT_TRUE(store->view(shard)->entries.empty());
  }
  EXPECT_EQ(coordinator->size(), 0u);
}

TEST_F(ReplicationFixture, AntiEntropyCatchesUpPartitionedReplica) {
  CoordinatorOptions options;
  options.shard_count = 2;
  options.op_log_limit = 2;  // force the gap past delta range -> full sync
  start_cluster(2, options);
  network->partition(addrs[1]);
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(coordinator->put(make_entry("host=node" + std::to_string(i) + ", o=Grid")).ok());
  }
  EXPECT_GT(coordinator->apply_failures(), 0u);  // pushes to the dead replica
  EXPECT_EQ(stores[1]->generations(), std::vector<std::uint64_t>(2, 0));

  network->heal(addrs[1]);
  auto report = coordinator->run_anti_entropy();
  EXPECT_EQ(report.unreachable, 0u);
  EXPECT_EQ(report.replicas_checked, 2u);
  EXPECT_GT(report.repairs, 0u);
  EXPECT_EQ(coordinator->anti_entropy_repairs(), report.repairs);
  EXPECT_EQ(stores[1]->generations(), coordinator->generations());
}

TEST_F(ReplicationFixture, AntiEntropyResyncsWipedReplica) {
  start_cluster(2);
  ASSERT_TRUE(coordinator->put(make_entry("host=a, o=Grid")).ok());
  ASSERT_TRUE(coordinator->put(make_entry("host=b, o=Grid")).ok());

  // Simulated replica restart: same address, empty store. The coordinator
  // still believes the old acked generations — only anti-entropy's status
  // pull (authoritative for what the replica holds) can notice the wipe.
  servers[1]->stop();
  stores[1] = std::make_shared<ReplicaStore>(coordinator->shard_count());
  servers[1] = std::make_shared<ReplicaServer>(stores[1]);
  ASSERT_TRUE(servers[1]->start(*network, addrs[1]).ok());

  auto report = coordinator->run_anti_entropy();
  EXPECT_GT(report.repairs, 0u);
  EXPECT_EQ(stores[1]->generations(), coordinator->generations());
  EXPECT_EQ(stores[1]->view(coordinator->shard_map().shard_of("host=a, o=Grid"))
                ->entries.count("host=a, o=Grid"),
            1u);
}

// ---------- Router ----------

class RouterFixture : public ReplicationFixture {
 protected:
  std::shared_ptr<ReplicaRouter> make_router(RouterOptions options = {}) {
    return std::make_shared<ReplicaRouter>(*network, coordinator, *clock, options);
  }
};

TEST_F(RouterFixture, RoutesScopedQueryToOneShardAndFansOutRoot) {
  start_cluster(3);
  ASSERT_TRUE(coordinator->put(make_entry("host=a, o=Grid", {{"hostname", "a"}})).ok());
  ASSERT_TRUE(coordinator->put(make_entry("kw=Memory, host=a, o=Grid")).ok());
  ASSERT_TRUE(coordinator->put(make_entry("host=b, o=Grid", {{"hostname", "b"}})).ok());
  auto router = make_router();

  auto scoped = router->search("host=a, o=Grid", Scope::kSubtree, Filter::match_all());
  ASSERT_TRUE(scoped.ok());
  EXPECT_EQ(scoped->size(), 2u);

  auto all = router->search("o=Grid", Scope::kSubtree, Filter::match_all());
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 3u);
  EXPECT_EQ(router->queries(), 2u);
  EXPECT_EQ(router->failovers(), 0u);
}

TEST_F(RouterFixture, ReachabilityOrderingAvoidsDeadReplicasWithoutFailover) {
  start_cluster(3);
  ASSERT_TRUE(coordinator->put(make_entry("host=a, o=Grid")).ok());
  auto router = make_router();
  // Kill every replica but one: wherever the ordering starts, queries end
  // on the survivor and still succeed — without burning an attempt on the
  // dead ones (reachability sorts them last).
  network->partition(addrs[0]);
  network->partition(addrs[1]);
  auto hits = router->search("host=a, o=Grid", Scope::kBase, Filter::match_all());
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(hits->size(), 1u);
  EXPECT_EQ(router->failovers(), 0u);
}

TEST_F(RouterFixture, FailsOverMidQueryWhenPreferredAttemptFails) {
  start_cluster(2);
  ASSERT_TRUE(coordinator->put(make_entry("host=a, o=Grid")).ok());
  // The preferred replica looks alive to the ordering but its request
  // fails (one injected wire fault): the router must move to the next
  // candidate inside the same query and still answer.
  FaultPlan plan;
  plan.seed = 9;
  FaultSpec once;
  once.kind = FaultKind::kError;
  once.probability = 1.0;
  once.max_fires = 1;
  plan.add(std::string(fault_point::kNetRequest), once);
  network->set_fault_injector(std::make_shared<FaultInjector>(plan));

  auto router = make_router();
  auto hits = router->search("host=a, o=Grid", Scope::kBase, Filter::match_all());
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(hits->size(), 1u);
  EXPECT_EQ(router->failovers(), 1u);
}

TEST_F(RouterFixture, AllReplicasDownFailsAfterRetries) {
  start_cluster(2);
  ASSERT_TRUE(coordinator->put(make_entry("host=a, o=Grid")).ok());
  for (const auto& addr : addrs) network->partition(addr);
  auto router = make_router();
  TimePoint before = clock->now();
  auto hits = router->search("host=a, o=Grid", Scope::kBase, Filter::match_all());
  ASSERT_FALSE(hits.ok());
  EXPECT_GT(clock->now(), before);  // backoff between failover passes
  EXPECT_GT(router->failovers(), 0u);
}

TEST_F(RouterFixture, CountsStaleServes) {
  start_cluster(2);
  ASSERT_TRUE(coordinator->put(make_entry("host=a, o=Grid")).ok());
  // Block the replication channel, then write: every replica now trails
  // the coordinator, so the next read is a (counted) stale serve.
  FaultPlan plan;
  plan.seed = 3;
  FaultSpec block;
  block.kind = FaultKind::kError;
  block.probability = 1.0;
  plan.add(std::string(fault_point::kMdsReplication), block);
  coordinator->set_fault_injector(std::make_shared<FaultInjector>(plan));
  ASSERT_TRUE(coordinator->put(make_entry("host=a, o=Grid", {{"hostname", "a2"}})).ok());

  auto router = make_router();
  auto hits = router->search("host=a, o=Grid", Scope::kBase, Filter::match_all());
  ASSERT_TRUE(hits.ok());  // availability over freshness
  EXPECT_EQ(router->stale_routed(), 1u);
}

TEST_F(RouterFixture, DeadlineBoundsQuery) {
  start_cluster(1);
  ASSERT_TRUE(coordinator->put(make_entry("host=a, o=Grid")).ok());
  network->partition(addrs[0]);
  RouterOptions options;
  options.deadline = Duration(0);  // expires immediately: no attempts at all
  auto router = make_router(options);
  auto hits = router->search("host=a, o=Grid", Scope::kBase, Filter::match_all());
  ASSERT_FALSE(hits.ok());
  EXPECT_EQ(hits.code(), ErrorCode::kTimeout);
}

TEST_F(RouterFixture, ReplicasKeywordReportsHealthAndLag) {
  start_cluster(2);
  ASSERT_TRUE(coordinator->put(make_entry("host=a, o=Grid")).ok());
  auto router = make_router();
  ASSERT_TRUE(router->search("host=a, o=Grid", Scope::kBase, Filter::match_all()).ok());
  network->partition(addrs[1]);

  auto monitor = std::make_shared<info::SystemMonitor>(*clock, "test.sim");
  ASSERT_TRUE(register_replicas_provider(*monitor, router).ok());
  auto provider = monitor->provider("replicas");
  ASSERT_NE(provider, nullptr);
  EXPECT_EQ(provider->ttl(), Duration(0));  // TTL-0: always live

  auto record = provider->get(rsl::ResponseMode::kCached);
  ASSERT_TRUE(record.ok());
  const format::Attribute* shards = record->find("replicas:shards");
  ASSERT_NE(shards, nullptr);
  EXPECT_EQ(shards->value, std::to_string(coordinator->shard_count()));
  const format::Attribute* up = record->find(addrs[0].to_string() + ":reachable");
  ASSERT_NE(up, nullptr);
  EXPECT_EQ(up->value, "yes");
  const format::Attribute* down = record->find(addrs[1].to_string() + ":reachable");
  ASSERT_NE(down, nullptr);
  EXPECT_EQ(down->value, "no");
  EXPECT_NE(record->find(addrs[0].to_string() + ":breaker"), nullptr);
  EXPECT_NE(record->find("replicas:queries"), nullptr);
}

// ---------- Chaos: kills, partitions, churn at registry scale ----------

class ReplicationChaosTest : public RouterFixture {
 protected:
  static constexpr std::size_t kHosts = 10000;

  void load_registry() {
    std::vector<DirectoryEntry> entries;
    entries.reserve(kHosts);
    for (std::size_t i = 0; i < kHosts; ++i) {
      entries.push_back(make_entry("host=node" + std::to_string(i) + ", o=Grid",
                                   {{"hostname", "node" + std::to_string(i)}}));
    }
    ASSERT_TRUE(coordinator->put_batch(std::move(entries)).ok());
  }

  /// Sampled base-scope lookups; every one must succeed (the registry is
  /// "continuously queryable": zero kUnavailable for healthy shards).
  void assert_all_queryable(ReplicaRouter& router) {
    for (std::size_t i = 0; i < kHosts; i += kHosts / 40) {
      std::string base = "host=node" + std::to_string(i) + ", o=Grid";
      auto hits = router.search(base, Scope::kBase, Filter::match_all());
      ASSERT_TRUE(hits.ok()) << base << ": " << hits.error().to_string();
      ASSERT_EQ(hits->size(), 1u) << base;
    }
  }
};

TEST_F(ReplicationChaosTest, RegistryStaysQueryableThroughAnySingleReplicaKill) {
  CoordinatorOptions options;
  options.shard_count = 8;
  options.replication_factor = 3;
  start_cluster(3, options);
  load_registry();
  auto router = make_router();

  // Kill each replica in turn: with factor 3 every shard keeps two live
  // copies, so no query may fail.
  for (std::size_t victim = 0; victim < addrs.size(); ++victim) {
    network->partition(addrs[victim]);
    assert_all_queryable(*router);
    network->heal(addrs[victim]);
  }
  EXPECT_GT(router->queries(), 0u);
}

TEST_F(ReplicationChaosTest, PartitionHealCycleConvergesViaAntiEntropy) {
  CoordinatorOptions options;
  options.shard_count = 8;
  options.replication_factor = 3;
  start_cluster(3, options);
  load_registry();
  auto router = make_router();

  // Partition one replica, keep writing: it lags, queries keep flowing.
  network->partition(addrs[2]);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(coordinator
                    ->put(make_entry("host=churn" + std::to_string(i) + ", o=Grid"))
                    .ok());
  }
  assert_all_queryable(*router);
  EXPECT_GT(coordinator->apply_failures(), 0u);

  // Heal + one anti-entropy round: the stale replica converges, which is
  // exactly the staleness bound the design promises (one cadence).
  network->heal(addrs[2]);
  auto report = coordinator->run_anti_entropy();
  EXPECT_GT(report.repairs, 0u);
  EXPECT_EQ(stores[2]->generations(), coordinator->generations());
  assert_all_queryable(*router);
}

TEST_F(ReplicationChaosTest, SeededReplicationFaultPlanIsDeterministic) {
  FaultPlan plan;
  plan.seed = 42;
  FaultSpec flaky;
  flaky.kind = FaultKind::kError;
  flaky.probability = 0.5;
  plan.add(std::string(fault_point::kMdsReplication), flaky);

  auto run = [&plan]() {
    net::Network isolated;
    auto coordinator = std::make_shared<ReplicationCoordinator>(isolated);
    auto injector = std::make_shared<FaultInjector>(plan);
    coordinator->set_fault_injector(injector);
    std::vector<std::shared_ptr<ReplicaServer>> servers;
    for (int i = 0; i < 3; ++i) {
      net::Address addr{"replica" + std::to_string(i) + ".sim", 2137};
      auto server = std::make_shared<ReplicaServer>(
          std::make_shared<ReplicaStore>(coordinator->shard_count()));
      EXPECT_TRUE(server->start(isolated, addr).ok());
      coordinator->add_replica(addr);
      servers.push_back(std::move(server));
    }
    for (int i = 0; i < 40; ++i) {
      EXPECT_TRUE(
          coordinator->put(make_entry("host=node" + std::to_string(i) + ", o=Grid")).ok());
    }
    (void)coordinator->run_anti_entropy();
    return std::pair{injector->history_digest(), coordinator->apply_failures()};
  };

  auto [digest_a, failures_a] = run();
  auto [digest_b, failures_b] = run();
  EXPECT_GT(failures_a, 0u);  // the plan actually bit
  EXPECT_EQ(digest_a, digest_b);
  EXPECT_EQ(failures_a, failures_b);
}

// ---------- Chaos: GIIS registration churn ----------

class GiisChurnChaosTest : public ig::test::GridFixture {
 protected:
  std::shared_ptr<info::SystemMonitor> make_monitor(const std::string& host) {
    auto monitor = std::make_shared<info::SystemMonitor>(*clock, host);
    info::ProviderOptions options;
    options.ttl = seconds(3600);
    EXPECT_TRUE(monitor
                    ->add_source(std::make_shared<info::CommandSource>(
                                     "Memory", "/sbin/sysinfo.exe -mem", registry),
                                 options)
                    .ok());
    return monitor;
  }
};

TEST_F(GiisChurnChaosTest, LeaseExpiresUnlessRenewedByReRegistration) {
  Giis giis("vo", *clock, Duration(0));  // no caching: every search refreshes
  Giis::Registration lease;
  lease.lease = seconds(10);
  lease.replace = true;
  auto gris_a = std::make_shared<Gris>(make_monitor("a.sim"), "a.sim", *clock);
  auto gris_b = std::make_shared<Gris>(make_monitor("b.sim"), "b.sim", *clock);
  giis.register_child(gris_a, lease);
  giis.register_child(gris_b, lease);
  ASSERT_EQ(giis.child_count(), 2u);

  auto both = giis.search("o=Grid", Scope::kSubtree, *Filter::parse("(kw=Memory)"));
  ASSERT_TRUE(both.ok());
  EXPECT_EQ(both->size(), 2u);

  // Only a keeps renewing; b's registration ages out.
  clock->advance(seconds(6));
  giis.register_child(gris_a, lease);
  clock->advance(seconds(6));
  auto after = giis.search("o=Grid", Scope::kSubtree, *Filter::parse("(kw=Memory)"));
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->size(), 1u);
  EXPECT_EQ(giis.child_count(), 1u);
  EXPECT_EQ(giis.expired_children(), 1u);

  // Re-registration is also restart recovery: b comes back, no duplicate.
  giis.register_child(gris_b, lease);
  giis.register_child(gris_b, lease);
  EXPECT_EQ(giis.child_count(), 2u);
  auto back = giis.search("o=Grid", Scope::kSubtree, *Filter::parse("(kw=Memory)"));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->size(), 2u);
}

TEST_F(GiisChurnChaosTest, WireReRegistrationReplacesAfterGrisRestart) {
  auto gris = std::make_shared<Gris>(make_monitor("a.sim"), "a.sim", *clock);
  auto service = std::make_unique<MdsService>(gris, host_cred, &trust, clock.get(), logger);
  ASSERT_TRUE(service->start(*network, {"a.sim", 2136}).ok());

  auto giis = std::make_shared<Giis>("vo", *clock, Duration(0));
  MdsService vo_service(giis, host_cred, &trust, clock.get(), logger, giis);
  ASSERT_TRUE(vo_service.start(*network, {"vo.sim", 2136}).ok());

  MdsClient reg(*network, {"vo.sim", 2136}, alice, trust, *clock);
  ASSERT_TRUE(reg.register_backend("host=a.sim, o=Grid", {"a.sim", 2136}, seconds(30)).ok());
  ASSERT_TRUE(reg.register_backend("host=a.sim, o=Grid", {"a.sim", 2136}, seconds(30)).ok());
  EXPECT_EQ(giis->child_count(), 1u);  // renewal replaced, never appended

  MdsClient client(*network, {"vo.sim", 2136}, alice, trust, *clock);
  auto before = client.search("o=Grid", Scope::kSubtree, *Filter::parse("(kw=Memory)"));
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before->size(), 1u);

  // GRIS restart: the endpoint goes away and comes back with fresh state;
  // in-flight aggregate queries keep working off the stale-child shield,
  // and one re-registration re-attaches it.
  service->stop();
  clock->advance(seconds(1));
  auto during = client.search("o=Grid", Scope::kSubtree, *Filter::parse("(kw=Memory)"));
  ASSERT_TRUE(during.ok());  // shielded: last good pull, not an error
  EXPECT_EQ(during->size(), 1u);
  EXPECT_GT(giis->stale_child_serves(), 0u);

  gris = std::make_shared<Gris>(make_monitor("a.sim"), "a.sim", *clock);
  service = std::make_unique<MdsService>(gris, host_cred, &trust, clock.get(), logger);
  ASSERT_TRUE(service->start(*network, {"a.sim", 2136}).ok());
  ASSERT_TRUE(reg.register_backend("host=a.sim, o=Grid", {"a.sim", 2136}, seconds(30)).ok());
  EXPECT_EQ(giis->child_count(), 1u);
  auto after = client.search("o=Grid", Scope::kSubtree, *Filter::parse("(kw=Memory)"));
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->size(), 1u);
}

TEST_F(GiisChurnChaosTest, ChurnUnderInFlightQueries) {
  auto giis = std::make_shared<Giis>("vo", *clock, ms(5));
  Giis::Registration lease;
  lease.lease = seconds(60);
  lease.replace = true;
  auto gris_a = std::make_shared<Gris>(make_monitor("a.sim"), "a.sim", *clock);
  auto gris_b = std::make_shared<Gris>(make_monitor("b.sim"), "b.sim", *clock);
  giis->register_child(gris_a, lease);
  giis->register_child(gris_b, lease);

  // Readers hammer the aggregate while the main thread churns
  // registrations and advances time across lease renewals: every search
  // must succeed and see at least the surviving child.
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> failures{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        auto hits = giis->search("o=Grid", Scope::kSubtree, Filter::match_all());
        if (!hits.ok() || hits->empty()) failures.fetch_add(1);
      }
    });
  }
  for (int round = 0; round < 50; ++round) {
    giis->register_child(round % 2 == 0 ? gris_a : gris_b, lease);
    clock->advance(ms(7));  // past the cache TTL: forces refresh under churn
  }
  stop.store(true, std::memory_order_release);
  for (auto& reader : readers) reader.join();
  EXPECT_EQ(failures.load(), 0u);
  EXPECT_EQ(giis->child_count(), 2u);  // renewals replaced in place
}

TEST_F(GiisChurnChaosTest, GiisPublishesAggregateDiffToReplicatedIndex) {
  auto coordinator = std::make_shared<ReplicationCoordinator>(*network);
  Giis giis("vo", *clock, ms(5));
  giis.set_replication(coordinator);
  Giis::Registration lease;
  lease.lease = seconds(10);
  lease.replace = true;
  giis.register_child(std::make_shared<Gris>(make_monitor("a.sim"), "a.sim", *clock),
                      lease);

  ASSERT_TRUE(giis.search("o=Grid", Scope::kSubtree, Filter::match_all()).ok());
  std::size_t populated = coordinator->size();
  EXPECT_GT(populated, 0u);  // vo root + host subtree
  std::vector<std::uint64_t> gens = coordinator->generations();

  // An unchanged refresh publishes nothing: generations stay quiet.
  clock->advance(ms(7));
  ASSERT_TRUE(giis.search("o=Grid", Scope::kSubtree, Filter::match_all()).ok());
  EXPECT_EQ(coordinator->generations(), gens);

  // Lease expiry erases the host subtree from the replicated index too.
  clock->advance(seconds(11));
  ASSERT_TRUE(giis.search("o=Grid", Scope::kSubtree, Filter::match_all()).ok());
  EXPECT_LT(coordinator->size(), populated);
}

}  // namespace
}  // namespace ig::mds
