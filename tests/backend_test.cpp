#include <gtest/gtest.h>

#include <future>

#include "exec/batch_backend.hpp"
#include "exec/fork_backend.hpp"
#include "exec/matchmaking_backend.hpp"
#include "exec/sandbox.hpp"

namespace ig::exec {
namespace {

constexpr Duration kWait = seconds(30);  // generous wall-time bound

JobRequest make_request(const std::string& command_line, int count = 1) {
  JobRequest request;
  auto [path, args] = split_command_line(command_line);
  request.spec.executable = path;
  request.spec.arguments = args;
  request.spec.count = count;
  request.local_user = "alice";
  return request;
}

class BackendFixture : public ::testing::Test {
 protected:
  BackendFixture()
      : system(std::make_shared<SimSystem>(clock, 31, "backend.host")),
        registry(CommandRegistry::standard(clock, system, 33)) {}
  VirtualClock clock;
  std::shared_ptr<SimSystem> system;
  std::shared_ptr<CommandRegistry> registry;
};

// ---------- ForkBackend ----------

class ForkBackendTest : public BackendFixture {};

TEST_F(ForkBackendTest, RunsJobToCompletion) {
  ForkBackend backend(registry, clock);
  auto id = backend.submit(make_request("/bin/echo hello world"));
  ASSERT_TRUE(id.ok());
  auto status = backend.wait(*id, kWait);
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status->state, JobState::kDone);
  EXPECT_EQ(status->exit_code, 0);
  EXPECT_EQ(status->output, "hello world\n");
  EXPECT_GE(status->finished, status->started);
}

TEST_F(ForkBackendTest, FailingCommandMarksJobFailed) {
  ForkBackend backend(registry, clock);
  auto id = backend.submit(make_request("/bin/false"));
  ASSERT_TRUE(id.ok());
  auto status = backend.wait(*id, kWait);
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status->state, JobState::kFailed);
  EXPECT_EQ(status->exit_code, 1);
}

TEST_F(ForkBackendTest, UnknownExecutableFailsAtRuntime) {
  ForkBackend backend(registry, clock);
  auto id = backend.submit(make_request("/bin/nope"));
  ASSERT_TRUE(id.ok());
  auto status = backend.wait(*id, kWait);
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status->state, JobState::kFailed);
  EXPECT_EQ(status->exit_code, 127);
}

TEST_F(ForkBackendTest, EmptyExecutableRejectedAtSubmit) {
  ForkBackend backend(registry, clock);
  EXPECT_FALSE(backend.submit(JobRequest{}).ok());
}

TEST_F(ForkBackendTest, CountRunsCommandMultipleTimes) {
  ForkBackend backend(registry, clock);
  auto before = registry->executions();
  auto id = backend.submit(make_request("/bin/echo x", 3));
  ASSERT_TRUE(id.ok());
  auto status = backend.wait(*id, kWait);
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status->state, JobState::kDone);
  EXPECT_EQ(status->output, "x\nx\nx\n");
  EXPECT_EQ(registry->executions(), before + 3);
}

TEST_F(ForkBackendTest, CancelJob) {
  ForkBackend backend(registry, clock);
  auto id = backend.submit(make_request("/bin/echo z"));
  ASSERT_TRUE(id.ok());
  // Cancel may race with completion; both terminal states are legal, but
  // the backend must terminate either way.
  (void)backend.cancel(*id);
  auto status = backend.wait(*id, kWait);
  ASSERT_TRUE(status.ok());
  EXPECT_TRUE(is_terminal(status->state));
}

TEST_F(ForkBackendTest, StatusOfUnknownJob) {
  ForkBackend backend(registry, clock);
  EXPECT_FALSE(backend.status(999999).ok());
  EXPECT_FALSE(backend.cancel(999999).ok());
  EXPECT_FALSE(backend.wait(999999, ms(1)).ok());
}

TEST_F(ForkBackendTest, ManyConcurrentJobs) {
  ForkBackend backend(registry, clock);
  std::vector<JobId> ids;
  for (int i = 0; i < 100; ++i) {
    auto id = backend.submit(make_request("/bin/echo j" + std::to_string(i)));
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  for (JobId id : ids) {
    auto status = backend.wait(id, kWait);
    ASSERT_TRUE(status.ok());
    EXPECT_EQ(status->state, JobState::kDone);
  }
}

// ---------- BatchBackend ----------

class BatchBackendTest : public BackendFixture {};

TEST_F(BatchBackendTest, DrainsQueueAcrossNodes) {
  BatchConfig config;
  config.nodes = 3;
  BatchBackend backend(registry, clock, config, system);
  std::vector<JobId> ids;
  for (int i = 0; i < 20; ++i) {
    auto id = backend.submit(make_request("/bin/echo batch"));
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  for (JobId id : ids) {
    auto status = backend.wait(id, kWait);
    ASSERT_TRUE(status.ok());
    EXPECT_EQ(status->state, JobState::kDone);
  }
  EXPECT_EQ(backend.queued_jobs(), 0u);
}

TEST_F(BatchBackendTest, UnknownQueueRejected) {
  BatchConfig config;
  config.queues = {{"fast", 10}, {"slow", 0}};
  BatchBackend backend(registry, clock, config, system);
  auto request = make_request("/bin/echo x");
  request.spec.queue = "imaginary";
  EXPECT_FALSE(backend.submit(request).ok());
  request.spec.queue = "fast";
  auto id = backend.submit(request);
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(backend.wait(*id, kWait)->state, JobState::kDone);
}

TEST_F(BatchBackendTest, PriorityQueueDrainsFirst) {
  // One node, so ordering is observable: fill the node with a job blocked
  // on a real future, queue slow- and fast-queue jobs, then release and
  // check start order.
  std::promise<void> release;
  auto released = release.get_future().share();
  registry->register_command(
      "/bin/block",
      [released](const std::vector<std::string>&) {
        released.wait();
        return CommandResult{0, ""};
      },
      us(0));
  BatchConfig config;
  config.nodes = 1;
  config.queues = {{"fast", 10}, {"slow", 0}};
  config.load_per_job = 0.0;
  BatchBackend backend(registry, clock, config, system);

  auto blocker = make_request("/bin/block");
  blocker.spec.queue = "slow";
  auto blocker_id = backend.submit(blocker);
  ASSERT_TRUE(blocker_id.ok());

  auto slow = make_request("/bin/echo slow");
  slow.spec.queue = "slow";
  auto fast = make_request("/bin/echo fast");
  fast.spec.queue = "fast";
  auto slow_id = backend.submit(slow);
  auto fast_id = backend.submit(fast);
  ASSERT_TRUE(slow_id.ok());
  ASSERT_TRUE(fast_id.ok());
  release.set_value();

  auto fast_status = backend.wait(*fast_id, kWait);
  auto slow_status = backend.wait(*slow_id, kWait);
  ASSERT_TRUE(fast_status.ok());
  ASSERT_TRUE(slow_status.ok());
  // The fast-queue job must have started no later than the slow one.
  EXPECT_LE(fast_status->started.count(), slow_status->started.count());
}

TEST_F(BatchBackendTest, CancelPendingJobRemovesFromQueue) {
  // A command blocking on a real future occupies the single node
  // deterministically (a virtual-clock sleep would return instantly).
  std::promise<void> release;
  auto released = release.get_future().share();
  registry->register_command(
      "/bin/block",
      [released](const std::vector<std::string>&) {
        released.wait();
        return CommandResult{0, ""};
      },
      us(0));
  BatchConfig config;
  config.nodes = 1;
  BatchBackend backend(registry, clock, config, system);
  auto blocker_id = backend.submit(make_request("/bin/block"));
  ASSERT_TRUE(blocker_id.ok());
  auto pending_id = backend.submit(make_request("/bin/echo pending"));
  ASSERT_TRUE(pending_id.ok());
  ASSERT_TRUE(backend.cancel(*pending_id).ok());
  release.set_value();
  auto status = backend.wait(*pending_id, kWait);
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status->state, JobState::kCancelled);
  EXPECT_EQ(backend.wait(*blocker_id, kWait)->state, JobState::kDone);
}

TEST_F(BatchBackendTest, RunningJobsRaiseSystemLoad) {
  std::promise<void> release;
  auto released = release.get_future().share();
  registry->register_command(
      "/bin/block",
      [released](const std::vector<std::string>&) {
        released.wait();
        return CommandResult{0, ""};
      },
      us(0));
  BatchConfig config;
  config.nodes = 4;
  config.load_per_job = 2.0;
  BatchBackend backend(registry, clock, config, system);
  clock.advance(seconds(300));
  double before = system->cpu_load();
  std::vector<JobId> ids;
  for (int i = 0; i < 4; ++i) {
    auto id = backend.submit(make_request("/bin/block"));
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  // Wait (wall time) for all four workers to mark their job ACTIVE, then
  // advance the model with the load pressure applied.
  for (JobId id : ids) {
    for (int spin = 0; spin < 1000; ++spin) {
      auto status = backend.status(id);
      ASSERT_TRUE(status.ok());
      if (status->state == JobState::kActive) break;
      WallClock::instance().sleep_for(ms(1));
    }
  }
  clock.advance(seconds(300));
  double during = system->cpu_load();
  EXPECT_GT(during, before + 2.0);
  release.set_value();
  for (JobId id : ids) {
    ASSERT_TRUE(backend.wait(id, kWait).ok());
  }
}

// ---------- Matchmaking ----------

TEST(RequirementsTest, ParseValid) {
  auto reqs = parse_requirements("mem_kb>=262144 && arch==sim load<1.5");
  ASSERT_TRUE(reqs.ok());
  ASSERT_EQ(reqs->size(), 3u);
  EXPECT_EQ((*reqs)[0].attribute, "mem_kb");
  EXPECT_EQ((*reqs)[0].op, Requirement::Cmp::kGe);
  EXPECT_EQ((*reqs)[1].value, "sim");
  EXPECT_EQ((*reqs)[2].op, Requirement::Cmp::kLt);
}

TEST(RequirementsTest, ParseErrors) {
  EXPECT_FALSE(parse_requirements("noop").ok());
  EXPECT_FALSE(parse_requirements("a==").ok());
  EXPECT_FALSE(parse_requirements("==b").ok());
}

struct SatisfyCase {
  const char* requirements;
  bool expected;
};

class SatisfiesTest : public ::testing::TestWithParam<SatisfyCase> {
 protected:
  NodeSpec node{"n1", {{"mem_kb", "524288"}, {"arch", "sim"}, {"load", "0.5"}}};
};

TEST_P(SatisfiesTest, Evaluates) {
  auto reqs = parse_requirements(GetParam().requirements);
  ASSERT_TRUE(reqs.ok());
  EXPECT_EQ(satisfies(node, reqs.value()), GetParam().expected) << GetParam().requirements;
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, SatisfiesTest,
    ::testing::Values(SatisfyCase{"mem_kb>=262144", true},
                      SatisfyCase{"mem_kb>=1048576", false},
                      SatisfyCase{"arch==sim", true}, SatisfyCase{"arch!=sim", false},
                      SatisfyCase{"load<1.0", true}, SatisfyCase{"load>1.0", false},
                      SatisfyCase{"load<=0.5", true}, SatisfyCase{"load>=0.5", true},
                      SatisfyCase{"mem_kb>=262144 && arch==sim", true},
                      SatisfyCase{"mem_kb>=262144 && arch==x86", false},
                      SatisfyCase{"missing==1", false}));

class MatchmakingTest : public BackendFixture {
 protected:
  std::vector<NodeSpec> nodes() {
    return {
        {"big", {{"mem_kb", "1048576"}, {"arch", "sim"}}},
        {"small", {{"mem_kb", "131072"}, {"arch", "sim"}}},
    };
  }
};

TEST_F(MatchmakingTest, JobRunsOnMatchingNode) {
  MatchmakingBackend backend(registry, clock, nodes(), system, 0.0);
  auto request = make_request("/bin/echo matched");
  request.spec.environment["requirements"] = "mem_kb>=524288";
  auto id = backend.submit(request);
  ASSERT_TRUE(id.ok());
  auto status = backend.wait(*id, kWait);
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status->state, JobState::kDone);
}

TEST_F(MatchmakingTest, UnmatchableJobRejectedAtSubmit) {
  MatchmakingBackend backend(registry, clock, nodes(), system, 0.0);
  auto request = make_request("/bin/echo x");
  request.spec.environment["requirements"] = "mem_kb>=99999999";
  auto id = backend.submit(request);
  ASSERT_FALSE(id.ok());
  EXPECT_EQ(id.code(), ErrorCode::kNotFound);
}

TEST_F(MatchmakingTest, MalformedRequirementsRejected) {
  MatchmakingBackend backend(registry, clock, nodes(), system, 0.0);
  auto request = make_request("/bin/echo x");
  request.spec.environment["requirements"] = "gibberish";
  EXPECT_FALSE(backend.submit(request).ok());
}

TEST_F(MatchmakingTest, UnconstrainedJobsRunAnywhere) {
  MatchmakingBackend backend(registry, clock, nodes(), system, 0.0);
  std::vector<JobId> ids;
  for (int i = 0; i < 10; ++i) {
    auto id = backend.submit(make_request("/bin/echo free"));
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  for (JobId id : ids) {
    EXPECT_EQ(backend.wait(id, kWait)->state, JobState::kDone);
  }
}

// ---------- Sandbox ----------

class SandboxTest : public BackendFixture {
 protected:
  SandboxConfig restricted() {
    SandboxConfig config;
    config.capabilities = CapabilitySet().grant(Capability::kReadFile);
    config.op_budget = 1000;
    config.memory_budget_bytes = 4096;
    return config;
  }

  JobRequest jar_request(const std::string& name) {
    JobRequest request;
    request.spec.executable = name;
    request.spec.job_type = "jar";
    request.local_user = "alice";
    return request;
  }
};

TEST_F(SandboxTest, RegisteredTaskRuns) {
  SandboxBackend backend(clock, restricted(), system);
  backend.register_task("hello.jar", [](SandboxContext& ctx, const auto&) {
    if (auto s = ctx.charge(10); !s.ok()) return Result<std::string>(s.error());
    return Result<std::string>(std::string("hello from sandbox"));
  });
  EXPECT_TRUE(backend.has_task("hello.jar"));
  auto id = backend.submit(jar_request("hello.jar"));
  ASSERT_TRUE(id.ok());
  auto status = backend.wait(*id, kWait);
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status->state, JobState::kDone);
  EXPECT_EQ(status->output, "hello from sandbox");
}

TEST_F(SandboxTest, UnregisteredTaskRejected) {
  SandboxBackend backend(clock, restricted(), system);
  EXPECT_FALSE(backend.submit(jar_request("nope.jar")).ok());
}

TEST_F(SandboxTest, CapabilityDenied) {
  SandboxBackend backend(clock, restricted(), system);
  backend.register_task("evil.jar", [](SandboxContext& ctx, const auto&) {
    if (auto s = ctx.require(Capability::kNetwork); !s.ok()) {
      return Result<std::string>(s.error());
    }
    return Result<std::string>(std::string("should not get here"));
  });
  auto id = backend.submit(jar_request("evil.jar"));
  ASSERT_TRUE(id.ok());
  auto status = backend.wait(*id, kWait);
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status->state, JobState::kFailed);
  EXPECT_NE(status->error.find("denied"), std::string::npos);
}

TEST_F(SandboxTest, GrantedCapabilityAllowsProcRead) {
  SandboxBackend backend(clock, restricted(), system);
  backend.register_task("probe.jar", [](SandboxContext& ctx, const auto&) {
    auto content = ctx.read_proc("/proc/loadavg");
    if (!content.ok()) return content;
    return Result<std::string>(std::move(content.value()));
  });
  auto id = backend.submit(jar_request("probe.jar"));
  auto status = backend.wait(*id, kWait);
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status->state, JobState::kDone);
  EXPECT_FALSE(status->output.empty());
}

TEST_F(SandboxTest, OpBudgetEnforced) {
  SandboxBackend backend(clock, restricted(), system);
  backend.register_task("loop.jar", [](SandboxContext& ctx, const auto&) {
    for (int i = 0; i < 10000; ++i) {
      if (auto s = ctx.charge(1); !s.ok()) return Result<std::string>(s.error());
    }
    return Result<std::string>(std::string("done"));
  });
  auto status = backend.wait(*backend.submit(jar_request("loop.jar")), kWait);
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status->state, JobState::kFailed);
  EXPECT_NE(status->error.find("budget"), std::string::npos);
}

TEST_F(SandboxTest, MemoryBudgetEnforced) {
  SandboxBackend backend(clock, restricted(), system);
  backend.register_task("hog.jar", [](SandboxContext& ctx, const auto&) {
    if (auto s = ctx.allocate(1 << 20); !s.ok()) return Result<std::string>(s.error());
    return Result<std::string>(std::string("allocated"));
  });
  auto status = backend.wait(*backend.submit(jar_request("hog.jar")), kWait);
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status->state, JobState::kFailed);
}

TEST_F(SandboxTest, AllocateReleaseCycle) {
  CapabilitySet caps;
  SandboxContext ctx(caps, 100, 1000, system, nullptr);
  EXPECT_TRUE(ctx.allocate(800).ok());
  EXPECT_FALSE(ctx.allocate(300).ok());
  ctx.release(500);
  EXPECT_TRUE(ctx.allocate(300).ok());
  EXPECT_EQ(ctx.memory_used(), 600u);
}

TEST_F(SandboxTest, TaskArgumentsArePassed) {
  SandboxConfig config;
  SandboxBackend backend(clock, config, system);
  backend.register_task("args.jar", [](SandboxContext&, const std::vector<std::string>& args) {
    return Result<std::string>("argc=" + std::to_string(args.size()));
  });
  auto request = jar_request("args.jar");
  request.spec.arguments = {"a", "b", "c"};
  auto status = backend.wait(*backend.submit(request), kWait);
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status->output, "argc=3");
}

TEST_F(SandboxTest, IsolatedModeChargesStartupCost) {
  SandboxConfig config = restricted();
  config.mode = SandboxMode::kIsolated;
  config.isolated_startup_cost = ms(50);
  SandboxBackend backend(clock, config, system);
  backend.register_task("t.jar", [](SandboxContext&, const auto&) {
    return Result<std::string>(std::string("ok"));
  });
  auto before = clock.now();
  auto status = backend.wait(*backend.submit(jar_request("t.jar")), kWait);
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status->state, JobState::kDone);
  EXPECT_GE(clock.now() - before, ms(50));
}

}  // namespace
}  // namespace ig::exec
