// Chaos suite: seeded fault injection driven through every resilience
// layer — deterministic injector schedules, provider retry/breaker/
// stale-serve behaviour, per-keyword deadlines, and whole-service mixed
// workloads under fault plans (ISSUE: graceful error taxonomy, no
// deadlocks, reproducible fault sequences).
#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <thread>
#include <vector>

#include "common/fault.hpp"
#include "core/config.hpp"
#include "core/infogram_client.hpp"
#include "core/infogram_service.hpp"
#include "exec/fork_backend.hpp"
#include "info/fault_source.hpp"
#include "info/obs_provider.hpp"
#include "info/prefetcher.hpp"
#include "test_util.hpp"

namespace ig {
namespace {

using info::BreakerState;
using info::FaultInjectingSource;
using info::FunctionSource;
using info::GetOptions;
using info::ManagedProvider;
using info::ProviderOptions;
using info::SystemMonitor;

constexpr Duration kWait = seconds(30);

// ---------- FaultInjector determinism ----------

FaultPlan mixed_plan(std::uint64_t seed) {
  FaultPlan plan;
  plan.seed = seed;
  FaultSpec error;
  error.kind = FaultKind::kError;
  error.probability = 0.4;
  FaultSpec latency;
  latency.kind = FaultKind::kLatency;
  latency.probability = 0.3;
  latency.latency = ms(7);
  plan.add("info.Memory", error).add("info.Memory", latency);
  plan.add("net.request", error);
  return plan;
}

TEST(FaultInjectorChaosTest, SameSeedProducesIdenticalSequences) {
  FaultInjector a(mixed_plan(77));
  FaultInjector b(mixed_plan(77));
  for (int i = 0; i < 200; ++i) {
    (void)a.evaluate("info.Memory");
    (void)a.evaluate("net.request");
    (void)b.evaluate("info.Memory");
    (void)b.evaluate("net.request");
  }
  EXPECT_GT(a.fires("info.Memory"), 0u);
  EXPECT_EQ(a.history_digest(), b.history_digest());
  EXPECT_EQ(a.history("info.Memory"), b.history("info.Memory"));
}

TEST(FaultInjectorChaosTest, DifferentSeedDiverges) {
  FaultInjector a(mixed_plan(77));
  FaultInjector b(mixed_plan(78));
  for (int i = 0; i < 200; ++i) {
    (void)a.evaluate("info.Memory");
    (void)b.evaluate("info.Memory");
  }
  EXPECT_NE(a.history_digest(), b.history_digest());
}

TEST(FaultInjectorChaosTest, ScheduleHonorsSkipAndBudget) {
  FaultPlan plan;
  plan.seed = 5;
  FaultSpec spec;
  spec.kind = FaultKind::kError;
  spec.probability = 1.0;
  spec.skip_first = 2;
  spec.max_fires = 3;
  plan.add("exec.run", spec);
  FaultInjector injector(plan);
  std::vector<bool> fired;
  for (int i = 0; i < 8; ++i) fired.push_back(injector.evaluate("exec.run").fire);
  EXPECT_EQ(fired, (std::vector<bool>{false, false, true, true, true, false, false, false}));
  EXPECT_EQ(injector.fires("exec.run"), 3u);
  EXPECT_EQ(injector.evaluations("exec.run"), 8u);
}

TEST(FaultInjectorChaosTest, UnknownPointsAreInert) {
  FaultInjector injector(mixed_plan(1));
  EXPECT_FALSE(injector.evaluate("no.such.point").fire);
  EXPECT_EQ(injector.fires("no.such.point"), 0u);
}

// Per-point streams make the decision sequence a function of the
// evaluation index only: hammering distinct points from distinct threads
// must reproduce the serial digest exactly.
TEST(FaultInjectorChaosTest, PerPointStreamsAreInterleavingInvariant) {
  const std::vector<std::string> points = {"p.a", "p.b", "p.c", "p.d"};
  FaultPlan plan;
  plan.seed = 99;
  for (const auto& p : points) {
    FaultSpec spec;
    spec.kind = FaultKind::kError;
    spec.probability = 0.5;
    plan.add(p, spec);
  }
  FaultInjector serial(plan);
  for (int i = 0; i < 100; ++i) {
    for (const auto& p : points) (void)serial.evaluate(p);
  }
  FaultInjector threaded(plan);
  std::vector<std::thread> workers;
  for (const auto& p : points) {
    workers.emplace_back([&threaded, p] {
      for (int i = 0; i < 100; ++i) (void)threaded.evaluate(p);
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(serial.history_digest(), threaded.history_digest());
}

// ---------- Provider resilience ----------

class ProviderResilienceTest : public ::testing::Test {
 protected:
  VirtualClock clock{seconds(1000)};

  /// A source failing until `fail_count` produces are burned, then
  /// succeeding with a fresh value each time.
  std::shared_ptr<FunctionSource> flaky_source(std::shared_ptr<std::atomic<int>> failures) {
    auto calls = std::make_shared<std::atomic<int>>(0);
    return std::make_shared<FunctionSource>(
        "Load",
        [failures, calls]() -> Result<format::InfoRecord> {
          if (failures->fetch_sub(1) > 0) {
            return Error(ErrorCode::kIoError, "flaky source down");
          }
          format::InfoRecord r;
          r.keyword = "Load";
          r.add("value", std::to_string(calls->fetch_add(1)));
          return r;
        },
        "function:test.flaky");
  }
};

TEST_F(ProviderResilienceTest, RetryRecoversAfterTransientFailures) {
  auto failures = std::make_shared<std::atomic<int>>(2);
  ProviderOptions options;
  options.ttl = ms(100);
  options.resilience.retry.max_attempts = 3;
  options.resilience.retry.initial_backoff = ms(5);
  ManagedProvider provider(flaky_source(failures), clock, options);
  auto result = provider.update_state(true);
  ASSERT_TRUE(result.ok()) << result.error().to_string();
  EXPECT_EQ(provider.failure_count(), 2u);
  EXPECT_EQ(provider.refresh_count(), 1u);
  // The backoff sleeps advanced the virtual clock.
  EXPECT_GT(clock.now(), TimePoint(seconds(1000)));
}

TEST_F(ProviderResilienceTest, RetryExhaustionSurfacesErrorWhenCold) {
  auto failures = std::make_shared<std::atomic<int>>(100);
  ProviderOptions options;
  options.resilience.retry.max_attempts = 3;
  ManagedProvider provider(flaky_source(failures), clock, options);
  auto result = provider.update_state(true);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.code(), ErrorCode::kIoError);
  EXPECT_EQ(provider.failure_count(), 3u);
}

TEST_F(ProviderResilienceTest, BreakerOpensFastFailsAndRecovers) {
  auto failures = std::make_shared<std::atomic<int>>(2);
  ProviderOptions options;
  options.ttl = ms(50);
  options.resilience.breaker_enabled = true;
  options.resilience.breaker.failure_threshold = 2;
  options.resilience.breaker.open_duration = seconds(5);
  options.resilience.serve_stale_on_error = false;
  ManagedProvider provider(flaky_source(failures), clock, options);
  EXPECT_EQ(provider.breaker_state(), BreakerState::kClosed);

  EXPECT_FALSE(provider.update_state(true).ok());
  EXPECT_EQ(provider.breaker_state(), BreakerState::kClosed);
  EXPECT_FALSE(provider.update_state(true).ok());
  EXPECT_EQ(provider.breaker_state(), BreakerState::kOpen);

  // Open: fast-fail without touching the source.
  auto blocked = provider.update_state(true);
  ASSERT_FALSE(blocked.ok());
  EXPECT_EQ(blocked.code(), ErrorCode::kUnavailable);
  EXPECT_NE(blocked.error().message.find("circuit open"), std::string::npos);
  EXPECT_EQ(provider.failure_count(), 2u);  // the fast-fail did not run the source

  // After open_duration the half-open probe is admitted; the source has
  // recovered, so the probe closes the breaker.
  clock.advance(seconds(6));
  auto probe = provider.update_state(true);
  ASSERT_TRUE(probe.ok()) << probe.error().to_string();
  EXPECT_EQ(provider.breaker_state(), BreakerState::kClosed);
}

TEST_F(ProviderResilienceTest, FailedProbeReopensBreaker) {
  auto failures = std::make_shared<std::atomic<int>>(100);
  ProviderOptions options;
  options.resilience.breaker_enabled = true;
  options.resilience.breaker.failure_threshold = 1;
  options.resilience.breaker.open_duration = seconds(5);
  options.resilience.serve_stale_on_error = false;
  ManagedProvider provider(flaky_source(failures), clock, options);
  EXPECT_FALSE(provider.update_state(true).ok());
  EXPECT_EQ(provider.breaker_state(), BreakerState::kOpen);
  clock.advance(seconds(6));
  EXPECT_FALSE(provider.update_state(true).ok());  // probe fails
  EXPECT_EQ(provider.breaker_state(), BreakerState::kOpen);
}

TEST_F(ProviderResilienceTest, StaleServeShieldAnnotatesDegradedRecord) {
  auto telemetry = std::make_shared<obs::Telemetry>(clock);
  auto failures = std::make_shared<std::atomic<int>>(0);
  ProviderOptions options;
  options.ttl = ms(100);
  ManagedProvider provider(flaky_source(failures), clock, options);
  provider.set_telemetry(telemetry);
  ASSERT_TRUE(provider.update_state(true).ok());

  // Source dies; the cache outlives its TTL; the shield serves it anyway.
  failures->store(1000);
  clock.advance(ms(500));
  auto shielded = provider.update_state(true);
  ASSERT_TRUE(shielded.ok()) << shielded.error().to_string();
  const auto* stale = shielded->find("Load:stale");
  ASSERT_NE(stale, nullptr);
  EXPECT_EQ(stale->value, "true");
  const auto* source = shielded->find("Load:source");
  ASSERT_NE(source, nullptr);
  EXPECT_EQ(source->value, "cache");
  EXPECT_LT(shielded->min_quality(), 100.0);  // degradation applied
  EXPECT_EQ(telemetry->metrics().counter(obs::metric::kInfoDegradedServed).value(), 1u);
}

TEST_F(ProviderResilienceTest, ColdCacheStillSurfacesError) {
  auto failures = std::make_shared<std::atomic<int>>(1000);
  ManagedProvider provider(flaky_source(failures), clock, ProviderOptions{});
  auto result = provider.update_state(true);
  ASSERT_FALSE(result.ok());  // nothing cached: the shield has nothing to serve
  EXPECT_EQ(result.code(), ErrorCode::kIoError);
}

// ---------- Per-keyword deadlines (the xRSL timeout tag on info) ----------

class DeadlineTest : public ig::test::GridFixture {
 protected:
  DeadlineTest() {
    // A provider command charging 500ms of virtual time in cancellable
    // 1ms slices.
    registry->register_command(
        "/bin/heavy",
        [](const std::vector<std::string>&) {
          return exec::CommandResult{0, "weight: 42\n"};
        },
        ms(500));
  }
};

TEST_F(DeadlineTest, DeadlineCancelYieldsTimeout) {
  auto source = std::make_shared<info::CommandSource>("Heavy", "/bin/heavy", registry);
  ProviderOptions options;
  options.resilience.serve_stale_on_error = false;
  ManagedProvider provider(source, *clock, options);
  GetOptions deadline;
  deadline.timeout = ms(50);
  deadline.action = rsl::TimeoutAction::kCancel;
  auto result = provider.get(rsl::ResponseMode::kImmediate, deadline);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.code(), ErrorCode::kTimeout);
}

TEST_F(DeadlineTest, DeadlineCancelServesStaleWhenCached) {
  auto source = std::make_shared<info::CommandSource>("Heavy", "/bin/heavy", registry);
  ProviderOptions options;
  options.ttl = ms(100);
  ManagedProvider provider(source, *clock, options);
  ASSERT_TRUE(provider.update_state(true).ok());
  clock->advance(ms(500));
  GetOptions deadline;
  deadline.timeout = ms(50);
  auto result = provider.get(rsl::ResponseMode::kImmediate, deadline);
  ASSERT_TRUE(result.ok());  // deadline hit, but the shield had a cache
  EXPECT_NE(result->find("Heavy:stale"), nullptr);
}

TEST_F(DeadlineTest, DeadlineExceptionAnnotatesLateRecord) {
  auto source = std::make_shared<info::CommandSource>("Heavy", "/bin/heavy", registry);
  ManagedProvider provider(source, *clock, ProviderOptions{});
  GetOptions deadline;
  deadline.timeout = ms(50);
  deadline.action = rsl::TimeoutAction::kException;
  auto result = provider.get(rsl::ResponseMode::kImmediate, deadline);
  ASSERT_TRUE(result.ok()) << result.error().to_string();
  const auto* late = result->find("Heavy:deadline_exceeded");
  ASSERT_NE(late, nullptr);
  EXPECT_EQ(late->value, "true");
  EXPECT_NE(result->find("Heavy:weight"), nullptr);  // the result still arrived
}

// ---------- Whole-service chaos ----------

class ChaosServiceTest : public ig::test::GridFixture {
 protected:
  ChaosServiceTest() : backend(std::make_shared<exec::ForkBackend>(registry, *clock)) {}

  void start_service(core::InfoGramConfig config = {}) {
    config.host = "test.sim";
    if (monitor == nullptr) {
      monitor = std::make_shared<SystemMonitor>(*clock, config.host);
      ASSERT_TRUE(core::Configuration::table1().apply(*monitor, registry).ok());
    }
    service = std::make_unique<core::InfoGramService>(monitor, backend, host_cred, &trust,
                                                      &gridmap, &policy, clock.get(),
                                                      logger, config);
    ASSERT_TRUE(service->start(*network).ok());
  }

  core::InfoGramClient make_client() {
    return core::InfoGramClient(*network, service->address(), alice, trust, *clock);
  }

  std::shared_ptr<exec::ForkBackend> backend;
  std::shared_ptr<SystemMonitor> monitor;
  std::unique_ptr<core::InfoGramService> service;
};

TEST_F(ChaosServiceTest, HealthKeywordReportsBreakerStates) {
  // One fault-wrapped provider with a breaker, failing hard.
  monitor = std::make_shared<SystemMonitor>(*clock, "test.sim");
  FaultPlan plan;
  plan.seed = 11;
  FaultSpec down;
  down.kind = FaultKind::kError;
  down.probability = 1.0;
  plan.add("info.Flaky", down);
  auto injector = std::make_shared<FaultInjector>(plan);
  auto inner = std::make_shared<FunctionSource>(
      "Flaky",
      []() -> Result<format::InfoRecord> {
        format::InfoRecord r;
        r.keyword = "Flaky";
        r.add("up", "1");
        return r;
      },
      "function:test.flaky");
  ProviderOptions options;
  options.ttl = ms(50);
  options.resilience.breaker_enabled = true;
  options.resilience.breaker.failure_threshold = 2;
  options.resilience.serve_stale_on_error = false;
  ASSERT_TRUE(
      monitor
          ->add_provider(std::make_shared<ManagedProvider>(
              std::make_shared<FaultInjectingSource>(inner, injector, *clock), *clock,
              options))
          .ok());
  core::InfoGramConfig config;
  config.telemetry = std::make_shared<obs::Telemetry>(*clock);
  start_service(config);
  auto client = make_client();

  auto healthy = client.query_info({"health"});
  ASSERT_TRUE(healthy.ok());
  ASSERT_EQ(healthy->size(), 1u);
  const auto* closed = healthy->front().find("Flaky:breaker");
  ASSERT_NE(closed, nullptr);
  EXPECT_EQ(closed->value, "closed");

  // Two failing refreshes trip the breaker; health shows it open and the
  // per-keyword gauge follows.
  EXPECT_FALSE(client.query_info({"Flaky"}, rsl::ResponseMode::kImmediate).ok());
  EXPECT_FALSE(client.query_info({"Flaky"}, rsl::ResponseMode::kImmediate).ok());
  auto tripped = client.query_info({"health"});
  ASSERT_TRUE(tripped.ok());
  EXPECT_EQ(tripped->front().find("Flaky:breaker")->value, "open");
  EXPECT_EQ(config.telemetry->metrics()
                .gauge(std::string(obs::metric::kInfoBreakerStatePrefix) + "Flaky")
                .value(),
            2);
  EXPECT_GE(
      config.telemetry->metrics().counter(obs::metric::kInfoBreakerOpened).value(), 1u);
}

TEST_F(ChaosServiceTest, InjectedCommandCrashTriggersRestartRecovery) {
  FaultPlan plan;
  plan.seed = 3;
  FaultSpec crash;
  crash.kind = FaultKind::kCrash;
  crash.probability = 1.0;
  crash.max_fires = 1;
  plan.add("exec.run", crash);
  auto injector = std::make_shared<FaultInjector>(plan);
  registry->set_fault_injector(injector);

  core::InfoGramConfig config;
  config.max_restarts = 2;
  start_service(config);
  auto client = make_client();
  auto contact = client.submit_job(rsl::XrslRequest::parse(
                                       "&(executable=/bin/echo)(arguments=survived)")
                                       .value());
  ASSERT_TRUE(contact.ok());
  auto status = client.wait(*contact, kWait);
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status->state, exec::JobState::kDone);
  auto info = service->job_info(*contact);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->restarts, 1);
  EXPECT_EQ(injector->fires("exec.run"), 1u);
}

TEST_F(ChaosServiceTest, NetworkDropsSurfaceAsUnavailable) {
  FaultPlan plan;
  plan.seed = 21;
  FaultSpec drop;
  drop.kind = FaultKind::kDrop;
  drop.probability = 1.0;
  drop.max_fires = 2;
  plan.add("net.request", drop);
  auto injector = std::make_shared<FaultInjector>(plan);
  start_service();
  network->set_fault_injector(injector);
  auto client = make_client();
  int failed = 0;
  int succeeded = 0;
  for (int i = 0; i < 6; ++i) {
    auto records = client.query_info({"Memory"});
    if (records.ok()) {
      ++succeeded;
    } else {
      ++failed;
      EXPECT_EQ(records.code(), ErrorCode::kUnavailable);
    }
  }
  // The drop budget is 2 requests; everything after recovers. The client
  // may spend extra requests on the auth handshake, so only bound below.
  EXPECT_GT(succeeded, 0);
  EXPECT_EQ(injector->fires("net.request"), 2u);

  // Partition/heal round-trip against the running service: unavailable
  // while cut off, a fresh client works after healing.
  network->partition(service->address());
  EXPECT_FALSE(client.query_info({"Memory"}).ok());
  auto fresh_client = make_client();
  EXPECT_FALSE(fresh_client.query_info({"Memory"}).ok());
  network->heal(service->address());
  auto healed = make_client();
  EXPECT_TRUE(healed.query_info({"Memory"}).ok());
}

TEST_F(ChaosServiceTest, MixedWorkloadDegradesGracefully) {
  // Fault-wrapped providers (probabilistic errors + latency), a crashing
  // command stream, resilience on, a worker pool: the full pipeline under
  // load. Every future must resolve and every outcome must be in the
  // graceful taxonomy — success or kUnavailable/kTimeout — never
  // kInternal.
  monitor = std::make_shared<SystemMonitor>(*clock, "test.sim");
  FaultPlan plan;
  plan.seed = 1234;
  FaultSpec flake;
  flake.kind = FaultKind::kError;
  flake.probability = 0.35;
  FaultSpec spike;
  spike.kind = FaultKind::kLatency;
  spike.probability = 0.25;
  spike.latency = ms(3);
  FaultSpec hang;
  hang.kind = FaultKind::kHang;
  hang.probability = 0.1;
  hang.latency = ms(5);  // virtual: resolves instantly in wall time
  for (const auto* kw : {"Alpha", "Beta"}) {
    plan.add(std::string("info.") + kw, flake);
    plan.add(std::string("info.") + kw, spike);
    plan.add(std::string("info.") + kw, hang);
  }
  FaultSpec crash;
  crash.kind = FaultKind::kCrash;
  crash.probability = 0.3;
  plan.add("exec.run", crash);
  auto injector = std::make_shared<FaultInjector>(plan);
  registry->set_fault_injector(injector);

  auto telemetry = std::make_shared<obs::Telemetry>(*clock);
  obs::Counter* injected = &telemetry->metrics().counter(obs::metric::kFaultInjected);
  injector->set_fire_hook(
      [injected](const std::string&, const FaultDecision&) { injected->add(); });

  for (const auto* kw : {"Alpha", "Beta"}) {
    auto inner = std::make_shared<FunctionSource>(
        kw,
        [kw]() -> Result<format::InfoRecord> {
          format::InfoRecord r;
          r.keyword = kw;
          r.add("v", "1");
          return r;
        },
        "function:test.chaos");
    ProviderOptions options;
    options.ttl = ms(20);
    options.resilience.retry.max_attempts = 2;
    options.resilience.retry.initial_backoff = ms(1);
    ASSERT_TRUE(monitor
                    ->add_provider(std::make_shared<ManagedProvider>(
                        std::make_shared<FaultInjectingSource>(inner, injector, *clock),
                        *clock, options))
                    .ok());
  }
  core::InfoGramConfig config;
  config.telemetry = telemetry;
  config.worker_threads = 4;
  config.max_restarts = 2;
  start_service(config);

  std::vector<std::future<Result<core::InfoGramResult>>> futures;
  for (int i = 0; i < 40; ++i) {
    rsl::XrslBuilder builder;
    if (i % 2 == 0) {
      builder.info(i % 4 == 0 ? "Alpha" : "Beta").response(rsl::ResponseMode::kImmediate);
    } else {
      builder.executable("/bin/echo").argument("chaos" + std::to_string(i));
    }
    futures.push_back(service->submit_async(builder.request(), "/O=Grid/CN=alice", "alice"));
  }
  std::vector<std::string> contacts;
  int info_failures = 0;
  for (auto& f : futures) {
    auto result = f.get();  // must resolve: no deadlocks under faults
    if (!result.ok()) {
      ++info_failures;
      EXPECT_TRUE(result.code() == ErrorCode::kUnavailable ||
                  result.code() == ErrorCode::kTimeout ||
                  result.code() == ErrorCode::kIoError)
          << result.error().to_string();
      EXPECT_NE(result.code(), ErrorCode::kInternal) << result.error().to_string();
      continue;
    }
    if (result->job_contact) contacts.push_back(*result->job_contact);
  }
  // Every submitted job reaches a terminal state (restarts may absorb the
  // injected crashes; exhausted restarts are an acceptable kFailed).
  for (const auto& contact : contacts) {
    auto final_info = service->wait(contact, kWait);
    ASSERT_TRUE(final_info.ok()) << contact;
    EXPECT_TRUE(exec::is_terminal(final_info->status.state)) << contact;
  }
  EXPECT_GT(injected->value(), 0u);
  EXPECT_GT(injector->fires("exec.run"), 0u);
}

// ---------- Tail retention under chaos (acceptance) ----------

class TailChaosTest : public ChaosServiceTest {};

TEST_F(TailChaosTest, EveryFaultAffectedRequestRetainsAVerdictTrace) {
  // A 20%-fault workload at the production default 1-in-64 head sampling:
  // clean traffic is mostly discarded, but every fault-affected request
  // must leave a retained trace with its verdict annotated — the tail
  // layer's whole point.
  monitor = std::make_shared<SystemMonitor>(*clock, "test.sim");
  FaultPlan plan;
  plan.seed = 4242;
  FaultSpec flake;
  flake.kind = FaultKind::kError;
  flake.probability = 0.2;
  plan.add("info.Alpha", flake);
  auto injector = std::make_shared<FaultInjector>(plan);
  auto inner = std::make_shared<FunctionSource>(
      "Alpha",
      []() -> Result<format::InfoRecord> {
        format::InfoRecord r;
        r.keyword = "Alpha";
        r.add("v", "1");
        return r;
      },
      "function:test.chaos");
  ProviderOptions options;
  options.ttl = Duration(0);  // refresh on every query: every fault surfaces
  options.resilience.serve_stale_on_error = false;
  ASSERT_TRUE(monitor
                  ->add_provider(std::make_shared<ManagedProvider>(
                      std::make_shared<FaultInjectingSource>(inner, injector, *clock),
                      *clock, options))
                  .ok());
  auto telemetry = std::make_shared<obs::Telemetry>(*clock);
  core::InfoGramConfig config;
  config.telemetry = telemetry;
  // config defaults: trace_sample_every = 64, tail_sampling = true.
  start_service(config);
  auto client = make_client();

  int failed = 0;
  int succeeded = 0;
  for (int i = 0; i < 200; ++i) {
    if (client.query_info({"Alpha"}, rsl::ResponseMode::kImmediate).ok()) {
      ++succeeded;
    } else {
      ++failed;
    }
  }
  ASSERT_GT(failed, 0);
  ASSERT_GT(succeeded, 0);

  // One retained trace per failure, verdict "error" — whether the request
  // happened to be head-sampled or went through the provisional path.
  int error_traces = 0;
  for (const auto& t : telemetry->traces().snapshot()) {
    if (t.verdict == "error") ++error_traces;
  }
  EXPECT_EQ(error_traces, failed);
  // Clean traffic stayed at the head rate: the tail layer discarded it.
  ASSERT_NE(telemetry->tail(), nullptr);
  EXPECT_GT(telemetry->tail()->discarded(), 0u);
  EXPECT_EQ(telemetry->metrics().gauge(obs::metric::kTailSampleEvery).value(), 64);
}

// ---------- Prefetcher failure backoff (satellite) ----------

TEST(PrefetcherBackoffTest, FailuresEnterExponentialBackoff) {
  VirtualClock clock(seconds(1000));
  SystemMonitor monitor(clock, "backoff.sim");
  auto telemetry = std::make_shared<obs::Telemetry>(clock);
  monitor.set_telemetry(telemetry);
  auto down = std::make_shared<std::atomic<bool>>(false);
  auto produces = std::make_shared<std::atomic<int>>(0);
  ProviderOptions options;
  options.ttl = ms(50);
  options.resilience.serve_stale_on_error = false;
  ASSERT_TRUE(monitor
                  .add_source(std::make_shared<FunctionSource>(
                                  "Spotty",
                                  [down, produces]() -> Result<format::InfoRecord> {
                                    produces->fetch_add(1);
                                    if (down->load()) {
                                      return Error(ErrorCode::kIoError, "down");
                                    }
                                    format::InfoRecord r;
                                    r.keyword = "Spotty";
                                    r.add("v", "1");
                                    return r;
                                  },
                                  "function:test.spotty"),
                              options)
                  .ok());
  ASSERT_TRUE(monitor.provider("Spotty")->update_state(true).ok());

  info::PrefetchOptions prefetch;
  prefetch.failure_backoff = ms(200);
  prefetch.failure_backoff_max = ms(800);
  info::Prefetcher prefetcher(monitor, prefetch);

  // Expire the cache and kill the source: the first scan attempts and
  // fails, entering backoff.
  down->store(true);
  clock.advance(ms(100));
  prefetcher.scan_once();
  EXPECT_EQ(prefetcher.failures(), 1u);
  int after_first = produces->load();

  // Within the backoff window further scans skip the keyword entirely.
  clock.advance(ms(50));
  prefetcher.scan_once();
  prefetcher.scan_once();
  EXPECT_EQ(produces->load(), after_first);
  EXPECT_EQ(prefetcher.failures(), 1u);

  // Past the window it retries (still down: failure count grows, backoff
  // doubles).
  clock.advance(ms(200));
  prefetcher.scan_once();
  EXPECT_EQ(produces->load(), after_first + 1);
  EXPECT_EQ(prefetcher.failures(), 2u);

  // Recovery resets: after the (doubled) window the next attempt succeeds
  // and the keyword leaves backoff.
  down->store(false);
  clock.advance(ms(500));
  prefetcher.scan_once();
  EXPECT_EQ(prefetcher.failures(), 2u);
  EXPECT_EQ(telemetry->metrics().counter(obs::metric::kPrefetchFailures).value(), 2u);
  EXPECT_TRUE(monitor.provider("Spotty")->query_state().ok());
}

}  // namespace
}  // namespace ig
