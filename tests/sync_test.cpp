// The annotated lock layer (common/sync.hpp): runtime lock-order
// validator (rank inversion, recursive acquisition, try_lock exemption,
// the kUnranked escape), CondVar wait/notify, and a TSan-facing stress
// pass over Mutex/SharedMutex. The compile-time half of the layer is
// exercised by the clang -Wthread-safety CI leg, not by assertions here.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "common/sync.hpp"

namespace ig {
namespace {

// Violation reports land here via the captureless handler below. The
// tests only trigger violations from the test thread, so plain storage
// is enough.
std::vector<std::string>& reports() {
  static std::vector<std::string> r;
  return r;
}

void record_violation(const char* report) { reports().emplace_back(report); }

// Forces the validator on (Release trees default it off), installs the
// recording handler, and restores both afterwards so the stress tests —
// and everything else in this binary — run with default behaviour.
class LockOrderValidatorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    was_enabled_ = sync_internal::lock_order_validation_enabled();
    sync_internal::set_lock_order_validation(true);
    sync_internal::set_violation_handler(&record_violation);
    reports().clear();
  }
  void TearDown() override {
    sync_internal::set_violation_handler(nullptr);
    sync_internal::set_lock_order_validation(was_enabled_);
    reports().clear();
  }

 private:
  bool was_enabled_ = false;
};

TEST_F(LockOrderValidatorTest, IncreasingRanksAreClean) {
  Mutex low(lock_rank::kGramService, "test.low");
  Mutex high(lock_rank::kLogger, "test.high");
  {
    MutexLock outer(low);
    MutexLock inner(high);
    EXPECT_EQ(sync_internal::held_lock_count(), 2u);
  }
  EXPECT_EQ(sync_internal::held_lock_count(), 0u);
  EXPECT_TRUE(reports().empty());
}

TEST_F(LockOrderValidatorTest, RankInversionIsReported) {
  Mutex low(lock_rank::kGramService, "test.low");
  Mutex high(lock_rank::kLogger, "test.high");
  {
    MutexLock outer(high);
    MutexLock inner(low);  // seeded inversion: 900 held, acquiring 100
  }
  ASSERT_EQ(reports().size(), 1u);
  EXPECT_NE(reports()[0].find("inversion"), std::string::npos);
  EXPECT_NE(reports()[0].find("test.low"), std::string::npos);
  EXPECT_NE(reports()[0].find("test.high"), std::string::npos);
}

TEST_F(LockOrderValidatorTest, EqualRankAlsoInverts) {
  // Strictly increasing: two locks of the same rank cannot nest (that is
  // the Giis problem — same-class hierarchies must opt out via kUnranked).
  Mutex a(lock_rank::kMdsDirectory, "test.a");
  Mutex b(lock_rank::kMdsDirectory, "test.b");
  {
    MutexLock outer(a);
    MutexLock inner(b);
  }
  ASSERT_EQ(reports().size(), 1u);
  EXPECT_NE(reports()[0].find("inversion"), std::string::npos);
}

TEST_F(LockOrderValidatorTest, RecursiveAcquisitionIsReported) {
  // Driven through the validator hooks directly: really re-locking a
  // std::mutex would deadlock before the report could be checked.
  int dummy = 0;
  sync_internal::note_acquire(&dummy, lock_rank::kNetwork, "test.rec", true);
  sync_internal::note_acquire(&dummy, lock_rank::kNetwork, "test.rec", true);
  ASSERT_EQ(reports().size(), 1u);
  EXPECT_NE(reports()[0].find("recursive"), std::string::npos);
  sync_internal::note_release(&dummy);
  sync_internal::note_release(&dummy);
  EXPECT_EQ(sync_internal::held_lock_count(), 0u);
}

TEST_F(LockOrderValidatorTest, RecursionCaughtEvenForUnranked) {
  int dummy = 0;
  sync_internal::note_acquire(&dummy, lock_rank::kUnranked, "test.leaf", true);
  sync_internal::note_acquire(&dummy, lock_rank::kUnranked, "test.leaf", true);
  ASSERT_EQ(reports().size(), 1u);
  EXPECT_NE(reports()[0].find("recursive"), std::string::npos);
  sync_internal::note_release(&dummy);
  sync_internal::note_release(&dummy);
}

TEST_F(LockOrderValidatorTest, TryLockSkipsTheRankCheck) {
  // try_lock never blocks, so it cannot complete a deadlock cycle; it
  // records the hold but is exempt from the ordering rule.
  Mutex high(lock_rank::kLogger, "test.high");
  Mutex low(lock_rank::kGramService, "test.low");
  high.lock();
  ASSERT_TRUE(low.try_lock());
  EXPECT_TRUE(reports().empty());
  EXPECT_EQ(sync_internal::held_lock_count(), 2u);
  low.unlock();
  high.unlock();
}

TEST_F(LockOrderValidatorTest, UnrankedIsExemptFromOrdering) {
  Mutex ranked(lock_rank::kLogger, "test.ranked");
  Mutex leaf;  // default-constructed: kUnranked
  {
    // Unranked under ranked: the leaf-lock pattern.
    MutexLock outer(ranked);
    MutexLock inner(leaf);
  }
  {
    // Ranked under unranked: an unranked hold does not block ranked
    // acquisitions either (it promises not to participate in cycles).
    MutexLock outer(leaf);
    MutexLock inner(ranked);
  }
  EXPECT_TRUE(reports().empty());
}

TEST_F(LockOrderValidatorTest, SharedMutexParticipatesInRanking) {
  SharedMutex high(lock_rank::kLogger, "test.rw.high");
  Mutex low(lock_rank::kGramService, "test.low");
  {
    ReaderLock outer(high);
    MutexLock inner(low);
  }
  ASSERT_EQ(reports().size(), 1u);
  EXPECT_NE(reports()[0].find("test.rw.high"), std::string::npos);
}

TEST_F(LockOrderValidatorTest, DisablingTheValidatorSilencesIt) {
  sync_internal::set_lock_order_validation(false);
  Mutex low(lock_rank::kGramService, "test.low");
  Mutex high(lock_rank::kLogger, "test.high");
  {
    MutexLock outer(high);
    MutexLock inner(low);  // inversion, but nobody is watching
  }
  EXPECT_TRUE(reports().empty());
}

TEST_F(LockOrderValidatorTest, ReportCarriesBothAcquisitionStacks) {
  Mutex low(lock_rank::kGramService, "test.low");
  Mutex high(lock_rank::kLogger, "test.high");
  {
    MutexLock outer(high);
    MutexLock inner(low);
  }
  ASSERT_EQ(reports().size(), 1u);
  EXPECT_NE(reports()[0].find("acquisition stack"), std::string::npos);
  EXPECT_NE(reports()[0].find("held since"), std::string::npos);
}

// ---------- CondVar ----------

TEST(CondVarTest, WaitNotifyHandsOffUnderTheMutex) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  int observed = -1;

  std::thread consumer([&] {
    MutexLock lock(mu);
    while (!ready) cv.wait(mu);
    observed = 42;
  });
  {
    MutexLock lock(mu);
    ready = true;
  }
  cv.notify_one();
  consumer.join();
  EXPECT_EQ(observed, 42);
}

TEST(CondVarTest, WaitForTimesOutWithoutANotify) {
  Mutex mu;
  CondVar cv;
  MutexLock lock(mu);
  auto status = cv.wait_for(mu, std::chrono::milliseconds(5));
  EXPECT_EQ(status, std::cv_status::timeout);
}

// ---------- stress (the TSan leg's target) ----------

TEST(SyncStressTest, MutexSerializesWriters) {
  Mutex mu;
  long counter = 0;
  constexpr int kThreads = 8;
  constexpr int kIters = 5000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        MutexLock lock(mu);
        ++counter;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, static_cast<long>(kThreads) * kIters);
}

TEST(SyncStressTest, SharedMutexReadersSeeConsistentWrites) {
  SharedMutex mu;
  long a = 0, b = 0;  // invariant under mu: a == b
  constexpr int kWriters = 2, kReaders = 6, kIters = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kWriters + kReaders);
  for (int t = 0; t < kWriters; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        WriterLock lock(mu);
        ++a;
        ++b;
      }
    });
  }
  std::atomic<bool> torn{false};
  for (int t = 0; t < kReaders; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        ReaderLock lock(mu);
        if (a != b) torn.store(true);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_FALSE(torn.load());
  EXPECT_EQ(a, static_cast<long>(kWriters) * kIters);
}

}  // namespace
}  // namespace ig
