// Shared fixtures: a simulated grid-in-a-box (clock, network, PKI, host
// system, command registry) most service-level tests build on.
#pragma once

#include <gtest/gtest.h>

#include <memory>

#include "common/clock.hpp"
#include "exec/command.hpp"
#include "logging/log.hpp"
#include "net/network.hpp"
#include "security/authorization.hpp"
#include "security/certificate.hpp"
#include "security/gridmap.hpp"

namespace ig::test {

/// One CA, one trusted root, one enrolled user ("alice" -> "alice"), one
/// host credential, a virtual clock and an in-process network.
class GridFixture : public ::testing::Test {
 protected:
  GridFixture()
      : clock(std::make_unique<VirtualClock>(seconds(1000))),
        network(std::make_unique<net::Network>()),
        ca(std::make_unique<security::CertificateAuthority>("/O=Grid/CN=Test CA",
                                                            seconds(365LL * 86400), *clock,
                                                            12345)),
        policy(security::Decision::kAllow) {
    trust.add_root(ca->root_certificate());
    alice = ca->issue("/O=Grid/CN=alice", security::CertType::kUser, seconds(86400));
    host_cred = ca->issue("/O=Grid/CN=host/test.sim", security::CertType::kHost,
                          seconds(365LL * 86400));
    gridmap.add("/O=Grid/CN=alice", "alice");
    logger = std::make_shared<logging::Logger>(*clock);
    log_sink = std::make_shared<logging::MemorySink>();
    logger->add_sink(log_sink);
    system = std::make_shared<exec::SimSystem>(*clock, 99, "test.sim");
    registry = exec::CommandRegistry::standard(*clock, system, 4242);
  }

  std::unique_ptr<VirtualClock> clock;
  std::unique_ptr<net::Network> network;
  std::unique_ptr<security::CertificateAuthority> ca;
  security::TrustStore trust;
  security::GridMap gridmap;
  security::AuthorizationPolicy policy;
  security::Credential alice;
  security::Credential host_cred;
  std::shared_ptr<logging::Logger> logger;
  std::shared_ptr<logging::MemorySink> log_sink;
  std::shared_ptr<exec::SimSystem> system;
  std::shared_ptr<exec::CommandRegistry> registry;
};

}  // namespace ig::test
