#include <gtest/gtest.h>

#include "core/config.hpp"
#include "core/infogram_client.hpp"
#include "core/infogram_service.hpp"
#include "exec/fork_backend.hpp"
#include "exec/sandbox.hpp"
#include "mds/filter.hpp"
#include "test_util.hpp"

namespace ig::core {
namespace {

constexpr Duration kWait = seconds(30);

// ---------- Configuration (Table 1) ----------

TEST(ConfigTest, ParseTable1Format) {
  auto config = Configuration::parse(
      "# TTL Keyword Command\n"
      "60 Date date -u\n"
      "80 Memory /sbin/sysinfo.exe -mem\n"
      "0 CPULoad /usr/local/bin/cpuload.exe\n");
  ASSERT_TRUE(config.ok());
  ASSERT_EQ(config->keywords().size(), 3u);
  const auto* date = config->find("Date");
  ASSERT_NE(date, nullptr);
  EXPECT_EQ(date->ttl, ms(60));
  EXPECT_EQ(date->command_line, "date -u");
  EXPECT_EQ(config->find("CPULoad")->ttl, ms(0));
  EXPECT_EQ(config->find("Bogus"), nullptr);
}

TEST(ConfigTest, Table1MatchesPaper) {
  auto config = Configuration::table1();
  ASSERT_EQ(config.keywords().size(), 5u);
  EXPECT_EQ(config.find("Date")->ttl, ms(60));
  EXPECT_EQ(config.find("Memory")->ttl, ms(80));
  EXPECT_EQ(config.find("CPU")->ttl, ms(100));
  EXPECT_EQ(config.find("CPULoad")->ttl, ms(0));
  EXPECT_EQ(config.find("list")->ttl, ms(1000));
  EXPECT_EQ(config.find("list")->command_line, "/bin/ls /home/gregor");
}

TEST(ConfigTest, ExtendedOptions) {
  auto config = Configuration::parse(
      "100 Load /usr/local/bin/cpuload.exe degradation=exponential delay=20 "
      "adaptive_ttl=1\n");
  ASSERT_TRUE(config.ok());
  const auto* load = config->find("Load");
  ASSERT_NE(load, nullptr);
  EXPECT_EQ(load->degradation, "exponential");
  EXPECT_EQ(load->delay, ms(20));
  EXPECT_TRUE(load->adaptive_ttl);
}

TEST(ConfigTest, ParseErrors) {
  EXPECT_FALSE(Configuration::parse("notanumber Date date").ok());
  EXPECT_FALSE(Configuration::parse("60 Date").ok());  // missing command
  EXPECT_FALSE(Configuration::parse("60 Date date\n70 Date date").ok());  // duplicate
  EXPECT_FALSE(Configuration::parse("60 Load cmd degradation=bogus").ok());
  EXPECT_FALSE(Configuration::parse("60 Load cmd delay=-5").ok());
  EXPECT_FALSE(Configuration::parse("-1 Date date").ok());
}

TEST(ConfigTest, SerializeParseRoundtrip) {
  auto config = Configuration::parse(
      "60 Date date -u\n"
      "100 Load /usr/local/bin/cpuload.exe degradation=linear delay=20 adaptive_ttl=1\n");
  ASSERT_TRUE(config.ok());
  auto again = Configuration::parse(config->serialize());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->keywords(), config->keywords());
}

// ---------- Service fixture ----------

class InfoGramTest : public ig::test::GridFixture {
 protected:
  InfoGramTest() : backend(std::make_shared<exec::ForkBackend>(registry, *clock)) {}

  void start_service(InfoGramConfig config = {}) {
    config.host = "test.sim";
    monitor = std::make_shared<info::SystemMonitor>(*clock, config.host);
    ASSERT_TRUE(Configuration::table1().apply(*monitor, registry).ok());
    service = std::make_unique<InfoGramService>(monitor, backend, host_cred, &trust,
                                                &gridmap, &policy, clock.get(), logger,
                                                config);
    ASSERT_TRUE(service->start(*network).ok());
  }

  InfoGramClient make_client() {
    return InfoGramClient(*network, service->address(), alice, trust, *clock);
  }

  std::shared_ptr<exec::ForkBackend> backend;
  std::shared_ptr<info::SystemMonitor> monitor;
  std::unique_ptr<InfoGramService> service;
};

TEST_F(InfoGramTest, ConfigApplyRejectsUnknownCommand) {
  monitor = std::make_shared<info::SystemMonitor>(*clock);
  auto config = Configuration::parse("60 X /bin/missing\n");
  ASSERT_TRUE(config.ok());
  auto status = config->apply(*monitor, registry);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), ErrorCode::kNotFound);
}

// ---------- Information path ----------

TEST_F(InfoGramTest, InfoQueryReturnsRecords) {
  start_service();
  auto client = make_client();
  auto records = client.query_info({"Memory", "CPU"});
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 2u);
  EXPECT_EQ((*records)[0].keyword, "Memory");
  EXPECT_NE((*records)[0].find("Memory:total"), nullptr);
}

TEST_F(InfoGramTest, InfoAllReturnsEveryKeyword) {
  start_service();
  auto client = make_client();
  auto records = client.query_info({"all"});
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(records->size(), 6u);  // the Table 1 keywords + health
}

TEST_F(InfoGramTest, UnknownKeywordFails) {
  start_service();
  auto client = make_client();
  auto records = client.query_info({"Bogus"});
  ASSERT_FALSE(records.ok());
  EXPECT_EQ(records.code(), ErrorCode::kNotFound);
}

TEST_F(InfoGramTest, XmlFormatRoundtrips) {
  start_service();
  auto client = make_client();
  auto records = client.query_info({"Memory"}, rsl::ResponseMode::kCached,
                                   rsl::OutputFormat::kXml);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 1u);
  EXPECT_NE(records->front().find("Memory:total"), nullptr);
}

TEST_F(InfoGramTest, RawPayloadIsLdifByDefault) {
  start_service();
  auto client = make_client();
  rsl::XrslBuilder builder;
  builder.info("Memory");
  auto resp = client.request(builder.request());
  ASSERT_TRUE(resp.ok());
  EXPECT_NE(resp->payload.find("dn: kw=Memory"), std::string::npos);
}

TEST_F(InfoGramTest, ResponseModesControlExecutions) {
  start_service();
  auto client = make_client();
  ASSERT_TRUE(client.query_info({"Memory"}).ok());
  ASSERT_TRUE(client.query_info({"Memory"}).ok());
  EXPECT_EQ(monitor->provider("Memory")->refresh_count(), 1u);  // cached

  ASSERT_TRUE(client.query_info({"Memory"}, rsl::ResponseMode::kImmediate).ok());
  EXPECT_EQ(monitor->provider("Memory")->refresh_count(), 2u);  // forced

  clock->advance(seconds(100));  // far past TTL
  auto last = client.query_info({"Memory"}, rsl::ResponseMode::kLast);
  ASSERT_TRUE(last.ok());
  EXPECT_EQ(monitor->provider("Memory")->refresh_count(), 2u);  // not refreshed
  EXPECT_DOUBLE_EQ(last->front().min_quality(), 0.0);           // stale, binary
}

TEST_F(InfoGramTest, QualityThresholdDrivesRefresh) {
  start_service();
  auto client = make_client();
  ASSERT_TRUE(client.query_info({"Memory"}).ok());
  clock->advance(ms(81));  // past the 80ms TTL
  rsl::XrslBuilder builder;
  builder.info("Memory").quality(50.0);
  ASSERT_TRUE(client.request(builder.request()).ok());
  EXPECT_EQ(monitor->provider("Memory")->refresh_count(), 2u);
}

TEST_F(InfoGramTest, FiltersLimitAttributes) {
  start_service();
  auto client = make_client();
  rsl::XrslBuilder builder;
  builder.info("Memory").filter("Memory:free");
  auto resp = client.request(builder.request());
  ASSERT_TRUE(resp.ok());
  ASSERT_EQ(resp->records.size(), 1u);
  ASSERT_EQ(resp->records[0].attributes.size(), 1u);
  EXPECT_EQ(resp->records[0].attributes[0].name, "Memory:free");
}

TEST_F(InfoGramTest, PerformanceTagReturnsTimingStats) {
  start_service();
  auto client = make_client();
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(client.query_info({"CPULoad"}, rsl::ResponseMode::kImmediate).ok());
  }
  rsl::XrslBuilder builder;
  builder.performance("CPULoad");
  auto resp = client.request(builder.request());
  ASSERT_TRUE(resp.ok());
  ASSERT_EQ(resp->records.size(), 1u);
  const auto& perf = resp->records[0];
  EXPECT_EQ(perf.keyword, "Performance");
  const auto* mean = perf.find("CPULoad:mean_s");
  ASSERT_NE(mean, nullptr);
  EXPECT_GT(std::stod(mean->value), 0.0);
  EXPECT_NE(perf.find("CPULoad:stddev_s"), nullptr);
  EXPECT_EQ(perf.find("CPULoad:count")->value, "3");
}

TEST_F(InfoGramTest, SchemaReflection) {
  start_service();
  auto client = make_client();
  ASSERT_TRUE(client.query_info({"all"}).ok());  // populate attribute schemas
  auto schema = client.fetch_schema();
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(schema->keywords.size(), 6u);  // Table 1 + health
  const auto* memory = schema->find("Memory");
  ASSERT_NE(memory, nullptr);
  EXPECT_EQ(memory->command, "/sbin/sysinfo.exe -mem");
  EXPECT_FALSE(memory->attributes.empty());
}

// ---------- Job path ----------

TEST_F(InfoGramTest, JobSubmissionThroughSameEndpoint) {
  start_service();
  auto client = make_client();
  rsl::XrslBuilder builder;
  builder.executable("/bin/echo").argument("unified");
  auto contact = client.submit_job(builder.request());
  ASSERT_TRUE(contact.ok());
  auto status = client.wait(*contact, kWait);
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status->state, exec::JobState::kDone);
  EXPECT_EQ(client.job_output(*contact).value(), "unified\n");
}

TEST_F(InfoGramTest, CombinedJobAndInfoInOneRoundTrip) {
  // The paper's headline: job submission and information query are the
  // same kind of request; here one request does both.
  start_service();
  auto client = make_client();
  auto resp = client.request("&(executable=/bin/echo)(arguments=combo)(info=CPULoad)");
  ASSERT_TRUE(resp.ok());
  ASSERT_TRUE(resp->job_contact.has_value());
  ASSERT_EQ(resp->records.size(), 1u);
  EXPECT_EQ(resp->records[0].keyword, "CPULoad");
  auto status = client.wait(*resp->job_contact, kWait);
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status->state, exec::JobState::kDone);
}

TEST_F(InfoGramTest, JarJobViaUnifiedEndpoint) {
  auto sandbox =
      std::make_shared<exec::SandboxBackend>(*clock, exec::SandboxConfig{}, system);
  sandbox->register_task("diffraction.jar", [](exec::SandboxContext&, const auto&) {
    return Result<std::string>(std::string("pattern analyzed"));
  });
  InfoGramConfig config;
  config.jar_backend = sandbox;
  start_service(config);
  auto client = make_client();
  auto resp = client.request("&(executable=diffraction.jar)(jobtype=jar)");
  ASSERT_TRUE(resp.ok());
  ASSERT_TRUE(resp->job_contact.has_value());
  auto status = client.wait(*resp->job_contact, kWait);
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status->state, exec::JobState::kDone);
}

TEST_F(InfoGramTest, CancelThroughUnifiedEndpoint) {
  start_service();
  auto client = make_client();
  auto contact = client.request("&(executable=/bin/sleep)(arguments=100000)(count=1000)");
  ASSERT_TRUE(contact.ok());
  (void)client.cancel(*contact->job_contact);
  auto status = client.wait(*contact->job_contact, kWait);
  ASSERT_TRUE(status.ok());
  EXPECT_TRUE(exec::is_terminal(status->state));
}

TEST_F(InfoGramTest, LegacyGrampVerbsServed) {
  // Backwards compatibility: a GRAM client pointed at the InfoGram port
  // works without modification.
  start_service();
  gram::GramClient legacy(*network, service->address(), alice, trust, *clock);
  auto contact = legacy.submit("&(executable=/bin/echo)(arguments=legacy)");
  ASSERT_TRUE(contact.ok());
  auto status = legacy.wait(*contact, kWait);
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status->state, exec::JobState::kDone);
  EXPECT_EQ(legacy.output(*contact).value(), "legacy\n");
}

TEST_F(InfoGramTest, UnknownVerbRejected) {
  start_service();
  auto conn = network->connect(service->address());
  ASSERT_TRUE(conn.ok());
  ASSERT_TRUE(security::authenticate(**conn, alice, trust, *clock).ok());
  auto resp = (*conn)->request(net::Message("LDAP_BIND"));
  ASSERT_TRUE(resp.ok());
  EXPECT_TRUE(resp->is_error());
}

// ---------- Security ----------

TEST_F(InfoGramTest, QueryActionAuthorizedSeparately) {
  policy = security::AuthorizationPolicy(security::Decision::kDeny);
  security::Rule allow_query;
  allow_query.action_pattern = "query";
  policy.add_rule(allow_query);
  start_service();
  auto client = make_client();
  EXPECT_TRUE(client.query_info({"Memory"}).ok());
  rsl::XrslBuilder builder;
  builder.executable("/bin/echo");
  auto denied = client.submit_job(builder.request());
  ASSERT_FALSE(denied.ok());
  EXPECT_EQ(denied.code(), ErrorCode::kDenied);
}

TEST_F(InfoGramTest, UnauthenticatedXrslRejected) {
  start_service();
  auto conn = network->connect(service->address());
  ASSERT_TRUE(conn.ok());
  auto resp = (*conn)->request(net::Message("XRSL", "(info=Memory)"));
  ASSERT_TRUE(resp.ok());
  EXPECT_TRUE(resp->is_error());
  EXPECT_EQ(net::Message::to_error(*resp).code, ErrorCode::kDenied);
}

// ---------- Restart from log (the checkpointing story) ----------

TEST_F(InfoGramTest, RecoverFromLogResubmitsIncompleteJobs) {
  start_service();
  auto client = make_client();
  // One job completes; simulate a crash with one job mid-flight by
  // crafting the log: drop the terminal event of the second submission.
  auto done = client.submit_job([] {
    rsl::XrslBuilder b;
    b.executable("/bin/echo").argument("done");
    return b.request();
  }());
  ASSERT_TRUE(done.ok());
  ASSERT_TRUE(client.wait(*done, kWait).ok());

  std::vector<logging::LogEvent> events = log_sink->events();
  logging::LogEvent interrupted;
  interrupted.sequence = 999;
  interrupted.time = clock->now();
  interrupted.type = logging::EventType::kJobSubmitted;
  interrupted.subject = "/O=Grid/CN=alice";
  interrupted.local_user = "alice";
  interrupted.job_id = 999999;
  interrupted.detail = "&(executable=/bin/echo)(arguments=recovered)";
  events.push_back(interrupted);

  // "Restart" the service: a fresh instance replays the log.
  service->stop();
  auto restarted_monitor = std::make_shared<info::SystemMonitor>(*clock, "test.sim");
  ASSERT_TRUE(Configuration::table1().apply(*restarted_monitor, registry).ok());
  InfoGramConfig config;
  config.host = "test.sim";
  InfoGramService restarted(restarted_monitor, backend, host_cred, &trust, &gridmap,
                            &policy, clock.get(), logger, config);
  ASSERT_TRUE(restarted.start(*network).ok());
  auto recovered = restarted.recover_from_log(events);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered.value(), 1u);  // only the interrupted job
}

TEST_F(InfoGramTest, ServiceLifecycleLogged) {
  start_service();
  service->stop();
  bool started = false, stopped = false;
  for (const auto& event : log_sink->events()) {
    if (event.type == logging::EventType::kServiceStart) started = true;
    if (event.type == logging::EventType::kServiceStop) stopped = true;
  }
  EXPECT_TRUE(started);
  EXPECT_TRUE(stopped);
}

// ---------- MDS backwards compatibility ----------

TEST_F(InfoGramTest, GrisExportServesSameProviders) {
  start_service();
  auto gris = service->make_gris();
  auto entries = gris->search("o=Grid", mds::Scope::kSubtree, mds::Filter::match_all());
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries->size(), 7u);  // resource entry + 5 Table-1 keywords + health
  bool found_memory = false;
  for (const auto& entry : entries.value()) {
    if (entry.first("kw") == "Memory") {
      found_memory = true;
      EXPECT_FALSE(entry.first("Memory:total").empty());
    }
  }
  EXPECT_TRUE(found_memory);
}

}  // namespace
}  // namespace ig::core
