#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "common/clock.hpp"
#include "logging/log.hpp"

namespace ig::logging {
namespace {

LogEvent make_event(EventType type, std::uint64_t job_id, const std::string& detail,
                    TimePoint time = seconds(1)) {
  LogEvent event;
  event.sequence = 1;
  event.time = time;
  event.type = type;
  event.subject = "/O=Grid/CN=alice";
  event.local_user = "alice";
  event.job_id = job_id;
  event.detail = detail;
  return event;
}

TEST(LogEventTest, SerializeParseRoundtrip) {
  LogEvent event = make_event(EventType::kJobSubmitted, 42, "&(executable=/bin/date)");
  auto parsed = LogEvent::parse(event.serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value(), event);
}

TEST(LogEventTest, EscapesTabsAndNewlines) {
  LogEvent event = make_event(EventType::kInfoQuery, 0, "a\tb\nc\\d");
  auto parsed = LogEvent::parse(event.serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->detail, "a\tb\nc\\d");
}

TEST(LogEventTest, ParseRejectsMalformed) {
  EXPECT_FALSE(LogEvent::parse("").ok());
  EXPECT_FALSE(LogEvent::parse("1\t2\t3").ok());
  EXPECT_FALSE(LogEvent::parse("x\t2\tjob_submitted\ta\tb\t1\td").ok());  // bad seq
  EXPECT_FALSE(LogEvent::parse("1\t2\tnot_a_type\ta\tb\t1\td").ok());
}

TEST(LogEventTest, AdversarialFieldsRoundtrip) {
  // Every escape-relevant byte combination, in every string field. A field
  // containing the *literal text* "\t" must not come back as a tab.
  const std::string nasty[] = {
      "",                    // empty field
      "\t",                  // bare tab
      "\n",                  // bare newline
      "\\",                  // bare backslash
      "\\t",                 // literal backslash-t text
      "\\\\t",               // backslash then literal \t
      "a\tb\nc\\d\\te",      // mixed
      "trailing backslash\\",
      "\\n\\t\\\\",          // all escapes as literal text
      "line1\nline2\nline3",
      std::string("embedded\0nul", 12),
  };
  for (const auto& subject : nasty) {
    for (const auto& detail : nasty) {
      LogEvent event = make_event(EventType::kJobSubmitted, 9, detail);
      event.subject = subject;
      event.local_user = nasty[6];
      std::string line = event.serialize();
      // Serialized form must stay one line, or FileSink framing breaks.
      EXPECT_EQ(line.find('\n'), std::string::npos);
      auto parsed = LogEvent::parse(line);
      ASSERT_TRUE(parsed.ok()) << "subject=" << subject << " detail=" << detail;
      EXPECT_EQ(parsed.value(), event);
    }
  }
}

TEST(EventTypeTest, NamesRoundtrip) {
  for (auto type : {EventType::kServiceStart, EventType::kServiceStop, EventType::kAuth,
                    EventType::kJobSubmitted, EventType::kJobStarted,
                    EventType::kJobFinished, EventType::kJobFailed,
                    EventType::kJobCancelled, EventType::kJobRestarted,
                    EventType::kInfoQuery, EventType::kTrace}) {
    auto back = event_type_from_string(to_string(type));
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back.value(), type);
  }
  EXPECT_FALSE(event_type_from_string("bogus").ok());
}

TEST(LoggerTest, StampsSequenceAndTime) {
  VirtualClock clock(seconds(5));
  Logger logger(clock);
  auto sink = std::make_shared<MemorySink>();
  logger.add_sink(sink);
  logger.log(EventType::kServiceStart);
  clock.advance(seconds(2));
  logger.log(EventType::kJobSubmitted, "/O=Grid/CN=a", "a", 7, "rsl");
  auto events = sink->events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].sequence, 1u);
  EXPECT_EQ(events[1].sequence, 2u);
  EXPECT_EQ(events[0].time, seconds(5));
  EXPECT_EQ(events[1].time, seconds(7));
  EXPECT_EQ(logger.events_logged(), 2u);
}

TEST(LoggerTest, MultipleSinksReceiveEvents) {
  VirtualClock clock;
  Logger logger(clock);
  auto a = std::make_shared<MemorySink>();
  auto b = std::make_shared<MemorySink>();
  logger.add_sink(a);
  logger.add_sink(b);
  logger.log(EventType::kAuth);
  EXPECT_EQ(a->size(), 1u);
  EXPECT_EQ(b->size(), 1u);
}

TEST(FileSinkTest, WriteAndReadBack) {
  std::string path = ::testing::TempDir() + "/infogram_log_test.log";
  std::remove(path.c_str());
  VirtualClock clock;
  Logger logger(clock);
  logger.add_sink(std::make_shared<FileSink>(path));
  logger.log(EventType::kJobSubmitted, "/O=Grid/CN=alice", "alice", 3,
             "&(executable=/bin/date)");
  logger.log(EventType::kJobFinished, "/O=Grid/CN=alice", "alice", 3, "contact");
  auto events = FileSink::read(path);
  ASSERT_TRUE(events.ok());
  ASSERT_EQ(events->size(), 2u);
  EXPECT_EQ((*events)[0].type, EventType::kJobSubmitted);
  EXPECT_EQ((*events)[1].job_id, 3u);
  std::remove(path.c_str());
}

TEST(FileSinkTest, ReadMissingFileFails) {
  auto events = FileSink::read("/nonexistent/dir/file.log");
  ASSERT_FALSE(events.ok());
  EXPECT_EQ(events.code(), ErrorCode::kIoError);
}

TEST(FileSinkTest, EventsDurableWhileSinkStillOpen) {
  // append() flushes per event: the file must be readable while the sink
  // is alive (a restarting service reads the log its predecessor still
  // held open when it crashed).
  std::string path = ::testing::TempDir() + "/infogram_log_durable.log";
  std::remove(path.c_str());
  VirtualClock clock;
  Logger logger(clock);
  auto sink = std::make_shared<FileSink>(path);
  logger.add_sink(sink);
  for (int i = 0; i < 5; ++i) {
    logger.log(EventType::kJobSubmitted, "/O=Grid/CN=a", "a",
               static_cast<std::uint64_t>(i), "rsl");
  }
  auto events = FileSink::read(path);  // sink NOT destroyed yet
  ASSERT_TRUE(events.ok());
  EXPECT_EQ(events->size(), 5u);
  std::remove(path.c_str());
}

TEST(FileSinkTest, TruncatedLastLineIsSkippedOnRead) {
  std::string path = ::testing::TempDir() + "/infogram_log_torn.log";
  std::remove(path.c_str());
  {
    VirtualClock clock;
    Logger logger(clock);
    logger.add_sink(std::make_shared<FileSink>(path));
    logger.log(EventType::kJobSubmitted, "/O=Grid/CN=a", "a", 1, "rsl-1");
    logger.log(EventType::kJobFinished, "/O=Grid/CN=a", "a", 1, "contact");
  }
  {
    // Simulate a crash mid-write: a torn final record.
    std::ofstream torn(path, std::ios::app);
    torn << "3\t99\tjob_sub";
  }
  auto events = FileSink::read(path);
  ASSERT_TRUE(events.ok());
  ASSERT_EQ(events->size(), 2u);
  EXPECT_EQ((*events)[1].type, EventType::kJobFinished);

  // Corruption *before* intact records is still an error.
  {
    std::ofstream bad(path, std::ios::trunc);
    bad << "garbage line\n";
    bad << make_event(EventType::kJobSubmitted, 1, "rsl").serialize() << "\n";
  }
  EXPECT_FALSE(FileSink::read(path).ok());
  std::remove(path.c_str());
}

// ---------- Recovery ----------

TEST(RecoveryTest, IncompleteJobsIdentified) {
  std::vector<LogEvent> events = {
      make_event(EventType::kJobSubmitted, 1, "rsl-1"),
      make_event(EventType::kJobStarted, 1, ""),
      make_event(EventType::kJobFinished, 1, ""),
      make_event(EventType::kJobSubmitted, 2, "rsl-2"),
      make_event(EventType::kJobStarted, 2, ""),     // crashed mid-flight
      make_event(EventType::kJobSubmitted, 3, "rsl-3"),  // never started
      make_event(EventType::kJobSubmitted, 4, "rsl-4"),
      make_event(EventType::kJobCancelled, 4, ""),
      make_event(EventType::kJobSubmitted, 5, "rsl-5"),
      make_event(EventType::kJobFailed, 5, ""),
  };
  auto plan = build_recovery_plan(events);
  ASSERT_EQ(plan.size(), 2u);
  EXPECT_EQ(plan[0].job_id, 2u);
  EXPECT_EQ(plan[0].rsl, "rsl-2");
  EXPECT_EQ(plan[0].subject, "/O=Grid/CN=alice");
  EXPECT_EQ(plan[1].job_id, 3u);
}

TEST(RecoveryTest, RestartedJobTracked) {
  std::vector<LogEvent> events = {
      make_event(EventType::kJobSubmitted, 1, "rsl-old"),
      make_event(EventType::kJobRestarted, 1, "rsl-new"),
  };
  auto plan = build_recovery_plan(events);
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_EQ(plan[0].rsl, "rsl-new");  // latest checkpoint wins
}

TEST(RecoveryTest, EmptyLogYieldsEmptyPlan) {
  EXPECT_TRUE(build_recovery_plan({}).empty());
}

// ---------- Accounting ----------

TEST(AccountingTest, PerUserSummary) {
  auto alice = [](EventType t, std::uint64_t job, TimePoint time) {
    return make_event(t, job, "", time);
  };
  LogEvent bob_query = make_event(EventType::kInfoQuery, 0, "Memory");
  bob_query.subject = "/O=Grid/CN=bob";

  std::vector<LogEvent> events = {
      alice(EventType::kJobSubmitted, 1, seconds(0)),
      alice(EventType::kJobStarted, 1, seconds(1)),
      alice(EventType::kJobFinished, 1, seconds(11)),
      alice(EventType::kJobSubmitted, 2, seconds(2)),
      alice(EventType::kJobStarted, 2, seconds(3)),
      alice(EventType::kJobFailed, 2, seconds(8)),
      alice(EventType::kInfoQuery, 0, seconds(4)),
      bob_query,
  };
  auto summary = accounting_summary(events);
  ASSERT_EQ(summary.size(), 2u);
  const auto& alice_entry = summary.at("/O=Grid/CN=alice");
  EXPECT_EQ(alice_entry.jobs_submitted, 2u);
  EXPECT_EQ(alice_entry.jobs_completed, 1u);
  EXPECT_EQ(alice_entry.jobs_failed, 1u);
  EXPECT_EQ(alice_entry.info_queries, 1u);
  EXPECT_EQ(alice_entry.job_wall_time, seconds(15));  // 10 + 5
  EXPECT_EQ(summary.at("/O=Grid/CN=bob").info_queries, 1u);
}

TEST(AccountingTest, CancelledJobsCounted) {
  std::vector<LogEvent> events = {
      make_event(EventType::kJobSubmitted, 1, ""),
      make_event(EventType::kJobCancelled, 1, ""),
  };
  auto summary = accounting_summary(events);
  EXPECT_EQ(summary.at("/O=Grid/CN=alice").jobs_cancelled, 1u);
}

}  // namespace
}  // namespace ig::logging
