// Tests for the paper's extension/future-work features: application
// checkpointing, xRSL multi-requests through the unified endpoint, and
// the MDS registration protocol that builds remote GIIS hierarchies.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>

#include "common/strings.hpp"
#include "core/config.hpp"
#include "core/infogram_client.hpp"
#include "exec/checkpoint.hpp"
#include "exec/fork_backend.hpp"
#include "exec/sandbox.hpp"
#include "mds/service.hpp"
#include "test_util.hpp"

namespace ig {
namespace {

constexpr Duration kWait = seconds(30);

// ---------- CheckpointStore ----------

TEST(CheckpointStoreTest, SaveLoadErase) {
  exec::CheckpointStore store;
  EXPECT_FALSE(store.load("k").ok());
  store.save("k", "step=5");
  EXPECT_TRUE(store.contains("k"));
  EXPECT_EQ(store.load("k").value(), "step=5");
  store.save("k", "step=7");  // replace
  EXPECT_EQ(store.load("k").value(), "step=7");
  store.erase("k");
  EXPECT_FALSE(store.contains("k"));
  EXPECT_EQ(store.size(), 0u);
}

TEST(CheckpointStoreTest, FilePersistenceRoundtrip) {
  std::string path = ::testing::TempDir() + "/ig_checkpoints_test.dat";
  std::remove(path.c_str());
  exec::CheckpointStore store;
  store.save("job a|alice", "progress with spaces\nand newlines");
  store.save("other", "123");
  ASSERT_TRUE(store.save_to_file(path).ok());
  auto loaded = exec::CheckpointStore::load_from_file(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 2u);
  EXPECT_EQ(loaded->load("job a|alice").value(), "progress with spaces\nand newlines");
  std::remove(path.c_str());
  EXPECT_FALSE(exec::CheckpointStore::load_from_file(path).ok());
}

// ---------- Checkpointed restart through the job manager ----------

class CheckpointRestartTest : public ig::test::GridFixture {};

TEST_F(CheckpointRestartTest, RestartedTaskResumesFromCheckpoint) {
  auto checkpoints = std::make_shared<exec::CheckpointStore>();
  exec::SandboxConfig config;
  config.capabilities = exec::CapabilitySet()
                            .grant(exec::Capability::kReadFile)
                            .grant(exec::Capability::kWriteFile);
  config.checkpoints = checkpoints;
  auto sandbox = std::make_shared<exec::SandboxBackend>(*clock, config, system);

  // A 10-step task that checkpoints after every step and crashes at step 5
  // on its first run. On restart it must resume at 5, not redo 0-4.
  auto steps_executed = std::make_shared<std::atomic<int>>(0);
  auto already_failed = std::make_shared<std::atomic<bool>>(false);
  sandbox->register_task(
      "resumable.jar",
      [steps_executed, already_failed](exec::SandboxContext& ctx,
                                       const std::vector<std::string>&) -> Result<std::string> {
        int start = 0;
        if (auto saved = ctx.restore(); saved.ok()) {
          start = static_cast<int>(*strings::parse_int(saved.value()));
        }
        for (int step = start; step < 10; ++step) {
          if (step == 5 && !already_failed->exchange(true)) {
            return Error(ErrorCode::kInternal, "simulated crash at step 5");
          }
          steps_executed->fetch_add(1);
          if (auto s = ctx.checkpoint(std::to_string(step + 1)); !s.ok()) return s.error();
        }
        return std::string("completed");
      });

  core::InfoGramConfig service_config;
  service_config.host = "ckpt.sim";
  service_config.max_restarts = 2;
  service_config.jar_backend = sandbox;
  auto monitor = std::make_shared<info::SystemMonitor>(*clock, "ckpt.sim");
  auto backend = std::make_shared<exec::ForkBackend>(registry, *clock);
  core::InfoGramService service(monitor, backend, host_cred, &trust, &gridmap, &policy,
                                clock.get(), logger, service_config);
  ASSERT_TRUE(service.start(*network).ok());
  core::InfoGramClient client(*network, service.address(), alice, trust, *clock);

  auto resp = client.request("&(executable=resumable.jar)(jobtype=jar)");
  ASSERT_TRUE(resp.ok());
  auto status = client.wait(*resp->job_contact, kWait);
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status->state, exec::JobState::kDone);
  EXPECT_EQ(status->restarts, 1);
  // 5 steps before the crash + 5 after resuming — not 15.
  EXPECT_EQ(steps_executed->load(), 10);
  // The completed job's checkpoint was cleared.
  EXPECT_EQ(checkpoints->size(), 0u);
}

TEST_F(CheckpointRestartTest, CheckpointRequiresCapabilities) {
  auto checkpoints = std::make_shared<exec::CheckpointStore>();
  exec::SandboxConfig config;  // no capabilities granted
  config.checkpoints = checkpoints;
  auto sandbox = std::make_shared<exec::SandboxBackend>(*clock, config, system);
  sandbox->register_task("locked.jar",
                         [](exec::SandboxContext& ctx, const auto&) -> Result<std::string> {
                           if (auto s = ctx.checkpoint("x"); !s.ok()) return s.error();
                           return std::string("should not reach");
                         });
  exec::JobRequest request;
  request.spec.executable = "locked.jar";
  request.local_user = "alice";
  auto status = sandbox->wait(*sandbox->submit(request), kWait);
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status->state, exec::JobState::kFailed);
  EXPECT_NE(status->error.find("denied"), std::string::npos);
}

TEST_F(CheckpointRestartTest, NoStoreAttachedIsUnavailable) {
  exec::SandboxConfig config;
  config.capabilities = exec::CapabilitySet::all();
  exec::SandboxContext ctx(config.capabilities, 100, 100, system, nullptr);
  EXPECT_EQ(ctx.checkpoint("x").code(), ErrorCode::kUnavailable);
  EXPECT_EQ(ctx.restore().code(), ErrorCode::kUnavailable);
}

// ---------- Multi-requests ----------

TEST(XrslMultiTest, ParseAllSplitsMultiRequests) {
  auto requests = rsl::XrslRequest::parse_all(
      "+(&(executable=/bin/a))(&(executable=/bin/b)(count=2))(&(info=Memory))");
  ASSERT_TRUE(requests.ok());
  ASSERT_EQ(requests->size(), 3u);
  EXPECT_EQ((*requests)[0].job->executable, "/bin/a");
  EXPECT_EQ((*requests)[1].job->count, 2);
  EXPECT_TRUE((*requests)[2].is_info());
}

TEST(XrslMultiTest, SingleSpecificationIsOneRequest) {
  auto requests = rsl::XrslRequest::parse_all("&(executable=/bin/a)");
  ASSERT_TRUE(requests.ok());
  EXPECT_EQ(requests->size(), 1u);
}

TEST(XrslMultiTest, MalformedMultiRejected) {
  EXPECT_FALSE(rsl::XrslRequest::parse_all("+(executable=/bin/a)").ok());  // bare relation
  EXPECT_FALSE(rsl::XrslRequest::parse_all("+(&(count=2))").ok());  // invalid child
}

class MultiRequestServiceTest : public ig::test::GridFixture {
 protected:
  MultiRequestServiceTest() : backend(std::make_shared<exec::ForkBackend>(registry, *clock)) {
    monitor = std::make_shared<info::SystemMonitor>(*clock, "multi.sim");
    EXPECT_TRUE(core::Configuration::table1().apply(*monitor, registry).ok());
    core::InfoGramConfig config;
    config.host = "multi.sim";
    service = std::make_unique<core::InfoGramService>(monitor, backend, host_cred, &trust,
                                                      &gridmap, &policy, clock.get(),
                                                      logger, config);
    EXPECT_TRUE(service->start(*network).ok());
  }
  std::shared_ptr<exec::ForkBackend> backend;
  std::shared_ptr<info::SystemMonitor> monitor;
  std::unique_ptr<core::InfoGramService> service;
};

TEST_F(MultiRequestServiceTest, MultiRequestSubmitsAllJobs) {
  core::InfoGramClient client(*network, service->address(), alice, trust, *clock);
  auto resp = client.request(
      "+(&(executable=/bin/echo)(arguments=one))"
      "(&(executable=/bin/echo)(arguments=two))"
      "(&(executable=/bin/echo)(arguments=three))");
  ASSERT_TRUE(resp.ok());
  ASSERT_EQ(resp->job_contacts.size(), 3u);
  EXPECT_EQ(resp->job_contact, resp->job_contacts.front());
  std::vector<std::string> outputs;
  for (const auto& contact : resp->job_contacts) {
    ASSERT_TRUE(client.wait(contact, kWait).ok());
    outputs.push_back(client.job_output(contact).value());
  }
  EXPECT_EQ(outputs, (std::vector<std::string>{"one\n", "two\n", "three\n"}));
}

TEST_F(MultiRequestServiceTest, MixedJobAndInfoMulti) {
  core::InfoGramClient client(*network, service->address(), alice, trust, *clock);
  auto resp = client.request(
      "+(&(executable=/bin/echo)(arguments=mixed))(&(info=Memory)(info=CPU))");
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->job_contacts.size(), 1u);
  EXPECT_EQ(resp->records.size(), 2u);
}

TEST_F(MultiRequestServiceTest, FailingChildFailsWholeMulti) {
  core::InfoGramClient client(*network, service->address(), alice, trust, *clock);
  auto resp = client.request("+(&(executable=/bin/echo))(&(info=BogusKeyword))");
  ASSERT_FALSE(resp.ok());
  EXPECT_EQ(resp.code(), ErrorCode::kNotFound);
}

// ---------- Remote GIIS registration ----------

class RegistrationTest : public ig::test::GridFixture {};

TEST_F(RegistrationTest, RemoteGrisRegistersWithGiis) {
  // Two resource GRIS endpoints...
  auto make_monitor = [this](const std::string& host) {
    auto monitor = std::make_shared<info::SystemMonitor>(*clock, host);
    info::ProviderOptions options;
    options.ttl = seconds(10);
    EXPECT_TRUE(monitor
                    ->add_source(std::make_shared<info::CommandSource>(
                                     "Memory", "/sbin/sysinfo.exe -mem", registry),
                                 options)
                    .ok());
    return monitor;
  };
  auto gris_a = std::make_shared<mds::Gris>(make_monitor("a.sim"), "a.sim", *clock);
  auto gris_b = std::make_shared<mds::Gris>(make_monitor("b.sim"), "b.sim", *clock);
  mds::MdsService service_a(gris_a, host_cred, &trust, clock.get(), logger);
  mds::MdsService service_b(gris_b, host_cred, &trust, clock.get(), logger);
  ASSERT_TRUE(service_a.start(*network, {"a.sim", 2136}).ok());
  ASSERT_TRUE(service_b.start(*network, {"b.sim", 2136}).ok());

  // ...and a VO-level GIIS served over the wire with registration enabled.
  auto giis = std::make_shared<mds::Giis>("vo", *clock, ms(100));
  mds::MdsService vo_service(giis, host_cred, &trust, clock.get(), logger, giis);
  ASSERT_TRUE(vo_service.start(*network, {"vo.sim", 2136}).ok());

  // Each resource registers itself remotely (as MDS GRIS registration does).
  mds::MdsClient reg_a(*network, {"vo.sim", 2136}, alice, trust, *clock);
  ASSERT_TRUE(reg_a.register_backend("host=a.sim, o=Grid", {"a.sim", 2136}).ok());
  ASSERT_TRUE(reg_a.register_backend("host=b.sim, o=Grid", {"b.sim", 2136}).ok());

  // A client of the VO service now sees both resources' subtrees.
  mds::MdsClient client(*network, {"vo.sim", 2136}, alice, trust, *clock);
  auto entries =
      client.search("o=Grid", mds::Scope::kSubtree, *mds::Filter::parse("(kw=Memory)"));
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries->size(), 2u);

  // Registration against a non-aggregate endpoint is rejected.
  mds::MdsClient bad(*network, {"a.sim", 2136}, alice, trust, *clock);
  auto status = bad.register_backend("host=b.sim, o=Grid", {"b.sim", 2136});
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), ErrorCode::kInvalidArgument);
}

}  // namespace
}  // namespace ig
