// Randomized property tests: seeded generators drive the parsers and
// serializers through hundreds of structurally diverse cases, checking
// the round-trip invariants the protocols depend on.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "format/ldif.hpp"
#include "format/xml.hpp"
#include "mds/directory.hpp"
#include "mds/filter.hpp"
#include "rsl/xrsl.hpp"
#include "soap/envelope.hpp"

namespace ig {
namespace {

// ---------- generators ----------

std::string random_word(Rng& rng, int max_len = 12) {
  static const char* kChars = "abcdefghijklmnopqrstuvwxyzABCDEFXYZ0123456789_-./";
  int len = static_cast<int>(rng.uniform_int(1, max_len));
  std::string out;
  for (int i = 0; i < len; ++i) {
    out += kChars[rng.uniform_int(0, 49)];
  }
  return out;
}

std::string random_text(Rng& rng, int max_len = 24) {
  // Arbitrary printable-ish text including RSL/XML/LDIF special chars.
  static const char* kChars =
      "abc XYZ 012 ()<>&\"'=$+|!:;,\t\n\\*?";
  int len = static_cast<int>(rng.uniform_int(0, max_len));
  std::string out;
  for (int i = 0; i < len; ++i) {
    out += kChars[rng.uniform_int(0, 31)];
  }
  return out;
}

rsl::XrslRequest random_request(Rng& rng) {
  rsl::XrslBuilder builder;
  bool has_job = rng.chance(0.7);
  if (has_job) {
    builder.executable("/" + random_word(rng));
    int args = static_cast<int>(rng.uniform_int(0, 4));
    for (int i = 0; i < args; ++i) builder.argument(random_text(rng));
    int envs = static_cast<int>(rng.uniform_int(0, 3));
    for (int i = 0; i < envs; ++i) builder.environment(random_word(rng), random_text(rng));
    if (rng.chance(0.3)) builder.directory("/" + random_word(rng));
    if (rng.chance(0.3)) builder.stdout_file(random_word(rng) + ".out");
    if (rng.chance(0.3)) builder.count(static_cast<int>(rng.uniform_int(1, 16)));
    if (rng.chance(0.3)) builder.queue(random_word(rng));
    if (rng.chance(0.2)) builder.job_type(rng.chance(0.5) ? "jar" : "single");
    if (rng.chance(0.3)) builder.max_time(seconds(60 * rng.uniform_int(1, 30)));
    if (rng.chance(0.3)) {
      builder.timeout(ms(rng.uniform_int(1, 10000)),
                      rng.chance(0.5) ? rsl::TimeoutAction::kCancel
                                      : rsl::TimeoutAction::kException);
    }
  }
  if (!has_job || rng.chance(0.5)) {
    int infos = static_cast<int>(rng.uniform_int(1, 3));
    for (int i = 0; i < infos; ++i) builder.info(random_word(rng));
    if (rng.chance(0.3)) builder.schema();
    if (rng.chance(0.4)) {
      builder.response(rng.chance(0.5) ? rsl::ResponseMode::kImmediate
                                       : rsl::ResponseMode::kLast);
    }
    if (rng.chance(0.3)) builder.quality(std::round(rng.uniform(0.0, 100.0) * 1e4) / 1e4);
    if (rng.chance(0.3)) builder.performance(random_word(rng));
    if (rng.chance(0.3)) builder.format(rsl::OutputFormat::kXml);
    if (rng.chance(0.3)) builder.filter(random_word(rng) + ":*");
  }
  return builder.request();
}

format::InfoRecord random_record(Rng& rng) {
  format::InfoRecord record;
  record.keyword = random_word(rng);
  record.generated_at = TimePoint(rng.uniform_int(0, 1'000'000'000));
  record.ttl = Duration(rng.uniform_int(0, 10'000'000));
  int attrs = static_cast<int>(rng.uniform_int(0, 8));
  for (int i = 0; i < attrs; ++i) {
    // Unique names so quality lines attach deterministically.
    record.add(random_word(rng) + std::to_string(i), random_text(rng),
               std::round(rng.uniform(0.0, 100.0) * 100.0) / 100.0);
  }
  return record;
}

// ---------- xRSL round-trips ----------

class XrslPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(XrslPropertyTest, BuilderToRslRoundtrips) {
  Rng rng(GetParam());
  for (int i = 0; i < 50; ++i) {
    rsl::XrslRequest request = random_request(rng);
    std::string text = request.to_rsl();
    auto parsed = rsl::XrslRequest::parse(text);
    ASSERT_TRUE(parsed.ok()) << text << " -> " << parsed.error().to_string();
    EXPECT_EQ(parsed.value(), request) << text;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, XrslPropertyTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

TEST(RslPropertyTest, UnparseParseIsIdentityOnRandomNodes) {
  Rng rng(99);
  for (int i = 0; i < 200; ++i) {
    // Random nodes via the text surface: generate, parse, unparse, parse.
    rsl::XrslRequest request = random_request(rng);
    auto node = rsl::parse(request.to_rsl());
    ASSERT_TRUE(node.ok());
    auto again = rsl::parse(rsl::unparse(node.value()));
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(node.value(), again.value());
  }
}

// ---------- format round-trips ----------

class FormatPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FormatPropertyTest, LdifRoundtripsRandomRecords) {
  Rng rng(GetParam() * 31 + 7);
  for (int i = 0; i < 30; ++i) {
    std::vector<format::InfoRecord> records;
    int n = static_cast<int>(rng.uniform_int(1, 4));
    for (int r = 0; r < n; ++r) records.push_back(random_record(rng));
    auto parsed = format::parse_ldif(format::to_ldif(records));
    ASSERT_TRUE(parsed.ok());
    ASSERT_EQ(parsed->size(), records.size());
    for (std::size_t r = 0; r < records.size(); ++r) {
      const auto& want = records[r];
      const auto& have = (*parsed)[r];
      EXPECT_EQ(have.keyword, want.keyword);
      EXPECT_EQ(have.generated_at, want.generated_at);
      EXPECT_EQ(have.ttl, want.ttl);
      ASSERT_EQ(have.attributes.size(), want.attributes.size());
      for (std::size_t a = 0; a < want.attributes.size(); ++a) {
        EXPECT_EQ(have.attributes[a].name, want.attributes[a].name);
        EXPECT_EQ(have.attributes[a].value, want.attributes[a].value);
        EXPECT_NEAR(have.attributes[a].quality, want.attributes[a].quality, 0.005);
      }
    }
  }
}

TEST_P(FormatPropertyTest, XmlRoundtripsRandomRecords) {
  Rng rng(GetParam() * 17 + 3);
  for (int i = 0; i < 30; ++i) {
    std::vector<format::InfoRecord> records;
    int n = static_cast<int>(rng.uniform_int(1, 4));
    for (int r = 0; r < n; ++r) records.push_back(random_record(rng));
    auto parsed = format::parse_xml(format::to_xml(records));
    ASSERT_TRUE(parsed.ok());
    ASSERT_EQ(parsed->size(), records.size());
    for (std::size_t r = 0; r < records.size(); ++r) {
      ASSERT_EQ((*parsed)[r].attributes.size(), records[r].attributes.size());
      for (std::size_t a = 0; a < records[r].attributes.size(); ++a) {
        EXPECT_EQ((*parsed)[r].attributes[a].value, records[r].attributes[a].value);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FormatPropertyTest, ::testing::Values(1u, 2u, 3u, 4u));

// ---------- directory entry + filter round-trips ----------

TEST(MdsPropertyTest, EntrySerializationRoundtripsRandomEntries) {
  Rng rng(404);
  for (int i = 0; i < 100; ++i) {
    mds::DirectoryEntry entry;
    entry.dn = "kw=" + random_word(rng) + ", o=Grid";
    int attrs = static_cast<int>(rng.uniform_int(1, 6));
    for (int a = 0; a < attrs; ++a) {
      int values = static_cast<int>(rng.uniform_int(1, 3));
      std::string name = random_word(rng) + std::to_string(a);
      for (int v = 0; v < values; ++v) entry.add(name, random_text(rng));
    }
    auto parsed = mds::DirectoryEntry::parse_all(entry.serialize());
    ASSERT_TRUE(parsed.ok());
    ASSERT_EQ(parsed->size(), 1u);
    EXPECT_EQ(parsed->front(), entry);
  }
}

TEST(MdsPropertyTest, FilterToStringRoundtripsRandomFilters) {
  Rng rng(505);
  // Random filter trees of bounded depth.
  std::function<mds::Filter(int)> gen = [&](int depth) {
    mds::Filter f;
    if (depth <= 0 || rng.chance(0.5)) {
      double kind = rng.uniform();
      f.kind = kind < 0.6   ? mds::Filter::Kind::kEquality
               : kind < 0.8 ? mds::Filter::Kind::kGreaterEq
                            : mds::Filter::Kind::kLessEq;
      f.attribute = random_word(rng);
      f.value = random_word(rng);
      if (f.kind == mds::Filter::Kind::kEquality && rng.chance(0.3)) f.value += "*";
      return f;
    }
    double kind = rng.uniform();
    if (kind < 0.4) {
      f.kind = mds::Filter::Kind::kAnd;
    } else if (kind < 0.8) {
      f.kind = mds::Filter::Kind::kOr;
    } else {
      f.kind = mds::Filter::Kind::kNot;
    }
    int children = f.kind == mds::Filter::Kind::kNot
                       ? 1
                       : static_cast<int>(rng.uniform_int(1, 3));
    for (int c = 0; c < children; ++c) f.children.push_back(gen(depth - 1));
    return f;
  };
  for (int i = 0; i < 100; ++i) {
    mds::Filter filter = gen(3);
    auto parsed = mds::Filter::parse(filter.to_string());
    ASSERT_TRUE(parsed.ok()) << filter.to_string();
    EXPECT_EQ(parsed.value(), filter) << filter.to_string();
  }
}

// ---------- SOAP envelope round-trips ----------

TEST(SoapPropertyTest, EnvelopeRoundtripsRandomOperations) {
  Rng rng(606);
  for (int i = 0; i < 100; ++i) {
    soap::Operation op;
    // Operation names become XML element names: letters/digits only.
    op.name = "op" + std::to_string(rng.uniform_int(0, 999999));
    int params = static_cast<int>(rng.uniform_int(0, 5));
    for (int p = 0; p < params; ++p) {
      op.parameters["p" + std::to_string(p)] = random_text(rng, 40);
    }
    auto parsed = soap::parse_envelope(soap::to_envelope(op));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), op);
  }
}

}  // namespace
}  // namespace ig
