// Tail-based trace retention (DESIGN.md §15): the verdict classifier,
// the holding ring's no-resurrection rule, provisional roots synthesized
// without a context, the anomaly flight recorder, SLO-burn-adaptive
// sampling, and the signal backhaul across real service hops.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "core/config.hpp"
#include "core/infogram_client.hpp"
#include "core/infogram_service.hpp"
#include "exec/fork_backend.hpp"
#include "info/system_monitor.hpp"
#include "obs/export.hpp"
#include "obs/propagation.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "test_util.hpp"

namespace ig {
namespace {

using obs::TailSampler;
using obs::TraceRecord;

// ---------- Verdict classifier ----------

TEST(TailVerdictTest, PrecedenceNamesTheHardestFailure) {
  EXPECT_STREQ(obs::verdict_name(obs::kSignalError), "error");
  EXPECT_STREQ(obs::verdict_name(obs::kSignalDeadline), "deadline");
  EXPECT_STREQ(obs::verdict_name(obs::kSignalBreaker), "breaker");
  EXPECT_STREQ(obs::verdict_name(obs::kSignalFailover), "failover");
  EXPECT_STREQ(obs::verdict_name(obs::kSignalDegraded), "degraded");
  EXPECT_STREQ(obs::verdict_name(obs::kSignalRetry), "retry");
  EXPECT_STREQ(obs::verdict_name(obs::kSignalSlow), "slow");
  EXPECT_STREQ(obs::verdict_name(0), "");
  // An error that also tripped the breaker is an "error" trace: the hard
  // failure outranks the mechanism that contained it.
  EXPECT_STREQ(obs::verdict_name(obs::kSignalError | obs::kSignalBreaker), "error");
  EXPECT_STREQ(obs::verdict_name(obs::kSignalRetry | obs::kSignalSlow), "retry");
}

class TailSamplerTest : public ::testing::Test {
 protected:
  obs::MetricsRegistry metrics;
};

TEST_F(TailSamplerTest, ProvisionalWithSignalRetainsAndStampsVerdict) {
  TailSampler sampler(metrics);
  sampler.open("t1");
  TraceRecord record;
  record.id = "t1";
  record.provisional = true;
  record.signals = obs::kSignalDegraded;
  EXPECT_TRUE(sampler.classify(record));
  EXPECT_EQ(record.verdict, "degraded");
  EXPECT_EQ(sampler.state("t1"), TailSampler::RingState::kRetained);
  EXPECT_EQ(sampler.retained(), 1u);
  EXPECT_EQ(sampler.discarded(), 0u);
}

TEST_F(TailSamplerTest, ErrorStatusAloneIsAVerdict) {
  TailSampler sampler(metrics);
  sampler.open("t1");
  TraceRecord record;
  record.id = "t1";
  record.provisional = true;
  record.status = "error:unavailable";
  EXPECT_TRUE(sampler.classify(record));
  EXPECT_EQ(record.verdict, "error");
  EXPECT_NE(record.signals & obs::kSignalError, 0u);
}

TEST_F(TailSamplerTest, CleanProvisionalDiscards) {
  TailSampler sampler(metrics);
  sampler.open("t1");
  TraceRecord record;
  record.id = "t1";
  record.provisional = true;
  EXPECT_FALSE(sampler.classify(record));
  EXPECT_TRUE(record.verdict.empty());
  EXPECT_EQ(sampler.state("t1"), TailSampler::RingState::kDiscarded);
  EXPECT_EQ(sampler.discarded(), 1u);
}

TEST_F(TailSamplerTest, HeadSampledAlwaysKeepsVerdictIsAnnotation) {
  TailSampler sampler(metrics);
  TraceRecord clean;
  clean.id = "h1";
  EXPECT_TRUE(sampler.classify(clean));
  EXPECT_TRUE(clean.verdict.empty());
  TraceRecord bad;
  bad.id = "h2";
  bad.signals = obs::kSignalRetry;
  EXPECT_TRUE(sampler.classify(bad));
  EXPECT_EQ(bad.verdict, "retry");
  // Neither touched the provisional counters.
  EXPECT_EQ(sampler.retained(), 0u);
  EXPECT_EQ(sampler.discarded(), 0u);
}

TEST_F(TailSamplerTest, LateSegmentFollowsOriginVerdict) {
  TailSampler sampler(metrics);
  // Origin retained: a later remote segment (no verdict of its own)
  // stitches in.
  sampler.open("kept");
  TraceRecord origin;
  origin.id = "kept";
  origin.provisional = true;
  origin.signals = obs::kSignalFailover;
  ASSERT_TRUE(sampler.classify(origin));
  TraceRecord late;
  late.id = "kept";
  late.provisional = true;
  EXPECT_TRUE(sampler.classify(late));

  // Origin discarded: the same shape must NOT resurrect the trace.
  sampler.open("dropped");
  TraceRecord clean;
  clean.id = "dropped";
  clean.provisional = true;
  ASSERT_FALSE(sampler.classify(clean));
  TraceRecord straggler;
  straggler.id = "dropped";
  straggler.provisional = true;
  EXPECT_FALSE(sampler.classify(straggler));
  // An id the ring never saw (or already evicted) discards too.
  TraceRecord unknown;
  unknown.id = "never-opened";
  unknown.provisional = true;
  EXPECT_FALSE(sampler.classify(unknown));
}

TEST_F(TailSamplerTest, HoldingRingEvictsOldestAndCounts) {
  TailSampler::Options options;
  options.holding_capacity = 2;
  TailSampler sampler(metrics, options);
  sampler.open("a");
  sampler.open("b");
  EXPECT_EQ(sampler.evicted(), 0u);
  sampler.open("c");
  EXPECT_EQ(sampler.evicted(), 1u);
  EXPECT_EQ(sampler.state("a"), TailSampler::RingState::kUnknown);
  EXPECT_EQ(sampler.state("b"), TailSampler::RingState::kPending);
  EXPECT_EQ(sampler.state("c"), TailSampler::RingState::kPending);
  EXPECT_EQ(metrics.counter(obs::metric::kTailEvicted).value(), 1u);
}

TEST_F(TailSamplerTest, ReopenedIdKeepsItsVerdictState) {
  TailSampler sampler(metrics);
  sampler.open("t1");
  TraceRecord record;
  record.id = "t1";
  record.provisional = true;
  record.signals = obs::kSignalBreaker;
  ASSERT_TRUE(sampler.classify(record));
  // A duplicate open (the id re-entering through another hop) must not
  // downgrade the sticky verdict back to pending.
  sampler.open("t1");
  EXPECT_EQ(sampler.state("t1"), TailSampler::RingState::kRetained);
}

TEST_F(TailSamplerTest, SlowThresholdDerivesFromHistogramP99) {
  TailSampler::Options options;
  options.min_samples = 4;
  options.refresh_every = 1;
  options.slow_factor = 2.0;
  TailSampler sampler(metrics, options);
  obs::Histogram& h = metrics.histogram("request.seconds");
  sampler.set_request_histogram(&h);

  // Below min_samples the threshold is infinite: slow verdicts can't fire
  // off microsecond noise.
  EXPECT_TRUE(std::isinf(sampler.slow_threshold_seconds()));
  EXPECT_FALSE(sampler.quick_keep(0, false, 100.0));

  for (int i = 0; i < 8; ++i) h.observe(0.010);
  double threshold = sampler.slow_threshold_seconds();
  EXPECT_FALSE(std::isinf(threshold));
  EXPECT_GE(threshold, options.min_slow_seconds);
  EXPECT_TRUE(sampler.quick_keep(0, false, threshold + 1.0));
  EXPECT_FALSE(sampler.quick_keep(0, false, 0.0));

  // classify() folds the same threshold into a "slow" verdict.
  sampler.open("t1");
  TraceRecord record;
  record.id = "t1";
  record.provisional = true;
  record.duration = seconds(30);
  EXPECT_TRUE(sampler.classify(record));
  EXPECT_EQ(record.verdict, "slow");

  // threshold_from applies the identical policy to any histogram (the
  // per-keyword reuse in ManagedProvider).
  obs::Histogram& kw = metrics.histogram("info.refresh.seconds.Memory");
  EXPECT_TRUE(std::isinf(sampler.threshold_from(kw.snapshot())));
  for (int i = 0; i < 8; ++i) kw.observe(0.020);
  EXPECT_FALSE(std::isinf(sampler.threshold_from(kw.snapshot())));
}

// ---------- Telemetry-level provisional lifecycle ----------

class TailTelemetryTest : public ::testing::Test {
 protected:
  VirtualClock clock{seconds(1000)};
};

TEST_F(TailTelemetryTest, CleanProvisionalLeavesNoTrace) {
  obs::Telemetry telemetry(clock, "node0.sim");
  telemetry.enable_tail();
  obs::PendingTrace pending;  // never materialized: the clean fast path
  telemetry.finish_provisional(pending, "INFO", ms(1), "ok");
  EXPECT_EQ(telemetry.traces().snapshot().size(), 0u);
  EXPECT_EQ(telemetry.tail()->discarded(), 1u);
  EXPECT_EQ(telemetry.tail()->retained(), 0u);
}

TEST_F(TailTelemetryTest, SignalOnPendingSynthesizesRetainedRecord) {
  obs::Telemetry telemetry(clock, "node0.sim");
  telemetry.enable_tail();
  obs::PendingTrace pending;
  pending.signals = obs::kSignalFailover;
  telemetry.finish_provisional(pending, "MDS_SEARCH", ms(5), "ok");
  auto traces = telemetry.traces().snapshot();
  ASSERT_EQ(traces.size(), 1u);
  const TraceRecord& record = traces[0];
  EXPECT_TRUE(record.provisional);
  EXPECT_EQ(record.verdict, "failover");
  EXPECT_EQ(record.root, "MDS_SEARCH");
  EXPECT_EQ(record.duration, ms(5));
  // The synthesized record is backdated: it describes the request that
  // just finished, not the instant of the verdict.
  EXPECT_EQ(record.start, clock.now() - ms(5));
  ASSERT_EQ(record.spans.size(), 1u);
  EXPECT_EQ(record.spans[0].node, "node0.sim");
  EXPECT_EQ(telemetry.tail()->retained(), 1u);
}

TEST_F(TailTelemetryTest, ErrorStatusRetainsWithoutContext) {
  obs::Telemetry telemetry(clock, "node0.sim");
  telemetry.enable_tail();
  obs::PendingTrace pending;
  telemetry.finish_provisional(pending, "INFO", ms(2), "error:unavailable");
  auto traces = telemetry.traces().snapshot();
  ASSERT_EQ(traces.size(), 1u);
  EXPECT_EQ(traces[0].verdict, "error");
  EXPECT_EQ(traces[0].status, "error:unavailable");
}

TEST_F(TailTelemetryTest, MaterializedProvisionalFoldsPendingSignals) {
  obs::Telemetry telemetry(clock, "node0.sim");
  telemetry.enable_tail();
  auto ctx = telemetry.make_provisional_trace("lookup");
  std::string id = ctx->id();
  EXPECT_TRUE(ctx->provisional());
  EXPECT_EQ(telemetry.tail()->state(id), TailSampler::RingState::kPending);
  obs::PendingTrace pending;
  pending.ctx = ctx.get();
  pending.signals = obs::kSignalRetry;
  telemetry.finish_provisional(pending, "lookup", ms(3), "ok");
  auto found = telemetry.traces().find(id);
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].verdict, "retry");
  EXPECT_EQ(telemetry.tail()->state(id), TailSampler::RingState::kRetained);
}

TEST_F(TailTelemetryTest, SignalTailRoutesThroughProvisionalScope) {
  obs::Telemetry telemetry(clock, "node0.sim");
  telemetry.enable_tail();
  obs::PendingTrace pending;
  {
    obs::ProvisionalScope scope(pending);
    obs::signal_tail(obs::kSignalDeadline);  // zero-plumbing call site
  }
  EXPECT_EQ(pending.signals, static_cast<std::uint32_t>(obs::kSignalDeadline));
  telemetry.finish_provisional(pending, "INFO", ms(1), "ok");
  auto traces = telemetry.traces().snapshot();
  ASSERT_EQ(traces.size(), 1u);
  EXPECT_EQ(traces[0].verdict, "deadline");
}

TEST_F(TailTelemetryTest, DiscardedTraceIsNotResurrectedByLateSegment) {
  obs::Telemetry telemetry(clock, "origin.sim");
  telemetry.enable_tail();

  // Origin finishes clean: discarded.
  auto origin = telemetry.make_provisional_trace("lookup");
  std::string id = origin->id();
  telemetry.complete(*origin);
  EXPECT_EQ(telemetry.traces().find(id).size(), 0u);
  EXPECT_EQ(telemetry.tail()->state(id), TailSampler::RingState::kDiscarded);

  // A remote hop's segment arrives after the verdict (the 3-hop
  // late-span shape: a leaf's backhaul reaching the shared store after
  // the origin already discarded). It must not resurrect the trace.
  auto late = telemetry.make_remote_provisional("MDS_SEARCH", id, 42);
  (void)telemetry.collect_provisional(*late);
  EXPECT_EQ(telemetry.traces().find(id).size(), 0u);
  EXPECT_EQ(telemetry.traces().snapshot().size(), 0u);
}

TEST_F(TailTelemetryTest, RetainedTraceStitchesLateSegment) {
  obs::Telemetry telemetry(clock, "origin.sim");
  telemetry.enable_tail();
  auto origin = telemetry.make_provisional_trace("lookup");
  std::string id = origin->id();
  origin->add_signal(obs::kSignalFailover);
  telemetry.complete(*origin);
  ASSERT_EQ(telemetry.traces().find(id).size(), 1u);

  auto late = telemetry.make_remote_provisional("MDS_SEARCH", id, 42);
  (void)telemetry.collect_provisional(*late);
  auto found = telemetry.traces().find(id);
  ASSERT_EQ(found.size(), 1u);
  bool late_span = false;
  for (const auto& s : found[0].spans) {
    if (s.name == "MDS_SEARCH") late_span = true;
  }
  EXPECT_TRUE(late_span);
}

// ---------- Flight recorder ----------

TEST(FlightRecorderTest, RingIsBoundedByCapacity) {
  VirtualClock clock(seconds(1000));
  obs::FlightRecorder::Options options;
  options.capacity = 3;
  obs::FlightRecorder recorder(clock, "node.sim", options);
  for (int i = 0; i < 10; ++i) {
    recorder.note("log", "event " + std::to_string(i));
  }
  auto events = recorder.events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_NE(events.back().detail.find("event 9"), std::string::npos);
  EXPECT_NE(events.front().detail.find("event 7"), std::string::npos);
}

TEST(FlightRecorderTest, DumpWritesHeaderEventsAndTraces) {
  VirtualClock clock(seconds(1000));
  obs::FlightRecorder::Options options;
  options.dump_dir = ::testing::TempDir();
  // Node ids carry host:port separators that make poor filenames.
  obs::FlightRecorder recorder(clock, "hub.sim:2135", options);
  recorder.note("log", "breaker opened");
  std::vector<TraceRecord> traces(1);
  traces[0].id = "abc123";
  traces[0].verdict = "error";
  std::string path = recorder.dump("verdict", traces);
  ASSERT_FALSE(path.empty());
  EXPECT_NE(path.find("FLIGHT_hub.sim_2135_0.jsonl"), std::string::npos);
  EXPECT_EQ(recorder.last_path(), path);
  auto lines = obs::JsonlExporter::read_lines(path);
  ASSERT_EQ(lines.size(), 3u);  // header + 1 event + 1 trace
  EXPECT_NE(lines[0].find("\"type\":\"flight\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"reason\":\"verdict\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"kind\":\"log\""), std::string::npos);
  EXPECT_NE(lines[2].find("\"type\":\"trace\""), std::string::npos);
  EXPECT_NE(lines[2].find("\"verdict\":\"error\""), std::string::npos);
}

TEST(FlightRecorderTest, DumpsAreRateLimitedUnlessForced) {
  VirtualClock clock(seconds(1000));
  obs::FlightRecorder::Options options;
  options.dump_dir = ::testing::TempDir();
  options.min_dump_interval_s = 10.0;
  obs::FlightRecorder recorder(clock, "node.sim", options);
  EXPECT_FALSE(recorder.dump("first", {}).empty());
  // A page storm inside the interval is swallowed...
  EXPECT_TRUE(recorder.dump("storm", {}).empty());
  EXPECT_EQ(recorder.dumps(), 1u);
  // ...unless forced, or once the interval passes.
  EXPECT_FALSE(recorder.dump("forced", {}, true).empty());
  clock.advance(seconds(11));
  EXPECT_FALSE(recorder.dump("later", {}).empty());
  EXPECT_EQ(recorder.dumps(), 3u);
}

TEST(FlightRecorderTest, MetricDeltasCaptureOnlyMovement) {
  VirtualClock clock(seconds(1000));
  obs::MetricsRegistry metrics;
  obs::FlightRecorder recorder(clock, "node.sim");
  recorder.set_metrics(&metrics);
  metrics.counter("info.retry.attempts").add(5);

  TraceRecord record;
  record.id = "t1";
  record.verdict = "retry";
  recorder.note_trace(record);
  auto events = recorder.events();
  ASSERT_EQ(events.size(), 2u);  // the trace plus one metric-delta event
  EXPECT_EQ(events[0].kind, "trace");
  EXPECT_EQ(events[1].kind, "metric");
  EXPECT_NE(events[1].detail.find("\"info.retry.attempts\":5"), std::string::npos);

  // No movement since the last capture: no metric event this time.
  recorder.note_trace(record);
  ASSERT_EQ(recorder.events().size(), 3u);
  EXPECT_EQ(recorder.events().back().kind, "trace");
}

// ---------- SLO-burn-adaptive sampling ----------

TEST(TailBurnFeedbackTest, BurnWidensSamplingPageDumpsAndHealthDecays) {
  VirtualClock clock(seconds(1000));
  auto telemetry = std::make_shared<obs::Telemetry>(clock, "burn.sim");
  telemetry->enable_tail();
  telemetry->set_trace_sampling(64);
  obs::FlightRecorder::Options fr_options;
  fr_options.dump_dir = ::testing::TempDir();
  auto flight = std::make_shared<obs::FlightRecorder>(clock, "burn.sim", fr_options);
  telemetry->set_flight_recorder(flight);

  obs::SloObjective objective;
  objective.name = "request-errors";
  objective.layer = "core";
  objective.kind = obs::SloObjective::Kind::kErrorRate;
  objective.metric = obs::metric::kRequestsErrors;
  objective.total_metric = obs::metric::kRequestsTotal;
  objective.target = 0.99;
  telemetry->slo().add(objective);

  obs::Counter& total = telemetry->metrics().counter(obs::metric::kRequestsTotal);
  obs::Counter& errors = telemetry->metrics().counter(obs::metric::kRequestsErrors);
  obs::Gauge& gauge = telemetry->metrics().gauge(obs::metric::kTailSampleEvery);

  (void)telemetry->slo_record("slo");  // baseline history sample
  EXPECT_EQ(gauge.value(), 64);

  // Every request errors: burn 100x the budget rate over both windows —
  // a page. Sampling widens 8x and the flight record dumps.
  total.add(100);
  errors.add(100);
  clock.advance(seconds(60));
  (void)telemetry->slo_record("slo");
  EXPECT_EQ(gauge.value(), 8);
  EXPECT_GE(flight->dumps(), 1u);
  EXPECT_NE(flight->last_path().find("FLIGHT_burn.sim_"), std::string::npos);
  int sampled = 0;
  for (int i = 0; i < 64; ++i) sampled += telemetry->should_sample() ? 1 : 0;
  EXPECT_EQ(sampled, 8);  // the widened rate is live, not just reported

  // Healthy traffic clears the alert; the rate halves back per
  // evaluation — no cliff — until it reaches the configured base.
  total.add(100000);
  clock.advance(seconds(400));
  (void)telemetry->slo_record("slo");
  EXPECT_EQ(gauge.value(), 16);
  total.add(100000);
  clock.advance(seconds(400));
  (void)telemetry->slo_record("slo");
  EXPECT_EQ(gauge.value(), 32);
  total.add(100000);
  clock.advance(seconds(400));
  (void)telemetry->slo_record("slo");
  EXPECT_EQ(gauge.value(), 64);
  total.add(100000);
  clock.advance(seconds(400));
  (void)telemetry->slo_record("slo");
  EXPECT_EQ(gauge.value(), 64);  // decay stops at base, never beyond
}

TEST(TailBurnFeedbackTest, FlightRecordKeywordReportsState) {
  VirtualClock clock(seconds(1000));
  obs::Telemetry telemetry(clock, "node.sim");
  telemetry.enable_tail();
  obs::FlightRecorder::Options fr_options;
  fr_options.dump_dir = ::testing::TempDir();
  telemetry.set_flight_recorder(
      std::make_shared<obs::FlightRecorder>(clock, "node.sim", fr_options));

  obs::PendingTrace pending;
  pending.signals = obs::kSignalBreaker;
  telemetry.finish_provisional(pending, "INFO", ms(1), "ok");

  format::InfoRecord record = telemetry.flight_record("flightrecorder");
  ASSERT_NE(record.find("enabled"), nullptr);
  EXPECT_EQ(record.find("enabled")->value, "true");
  EXPECT_EQ(record.find("tail")->value, "true");
  EXPECT_EQ(record.find("tail:retained")->value, "1");
  EXPECT_EQ(record.find("tail:discarded")->value, "0");
  EXPECT_EQ(record.find("tail:slow_threshold_s")->value, "inf");
  // The retained anomaly is sitting in the ring, visible as event lines.
  ASSERT_NE(record.find("events"), nullptr);
  EXPECT_NE(record.find("events")->value, "0");
  ASSERT_NE(record.find("event.0"), nullptr);
  EXPECT_NE(record.find("event.0")->value.find("\"verdict\":\"breaker\""),
            std::string::npos);
}

// ---------- Across real hops: the signal backhaul ----------

class TailPropagationTest : public ig::test::GridFixture {};

TEST_F(TailPropagationTest, ProvisionalRootRetainsFaultAbsorbedTwoHopsAway) {
  auto backend = std::make_shared<exec::ForkBackend>(registry, *clock);

  // Leaf: a keyword that succeeds until killed; afterwards the stale
  // shield serves the cache — a degraded answer the caller can't see in
  // the response status.
  auto down = std::make_shared<std::atomic<bool>>(false);
  auto leaf_telemetry = std::make_shared<obs::Telemetry>(*clock);
  core::InfoGramConfig leaf_config;
  leaf_config.host = "leaf.sim";
  leaf_config.telemetry = leaf_telemetry;
  leaf_config.trace_sample_every = 1u << 20;  // head never samples
  auto leaf_monitor = std::make_shared<info::SystemMonitor>(*clock, leaf_config.host);
  info::ProviderOptions flaky_options;
  flaky_options.ttl = ms(100);
  ASSERT_TRUE(leaf_monitor
                  ->add_source(std::make_shared<info::FunctionSource>(
                                   "Flaky",
                                   [down]() -> Result<format::InfoRecord> {
                                     if (down->load()) {
                                       return Error(ErrorCode::kIoError, "down");
                                     }
                                     format::InfoRecord r;
                                     r.keyword = "Flaky";
                                     r.add("v", "1");
                                     return r;
                                   },
                                   "function:test.flaky"),
                               flaky_options)
                  .ok());
  core::InfoGramService leaf(leaf_monitor, backend, host_cred, &trust, &gridmap, &policy,
                             clock.get(), logger, leaf_config);
  ASSERT_TRUE(leaf.start(*network).ok());

  // Hub: every query forwards to the leaf (TTL 0), so the client's
  // request fans through three nodes: client -> hub -> leaf.
  auto hub_telemetry = std::make_shared<obs::Telemetry>(*clock);
  core::InfoGramConfig hub_config;
  hub_config.host = "hub.sim";
  hub_config.telemetry = hub_telemetry;
  hub_config.trace_sample_every = 1u << 20;
  auto hub_monitor = std::make_shared<info::SystemMonitor>(*clock, hub_config.host);
  auto leaf_client = std::make_shared<core::InfoGramClient>(*network, leaf.address(),
                                                            alice, trust, *clock);
  info::ProviderOptions forward_options;
  forward_options.ttl = Duration(0);
  ASSERT_TRUE(hub_monitor
                  ->add_source(std::make_shared<info::FunctionSource>(
                                   "Remote",
                                   [leaf_client]() -> Result<format::InfoRecord> {
                                     auto records = leaf_client->query_info({"Flaky"});
                                     if (!records.ok()) return records.error();
                                     format::InfoRecord out = records->front();
                                     out.keyword = "Remote";
                                     return out;
                                   },
                                   "forward:leaf.sim/Flaky"),
                               forward_options)
                  .ok());
  core::InfoGramService hub(hub_monitor, backend, host_cred, &trust, &gridmap, &policy,
                            clock.get(), logger, hub_config);
  ASSERT_TRUE(hub.start(*network).ok());

  core::InfoGramClient client(*network, hub.address(), alice, trust, *clock);

  // Clean warmup: the provisional trace materializes (the hub's outbound
  // hop needs a wire id) but the finish verdict discards it.
  // The counter-based sampler always head-samples its first request
  // (seq 0 hits every rate); burn that slot so each request below takes
  // the provisional path.
  (void)hub_telemetry->should_sample();
  ASSERT_TRUE(client.query_info({"Remote"}).ok());
  EXPECT_EQ(hub_telemetry->traces().snapshot().size(), 0u);
  EXPECT_GE(hub_telemetry->tail()->discarded(), 1u);

  // Kill the leaf's source and expire its cache: the next forward is
  // served stale by the *leaf's* shield — the fault is absorbed two hops
  // from the origin and only the ig-trace-signals backhaul carries it.
  down->store(true);
  clock->advance(ms(500));
  ASSERT_TRUE(client.query_info({"Remote"}).ok());  // degraded, not failed

  auto traces = hub_telemetry->traces().snapshot();
  ASSERT_EQ(traces.size(), 1u);
  const TraceRecord& record = traces[0];
  EXPECT_TRUE(record.provisional);
  EXPECT_EQ(record.verdict, "degraded");
  EXPECT_NE(record.signals & obs::kSignalDegraded, 0u);
  bool leaf_span = false;
  for (const auto& s : record.spans) {
    if (s.node == "leaf.sim") leaf_span = true;
  }
  EXPECT_TRUE(leaf_span);
  EXPECT_EQ(hub_telemetry->tail()->retained(), 1u);
  // The leaf saw its own verdict and retained its segment independently.
  EXPECT_EQ(leaf_telemetry->traces().find(record.id).size(), 1u);

  // The tail layer's state is itself a TTL-0 query, like everything else.
  auto fr = client.query_info({"flightrecorder"});
  ASSERT_TRUE(fr.ok());
  ASSERT_EQ(fr->size(), 1u);
  ASSERT_NE(fr->front().find("tail"), nullptr);
  EXPECT_EQ(fr->front().find("tail")->value, "true");
  EXPECT_EQ(fr->front().find("tail:retained")->value, "1");
}

}  // namespace
}  // namespace ig
