#include <gtest/gtest.h>

#include "info/system_monitor.hpp"
#include "mds/directory.hpp"
#include "mds/filter.hpp"
#include "mds/giis.hpp"
#include "mds/gris.hpp"
#include "mds/service.hpp"
#include "test_util.hpp"

namespace ig::mds {
namespace {

// ---------- DN handling ----------

TEST(DnTest, ComponentsNormalized) {
  auto comps = dn_components("KW=Memory ,  Host=hot.mcs.anl.gov,o=Grid");
  ASSERT_EQ(comps.size(), 3u);
  EXPECT_EQ(comps[0], "kw=Memory");
  EXPECT_EQ(comps[1], "host=hot.mcs.anl.gov");
  EXPECT_EQ(comps[2], "o=Grid");
  EXPECT_EQ(normalize_dn("KW=x,O=Grid"), "kw=x, o=Grid");
}

TEST(DnTest, SuffixContainment) {
  EXPECT_TRUE(dn_under("kw=Memory, host=a, o=Grid", "o=Grid"));
  EXPECT_TRUE(dn_under("kw=Memory, host=a, o=Grid", "host=a, o=Grid"));
  EXPECT_TRUE(dn_under("o=Grid", "o=Grid"));
  EXPECT_FALSE(dn_under("kw=Memory, host=a, o=Grid", "host=b, o=Grid"));
  EXPECT_FALSE(dn_under("o=Grid", "host=a, o=Grid"));
  EXPECT_EQ(dn_depth_below("kw=x, host=a, o=Grid", "o=Grid"), 2);
  EXPECT_EQ(dn_depth_below("o=Grid", "o=Grid"), 0);
  EXPECT_EQ(dn_depth_below("o=Other", "o=Grid"), -1);
}

// ---------- Directory ----------

DirectoryEntry make_entry(const std::string& dn,
                          std::map<std::string, std::string> attrs = {}) {
  DirectoryEntry entry;
  entry.dn = dn;
  entry.add("objectclass", "Test");
  for (auto& [k, v] : attrs) entry.add(k, v);
  return entry;
}

class DirectoryTest : public ::testing::Test {
 protected:
  DirectoryTest() {
    directory.put(make_entry("o=Grid"));
    directory.put(make_entry("host=a, o=Grid", {{"hostname", "a"}}));
    directory.put(make_entry("host=b, o=Grid", {{"hostname", "b"}}));
    directory.put(make_entry("kw=Memory, host=a, o=Grid", {{"kw", "Memory"}}));
    directory.put(make_entry("kw=CPU, host=a, o=Grid", {{"kw", "CPU"}}));
  }
  Directory directory;
};

TEST_F(DirectoryTest, GetPutErase) {
  EXPECT_EQ(directory.size(), 5u);
  auto entry = directory.get("host=a,o=Grid");  // normalization on lookup
  ASSERT_TRUE(entry.ok());
  EXPECT_EQ(entry->first("hostname"), "a");
  directory.erase("host=a, o=Grid");
  EXPECT_FALSE(directory.get("host=a, o=Grid").ok());
}

TEST_F(DirectoryTest, ScopeBase) {
  auto hits = directory.in_scope("host=a, o=Grid", Scope::kBase);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].dn, "host=a, o=Grid");
}

TEST_F(DirectoryTest, ScopeOneLevel) {
  auto hits = directory.in_scope("host=a, o=Grid", Scope::kOneLevel);
  EXPECT_EQ(hits.size(), 2u);  // Memory + CPU, not the host entry itself
  auto top = directory.in_scope("o=Grid", Scope::kOneLevel);
  EXPECT_EQ(top.size(), 2u);  // host=a, host=b
}

TEST_F(DirectoryTest, ScopeSubtree) {
  EXPECT_EQ(directory.in_scope("o=Grid", Scope::kSubtree).size(), 5u);
  EXPECT_EQ(directory.in_scope("host=a, o=Grid", Scope::kSubtree).size(), 3u);
  EXPECT_TRUE(directory.in_scope("o=Nowhere", Scope::kSubtree).empty());
}

TEST(DirectoryEntryTest, SerializeParseRoundtrip) {
  DirectoryEntry entry = make_entry("kw=X, o=Grid", {{"plain", "value"}});
  entry.add("multi", "v1");
  entry.add("multi", "v2");
  entry.add("unsafe", " leading space");
  entry.add("namespaced:attr", "val");
  auto parsed = DirectoryEntry::parse_all(entry.serialize());
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->size(), 1u);
  EXPECT_EQ(parsed->front(), entry);
}

TEST(DirectoryEntryTest, ParseMultipleEntries) {
  std::string text = make_entry("kw=A, o=Grid").serialize() +
                     make_entry("kw=B, o=Grid").serialize();
  auto parsed = DirectoryEntry::parse_all(text);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->size(), 2u);
}

TEST(DirectoryEntryTest, ParseRejectsAttributeBeforeDn) {
  EXPECT_FALSE(DirectoryEntry::parse_all("attr: value\n").ok());
}

// ---------- Filters ----------

struct FilterCase {
  const char* filter;
  bool matches;
};

class FilterEvalTest : public ::testing::TestWithParam<FilterCase> {
 protected:
  DirectoryEntry entry = [] {
    DirectoryEntry e;
    e.dn = "kw=Memory, host=a, o=Grid";
    e.add("objectclass", "InfoGramRecord");
    e.add("kw", "Memory");
    e.add("Memory:total", "524288");
    e.add("Memory:free", "231115");
    e.add("tag", "red");
    e.add("tag", "blue");  // multi-valued
    return e;
  }();
};

TEST_P(FilterEvalTest, Evaluates) {
  auto filter = Filter::parse(GetParam().filter);
  ASSERT_TRUE(filter.ok()) << GetParam().filter;
  EXPECT_EQ(filter->matches(entry), GetParam().matches) << GetParam().filter;
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, FilterEvalTest,
    ::testing::Values(
        FilterCase{"(kw=Memory)", true}, FilterCase{"(kw=CPU)", false},
        FilterCase{"(kw=Mem*)", true}, FilterCase{"(kw=*ory)", true},
        FilterCase{"(objectclass=*)", true}, FilterCase{"(missing=*)", false},
        FilterCase{"(Memory:total>=500000)", true},
        FilterCase{"(Memory:total>=600000)", false},
        FilterCase{"(Memory:free<=300000)", true},
        FilterCase{"(&(kw=Memory)(Memory:total>=1))", true},
        FilterCase{"(&(kw=Memory)(kw=CPU))", false},
        FilterCase{"(|(kw=CPU)(kw=Memory))", true},
        FilterCase{"(|(kw=CPU)(kw=Disk))", false},
        FilterCase{"(!(kw=CPU))", true}, FilterCase{"(!(kw=Memory))", false},
        FilterCase{"(tag=blue)", true}, FilterCase{"(tag=green)", false},
        FilterCase{"(&(|(tag=blue)(tag=green))(!(kw=CPU)))", true},
        FilterCase{"(kw>=Memory)", true},  // lexicographic on non-numeric
        FilterCase{"(kw<=Aardvark)", false}));

class FilterParseErrorTest : public ::testing::TestWithParam<const char*> {};

TEST_P(FilterParseErrorTest, Rejects) {
  EXPECT_FALSE(Filter::parse(GetParam()).ok()) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Corpus, FilterParseErrorTest,
                         ::testing::Values("", "kw=x", "(kw=x", "()", "(=x)",
                                           "(&(a=b)", "(!(a=b)", "(a>b)",
                                           "(a=b)(c=d)", "(a=b)x"));

TEST(FilterTest, ToStringRoundtrip) {
  for (const char* text :
       {"(kw=Memory)", "(&(a=1)(b=2))", "(|(a=1)(!(b=2)))", "(x>=10)", "(y<=z)"}) {
    auto filter = Filter::parse(text);
    ASSERT_TRUE(filter.ok()) << text;
    auto again = Filter::parse(filter->to_string());
    ASSERT_TRUE(again.ok()) << filter->to_string();
    EXPECT_EQ(filter.value(), again.value());
  }
}

// ---------- GRIS / GIIS ----------

class GrisTest : public ig::test::GridFixture {
 protected:
  GrisTest() : monitor(std::make_shared<info::SystemMonitor>(*clock, "test.sim")) {
    info::ProviderOptions options;
    options.ttl = ms(100);
    EXPECT_TRUE(monitor
                    ->add_source(std::make_shared<info::CommandSource>(
                                     "Memory", "/sbin/sysinfo.exe -mem", registry),
                                 options)
                    .ok());
    EXPECT_TRUE(monitor
                    ->add_source(std::make_shared<info::CommandSource>(
                                     "CPULoad", "/usr/local/bin/cpuload.exe", registry),
                                 options)
                    .ok());
  }
  std::shared_ptr<info::SystemMonitor> monitor;
};

TEST_F(GrisTest, PublishesProviderRecords) {
  Gris gris(monitor, "test.sim", *clock);
  auto entries = gris.search("o=Grid", Scope::kSubtree, Filter::match_all());
  ASSERT_TRUE(entries.ok());
  // 1 resource entry + 2 keyword entries.
  EXPECT_EQ(entries->size(), 3u);
  auto memory = gris.search("kw=Memory, host=test.sim, o=Grid", Scope::kBase,
                            Filter::match_all());
  ASSERT_TRUE(memory.ok());
  ASSERT_EQ(memory->size(), 1u);
  EXPECT_FALSE(memory->front().first("Memory:total").empty());
  EXPECT_FALSE(memory->front().first("Memory:total;quality").empty());
}

TEST_F(GrisTest, FilteredSearch) {
  Gris gris(monitor, "test.sim", *clock);
  auto filter = Filter::parse("(kw=CPULoad)");
  ASSERT_TRUE(filter.ok());
  auto entries = gris.search("o=Grid", Scope::kSubtree, filter.value());
  ASSERT_TRUE(entries.ok());
  ASSERT_EQ(entries->size(), 1u);
  EXPECT_EQ(entries->front().first("kw"), "CPULoad");
}

TEST_F(GrisTest, SearchUsesProviderCache) {
  Gris gris(monitor, "test.sim", *clock);
  ASSERT_TRUE(gris.search("o=Grid", Scope::kSubtree, Filter::match_all()).ok());
  ASSERT_TRUE(gris.search("o=Grid", Scope::kSubtree, Filter::match_all()).ok());
  // Within the TTL the providers execute once each.
  EXPECT_EQ(monitor->total_refreshes(), 2u);
  clock->advance(ms(200));
  ASSERT_TRUE(gris.search("o=Grid", Scope::kSubtree, Filter::match_all()).ok());
  EXPECT_EQ(monitor->total_refreshes(), 4u);
}

TEST_F(GrisTest, GiisAggregatesMultipleGris) {
  auto monitor_b = std::make_shared<info::SystemMonitor>(*clock, "b.sim");
  info::ProviderOptions options;
  options.ttl = ms(100);
  ASSERT_TRUE(monitor_b
                  ->add_source(std::make_shared<info::CommandSource>(
                                   "Memory", "/sbin/sysinfo.exe -mem", registry),
                               options)
                  .ok());
  Giis giis("test-vo", *clock, ms(500));
  giis.register_child(std::make_shared<Gris>(monitor, "a.sim", *clock));
  giis.register_child(std::make_shared<Gris>(monitor_b, "b.sim", *clock));
  EXPECT_EQ(giis.child_count(), 2u);

  auto all = giis.search("o=Grid", Scope::kSubtree, Filter::match_all());
  ASSERT_TRUE(all.ok());
  // VO root + (resource + 2 kw) on a + (resource + 1 kw) on b.
  EXPECT_EQ(all->size(), 6u);

  auto only_b = giis.search("host=b.sim, o=Grid", Scope::kSubtree, Filter::match_all());
  ASSERT_TRUE(only_b.ok());
  EXPECT_EQ(only_b->size(), 2u);
}

TEST_F(GrisTest, GiisCachesChildResults) {
  Giis giis("test-vo", *clock, seconds(10));
  giis.register_child(std::make_shared<Gris>(monitor, "a.sim", *clock));
  ASSERT_TRUE(giis.search("o=Grid", Scope::kSubtree, Filter::match_all()).ok());
  auto refreshes_after_first = monitor->total_refreshes();
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(giis.search("o=Grid", Scope::kSubtree, Filter::match_all()).ok());
  }
  EXPECT_EQ(monitor->total_refreshes(), refreshes_after_first);  // served from cache
  EXPECT_EQ(giis.cache_misses(), 1u);
  EXPECT_EQ(giis.cache_hits(), 5u);
  clock->advance(seconds(11));
  ASSERT_TRUE(giis.search("o=Grid", Scope::kSubtree, Filter::match_all()).ok());
  EXPECT_EQ(giis.cache_misses(), 2u);
}

// ---------- Wire service ----------

class MdsServiceTest : public GrisTest {
 protected:
  MdsServiceTest()
      : gris(std::make_shared<Gris>(monitor, "test.sim", *clock)),
        service(gris, host_cred, &trust, clock.get(), logger) {
    EXPECT_TRUE(service.start(*network, {"test.sim", 2136}).ok());
  }
  std::shared_ptr<Gris> gris;
  MdsService service;
};

TEST_F(MdsServiceTest, ClientSearchOverWire) {
  MdsClient client(*network, {"test.sim", 2136}, alice, trust, *clock);
  auto entries = client.search("o=Grid", Scope::kSubtree, Filter::match_all());
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries->size(), 3u);
  // connect(1) + handshake(2 round trips) + search(1).
  EXPECT_EQ(client.stats().connects, 1u);
  EXPECT_EQ(client.stats().requests, 3u);
  // Second search reuses the connection: only one more request.
  ASSERT_TRUE(client.search("o=Grid", Scope::kSubtree, Filter::match_all()).ok());
  EXPECT_EQ(client.stats().connects, 1u);
  EXPECT_EQ(client.stats().requests, 4u);
}

TEST_F(MdsServiceTest, UntrustedClientRejected) {
  security::CertificateAuthority rogue("/O=Evil/CN=CA", seconds(1000000), *clock, 3);
  auto mallory = rogue.issue("/O=Evil/CN=mallory", security::CertType::kUser,
                             seconds(100000));
  MdsClient client(*network, {"test.sim", 2136}, mallory, trust, *clock);
  auto entries = client.search("o=Grid", Scope::kSubtree, Filter::match_all());
  ASSERT_FALSE(entries.ok());
  EXPECT_EQ(entries.code(), ErrorCode::kDenied);
}

TEST_F(MdsServiceTest, MalformedFilterRejectedRemotely) {
  MdsClient client(*network, {"test.sim", 2136}, alice, trust, *clock);
  ASSERT_TRUE(client.search("o=Grid", Scope::kSubtree, Filter::match_all()).ok());
  // Craft a raw request with a bad filter through a fresh connection.
  auto conn = network->connect({"test.sim", 2136});
  ASSERT_TRUE(conn.ok());
  ASSERT_TRUE(security::authenticate(**conn, alice, trust, *clock).ok());
  net::Message req("MDS_SEARCH");
  req.with("filter", "(((");
  auto resp = (*conn)->request(req);
  ASSERT_TRUE(resp.ok());
  EXPECT_TRUE(resp->is_error());
}

TEST_F(MdsServiceTest, InfoQueriesAreLogged) {
  MdsClient client(*network, {"test.sim", 2136}, alice, trust, *clock);
  ASSERT_TRUE(client.search("o=Grid", Scope::kSubtree, Filter::match_all()).ok());
  bool saw_query = false;
  for (const auto& event : log_sink->events()) {
    if (event.type == logging::EventType::kInfoQuery &&
        event.subject == "/O=Grid/CN=alice") {
      saw_query = true;
    }
  }
  EXPECT_TRUE(saw_query);
}

TEST_F(MdsServiceTest, RemoteBackendFeedsGiis) {
  auto client = std::make_shared<MdsClient>(*network, net::Address{"test.sim", 2136},
                                            alice, trust, *clock);
  Giis giis("wide-vo", *clock, ms(100));
  giis.register_child(
      std::make_shared<RemoteBackend>(client, "host=test.sim, o=Grid"));
  auto entries = giis.search("o=Grid", Scope::kSubtree, Filter::match_all());
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries->size(), 4u);  // VO root + remote subtree of 3
}

TEST_F(MdsServiceTest, ServiceStopMakesClientFail) {
  MdsClient client(*network, {"test.sim", 2136}, alice, trust, *clock);
  ASSERT_TRUE(client.search("o=Grid", Scope::kSubtree, Filter::match_all()).ok());
  service.stop();
  auto entries = client.search("o=Grid", Scope::kSubtree, Filter::match_all());
  ASSERT_FALSE(entries.ok());
  EXPECT_EQ(entries.code(), ErrorCode::kUnavailable);
}

}  // namespace
}  // namespace ig::mds
