#include <gtest/gtest.h>

#include "info/system_monitor.hpp"
#include "mds/giis.hpp"
#include "mds/search_engine.hpp"
#include "mds/service.hpp"
#include "test_util.hpp"

namespace ig::mds {
namespace {

TEST(TokenizeTest, LowercasesAndSplits) {
  EXPECT_EQ(tokenize_query("  Memory 512  ANL "),
            (std::vector<std::string>{"memory", "512", "anl"}));
  EXPECT_TRUE(tokenize_query("   ").empty());
}

TEST(ScoreTest, WeightsDnNameValue) {
  DirectoryEntry entry;
  entry.dn = "kw=Memory, host=hot, o=Grid";
  entry.add("Memory:total", "524288");
  SearchOptions options;
  // "memory" matches the DN (3) and the attribute name (2).
  EXPECT_DOUBLE_EQ(score_entry(entry, {"memory"}, options), 5.0);
  // "524288" matches a value only.
  EXPECT_DOUBLE_EQ(score_entry(entry, {"524288"}, options), 1.0);
  // Unmatched token contributes nothing.
  EXPECT_DOUBLE_EQ(score_entry(entry, {"zzz"}, options), 0.0);
  // Multiple tokens sum.
  EXPECT_DOUBLE_EQ(score_entry(entry, {"memory", "524288"}, options), 6.0);
}

class SearchEngineTest : public ig::test::GridFixture {
 protected:
  SearchEngineTest() : giis("vo", *clock, seconds(60)) {
    for (const char* host : {"hot.anl.gov", "cold.anl.gov"}) {
      auto monitor = std::make_shared<info::SystemMonitor>(*clock, host);
      info::ProviderOptions options;
      options.ttl = seconds(60);
      EXPECT_TRUE(monitor
                      ->add_source(std::make_shared<info::CommandSource>(
                                       "Memory", "/sbin/sysinfo.exe -mem", registry),
                                   options)
                      .ok());
      EXPECT_TRUE(monitor
                      ->add_source(std::make_shared<info::CommandSource>(
                                       "CPULoad", "/usr/local/bin/cpuload.exe", registry),
                                   options)
                      .ok());
      giis.register_child(std::make_shared<Gris>(monitor, host, *clock));
    }
  }
  Giis giis;
};

TEST_F(SearchEngineTest, FindsKeywordAcrossTheVo) {
  auto hits = keyword_search(giis, "memory");
  ASSERT_TRUE(hits.ok());
  // Memory entries from both hosts rank first (kw=Memory in the DN plus
  // namespaced attribute names).
  ASSERT_GE(hits->size(), 2u);
  EXPECT_NE((*hits)[0].entry.dn.find("kw=Memory"), std::string::npos);
  EXPECT_NE((*hits)[1].entry.dn.find("kw=Memory"), std::string::npos);
  EXPECT_GE((*hits)[0].score, (*hits)[1].score);
}

TEST_F(SearchEngineTest, HostTokenNarrowsResults) {
  auto hits = keyword_search(giis, "memory hot.anl.gov");
  ASSERT_TRUE(hits.ok());
  ASSERT_FALSE(hits->empty());
  EXPECT_NE(hits->front().entry.dn.find("host=hot.anl.gov"), std::string::npos);
  EXPECT_NE(hits->front().entry.dn.find("kw=Memory"), std::string::npos);
}

TEST_F(SearchEngineTest, MaxHitsCaps) {
  SearchOptions options;
  options.max_hits = 2;
  auto hits = keyword_search(giis, "grid", options);  // matches every DN
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(hits->size(), 2u);
}

TEST_F(SearchEngineTest, NoMatchesYieldsEmpty) {
  auto hits = keyword_search(giis, "quantumfoam");
  ASSERT_TRUE(hits.ok());
  EXPECT_TRUE(hits->empty());
}

TEST_F(SearchEngineTest, EmptyQueryRejected) {
  auto hits = keyword_search(giis, "   ");
  ASSERT_FALSE(hits.ok());
  EXPECT_EQ(hits.code(), ErrorCode::kInvalidArgument);
}

TEST_F(SearchEngineTest, KeywordSearchOverTheWire) {
  auto shared_giis = std::make_shared<Giis>("wire-vo", *clock, seconds(60));
  auto monitor = std::make_shared<info::SystemMonitor>(*clock, "wire.sim");
  info::ProviderOptions options;
  options.ttl = seconds(60);
  ASSERT_TRUE(monitor
                  ->add_source(std::make_shared<info::CommandSource>(
                                   "Memory", "/sbin/sysinfo.exe -mem", registry),
                               options)
                  .ok());
  shared_giis->register_child(std::make_shared<Gris>(monitor, "wire.sim", *clock));
  MdsService service(shared_giis, host_cred, &trust, clock.get(), logger);
  ASSERT_TRUE(service.start(*network, {"vo.wire", 2136}).ok());
  MdsClient client(*network, {"vo.wire", 2136}, alice, trust, *clock);
  auto hits = client.keyword_search("memory", 5);
  ASSERT_TRUE(hits.ok());
  ASSERT_FALSE(hits->empty());
  EXPECT_GT(hits->front().score, 0.0);
  EXPECT_NE(hits->front().entry.dn.find("kw=Memory"), std::string::npos);
  EXPECT_FALSE(hits->front().entry.has("ig-score"));  // stripped client-side
  auto empty = client.keyword_search("  ");
  ASSERT_FALSE(empty.ok());
  EXPECT_EQ(empty.code(), ErrorCode::kInvalidArgument);
}

}  // namespace
}  // namespace ig::mds
