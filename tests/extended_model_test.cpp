// Tests for the wider host/information model: disk and network state,
// their commands and proc files, and the extended site configuration.
#include <gtest/gtest.h>

#include "core/config.hpp"
#include "core/infogram_client.hpp"
#include "exec/fork_backend.hpp"
#include "test_util.hpp"

namespace ig {
namespace {

TEST(ExtendedHostTest, DiskBoundedAndNetworkMonotone) {
  VirtualClock clock;
  exec::SimSystem sys(clock, 17);
  std::int64_t last_rx = 0;
  std::int64_t last_tx = 0;
  for (int i = 0; i < 100; ++i) {
    clock.advance(seconds(10));
    auto snap = sys.snapshot();
    EXPECT_GE(snap.disk_free_kb, snap.disk_total_kb / 20);
    EXPECT_LE(snap.disk_free_kb, snap.disk_total_kb * 95 / 100);
    EXPECT_GE(snap.net_rx_bytes, last_rx);  // counters never go backwards
    EXPECT_GE(snap.net_tx_bytes, last_tx);
    last_rx = snap.net_rx_bytes;
    last_tx = snap.net_tx_bytes;
  }
  EXPECT_GT(last_rx, 0);
  EXPECT_GT(last_tx, 0);
}

TEST(ExtendedHostTest, NewProcFiles) {
  VirtualClock clock;
  exec::SimSystem sys(clock, 18);
  auto disk = sys.read_proc("/proc/diskstats");
  ASSERT_TRUE(disk.ok());
  EXPECT_NE(disk->find("DiskFree:"), std::string::npos);
  auto net = sys.read_proc("/proc/net/dev");
  ASSERT_TRUE(net.ok());
  EXPECT_NE(net->find("rx_bytes:"), std::string::npos);
}

TEST(ExtendedHostTest, DfAndNetstatCommands) {
  VirtualClock clock;
  auto sys = std::make_shared<exec::SimSystem>(clock, 19);
  auto registry = exec::CommandRegistry::standard(clock, sys, 20);
  auto df = registry->run("/bin/df");
  ASSERT_TRUE(df.ok());
  EXPECT_EQ(df->exit_code, 0);
  EXPECT_NE(df->output.find("used_pct:"), std::string::npos);
  auto netstat = registry->run("/sbin/netstat.exe");
  ASSERT_TRUE(netstat.ok());
  EXPECT_NE(netstat->output.find("tx_bytes:"), std::string::npos);
}

class ExtendedConfigTest : public ig::test::GridFixture {};

TEST_F(ExtendedConfigTest, ExtendedConfigurationServesNineKeywords) {
  auto config = core::Configuration::extended();
  EXPECT_EQ(config.keywords().size(), 9u);
  // Table 1 is a strict subset. (Hoist the temporary: in C++20 a
  // range-for over table1().keywords() would dangle.)
  auto table1 = core::Configuration::table1();
  for (const auto& kw : table1.keywords()) {
    ASSERT_NE(config.find(kw.keyword), nullptr) << kw.keyword;
    EXPECT_EQ(config.find(kw.keyword)->ttl, kw.ttl);
  }

  auto monitor = std::make_shared<info::SystemMonitor>(*clock, "ext.sim");
  ASSERT_TRUE(config.apply(*monitor, registry).ok());
  auto backend = std::make_shared<exec::ForkBackend>(registry, *clock);
  core::InfoGramConfig service_config;
  service_config.host = "ext.sim";
  core::InfoGramService service(monitor, backend, host_cred, &trust, &gridmap, &policy,
                                clock.get(), logger, service_config);
  ASSERT_TRUE(service.start(*network).ok());
  core::InfoGramClient client(*network, service.address(), alice, trust, *clock);
  auto records = client.query_info({"all"});
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(records->size(), 10u);  // nine configured keywords + health
  // The new keywords yield live data.
  auto disk = client.query_info({"Disk"});
  ASSERT_TRUE(disk.ok());
  EXPECT_NE(disk->front().find("Disk:free"), nullptr);
  auto net = client.query_info({"Network"});
  ASSERT_TRUE(net.ok());
  EXPECT_NE(net->front().find("Network:rx_bytes"), nullptr);
}

TEST_F(ExtendedConfigTest, ProcBackedProvidersWorkForNewFiles) {
  auto monitor = std::make_shared<info::SystemMonitor>(*clock, "proc.sim");
  ASSERT_TRUE(monitor
                  ->add_source(std::make_shared<info::ProcFileSource>(
                                   "DiskStats", "/proc/diskstats", system),
                               info::ProviderOptions{})
                  .ok());
  auto record = monitor->get("DiskStats", rsl::ResponseMode::kImmediate);
  ASSERT_TRUE(record.ok());
  EXPECT_NE(record->find("DiskStats:DiskTotal"), nullptr);
}

}  // namespace
}  // namespace ig
