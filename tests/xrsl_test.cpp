#include <gtest/gtest.h>

#include "rsl/xrsl.hpp"

namespace ig::rsl {
namespace {

// ---------- Job attributes ----------

TEST(XrslTest, ClassicJobRequest) {
  auto req = XrslRequest::parse(
      "&(executable=/bin/app)(arguments=a b)(directory=/home/alice)"
      "(environment=(K1 v1)(K2 v2))(count=3)(queue=fast)(stdout=out.txt)(maxtime=5)");
  ASSERT_TRUE(req.ok());
  EXPECT_TRUE(req->is_job());
  EXPECT_FALSE(req->is_info());
  const JobSpec& job = *req->job;
  EXPECT_EQ(job.executable, "/bin/app");
  EXPECT_EQ(job.arguments, (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(job.directory, "/home/alice");
  EXPECT_EQ(job.environment.at("K1"), "v1");
  EXPECT_EQ(job.environment.at("K2"), "v2");
  EXPECT_EQ(job.count, 3);
  EXPECT_EQ(job.queue, "fast");
  EXPECT_EQ(job.std_out, "out.txt");
  EXPECT_EQ(job.max_time, seconds(300));
}

TEST(XrslTest, JarJobType) {
  auto req = XrslRequest::parse("(executable=analysis.jar)(jobtype=jar)");
  ASSERT_TRUE(req.ok());
  EXPECT_EQ(req->job->job_type, "jar");
}

TEST(XrslTest, JobAttributesWithoutExecutableRejected) {
  auto req = XrslRequest::parse("(count=2)");
  ASSERT_FALSE(req.ok());
  EXPECT_EQ(req.code(), ErrorCode::kInvalidArgument);
}

// ---------- Info tags (the paper's extensions) ----------

TEST(XrslTest, InfoQueryConcatenation) {
  // Paper: "(info=memory)(info=cpu)"
  auto req = XrslRequest::parse("(info=Memory)(info=CPU)");
  ASSERT_TRUE(req.ok());
  EXPECT_FALSE(req->is_job());
  EXPECT_TRUE(req->is_info());
  EXPECT_EQ(req->info_keys, (std::vector<std::string>{"Memory", "CPU"}));
}

TEST(XrslTest, InfoAllAndSchema) {
  auto all = XrslRequest::parse("(info=all)");
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->info_keys, (std::vector<std::string>{"all"}));

  auto schema = XrslRequest::parse("(info=schema)");
  ASSERT_TRUE(schema.ok());
  EXPECT_TRUE(schema->wants_schema);
  EXPECT_TRUE(schema->info_keys.empty());
  EXPECT_TRUE(schema->is_info());
}

TEST(XrslTest, ResponseModes) {
  for (auto [text, mode] :
       std::vector<std::pair<const char*, ResponseMode>>{
           {"(info=x)(response=immediate)", ResponseMode::kImmediate},
           {"(info=x)(response=cached)", ResponseMode::kCached},
           {"(info=x)(response=last)", ResponseMode::kLast},
           {"(info=x)", ResponseMode::kCached}}) {
    auto req = XrslRequest::parse(text);
    ASSERT_TRUE(req.ok()) << text;
    EXPECT_EQ(req->response, mode) << text;
  }
  EXPECT_FALSE(XrslRequest::parse("(info=x)(response=sometimes)").ok());
}

TEST(XrslTest, QualityThreshold) {
  auto req = XrslRequest::parse("(info=CPULoad)(quality=75.5)");
  ASSERT_TRUE(req.ok());
  EXPECT_DOUBLE_EQ(*req->quality_threshold, 75.5);
  EXPECT_FALSE(XrslRequest::parse("(info=x)(quality=120)").ok());
  EXPECT_FALSE(XrslRequest::parse("(info=x)(quality=-1)").ok());
  EXPECT_FALSE(XrslRequest::parse("(info=x)(quality=abc)").ok());
}

TEST(XrslTest, PerformanceTag) {
  auto req = XrslRequest::parse("(performance=Memory)(performance=CPU)");
  ASSERT_TRUE(req.ok());
  EXPECT_TRUE(req->is_info());
  EXPECT_EQ(req->performance_keys, (std::vector<std::string>{"Memory", "CPU"}));
}

TEST(XrslTest, FormatTag) {
  auto ldif = XrslRequest::parse("(info=x)(format=LDIF)");
  ASSERT_TRUE(ldif.ok());
  EXPECT_EQ(ldif->format, OutputFormat::kLdif);
  auto xml = XrslRequest::parse("(info=x)(format=xml)");
  ASSERT_TRUE(xml.ok());
  EXPECT_EQ(xml->format, OutputFormat::kXml);
  EXPECT_FALSE(XrslRequest::parse("(info=x)(format=yaml)").ok());
}

TEST(XrslTest, FilterTag) {
  auto req = XrslRequest::parse("(info=Memory)(filter=Memory:total)(filter=Memory:free)");
  ASSERT_TRUE(req.ok());
  EXPECT_EQ(req->filters, (std::vector<std::string>{"Memory:total", "Memory:free"}));
}

TEST(XrslTest, TimeoutAndAction) {
  // Paper: "(executable=command)(timeout=1000)(action=cancel)"
  auto cancel = XrslRequest::parse("(executable=command)(timeout=1000)(action=cancel)");
  ASSERT_TRUE(cancel.ok());
  EXPECT_EQ(cancel->timeout, ms(1000));
  EXPECT_EQ(cancel->action, TimeoutAction::kCancel);
  auto exception = XrslRequest::parse("(executable=c)(timeout=50)(action=exception)");
  ASSERT_TRUE(exception.ok());
  EXPECT_EQ(exception->action, TimeoutAction::kException);
  EXPECT_FALSE(XrslRequest::parse("(executable=c)(timeout=9)(action=explode)").ok());
}

TEST(XrslTest, CombinedJobAndInfoRequest) {
  // The paper's unification: one request doing both.
  auto req = XrslRequest::parse("(executable=/bin/app)(info=CPULoad)(response=cached)");
  ASSERT_TRUE(req.ok());
  EXPECT_TRUE(req->is_job());
  EXPECT_TRUE(req->is_info());
}

TEST(XrslTest, EmptyRequestRejected) {
  auto req = XrslRequest::parse("(format=xml)");
  ASSERT_FALSE(req.ok());  // neither a job nor an info query
}

TEST(XrslTest, UnknownAttributeRejected) {
  EXPECT_FALSE(XrslRequest::parse("(frobnicate=yes)").ok());
}

TEST(XrslTest, NonEqualityOperatorRejected) {
  EXPECT_FALSE(XrslRequest::parse("(count>=2)(executable=x)").ok());
}

TEST(XrslTest, MultiRequestNodeRejected) {
  auto node = parse("+(&(executable=a))(&(executable=b))");
  ASSERT_TRUE(node.ok());
  EXPECT_FALSE(XrslRequest::from_node(node.value()).ok());
}

TEST(XrslTest, VariablesResolvedThroughParse) {
  auto req = XrslRequest::parse(
      "(rsl_substitution=(BIN /usr/bin))(executable=$(BIN)/app)");
  ASSERT_TRUE(req.ok());
  EXPECT_EQ(req->job->executable, "/usr/bin/app");
}

// ---------- Builder and to_rsl roundtrip ----------

TEST(XrslBuilderTest, BuildsJobRequest) {
  XrslBuilder builder;
  builder.executable("/bin/app")
      .argument("x")
      .argument("y")
      .environment("HOME", "/home/a")
      .directory("/tmp")
      .count(2)
      .queue("fast")
      .max_time(seconds(120));
  const XrslRequest& req = builder.request();
  EXPECT_EQ(req.job->executable, "/bin/app");
  EXPECT_EQ(req.job->arguments.size(), 2u);
  EXPECT_EQ(req.job->count, 2);
}

TEST(XrslBuilderTest, RoundtripThroughRsl) {
  XrslBuilder builder;
  builder.executable("/bin/app")
      .argument("alpha beta")  // needs quoting
      .environment("K", "v with spaces")
      .stdout_file("out.txt")
      .job_type("jar")
      .count(4)
      .info("Memory")
      .info("CPU")
      .response(ResponseMode::kImmediate)
      .quality(80)
      .performance("Memory")
      .format(OutputFormat::kXml)
      .filter("Memory:*")
      .timeout(ms(500), TimeoutAction::kException);
  auto parsed = XrslRequest::parse(builder.to_rsl());
  ASSERT_TRUE(parsed.ok()) << builder.to_rsl();
  EXPECT_EQ(parsed.value(), builder.request()) << builder.to_rsl();
}

TEST(XrslBuilderTest, InfoOnlyRoundtrip) {
  XrslBuilder builder;
  builder.schema();
  auto parsed = XrslRequest::parse(builder.to_rsl());
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->wants_schema);
}

TEST(XrslTest, ToStringHelpers) {
  EXPECT_EQ(to_string(ResponseMode::kImmediate), "immediate");
  EXPECT_EQ(to_string(OutputFormat::kXml), "xml");
  EXPECT_EQ(to_string(TimeoutAction::kException), "exception");
}

}  // namespace
}  // namespace ig::rsl
