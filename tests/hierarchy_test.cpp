// Deeper scenarios: hierarchical GIIS trees, end-to-end accounting from
// the service log, restart edge cases, and degradation quality surfaced
// through the full wire stack.
#include <gtest/gtest.h>

#include "core/config.hpp"
#include "core/infogram_client.hpp"
#include "exec/fork_backend.hpp"
#include "mds/service.hpp"
#include "test_util.hpp"

namespace ig {
namespace {

constexpr Duration kWait = seconds(30);

// ---------- Hierarchical GIIS (GIIS of GIIS) ----------

class HierarchyTest : public ig::test::GridFixture {
 protected:
  std::shared_ptr<info::SystemMonitor> make_monitor(const std::string& host) {
    auto monitor = std::make_shared<info::SystemMonitor>(*clock, host);
    info::ProviderOptions options;
    options.ttl = seconds(100);
    EXPECT_TRUE(monitor
                    ->add_source(std::make_shared<info::CommandSource>(
                                     "Memory", "/sbin/sysinfo.exe -mem", registry),
                                 options)
                    .ok());
    return monitor;
  }
};

TEST_F(HierarchyTest, GiisAggregatesGiis) {
  // Two site-level aggregates, each over two resources, under one
  // top-level VO aggregate — the paper's "create information aggregates
  // through reuse of information providers to improve scalability".
  auto top = std::make_shared<mds::Giis>("top", *clock, seconds(5));
  for (int site = 0; site < 2; ++site) {
    auto site_giis =
        std::make_shared<mds::Giis>("site" + std::to_string(site), *clock, seconds(5));
    for (int node = 0; node < 2; ++node) {
      std::string host = "n" + std::to_string(node) + ".site" + std::to_string(site);
      site_giis->register_child(
          std::make_shared<mds::Gris>(make_monitor(host), host, *clock));
    }
    top->register_child(site_giis);
  }
  auto all = top->search("o=Grid", mds::Scope::kSubtree, mds::Filter::match_all());
  ASSERT_TRUE(all.ok());
  // top VO root + 2 site VO roots + 4 x (resource + Memory).
  EXPECT_EQ(all->size(), 1u + 2u + 8u);
  auto memories =
      top->search("o=Grid", mds::Scope::kSubtree, *mds::Filter::parse("(kw=Memory)"));
  ASSERT_TRUE(memories.ok());
  EXPECT_EQ(memories->size(), 4u);
  // Scoped to one site's node.
  auto one = top->search("host=n1.site0, o=Grid", mds::Scope::kSubtree,
                         mds::Filter::match_all());
  ASSERT_TRUE(one.ok());
  EXPECT_EQ(one->size(), 2u);
}

// ---------- Accounting through the full service ----------

class AccountingE2ETest : public ig::test::GridFixture {};

TEST_F(AccountingE2ETest, LogYieldsPerUserSummary) {
  auto backend = std::make_shared<exec::ForkBackend>(registry, *clock);
  auto monitor = std::make_shared<info::SystemMonitor>(*clock, "acct.sim");
  ASSERT_TRUE(core::Configuration::table1().apply(*monitor, registry).ok());
  core::InfoGramConfig config;
  config.host = "acct.sim";
  config.max_restarts = 0;  // restarts count as submissions in accounting
  core::InfoGramService service(monitor, backend, host_cred, &trust, &gridmap, &policy,
                                clock.get(), logger, config);
  ASSERT_TRUE(service.start(*network).ok());

  auto bob = ca->issue("/O=Grid/CN=bob", security::CertType::kUser, seconds(86400));
  gridmap.add("/O=Grid/CN=bob", "bob");

  core::InfoGramClient alice_client(*network, service.address(), alice, trust, *clock);
  core::InfoGramClient bob_client(*network, service.address(), bob, trust, *clock);

  for (int i = 0; i < 3; ++i) {
    auto resp = alice_client.request("&(executable=/bin/echo)(arguments=a)");
    ASSERT_TRUE(resp.ok());
    ASSERT_TRUE(alice_client.wait(*resp->job_contact, kWait).ok());
  }
  ASSERT_TRUE(alice_client.query_info({"Memory"}).ok());
  auto failed = bob_client.request("&(executable=/bin/false)");
  ASSERT_TRUE(failed.ok());
  ASSERT_TRUE(bob_client.wait(*failed->job_contact, kWait).ok());
  ASSERT_TRUE(bob_client.query_info({"CPU"}).ok());
  ASSERT_TRUE(bob_client.query_info({"CPU"}).ok());

  auto summary = logging::accounting_summary(log_sink->events());
  const auto& alice_entry = summary.at("/O=Grid/CN=alice");
  EXPECT_EQ(alice_entry.jobs_submitted, 3u);
  EXPECT_EQ(alice_entry.jobs_completed, 3u);
  EXPECT_EQ(alice_entry.info_queries, 1u);
  const auto& bob_entry = summary.at("/O=Grid/CN=bob");
  EXPECT_EQ(bob_entry.jobs_submitted, 1u);
  EXPECT_EQ(bob_entry.jobs_failed, 1u);
  EXPECT_EQ(bob_entry.info_queries, 2u);
}

// ---------- Degradation quality over the wire ----------

class WireQualityTest : public ig::test::GridFixture {};

TEST_F(WireQualityTest, DegradedQualityVisibleToRemoteClient) {
  auto backend = std::make_shared<exec::ForkBackend>(registry, *clock);
  auto monitor = std::make_shared<info::SystemMonitor>(*clock, "q.sim");
  auto config = core::Configuration::parse(
      "1000 Load /usr/local/bin/cpuload.exe degradation=linear\n");
  ASSERT_TRUE(config.ok());
  ASSERT_TRUE(config->apply(*monitor, registry).ok());
  core::InfoGramConfig service_config;
  service_config.host = "q.sim";
  core::InfoGramService service(monitor, backend, host_cred, &trust, &gridmap, &policy,
                                clock.get(), logger, service_config);
  ASSERT_TRUE(service.start(*network).ok());
  core::InfoGramClient client(*network, service.address(), alice, trust, *clock);

  ASSERT_TRUE(client.query_info({"Load"}).ok());
  clock->advance(ms(1000));  // half way to the 2x-ttl zero point
  auto stale = client.query_info({"Load"}, rsl::ResponseMode::kLast);
  ASSERT_TRUE(stale.ok());
  ASSERT_EQ(stale->size(), 1u);
  // Linear degradation over the wire: quality ~50 after one TTL.
  EXPECT_NEAR(stale->front().min_quality(), 50.0, 1.0);
  // The same staleness in XML.
  auto xml = client.query_info({"Load"}, rsl::ResponseMode::kLast,
                               rsl::OutputFormat::kXml);
  ASSERT_TRUE(xml.ok());
  EXPECT_NEAR(xml->front().min_quality(), 50.0, 1.0);
}

// ---------- Restart edge cases ----------

class RestartEdgeTest : public ig::test::GridFixture {};

TEST_F(RestartEdgeTest, CancelledJobIsNotRestarted) {
  // Restarts apply to *failures*; a user cancellation must stick even
  // with a generous restart budget.
  std::atomic<int> runs{0};
  registry->register_command(
      "/bin/counted",
      [&runs](const std::vector<std::string>&) {
        ++runs;
        return exec::CommandResult{0, ""};
      },
      ms(200));  // long enough (in slices) to cancel
  auto backend = std::make_shared<exec::ForkBackend>(registry, *clock);
  auto monitor = std::make_shared<info::SystemMonitor>(*clock, "r.sim");
  core::InfoGramConfig config;
  config.host = "r.sim";
  config.max_restarts = 5;
  core::InfoGramService service(monitor, backend, host_cred, &trust, &gridmap, &policy,
                                clock.get(), logger, config);
  ASSERT_TRUE(service.start(*network).ok());
  core::InfoGramClient client(*network, service.address(), alice, trust, *clock);
  auto resp = client.request("&(executable=/bin/counted)(count=1000)");
  ASSERT_TRUE(resp.ok());
  (void)client.cancel(*resp->job_contact);
  auto status = client.wait(*resp->job_contact, kWait);
  ASSERT_TRUE(status.ok());
  // Cancelled (or, if the cancel raced completion, done) — never >1 run
  // of the whole count-1000 batch, i.e. no restart loop.
  EXPECT_LE(status->restarts, 0);
}

TEST_F(RestartEdgeTest, InfoGramRejectsBooleanOnlySpecs) {
  auto backend = std::make_shared<exec::ForkBackend>(registry, *clock);
  auto monitor = std::make_shared<info::SystemMonitor>(*clock, "b.sim");
  core::InfoGramConfig config;
  config.host = "b.sim";
  core::InfoGramService service(monitor, backend, host_cred, &trust, &gridmap, &policy,
                                clock.get(), logger, config);
  ASSERT_TRUE(service.start(*network).ok());
  core::InfoGramClient client(*network, service.address(), alice, trust, *clock);
  // Disjunctions are valid RSL but not a valid service request.
  auto resp = client.request("|(executable=/bin/a)(executable=/bin/b)");
  ASSERT_FALSE(resp.ok());
  EXPECT_EQ(resp.code(), ErrorCode::kInvalidArgument);
}

}  // namespace
}  // namespace ig
