#include <gtest/gtest.h>

#include <future>

#include "exec/fork_backend.hpp"
#include "exec/sandbox.hpp"
#include "gram/service.hpp"
#include "test_util.hpp"

namespace ig::gram {
namespace {

constexpr Duration kWait = seconds(30);

class GramTest : public ig::test::GridFixture {
 protected:
  GramTest() : backend(std::make_shared<exec::ForkBackend>(registry, *clock)) {}

  void start_service(GramConfig config = {}) {
    config.host = "test.sim";
    service = std::make_unique<GramService>(backend, host_cred, &trust, &gridmap, &policy,
                                            clock.get(), logger, config);
    ASSERT_TRUE(service->start(*network).ok());
  }

  GramClient make_client() {
    return GramClient(*network, service->address(), alice, trust, *clock);
  }

  std::shared_ptr<exec::ForkBackend> backend;
  std::unique_ptr<GramService> service;
};

TEST_F(GramTest, SubmitStatusOutputLifecycle) {
  start_service();
  auto client = make_client();
  auto contact = client.submit("&(executable=/bin/echo)(arguments=grid hello)");
  ASSERT_TRUE(contact.ok());
  EXPECT_NE(contact->find("https://test.sim:2119/jobmanager/"), std::string::npos);

  auto status = client.wait(*contact, kWait);
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status->state, exec::JobState::kDone);
  EXPECT_EQ(status->exit_code, 0);

  auto output = client.output(*contact);
  ASSERT_TRUE(output.ok());
  EXPECT_EQ(output.value(), "grid hello\n");
}

TEST_F(GramTest, StatusOfUnknownContact) {
  start_service();
  auto client = make_client();
  auto status = client.status("https://test.sim:2119/jobmanager/424242");
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), ErrorCode::kNotFound);
}

TEST_F(GramTest, MalformedRslRejected) {
  start_service();
  auto client = make_client();
  EXPECT_FALSE(client.submit("((broken").ok());
  EXPECT_FALSE(client.submit("(info=Memory)").ok());  // GRAM is job-only
}

TEST_F(GramTest, GridmapDenialForUnknownUser) {
  start_service();
  auto bob = ca->issue("/O=Grid/CN=bob", security::CertType::kUser, seconds(86400));
  GramClient client(*network, service->address(), bob, trust, *clock);
  auto contact = client.submit("&(executable=/bin/echo)");
  ASSERT_FALSE(contact.ok());
  EXPECT_EQ(contact.code(), ErrorCode::kDenied);
}

TEST_F(GramTest, AuthorizationPolicyEnforced) {
  policy = security::AuthorizationPolicy(security::Decision::kDeny);
  security::Rule rule;
  rule.subject_pattern = "/O=Grid/CN=alice";
  rule.window = security::TimeWindow{seconds(2000), seconds(3000)};
  policy.add_rule(rule);
  start_service();
  auto client = make_client();
  // Fixture clock starts at t=1000s: outside the window.
  auto denied = client.submit("&(executable=/bin/echo)");
  ASSERT_FALSE(denied.ok());
  EXPECT_EQ(denied.code(), ErrorCode::kDenied);
  clock->advance(seconds(1500));  // now t=2500: inside
  EXPECT_TRUE(client.submit("&(executable=/bin/echo)").ok());
}

TEST_F(GramTest, CancelRunningJob) {
  start_service();
  auto client = make_client();
  // A job long enough (in cost slices) to be cancellable.
  auto contact = client.submit("&(executable=/bin/sleep)(arguments=100000)(count=1000)");
  ASSERT_TRUE(contact.ok());
  ASSERT_TRUE(client.cancel(*contact).ok() || true);  // may race completion
  auto status = client.wait(*contact, kWait);
  ASSERT_TRUE(status.ok());
  EXPECT_TRUE(exec::is_terminal(status->state));
}

TEST_F(GramTest, RestartOnFailure) {
  GramConfig config;
  config.max_restarts = 3;
  start_service(config);
  // Fails the first runs, then recovers: with 100% failure rate it fails
  // through all restarts; with 0% it succeeds at once. Use the counter to
  // flip failure off after two executions.
  int runs = 0;
  registry->register_command(
      "/bin/flaky",
      [&runs](const std::vector<std::string>&) {
        ++runs;
        return exec::CommandResult{runs <= 2 ? 1 : 0, "attempt\n"};
      },
      ms(1));
  auto client = make_client();
  auto contact = client.submit("&(executable=/bin/flaky)");
  ASSERT_TRUE(contact.ok());
  auto status = client.wait(*contact, kWait);
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status->state, exec::JobState::kDone);
  EXPECT_EQ(status->restarts, 2);
  EXPECT_EQ(runs, 3);
}

TEST_F(GramTest, RestartsExhaustedMarksFailed) {
  GramConfig config;
  config.max_restarts = 2;
  start_service(config);
  auto client = make_client();
  auto contact = client.submit("&(executable=/bin/false)");
  ASSERT_TRUE(contact.ok());
  auto status = client.wait(*contact, kWait);
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status->state, exec::JobState::kFailed);
  EXPECT_EQ(status->restarts, 2);
}

TEST_F(GramTest, JobLifecycleIsLogged) {
  start_service();
  auto client = make_client();
  auto contact = client.submit("&(executable=/bin/echo)(arguments=logged)");
  ASSERT_TRUE(contact.ok());
  ASSERT_TRUE(client.wait(*contact, kWait).ok());
  bool submitted = false, finished = false;
  for (const auto& event : log_sink->events()) {
    if (event.type == logging::EventType::kJobSubmitted &&
        event.subject == "/O=Grid/CN=alice") {
      EXPECT_NE(event.detail.find("(executable=/bin/echo)"), std::string::npos);
      submitted = true;
    }
    if (event.type == logging::EventType::kJobFinished) finished = true;
  }
  EXPECT_TRUE(submitted);
  EXPECT_TRUE(finished);
}

TEST_F(GramTest, JarJobsRequireSandboxBackend) {
  start_service();  // no jar backend configured
  auto client = make_client();
  EXPECT_FALSE(client.submit("&(executable=t.jar)(jobtype=jar)").ok());
}

TEST_F(GramTest, JarJobRunsInSandbox) {
  auto sandbox = std::make_shared<exec::SandboxBackend>(*clock, exec::SandboxConfig{},
                                                        system);
  sandbox->register_task("t.jar", [](exec::SandboxContext&, const auto&) {
    return Result<std::string>(std::string("jar output"));
  });
  GramConfig config;
  config.jar_backend = sandbox;
  start_service(config);
  auto client = make_client();
  auto contact = client.submit("&(executable=t.jar)(jobtype=jar)");
  ASSERT_TRUE(contact.ok());
  auto status = client.wait(*contact, kWait);
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status->state, exec::JobState::kDone);
  EXPECT_EQ(client.output(*contact).value(), "jar output");
}

TEST_F(GramTest, CallbackNotificationsDelivered) {
  start_service();
  CallbackListener listener(*network, {"client.sim", 9000});
  auto client = make_client();
  auto contact =
      client.submit("&(executable=/bin/echo)(arguments=cb)", "client.sim:9000");
  ASSERT_TRUE(contact.ok());
  ASSERT_TRUE(client.wait(*contact, kWait).ok());
  ASSERT_TRUE(listener.wait_for(1, kWait));
  bool saw_terminal = false;
  for (const auto& note : listener.notifications()) {
    EXPECT_EQ(note.contact, *contact);
    if (exec::is_terminal(note.state)) saw_terminal = true;
  }
  EXPECT_TRUE(saw_terminal);
}

// Timeout semantics need real elapsed time: on a VirtualClock a command's
// cost is charged instantly in wall time, so a wall-time timeout could
// never fire mid-command. These tests build the stack on the wall clock
// with short command costs.
class GramTimeoutTest : public ::testing::Test {
 protected:
  GramTimeoutTest()
      : ca("/O=Grid/CN=Wall CA", seconds(3600), wall, 7),
        host_cred(ca.issue("/O=Grid/CN=host/w", security::CertType::kHost, seconds(3600))),
        alice(ca.issue("/O=Grid/CN=alice", security::CertType::kUser, seconds(3600))),
        policy(security::Decision::kAllow),
        system(std::make_shared<exec::SimSystem>(wall, 1, "w.sim")),
        registry(exec::CommandRegistry::standard(wall, system, 2)),
        backend(std::make_shared<exec::ForkBackend>(registry, wall)) {
    trust.add_root(ca.root_certificate());
    gridmap.add("/O=Grid/CN=alice", "alice");
    // A command whose cost is real wall time, interruptible per-ms slice.
    registry->register_command(
        "/bin/slow",
        [](const std::vector<std::string>&) {
          return exec::CommandResult{0, "finished anyway\n"};
        },
        ms(400));
    GramConfig config;
    config.host = "w.sim";
    service = std::make_unique<GramService>(backend, host_cred, &trust, &gridmap, &policy,
                                            &wall, nullptr, config);
    EXPECT_TRUE(service->start(network).ok());
  }

  WallClock wall;
  net::Network network;
  security::CertificateAuthority ca;
  security::TrustStore trust;
  security::GridMap gridmap;
  security::Credential host_cred;
  security::Credential alice;
  security::AuthorizationPolicy policy;
  std::shared_ptr<exec::SimSystem> system;
  std::shared_ptr<exec::CommandRegistry> registry;
  std::shared_ptr<exec::ForkBackend> backend;
  std::unique_ptr<GramService> service;
};

TEST_F(GramTimeoutTest, TimeoutActionCancel) {
  GramClient client(network, service->address(), alice, trust, wall);
  auto contact = client.submit("&(executable=/bin/slow)(timeout=50)(action=cancel)");
  ASSERT_TRUE(contact.ok());
  auto status = client.wait(*contact, kWait);
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status->state, exec::JobState::kCancelled);
}

TEST_F(GramTimeoutTest, TimeoutActionExceptionLetsJobFinish) {
  GramClient client(network, service->address(), alice, trust, wall);
  auto contact = client.submit("&(executable=/bin/slow)(timeout=50)(action=exception)");
  ASSERT_TRUE(contact.ok());
  auto status = client.wait(*contact, kWait);
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status->state, exec::JobState::kDone);
  EXPECT_TRUE(status->timeout_fired);
  EXPECT_EQ(client.output(*contact).value(), "finished anyway\n");
}

TEST_F(GramTimeoutTest, NoTimeoutRunsToCompletion) {
  GramClient client(network, service->address(), alice, trust, wall);
  auto contact = client.submit("&(executable=/bin/slow)");
  ASSERT_TRUE(contact.ok());
  auto status = client.wait(*contact, kWait);
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status->state, exec::JobState::kDone);
  EXPECT_FALSE(status->timeout_fired);
}

// On a VirtualClock the backend's wall-time wait returns before a wall
// timeout can fire, so the deadline is enforced post-hoc against the
// job's virtual started/finished interval. /bin/sleep N costs N virtual
// ms.
TEST_F(GramTest, VirtualTimeoutActionCancel) {
  start_service();
  auto client = make_client();
  auto contact = client.submit("&(executable=/bin/sleep)(arguments=400)(timeout=100)");
  ASSERT_TRUE(contact.ok());
  auto status = client.wait(*contact, kWait);
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status->state, exec::JobState::kCancelled);
}

TEST_F(GramTest, VirtualTimeoutActionExceptionLetsJobFinish) {
  start_service();
  auto client = make_client();
  auto contact = client.submit(
      "&(executable=/bin/sleep)(arguments=400)(timeout=100)(action=exception)");
  ASSERT_TRUE(contact.ok());
  auto status = client.wait(*contact, kWait);
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status->state, exec::JobState::kDone);  // the job ran to completion
  EXPECT_TRUE(status->timeout_fired);               // ...but the deadline was reported
}

TEST_F(GramTest, VirtualTimeoutNotFiredWhenJobIsFast) {
  start_service();
  auto client = make_client();
  auto contact = client.submit("&(executable=/bin/sleep)(arguments=50)(timeout=100)");
  ASSERT_TRUE(contact.ok());
  auto status = client.wait(*contact, kWait);
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status->state, exec::JobState::kDone);
  EXPECT_FALSE(status->timeout_fired);
}

TEST_F(GramTest, MultipleClientsShareService) {
  start_service();
  auto client_a = make_client();
  auto client_b = make_client();
  auto contact = client_a.submit("&(executable=/bin/echo)(arguments=shared)");
  ASSERT_TRUE(contact.ok());
  // A second authorized client can query the same job handle (the paper:
  // contacts are usable "from other remote clients").
  auto status = client_b.wait(*contact, kWait);
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status->state, exec::JobState::kDone);
}

TEST_F(GramTest, TrafficStatsAccumulate) {
  start_service();
  auto client = make_client();
  ASSERT_TRUE(client.submit("&(executable=/bin/echo)").ok());
  auto before = client.stats();
  EXPECT_EQ(before.connects, 1u);
  client.disconnect();
  ASSERT_TRUE(client.submit("&(executable=/bin/echo)").ok());
  auto after = client.stats();
  EXPECT_EQ(after.connects, 2u);  // closed-connection stats retained
  EXPECT_GT(after.requests, before.requests);
}

}  // namespace
}  // namespace ig::gram
