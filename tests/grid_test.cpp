#include <gtest/gtest.h>

#include "grid/broker.hpp"
#include "grid/virtual_organization.hpp"
#include "mds/filter.hpp"

namespace ig::grid {
namespace {

constexpr Duration kWait = seconds(30);

class VoTest : public ::testing::Test {
 protected:
  VoTest() : clock(seconds(1000)), vo("anl", network, clock, 77) {}

  VirtualClock clock;
  net::Network network;
  VirtualOrganization vo;
};

TEST_F(VoTest, EnrollUserIssuesTrustedCredential) {
  auto alice = vo.enroll_user("alice", "alice");
  EXPECT_EQ(alice.base_subject(), "/O=Grid/O=anl/CN=alice");
  auto subject = vo.trust().verify_chain(alice.chain(), clock.now());
  ASSERT_TRUE(subject.ok());
  EXPECT_EQ(vo.gridmap().map(subject.value()).value(), "alice");
}

TEST_F(VoTest, AddResourceStartsInfoGram) {
  auto alice = vo.enroll_user("alice", "alice");
  ResourceOptions options;
  options.host = "node0.anl";
  auto resource = vo.add_resource(options);
  ASSERT_TRUE(resource.ok());
  EXPECT_EQ(vo.resources().size(), 1u);
  EXPECT_EQ(vo.resource("node0.anl"), resource.value());
  EXPECT_EQ(vo.resource("nonexistent"), nullptr);

  core::InfoGramClient client(network, (*resource)->infogram_address(), alice, vo.trust(),
                              clock);
  auto records = client.query_info({"CPULoad"});
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 1u);
}

TEST_F(VoTest, DuplicateHostRejected) {
  ResourceOptions options;
  options.host = "dup.anl";
  ASSERT_TRUE(vo.add_resource(options).ok());
  auto second = vo.add_resource(options);
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.code(), ErrorCode::kAlreadyExists);
}

TEST_F(VoTest, BaselineServicesOptional) {
  auto alice = vo.enroll_user("alice", "alice");
  ResourceOptions options;
  options.host = "classic.anl";
  options.run_infogram = false;
  options.run_gram = true;
  options.run_mds = true;
  auto resource = vo.add_resource(options);
  ASSERT_TRUE(resource.ok());
  // InfoGram port is closed; GRAM and MDS are open.
  EXPECT_FALSE(network.connect((*resource)->infogram_address()).ok());
  gram::GramClient gram_client(network, (*resource)->gram_address(), alice, vo.trust(),
                               clock);
  auto contact = gram_client.submit("&(executable=/bin/echo)(arguments=classic)");
  ASSERT_TRUE(contact.ok());
  EXPECT_EQ(gram_client.wait(*contact, kWait)->state, exec::JobState::kDone);
  mds::MdsClient mds_client(network, (*resource)->mds_address(), alice, vo.trust(), clock);
  auto entries = mds_client.search("o=Grid", mds::Scope::kSubtree, mds::Filter::match_all());
  ASSERT_TRUE(entries.ok());
  EXPECT_GT(entries->size(), 1u);
}

TEST_F(VoTest, GiisAggregatesAllResources) {
  for (int i = 0; i < 3; ++i) {
    ResourceOptions options;
    options.host = "node" + std::to_string(i) + ".anl";
    options.seed = 100 + static_cast<std::uint64_t>(i);
    ASSERT_TRUE(vo.add_resource(options).ok());
  }
  auto giis = vo.giis();
  auto entries = giis->search("o=Grid", mds::Scope::kSubtree, mds::Filter::match_all());
  ASSERT_TRUE(entries.ok());
  // VO root + 3 x (resource entry + 5 Table-1 keywords + health).
  EXPECT_EQ(entries->size(), 1u + 3u * 7u);
  // Scoped search hits one resource's subtree only.
  auto one = giis->search("host=node1.anl, o=Grid", mds::Scope::kSubtree,
                          mds::Filter::match_all());
  ASSERT_TRUE(one.ok());
  EXPECT_EQ(one->size(), 7u);
}

TEST_F(VoTest, ResourceAddedAfterGiisRegisters) {
  auto giis = vo.giis();
  ResourceOptions options;
  options.host = "late.anl";
  ASSERT_TRUE(vo.add_resource(options).ok());
  auto entries = giis->search("host=late.anl, o=Grid", mds::Scope::kSubtree,
                              mds::Filter::match_all());
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries->size(), 7u);  // resource entry + Table 1 + health
}

// ---------- Sporadic grid ----------

TEST(SporadicGridTest, ProvisionsAndServes) {
  VirtualClock clock(seconds(1000));
  net::Network network;
  SporadicGrid::Options options;
  options.resources = 4;
  SporadicGrid sporadic(network, clock, options);
  EXPECT_EQ(sporadic.infogram_addresses().size(), 4u);
  EXPECT_GE(sporadic.provision_time().count(), 0);

  auto user = sporadic.vo().enroll_user("experimenter", "exp");
  for (const auto& address : sporadic.infogram_addresses()) {
    core::InfoGramClient client(network, address, user, sporadic.vo().trust(), clock);
    auto records = client.query_info({"Memory"});
    ASSERT_TRUE(records.ok()) << address.to_string();
    EXPECT_EQ(records->size(), 1u);
  }
}

TEST(SporadicGridTest, TeardownClosesEndpoints) {
  VirtualClock clock(seconds(1000));
  net::Network network;
  std::vector<net::Address> addresses;
  {
    SporadicGrid::Options options;
    options.resources = 2;
    SporadicGrid sporadic(network, clock, options);
    addresses = sporadic.infogram_addresses();
    for (const auto& address : addresses) {
      EXPECT_TRUE(network.connect(address).ok());
    }
  }
  for (const auto& address : addresses) {
    EXPECT_FALSE(network.connect(address).ok());
  }
}

// ---------- Load-aware broker ----------

class BrokerTest : public VoTest {
 protected:
  void SetUp() override {
    user = vo.enroll_user("broker-user", "broker");
    for (int i = 0; i < 3; ++i) {
      ResourceOptions options;
      options.host = "node" + std::to_string(i) + ".anl";
      options.seed = 500 + static_cast<std::uint64_t>(i) * 13;
      ASSERT_TRUE(vo.add_resource(options).ok());
    }
    for (const auto& resource : vo.resources()) {
      broker.add_resource(resource->host(),
                          std::make_shared<core::InfoGramClient>(
                              network, resource->infogram_address(), user, vo.trust(),
                              clock));
    }
  }

  security::Credential user;
  LoadAwareBroker broker;
};

TEST_F(BrokerTest, LoadsQueriesEveryResource) {
  auto loads = broker.loads();
  ASSERT_TRUE(loads.ok());
  ASSERT_EQ(loads->size(), 3u);
  for (const auto& [host, load] : loads.value()) {
    EXPECT_GE(load, 0.0);
  }
}

TEST_F(BrokerTest, SubmitsToLeastLoadedResource) {
  clock.advance(seconds(600));  // let host loads diverge
  auto loads = broker.loads();
  ASSERT_TRUE(loads.ok());
  std::string expected_host = loads->front().first;
  double min_load = loads->front().second;
  for (const auto& [host, load] : loads.value()) {
    if (load < min_load) {
      min_load = load;
      expected_host = host;
    }
  }
  rsl::XrslBuilder builder;
  builder.executable("/bin/echo").argument("placed");
  auto placement = broker.submit(builder.request());
  ASSERT_TRUE(placement.ok());
  EXPECT_EQ(placement->host, expected_host);
  auto* client = broker.client(placement->host);
  ASSERT_NE(client, nullptr);
  auto status = client->wait(placement->contact, kWait);
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status->state, exec::JobState::kDone);
}

TEST_F(BrokerTest, EmptyBrokerFails) {
  LoadAwareBroker empty;
  rsl::XrslBuilder builder;
  builder.executable("/bin/echo");
  EXPECT_FALSE(empty.submit(builder.request()).ok());
}

}  // namespace
}  // namespace ig::grid
