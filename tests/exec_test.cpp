#include <gtest/gtest.h>

#include "common/clock.hpp"
#include "exec/command.hpp"
#include "exec/sim_system.hpp"

namespace ig::exec {
namespace {

// ---------- SimSystem ----------

TEST(SimSystemTest, DeterministicForSeed) {
  VirtualClock clock_a, clock_b;
  SimSystem a(clock_a, 7, "h"), b(clock_b, 7, "h");
  clock_a.advance(seconds(100));
  clock_b.advance(seconds(100));
  auto snap_a = a.snapshot();
  auto snap_b = b.snapshot();
  EXPECT_EQ(snap_a.mem_free_kb, snap_b.mem_free_kb);
  EXPECT_DOUBLE_EQ(snap_a.load1, snap_b.load1);
  EXPECT_EQ(snap_a.cpu_count, snap_b.cpu_count);
}

TEST(SimSystemTest, LoadStaysNonNegativeAndMemoryBounded) {
  VirtualClock clock;
  SimSystem sys(clock, 3);
  for (int i = 0; i < 200; ++i) {
    clock.advance(seconds(10));
    auto snap = sys.snapshot();
    EXPECT_GE(snap.load1, 0.0);
    EXPECT_GE(snap.mem_free_kb, snap.mem_total_kb / 10);
    EXPECT_LE(snap.mem_free_kb, snap.mem_total_kb * 95 / 100);
  }
}

TEST(SimSystemTest, ValuesEvolveOverTime) {
  VirtualClock clock;
  SimSystem sys(clock, 5);
  double first = sys.cpu_load();
  clock.advance(seconds(120));
  double later = sys.cpu_load();
  EXPECT_NE(first, later);
}

TEST(SimSystemTest, ResolutionIndependentDynamics) {
  // Sampling more often must not change the trajectory.
  VirtualClock clock_a, clock_b;
  SimSystem fine(clock_a, 21), coarse(clock_b, 21);
  for (int i = 0; i < 60; ++i) {
    clock_a.advance(seconds(1));
    fine.cpu_load();
  }
  clock_b.advance(seconds(60));
  EXPECT_DOUBLE_EQ(fine.cpu_load(), coarse.cpu_load());
}

TEST(SimSystemTest, ExternalLoadPushesLoadUp) {
  VirtualClock clock;
  SimSystem sys(clock, 9);
  clock.advance(seconds(300));
  double baseline = sys.cpu_load();
  sys.add_load(4.0);
  clock.advance(seconds(300));
  double loaded = sys.cpu_load();
  EXPECT_GT(loaded, baseline + 1.0);
  sys.add_load(-4.0);
  clock.advance(seconds(600));
  EXPECT_LT(sys.cpu_load(), loaded);
}

TEST(SimSystemTest, DirectoryListing) {
  VirtualClock clock;
  SimSystem sys(clock, 1);
  EXPECT_EQ(sys.list_dir("/home/gregor").size(), 3u);  // seeded files
  sys.add_file("/data", "scan1.dat");
  sys.add_file("/data", "scan1.dat");  // dedup
  EXPECT_EQ(sys.list_dir("/data").size(), 1u);
  EXPECT_TRUE(sys.list_dir("/nonexistent").empty());
}

TEST(SimSystemTest, ProcFiles) {
  VirtualClock clock;
  SimSystem sys(clock, 1);
  auto meminfo = sys.read_proc("/proc/meminfo");
  ASSERT_TRUE(meminfo.ok());
  EXPECT_NE(meminfo->find("MemTotal:"), std::string::npos);
  auto loadavg = sys.read_proc("/proc/loadavg");
  ASSERT_TRUE(loadavg.ok());
  auto cpuinfo = sys.read_proc("/proc/cpuinfo");
  ASSERT_TRUE(cpuinfo.ok());
  EXPECT_NE(cpuinfo->find("model name:"), std::string::npos);
  EXPECT_FALSE(sys.read_proc("/proc/bogus").ok());
}

// ---------- CommandRegistry ----------

class CommandTest : public ::testing::Test {
 protected:
  CommandTest()
      : system(std::make_shared<SimSystem>(clock, 13, "cmd.host")),
        registry(CommandRegistry::standard(clock, system, 17)) {}
  VirtualClock clock;
  std::shared_ptr<SimSystem> system;
  std::shared_ptr<CommandRegistry> registry;
};

TEST_F(CommandTest, SplitCommandLine) {
  auto [path, args] = split_command_line("/sbin/sysinfo.exe -mem -x");
  EXPECT_EQ(path, "/sbin/sysinfo.exe");
  EXPECT_EQ(args, (std::vector<std::string>{"-mem", "-x"}));
  auto [empty, no_args] = split_command_line("  ");
  EXPECT_EQ(empty, "");
  EXPECT_TRUE(no_args.empty());
}

TEST_F(CommandTest, StandardCommandsProduceKeyValueOutput) {
  for (const char* line : {"date -u", "/bin/hostname", "/usr/bin/uptime",
                           "/sbin/sysinfo.exe -mem", "/sbin/sysinfo.exe -cpu",
                           "/usr/local/bin/cpuload.exe", "/bin/ls /home/gregor"}) {
    auto result = registry->run(line);
    ASSERT_TRUE(result.ok()) << line;
    EXPECT_EQ(result->exit_code, 0) << line;
    EXPECT_NE(result->output.find(':'), std::string::npos) << line;
  }
}

TEST_F(CommandTest, UnknownCommandIsNotFound) {
  auto result = registry->run("/bin/doesnotexist");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.code(), ErrorCode::kNotFound);
}

TEST_F(CommandTest, ExecutionChargesCostOnClock) {
  auto before = clock.now();
  ASSERT_TRUE(registry->run("/usr/local/bin/cpuload.exe").ok());
  EXPECT_GE(clock.now() - before, ms(10));  // cpuload costs 10ms
}

TEST_F(CommandTest, CancellationStopsExecution) {
  CancelToken token;
  token.cancel();
  auto result = registry->run("/usr/local/bin/cpuload.exe", {}, &token);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.code(), ErrorCode::kCancelled);
}

TEST_F(CommandTest, ExecutionCounterIncrements) {
  auto before = registry->executions();
  ASSERT_TRUE(registry->run("date").ok());
  ASSERT_TRUE(registry->run("date").ok());
  EXPECT_EQ(registry->executions(), before + 2);
}

TEST_F(CommandTest, FailureInjection) {
  registry->set_failure_rate("date", 1.0);
  auto result = registry->run("date");
  ASSERT_TRUE(result.ok());
  EXPECT_NE(result->exit_code, 0);
  registry->set_failure_rate("date", 0.0);
  EXPECT_EQ(registry->run("date")->exit_code, 0);
}

TEST_F(CommandTest, SysinfoUsageError) {
  auto result = registry->run("/sbin/sysinfo.exe -bogus");
  ASSERT_TRUE(result.ok());
  EXPECT_NE(result->exit_code, 0);
}

TEST_F(CommandTest, CatReadsProcFiles) {
  auto result = registry->run("/bin/cat /proc/loadavg");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->exit_code, 0);
  auto missing = registry->run("/bin/cat /proc/bogus");
  ASSERT_TRUE(missing.ok());
  EXPECT_NE(missing->exit_code, 0);
}

TEST_F(CommandTest, SleepChargesItsArgument) {
  auto before = clock.now();
  ASSERT_TRUE(registry->run("/bin/sleep 25").ok());
  EXPECT_GE(clock.now() - before, ms(25));
}

TEST_F(CommandTest, RegisterCustomCommand) {
  registry->register_command(
      "/opt/custom",
      [](const std::vector<std::string>& args) {
        return CommandResult{0, "args: " + std::to_string(args.size()) + "\n"};
      },
      ms(1));
  ASSERT_TRUE(registry->contains("/opt/custom"));
  auto result = registry->run("/opt/custom a b");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->output, "args: 2\n");
  EXPECT_EQ(registry->cost("/opt/custom").value(), ms(1));
}

TEST_F(CommandTest, PathsListsRegisteredCommands) {
  auto paths = registry->paths();
  EXPECT_GE(paths.size(), 9u);
}

}  // namespace
}  // namespace ig::exec
