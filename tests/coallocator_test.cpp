#include <gtest/gtest.h>

#include "grid/coallocator.hpp"
#include "grid/virtual_organization.hpp"

namespace ig::grid {
namespace {

constexpr Duration kWait = seconds(60);

class CoAllocatorTest : public ::testing::Test {
 protected:
  CoAllocatorTest() : clock(seconds(1000)), vo("mpi", network, clock, 321) {
    user = vo.enroll_user("mpi-user", "mpi");
    for (int i = 0; i < 3; ++i) {
      ResourceOptions options;
      options.host = "node" + std::to_string(i) + ".mpi";
      options.seed = 700 + static_cast<std::uint64_t>(i) * 11;
      options.batch_nodes = 4;
      EXPECT_TRUE(vo.add_resource(options).ok());
    }
    for (const auto& resource : vo.resources()) {
      broker.add_resource(resource->host(),
                          std::make_shared<core::InfoGramClient>(
                              network, resource->infogram_address(), user, vo.trust(),
                              clock));
    }
  }

  rsl::XrslRequest mpi_job(int count) {
    rsl::XrslBuilder builder;
    builder.executable("/bin/echo").argument("rank").count(count).job_type("multiple");
    return builder.request();
  }

  VirtualClock clock;
  net::Network network;
  VirtualOrganization vo;
  security::Credential user;
  LoadAwareBroker broker;
};

TEST_F(CoAllocatorTest, SplitsCountAcrossResources) {
  CoAllocator coallocator(broker, /*max_per_resource=*/4);
  auto allocation = coallocator.submit(mpi_job(10));
  ASSERT_TRUE(allocation.ok());
  // 10 processes, max 4 per resource: 4 + 4 + 2 over three hosts.
  ASSERT_EQ(allocation->subjobs.size(), 3u);
  int total = 0;
  for (const auto& subjob : allocation->subjobs) {
    EXPECT_LE(subjob.count, 4);
    total += subjob.count;
  }
  EXPECT_EQ(total, 10);

  auto status = coallocator.wait(allocation.value(), kWait);
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status->state, exec::JobState::kDone);
  EXPECT_EQ(status->done, 3);
  // Every host contributed output.
  for (const auto& subjob : allocation->subjobs) {
    EXPECT_NE(status->output.find("[" + subjob.host + "]"), std::string::npos);
  }
}

TEST_F(CoAllocatorTest, SmallJobUsesOneResource) {
  CoAllocator coallocator(broker);
  auto allocation = coallocator.submit(mpi_job(3));
  ASSERT_TRUE(allocation.ok());
  EXPECT_EQ(allocation->subjobs.size(), 1u);
  EXPECT_EQ(coallocator.wait(allocation.value(), kWait)->state, exec::JobState::kDone);
}

TEST_F(CoAllocatorTest, OversizedJobRejectedWithoutSideEffects) {
  CoAllocator coallocator(broker, /*max_per_resource=*/2);
  auto allocation = coallocator.submit(mpi_job(100));  // 3 resources x 2 max
  ASSERT_FALSE(allocation.ok());
  EXPECT_EQ(allocation.code(), ErrorCode::kUnavailable);
}

TEST_F(CoAllocatorTest, NonJobRequestRejected) {
  CoAllocator coallocator(broker);
  rsl::XrslBuilder info_only;
  info_only.info("Memory");
  EXPECT_FALSE(coallocator.submit(info_only.request()).ok());
}

TEST_F(CoAllocatorTest, FailingSubjobCancelsTheRest) {
  // Break /bin/echo on one resource only: its subjob fails, and barrier
  // semantics must take the whole allocation down.
  vo.resources()[1]->registry()->set_failure_rate("/bin/echo", 1.0);
  CoAllocator coallocator(broker, /*max_per_resource=*/4);
  auto allocation = coallocator.submit(mpi_job(12));  // touches all 3 resources
  ASSERT_TRUE(allocation.ok());
  auto status = coallocator.wait(allocation.value(), kWait);
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status->state, exec::JobState::kFailed);
  EXPECT_GE(status->failed, 1);
}

TEST_F(CoAllocatorTest, CancelAllSubjobs) {
  CoAllocator coallocator(broker, 4);
  rsl::XrslBuilder builder;
  builder.executable("/bin/sleep").argument("100000").count(12).job_type("multiple");
  auto allocation = coallocator.submit(builder.request());
  ASSERT_TRUE(allocation.ok());
  EXPECT_TRUE(coallocator.cancel(allocation.value()).ok());
  auto status = coallocator.wait(allocation.value(), kWait);
  ASSERT_TRUE(status.ok());
  EXPECT_TRUE(exec::is_terminal(status->state));
}

TEST_F(CoAllocatorTest, SubjobsCarryAllocationId) {
  CoAllocator coallocator(broker, 4);
  auto allocation = coallocator.submit(mpi_job(8));
  ASSERT_TRUE(allocation.ok());
  EXPECT_NE(allocation->id.find("coalloc-"), std::string::npos);
  ASSERT_TRUE(coallocator.wait(allocation.value(), kWait).ok());
}

}  // namespace
}  // namespace ig::grid
