// Observability layer: metrics registry, request tracing, and the `obs`
// provider family that makes both queryable through InfoGram itself.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "core/config.hpp"
#include "core/infogram_client.hpp"
#include "core/infogram_service.hpp"
#include "exec/fork_backend.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "test_util.hpp"

namespace ig::obs {
namespace {

// ---------- Metrics ----------

TEST(MetricsTest, CounterGetOrCreateIsStable) {
  MetricsRegistry registry;
  Counter& a = registry.counter("x");
  Counter& b = registry.counter("x");
  EXPECT_EQ(&a, &b);
  a.add();
  a.add(4);
  EXPECT_EQ(b.value(), 5u);
  EXPECT_EQ(registry.size(), 1u);
}

TEST(MetricsTest, GaugeMovesBothWays) {
  MetricsRegistry registry;
  Gauge& g = registry.gauge("depth");
  g.set(10);
  g.add(5);
  g.sub(7);
  EXPECT_EQ(g.value(), 8);
  g.sub(20);
  EXPECT_EQ(g.value(), -12);
}

TEST(MetricsTest, KindMismatchReturnsDetachedDummy) {
  MetricsRegistry registry;
  registry.counter("x").add(3);
  // Asking for the same name as a different kind must not alias or crash.
  Gauge& dummy = registry.gauge("x");
  dummy.set(99);
  Histogram& hdummy = registry.histogram("x");
  hdummy.observe(1.0);
  EXPECT_EQ(registry.counter("x").value(), 3u);
  auto snaps = registry.snapshot();
  ASSERT_EQ(snaps.size(), 1u);
  EXPECT_EQ(snaps[0].kind, MetricSnapshot::Kind::kCounter);
  EXPECT_EQ(snaps[0].value, 3);
}

TEST(MetricsTest, ConcurrentCountersSumExactly) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kAdds = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      // Resolve through the registry each time on half the iterations, so
      // the get-or-create path itself is raced too.
      Counter& cached = registry.counter("hits");
      for (int i = 0; i < kAdds; ++i) {
        if (i % 2 == 0) {
          cached.add();
        } else {
          registry.counter("hits").add();
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(registry.counter("hits").value(),
            static_cast<std::uint64_t>(kThreads) * kAdds);
}

TEST(MetricsTest, HistogramMomentsAndQuantiles) {
  Histogram h({1.0, 2.0, 4.0, 8.0});
  for (int i = 1; i <= 100; ++i) h.observe(static_cast<double>(i) * 0.04);  // 0.04..4.0
  auto snap = h.snapshot();
  EXPECT_EQ(snap.stats.count(), 100);
  EXPECT_NEAR(snap.stats.mean(), 2.02, 1e-9);
  // 0.04..4.0 uniformly: the median sits around 2.0, p95 around 3.8.
  EXPECT_NEAR(snap.quantile(0.5), 2.0, 0.25);
  EXPECT_NEAR(snap.quantile(0.95), 3.8, 0.45);
  EXPECT_DOUBLE_EQ(snap.quantile(0.0), 0.0);
  // Overflow bucket: quantiles past every boundary clamp to the max seen.
  Histogram tiny({0.001});
  tiny.observe(5.0);
  tiny.observe(7.0);
  EXPECT_DOUBLE_EQ(tiny.snapshot().quantile(0.99), 7.0);
}

TEST(MetricsTest, ConcurrentHistogramObservations) {
  MetricsRegistry registry;
  constexpr int kThreads = 4;
  constexpr int kObs = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, t] {
      for (int i = 0; i < kObs; ++i) {
        registry.histogram("lat").observe(0.001 * (t + 1));
      }
    });
  }
  for (auto& t : threads) t.join();
  auto snap = registry.histogram("lat").snapshot();
  EXPECT_EQ(snap.stats.count(), kThreads * kObs);
  std::uint64_t bucketed = 0;
  for (auto c : snap.counts) bucketed += c;
  EXPECT_EQ(bucketed, static_cast<std::uint64_t>(kThreads) * kObs);
}

TEST(MetricsTest, SnapshotSortedByName) {
  MetricsRegistry registry;
  registry.counter("zeta").add();
  registry.gauge("alpha").set(1);
  registry.histogram("mid").observe(0.5);
  auto snaps = registry.snapshot();
  ASSERT_EQ(snaps.size(), 3u);
  EXPECT_EQ(snaps[0].name, "alpha");
  EXPECT_EQ(snaps[1].name, "mid");
  EXPECT_EQ(snaps[2].name, "zeta");
  ASSERT_TRUE(snaps[1].histogram.has_value());
}

// ---------- Tracing ----------

TEST(TraceTest, SpansRecordHierarchyAndStatus) {
  VirtualClock clock(seconds(100));
  TraceContext trace(clock, "XRSL");
  {
    auto parse = trace.span("parse");
    clock.advance(ms(2));
  }  // ends ok via RAII
  {
    auto query = trace.span("info:CPULoad");
    clock.advance(ms(5));
    query.end("error: stale");
  }
  clock.advance(ms(1));
  TraceRecord record = trace.finish();
  EXPECT_EQ(record.root, "XRSL");
  EXPECT_EQ(record.id.size(), 16u);
  EXPECT_EQ(record.start, seconds(100));
  EXPECT_EQ(record.duration, ms(8));
  ASSERT_EQ(record.spans.size(), 3u);  // root + 2 children
  EXPECT_EQ(record.spans[0].name, "XRSL");
  EXPECT_EQ(record.spans[0].parent_id, 0u);
  EXPECT_EQ(record.spans[1].name, "parse");
  EXPECT_EQ(record.spans[1].parent_id, record.spans[0].id);
  EXPECT_EQ(record.spans[1].duration, ms(2));
  EXPECT_EQ(record.spans[2].status, "error: stale");
  EXPECT_EQ(record.spans[2].duration, ms(5));
  EXPECT_EQ(record.status, "ok");
  EXPECT_TRUE(trace.finished());
}

TEST(TraceTest, FailMarksRootStatus) {
  VirtualClock clock;
  TraceContext trace(clock, "XRSL");
  trace.fail("error: denied");
  TraceRecord record = trace.finish();
  EXPECT_EQ(record.status, "error: denied");
  EXPECT_EQ(record.spans[0].status, "error: denied");
}

TEST(TraceTest, DistinctTraceIds) {
  VirtualClock clock;
  TraceContext a(clock, "XRSL");
  TraceContext b(clock, "XRSL");
  EXPECT_NE(a.id(), b.id());
}

TEST(TraceTest, ConcurrentSpansAllRecorded) {
  VirtualClock clock;
  TraceContext trace(clock, "burst");
  constexpr int kThreads = 8;
  constexpr int kSpans = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&trace, t] {
      for (int i = 0; i < kSpans; ++i) {
        auto s = trace.span("s" + std::to_string(t));
        s.end();
      }
    });
  }
  for (auto& t : threads) t.join();
  TraceRecord record = trace.finish();
  EXPECT_EQ(record.spans.size(), 1u + kThreads * kSpans);
}

TEST(TraceStoreTest, RingBufferEvictsOldest) {
  VirtualClock clock;
  TraceStore store(3);
  for (int i = 0; i < 5; ++i) {
    TraceContext trace(clock, "r" + std::to_string(i));
    store.add(trace.finish());
  }
  EXPECT_EQ(store.size(), 3u);
  EXPECT_EQ(store.capacity(), 3u);
  EXPECT_EQ(store.completed(), 5u);
  auto traces = store.snapshot();
  ASSERT_EQ(traces.size(), 3u);
  EXPECT_EQ(traces.front().root, "r2");  // oldest retained
  EXPECT_EQ(traces.back().root, "r4");
}

// ---------- Telemetry records ----------

TEST(TelemetryTest, MetricsRecordRendersAllKinds) {
  VirtualClock clock;
  Telemetry telemetry(clock);
  telemetry.metrics().counter("requests.total").add(7);
  telemetry.metrics().gauge("exec.queue.depth").set(2);
  telemetry.metrics().histogram("request.seconds").observe(0.25);
  auto record = telemetry.metrics_record("metrics");
  EXPECT_EQ(record.keyword, "metrics");
  // InfoRecord::add namespaces attributes with the keyword.
  ASSERT_NE(record.find("metrics:requests.total"), nullptr);
  EXPECT_EQ(record.find("metrics:requests.total")->value, "7");
  EXPECT_EQ(record.find("metrics:exec.queue.depth")->value, "2");
  // Names already containing ':' are not re-namespaced by InfoRecord::add.
  ASSERT_NE(record.find("request.seconds:count"), nullptr);
  EXPECT_EQ(record.find("request.seconds:count")->value, "1");
  ASSERT_NE(record.find("request.seconds:p95"), nullptr);
}

TEST(TelemetryTest, MetricsRecordPrefixFilter) {
  VirtualClock clock;
  Telemetry telemetry(clock);
  telemetry.metrics().counter("gram.jobs.submitted").add();
  telemetry.metrics().counter("exec.jobs.queued").add();
  telemetry.metrics().counter("net.requests").add();
  auto record = telemetry.metrics_record("metrics.jobs", {"gram.", "exec."});
  EXPECT_NE(record.find("metrics.jobs:gram.jobs.submitted"), nullptr);
  EXPECT_NE(record.find("metrics.jobs:exec.jobs.queued"), nullptr);
  EXPECT_EQ(record.find("metrics.jobs:net.requests"), nullptr);
}

TEST(TelemetryTest, CompleteStoresTraceAndNotifiesListener) {
  VirtualClock clock;
  Telemetry telemetry(clock, 8);
  std::vector<TraceRecord> seen;
  telemetry.set_trace_listener([&seen](const TraceRecord& r) { seen.push_back(r); });
  auto trace = telemetry.start_trace("XRSL");
  clock.advance(ms(3));
  telemetry.complete(trace);
  EXPECT_EQ(telemetry.traces().size(), 1u);
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0].root, "XRSL");
  EXPECT_EQ(seen[0].duration, ms(3));

  auto record = telemetry.traces_record("traces");
  ASSERT_NE(record.find("traces:count"), nullptr);
  EXPECT_EQ(record.find("traces:count")->value, "1");
  EXPECT_NE(record.find(seen[0].id + ":root"), nullptr);
}

// ---------- Through the service (dogfooding) ----------

class ObsServiceTest : public ig::test::GridFixture {
 protected:
  ObsServiceTest() : backend(std::make_shared<exec::ForkBackend>(registry, *clock)) {}

  void start_service() {
    telemetry = std::make_shared<Telemetry>(*clock);
    core::InfoGramConfig config;
    config.host = "test.sim";
    config.telemetry = telemetry;
    monitor = std::make_shared<info::SystemMonitor>(*clock, config.host);
    ASSERT_TRUE(core::Configuration::table1().apply(*monitor, registry).ok());
    service = std::make_unique<core::InfoGramService>(monitor, backend, host_cred, &trust,
                                                      &gridmap, &policy, clock.get(),
                                                      logger, config);
    ASSERT_TRUE(service->start(*network).ok());
  }

  core::InfoGramClient make_client() {
    return core::InfoGramClient(*network, service->address(), alice, trust, *clock);
  }

  std::shared_ptr<exec::ForkBackend> backend;
  std::shared_ptr<Telemetry> telemetry;
  std::shared_ptr<info::SystemMonitor> monitor;
  std::unique_ptr<core::InfoGramService> service;
};

TEST_F(ObsServiceTest, MetricsQueryableInLdif) {
  start_service();
  auto client = make_client();
  ASSERT_TRUE(client.query_info({"CPULoad"}).ok());  // generate some traffic
  auto records = client.query_info({"metrics"});
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 1u);
  const auto& record = (*records)[0];
  EXPECT_EQ(record.keyword, "metrics");
  EXPECT_FALSE(record.attributes.empty());
  // The layers instrumented upstream of this query already counted.
  const auto* total = record.find("metrics:requests.total");
  ASSERT_NE(total, nullptr);
  EXPECT_GE(std::stoull(total->value), 1u);
  EXPECT_NE(record.find("metrics:auth.handshakes"), nullptr);
  EXPECT_NE(record.find("metrics:net.requests"), nullptr);
  EXPECT_NE(record.find("metrics:info.cache.misses"), nullptr);
  EXPECT_NE(record.find("request.seconds:p50"), nullptr);
}

TEST_F(ObsServiceTest, MetricsQueryableInXml) {
  start_service();
  auto client = make_client();
  auto records =
      client.query_info({"metrics"}, rsl::ResponseMode::kCached, rsl::OutputFormat::kXml);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 1u);
  EXPECT_EQ((*records)[0].keyword, "metrics");
  EXPECT_FALSE((*records)[0].attributes.empty());
}

TEST_F(ObsServiceTest, TracesQueryableInBothFormats) {
  start_service();
  auto client = make_client();
  ASSERT_TRUE(client.query_info({"Memory"}).ok());  // complete at least one trace
  for (auto format : {rsl::OutputFormat::kLdif, rsl::OutputFormat::kXml}) {
    auto records = client.query_info({"traces"}, rsl::ResponseMode::kCached, format);
    ASSERT_TRUE(records.ok());
    ASSERT_EQ(records->size(), 1u);
    const auto& record = (*records)[0];
    EXPECT_EQ(record.keyword, "traces");
    EXPECT_FALSE(record.attributes.empty());
    const auto* completed = record.find("traces:completed");
    ASSERT_NE(completed, nullptr);
    EXPECT_GE(std::stoull(completed->value), 1u);
  }
}

TEST_F(ObsServiceTest, SchemaListsObsKeywords) {
  start_service();
  auto client = make_client();
  ASSERT_TRUE(client.query_info({"metrics"}).ok());  // populate last_state
  auto schema = client.fetch_schema();
  ASSERT_TRUE(schema.ok());
  bool metrics = false, metrics_jobs = false, traces = false;
  for (const auto& kw : schema->keywords) {
    if (kw.keyword == "metrics") {
      metrics = true;
      EXPECT_EQ(kw.ttl, Duration(0));  // Table 1: execute per request
      EXPECT_FALSE(kw.attributes.empty());
    }
    if (kw.keyword == "metrics.jobs") metrics_jobs = true;
    if (kw.keyword == "traces") traces = true;
  }
  EXPECT_TRUE(metrics);
  EXPECT_TRUE(metrics_jobs);
  EXPECT_TRUE(traces);
}

TEST_F(ObsServiceTest, TracePropagatesThroughCombinedRequest) {
  start_service();
  auto client = make_client();
  auto resp = client.request("&(executable=/bin/echo)(arguments=hi)(info=CPULoad)");
  ASSERT_TRUE(resp.ok());
  ASSERT_TRUE(resp->job_contact.has_value());
  ASSERT_TRUE(client.wait(*resp->job_contact, seconds(30)).ok());

  auto traces = telemetry->traces().snapshot();
  ASSERT_FALSE(traces.empty());
  // The combined request's trace carries spans from every layer it crossed.
  const TraceRecord* combined = nullptr;
  for (const auto& t : traces) {
    for (const auto& s : t.spans) {
      if (s.name == "gram.submit") combined = &t;
    }
  }
  ASSERT_NE(combined, nullptr);
  EXPECT_EQ(combined->root, "XRSL");
  bool parse = false, submit = false, info = false, format = false;
  for (const auto& s : combined->spans) {
    if (s.name == "parse") parse = true;
    if (s.name == "gram.submit") submit = true;
    if (s.name == "info:CPULoad") info = true;
    if (s.name.rfind("format:", 0) == 0) format = true;
    if (s.parent_id != 0) {
      EXPECT_EQ(s.parent_id, combined->spans[0].id);  // all rooted
    }
  }
  EXPECT_TRUE(parse);
  EXPECT_TRUE(submit);
  EXPECT_TRUE(info);
  EXPECT_TRUE(format);

  // The job flowed through GRAM: submission counted, transitions counted.
  EXPECT_GE(telemetry->metrics().counter(metric::kJobsSubmitted).value(), 1u);
  EXPECT_GE(telemetry->metrics().counter("gram.transitions.DONE").value(), 1u);

  // The trace listener bridged completions into the Logger.
  bool trace_logged = false;
  for (const auto& event : log_sink->events()) {
    if (event.type == logging::EventType::kTrace) trace_logged = true;
  }
  EXPECT_TRUE(trace_logged);
}

TEST_F(ObsServiceTest, ErrorsAndAuthFailuresCounted) {
  start_service();
  auto client = make_client();
  EXPECT_FALSE(client.query_info({"Bogus"}).ok());
  EXPECT_GE(telemetry->metrics().counter(metric::kRequestsErrors).value(), 1u);
  auto traces = telemetry->traces().snapshot();
  ASSERT_FALSE(traces.empty());
  EXPECT_NE(traces.back().status, "ok");

  // A stranger without a trusted credential fails the handshake.
  security::CertificateAuthority rogue_ca("/O=Rogue/CN=CA", seconds(86400), *clock, 666);
  auto mallory = rogue_ca.issue("/O=Rogue/CN=mallory", security::CertType::kUser,
                                seconds(86400));
  core::InfoGramClient bad(*network, service->address(), mallory, trust, *clock);
  EXPECT_FALSE(bad.query_info({"CPULoad"}).ok());
  EXPECT_GE(telemetry->metrics().counter(metric::kAuthFailures).value(), 1u);
}

}  // namespace
}  // namespace ig::obs
