// Observability layer: metrics registry, request tracing, and the `obs`
// provider family that makes both queryable through InfoGram itself.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <thread>
#include <vector>

#include "core/config.hpp"
#include "core/infogram_client.hpp"
#include "core/infogram_service.hpp"
#include "exec/fork_backend.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/propagation.hpp"
#include "obs/slo.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "test_util.hpp"

namespace ig::obs {
namespace {

// ---------- Metrics ----------

TEST(MetricsTest, CounterGetOrCreateIsStable) {
  MetricsRegistry registry;
  Counter& a = registry.counter("x");
  Counter& b = registry.counter("x");
  EXPECT_EQ(&a, &b);
  a.add();
  a.add(4);
  EXPECT_EQ(b.value(), 5u);
  EXPECT_EQ(registry.size(), 1u);
}

TEST(MetricsTest, GaugeMovesBothWays) {
  MetricsRegistry registry;
  Gauge& g = registry.gauge("depth");
  g.set(10);
  g.add(5);
  g.sub(7);
  EXPECT_EQ(g.value(), 8);
  g.sub(20);
  EXPECT_EQ(g.value(), -12);
}

TEST(MetricsTest, KindMismatchReturnsDetachedDummy) {
  MetricsRegistry registry;
  registry.counter("x").add(3);
  // Asking for the same name as a different kind must not alias or crash.
  Gauge& dummy = registry.gauge("x");
  dummy.set(99);
  Histogram& hdummy = registry.histogram("x");
  hdummy.observe(1.0);
  EXPECT_EQ(registry.counter("x").value(), 3u);
  auto snaps = registry.snapshot();
  ASSERT_EQ(snaps.size(), 1u);
  EXPECT_EQ(snaps[0].kind, MetricSnapshot::Kind::kCounter);
  EXPECT_EQ(snaps[0].value, 3);
}

TEST(MetricsTest, ConcurrentCountersSumExactly) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kAdds = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      // Resolve through the registry each time on half the iterations, so
      // the get-or-create path itself is raced too.
      Counter& cached = registry.counter("hits");
      for (int i = 0; i < kAdds; ++i) {
        if (i % 2 == 0) {
          cached.add();
        } else {
          registry.counter("hits").add();
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(registry.counter("hits").value(),
            static_cast<std::uint64_t>(kThreads) * kAdds);
}

TEST(MetricsTest, HistogramMomentsAndQuantiles) {
  Histogram h({1.0, 2.0, 4.0, 8.0});
  for (int i = 1; i <= 100; ++i) h.observe(static_cast<double>(i) * 0.04);  // 0.04..4.0
  auto snap = h.snapshot();
  EXPECT_EQ(snap.stats.count(), 100);
  EXPECT_NEAR(snap.stats.mean(), 2.02, 1e-9);
  // 0.04..4.0 uniformly: the median sits around 2.0, p95 around 3.8.
  EXPECT_NEAR(snap.quantile(0.5), 2.0, 0.25);
  EXPECT_NEAR(snap.quantile(0.95), 3.8, 0.45);
  EXPECT_DOUBLE_EQ(snap.quantile(0.0), 0.0);
  // Overflow bucket: quantiles past every boundary clamp to the max seen.
  Histogram tiny({0.001});
  tiny.observe(5.0);
  tiny.observe(7.0);
  EXPECT_DOUBLE_EQ(tiny.snapshot().quantile(0.99), 7.0);
}

TEST(MetricsTest, ConcurrentHistogramObservations) {
  MetricsRegistry registry;
  constexpr int kThreads = 4;
  constexpr int kObs = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, t] {
      for (int i = 0; i < kObs; ++i) {
        registry.histogram("lat").observe(0.001 * (t + 1));
      }
    });
  }
  for (auto& t : threads) t.join();
  auto snap = registry.histogram("lat").snapshot();
  EXPECT_EQ(snap.stats.count(), kThreads * kObs);
  std::uint64_t bucketed = 0;
  for (auto c : snap.counts) bucketed += c;
  EXPECT_EQ(bucketed, static_cast<std::uint64_t>(kThreads) * kObs);
}

TEST(MetricsTest, SnapshotSortedByName) {
  MetricsRegistry registry;
  registry.counter("zeta").add();
  registry.gauge("alpha").set(1);
  registry.histogram("mid").observe(0.5);
  auto snaps = registry.snapshot();
  ASSERT_EQ(snaps.size(), 3u);
  EXPECT_EQ(snaps[0].name, "alpha");
  EXPECT_EQ(snaps[1].name, "mid");
  EXPECT_EQ(snaps[2].name, "zeta");
  ASSERT_TRUE(snaps[1].histogram.has_value());
}

// ---------- Tracing ----------

TEST(TraceTest, SpansRecordHierarchyAndStatus) {
  VirtualClock clock(seconds(100));
  TraceContext trace(clock, "XRSL");
  {
    auto parse = trace.span("parse");
    clock.advance(ms(2));
  }  // ends ok via RAII
  {
    auto query = trace.span("info:CPULoad");
    clock.advance(ms(5));
    query.end("error: stale");
  }
  clock.advance(ms(1));
  TraceRecord record = trace.finish();
  EXPECT_EQ(record.root, "XRSL");
  EXPECT_EQ(record.id.size(), 16u);
  EXPECT_EQ(record.start, seconds(100));
  EXPECT_EQ(record.duration, ms(8));
  ASSERT_EQ(record.spans.size(), 3u);  // root + 2 children
  EXPECT_EQ(record.spans[0].name, "XRSL");
  EXPECT_EQ(record.spans[0].parent_id, 0u);
  EXPECT_EQ(record.spans[1].name, "parse");
  EXPECT_EQ(record.spans[1].parent_id, record.spans[0].id);
  EXPECT_EQ(record.spans[1].duration, ms(2));
  EXPECT_EQ(record.spans[2].status, "error: stale");
  EXPECT_EQ(record.spans[2].duration, ms(5));
  EXPECT_EQ(record.status, "ok");
  EXPECT_TRUE(trace.finished());
}

TEST(TraceTest, FailMarksRootStatus) {
  VirtualClock clock;
  TraceContext trace(clock, "XRSL");
  trace.fail("error: denied");
  TraceRecord record = trace.finish();
  EXPECT_EQ(record.status, "error: denied");
  EXPECT_EQ(record.spans[0].status, "error: denied");
}

TEST(TraceTest, DistinctTraceIds) {
  VirtualClock clock;
  TraceContext a(clock, "XRSL");
  TraceContext b(clock, "XRSL");
  EXPECT_NE(a.id(), b.id());
}

TEST(TraceTest, ConcurrentSpansAllRecorded) {
  VirtualClock clock;
  TraceContext trace(clock, "burst");
  constexpr int kThreads = 8;
  constexpr int kSpans = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&trace, t] {
      for (int i = 0; i < kSpans; ++i) {
        auto s = trace.span("s" + std::to_string(t));
        s.end();
      }
    });
  }
  for (auto& t : threads) t.join();
  TraceRecord record = trace.finish();
  EXPECT_EQ(record.spans.size(), 1u + kThreads * kSpans);
}

TEST(TraceStoreTest, RingBufferEvictsOldest) {
  VirtualClock clock;
  TraceStore store(3);
  for (int i = 0; i < 5; ++i) {
    TraceContext trace(clock, "r" + std::to_string(i));
    store.add(trace.finish());
  }
  EXPECT_EQ(store.size(), 3u);
  EXPECT_EQ(store.capacity(), 3u);
  EXPECT_EQ(store.completed(), 5u);
  auto traces = store.snapshot();
  ASSERT_EQ(traces.size(), 3u);
  EXPECT_EQ(traces.front().root, "r2");  // oldest retained
  EXPECT_EQ(traces.back().root, "r4");
}

// ---------- Wire propagation codecs ----------

TEST(PropagationTest, WireContextRoundTrips) {
  WireContext ctx;
  ctx.trace_id = "00ab34cd56ef7890";
  ctx.parent_span = 0xdeadbeef;
  ctx.sampled = true;
  auto decoded = WireContext::decode(ctx.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->trace_id, ctx.trace_id);
  EXPECT_EQ(decoded->parent_span, ctx.parent_span);
  EXPECT_TRUE(decoded->sampled);

  ctx.sampled = false;
  decoded = WireContext::decode(ctx.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_FALSE(decoded->sampled);
}

TEST(PropagationTest, MalformedWireContextRejected) {
  EXPECT_FALSE(WireContext::decode("").has_value());
  EXPECT_FALSE(WireContext::decode("justoneid").has_value());
  EXPECT_FALSE(WireContext::decode("id;nothex;1").has_value());
  EXPECT_FALSE(WireContext::decode("id;ff;3").has_value());
  EXPECT_FALSE(WireContext::decode(";ff;1").has_value());
}

TEST(PropagationTest, ProvisionalWireFlagDecodes) {
  // Flag "2" is the tail-sampling extension: sampled, but the verdict on
  // whether the trace is kept comes at finish. Anything past "2" is still
  // malformed (checked above) so old peers fail closed.
  auto decoded = WireContext::decode("id;ff;2");
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->sampled);
  EXPECT_TRUE(decoded->provisional);

  WireContext ctx;
  ctx.trace_id = "roundtrip";
  ctx.parent_span = 0x1f;
  ctx.sampled = true;
  ctx.provisional = true;
  auto again = WireContext::decode(ctx.encode());
  ASSERT_TRUE(again.has_value());
  EXPECT_TRUE(again->sampled);
  EXPECT_TRUE(again->provisional);
}

TEST(PropagationTest, SpanCodecRoundTripsWithDelimiters) {
  std::vector<SpanRecord> spans;
  SpanRecord a;
  a.id = 1;
  a.parent_id = 0;
  a.name = "rpc:MDS_SEARCH@host,with|odd%chars";
  a.node = "leaf.sim";
  a.start = TimePoint(1000);
  a.duration = ms(5);
  a.status = "error: stale, retry";
  spans.push_back(a);
  SpanRecord b;
  b.id = 2;
  b.parent_id = 1;
  b.name = "info:CPULoad";
  b.start = TimePoint(2000);
  b.duration = ms(1);
  spans.push_back(b);

  auto decoded = decode_spans(encode_spans(spans));
  ASSERT_EQ(decoded.size(), 2u);
  EXPECT_EQ(decoded[0], a);
  EXPECT_EQ(decoded[1], b);
}

TEST(PropagationTest, SpanCodecCapsAndSkipsMalformed) {
  std::vector<SpanRecord> spans(10);
  for (std::size_t i = 0; i < spans.size(); ++i) spans[i].id = i + 1;
  auto capped = decode_spans(encode_spans(spans, 3));
  EXPECT_EQ(capped.size(), 3u);
  // Malformed records are skipped, never fatal.
  auto tolerant = decode_spans("garbage|" + encode_spans({spans[0]}) + "|also,bad");
  ASSERT_EQ(tolerant.size(), 1u);
  EXPECT_EQ(tolerant[0].id, 1u);
}

TEST(PropagationTest, ScopesSaveAndRestoreThreadState) {
  VirtualClock clock;
  EXPECT_TRUE(active_trace().empty());
  TraceContext outer(clock, "outer");
  {
    TraceScope scope(outer);
    EXPECT_EQ(active_trace().ctx, &outer);
    {
      DetachScope boundary;  // the simulated process boundary
      EXPECT_TRUE(active_trace().empty());
      {
        PassThroughScope foreign("abcd", 7);
        EXPECT_EQ(active_trace().foreign_trace_id, "abcd");
        EXPECT_EQ(active_trace().foreign_parent, 7u);
      }
      {
        SuppressScope off;
        EXPECT_TRUE(active_trace().suppressed);
      }
      EXPECT_TRUE(active_trace().empty());
    }
    EXPECT_EQ(active_trace().ctx, &outer);
  }
  EXPECT_TRUE(active_trace().empty());
  outer.finish();
}

// ---------- Cross-hop stitching ----------

TEST(TraceStitchTest, RemoteChildJoinsPropagatedTrace) {
  VirtualClock clock;
  TraceContext origin(clock, "client");
  auto hop = origin.span("rpc:SEARCH@leaf");

  TraceContext::Options options;
  options.node = "leaf.sim";
  options.remote_trace_id = origin.id();
  options.remote_parent_span = hop.id();
  TraceContext remote(clock, "SEARCH", options);
  EXPECT_TRUE(remote.remote());
  EXPECT_EQ(remote.id(), origin.id());
  { auto work = remote.span("search"); }
  TraceRecord remote_record = remote.finish();
  // Remote root parents under the caller's hop span; every span is tagged.
  EXPECT_EQ(remote_record.spans[0].parent_id, hop.id());
  for (const auto& s : remote_record.spans) EXPECT_EQ(s.node, "leaf.sim");

  hop.end();
  origin.adopt(remote_record.spans);
  origin.adopt(remote_record.spans);  // duplicate backhaul is harmless
  TraceRecord stitched = origin.finish();
  // client root + hop + remote root + remote child, deduplicated.
  ASSERT_EQ(stitched.spans.size(), 4u);
  bool found_remote_root = false;
  for (const auto& s : stitched.spans) {
    if (s.id == remote_record.spans[0].id) {
      found_remote_root = true;
      EXPECT_EQ(s.parent_id, hop.id());
    }
  }
  EXPECT_TRUE(found_remote_root);
}

TEST(TraceStitchTest, StoreMergesSegmentsOfOneTrace) {
  VirtualClock clock;
  TraceStore store(4);

  TraceContext origin(clock, "client");
  auto hop = origin.span("rpc:Q@leaf");
  TraceContext::Options options;
  options.node = "leaf.sim";
  options.remote_trace_id = origin.id();
  options.remote_parent_span = hop.id();
  TraceContext remote(clock, "Q", options);
  clock.advance(ms(3));
  remote.fail("error:stale");
  TraceRecord remote_record = remote.finish();
  hop.end();
  clock.advance(ms(2));
  TraceRecord origin_record = origin.finish();

  // The remote segment lands first (it finished first), then the origin:
  // one retained record, origin fields, remote status wins over "ok".
  store.add(remote_record);
  store.add(origin_record);
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.completed(), 1u);  // merged segments are one trace
  auto found = store.find(origin.id());
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].root, "client");
  EXPECT_EQ(found[0].status, "error:stale");
  EXPECT_EQ(found[0].spans[0].parent_id, 0u);  // origin root rotated to front
  EXPECT_EQ(found[0].spans.size(), 3u);  // origin root + hop + remote root
  EXPECT_EQ(found[0].duration, ms(5));  // widened to cover both segments
}

// ---------- Self-accounting (dropped / unfinished) ----------

TEST(TelemetryTest, UnfinishedGaugeAndDroppedCounterTrackContexts) {
  VirtualClock clock;
  Telemetry telemetry(clock, "n1");
  Gauge& unfinished = telemetry.metrics().gauge(metric::kTraceUnfinished);
  Counter& dropped = telemetry.metrics().counter(metric::kTraceDropped);

  {
    auto trace = telemetry.make_trace("served");
    EXPECT_EQ(unfinished.value(), 1);
    telemetry.complete(*trace);
    EXPECT_EQ(unfinished.value(), 0);
  }
  EXPECT_EQ(dropped.value(), 0u);

  {
    auto trace = telemetry.make_trace("abandoned");
    EXPECT_EQ(unfinished.value(), 1);
  }  // destroyed without finish(): a blind spot, and counted as one
  EXPECT_EQ(unfinished.value(), 0);
  EXPECT_EQ(dropped.value(), 1u);
}

TEST(TelemetryTest, RingEvictionCountsAsDropped) {
  VirtualClock clock;
  Telemetry telemetry(clock, "n1", /*trace_capacity=*/2);
  for (int i = 0; i < 5; ++i) {
    auto trace = telemetry.make_trace("t" + std::to_string(i));
    telemetry.complete(*trace);
  }
  EXPECT_EQ(telemetry.traces().size(), 2u);
  EXPECT_EQ(telemetry.metrics().counter(metric::kTraceDropped).value(), 3u);
}

// ---------- Exemplars ----------

TEST(MetricsTest, HistogramKeepsLatestExemplarPerBucket) {
  Histogram h({0.1, 1.0});
  h.observe(0.05, "trace-a");
  h.observe(0.07, "trace-b");  // same bucket: latest wins
  h.observe(0.5, "trace-c");
  h.observe(99.0, "trace-d");  // overflow bucket
  h.observe(0.06);             // plain observation leaves exemplars alone
  auto snap = h.snapshot();
  ASSERT_EQ(snap.exemplars.size(), 3u);  // parallel to counts; empty id = none
  EXPECT_EQ(snap.exemplars[0].trace_id, "trace-b");
  EXPECT_DOUBLE_EQ(snap.exemplars[0].value, 0.07);
  EXPECT_EQ(snap.exemplars[1].trace_id, "trace-c");
  EXPECT_EQ(snap.exemplars[2].trace_id, "trace-d");
}

TEST(TelemetryTest, MetricsRecordRendersExemplars) {
  VirtualClock clock;
  Telemetry telemetry(clock);
  telemetry.metrics()
      .histogram(metric::kRequestSeconds)
      .observe(0.002, "aabbccdd00112233");
  auto record = telemetry.metrics_record("metrics");
  bool saw_exemplar = false;
  for (const auto& attr : record.attributes) {
    if (attr.name.find(":exemplar:") != std::string::npos) {
      saw_exemplar = true;
      EXPECT_NE(attr.value.find("aabbccdd00112233@"), std::string::npos);
    }
  }
  EXPECT_TRUE(saw_exemplar);
}

// ---------- Sampling ----------

TEST(TelemetryTest, CounterBasedSamplingIsDeterministic) {
  VirtualClock clock;
  Telemetry telemetry(clock);
  telemetry.set_trace_sampling(3);
  std::vector<bool> decisions;
  for (int i = 0; i < 6; ++i) decisions.push_back(telemetry.should_sample());
  EXPECT_EQ(decisions, (std::vector<bool>{true, false, false, true, false, false}));
  telemetry.set_trace_sampling(0);  // treated as 1: record everything
  EXPECT_TRUE(telemetry.should_sample());
  EXPECT_TRUE(telemetry.should_sample());
}

// ---------- SLO engine ----------

TEST(SloTest, LatencyObjectiveBurnsAndAlertsOnBothWindows) {
  VirtualClock clock(seconds(1000));
  MetricsRegistry metrics;
  SloEngine engine(metrics, clock);
  SloObjective objective;
  objective.name = "lat";
  objective.layer = "core";
  objective.kind = SloObjective::Kind::kLatency;
  objective.metric = "req.seconds";
  objective.threshold_seconds = 0.5;
  objective.target = 0.99;  // a 100%-bad stream burns at 1/(1-0.99) = 100x
  engine.add(objective);
  EXPECT_EQ(engine.size(), 1u);

  Histogram& h = metrics.histogram("req.seconds", {0.1, 0.5, 1.0});
  for (int i = 0; i < 100; ++i) h.observe(0.01);  // all good
  auto statuses = engine.evaluate();
  ASSERT_EQ(statuses.size(), 1u);
  EXPECT_EQ(statuses[0].good, 100u);
  EXPECT_EQ(statuses[0].total, 100u);
  EXPECT_DOUBLE_EQ(statuses[0].compliance, 1.0);
  EXPECT_FALSE(statuses[0].alerting);

  // Sustain a 100%-bad stream long enough to cover BOTH page windows
  // (5m short, 1h long): only then does the multi-window rule fire.
  for (int minute = 0; minute < 70; ++minute) {
    for (int i = 0; i < 10; ++i) h.observe(2.0);  // above threshold = bad
    clock.advance(seconds(60));
    statuses = engine.evaluate();
  }
  ASSERT_EQ(statuses.size(), 1u);
  EXPECT_TRUE(statuses[0].alerting);
  EXPECT_EQ(statuses[0].severity, "page");
  ASSERT_EQ(statuses[0].burns.size(), 2u);  // default page + ticket pair
  EXPECT_TRUE(statuses[0].burns[0].alerting);
  EXPECT_GE(statuses[0].burns[0].short_burn, 14.4);
  EXPECT_LT(statuses[0].budget_remaining, 1.0);
}

TEST(SloTest, BriefSpikeDoesNotPage) {
  VirtualClock clock(seconds(1000));
  MetricsRegistry metrics;
  SloEngine engine(metrics, clock);
  SloObjective objective;
  objective.name = "lat";
  objective.kind = SloObjective::Kind::kLatency;
  objective.metric = "req.seconds";
  objective.threshold_seconds = 0.5;
  objective.target = 0.99;
  engine.add(objective);
  Histogram& h = metrics.histogram("req.seconds", {0.1, 0.5, 1.0});

  // An hour of good traffic, then one bad minute: the short window
  // burns hot (20x) but the long window stays calm, so no page fires.
  for (int minute = 0; minute < 60; ++minute) {
    for (int i = 0; i < 100; ++i) h.observe(0.01);
    clock.advance(seconds(60));
    engine.evaluate();
  }
  for (int i = 0; i < 100; ++i) h.observe(2.0);
  clock.advance(seconds(60));
  auto statuses = engine.evaluate();
  ASSERT_EQ(statuses.size(), 1u);
  EXPECT_FALSE(statuses[0].alerting);
}

TEST(SloTest, ErrorRateObjectiveReadsCounterPair) {
  VirtualClock clock(seconds(1000));
  MetricsRegistry metrics;
  SloEngine engine(metrics, clock);
  SloObjective objective;
  objective.name = "avail";
  objective.kind = SloObjective::Kind::kErrorRate;
  objective.metric = "req.errors";
  objective.total_metric = "req.total";
  objective.target = 0.99;
  engine.add(objective);

  metrics.counter("req.total").add(1000);
  metrics.counter("req.errors").add(30);
  auto statuses = engine.evaluate();
  ASSERT_EQ(statuses.size(), 1u);
  EXPECT_EQ(statuses[0].total, 1000u);
  EXPECT_EQ(statuses[0].good, 970u);
  EXPECT_DOUBLE_EQ(statuses[0].compliance, 0.97);
}

// ---------- JSONL exporter ----------

TEST(ExporterTest, WritesSampledTracesDurably) {
  std::string path = ::testing::TempDir() + "/infogram_traces.jsonl";
  std::remove(path.c_str());
  VirtualClock clock;
  JsonlExporter::Options options;
  options.sample_every = 2;
  JsonlExporter exporter(path, options);
  for (int i = 0; i < 5; ++i) {
    TraceContext trace(clock, "r" + std::to_string(i));
    exporter.export_trace(trace.finish());
  }
  // Deterministic 1-in-2: r0, r2, r4 exported (the first always is).
  EXPECT_EQ(exporter.exported(), 3u);
  EXPECT_EQ(exporter.skipped(), 2u);
  // Durable while the exporter is still open: flush-per-line semantics.
  auto lines = JsonlExporter::read_lines(path);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_NE(lines[0].find("\"root\":\"r0\""), std::string::npos);
  EXPECT_NE(lines[2].find("\"root\":\"r4\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(ExporterTest, TornTailDroppedOnRead) {
  std::string path = ::testing::TempDir() + "/infogram_traces_torn.jsonl";
  std::remove(path.c_str());
  VirtualClock clock;
  {
    JsonlExporter exporter(path);
    TraceContext trace(clock, "whole");
    exporter.export_trace(trace.finish());
  }
  {
    std::ofstream torn(path, std::ios::app);
    torn << "{\"type\":\"trace\",\"root\":\"to";  // crash mid-line
  }
  auto lines = JsonlExporter::read_lines(path);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("whole"), std::string::npos);
  std::remove(path.c_str());
}

TEST(ExporterTest, MissingFileReadsEmptyAndMetricsExport) {
  EXPECT_TRUE(JsonlExporter::read_lines("/nonexistent/dir/x.jsonl").empty());

  std::string path = ::testing::TempDir() + "/infogram_metrics.jsonl";
  std::remove(path.c_str());
  VirtualClock clock;
  JsonlExporter exporter(path);
  MetricsRegistry metrics;
  metrics.counter("requests.total").add(42);
  exporter.export_metrics(metrics, clock.now());
  auto lines = JsonlExporter::read_lines(path);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("\"requests.total\":42"), std::string::npos);
  std::remove(path.c_str());
}

// ---------- Telemetry records ----------

TEST(TelemetryTest, MetricsRecordRendersAllKinds) {
  VirtualClock clock;
  Telemetry telemetry(clock);
  telemetry.metrics().counter("requests.total").add(7);
  telemetry.metrics().gauge("exec.queue.depth").set(2);
  telemetry.metrics().histogram("request.seconds").observe(0.25);
  auto record = telemetry.metrics_record("metrics");
  EXPECT_EQ(record.keyword, "metrics");
  // InfoRecord::add namespaces attributes with the keyword.
  ASSERT_NE(record.find("metrics:requests.total"), nullptr);
  EXPECT_EQ(record.find("metrics:requests.total")->value, "7");
  EXPECT_EQ(record.find("metrics:exec.queue.depth")->value, "2");
  // Names already containing ':' are not re-namespaced by InfoRecord::add.
  ASSERT_NE(record.find("request.seconds:count"), nullptr);
  EXPECT_EQ(record.find("request.seconds:count")->value, "1");
  ASSERT_NE(record.find("request.seconds:p95"), nullptr);
}

TEST(TelemetryTest, MetricsRecordPrefixFilter) {
  VirtualClock clock;
  Telemetry telemetry(clock);
  telemetry.metrics().counter("gram.jobs.submitted").add();
  telemetry.metrics().counter("exec.jobs.queued").add();
  telemetry.metrics().counter("net.requests").add();
  auto record = telemetry.metrics_record("metrics.jobs", {"gram.", "exec."});
  EXPECT_NE(record.find("metrics.jobs:gram.jobs.submitted"), nullptr);
  EXPECT_NE(record.find("metrics.jobs:exec.jobs.queued"), nullptr);
  EXPECT_EQ(record.find("metrics.jobs:net.requests"), nullptr);
}

TEST(TelemetryTest, CompleteStoresTraceAndNotifiesListener) {
  VirtualClock clock;
  Telemetry telemetry(clock, 8);
  std::vector<TraceRecord> seen;
  telemetry.set_trace_listener([&seen](const TraceRecord& r) { seen.push_back(r); });
  auto trace = telemetry.start_trace("XRSL");
  clock.advance(ms(3));
  telemetry.complete(trace);
  EXPECT_EQ(telemetry.traces().size(), 1u);
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0].root, "XRSL");
  EXPECT_EQ(seen[0].duration, ms(3));

  auto record = telemetry.traces_record("traces");
  ASSERT_NE(record.find("traces:count"), nullptr);
  EXPECT_EQ(record.find("traces:count")->value, "1");
  EXPECT_NE(record.find(seen[0].id + ":root"), nullptr);
}

// ---------- Through the service (dogfooding) ----------

class ObsServiceTest : public ig::test::GridFixture {
 protected:
  ObsServiceTest() : backend(std::make_shared<exec::ForkBackend>(registry, *clock)) {}

  /// Default 1 (trace every request): these tests assert on specific
  /// requests' traces. Pass a rate to exercise the sampling contract.
  void start_service(std::uint64_t trace_sample_every = 1) {
    telemetry = std::make_shared<Telemetry>(*clock);
    core::InfoGramConfig config;
    config.host = "test.sim";
    config.telemetry = telemetry;
    config.trace_sample_every = trace_sample_every;
    monitor = std::make_shared<info::SystemMonitor>(*clock, config.host);
    ASSERT_TRUE(core::Configuration::table1().apply(*monitor, registry).ok());
    service = std::make_unique<core::InfoGramService>(monitor, backend, host_cred, &trust,
                                                      &gridmap, &policy, clock.get(),
                                                      logger, config);
    ASSERT_TRUE(service->start(*network).ok());
  }

  core::InfoGramClient make_client() {
    return core::InfoGramClient(*network, service->address(), alice, trust, *clock);
  }

  std::shared_ptr<exec::ForkBackend> backend;
  std::shared_ptr<Telemetry> telemetry;
  std::shared_ptr<info::SystemMonitor> monitor;
  std::unique_ptr<core::InfoGramService> service;
};

TEST_F(ObsServiceTest, MetricsQueryableInLdif) {
  start_service();
  auto client = make_client();
  ASSERT_TRUE(client.query_info({"CPULoad"}).ok());  // generate some traffic
  auto records = client.query_info({"metrics"});
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 1u);
  const auto& record = (*records)[0];
  EXPECT_EQ(record.keyword, "metrics");
  EXPECT_FALSE(record.attributes.empty());
  // The layers instrumented upstream of this query already counted.
  const auto* total = record.find("metrics:requests.total");
  ASSERT_NE(total, nullptr);
  EXPECT_GE(std::stoull(total->value), 1u);
  EXPECT_NE(record.find("metrics:auth.handshakes"), nullptr);
  EXPECT_NE(record.find("metrics:net.requests"), nullptr);
  EXPECT_NE(record.find("metrics:info.cache.misses"), nullptr);
  EXPECT_NE(record.find("request.seconds:p50"), nullptr);
}

TEST_F(ObsServiceTest, MetricsQueryableInXml) {
  start_service();
  auto client = make_client();
  auto records =
      client.query_info({"metrics"}, rsl::ResponseMode::kCached, rsl::OutputFormat::kXml);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 1u);
  EXPECT_EQ((*records)[0].keyword, "metrics");
  EXPECT_FALSE((*records)[0].attributes.empty());
}

TEST_F(ObsServiceTest, TracesQueryableInBothFormats) {
  start_service();
  auto client = make_client();
  ASSERT_TRUE(client.query_info({"Memory"}).ok());  // complete at least one trace
  for (auto format : {rsl::OutputFormat::kLdif, rsl::OutputFormat::kXml}) {
    auto records = client.query_info({"traces"}, rsl::ResponseMode::kCached, format);
    ASSERT_TRUE(records.ok());
    ASSERT_EQ(records->size(), 1u);
    const auto& record = (*records)[0];
    EXPECT_EQ(record.keyword, "traces");
    EXPECT_FALSE(record.attributes.empty());
    const auto* completed = record.find("traces:completed");
    ASSERT_NE(completed, nullptr);
    EXPECT_GE(std::stoull(completed->value), 1u);
  }
}

TEST_F(ObsServiceTest, SchemaListsObsKeywords) {
  start_service();
  auto client = make_client();
  ASSERT_TRUE(client.query_info({"metrics"}).ok());  // populate last_state
  auto schema = client.fetch_schema();
  ASSERT_TRUE(schema.ok());
  bool metrics = false, metrics_jobs = false, traces = false;
  for (const auto& kw : schema->keywords) {
    if (kw.keyword == "metrics") {
      metrics = true;
      EXPECT_EQ(kw.ttl, Duration(0));  // Table 1: execute per request
      EXPECT_FALSE(kw.attributes.empty());
    }
    if (kw.keyword == "metrics.jobs") metrics_jobs = true;
    if (kw.keyword == "traces") traces = true;
  }
  EXPECT_TRUE(metrics);
  EXPECT_TRUE(metrics_jobs);
  EXPECT_TRUE(traces);
}

TEST_F(ObsServiceTest, TracePropagatesThroughCombinedRequest) {
  start_service();
  auto client = make_client();
  auto resp = client.request("&(executable=/bin/echo)(arguments=hi)(info=CPULoad)");
  ASSERT_TRUE(resp.ok());
  ASSERT_TRUE(resp->job_contact.has_value());
  ASSERT_TRUE(client.wait(*resp->job_contact, seconds(30)).ok());

  auto traces = telemetry->traces().snapshot();
  ASSERT_FALSE(traces.empty());
  // The combined request's trace carries spans from every layer it crossed.
  const TraceRecord* combined = nullptr;
  for (const auto& t : traces) {
    for (const auto& s : t.spans) {
      if (s.name == "gram.submit") combined = &t;
    }
  }
  ASSERT_NE(combined, nullptr);
  EXPECT_EQ(combined->root, "XRSL");
  bool parse = false, submit = false, info = false, format = false;
  for (const auto& s : combined->spans) {
    if (s.name == "parse") parse = true;
    if (s.name == "gram.submit") submit = true;
    if (s.name == "info:CPULoad") info = true;
    if (s.name.rfind("format:", 0) == 0) format = true;
    if (s.parent_id != 0) {
      EXPECT_EQ(s.parent_id, combined->spans[0].id);  // all rooted
    }
  }
  EXPECT_TRUE(parse);
  EXPECT_TRUE(submit);
  EXPECT_TRUE(info);
  EXPECT_TRUE(format);

  // The job flowed through GRAM: submission counted, transitions counted.
  EXPECT_GE(telemetry->metrics().counter(metric::kJobsSubmitted).value(), 1u);
  EXPECT_GE(telemetry->metrics().counter("gram.transitions.DONE").value(), 1u);

  // The trace listener bridged completions into the Logger.
  bool trace_logged = false;
  for (const auto& event : log_sink->events()) {
    if (event.type == logging::EventType::kTrace) trace_logged = true;
  }
  EXPECT_TRUE(trace_logged);
}

TEST_F(ObsServiceTest, ErrorsAndAuthFailuresCounted) {
  start_service();
  auto client = make_client();
  EXPECT_FALSE(client.query_info({"Bogus"}).ok());
  EXPECT_GE(telemetry->metrics().counter(metric::kRequestsErrors).value(), 1u);
  auto traces = telemetry->traces().snapshot();
  ASSERT_FALSE(traces.empty());
  EXPECT_NE(traces.back().status, "ok");

  // A stranger without a trusted credential fails the handshake.
  security::CertificateAuthority rogue_ca("/O=Rogue/CN=CA", seconds(86400), *clock, 666);
  auto mallory = rogue_ca.issue("/O=Rogue/CN=mallory", security::CertType::kUser,
                                seconds(86400));
  core::InfoGramClient bad(*network, service->address(), mallory, trust, *clock);
  EXPECT_FALSE(bad.query_info({"CPULoad"}).ok());
  EXPECT_GE(telemetry->metrics().counter(metric::kAuthFailures).value(), 1u);
}

TEST_F(ObsServiceTest, WirePathSamplesOneRootInN) {
  start_service(4);
  auto client = make_client();
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(client.query_info({"CPULoad"}).ok());
  }
  // Roots 0 and 4 sampled; metrics keep full fidelity regardless.
  EXPECT_EQ(telemetry->traces().completed(), 2u);
  EXPECT_GE(telemetry->metrics().counter(metric::kRequestsTotal).value(), 8u);
  EXPECT_GE(telemetry->metrics().histogram(metric::kRequestSeconds).snapshot().stats.count(),
            8);
}

TEST_F(ObsServiceTest, SubmitAsyncHonorsSampling) {
  start_service(4);
  auto request = rsl::XrslRequest::parse("(info=CPULoad)");
  ASSERT_TRUE(request.ok());
  for (int i = 0; i < 8; ++i) {
    auto result = service->submit_async(request.value(), "/O=Grid/CN=alice", "alice").get();
    ASSERT_TRUE(result.ok());
  }
  // The async path obeys the same contract as the wire path: unsampled
  // requests pay metrics only, no span tree.
  EXPECT_EQ(telemetry->traces().completed(), 2u);
  EXPECT_EQ(telemetry->metrics().counter(metric::kRequestsTotal).value(), 8u);
  EXPECT_EQ(telemetry->metrics().histogram(metric::kRequestSeconds).snapshot().stats.count(),
            8);
}

TEST_F(ObsServiceTest, SloObjectivesQueryableThroughService) {
  start_service();
  auto client = make_client();
  ASSERT_TRUE(client.query_info({"CPULoad"}).ok());  // some traffic to measure
  auto records = client.query_info({"slo"});
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 1u);
  const auto& record = (*records)[0];
  EXPECT_EQ(record.keyword, "slo");
  // The service registers its default objectives at construction.
  const auto* count = record.find("slo:count");
  ASSERT_NE(count, nullptr);
  EXPECT_GE(std::stoull(count->value), 3u);
  ASSERT_NE(record.find("request-latency:compliance"), nullptr);
  EXPECT_EQ(record.find("request-latency:layer")->value, "core");
  EXPECT_EQ(record.find("request-availability:kind")->value, "error_rate");
  ASSERT_NE(record.find("info-query-latency:target"), nullptr);
  // Healthy service: nothing burning, full budget.
  EXPECT_EQ(record.find("request-latency:alerting")->value, "false");
  ASSERT_NE(record.find("request-latency:burn.page"), nullptr);
}

TEST_F(ObsServiceTest, AlertsKeywordQuietWhenHealthy) {
  start_service();
  auto client = make_client();
  ASSERT_TRUE(client.query_info({"Memory"}).ok());
  auto records = client.query_info({"alerts"});
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 1u);
  EXPECT_EQ((*records)[0].find("alerts:count")->value, "0");
  EXPECT_EQ((*records)[0].find("alerts:firing")->value, "none");
  // Reflection: the new keywords are self-describing like any provider.
  auto schema = client.fetch_schema();
  ASSERT_TRUE(schema.ok());
  bool slo = false, alerts = false;
  for (const auto& kw : schema->keywords) {
    if (kw.keyword == "slo") slo = true;
    if (kw.keyword == "alerts") alerts = true;
  }
  EXPECT_TRUE(slo);
  EXPECT_TRUE(alerts);
}

TEST_F(ObsServiceTest, ConfiguredExporterPersistsServedTraces) {
  std::string path = ::testing::TempDir() + "/infogram_service_traces.jsonl";
  std::remove(path.c_str());
  telemetry = std::make_shared<Telemetry>(*clock);
  core::InfoGramConfig config;
  config.host = "test.sim";
  config.telemetry = telemetry;
  config.trace_export_path = path;
  monitor = std::make_shared<info::SystemMonitor>(*clock, config.host);
  ASSERT_TRUE(core::Configuration::table1().apply(*monitor, registry).ok());
  service = std::make_unique<core::InfoGramService>(monitor, backend, host_cred, &trust,
                                                    &gridmap, &policy, clock.get(), logger,
                                                    config);
  ASSERT_TRUE(service->start(*network).ok());
  auto client = make_client();
  ASSERT_TRUE(client.query_info({"CPULoad"}).ok());

  auto lines = JsonlExporter::read_lines(path);
  ASSERT_FALSE(lines.empty());
  bool saw_query_trace = false;
  for (const auto& line : lines) {
    if (line.find("\"type\":\"trace\"") != std::string::npos &&
        line.find("info:CPULoad") != std::string::npos) {
      saw_query_trace = true;
    }
  }
  EXPECT_TRUE(saw_query_trace);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ig::obs
