#include <gtest/gtest.h>

#include "core/infogram_client.hpp"
#include "grid/deployment.hpp"

namespace ig::grid {
namespace {

constexpr Duration kWait = seconds(30);

ServicePackage analysis_package(int version) {
  ServicePackage pkg;
  pkg.name = "analysis";
  pkg.version = version;
  pkg.size_bytes = 2 << 20;  // 2 MiB "jar"
  pkg.tasks["analysis.jar"] = [version](exec::SandboxContext&,
                                        const std::vector<std::string>&) {
    return Result<std::string>("result from v" + std::to_string(version));
  };
  return pkg;
}

class DeploymentTest : public ::testing::Test {
 protected:
  DeploymentTest() : clock(seconds(1000)), vo("deploy", network, clock, 88) {
    user = vo.enroll_user("operator", "op");
    for (int i = 0; i < 3; ++i) {
      ResourceOptions options;
      options.host = "node" + std::to_string(i) + ".deploy";
      options.seed = 200 + static_cast<std::uint64_t>(i);
      EXPECT_TRUE(vo.add_resource(options).ok());
    }
  }

  VirtualClock clock;
  net::Network network;
  VirtualOrganization vo;
  security::Credential user;
  DeploymentRepository repository;
};

TEST_F(DeploymentTest, PublishEnforcesVersionMonotonicity) {
  ASSERT_TRUE(repository.publish(analysis_package(1)).ok());
  EXPECT_FALSE(repository.publish(analysis_package(1)).ok());
  ASSERT_TRUE(repository.publish(analysis_package(2)).ok());
  EXPECT_EQ(repository.latest_version("analysis").value(), 2);
  EXPECT_FALSE(repository.latest("missing").ok());
  EXPECT_EQ(repository.package_names(), (std::vector<std::string>{"analysis"}));
}

TEST_F(DeploymentTest, DeployInstallsTasksAndChargesTransfer) {
  ASSERT_TRUE(repository.publish(analysis_package(1)).ok());
  Deployer deployer(repository, clock, /*bytes_per_us=*/50.0);
  auto* node = vo.resources().front().get();
  EXPECT_FALSE(node->sandbox()->has_task("analysis.jar"));
  auto version = deployer.deploy("analysis", *node);
  ASSERT_TRUE(version.ok());
  EXPECT_EQ(version.value(), 1);
  EXPECT_TRUE(node->sandbox()->has_task("analysis.jar"));
  // 2 MiB at 50 B/us ~ 42ms of transfer time.
  EXPECT_GE(deployer.time_spent(), ms(40));
  EXPECT_EQ(deployer.installed_version("analysis", node->host()).value(), 1);
  EXPECT_FALSE(deployer.installed_version("analysis", "other.host").ok());
}

TEST_F(DeploymentTest, RedeployOfCurrentVersionIsFree) {
  ASSERT_TRUE(repository.publish(analysis_package(1)).ok());
  Deployer deployer(repository, clock);
  auto* node = vo.resources().front().get();
  ASSERT_TRUE(deployer.deploy("analysis", *node).ok());
  Duration after_first = deployer.time_spent();
  ASSERT_TRUE(deployer.deploy("analysis", *node).ok());
  EXPECT_EQ(deployer.time_spent(), after_first);
}

TEST_F(DeploymentTest, UpgradeAllRollsOutNewVersion) {
  ASSERT_TRUE(repository.publish(analysis_package(1)).ok());
  Deployer deployer(repository, clock);
  auto upgraded = deployer.upgrade_all("analysis", vo);
  ASSERT_TRUE(upgraded.ok());
  EXPECT_EQ(upgraded.value(), 3);

  // Jobs run v1 everywhere.
  core::InfoGramClient client(network, vo.resources()[1]->infogram_address(), user,
                              vo.trust(), clock);
  auto resp = client.request("&(executable=analysis.jar)(jobtype=jar)");
  ASSERT_TRUE(resp.ok());
  ASSERT_TRUE(client.wait(*resp->job_contact, kWait).ok());
  EXPECT_EQ(client.job_output(*resp->job_contact).value(), "result from v1");

  // Publish v2 and upgrade: every node reinstalls, jobs now run v2.
  ASSERT_TRUE(repository.publish(analysis_package(2)).ok());
  upgraded = deployer.upgrade_all("analysis", vo);
  ASSERT_TRUE(upgraded.ok());
  EXPECT_EQ(upgraded.value(), 3);
  auto again = deployer.upgrade_all("analysis", vo);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value(), 0);  // all current now

  auto resp2 = client.request("&(executable=analysis.jar)(jobtype=jar)");
  ASSERT_TRUE(resp2.ok());
  ASSERT_TRUE(client.wait(*resp2->job_contact, kWait).ok());
  EXPECT_EQ(client.job_output(*resp2->job_contact).value(), "result from v2");
}

TEST_F(DeploymentTest, PackagesCanShipInformationProviders) {
  ServicePackage pkg = analysis_package(1);
  // The package brings a new keyword backed by a standard command.
  auto config = core::Configuration::parse("500 Uptime /usr/bin/uptime\n");
  ASSERT_TRUE(config.ok());
  pkg.providers = config.value();
  ASSERT_TRUE(repository.publish(std::move(pkg)).ok());

  Deployer deployer(repository, clock);
  auto* node = vo.resources().front().get();
  EXPECT_EQ(node->monitor()->provider("Uptime"), nullptr);
  ASSERT_TRUE(deployer.deploy("analysis", *node).ok());
  EXPECT_NE(node->monitor()->provider("Uptime"), nullptr);

  core::InfoGramClient client(network, node->infogram_address(), user, vo.trust(), clock);
  auto records = client.query_info({"Uptime"});
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(records->size(), 1u);
}

}  // namespace
}  // namespace ig::grid
