#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "exec/command.hpp"
#include "info/degradation.hpp"
#include "info/managed_provider.hpp"
#include "info/provider.hpp"
#include "info/system_monitor.hpp"

namespace ig::info {
namespace {

// ---------- Degradation functions ----------

TEST(DegradationTest, BinaryStepsAtTtl) {
  BinaryDegradation f;
  EXPECT_DOUBLE_EQ(f.quality(ms(0), ms(100)), 100.0);
  EXPECT_DOUBLE_EQ(f.quality(ms(100), ms(100)), 100.0);
  EXPECT_DOUBLE_EQ(f.quality(ms(101), ms(100)), 0.0);
}

TEST(DegradationTest, LinearDecaysToZeroAtHorizon) {
  LinearDegradation f(2.0);  // zero at 2x ttl
  EXPECT_DOUBLE_EQ(f.quality(ms(0), ms(100)), 100.0);
  EXPECT_DOUBLE_EQ(f.quality(ms(100), ms(100)), 50.0);
  EXPECT_DOUBLE_EQ(f.quality(ms(200), ms(100)), 0.0);
  EXPECT_DOUBLE_EQ(f.quality(ms(500), ms(100)), 0.0);  // clamped
}

TEST(DegradationTest, ExponentialHalfLifeBehaviour) {
  ExponentialDegradation f(1.0);
  EXPECT_DOUBLE_EQ(f.quality(ms(0), ms(100)), 100.0);
  EXPECT_NEAR(f.quality(ms(100), ms(100)), 100.0 / M_E, 1e-9);
  EXPECT_GT(f.quality(ms(1000), ms(100)), 0.0);  // never exactly zero
}

TEST(DegradationTest, ZeroTtlMeansInstantExpiry) {
  for (auto f : std::vector<std::shared_ptr<DegradationFunction>>{
           std::make_shared<BinaryDegradation>(), std::make_shared<LinearDegradation>(),
           std::make_shared<ExponentialDegradation>()}) {
    EXPECT_DOUBLE_EQ(f->quality(ms(1), ms(0)), 0.0) << f->name();
  }
}

class DegradationMonotonicityTest
    : public ::testing::TestWithParam<std::shared_ptr<DegradationFunction>> {};

TEST_P(DegradationMonotonicityTest, NonIncreasingAndBounded) {
  const auto& f = GetParam();
  double previous = 100.0 + 1e-9;
  for (int age_ms = 0; age_ms <= 1000; age_ms += 10) {
    double q = f->quality(ms(age_ms), ms(100));
    EXPECT_LE(q, previous + 1e-9) << f->name() << " at age " << age_ms;
    EXPECT_GE(q, 0.0);
    EXPECT_LE(q, 100.0);
    previous = q;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, DegradationMonotonicityTest,
    ::testing::Values(std::make_shared<BinaryDegradation>(),
                      std::make_shared<LinearDegradation>(1.5),
                      std::make_shared<ExponentialDegradation>(0.7),
                      std::make_shared<ObservationCorrectedDegradation>(
                          std::make_shared<ExponentialDegradation>())));

TEST(DegradationTest, ObservationCorrectionSpeedsUpForVolatileData) {
  auto observed = std::make_shared<ObservationCorrectedDegradation>(
      std::make_shared<ExponentialDegradation>(), /*nominal_change_per_ttl=*/0.1);
  EXPECT_DOUBLE_EQ(observed->rate_factor(), 1.0);  // no observations yet
  double before = observed->quality(ms(100), ms(100));
  // Report large changes: one full TTL elapses and the value doubles.
  for (int i = 0; i < 5; ++i) observed->observe(1.0, ms(100), ms(100));
  EXPECT_GT(observed->rate_factor(), 1.0);
  EXPECT_LT(observed->quality(ms(100), ms(100)), before);
}

TEST(DegradationTest, ObservationCorrectionSlowsDownForStaticData) {
  auto observed = std::make_shared<ObservationCorrectedDegradation>(
      std::make_shared<ExponentialDegradation>(), 0.1);
  for (int i = 0; i < 5; ++i) observed->observe(0.001, ms(100), ms(100));
  EXPECT_LT(observed->rate_factor(), 1.0);
}

TEST(DegradationTest, FactoryByName) {
  EXPECT_NE(make_degradation("binary"), nullptr);
  EXPECT_NE(make_degradation("linear"), nullptr);
  EXPECT_NE(make_degradation("exponential"), nullptr);
  EXPECT_NE(make_degradation("observed"), nullptr);
  EXPECT_EQ(make_degradation("bogus"), nullptr);
}

// ---------- Sources ----------

class ProviderFixture : public ::testing::Test {
 protected:
  ProviderFixture()
      : system(std::make_shared<exec::SimSystem>(clock, 51, "info.host")),
        registry(exec::CommandRegistry::standard(clock, system, 53)) {}
  VirtualClock clock;
  std::shared_ptr<exec::SimSystem> system;
  std::shared_ptr<exec::CommandRegistry> registry;
};

TEST_F(ProviderFixture, ParseKeyValueOutput) {
  auto record = parse_key_value_output("Memory", "total: 100\nfree: 60\n\nraw line\n");
  EXPECT_EQ(record.keyword, "Memory");
  ASSERT_EQ(record.attributes.size(), 3u);
  EXPECT_EQ(record.attributes[0].name, "Memory:total");
  EXPECT_EQ(record.attributes[0].value, "100");
  EXPECT_EQ(record.attributes[2].value, "raw line");  // colon-less fallback
}

TEST_F(ProviderFixture, CommandSourceProduces) {
  CommandSource source("Memory", "/sbin/sysinfo.exe -mem", registry);
  EXPECT_EQ(source.keyword(), "Memory");
  EXPECT_EQ(source.command(), "/sbin/sysinfo.exe -mem");
  auto record = source.produce();
  ASSERT_TRUE(record.ok());
  EXPECT_NE(record->find("Memory:total"), nullptr);
}

TEST_F(ProviderFixture, CommandSourceFailuresSurface) {
  CommandSource bad_exit("X", "/bin/false", registry);
  EXPECT_FALSE(bad_exit.produce().ok());
  CommandSource unknown("Y", "/bin/bogus", registry);
  EXPECT_FALSE(unknown.produce().ok());
}

TEST_F(ProviderFixture, FunctionSourceProduces) {
  FunctionSource source("Uptime", [this]() -> Result<format::InfoRecord> {
    format::InfoRecord record;
    record.keyword = "Uptime";
    record.add("seconds", std::to_string(clock.now().count() / 1000000));
    return record;
  });
  auto record = source.produce();
  ASSERT_TRUE(record.ok());
  EXPECT_EQ(record->attributes[0].name, "Uptime:seconds");
}

TEST_F(ProviderFixture, ProcFileSourceProduces) {
  ProcFileSource source("MemInfo", "/proc/meminfo", system);
  auto record = source.produce();
  ASSERT_TRUE(record.ok());
  EXPECT_NE(record->find("MemInfo:MemTotal"), nullptr);
  ProcFileSource missing("Nope", "/proc/nope", system);
  EXPECT_FALSE(missing.produce().ok());
}

// ---------- ManagedProvider: the paper's SystemInformation semantics ----

class ManagedProviderTest : public ProviderFixture {
 protected:
  std::shared_ptr<ManagedProvider> make_provider(Duration ttl,
                                                 ProviderOptions extra = {}) {
    extra.ttl = ttl;
    return std::make_shared<ManagedProvider>(
        std::make_shared<CommandSource>("Load", "/usr/local/bin/cpuload.exe", registry),
        clock, extra);
  }
};

TEST_F(ManagedProviderTest, QueryStateBeforeFirstUpdateIsStale) {
  auto provider = make_provider(ms(100));
  auto result = provider->query_state();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.code(), ErrorCode::kStale);
  EXPECT_EQ(provider->validity(), 0);
}

TEST_F(ManagedProviderTest, UpdateThenQueryWithinTtl) {
  auto provider = make_provider(ms(100));
  ASSERT_TRUE(provider->update_state().ok());
  EXPECT_EQ(provider->refresh_count(), 1u);
  auto cached = provider->query_state();
  ASSERT_TRUE(cached.ok());
  EXPECT_EQ(cached->keyword, "Load");
  EXPECT_EQ(provider->validity(), 100);
}

TEST_F(ManagedProviderTest, QueryAfterTtlExpiryIsStale) {
  auto provider = make_provider(ms(100));
  ASSERT_TRUE(provider->update_state().ok());
  clock.advance(ms(101));
  EXPECT_FALSE(provider->query_state().ok());
}

TEST_F(ManagedProviderTest, CachedModeRefreshesOnlyWhenStale) {
  auto provider = make_provider(ms(100));
  ASSERT_TRUE(provider->get(rsl::ResponseMode::kCached).ok());
  ASSERT_TRUE(provider->get(rsl::ResponseMode::kCached).ok());
  EXPECT_EQ(provider->refresh_count(), 1u);  // second hit served from cache
  clock.advance(ms(150));
  ASSERT_TRUE(provider->get(rsl::ResponseMode::kCached).ok());
  EXPECT_EQ(provider->refresh_count(), 2u);
}

TEST_F(ManagedProviderTest, ImmediateModeAlwaysRefreshes) {
  auto provider = make_provider(ms(100000));
  ASSERT_TRUE(provider->get(rsl::ResponseMode::kImmediate).ok());
  ASSERT_TRUE(provider->get(rsl::ResponseMode::kImmediate).ok());
  EXPECT_EQ(provider->refresh_count(), 2u);
}

TEST_F(ManagedProviderTest, LastModeNeverRefreshes) {
  auto provider = make_provider(ms(100));
  EXPECT_EQ(provider->get(rsl::ResponseMode::kLast).code(), ErrorCode::kNotFound);
  ASSERT_TRUE(provider->update_state().ok());
  clock.advance(seconds(10));  // far past TTL
  auto last = provider->get(rsl::ResponseMode::kLast);
  ASSERT_TRUE(last.ok());
  EXPECT_EQ(provider->refresh_count(), 1u);
  // Binary degradation: stale cache has quality 0.
  EXPECT_DOUBLE_EQ(last->min_quality(), 0.0);
}

TEST_F(ManagedProviderTest, ZeroTtlExecutesEveryTime) {
  // Table 1: "0 specifies execution of the keyword every time it is
  // requested."
  auto provider = make_provider(ms(0));
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(provider->get(rsl::ResponseMode::kCached).ok());
  }
  EXPECT_EQ(provider->refresh_count(), 3u);
}

TEST_F(ManagedProviderTest, DelayThrottlesConsecutiveUpdates) {
  ProviderOptions options;
  options.delay = ms(50);
  auto provider = make_provider(ms(0), options);  // ttl 0: always wants to run
  ASSERT_TRUE(provider->update_state(true).ok());
  auto count_after_first = provider->refresh_count();
  // Within the delay window: served from cache even when forced.
  ASSERT_TRUE(provider->update_state(true).ok());
  EXPECT_EQ(provider->refresh_count(), count_after_first);
  clock.advance(ms(51));
  ASSERT_TRUE(provider->update_state(true).ok());
  EXPECT_EQ(provider->refresh_count(), count_after_first + 1);
  EXPECT_EQ(provider->delay(), ms(50));
  provider->set_delay(ms(10));
  EXPECT_EQ(provider->delay(), ms(10));
}

TEST_F(ManagedProviderTest, ConcurrentUpdatesRunCommandOnce) {
  // The paper: "monitors are used to perform only one such update at a
  // time". Threads racing a cold cache must trigger exactly one execution.
  auto provider = make_provider(ms(100000));
  std::vector<std::thread> threads;
  for (int i = 0; i < 8; ++i) {
    threads.emplace_back([&provider] {
      auto result = provider->update_state(false);
      ASSERT_TRUE(result.ok());
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(provider->refresh_count(), 1u);
}

TEST_F(ManagedProviderTest, QualityThresholdTriggersRefresh) {
  ProviderOptions options;
  options.degradation = std::make_shared<LinearDegradation>(1.0);  // 0 at ttl
  auto provider = make_provider(ms(100), options);
  ASSERT_TRUE(provider->update_state().ok());
  clock.advance(ms(50));  // quality now ~50
  auto ok_at_40 = provider->get_with_quality(40.0);
  ASSERT_TRUE(ok_at_40.ok());
  EXPECT_EQ(provider->refresh_count(), 1u);  // 50 >= 40: cache good enough
  auto refresh_at_90 = provider->get_with_quality(90.0);
  ASSERT_TRUE(refresh_at_90.ok());
  EXPECT_EQ(provider->refresh_count(), 2u);  // 50 < 90: regenerated
  EXPECT_DOUBLE_EQ(refresh_at_90->min_quality(), 100.0);
}

TEST_F(ManagedProviderTest, PerformanceStatsTrackUpdateTime) {
  auto provider = make_provider(ms(0));
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(provider->update_state(true).ok());
    clock.advance(ms(1));
  }
  auto stats = provider->performance();
  EXPECT_EQ(stats.count(), 5);
  // cpuload.exe costs 10ms; timing is in seconds.
  EXPECT_NEAR(stats.mean(), 0.010, 0.001);
  EXPECT_GE(provider->average_update_time(), ms(9));
}

TEST_F(ManagedProviderTest, SourceErrorPropagates) {
  auto provider = std::make_shared<ManagedProvider>(
      std::make_shared<CommandSource>("Bad", "/bin/false", registry), clock,
      ProviderOptions{});
  EXPECT_FALSE(provider->update_state().ok());
  EXPECT_EQ(provider->refresh_count(), 0u);
}

TEST_F(ManagedProviderTest, AdaptiveTtlGrowsForStaticData) {
  ProviderOptions options;
  options.adaptive_ttl = true;
  options.min_ttl = ms(10);
  options.max_ttl = seconds(100);
  options.ttl = ms(100);
  auto provider = std::make_shared<ManagedProvider>(
      std::make_shared<FunctionSource>("Const",
                                       []() -> Result<format::InfoRecord> {
                                         format::InfoRecord r;
                                         r.keyword = "Const";
                                         r.add("v", "42");
                                         return r;
                                       }),
      clock, options);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(provider->update_state(true).ok());
    clock.advance(ms(200));
  }
  EXPECT_GT(provider->ttl(), ms(100));
}

TEST_F(ManagedProviderTest, AdaptiveTtlShrinksForVolatileData) {
  ProviderOptions options;
  options.adaptive_ttl = true;
  options.min_ttl = ms(10);
  options.max_ttl = seconds(100);
  options.ttl = ms(100);
  int counter = 0;
  auto provider = std::make_shared<ManagedProvider>(
      std::make_shared<FunctionSource>("Volatile",
                                       [&counter]() -> Result<format::InfoRecord> {
                                         format::InfoRecord r;
                                         r.keyword = "Volatile";
                                         r.add("v", std::to_string(1 << (counter++)));
                                         return r;
                                       }),
      clock, options);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(provider->update_state(true).ok());
    clock.advance(ms(200));
  }
  EXPECT_LT(provider->ttl(), ms(100));
  EXPECT_GE(provider->ttl(), ms(10));
}

// ---------- SystemMonitor ----------

class SystemMonitorTest : public ProviderFixture {
 protected:
  SystemMonitorTest() : monitor(clock, "monitor.test") {
    auto add = [this](const std::string& kw, const std::string& cmd, Duration ttl) {
      ProviderOptions options;
      options.ttl = ttl;
      ASSERT_TRUE(
          monitor.add_source(std::make_shared<CommandSource>(kw, cmd, registry), options)
              .ok());
    };
    add("Memory", "/sbin/sysinfo.exe -mem", ms(80));
    add("CPU", "/sbin/sysinfo.exe -cpu", ms(100));
    add("CPULoad", "/usr/local/bin/cpuload.exe", ms(0));
  }
  SystemMonitor monitor;
};

TEST_F(SystemMonitorTest, DuplicateKeywordRejected) {
  auto status = monitor.add_source(
      std::make_shared<CommandSource>("Memory", "date", registry), ProviderOptions{});
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), ErrorCode::kAlreadyExists);
}

TEST_F(SystemMonitorTest, KeywordLookup) {
  EXPECT_EQ(monitor.provider_count(), 3u);
  EXPECT_NE(monitor.provider("Memory"), nullptr);
  EXPECT_EQ(monitor.provider("Nope"), nullptr);
  EXPECT_EQ(monitor.keywords().size(), 3u);
}

TEST_F(SystemMonitorTest, QuerySelectedKeywords) {
  auto records = monitor.query({"Memory", "CPU"}, rsl::ResponseMode::kCached);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 2u);
  EXPECT_EQ((*records)[0].keyword, "Memory");
  EXPECT_EQ((*records)[1].keyword, "CPU");
}

TEST_F(SystemMonitorTest, QueryAllExpandsAndDedups) {
  auto records = monitor.query({"all", "Memory"}, rsl::ResponseMode::kCached);
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(records->size(), 3u);  // Memory deduped
}

TEST_F(SystemMonitorTest, UnknownKeywordFailsWholeQuery) {
  auto records = monitor.query({"Memory", "Bogus"}, rsl::ResponseMode::kCached);
  ASSERT_FALSE(records.ok());
  EXPECT_EQ(records.code(), ErrorCode::kNotFound);
}

TEST_F(SystemMonitorTest, FiltersApplyToRecords) {
  auto records =
      monitor.query({"Memory"}, rsl::ResponseMode::kCached, std::nullopt, {"Memory:total"});
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->front().attributes.size(), 1u);
  EXPECT_EQ(records->front().attributes[0].name, "Memory:total");
}

TEST_F(SystemMonitorTest, PerformanceRecord) {
  ASSERT_TRUE(monitor.query({"all"}, rsl::ResponseMode::kImmediate).ok());
  auto perf = monitor.performance_record({"Memory", "CPULoad"});
  ASSERT_TRUE(perf.ok());
  EXPECT_EQ(perf->keyword, "Performance");
  EXPECT_NE(perf->find("Memory:mean_s"), nullptr);
  EXPECT_NE(perf->find("Memory:stddev_s"), nullptr);
  EXPECT_NE(perf->find("CPULoad:count"), nullptr);
  EXPECT_FALSE(monitor.performance_record({"Bogus"}).ok());
}

TEST_F(SystemMonitorTest, SchemaReflectsProvidersAndTypes) {
  // Before any execution the schema lists keywords without attributes.
  auto empty_schema = monitor.schema();
  EXPECT_EQ(empty_schema.keywords.size(), 3u);
  EXPECT_TRUE(empty_schema.find("Memory")->attributes.empty());

  ASSERT_TRUE(monitor.query({"all"}, rsl::ResponseMode::kImmediate).ok());
  auto schema = monitor.schema();
  const auto* memory = schema.find("Memory");
  ASSERT_NE(memory, nullptr);
  EXPECT_EQ(memory->command, "/sbin/sysinfo.exe -mem");
  EXPECT_EQ(memory->ttl, ms(80));
  ASSERT_FALSE(memory->attributes.empty());
  EXPECT_EQ(memory->attributes[0].type, "integer");
  const auto* load = schema.find("CPULoad");
  ASSERT_NE(load, nullptr);
  ASSERT_FALSE(load->attributes.empty());
  EXPECT_EQ(load->attributes[0].type, "float");
}

TEST_F(SystemMonitorTest, TotalRefreshesAccumulate) {
  auto before = monitor.total_refreshes();
  ASSERT_TRUE(monitor.query({"all"}, rsl::ResponseMode::kImmediate).ok());
  EXPECT_EQ(monitor.total_refreshes(), before + 3);
}

TEST_F(SystemMonitorTest, CachedQueriesShareExecutions) {
  ASSERT_TRUE(monitor.query({"Memory"}, rsl::ResponseMode::kCached).ok());
  ASSERT_TRUE(monitor.query({"Memory"}, rsl::ResponseMode::kCached).ok());
  ASSERT_TRUE(monitor.query({"Memory"}, rsl::ResponseMode::kCached).ok());
  EXPECT_EQ(monitor.provider("Memory")->refresh_count(), 1u);
}

TEST_F(SystemMonitorTest, QualityThresholdPassedThrough) {
  ASSERT_TRUE(monitor.query({"Memory"}, rsl::ResponseMode::kCached).ok());
  clock.advance(ms(81));  // past TTL: binary quality is 0
  auto records = monitor.query({"Memory"}, rsl::ResponseMode::kCached, 50.0);
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(monitor.provider("Memory")->refresh_count(), 2u);
}

}  // namespace
}  // namespace ig::info
