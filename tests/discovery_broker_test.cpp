// Integration: a broker assembled from P2P discovery instead of static
// configuration — a client joins the overlay, discovers every InfoGram
// endpoint, and runs load-aware placement against what it found. This is
// the decentralized variant of the sporadic-grid flow.
#include <gtest/gtest.h>

#include "grid/broker.hpp"
#include "grid/p2p_discovery.hpp"
#include "grid/virtual_organization.hpp"

namespace ig::grid {
namespace {

constexpr Duration kWait = seconds(60);

TEST(DiscoveryBrokerTest, BrokerBuiltFromGossipView) {
  VirtualClock clock(seconds(1000));
  net::Network network;
  VirtualOrganization vo("p2p-vo", network, clock, 555);
  auto user = vo.enroll_user("roamer", "roam");

  // Three resources, each with a discovery peer advertising its InfoGram
  // endpoint and live load.
  std::vector<std::unique_ptr<DiscoveryPeer>> peers;
  for (int i = 0; i < 3; ++i) {
    ResourceOptions options;
    options.host = "node" + std::to_string(i) + ".p2p-vo";
    options.seed = 900 + static_cast<std::uint64_t>(i) * 3;
    auto resource = vo.add_resource(options);
    ASSERT_TRUE(resource.ok());
    auto system = (*resource)->system();
    peers.push_back(std::make_unique<DiscoveryPeer>(
        network, clock, (*resource)->host(), (*resource)->infogram_address(),
        [system] { return system->cpu_load(); }, GossipConfig{},
        1234 + static_cast<std::uint64_t>(i)));
  }
  for (int i = 1; i < 3; ++i) peers[i]->add_neighbor(peers[i - 1]->gossip_address());

  // A late-joining client peer bootstraps off one rendezvous contact.
  DiscoveryPeer client_peer(network, clock, "laptop.p2p-vo", {"laptop.p2p-vo", 0},
                            nullptr, GossipConfig{}, 777);
  client_peer.add_neighbor(peers[0]->gossip_address());
  for (int round = 0; round < 8; ++round) {
    client_peer.tick();
    for (auto& peer : peers) peer->tick();
    clock.advance(ms(100));
  }
  auto view = client_peer.view();
  // The client sees itself plus every resource.
  ASSERT_EQ(view.size(), 4u);

  // Assemble the broker purely from discovered endpoints.
  LoadAwareBroker broker;
  for (const auto& advert : view) {
    if (advert.host == "laptop.p2p-vo") continue;
    broker.add_resource(advert.host,
                        std::make_shared<core::InfoGramClient>(
                            network, advert.infogram_address, user, vo.trust(), clock));
  }
  ASSERT_EQ(broker.resource_count(), 3u);

  rsl::XrslBuilder builder;
  builder.executable("/bin/echo").argument("discovered");
  auto placement = broker.submit(builder.request());
  ASSERT_TRUE(placement.ok());
  auto* client = broker.client(placement->host);
  ASSERT_NE(client, nullptr);
  auto status = client->wait(placement->contact, kWait);
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status->state, exec::JobState::kDone);
  EXPECT_EQ(client->job_output(placement->contact).value(), "discovered\n");
}

TEST(DiscoveryBrokerTest, AdvertsCarryUsableLoadSignal) {
  VirtualClock clock(seconds(1000));
  net::Network network;
  // Two peers with fixed, distinct loads.
  DiscoveryPeer light(network, clock, "light.sim", {"light.sim", 2135},
                      [] { return 0.1; }, GossipConfig{}, 1);
  DiscoveryPeer heavy(network, clock, "heavy.sim", {"heavy.sim", 2135},
                      [] { return 5.0; }, GossipConfig{}, 2);
  light.add_neighbor(heavy.gossip_address());
  light.tick();
  auto view = light.view();
  ASSERT_EQ(view.size(), 2u);
  double light_load = 0.0;
  double heavy_load = 0.0;
  for (const auto& advert : view) {
    if (advert.host == "light.sim") light_load = advert.load;
    if (advert.host == "heavy.sim") heavy_load = advert.load;
  }
  EXPECT_LT(light_load, heavy_load);
}

}  // namespace
}  // namespace ig::grid
