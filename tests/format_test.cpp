#include <gtest/gtest.h>

#include "common/strings.hpp"
#include "format/ldif.hpp"
#include "format/record.hpp"
#include "format/schema.hpp"
#include "format/xml.hpp"

namespace ig::format {
namespace {

InfoRecord sample_record() {
  InfoRecord record;
  record.keyword = "Memory";
  record.generated_at = seconds(100);
  record.ttl = ms(80);
  record.add("total", "524288", 100.0);
  record.add("free", "231115", 92.5);
  return record;
}

// ---------- Record model ----------

TEST(RecordTest, AddNamespacesBareNames) {
  InfoRecord record = sample_record();
  EXPECT_EQ(record.attributes[0].name, "Memory:total");
  // Already-namespaced names are kept as-is.
  record.add("Other:attr", "x");
  EXPECT_EQ(record.attributes[2].name, "Other:attr");
}

TEST(RecordTest, FindByFullAndBareName) {
  InfoRecord record = sample_record();
  EXPECT_NE(record.find("Memory:total"), nullptr);
  EXPECT_NE(record.find("total"), nullptr);
  EXPECT_EQ(record.find("bogus"), nullptr);
}

TEST(RecordTest, FilteredByGlobs) {
  InfoRecord record = sample_record();
  auto only_total = record.filtered({"*total*"});
  ASSERT_EQ(only_total.attributes.size(), 1u);
  EXPECT_EQ(only_total.attributes[0].name, "Memory:total");
  EXPECT_EQ(record.filtered({}).attributes.size(), 2u);        // no filter = all
  EXPECT_EQ(record.filtered({"CPU:*"}).attributes.size(), 0u);
}

TEST(RecordTest, MinQuality) {
  InfoRecord record = sample_record();
  EXPECT_DOUBLE_EQ(record.min_quality(), 92.5);
  InfoRecord empty;
  EXPECT_DOUBLE_EQ(empty.min_quality(), 100.0);
}

// ---------- Base64 ----------

struct B64Case {
  const char* plain;
  const char* encoded;
};

class Base64Test : public ::testing::TestWithParam<B64Case> {};

TEST_P(Base64Test, EncodeDecodeKnownVectors) {
  EXPECT_EQ(base64_encode(GetParam().plain), GetParam().encoded);
  auto decoded = base64_decode(GetParam().encoded);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), GetParam().plain);
}

INSTANTIATE_TEST_SUITE_P(Rfc4648, Base64Test,
                         ::testing::Values(B64Case{"", ""}, B64Case{"f", "Zg=="},
                                           B64Case{"fo", "Zm8="}, B64Case{"foo", "Zm9v"},
                                           B64Case{"foob", "Zm9vYg=="},
                                           B64Case{"fooba", "Zm9vYmE="},
                                           B64Case{"foobar", "Zm9vYmFy"}));

TEST(Base64Test, RejectsInvalidCharacters) {
  EXPECT_FALSE(base64_decode("!!!!").ok());
}

// ---------- LDIF ----------

TEST(LdifTest, SafeStringClassification) {
  EXPECT_TRUE(ldif_safe("plain value"));
  EXPECT_TRUE(ldif_safe(""));
  EXPECT_FALSE(ldif_safe(" leading space"));
  EXPECT_FALSE(ldif_safe(":starts with colon"));
  EXPECT_FALSE(ldif_safe("<angle"));
  EXPECT_FALSE(ldif_safe("line\nbreak"));
  EXPECT_FALSE(ldif_safe("non-ascii \xc3\xa9"));
}

TEST(LdifTest, RendersEntry) {
  LdifOptions options;
  options.host = "hot.mcs.anl.gov";
  std::string ldif = to_ldif(sample_record(), options);
  EXPECT_NE(ldif.find("dn: kw=Memory, host=hot.mcs.anl.gov, o=Grid"), std::string::npos);
  EXPECT_NE(ldif.find("Memory:total: 524288"), std::string::npos);
  EXPECT_NE(ldif.find("Memory:free;quality: 92.50"), std::string::npos);
}

TEST(LdifTest, RoundtripPlain) {
  auto records = std::vector<InfoRecord>{sample_record()};
  auto parsed = parse_ldif(to_ldif(records));
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->size(), 1u);
  const InfoRecord& back = parsed->front();
  EXPECT_EQ(back.keyword, "Memory");
  EXPECT_EQ(back.generated_at, seconds(100));
  EXPECT_EQ(back.ttl, ms(80));
  ASSERT_EQ(back.attributes.size(), 2u);
  EXPECT_EQ(back.attributes[0].value, "524288");
  EXPECT_DOUBLE_EQ(back.attributes[1].quality, 92.5);
}

TEST(LdifTest, RoundtripUnsafeValuesViaBase64) {
  InfoRecord record;
  record.keyword = "Weird";
  record.generated_at = seconds(1);
  record.ttl = ms(10);
  record.add("v1", " leading space");
  record.add("v2", "multi\nline");
  record.add("v3", ":colon first");
  auto parsed = parse_ldif(to_ldif(record));
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->size(), 1u);
  EXPECT_EQ(parsed->front().attributes[0].value, " leading space");
  EXPECT_EQ(parsed->front().attributes[1].value, "multi\nline");
  EXPECT_EQ(parsed->front().attributes[2].value, ":colon first");
}

TEST(LdifTest, LongLinesFoldAndUnfold) {
  InfoRecord record;
  record.keyword = "Long";
  record.generated_at = seconds(1);
  record.ttl = ms(10);
  std::string long_value(300, 'x');
  record.add("big", long_value);
  std::string ldif = to_ldif(record);
  // Every physical line respects the fold column.
  for (const auto& line : ig::strings::split(ldif, '\n')) {
    EXPECT_LE(line.size(), 76u);
  }
  auto parsed = parse_ldif(ldif);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->front().attributes[0].value, long_value);
}

TEST(LdifTest, MultipleRecordsSeparatedByBlankLines) {
  InfoRecord a = sample_record();
  InfoRecord b;
  b.keyword = "CPU";
  b.generated_at = seconds(101);
  b.ttl = ms(100);
  b.add("count", "4");
  auto parsed = parse_ldif(to_ldif(std::vector<InfoRecord>{a, b}));
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->size(), 2u);
  EXPECT_EQ(parsed->at(1).keyword, "CPU");
}

TEST(LdifTest, ParseRejectsGarbage) {
  EXPECT_FALSE(parse_ldif("dn: kw=x\nno colon here at all maybe?\x01").ok());
  EXPECT_FALSE(parse_ldif("dn: kw=x\nttl: notanumber\n").ok());
}

// ---------- XML ----------

TEST(XmlTest, EscapeRoundtripThroughParser) {
  InfoRecord record;
  record.keyword = "Esc";
  record.generated_at = seconds(1);
  record.ttl = ms(10);
  record.add("tricky", R"(<a & "b" 'c'>)");
  auto parsed = parse_xml(to_xml(std::vector<InfoRecord>{record}));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->front().attributes[0].value, R"(<a & "b" 'c'>)");
}

TEST(XmlTest, RoundtripRecords) {
  auto parsed = parse_xml(to_xml(std::vector<InfoRecord>{sample_record()}));
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->size(), 1u);
  EXPECT_EQ(parsed->front().keyword, "Memory");
  EXPECT_EQ(parsed->front().ttl, ms(80));
  ASSERT_EQ(parsed->front().attributes.size(), 2u);
  EXPECT_DOUBLE_EQ(parsed->front().attributes[1].quality, 92.5);
}

TEST(XmlTest, ParserHandlesSelfClosingAndNesting) {
  auto root = parse_xml_element("<a x=\"1\"><b/><c>text</c><b y=\"2\"/></a>");
  ASSERT_TRUE(root.ok());
  EXPECT_EQ(root->name, "a");
  EXPECT_EQ(root->attribute_or("x", ""), "1");
  EXPECT_EQ(root->children.size(), 3u);
  EXPECT_EQ(root->children_named("b").size(), 2u);
  ASSERT_NE(root->child("c"), nullptr);
  EXPECT_EQ(root->child("c")->text, "text");
}

TEST(XmlTest, ParserAcceptsDeclaration) {
  auto root = parse_xml_element("<?xml version=\"1.0\"?>\n<doc/>");
  ASSERT_TRUE(root.ok());
  EXPECT_EQ(root->name, "doc");
}

class XmlParseErrorTest : public ::testing::TestWithParam<const char*> {};

TEST_P(XmlParseErrorTest, Rejects) {
  EXPECT_FALSE(parse_xml_element(GetParam()).ok()) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Corpus, XmlParseErrorTest,
                         ::testing::Values("", "<a>", "<a></b>", "<a attr></a>",
                                           "<a x=1></a>", "<a>&bogus;</a>",
                                           "<a></a><b></b>", "text only"));

// ---------- Schema ----------

TEST(SchemaTest, XmlRoundtrip) {
  ServiceSchema schema;
  schema.service = "infogram@test";
  KeywordSchema kw;
  kw.keyword = "Memory";
  kw.command = "/sbin/sysinfo.exe -mem";
  kw.ttl = ms(80);
  kw.attributes.push_back({"Memory:total", "integer", "total kB"});
  kw.attributes.push_back({"Memory:free", "integer", ""});
  schema.keywords.push_back(kw);
  auto parsed = ServiceSchema::parse_xml(schema.to_xml());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value(), schema);
}

TEST(SchemaTest, FindKeyword) {
  ServiceSchema schema;
  schema.keywords.push_back({"CPU", "cmd", ms(1), {}});
  EXPECT_NE(schema.find("CPU"), nullptr);
  EXPECT_EQ(schema.find("Memory"), nullptr);
}

TEST(SchemaTest, ParseRejectsWrongRoot) {
  EXPECT_FALSE(ServiceSchema::parse_xml("<notschema/>").ok());
}

}  // namespace
}  // namespace ig::format
