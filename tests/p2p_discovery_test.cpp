#include <gtest/gtest.h>

#include "grid/p2p_discovery.hpp"

namespace ig::grid {
namespace {

class P2pTest : public ::testing::Test {
 protected:
  P2pTest() : clock(seconds(1000)) {}

  std::unique_ptr<DiscoveryPeer> make_peer(int index, GossipConfig config = {}) {
    std::string host = "peer" + std::to_string(index) + ".p2p";
    return std::make_unique<DiscoveryPeer>(
        network, clock, host, net::Address{host, 2135},
        [index] { return 0.1 * index; }, config,
        1000 + static_cast<std::uint64_t>(index));
  }

  VirtualClock clock;
  net::Network network;
};

TEST(AdvertTest, SerializeParseRoundtrip) {
  std::vector<Advertisement> adverts = {
      {"a.p2p", {"a.p2p", 2135}, 0.5, seconds(10)},
      {"b.p2p", {"b.p2p", 2135}, 1.25, seconds(20)},
  };
  auto parsed = parse_adverts(serialize_adverts(adverts));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value(), adverts);
  EXPECT_FALSE(parse_adverts("not\ttab\tseparated").ok());
  EXPECT_FALSE(parse_adverts("a\tb\tx\ty\tz\n").ok());
}

TEST_F(P2pTest, PeerKnowsItself) {
  auto peer = make_peer(0);
  auto view = peer->view();
  ASSERT_EQ(view.size(), 1u);
  EXPECT_EQ(view[0].host, "peer0.p2p");
  EXPECT_TRUE(peer->lookup("peer0.p2p").ok());
  EXPECT_FALSE(peer->lookup("stranger").ok());
}

TEST_F(P2pTest, TwoPeersExchangeAdverts) {
  auto a = make_peer(0);
  auto b = make_peer(1);
  a->add_neighbor(b->gossip_address());
  a->tick();  // push-pull: both sides learn of each other
  EXPECT_EQ(a->view().size(), 2u);
  EXPECT_EQ(b->view().size(), 2u);
  auto found = a->lookup("peer1.p2p");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found->infogram_address.port, 2135);
}

TEST_F(P2pTest, EpidemicConvergenceOnALine) {
  // Worst-case bootstrap topology: a line. Even so, push-pull gossip with
  // learned peers converges in a handful of rounds for 16 peers.
  constexpr int kPeers = 16;
  std::vector<std::unique_ptr<DiscoveryPeer>> peers;
  for (int i = 0; i < kPeers; ++i) peers.push_back(make_peer(i));
  for (int i = 1; i < kPeers; ++i) {
    peers[i]->add_neighbor(peers[i - 1]->gossip_address());
  }
  int rounds = 0;
  auto converged = [&] {
    for (const auto& peer : peers) {
      if (peer->view().size() != kPeers) return false;
    }
    return true;
  };
  while (!converged() && rounds < 40) {
    for (auto& peer : peers) peer->tick();
    clock.advance(ms(100));
    ++rounds;
  }
  EXPECT_TRUE(converged()) << "not converged after " << rounds << " rounds";
  EXPECT_LE(rounds, 20);
}

TEST_F(P2pTest, DepartedPeerExpires) {
  GossipConfig config;
  config.advert_ttl = seconds(5);
  auto a = make_peer(0, config);
  {
    auto b = make_peer(1, config);
    a->add_neighbor(b->gossip_address());
    a->tick();
    EXPECT_EQ(a->view().size(), 2u);
  }  // b leaves the overlay
  clock.advance(seconds(6));
  // Before a maintenance round the advert is still present but stale...
  EXPECT_EQ(a->lookup("peer1.p2p").code(), ErrorCode::kStale);
  a->tick();
  // ...after it, it is gone entirely.
  EXPECT_EQ(a->view().size(), 1u);
  EXPECT_EQ(a->lookup("peer1.p2p").code(), ErrorCode::kNotFound);
}

TEST_F(P2pTest, NewerAdvertWins) {
  auto a = make_peer(0);
  auto b = make_peer(1);
  a->add_neighbor(b->gossip_address());
  a->tick();
  auto first = a->lookup("peer1.p2p");
  ASSERT_TRUE(first.ok());
  clock.advance(seconds(2));
  a->tick();  // b re-advertises with a newer stamp
  auto second = a->lookup("peer1.p2p");
  ASSERT_TRUE(second.ok());
  EXPECT_GT(second->stamped.count(), first->stamped.count());
}

TEST_F(P2pTest, UnreachablePeersAreSkipped) {
  auto a = make_peer(0);
  a->add_neighbor({"ghost.p2p", 7400});  // never listening
  a->tick();  // must not fail
  EXPECT_EQ(a->view().size(), 1u);
}

TEST_F(P2pTest, GossipTrafficIsBoundedByFanout) {
  GossipConfig config;
  config.fanout = 2;
  auto a = make_peer(0, config);
  auto b = make_peer(1, config);
  auto c = make_peer(2, config);
  auto d = make_peer(3, config);
  a->add_neighbor(b->gossip_address());
  a->add_neighbor(c->gossip_address());
  a->add_neighbor(d->gossip_address());
  for (int round = 0; round < 5; ++round) a->tick();
  EXPECT_LE(a->messages_sent(), 5u * 2u);
}

}  // namespace
}  // namespace ig::grid
