#include <gtest/gtest.h>

#include "core/config.hpp"
#include "exec/fork_backend.hpp"
#include "core/infogram_client.hpp"
#include "soap/gateway.hpp"
#include "test_util.hpp"

namespace ig::soap {
namespace {

constexpr Duration kWait = seconds(30);

// ---------- Envelope encoding ----------

TEST(EnvelopeTest, OperationRoundtrip) {
  Operation op;
  op.name = "submitJob";
  op.parameters["rsl"] = "&(executable=/bin/echo)(arguments=a b)";
  op.parameters["callback"] = "client:9000";
  auto parsed = parse_envelope(to_envelope(op));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value(), op);
}

TEST(EnvelopeTest, EscapedContentSurvives) {
  Operation op;
  op.name = "queryInfo";
  op.parameters["keys"] = R"(<Memory> & "CPU")";
  auto parsed = parse_envelope(to_envelope(op));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->parameters.at("keys"), R"(<Memory> & "CPU")");
}

TEST(EnvelopeTest, FaultRoundtrip) {
  Error original(ErrorCode::kDenied, "no gridmap entry");
  std::string xml = to_fault(original);
  EXPECT_TRUE(is_fault(xml));
  auto fault = parse_fault(xml);
  ASSERT_TRUE(fault.ok());
  EXPECT_EQ(fault->error.code, ErrorCode::kDenied);
  EXPECT_EQ(fault->error.message, "no gridmap entry");
}

TEST(EnvelopeTest, ParseRejectsNonSoap) {
  EXPECT_FALSE(parse_envelope("<html></html>").ok());
  EXPECT_FALSE(parse_envelope("not xml at all").ok());
  EXPECT_FALSE(parse_fault(to_envelope(Operation{"op", {}})).ok());
}

// ---------- Gateway over the wire ----------

class SoapGatewayTest : public ig::test::GridFixture {
 protected:
  SoapGatewayTest() : backend(std::make_shared<exec::ForkBackend>(registry, *clock)) {
    monitor = std::make_shared<info::SystemMonitor>(*clock, "test.sim");
    EXPECT_TRUE(core::Configuration::table1().apply(*monitor, registry).ok());
    core::InfoGramConfig config;
    config.host = "test.sim";
    service = std::make_unique<core::InfoGramService>(monitor, backend, host_cred, &trust,
                                                      &gridmap, &policy, clock.get(),
                                                      logger, config);
    EXPECT_TRUE(service->start(*network).ok());
    gateway = std::make_unique<SoapGateway>(*service, host_cred, &trust, &gridmap,
                                            clock.get());
    EXPECT_TRUE(gateway->start(*network).ok());
  }

  SoapClient make_client() {
    return SoapClient(*network, gateway->address(), alice, trust, *clock);
  }

  std::shared_ptr<exec::ForkBackend> backend;
  std::shared_ptr<info::SystemMonitor> monitor;
  std::unique_ptr<core::InfoGramService> service;
  std::unique_ptr<SoapGateway> gateway;
};

TEST_F(SoapGatewayTest, GatewayListensOnItsOwnPort) {
  EXPECT_EQ(gateway->address().port, 8080);
  EXPECT_EQ(gateway->address().host, "test.sim");
}

TEST_F(SoapGatewayTest, SubmitAndWaitJob) {
  auto client = make_client();
  auto contact = client.submit_job("&(executable=/bin/echo)(arguments=via soap)");
  ASSERT_TRUE(contact.ok());
  auto state = client.wait(*contact, kWait);
  ASSERT_TRUE(state.ok());
  EXPECT_EQ(state.value(), exec::JobState::kDone);
  EXPECT_EQ(client.job_output(*contact).value(), "via soap\n");
}

TEST_F(SoapGatewayTest, QueryInfoReturnsParsedRecords) {
  auto client = make_client();
  auto records = client.query_info({"Memory", "CPU"});
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 2u);
  EXPECT_NE((*records)[0].find("Memory:total"), nullptr);
  // LDIF payload variant.
  auto ldif = client.query_info({"Memory"}, rsl::ResponseMode::kCached,
                                rsl::OutputFormat::kLdif);
  ASSERT_TRUE(ldif.ok());
  EXPECT_EQ(ldif->size(), 1u);
}

TEST_F(SoapGatewayTest, SchemaThroughSoap) {
  auto client = make_client();
  ASSERT_TRUE(client.query_info({"all"}).ok());
  auto schema = client.fetch_schema();
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(schema->keywords.size(), 6u);  // Table 1 + health
}

TEST_F(SoapGatewayTest, ErrorsArriveAsFaults) {
  auto client = make_client();
  auto bad_rsl = client.submit_job("((nonsense");
  ASSERT_FALSE(bad_rsl.ok());
  EXPECT_EQ(bad_rsl.code(), ErrorCode::kParseError);
  auto unknown = client.job_status("https://test.sim:2135/jobmanager/424242");
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.code(), ErrorCode::kNotFound);
  Operation bogus;
  bogus.name = "frobnicate";
  auto resp = client.call(bogus);
  ASSERT_FALSE(resp.ok());
  EXPECT_EQ(resp.code(), ErrorCode::kNotFound);
}

TEST_F(SoapGatewayTest, CancelThroughSoap) {
  auto client = make_client();
  auto contact = client.submit_job(
      "&(executable=/bin/sleep)(arguments=100000)(count=1000)");
  ASSERT_TRUE(contact.ok());
  (void)client.cancel(*contact);
  auto state = client.wait(*contact, kWait);
  ASSERT_TRUE(state.ok());
  EXPECT_TRUE(exec::is_terminal(state.value()));
}

TEST_F(SoapGatewayTest, GridSecurityStillApplies) {
  auto mallory_ca =
      security::CertificateAuthority("/O=Evil/CN=CA", seconds(1000000), *clock, 66);
  auto mallory =
      mallory_ca.issue("/O=Evil/CN=mallory", security::CertType::kUser, seconds(100000));
  SoapClient client(*network, gateway->address(), mallory, trust, *clock);
  auto denied = client.query_info({"Memory"});
  ASSERT_FALSE(denied.ok());
  EXPECT_EQ(denied.code(), ErrorCode::kDenied);
}

TEST_F(SoapGatewayTest, WsdlDescribesAllOperations) {
  auto client = make_client();
  auto wsdl = client.fetch_wsdl();
  ASSERT_TRUE(wsdl.ok());
  for (const char* op : {"submitJob", "queryInfo", "getSchema", "jobStatus", "jobOutput",
                         "cancelJob", "waitJob"}) {
    EXPECT_NE(wsdl->find(std::string("<operation name=\"") + op + "\">"),
              std::string::npos)
        << op;
  }
  EXPECT_NE(wsdl->find("soap://test.sim:8080"), std::string::npos);
  // The WSDL is well-formed XML by our own parser.
  EXPECT_TRUE(format::parse_xml_element(*wsdl).ok());
}

TEST_F(SoapGatewayTest, SoapCostsMoreBytesThanNativeProtocol) {
  // The commodity-protocol tradeoff: same query, measure wire bytes.
  auto soap_client = make_client();
  ASSERT_TRUE(soap_client.query_info({"Memory"}).ok());
  auto soap_bytes = soap_client.stats().bytes_sent + soap_client.stats().bytes_received;

  core::InfoGramClient native(*network, service->address(), alice, trust, *clock);
  ASSERT_TRUE(native.query_info({"Memory"}).ok());
  auto native_bytes = native.stats().bytes_sent + native.stats().bytes_received;
  EXPECT_GT(soap_bytes, native_bytes);
}

}  // namespace
}  // namespace ig::soap
