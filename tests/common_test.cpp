#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "common/clock.hpp"
#include "common/error.hpp"
#include "common/id.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/strings.hpp"

namespace ig {
namespace {

// ---------- Result / Status ----------

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(ErrorCode::kNotFound, "missing");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.code(), ErrorCode::kNotFound);
  EXPECT_EQ(r.error().message, "missing");
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string moved = std::move(r).value();
  EXPECT_EQ(moved, "payload");
}

TEST(StatusTest, SuccessAndError) {
  Status ok;
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.to_string(), "ok");
  Status err(ErrorCode::kDenied, "nope");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.code(), ErrorCode::kDenied);
  EXPECT_EQ(err.to_string(), "denied: nope");
}

TEST(ErrorTest, EveryCodeHasName) {
  for (auto code : {ErrorCode::kParseError, ErrorCode::kNotFound, ErrorCode::kStale,
                    ErrorCode::kDenied, ErrorCode::kTimeout, ErrorCode::kUnavailable,
                    ErrorCode::kInvalidArgument, ErrorCode::kAlreadyExists,
                    ErrorCode::kCancelled, ErrorCode::kIoError, ErrorCode::kInternal}) {
    EXPECT_NE(to_string(code), "unknown");
  }
}

// ---------- Clock ----------

TEST(VirtualClockTest, AdvanceAndSet) {
  VirtualClock clock;
  EXPECT_EQ(clock.now().count(), 0);
  clock.advance(ms(5));
  EXPECT_EQ(clock.now(), ms(5));
  clock.sleep_for(seconds(1));  // sleep advances, never blocks
  EXPECT_EQ(clock.now(), ms(5) + seconds(1));
  clock.set(seconds(10));
  EXPECT_EQ(clock.now(), seconds(10));
}

TEST(VirtualClockTest, RejectsBackwardsTravel) {
  VirtualClock clock(seconds(5));
  EXPECT_THROW(clock.set(seconds(1)), std::invalid_argument);
  EXPECT_THROW(clock.advance(us(-1)), std::invalid_argument);
}

TEST(VirtualClockTest, ConcurrentAdvanceAccumulates) {
  VirtualClock clock;
  std::vector<std::thread> threads;
  for (int i = 0; i < 8; ++i) {
    threads.emplace_back([&clock] {
      for (int j = 0; j < 1000; ++j) clock.advance(us(1));
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(clock.now(), us(8000));
}

TEST(WallClockTest, MonotonicAndSleeps) {
  WallClock clock;
  auto a = clock.now();
  clock.sleep_for(ms(1));
  auto b = clock.now();
  EXPECT_GE((b - a).count(), 900);  // at least ~1ms
}

TEST(ScopedTimerTest, MeasuresVirtualTime) {
  VirtualClock clock;
  ScopedTimer timer(clock);
  clock.advance(ms(42));
  EXPECT_EQ(timer.elapsed(), ms(42));
}

// ---------- Strings ----------

TEST(StringsTest, SplitKeepsEmptyFields) {
  EXPECT_EQ(strings::split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(strings::split("", ','), (std::vector<std::string>{""}));
}

TEST(StringsTest, SplitFieldsDropsEmpties) {
  EXPECT_EQ(strings::split_fields("  a   b  ", ' '), (std::vector<std::string>{"a", "b"}));
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(strings::trim("  x \t\n"), "x");
  EXPECT_EQ(strings::trim("   "), "");
  EXPECT_EQ(strings::trim(""), "");
}

TEST(StringsTest, CaseHelpers) {
  EXPECT_EQ(strings::to_lower("AbC"), "abc");
  EXPECT_EQ(strings::to_upper("AbC"), "ABC");
  EXPECT_TRUE(strings::iequals("MeMoRy", "memory"));
  EXPECT_FALSE(strings::iequals("mem", "memory"));
}

TEST(StringsTest, AffixHelpers) {
  EXPECT_TRUE(strings::starts_with("https://x", "https://"));
  EXPECT_FALSE(strings::starts_with("http", "https://"));
  EXPECT_TRUE(strings::ends_with("file.jar", ".jar"));
  EXPECT_TRUE(strings::contains("abcdef", "cde"));
}

TEST(StringsTest, JoinAndReplace) {
  EXPECT_EQ(strings::join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(strings::join({}, ","), "");
  EXPECT_EQ(strings::replace_all("a&&b&&c", "&&", " "), "a b c");
  EXPECT_EQ(strings::replace_all("aaa", "a", "aa"), "aaaaaa");
}

TEST(StringsTest, ParseIntStrict) {
  EXPECT_EQ(strings::parse_int("42"), 42);
  EXPECT_EQ(strings::parse_int(" -7 "), -7);
  EXPECT_FALSE(strings::parse_int("42x"));
  EXPECT_FALSE(strings::parse_int(""));
  EXPECT_FALSE(strings::parse_int("4 2"));
}

TEST(StringsTest, ParseDoubleStrict) {
  EXPECT_DOUBLE_EQ(*strings::parse_double("3.25"), 3.25);
  EXPECT_FALSE(strings::parse_double("1.2.3"));
  EXPECT_FALSE(strings::parse_double("abc"));
}

TEST(StringsTest, Format) {
  EXPECT_EQ(strings::format("%s=%d", "x", 7), "x=7");
  EXPECT_EQ(strings::format("%.2f", 1.5), "1.50");
}

struct GlobCase {
  const char* pattern;
  const char* text;
  bool matches;
};

class GlobMatchTest : public ::testing::TestWithParam<GlobCase> {};

TEST_P(GlobMatchTest, Matches) {
  const auto& c = GetParam();
  EXPECT_EQ(strings::glob_match(c.pattern, c.text), c.matches)
      << c.pattern << " vs " << c.text;
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, GlobMatchTest,
    ::testing::Values(GlobCase{"*", "", true}, GlobCase{"*", "anything", true},
                      GlobCase{"", "", true}, GlobCase{"", "x", false},
                      GlobCase{"abc", "abc", true}, GlobCase{"abc", "abd", false},
                      GlobCase{"a?c", "abc", true}, GlobCase{"a?c", "ac", false},
                      GlobCase{"Memory:*", "Memory:total", true},
                      GlobCase{"Memory:*", "CPU:total", false},
                      GlobCase{"*total*", "Memory:total_kb", true},
                      GlobCase{"a*b*c", "aXXbYYc", true}, GlobCase{"a*b*c", "aXXcYYb", false},
                      GlobCase{"/O=Grid/CN=*", "/O=Grid/CN=alice", true},
                      GlobCase{"**", "x", true}, GlobCase{"a*", "a", true}));

// ---------- Stats ----------

TEST(RunningStatsTest, MeanAndStddev) {
  RunningStats stats;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.add(x);
  EXPECT_EQ(stats.count(), 8);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_NEAR(stats.stddev(), 2.138, 0.001);  // sample stddev
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
}

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0);
  EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
  EXPECT_DOUBLE_EQ(stats.stddev(), 0.0);
}

TEST(RunningStatsTest, SingleSampleHasZeroVariance) {
  RunningStats stats;
  stats.add(3.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
}

TEST(RunningStatsTest, MergeMatchesSequential) {
  RunningStats all, a, b;
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double x = rng.normal(10.0, 3.0);
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStatsTest, ManyWayMergeMatchesSinglePass) {
  // Parallel-style aggregation: N shards merged in arbitrary order must
  // equal one single-pass accumulation, including across wildly different
  // magnitudes (the catastrophic-cancellation case naive merging gets
  // wrong).
  RunningStats all;
  std::vector<RunningStats> shards(7);
  Rng rng(42);
  for (int i = 0; i < 5000; ++i) {
    double x = rng.normal(0.0, 1.0) * (i % 3 == 0 ? 1e8 : 1e-6);
    all.add(x);
    shards[static_cast<std::size_t>(i) % shards.size()].add(x);
  }
  RunningStats merged;
  for (auto it = shards.rbegin(); it != shards.rend(); ++it) merged.merge(*it);
  EXPECT_EQ(merged.count(), all.count());
  EXPECT_NEAR(merged.mean(), all.mean(), std::abs(all.mean()) * 1e-9 + 1e-12);
  EXPECT_NEAR(merged.variance(), all.variance(), all.variance() * 1e-9);
  EXPECT_DOUBLE_EQ(merged.min(), all.min());
  EXPECT_DOUBLE_EQ(merged.max(), all.max());
}

TEST(RunningStatsTest, MergeWithEmpty) {
  RunningStats a, b;
  a.add(1.0);
  a.merge(b);  // no-op
  EXPECT_EQ(a.count(), 1);
  b.merge(a);  // copies
  EXPECT_EQ(b.count(), 1);
  EXPECT_DOUBLE_EQ(b.mean(), 1.0);
}

TEST(SharedStatsTest, ThreadSafeAccumulation) {
  SharedStats stats;
  std::vector<std::thread> threads;
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([&stats] {
      for (int j = 0; j < 1000; ++j) stats.add(1.0);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(stats.snapshot().count(), 4000);
  EXPECT_DOUBLE_EQ(stats.snapshot().mean(), 1.0);
}

// ---------- Rng ----------

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123), c(124);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
  bool diverged = false;
  Rng a2(123);
  for (int i = 0; i < 100; ++i) {
    if (a2.next() != c.next()) diverged = true;
  }
  EXPECT_TRUE(diverged);
}

TEST(RngTest, UniformInRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    auto v = rng.uniform_int(3, 9);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 9);
  }
}

TEST(RngTest, NormalMoments) {
  Rng rng(9);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) stats.add(rng.normal(5.0, 2.0));
  EXPECT_NEAR(stats.mean(), 5.0, 0.1);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.1);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(11);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) stats.add(rng.exponential(0.5));
  EXPECT_NEAR(stats.mean(), 2.0, 0.1);
}

TEST(RngTest, ChanceFrequency) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.chance(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

// ---------- Ids ----------

TEST(IdTest, MonotoneUnique) {
  auto a = IdGenerator::next();
  auto b = IdGenerator::next();
  EXPECT_LT(a, b);
}

TEST(IdTest, JobContactFormat) {
  EXPECT_EQ(IdGenerator::job_contact("hot.mcs.anl.gov", 8443, 17),
            "https://hot.mcs.anl.gov:8443/jobmanager/17");
}

TEST(IdTest, FnvAndHex) {
  EXPECT_EQ(fnv1a("abc"), fnv1a("abc"));
  EXPECT_NE(fnv1a("abc"), fnv1a("abd"));
  EXPECT_NE(fnv1a("abc", 1), fnv1a("abc", 2));
  EXPECT_EQ(to_hex(0), "0000000000000000");
  EXPECT_EQ(to_hex(0xdeadbeefULL), "00000000deadbeef");
}

}  // namespace
}  // namespace ig
