// Distributed tracing across simulated grid hops: one trace id carried
// through the MDS hierarchy, gossip discovery and broker placement, each
// hop contributing node-tagged remote child spans that stitch into a
// single TraceRecord — retrievable through InfoGram itself (info=traces).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/fault.hpp"
#include "core/config.hpp"
#include "core/infogram_client.hpp"
#include "core/infogram_service.hpp"
#include "exec/fork_backend.hpp"
#include "grid/broker.hpp"
#include "grid/p2p_discovery.hpp"
#include "mds/service.hpp"
#include "obs/propagation.hpp"
#include "obs/telemetry.hpp"
#include "test_util.hpp"

namespace ig {
namespace {

using obs::SpanRecord;
using obs::TraceRecord;

// Find the span with `name` in `record`, or nullptr.
const SpanRecord* find_span(const TraceRecord& record, const std::string& name) {
  for (const auto& s : record.spans) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

// Every span's parent must be another span of the same stitched record
// (or 0 for the root): broken linkage means a hop failed to parent its
// remote children under the caller's hop span.
void expect_linked(const TraceRecord& record) {
  for (const auto& s : record.spans) {
    if (s.parent_id == 0) continue;
    bool found = false;
    for (const auto& other : record.spans) {
      if (other.id == s.parent_id) found = true;
    }
    EXPECT_TRUE(found) << "span '" << s.name << "' has dangling parent";
  }
}

// ---------- MDS hierarchy: client -> GIIS node -> leaf GRIS ----------

class TracePropagationTest : public ig::test::GridFixture {
 protected:
  std::shared_ptr<info::SystemMonitor> make_monitor(const std::string& host) {
    auto monitor = std::make_shared<info::SystemMonitor>(*clock, host);
    info::ProviderOptions options;
    options.ttl = seconds(100);
    EXPECT_TRUE(monitor
                    ->add_source(std::make_shared<info::CommandSource>(
                                     "Memory", "/sbin/sysinfo.exe -mem", registry),
                                 options)
                    .ok());
    return monitor;
  }
};

TEST_F(TracePropagationTest, HierarchyForwardYieldsOneStitchedTrace) {
  // Leaf GRIS behind its own MDS endpoint (node id "leaf.sim").
  auto leaf_telemetry = std::make_shared<obs::Telemetry>(*clock, "leaf.sim");
  auto gris = std::make_shared<mds::Gris>(make_monitor("leaf.sim"), "leaf.sim", *clock);
  mds::MdsService leaf(gris, host_cred, &trust, clock.get(), logger);
  leaf.set_telemetry(leaf_telemetry);
  ASSERT_TRUE(leaf.start(*network, {"leaf.sim", 2136}).ok());

  // Middle GIIS aggregating the leaf over the wire (node id "giis.sim").
  auto giis_telemetry = std::make_shared<obs::Telemetry>(*clock, "giis.sim");
  auto leaf_client = std::make_shared<mds::MdsClient>(
      *network, net::Address{"leaf.sim", 2136}, host_cred, trust, *clock);
  auto giis = std::make_shared<mds::Giis>("vo", *clock, Duration(0));  // no cache
  giis->register_child(std::make_shared<mds::RemoteBackend>(leaf_client, "o=Grid"));
  mds::MdsService middle(giis, host_cred, &trust, clock.get(), logger);
  middle.set_telemetry(giis_telemetry);
  ASSERT_TRUE(middle.start(*network, {"giis.sim", 2136}).ok());

  // The client roots its own trace (node id "client.sim") and searches
  // through the middle node — three hops end to end.
  auto client_telemetry = std::make_shared<obs::Telemetry>(*clock, "client.sim");
  mds::MdsClient client(*network, {"giis.sim", 2136}, alice, trust, *clock);
  auto trace = client_telemetry->make_trace("lookup");
  {
    obs::TraceScope scope(*trace);
    auto entries = client.search("o=Grid", mds::Scope::kSubtree, mds::Filter::match_all());
    ASSERT_TRUE(entries.ok());
    EXPECT_EQ(entries->size(), 3u);  // VO root + leaf resource + Memory
  }
  std::string trace_id = trace->id();
  client_telemetry->complete(*trace);

  // One stitched record in the client's store, spans from all three nodes.
  auto found = client_telemetry->traces().find(trace_id);
  ASSERT_EQ(found.size(), 1u);
  const TraceRecord& record = found[0];
  EXPECT_EQ(record.root, "lookup");
  expect_linked(record);

  const SpanRecord* hop = find_span(record, "rpc:MDS_SEARCH@giis.sim:2136");
  ASSERT_NE(hop, nullptr);
  EXPECT_EQ(hop->node, "client.sim");

  // The middle hop served as a remote child parented under the client's
  // hop span, and the leaf under the middle's own outbound hop span.
  const SpanRecord* middle_root = find_span(record, "MDS_SEARCH");
  ASSERT_NE(middle_root, nullptr);
  EXPECT_EQ(middle_root->node, "giis.sim");
  EXPECT_EQ(middle_root->parent_id, hop->id);

  const SpanRecord* middle_hop = find_span(record, "rpc:MDS_SEARCH@leaf.sim:2136");
  ASSERT_NE(middle_hop, nullptr);
  EXPECT_EQ(middle_hop->node, "giis.sim");

  bool leaf_span = false;
  for (const auto& s : record.spans) {
    if (s.node == "leaf.sim") {
      leaf_span = true;
      // Every leaf span chains into the middle's segment, never dangles.
      EXPECT_NE(s.parent_id, 0u);
    }
  }
  EXPECT_TRUE(leaf_span);

  // Each serving node retained its own segment under the SAME trace id:
  // the propagated context reached every hop.
  EXPECT_EQ(giis_telemetry->traces().find(trace_id).size(), 1u);
  EXPECT_EQ(leaf_telemetry->traces().find(trace_id).size(), 1u);
}

// ---------- Acceptance: 3 hops, retrieved via info=traces ----------

TEST_F(TracePropagationTest, ThreeHopQueryRetrievableViaInfoTraces) {
  auto backend = std::make_shared<exec::ForkBackend>(registry, *clock);

  // Leaf InfoGram service (the provider host).
  auto leaf_telemetry = std::make_shared<obs::Telemetry>(*clock);
  core::InfoGramConfig leaf_config;
  leaf_config.host = "leaf.sim";
  leaf_config.telemetry = leaf_telemetry;
  auto leaf_monitor = std::make_shared<info::SystemMonitor>(*clock, leaf_config.host);
  ASSERT_TRUE(core::Configuration::table1().apply(*leaf_monitor, registry).ok());
  core::InfoGramService leaf(leaf_monitor, backend, host_cred, &trust, &gridmap, &policy,
                             clock.get(), logger, leaf_config);
  ASSERT_TRUE(leaf.start(*network).ok());

  // Hub InfoGram service: its `RemoteLoad` keyword is itself a grid query
  // against the leaf — the hierarchy-node hop of the acceptance path.
  auto hub_telemetry = std::make_shared<obs::Telemetry>(*clock);
  core::InfoGramConfig hub_config;
  hub_config.host = "hub.sim";
  hub_config.telemetry = hub_telemetry;
  auto hub_monitor = std::make_shared<info::SystemMonitor>(*clock, hub_config.host);
  auto leaf_client = std::make_shared<core::InfoGramClient>(*network, leaf.address(),
                                                            alice, trust, *clock);
  info::ProviderOptions forward_options;
  forward_options.ttl = Duration(0);  // always forward, never cache
  ASSERT_TRUE(hub_monitor
                  ->add_source(std::make_shared<info::FunctionSource>(
                                   "RemoteLoad",
                                   [leaf_client]() -> Result<format::InfoRecord> {
                                     auto records = leaf_client->query_info({"CPULoad"});
                                     if (!records.ok()) return records.error();
                                     if (records->empty()) {
                                       return Error(ErrorCode::kNotFound, "no CPULoad");
                                     }
                                     format::InfoRecord out = records->front();
                                     out.keyword = "RemoteLoad";
                                     return out;
                                   },
                                   "forward:leaf.sim/CPULoad"),
                               forward_options)
                  .ok());
  core::InfoGramService hub(hub_monitor, backend, host_cred, &trust, &gridmap, &policy,
                            clock.get(), logger, hub_config);
  ASSERT_TRUE(hub.start(*network).ok());

  // Hop 1: client -> hub. Hop 2: hub -> leaf (inside provider refresh).
  core::InfoGramClient client(*network, hub.address(), alice, trust, *clock);
  auto records = client.query_info({"RemoteLoad"});
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 1u);

  // The hub's trace stitched the leaf's spans: find it in the hub store.
  auto traces = hub_telemetry->traces().snapshot();
  const TraceRecord* stitched = nullptr;
  for (const auto& t : traces) {
    if (find_span(t, "info:RemoteLoad") != nullptr) stitched = &t;
  }
  ASSERT_NE(stitched, nullptr);
  expect_linked(*stitched);
  // The leaf hop ran under the propagated trace id and tagged its spans.
  bool leaf_node_span = false;
  for (const auto& s : stitched->spans) {
    if (s.node == "leaf.sim") leaf_node_span = true;
  }
  EXPECT_TRUE(leaf_node_span);
  // The leaf's own store retained its segment under the SAME id.
  ASSERT_EQ(leaf_telemetry->traces().find(stitched->id).size(), 1u);
  EXPECT_TRUE(leaf_telemetry->traces().find(stitched->id)[0].spans[0].parent_id != 0);

  // And the whole thing is retrievable through InfoGram itself.
  auto trace_records = client.query_info({"traces"});
  ASSERT_TRUE(trace_records.ok());
  ASSERT_EQ(trace_records->size(), 1u);
  const auto& record = (*trace_records)[0];
  ASSERT_NE(record.find(stitched->id + ":root"), nullptr);
  bool remote_span_listed = false;
  for (const auto& attr : record.attributes) {
    if (attr.name.rfind(stitched->id + ":span.", 0) == 0 &&
        attr.value.find("node=leaf.sim") != std::string::npos) {
      remote_span_listed = true;
    }
  }
  EXPECT_TRUE(remote_span_listed);
}

// ---------- Discovery broker: one sweep, every endpoint a hop ----------

TEST_F(TracePropagationTest, BrokerLoadSweepTracesEveryResource) {
  auto backend = std::make_shared<exec::ForkBackend>(registry, *clock);
  std::vector<std::unique_ptr<core::InfoGramService>> services;
  std::vector<std::shared_ptr<obs::Telemetry>> telemetries;
  auto broker_telemetry = std::make_shared<obs::Telemetry>(*clock, "broker.sim");
  grid::LoadAwareBroker broker;
  broker.set_telemetry(broker_telemetry);
  for (int i = 0; i < 2; ++i) {
    std::string host = "r" + std::to_string(i) + ".sim";
    auto telemetry = std::make_shared<obs::Telemetry>(*clock);
    core::InfoGramConfig config;
    config.host = host;
    config.telemetry = telemetry;
    auto monitor = std::make_shared<info::SystemMonitor>(*clock, host);
    ASSERT_TRUE(core::Configuration::table1().apply(*monitor, registry).ok());
    services.push_back(std::make_unique<core::InfoGramService>(
        monitor, backend, host_cred, &trust, &gridmap, &policy, clock.get(), logger,
        config));
    ASSERT_TRUE(services.back()->start(*network).ok());
    telemetries.push_back(std::move(telemetry));
    broker.add_resource(host, std::make_shared<core::InfoGramClient>(
                                  *network, services.back()->address(), alice, trust,
                                  *clock));
  }

  ASSERT_TRUE(broker.loads().ok());
  auto traces = broker_telemetry->traces().snapshot();
  ASSERT_EQ(traces.size(), 1u);
  const TraceRecord& sweep = traces[0];
  EXPECT_EQ(sweep.root, "broker.loads");
  expect_linked(sweep);
  // Both resources served the CPULoad query as remote children of the
  // sweep — their node tags appear in the one stitched record.
  bool r0 = false, r1 = false;
  for (const auto& s : sweep.spans) {
    if (s.node == "r0.sim") r0 = true;
    if (s.node == "r1.sim") r1 = true;
  }
  EXPECT_TRUE(r0);
  EXPECT_TRUE(r1);
  // Each resource retained its segment under the same id: propagated.
  EXPECT_EQ(telemetries[0]->traces().find(sweep.id).size(), 1u);
  EXPECT_EQ(telemetries[1]->traces().find(sweep.id).size(), 1u);
}

// ---------- P2P gossip rounds ----------

TEST_F(TracePropagationTest, GossipRoundStitchesContactedPeer) {
  auto a_telemetry = std::make_shared<obs::Telemetry>(*clock, "a.sim");
  auto b_telemetry = std::make_shared<obs::Telemetry>(*clock, "b.sim");
  grid::DiscoveryPeer a(*network, *clock, "a.sim", {"a.sim", 2135}, [] { return 0.1; },
                        grid::GossipConfig{}, 1);
  grid::DiscoveryPeer b(*network, *clock, "b.sim", {"b.sim", 2135}, [] { return 0.2; },
                        grid::GossipConfig{}, 2);
  a.set_telemetry(a_telemetry);
  b.set_telemetry(b_telemetry);
  a.add_neighbor(b.gossip_address());

  a.tick();
  ASSERT_EQ(a.view().size(), 2u);  // the exchange worked

  auto traces = a_telemetry->traces().snapshot();
  ASSERT_EQ(traces.size(), 1u);
  const TraceRecord& round = traces[0];
  EXPECT_EQ(round.root, "gossip.round");
  expect_linked(round);
  const SpanRecord* served = find_span(round, "GOSSIP");
  ASSERT_NE(served, nullptr);
  EXPECT_EQ(served->node, "b.sim");
  const SpanRecord* hop = find_span(round, "rpc:GOSSIP@b.sim:7400");
  ASSERT_NE(hop, nullptr);
  EXPECT_EQ(served->parent_id, hop->id);
  // B kept its own segment of the same round.
  EXPECT_EQ(b_telemetry->traces().find(round.id).size(), 1u);
}

// ---------- Under chaos: failures still close their spans ----------

class TraceChaosTest : public TracePropagationTest {};

TEST_F(TraceChaosTest, RefusedConnectClosesSpanWithErrorStatus) {
  FaultPlan plan;
  plan.seed = 7;
  FaultSpec refuse;
  refuse.kind = FaultKind::kDrop;
  refuse.probability = 1.0;
  refuse.max_fires = 1;
  plan.add("net.connect", refuse);
  network->set_fault_injector(std::make_shared<FaultInjector>(plan));

  auto a_telemetry = std::make_shared<obs::Telemetry>(*clock, "a.sim");
  grid::DiscoveryPeer a(*network, *clock, "a.sim", {"a.sim", 2135}, [] { return 0.1; },
                        grid::GossipConfig{}, 1);
  grid::DiscoveryPeer b(*network, *clock, "b.sim", {"b.sim", 2135}, [] { return 0.2; },
                        grid::GossipConfig{}, 2);
  a.set_telemetry(a_telemetry);
  a.add_neighbor(b.gossip_address());

  a.tick();  // the one refused connect eats this round's exchange

  auto traces = a_telemetry->traces().snapshot();
  ASSERT_EQ(traces.size(), 1u);
  const SpanRecord* connect = find_span(traces[0], "connect:b.sim:7400");
  ASSERT_NE(connect, nullptr);
  EXPECT_EQ(connect->status, "error:refused");
}

TEST_F(TraceChaosTest, PartitionedTargetClosesSpanWithErrorStatus) {
  auto backend = std::make_shared<exec::ForkBackend>(registry, *clock);
  auto telemetry = std::make_shared<obs::Telemetry>(*clock, "r0.sim");
  core::InfoGramConfig config;
  config.host = "r0.sim";
  config.telemetry = telemetry;
  auto monitor = std::make_shared<info::SystemMonitor>(*clock, config.host);
  ASSERT_TRUE(core::Configuration::table1().apply(*monitor, registry).ok());
  core::InfoGramService service(monitor, backend, host_cred, &trust, &gridmap, &policy,
                                clock.get(), logger, config);
  ASSERT_TRUE(service.start(*network).ok());

  auto broker_telemetry = std::make_shared<obs::Telemetry>(*clock, "broker.sim");
  grid::LoadAwareBroker broker;
  broker.set_telemetry(broker_telemetry);
  broker.add_resource("r0.sim", std::make_shared<core::InfoGramClient>(
                                    *network, service.address(), alice, trust, *clock));

  network->partition(service.address());
  EXPECT_FALSE(broker.loads().ok());

  auto traces = broker_telemetry->traces().snapshot();
  ASSERT_EQ(traces.size(), 1u);
  EXPECT_NE(traces[0].status, "ok");  // trace.fail() recorded the sweep error
  const SpanRecord* connect =
      find_span(traces[0], "connect:" + service.address().to_string());
  ASSERT_NE(connect, nullptr);
  EXPECT_EQ(connect->status, "error:partitioned");
}

TEST_F(TraceChaosTest, DroppedRequestMidTraceEndsHopSpanUnavailable) {
  auto backend = std::make_shared<exec::ForkBackend>(registry, *clock);
  auto telemetry = std::make_shared<obs::Telemetry>(*clock);
  core::InfoGramConfig config;
  config.host = "r0.sim";
  config.telemetry = telemetry;
  auto monitor = std::make_shared<info::SystemMonitor>(*clock, config.host);
  ASSERT_TRUE(core::Configuration::table1().apply(*monitor, registry).ok());
  core::InfoGramService service(monitor, backend, host_cred, &trust, &gridmap, &policy,
                                clock.get(), logger, config);
  ASSERT_TRUE(service.start(*network).ok());

  auto client_telemetry = std::make_shared<obs::Telemetry>(*clock, "client.sim");
  core::InfoGramClient client(*network, service.address(), alice, trust, *clock);
  ASSERT_TRUE(client.query_info({"CPULoad"}).ok());  // authenticate first

  // Now every request drops: the in-flight hop span must close errored.
  FaultPlan plan;
  plan.seed = 9;
  FaultSpec drop;
  drop.kind = FaultKind::kDrop;
  drop.probability = 1.0;
  drop.max_fires = 1;
  plan.add("net.request", drop);
  network->set_fault_injector(std::make_shared<FaultInjector>(plan));

  auto trace = client_telemetry->make_trace("doomed");
  {
    obs::TraceScope scope(*trace);
    EXPECT_FALSE(client.query_info({"CPULoad"}).ok());
  }
  std::string id = trace->id();
  client_telemetry->complete(*trace);
  auto found = client_telemetry->traces().find(id);
  ASSERT_EQ(found.size(), 1u);
  bool errored_hop = false;
  for (const auto& s : found[0].spans) {
    if (s.name.rfind("rpc:", 0) == 0 && s.status == "error:unavailable") {
      errored_hop = true;
    }
  }
  EXPECT_TRUE(errored_hop);
}

}  // namespace
}  // namespace ig
