// Snapshot publication (DESIGN.md §13): the lock-free read path for
// TTL-valid info queries. Proves the three contract points the CI gate
// cares about:
//   1. zero locks  — reading the published cache takes no ig::Mutex /
//      ig::SharedMutex acquisition (exact count via the validator);
//   2. zero allocs — a fast-path cache hit through InfoGramService::
//      execute() performs no heap allocation (AllocScope delta 0), and an
//      inline submit_async() pays exactly the promise's shared state;
//   3. unchanged semantics — stale-serve, degradation quality, adaptive
//      TTL and the audit-log contract behave exactly as the mutex-guarded
//      cache did, across publishes and under a concurrent publisher.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/config.hpp"
#include "core/infogram_service.hpp"
#include "exec/fork_backend.hpp"
#include "format/ldif.hpp"
#include "info/managed_provider.hpp"
#include "info/provider.hpp"
#include "obs/profile.hpp"
#include "test_util.hpp"

namespace ig::info {
namespace {

/// Force the lock-order validator on so thread_acquisition_count() counts
/// every ig lock this thread takes; restores the previous setting.
class ScopedLockCounting {
 public:
  ScopedLockCounting() : was_enabled_(sync_internal::lock_order_validation_enabled()) {
    sync_internal::set_lock_order_validation(true);
  }
  ~ScopedLockCounting() { sync_internal::set_lock_order_validation(was_enabled_); }

 private:
  bool was_enabled_;
};

std::shared_ptr<InfoSource> counting_source(const std::string& keyword,
                                            std::shared_ptr<std::atomic<int>> runs) {
  return std::make_shared<FunctionSource>(keyword, [keyword, runs] {
    int n = runs->fetch_add(1) + 1;
    format::InfoRecord record;
    record.add(keyword + ":a", std::to_string(n));
    record.add(keyword + ":b", std::to_string(n));
    return Result<format::InfoRecord>(record);
  });
}

// ---------- SnapshotCell primitives ----------

TEST(SnapshotCellTest, PublishReadExchangeUpdate) {
  SnapshotCell<int> cell;
  EXPECT_EQ(cell.read(), nullptr);
  cell.publish(std::make_shared<const int>(1));
  ASSERT_NE(cell.read(), nullptr);
  EXPECT_EQ(*cell.read(), 1);
  auto prev = cell.exchange(std::make_shared<const int>(2));
  ASSERT_NE(prev, nullptr);
  EXPECT_EQ(*prev, 1);
  cell.update([](const std::shared_ptr<const int>& current) {
    return std::make_shared<const int>(*current + 10);
  });
  EXPECT_EQ(*cell.read(), 12);
}

TEST(SnapshotCellTest, ReadTakesZeroLocksUpdateTakesExactlyOne) {
  SnapshotCell<int> cell;
  cell.publish(std::make_shared<const int>(7));
  ScopedLockCounting counting;
  std::uint64_t before = sync_internal::thread_acquisition_count();
  auto snap = cell.read();
  EXPECT_EQ(sync_internal::thread_acquisition_count(), before);
  EXPECT_EQ(*snap, 7);
  cell.update([](const std::shared_ptr<const int>& c) {
    return std::make_shared<const int>(*c + 1);
  });
  EXPECT_EQ(sync_internal::thread_acquisition_count(), before + 1);
}

// ---------- Provider read path ----------

class SnapshotProviderTest : public ::testing::Test {
 protected:
  SnapshotProviderTest() : clock(seconds(1000)), runs(std::make_shared<std::atomic<int>>(0)) {}

  std::shared_ptr<ManagedProvider> make_provider(ProviderOptions options) {
    return std::make_shared<ManagedProvider>(counting_source("KW", runs), clock,
                                             std::move(options));
  }

  std::shared_ptr<ManagedProvider> make_provider(Duration ttl) {
    ProviderOptions options;
    options.ttl = ttl;
    return make_provider(std::move(options));
  }

  VirtualClock clock;
  std::shared_ptr<std::atomic<int>> runs;
};

TEST_F(SnapshotProviderTest, QueryStateAndSnapshotTakeZeroLocks) {
  auto provider = make_provider(ms(100));
  ASSERT_TRUE(provider->update_state(true).ok());

  ScopedLockCounting counting;
  std::uint64_t before = sync_internal::thread_acquisition_count();
  auto state = provider->query_state();
  ASSERT_TRUE(state.ok());
  CacheSnapshotPtr snap = provider->snapshot_if_fresh(clock.now());
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(provider->validity(), 100);
  (void)provider->last_state();
  (void)provider->prefetch_state(0.2);
  EXPECT_EQ(sync_internal::thread_acquisition_count(), before)
      << "published-cache reads must not touch any ig lock";
  EXPECT_EQ(sync_internal::held_lock_count(), 0u);
}

TEST_F(SnapshotProviderTest, SnapshotIfFreshIsAllocationFree) {
  auto provider = make_provider(ms(100));
  ASSERT_TRUE(provider->update_state(true).ok());
  // Warm-up: first call touches nothing lazily, but keep the pattern
  // anyway so the measured pass is steady-state.
  ASSERT_NE(provider->snapshot_if_fresh(clock.now()), nullptr);

  TimePoint now = clock.now();
  obs::AllocScope scope;
  CacheSnapshotPtr snap = provider->snapshot_if_fresh(now);
  std::string_view payload =
      snap != nullptr ? snap->payload(rsl::OutputFormat::kLdif) : std::string_view{};
  std::uint64_t allocs = scope.allocs();
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(allocs, 0u) << "cache-hit snapshot read allocated";
  EXPECT_FALSE(payload.empty());
}

TEST_F(SnapshotProviderTest, PreRenderedPayloadsMatchLegacyRender) {
  auto provider = make_provider(ms(100));
  ASSERT_TRUE(provider->update_state(true).ok());
  CacheSnapshotPtr snap = provider->snapshot_if_fresh(clock.now());
  ASSERT_NE(snap, nullptr);
  ASSERT_TRUE(snap->fast_path_eligible);
  std::vector<format::InfoRecord> one{snap->record};
  EXPECT_EQ(snap->payload(rsl::OutputFormat::kLdif), format::to_ldif(one));
  // Within the TTL a binary model keeps quality at 100, so the degraded
  // copy the legacy path would serve is byte-identical to the snapshot.
  auto legacy = provider->query_state();
  ASSERT_TRUE(legacy.ok());
  EXPECT_EQ(format::to_ldif(std::vector<format::InfoRecord>{legacy.value()}),
            snap->payload(rsl::OutputFormat::kLdif));
}

TEST_F(SnapshotProviderTest, TimeVaryingDegradationIsNotFastPathEligible) {
  ProviderOptions options;
  options.ttl = ms(100);
  options.degradation = std::make_shared<LinearDegradation>();
  auto provider = make_provider(options);
  ASSERT_TRUE(provider->update_state(true).ok());
  EXPECT_EQ(provider->snapshot_if_fresh(clock.now()), nullptr)
      << "pre-rendered bytes are only exact under a constant-in-TTL model";
  // The plain read path still works (and still takes zero locks).
  ScopedLockCounting counting;
  std::uint64_t before = sync_internal::thread_acquisition_count();
  EXPECT_TRUE(provider->query_state().ok());
  EXPECT_EQ(sync_internal::thread_acquisition_count(), before);
}

TEST_F(SnapshotProviderTest, StaleServeSurvivesPublishes) {
  auto flaky_runs = std::make_shared<std::atomic<int>>(0);
  auto fail = std::make_shared<std::atomic<bool>>(false);
  auto source = std::make_shared<FunctionSource>("KW", [flaky_runs, fail] {
    if (fail->load()) {
      return Result<format::InfoRecord>(Error(ErrorCode::kUnavailable, "down"));
    }
    int n = flaky_runs->fetch_add(1) + 1;
    format::InfoRecord record;
    record.add("KW:v", std::to_string(n));
    return Result<format::InfoRecord>(record);
  });
  ProviderOptions options;
  options.ttl = ms(100);
  auto provider = std::make_shared<ManagedProvider>(source, clock, options);
  ASSERT_TRUE(provider->update_state(true).ok());
  fail->store(true);
  clock.advance(ms(200));  // past TTL: update_state really re-runs the source
  auto shielded = provider->update_state(true);
  ASSERT_TRUE(shielded.ok()) << "stale-serve shield must survive the snapshot conversion";
  EXPECT_NE(shielded->find("stale"), nullptr);
  EXPECT_NE(shielded->find("source"), nullptr);
  EXPECT_EQ(shielded->find("KW:v")->value, "1");
}

TEST_F(SnapshotProviderTest, SetTtlAffectsPublishedGenerationImmediately) {
  auto provider = make_provider(ms(100));
  ASSERT_TRUE(provider->update_state(true).ok());
  ASSERT_TRUE(provider->query_state().ok());
  // Shrinking the TTL expires the already-published record at once, as
  // the mutex-guarded current_ttl_ did; growing it revives the record.
  clock.advance(ms(50));
  provider->set_ttl(ms(10));
  EXPECT_EQ(provider->query_state().code(), ErrorCode::kStale);
  EXPECT_EQ(provider->snapshot_if_fresh(clock.now()), nullptr);
  provider->set_ttl(ms(400));
  EXPECT_TRUE(provider->query_state().ok());
  EXPECT_NE(provider->snapshot_if_fresh(clock.now()), nullptr);
}

TEST_F(SnapshotProviderTest, AdaptiveTtlStillAdaptsAcrossPublishes) {
  ProviderOptions options;
  options.ttl = ms(100);
  options.adaptive_ttl = true;
  options.min_ttl = ms(10);
  options.max_ttl = ms(1000);
  // The counting source changes every refresh (a/b = run number), so the
  // relative change is large and the TTL must shrink.
  auto provider = make_provider(options);
  ASSERT_TRUE(provider->update_state(true).ok());
  Duration before = provider->ttl();
  clock.advance(ms(150));
  ASSERT_TRUE(provider->update_state(true).ok());
  EXPECT_LT(provider->ttl().count(), before.count());
}

// ---------- Torn-publish stress (the TSan leg's meat) ----------

TEST_F(SnapshotProviderTest, ConcurrentReadersNeverSeeTornGenerations) {
  auto provider = make_provider(seconds(60));
  ASSERT_TRUE(provider->update_state(true).ok());

  constexpr int kReaders = 4;
  constexpr int kMinPublishes = 300;
  constexpr int kMaxPublishes = 20000;  // bail-out so a starved box still terminates
  constexpr std::uint64_t kMinCoherentReads = 500;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> coherent_reads{0};
  std::atomic<bool> torn{false};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        CacheSnapshotPtr snap = provider->snapshot();
        if (snap == nullptr) continue;
        // Each generation writes a == b; seeing them differ means a torn
        // or mixed generation leaked through the publish.
        const format::Attribute* a = snap->record.find("KW:a");
        const format::Attribute* b = snap->record.find("KW:b");
        if (a == nullptr || b == nullptr || a->value != b->value) {
          torn.store(true);
          return;
        }
        coherent_reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  // Publish until the readers have demonstrably raced against real
  // generation turnover (single-core schedulers can run the publisher to
  // completion before any reader gets a slice, hence the yield and the
  // coherent-read floor rather than a fixed publish count).
  int publishes = 0;
  while (publishes < kMinPublishes ||
         (coherent_reads.load() < kMinCoherentReads && publishes < kMaxPublishes)) {
    ASSERT_TRUE(provider->update_state(true).ok());
    ++publishes;
    if (publishes % 64 == 0) std::this_thread::yield();
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
  EXPECT_FALSE(torn.load());
  EXPECT_GT(coherent_reads.load(), 0u);
  EXPECT_EQ(runs->load(), publishes + 1);
}

// ---------- Service fast path ----------

class SnapshotServiceTest : public ig::test::GridFixture {
 protected:
  void make_service(bool with_telemetry, bool audited) {
    auto backend = std::make_shared<exec::ForkBackend>(registry, *clock);
    monitor = std::make_shared<info::SystemMonitor>(*clock, "test.sim");
    ASSERT_TRUE(core::Configuration::table1().apply(*monitor, registry).ok());
    core::InfoGramConfig config;
    config.host = "test.sim";
    if (with_telemetry) config.telemetry = std::make_shared<obs::Telemetry>(*clock);
    // The fixture's logger carries a MemorySink (audited); an un-audited
    // service gets a sink-less logger, which is what arms the fast path.
    auto service_logger = audited ? logger : std::make_shared<logging::Logger>(*clock);
    service = std::make_unique<core::InfoGramService>(monitor, backend, host_cred, &trust,
                                                      &gridmap, &policy, clock.get(),
                                                      service_logger, config);
  }

  rsl::XrslRequest parse(const std::string& body) {
    auto parsed = rsl::XrslRequest::parse(body);
    EXPECT_TRUE(parsed.ok());
    return parsed.value();
  }

  std::shared_ptr<info::SystemMonitor> monitor;
  std::unique_ptr<core::InfoGramService> service;
};

TEST_F(SnapshotServiceTest, CacheHitExecuteIsZeroLockZeroAlloc) {
  make_service(/*with_telemetry=*/false, /*audited=*/false);
  ASSERT_TRUE(monitor->provider("Memory")->update_state(true).ok());

  const rsl::XrslRequest request = parse("(info=Memory)");
  const std::string subject = "/O=Grid/CN=alice";
  const std::string local_user = "alice";
  // Warm-up pass (metric resolution, lazy TLS) before the measured one.
  ASSERT_TRUE(service->execute(request, subject, local_user).ok());

  ScopedLockCounting counting;
  std::uint64_t locks_before = sync_internal::thread_acquisition_count();
  obs::AllocScope scope;
  auto result = service->execute(request, subject, local_user);
  std::uint64_t lock_delta = sync_internal::thread_acquisition_count() - locks_before;
  std::uint64_t allocs = scope.allocs();
  ASSERT_TRUE(result.ok());
  ASSERT_NE(result->cached, nullptr) << "expected the snapshot fast path";
  EXPECT_EQ(lock_delta, 0u) << "cache-hit execute() touched an ig lock";
  EXPECT_EQ(allocs, 0u) << "cache-hit execute() allocated";
  EXPECT_EQ(result->record_count(), 1u);
  ASSERT_NE(result->record(0), nullptr);
  EXPECT_EQ(result->record(0)->keyword, "Memory");
  EXPECT_FALSE(result->payload_view().empty());
}

TEST_F(SnapshotServiceTest, CacheHitPayloadMatchesLegacyPath) {
  make_service(/*with_telemetry=*/false, /*audited=*/false);
  ASSERT_TRUE(monitor->provider("Memory")->update_state(true).ok());
  auto fast = service->execute(parse("(info=Memory)"), "/O=Grid/CN=alice", "alice");
  ASSERT_TRUE(fast.ok());
  ASSERT_NE(fast->cached, nullptr);
  // The same query through the full path (forced by the quality tag,
  // which is fast-path ineligible but still a TTL-valid cache read).
  auto slow = service->execute(parse("(info=Memory)(quality=1)"), "/O=Grid/CN=alice", "alice");
  ASSERT_TRUE(slow.ok());
  EXPECT_EQ(slow->cached, nullptr);
  EXPECT_EQ(fast->payload(), slow->payload());
  EXPECT_EQ(std::string(fast->payload_view()), fast->payload());
}

TEST_F(SnapshotServiceTest, InlineSubmitAsyncCacheHitPaysExactlyThePromise) {
  make_service(/*with_telemetry=*/false, /*audited=*/false);
  ASSERT_TRUE(monitor->provider("Memory")->update_state(true).ok());
  // Build everything the call consumes outside the measured region and
  // move it in: what remains is the promise machinery. Calibrate its cost
  // (libstdc++: make_shared wrapper + shared state + result storage) so
  // the assertion is "the query itself added nothing", not an stdlib
  // implementation constant.
  std::uint64_t promise_allocs = 0;
  {
    obs::AllocScope calibration;
    auto promise = std::make_shared<std::promise<Result<core::InfoGramResult>>>();
    auto future = promise->get_future();
    promise_allocs = calibration.allocs();
  }
  rsl::XrslRequest request = parse("(info=Memory)");
  std::string subject = "/O=Grid/CN=alice";
  std::string local_user = "alice";
  (void)service->submit_async(parse("(info=Memory)"), "/O=Grid/CN=alice", "alice").get();

  obs::AllocScope scope;
  auto future = service->submit_async(std::move(request), std::move(subject),
                                      std::move(local_user));
  std::uint64_t allocs = scope.allocs();
  auto result = future.get();
  ASSERT_TRUE(result.ok());
  ASSERT_NE(result->cached, nullptr);
  EXPECT_EQ(allocs, promise_allocs)
      << "inline submit_async should allocate only the promise machinery";
}

TEST_F(SnapshotServiceTest, AuditedServiceKeepsFullPathAndLogsEveryQuery) {
  make_service(/*with_telemetry=*/false, /*audited=*/true);
  ASSERT_TRUE(monitor->provider("Memory")->update_state(true).ok());
  auto result = service->execute(parse("(info=Memory)"), "/O=Grid/CN=alice", "alice");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->cached, nullptr) << "audited deployments must not skip the log line";
  EXPECT_EQ(result->records.size(), 1u);
  std::size_t info_events = 0;
  for (const auto& event : log_sink->events()) {
    if (event.type == logging::EventType::kInfoQuery) ++info_events;
  }
  EXPECT_EQ(info_events, 1u);
}

TEST_F(SnapshotServiceTest, FastHitCounterCountsOnlySnapshotHits) {
  make_service(/*with_telemetry=*/true, /*audited=*/false);
  obs::Counter& fast_hits =
      monitor->telemetry()->metrics().counter(obs::metric::kInfoCacheFastHits);
  ASSERT_TRUE(monitor->provider("Memory")->update_state(true).ok());
  std::uint64_t before = fast_hits.value();
  ASSERT_TRUE(service->execute(parse("(info=Memory)"), "/O=Grid/CN=alice", "alice").ok());
  EXPECT_EQ(fast_hits.value(), before + 1);
  // CPULoad is TTL-0 (execute every time): never a snapshot hit.
  ASSERT_TRUE(service->execute(parse("(info=CPULoad)"), "/O=Grid/CN=alice", "alice").ok());
  EXPECT_EQ(fast_hits.value(), before + 1);
}

TEST_F(SnapshotServiceTest, ExpiredSnapshotFallsBackToRefresh) {
  make_service(/*with_telemetry=*/false, /*audited=*/false);
  auto provider = monitor->provider("Memory");
  ASSERT_TRUE(provider->update_state(true).ok());
  std::uint64_t refreshes = provider->refresh_count();
  clock->advance(seconds(5));  // well past Memory's 80ms TTL
  auto result = service->execute(parse("(info=Memory)"), "/O=Grid/CN=alice", "alice");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->cached, nullptr);
  EXPECT_EQ(result->records.size(), 1u);
  EXPECT_EQ(provider->refresh_count(), refreshes + 1) << "cached-mode miss must refresh";
}

}  // namespace
}  // namespace ig::info
