#include <gtest/gtest.h>

#include "common/clock.hpp"
#include "common/id.hpp"
#include "common/rng.hpp"
#include "net/network.hpp"
#include "security/authorization.hpp"
#include "security/certificate.hpp"
#include "security/gridmap.hpp"
#include "security/handshake.hpp"
#include "security/keys.hpp"

namespace ig::security {
namespace {

// ---------- Toy RSA ----------

TEST(KeysTest, PrimalityKnownValues) {
  EXPECT_FALSE(is_prime(0));
  EXPECT_FALSE(is_prime(1));
  EXPECT_TRUE(is_prime(2));
  EXPECT_TRUE(is_prime(3));
  EXPECT_FALSE(is_prime(4));
  EXPECT_TRUE(is_prime(104729));           // 10000th prime
  EXPECT_FALSE(is_prime(104729ULL * 3));
  EXPECT_TRUE(is_prime(2147483647ULL));    // 2^31 - 1
  EXPECT_FALSE(is_prime(2147483647ULL * 2147483647ULL));
}

TEST(KeysTest, SignVerifyRoundtrip) {
  Rng rng(77);
  KeyPair pair = KeyPair::generate(rng);
  std::uint64_t digest = fnv1a("hello grid");
  std::uint64_t sig = pair.sign(digest);
  EXPECT_TRUE(verify(pair.pub, digest, sig));
}

TEST(KeysTest, TamperedDigestFailsVerification) {
  Rng rng(78);
  KeyPair pair = KeyPair::generate(rng);
  std::uint64_t sig = pair.sign(fnv1a("original"));
  EXPECT_FALSE(verify(pair.pub, fnv1a("tampered"), sig));
}

TEST(KeysTest, WrongKeyFailsVerification) {
  Rng rng(79);
  KeyPair a = KeyPair::generate(rng);
  KeyPair b = KeyPair::generate(rng);
  std::uint64_t digest = fnv1a("msg");
  EXPECT_FALSE(verify(b.pub, digest, a.sign(digest)));
}

TEST(KeysTest, PublicKeyStringRoundtrip) {
  Rng rng(80);
  KeyPair pair = KeyPair::generate(rng);
  PublicKey back;
  ASSERT_TRUE(PublicKey::from_string(pair.pub.to_string(), back));
  EXPECT_EQ(back, pair.pub);
  EXPECT_FALSE(PublicKey::from_string("garbage", back));
  EXPECT_FALSE(PublicKey::from_string("1/2/3", back));
}

// ---------- Certificates ----------

class CertTest : public ::testing::Test {
 protected:
  CertTest()
      : clock(seconds(1000)),
        ca("/O=Grid/CN=Test CA", seconds(1000000), clock, 42),
        rng(99) {
    trust.add_root(ca.root_certificate());
  }
  VirtualClock clock;
  CertificateAuthority ca;
  TrustStore trust;
  Rng rng;
};

TEST_F(CertTest, SerializeParseRoundtrip) {
  auto cred = ca.issue("/O=Grid/CN=alice", CertType::kUser, seconds(3600));
  auto parsed = Certificate::parse(cred.certificate().serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value(), cred.certificate());
}

TEST_F(CertTest, ParseRejectsMalformed) {
  EXPECT_FALSE(Certificate::parse("subject=/O=x").ok());  // missing fields
  EXPECT_FALSE(Certificate::parse("nonsense").ok());
  EXPECT_FALSE(Certificate::parse("subject=a\nkey=bad\nsignature=1").ok());
}

TEST_F(CertTest, IssuedCertVerifies) {
  auto cred = ca.issue("/O=Grid/CN=alice", CertType::kUser, seconds(3600));
  auto subject = trust.verify_chain(cred.chain(), clock.now());
  ASSERT_TRUE(subject.ok());
  EXPECT_EQ(subject.value(), "/O=Grid/CN=alice");
}

TEST_F(CertTest, ExpiredCertRejected) {
  auto cred = ca.issue("/O=Grid/CN=alice", CertType::kUser, seconds(10));
  clock.advance(seconds(11));
  auto subject = trust.verify_chain(cred.chain(), clock.now());
  ASSERT_FALSE(subject.ok());
  EXPECT_EQ(subject.code(), ErrorCode::kDenied);
}

TEST_F(CertTest, UntrustedIssuerRejected) {
  CertificateAuthority rogue("/O=Evil/CN=Rogue CA", seconds(1000000), clock, 666);
  auto cred = rogue.issue("/O=Grid/CN=alice", CertType::kUser, seconds(3600));
  EXPECT_FALSE(trust.verify_chain(cred.chain(), clock.now()).ok());
}

TEST_F(CertTest, TamperedCertificateRejected) {
  auto cred = ca.issue("/O=Grid/CN=alice", CertType::kUser, seconds(3600));
  auto chain = cred.chain();
  chain.front().subject = "/O=Grid/CN=mallory";  // forge the subject
  EXPECT_FALSE(trust.verify_chain(chain, clock.now()).ok());
}

TEST_F(CertTest, EmptyChainRejected) {
  EXPECT_FALSE(trust.verify_chain({}, clock.now()).ok());
}

TEST_F(CertTest, ProxyDelegationVerifiesToBaseSubject) {
  auto user = ca.issue("/O=Grid/CN=alice", CertType::kUser, seconds(3600));
  auto proxy = user.delegate_proxy(seconds(600), clock, rng);
  ASSERT_TRUE(proxy.ok());
  EXPECT_EQ(proxy->certificate().type, CertType::kProxy);
  EXPECT_EQ(proxy->base_subject(), "/O=Grid/CN=alice");
  auto subject = trust.verify_chain(proxy->chain(), clock.now());
  ASSERT_TRUE(subject.ok());
  // The gridmap identity is the *base* subject, not the proxy DN.
  EXPECT_EQ(subject.value(), "/O=Grid/CN=alice");
}

TEST_F(CertTest, ProxyOfProxyVerifies) {
  auto user = ca.issue("/O=Grid/CN=alice", CertType::kUser, seconds(3600));
  auto proxy1 = user.delegate_proxy(seconds(600), clock, rng);
  ASSERT_TRUE(proxy1.ok());
  auto proxy2 = proxy1->delegate_proxy(seconds(60), clock, rng);
  ASSERT_TRUE(proxy2.ok());
  auto subject = trust.verify_chain(proxy2->chain(), clock.now());
  ASSERT_TRUE(subject.ok());
  EXPECT_EQ(subject.value(), "/O=Grid/CN=alice");
}

TEST_F(CertTest, ProxyLifetimeClippedToDelegator) {
  auto user = ca.issue("/O=Grid/CN=alice", CertType::kUser, seconds(100));
  auto proxy = user.delegate_proxy(seconds(100000), clock, rng);
  ASSERT_TRUE(proxy.ok());
  EXPECT_EQ(proxy->certificate().not_after, user.certificate().not_after);
}

TEST_F(CertTest, ExpiredProxyRejectedWhileUserStillValid) {
  auto user = ca.issue("/O=Grid/CN=alice", CertType::kUser, seconds(3600));
  auto proxy = user.delegate_proxy(seconds(10), clock, rng);
  ASSERT_TRUE(proxy.ok());
  clock.advance(seconds(11));
  EXPECT_FALSE(trust.verify_chain(proxy->chain(), clock.now()).ok());
  EXPECT_TRUE(trust.verify_chain(user.chain(), clock.now()).ok());
}

TEST_F(CertTest, DelegationFromExpiredCertFails) {
  auto user = ca.issue("/O=Grid/CN=alice", CertType::kUser, seconds(10));
  clock.advance(seconds(11));
  EXPECT_FALSE(user.delegate_proxy(seconds(10), clock, rng).ok());
}

TEST_F(CertTest, ForgedProxyChainRejected) {
  auto alice = ca.issue("/O=Grid/CN=alice", CertType::kUser, seconds(3600));
  auto bob = ca.issue("/O=Grid/CN=bob", CertType::kUser, seconds(3600));
  auto proxy = alice.delegate_proxy(seconds(600), clock, rng);
  ASSERT_TRUE(proxy.ok());
  // Splice bob in as the delegator: subject prefix no longer matches.
  std::vector<Certificate> forged = {proxy->chain().front(), bob.certificate()};
  EXPECT_FALSE(trust.verify_chain(forged, clock.now()).ok());
}

TEST_F(CertTest, ChainSerializationRoundtrip) {
  auto user = ca.issue("/O=Grid/CN=alice", CertType::kUser, seconds(3600));
  auto proxy = user.delegate_proxy(seconds(600), clock, rng);
  ASSERT_TRUE(proxy.ok());
  auto text = TrustStore::serialize_chain(proxy->chain());
  auto parsed = TrustStore::parse_chain(text);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value(), proxy->chain());
}

// ---------- GridMap ----------

TEST(GridMapTest, MapAndDeny) {
  GridMap map;
  map.add("/O=Grid/CN=alice", "alice");
  auto hit = map.map("/O=Grid/CN=alice");
  ASSERT_TRUE(hit.ok());
  EXPECT_EQ(hit.value(), "alice");
  auto miss = map.map("/O=Grid/CN=bob");
  ASSERT_FALSE(miss.ok());
  EXPECT_EQ(miss.code(), ErrorCode::kDenied);
  map.remove("/O=Grid/CN=alice");
  EXPECT_FALSE(map.contains("/O=Grid/CN=alice"));
}

TEST(GridMapTest, ParseClassicFormat) {
  auto map = GridMap::parse(
      "# comment line\n"
      "\"/O=Grid/CN=alice\" alice\n"
      "\n"
      "\"/O=Grid/OU=ANL/CN=gregor von laszewski\" gregor\n");
  ASSERT_TRUE(map.ok());
  EXPECT_EQ(map->size(), 2u);
  EXPECT_EQ(map->map("/O=Grid/OU=ANL/CN=gregor von laszewski").value(), "gregor");
}

TEST(GridMapTest, ParseErrors) {
  EXPECT_FALSE(GridMap::parse("/O=Grid/CN=x account").ok());   // unquoted DN
  EXPECT_FALSE(GridMap::parse("\"/O=Grid/CN=x\"").ok());       // missing account
  EXPECT_FALSE(GridMap::parse("\"/O=Grid/CN=x account").ok()); // unterminated quote
}

TEST(GridMapTest, SerializeRoundtrip) {
  GridMap map;
  map.add("/O=Grid/CN=alice", "alice");
  map.add("/O=Grid/CN=bob", "bob");
  auto back = GridMap::parse(map.serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->size(), 2u);
  EXPECT_EQ(back->map("/O=Grid/CN=bob").value(), "bob");
}

// ---------- Authorization ----------

TEST(AuthorizationTest, DefaultDecisionApplies) {
  AuthorizationPolicy deny_by_default(Decision::kDeny);
  EXPECT_EQ(deny_by_default.evaluate("/O=Grid/CN=x", "r", "submit", seconds(0)),
            Decision::kDeny);
  AuthorizationPolicy allow_by_default(Decision::kAllow);
  EXPECT_EQ(allow_by_default.evaluate("/O=Grid/CN=x", "r", "submit", seconds(0)),
            Decision::kAllow);
}

TEST(AuthorizationTest, FirstMatchWins) {
  AuthorizationPolicy policy(Decision::kDeny);
  policy.add_rule({"/O=Grid/CN=alice", "*", "*", std::nullopt, Decision::kDeny});
  policy.add_rule({"/O=Grid/CN=*", "*", "*", std::nullopt, Decision::kAllow});
  EXPECT_EQ(policy.evaluate("/O=Grid/CN=alice", "r", "submit", seconds(0)), Decision::kDeny);
  EXPECT_EQ(policy.evaluate("/O=Grid/CN=bob", "r", "submit", seconds(0)), Decision::kAllow);
}

TEST(AuthorizationTest, PaperContractThreeToFourPm) {
  // "allow access to this resource from 3 to 4 pm to user X"
  AuthorizationPolicy policy(Decision::kDeny);
  Rule rule;
  rule.subject_pattern = "/O=Grid/CN=x";
  rule.resource_pattern = "hot.mcs.anl.gov";
  rule.window = TimeWindow{seconds(15 * 3600), seconds(16 * 3600)};
  policy.add_rule(rule);
  auto at = [](int hour, int minute) { return seconds(hour * 3600 + minute * 60); };
  EXPECT_EQ(policy.evaluate("/O=Grid/CN=x", "hot.mcs.anl.gov", "submit", at(15, 30)),
            Decision::kAllow);
  EXPECT_EQ(policy.evaluate("/O=Grid/CN=x", "hot.mcs.anl.gov", "submit", at(14, 59)),
            Decision::kDeny);
  EXPECT_EQ(policy.evaluate("/O=Grid/CN=x", "hot.mcs.anl.gov", "submit", at(16, 0)),
            Decision::kDeny);
  EXPECT_EQ(policy.evaluate("/O=Grid/CN=y", "hot.mcs.anl.gov", "submit", at(15, 30)),
            Decision::kDeny);
  // Window recurs the next day.
  EXPECT_EQ(policy.evaluate("/O=Grid/CN=x", "hot.mcs.anl.gov", "submit",
                            seconds(86400) + at(15, 30)),
            Decision::kAllow);
}

TEST(AuthorizationTest, ParsePolicyText) {
  auto policy = AuthorizationPolicy::parse(
      "# rules\n"
      "allow /O=Grid/CN=alice * submit 54000-57600\n"
      "deny * * * \n");
  ASSERT_TRUE(policy.ok());
  EXPECT_EQ(policy->rule_count(), 2u);
  EXPECT_EQ(policy->evaluate("/O=Grid/CN=alice", "r", "submit", seconds(55000)),
            Decision::kAllow);
  EXPECT_EQ(policy->evaluate("/O=Grid/CN=alice", "r", "submit", seconds(1000)),
            Decision::kDeny);
}

TEST(AuthorizationTest, ParseErrors) {
  EXPECT_FALSE(AuthorizationPolicy::parse("maybe * * *").ok());
  EXPECT_FALSE(AuthorizationPolicy::parse("allow * *").ok());
  EXPECT_FALSE(AuthorizationPolicy::parse("allow * * * 100").ok());
  EXPECT_FALSE(AuthorizationPolicy::parse("allow * * * 200-100").ok());
}

TEST(AuthorizationTest, AuthorizeStatus) {
  AuthorizationPolicy policy(Decision::kDeny);
  auto status = policy.authorize("/O=Grid/CN=x", "res", "query", seconds(0));
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), ErrorCode::kDenied);
}

// ---------- Handshake over the simulated network ----------

class HandshakeTest : public ::testing::Test {
 protected:
  HandshakeTest()
      : clock(seconds(1000)),
        ca("/O=Grid/CN=HS CA", seconds(1000000), clock, 21),
        server_cred(ca.issue("/O=Grid/CN=host/srv", CertType::kHost, seconds(100000))),
        alice(ca.issue("/O=Grid/CN=alice", CertType::kUser, seconds(100000))) {
    trust.add_root(ca.root_certificate());
    gridmap.add("/O=Grid/CN=alice", "alice");
  }

  void start_server(const GridMap* map) {
    authenticator = std::make_unique<Authenticator>(server_cred, &trust, map, &clock);
    ASSERT_TRUE(network.listen(addr, authenticator->wrap([](const net::Message&,
                                                            net::Session& session) {
      return net::Message::ok("user=" + session.local_user().value_or("?"));
    })));
  }

  VirtualClock clock;
  net::Network network;
  net::Address addr{"srv", 1};
  CertificateAuthority ca;
  TrustStore trust;
  GridMap gridmap;
  Credential server_cred;
  Credential alice;
  std::unique_ptr<Authenticator> authenticator;
};

TEST_F(HandshakeTest, MutualAuthenticationSucceeds) {
  start_server(&gridmap);
  auto conn = network.connect(addr);
  ASSERT_TRUE(conn.ok());
  auto server_subject = authenticate(**conn, alice, trust, clock);
  ASSERT_TRUE(server_subject.ok());
  EXPECT_EQ(server_subject.value(), "/O=Grid/CN=host/srv");
  auto resp = (*conn)->request(net::Message("WHOAMI"));
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->body, "user=alice");
  // Handshake is exactly two round trips.
  EXPECT_EQ((*conn)->stats().requests, 3u);
}

TEST_F(HandshakeTest, UnauthenticatedRequestRejected) {
  start_server(&gridmap);
  auto conn = network.connect(addr);
  ASSERT_TRUE(conn.ok());
  auto resp = (*conn)->request(net::Message("WHOAMI"));
  ASSERT_TRUE(resp.ok());
  EXPECT_TRUE(resp->is_error());
  EXPECT_EQ(net::Message::to_error(*resp).code, ErrorCode::kDenied);
}

TEST_F(HandshakeTest, UnknownUserDeniedByGridmap) {
  start_server(&gridmap);
  auto mallory = ca.issue("/O=Grid/CN=mallory", CertType::kUser, seconds(100000));
  auto conn = network.connect(addr);
  ASSERT_TRUE(conn.ok());
  auto result = authenticate(**conn, mallory, trust, clock);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.code(), ErrorCode::kDenied);
}

TEST_F(HandshakeTest, NoGridmapServiceAcceptsAnyTrustedUser) {
  start_server(nullptr);  // info-style service: authn without local account
  auto bob = ca.issue("/O=Grid/CN=bob", CertType::kUser, seconds(100000));
  auto conn = network.connect(addr);
  ASSERT_TRUE(conn.ok());
  EXPECT_TRUE(authenticate(**conn, bob, trust, clock).ok());
}

TEST_F(HandshakeTest, ProxyCredentialAuthenticatesAsBaseSubject) {
  start_server(&gridmap);
  Rng rng(5);
  auto proxy = alice.delegate_proxy(seconds(600), clock, rng);
  ASSERT_TRUE(proxy.ok());
  auto conn = network.connect(addr);
  ASSERT_TRUE(conn.ok());
  ASSERT_TRUE(authenticate(**conn, *proxy, trust, clock).ok());
  auto resp = (*conn)->request(net::Message("WHOAMI"));
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->body, "user=alice");
}

TEST_F(HandshakeTest, ExpiredCredentialRejected) {
  start_server(&gridmap);
  auto shortlived = ca.issue("/O=Grid/CN=alice", CertType::kUser, seconds(5));
  clock.advance(seconds(6));
  auto conn = network.connect(addr);
  ASSERT_TRUE(conn.ok());
  EXPECT_FALSE(authenticate(**conn, shortlived, trust, clock).ok());
}

TEST_F(HandshakeTest, ClientRejectsUntrustedServer) {
  // Server presents a certificate from a CA the client does not trust.
  CertificateAuthority rogue("/O=Evil/CN=CA", seconds(1000000), clock, 91);
  auto rogue_server = rogue.issue("/O=Evil/CN=host/srv", CertType::kHost, seconds(100000));
  Authenticator rogue_auth(rogue_server, &trust, &gridmap, &clock);
  ASSERT_TRUE(network.listen(addr, rogue_auth.wrap([](const net::Message&, net::Session&) {
    return net::Message::ok();
  })));
  auto conn = network.connect(addr);
  ASSERT_TRUE(conn.ok());
  auto result = authenticate(**conn, alice, trust, clock);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.code(), ErrorCode::kDenied);
}

TEST_F(HandshakeTest, ProveWithoutHelloRejected) {
  start_server(&gridmap);
  auto conn = network.connect(addr);
  ASSERT_TRUE(conn.ok());
  net::Message prove("AUTH_PROVE", TrustStore::serialize_chain(alice.chain()));
  prove.with("proof", "12345");
  auto resp = (*conn)->request(prove);
  ASSERT_TRUE(resp.ok());
  EXPECT_TRUE(resp->is_error());
}

}  // namespace
}  // namespace ig::security
