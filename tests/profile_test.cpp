// Continuous profiler (src/obs/profile): lock-contention attribution
// with trace exemplars, allocation scopes, scheduler wait/window stats,
// the profile keyword family, and the TTL-0 freshness guarantees the
// whole obs keyword family relies on (never stale-served, never
// prefetched).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.hpp"
#include "core/infogram_service.hpp"
#include "exec/fork_backend.hpp"
#include "info/obs_provider.hpp"
#include "info/provider.hpp"
#include "obs/profile.hpp"
#include "obs/propagation.hpp"
#include "obs/telemetry.hpp"
#include "test_util.hpp"

namespace ig {
namespace {

// ---------- lock contention ----------

class ProfileLockContentionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::LockContentionRegistry::instance().reset();
    obs::LockContentionRegistry::install();
  }
  void TearDown() override {
    obs::LockContentionRegistry::uninstall();
    obs::LockContentionRegistry::instance().reset();
  }
};

TEST_F(ProfileLockContentionTest, ContendedWaitRecordedUnderReportNameWithExemplar) {
  Mutex mu(lock_rank::kStats, "test.ProfileLock");
  VirtualClock clock(seconds(1));
  obs::TraceContext trace(clock, "contender");

  std::atomic<bool> contender_running{false};
  mu.lock();
  std::thread contender([&] {
    // The wait is recorded on *this* thread, so its active trace is the
    // exemplar candidate.
    obs::TraceScope scope(trace);
    contender_running.store(true);
    mu.lock();
    mu.unlock();
  });
  while (!contender_running.load()) std::this_thread::yield();
  // The contender is at (or microseconds from) the blocking lock();
  // holding on makes the try_lock fast path miss deterministically
  // visible in the recorded wait.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  mu.unlock();
  contender.join();

  std::vector<obs::LockContentionRegistry::Entry> snapshot =
      obs::LockContentionRegistry::instance().snapshot();
  const obs::LockContentionRegistry::Entry* entry = nullptr;
  for (const auto& e : snapshot) {
    if (e.name == "test.ProfileLock") entry = &e;
  }
  ASSERT_NE(entry, nullptr) << "contended lock missing from registry snapshot";
  EXPECT_EQ(entry->rank, lock_rank::kStats);
  EXPECT_GE(entry->waits, 1u);
  EXPECT_GT(entry->total_ns, 0u);
  EXPECT_GT(entry->max_ns, 0u);
  // The slowest wait happened under the contender's active trace.
  EXPECT_EQ(entry->exemplar_trace, trace.id());
  std::uint64_t bucketed = 0;
  for (std::uint64_t b : entry->buckets) bucketed += b;
  EXPECT_EQ(bucketed, entry->waits);
  EXPECT_GE(obs::LockContentionRegistry::instance().total_waits(), entry->waits);
}

TEST_F(ProfileLockContentionTest, SharedMutexReaderWaitsAreRecorded) {
  SharedMutex mu(lock_rank::kStats, "test.ProfileSharedLock");
  std::atomic<bool> contender_running{false};
  mu.lock();  // exclusive: readers must block
  std::thread reader([&] {
    contender_running.store(true);
    mu.lock_shared();
    mu.unlock_shared();
  });
  while (!contender_running.load()) std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  mu.unlock();
  reader.join();

  bool found = false;
  for (const auto& e : obs::LockContentionRegistry::instance().snapshot()) {
    if (e.name == "test.ProfileSharedLock" && e.waits >= 1) found = true;
  }
  EXPECT_TRUE(found);
}

TEST_F(ProfileLockContentionTest, UncontendedAcquisitionsRecordNothing) {
  Mutex mu(lock_rank::kStats, "test.ProfileQuietLock");
  for (int i = 0; i < 100; ++i) {
    MutexLock lock(mu);
  }
  for (const auto& e : obs::LockContentionRegistry::instance().snapshot()) {
    EXPECT_NE(e.name, "test.ProfileQuietLock");
  }
}

// ---------- allocation scopes ----------

TEST(ProfileAllocScopeTest, DeltaMatchesBuildConfiguration) {
  obs::AllocScope scope;
  std::vector<std::string> hoard;
  hoard.reserve(64);
  for (int i = 0; i < 64; ++i) {
    hoard.emplace_back("allocation-attribution-payload-" + std::to_string(i));
  }
  if (obs::alloc_internal::counting_enabled()) {
    EXPECT_GT(scope.allocs(), 0u);
    EXPECT_GT(scope.bytes(), 0u);
  } else {
    EXPECT_EQ(scope.allocs(), 0u);
    EXPECT_EQ(scope.bytes(), 0u);
  }
}

TEST(ProfileAllocScopeTest, NestedScopesSeeIndependentDeltas) {
  if (!obs::alloc_internal::counting_enabled()) GTEST_SKIP() << "IG_PROFILE_ALLOC off";
  obs::AllocScope outer;
  auto before_inner = outer.allocs();
  {
    obs::AllocScope inner;
    std::string filler(4096, 'x');
    EXPECT_GT(inner.allocs(), 0u);
  }
  // Inner work counts in the outer scope too.
  EXPECT_GT(outer.allocs(), before_inner);
}

TEST(ProfileAllocScopeTest, ProfilerAggregatesPerKeyword) {
  obs::Profiler profiler;
  profiler.record_alloc("ignored", 1, 1);  // disabled: must not aggregate
  EXPECT_TRUE(profiler.keyword_allocs().empty());
  profiler.set_enabled(true);
  profiler.record_alloc("Memory", 10, 1000);
  profiler.record_alloc("Memory", 20, 3000);
  profiler.record_alloc("Cpu", 1, 100);
  auto allocs = profiler.keyword_allocs();
  ASSERT_EQ(allocs.size(), 2u);
  // Sorted hottest-by-bytes first.
  EXPECT_EQ(allocs[0].first, "Memory");
  EXPECT_EQ(allocs[0].second.samples, 2u);
  EXPECT_EQ(allocs[0].second.allocs, 30u);
  EXPECT_EQ(allocs[0].second.bytes, 4000u);
  EXPECT_EQ(allocs[0].second.max_bytes, 3000u);
  EXPECT_EQ(allocs[1].first, "Cpu");
}

// ---------- scheduler profile ----------

TEST(ProfileThreadPoolTest, WindowHighwaterResetsWhileMonotoneHighwaterPersists) {
  ThreadPool pool(ThreadPool::Options{1, 8});
  std::atomic<int> done{0};
  ThreadPool::Hooks hooks;
  std::atomic<int> task_done_calls{0};
  std::atomic<std::int64_t> min_wait_us{0}, min_busy_us{0};
  hooks.on_task_done = [&](std::size_t, Duration wait, Duration busy) {
    // Runs on the worker thread: record, assert back on the main thread.
    if (wait.count() < min_wait_us.load()) min_wait_us.store(wait.count());
    if (busy.count() < min_busy_us.load()) min_busy_us.store(busy.count());
    task_done_calls.fetch_add(1);
  };
  pool.set_hooks(std::move(hooks));

  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  ASSERT_TRUE(pool.submit([gate, &done] {
    gate.wait();
    done.fetch_add(1);
  }).ok());
  // The single worker is (about to be) busy; these two stack the queue.
  ASSERT_TRUE(pool.submit([gate, &done] {
    gate.wait();
    done.fetch_add(1);
  }).ok());
  ASSERT_TRUE(pool.submit([gate, &done] {
    gate.wait();
    done.fetch_add(1);
  }).ok());
  // Depth reached 2 queued tasks at some point (worker may or may not
  // have dequeued the first yet — highwater is at least 2 either way).
  release.set_value();
  while (done.load() < 3 || task_done_calls.load() < 3 || pool.stats().executed < 3u) {
    std::this_thread::yield();
  }

  ThreadPool::Stats before = pool.snapshot_and_reset_window();
  EXPECT_GE(before.highwater, 2u);
  EXPECT_EQ(before.window_highwater, before.highwater);
  EXPECT_EQ(before.executed, 3u);
  EXPECT_GE(min_wait_us.load(), 0);
  EXPECT_GE(min_busy_us.load(), 0);

  ThreadPool::Stats after = pool.stats();
  // The burst no longer shadows the window; the monotone view keeps it.
  EXPECT_EQ(after.window_highwater, 0u);
  EXPECT_GE(after.highwater, 2u);
  pool.shutdown();
}

// ---------- span allocation propagation ----------

TEST(ProfileSpanEncodingTest, AllocFieldsSurviveWireRoundtrip) {
  obs::SpanRecord span;
  span.id = 0xabc;
  span.parent_id = 0x12;
  span.name = "info:Memory";
  span.node = "n1";
  span.start = TimePoint(1000);
  span.duration = Duration(250);
  span.status = "ok";
  span.allocs = 42;
  span.alloc_bytes = 4096;
  std::vector<obs::SpanRecord> decoded = obs::decode_spans(obs::encode_spans({span}));
  ASSERT_EQ(decoded.size(), 1u);
  EXPECT_EQ(decoded[0], span);
}

TEST(ProfileSpanEncodingTest, LegacySevenFieldRecordsStillDecode) {
  // A pre-profiler peer's record: 7 comma-separated fields, no alloc
  // columns. Must decode with allocs defaulting to zero.
  std::string legacy = "abc,12,info%3aMemory,n1,1000,250,ok";
  std::vector<obs::SpanRecord> decoded = obs::decode_spans(legacy);
  ASSERT_EQ(decoded.size(), 1u);
  EXPECT_EQ(decoded[0].id, 0xabcu);
  EXPECT_EQ(decoded[0].name, "info:Memory");
  EXPECT_EQ(decoded[0].allocs, 0u);
  EXPECT_EQ(decoded[0].alloc_bytes, 0u);
}

TEST(ProfileSpanEncodingTest, SetSpanAllocTargetsRootAndNamedSpans) {
  VirtualClock clock(seconds(1));
  obs::TraceContext trace(clock, "request");
  std::uint64_t child_id = 0;
  {
    obs::TraceContext::Span child = trace.span("info:Memory");
    child_id = child.id();
  }
  trace.set_span_alloc(0, 5, 500);          // 0 = root span
  trace.set_span_alloc(child_id, 7, 700);   // by id
  obs::TraceRecord record = trace.finish();
  ASSERT_EQ(record.spans.size(), 2u);
  EXPECT_EQ(record.spans[0].allocs, 5u);
  EXPECT_EQ(record.spans[0].alloc_bytes, 500u);
  EXPECT_EQ(record.spans[1].allocs, 7u);
  EXPECT_EQ(record.spans[1].alloc_bytes, 700u);
  // Spent context: further stamps are dropped, not crashes.
  trace.set_span_alloc(0, 9, 900);
}

// ---------- TTL-0 freshness of the obs keyword family ----------

class ProfileTtl0FreshnessTest : public ig::test::GridFixture {};

TEST_F(ProfileTtl0FreshnessTest, ObsKeywordsNeverCachedNorPrefetched) {
  auto monitor = std::make_shared<info::SystemMonitor>(*clock, "test.sim");
  auto telemetry = std::make_shared<obs::Telemetry>(*clock, "test.sim");
  monitor->set_telemetry(telemetry);
  ASSERT_TRUE(info::register_obs_providers(*monitor, telemetry).ok());
  ASSERT_TRUE(info::register_profile_providers(*monitor, telemetry).ok());
  ASSERT_TRUE(info::register_health_provider(*monitor).ok());

  const std::vector<std::string> keywords = {"metrics", "metrics.jobs", "traces",
                                             "slo",     "alerts",       "health",
                                             "profile", "profile.locks", "profile.pool"};
  for (const std::string& kw : keywords) {
    auto provider = monitor->provider(kw);
    ASSERT_NE(provider, nullptr) << kw;
    EXPECT_EQ(provider->ttl(), Duration(0)) << kw;
    // TTL-0 keywords cannot be kept warm: the prefetcher must always
    // skip them, before AND after they have served a query.
    EXPECT_EQ(provider->prefetch_state(0.2),
              info::ManagedProvider::PrefetchState::kDisabled)
        << kw;
    auto first = provider->get(rsl::ResponseMode::kCached);
    ASSERT_TRUE(first.ok()) << kw;
    EXPECT_EQ(provider->prefetch_state(0.2),
              info::ManagedProvider::PrefetchState::kDisabled)
        << kw;
    clock->advance(seconds(5));
    auto second = provider->get(rsl::ResponseMode::kCached);
    ASSERT_TRUE(second.ok()) << kw;
    // Execute-every-time: the second query re-ran the producer at the
    // advanced clock instead of serving the cached record.
    EXPECT_GT(second->generated_at.count(), first->generated_at.count()) << kw;
  }
}

TEST_F(ProfileTtl0FreshnessTest, FailingObsStyleProviderSurfacesErrorNotStaleRecord) {
  auto monitor = std::make_shared<info::SystemMonitor>(*clock, "test.sim");
  // Same registration shape as the obs family: TTL 0, degradation shield
  // off. After a success, a failure must surface as an error — serving
  // yesterday's telemetry as live would defeat the whole keyword.
  std::atomic<bool> fail{false};
  info::ProviderOptions live;
  live.ttl = Duration(0);
  live.resilience.serve_stale_on_error = false;
  ASSERT_TRUE(monitor
                  ->add_source(std::make_shared<info::FunctionSource>(
                                   "flaky",
                                   [&fail]() -> Result<format::InfoRecord> {
                                     if (fail.load()) {
                                       return Error(ErrorCode::kUnavailable, "producer down");
                                     }
                                     format::InfoRecord record;
                                     record.keyword = "flaky";
                                     record.add("value", "1");
                                     return record;
                                   },
                                   "function:flaky"),
                               live)
                  .ok());
  auto provider = monitor->provider("flaky");
  ASSERT_TRUE(provider->get(rsl::ResponseMode::kCached).ok());
  fail.store(true);
  auto result = provider->get(rsl::ResponseMode::kCached);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.code(), ErrorCode::kUnavailable);
}

// ---------- service-level profile keywords ----------

class ProfileServiceTest : public ig::test::GridFixture {
 protected:
  std::shared_ptr<info::SystemMonitor> make_monitor() {
    auto monitor = std::make_shared<info::SystemMonitor>(*clock, "test.sim");
    info::ProviderOptions options;
    options.ttl = Duration(0);  // every query resolves, so attribution sees it
    EXPECT_TRUE(monitor
                    ->add_source(std::make_shared<info::FunctionSource>(
                                     "Memory",
                                     []() -> Result<format::InfoRecord> {
                                       format::InfoRecord record;
                                       record.keyword = "Memory";
                                       record.add("total", "1024");
                                       return record;
                                     },
                                     "function:Memory"),
                                 options)
                    .ok());
    return monitor;
  }

  rsl::XrslRequest parse(const std::string& body) {
    auto parsed = rsl::XrslRequest::parse(body);
    EXPECT_TRUE(parsed.ok());
    return parsed.value();
  }
};

TEST_F(ProfileServiceTest, ProfileKeywordFamilyQueryableThroughService) {
  auto monitor = make_monitor();
  auto telemetry = std::make_shared<obs::Telemetry>(*clock, "test.sim");
  auto backend = std::make_shared<exec::ForkBackend>(registry, *clock);
  core::InfoGramConfig config;
  config.host = "test.sim";
  config.telemetry = telemetry;
  config.trace_sample_every = 1;
  config.worker_threads = 2;  // pool attaches to the profiler
  core::InfoGramService service(monitor, backend, host_cred, &trust, &gridmap, &policy,
                                clock.get(), logger, config);

  // submit_async, not execute(): the request-allocation histograms are
  // observed on the admitted-request path (process / worker run), which
  // is also what wires the AllocScope around the whole request.
  for (int i = 0; i < 4; ++i) {
    auto result =
        service.submit_async(parse("(info=Memory)"), "/O=Grid/CN=alice", "alice").get();
    ASSERT_TRUE(result.ok());
  }

  auto profile = service.execute(parse("(info=profile)"), "/O=Grid/CN=alice", "alice");
  ASSERT_TRUE(profile.ok());
  ASSERT_EQ(profile->records.size(), 1u);
  const format::InfoRecord& record = profile->records.front();
  const format::Attribute* enabled = record.find("profile:enabled");
  ASSERT_NE(enabled, nullptr);
  EXPECT_EQ(enabled->value, "true");
  if (obs::alloc_internal::counting_enabled()) {
    // Memory resolutions were attributed per keyword. (Names carrying a
    // ':' are not keyword-namespaced by InfoRecord::add.)
    const format::Attribute* hottest = record.find("alloc:hot.1");
    ASSERT_NE(hottest, nullptr);
    EXPECT_NE(hottest->value.find("Memory"), std::string::npos);
  }

  auto pool_profile =
      service.execute(parse("(info=profile.pool)"), "/O=Grid/CN=alice", "alice");
  ASSERT_TRUE(pool_profile.ok());
  ASSERT_EQ(pool_profile->records.size(), 1u);
  const format::InfoRecord& pool_record = pool_profile->records.front();
  EXPECT_NE(pool_record.find("core.request:executed"), nullptr);
  EXPECT_NE(pool_record.find("core.request:window_highwater"), nullptr);

  auto locks = service.execute(parse("(info=profile.locks)"), "/O=Grid/CN=alice", "alice");
  ASSERT_TRUE(locks.ok());
  ASSERT_EQ(locks->records.size(), 1u);
  EXPECT_NE(locks->records.front().find("profile.locks:count"), nullptr);

  // Request allocation histograms observed (full fidelity) when the
  // build counts allocations.
  if (obs::alloc_internal::counting_enabled()) {
    auto metrics = telemetry->metrics_record("metrics");
    const format::Attribute* count =
        metrics.find(std::string(obs::metric::kProfileRequestAllocs) + ":count");
    ASSERT_NE(count, nullptr);
    EXPECT_NE(count->value, "0");
  }
}

TEST_F(ProfileServiceTest, ProfilingOffKeepsKeywordFamilyUnregistered) {
  auto monitor = make_monitor();
  auto telemetry = std::make_shared<obs::Telemetry>(*clock, "test.sim");
  auto backend = std::make_shared<exec::ForkBackend>(registry, *clock);
  core::InfoGramConfig config;
  config.host = "test.sim";
  config.telemetry = telemetry;
  config.profiling = false;
  core::InfoGramService service(monitor, backend, host_cred, &trust, &gridmap, &policy,
                                clock.get(), logger, config);
  EXPECT_FALSE(telemetry->profiler().enabled());
  EXPECT_EQ(monitor->provider("profile"), nullptr);
  auto result = service.execute(parse("(info=profile)"), "/O=Grid/CN=alice", "alice");
  EXPECT_FALSE(result.ok());
}

}  // namespace
}  // namespace ig
