// Concurrent request pipeline: ThreadPool admission control, parallel
// submit_async, multi-keyword fan-out, and the background TTL prefetcher.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "common/thread_pool.hpp"
#include "core/config.hpp"
#include "core/infogram_service.hpp"
#include "exec/fork_backend.hpp"
#include "info/prefetcher.hpp"
#include "info/provider.hpp"
#include "test_util.hpp"

namespace ig::core {
namespace {

// ---------- ThreadPool ----------

TEST(ThreadPoolTest, ExecutesSubmittedTasks) {
  ThreadPool pool({.workers = 4, .queue_depth = 128});
  std::atomic<int> ran{0};
  for (int i = 0; i < 100; ++i) {
    Status admitted = pool.submit([&] { ran.fetch_add(1); });
    ASSERT_TRUE(admitted.ok()) << "submit " << i << ": " << admitted.to_string();
  }
  pool.shutdown();
  EXPECT_EQ(ran.load(), 100);
  auto stats = pool.stats();
  EXPECT_EQ(stats.submitted, 100u);
  EXPECT_EQ(stats.executed, 100u);
  EXPECT_EQ(stats.shed, 0u);
}

TEST(ThreadPoolTest, ShedsWithDocumentedErrorWhenQueueFull) {
  ThreadPool pool({.workers = 1, .queue_depth = 2});
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  bool started = false;
  ASSERT_TRUE(pool.submit([&] {
                    std::unique_lock lock(mu);
                    started = true;
                    cv.notify_all();
                    cv.wait(lock, [&] { return release; });
                  })
                  .ok());
  {
    std::unique_lock lock(mu);
    cv.wait(lock, [&] { return started; });
  }
  // Worker busy; queue takes exactly two more.
  ASSERT_TRUE(pool.submit([] {}).ok());
  ASSERT_TRUE(pool.submit([] {}).ok());
  Status shed = pool.submit([] {});
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.code(), ErrorCode::kUnavailable);
  EXPECT_NE(shed.error().message.find("admission queue full"), std::string::npos);
  {
    std::lock_guard lock(mu);
    release = true;
  }
  cv.notify_all();
  pool.shutdown();
  auto stats = pool.stats();
  EXPECT_EQ(stats.shed, 1u);
  EXPECT_EQ(stats.highwater, 2u);
  EXPECT_EQ(stats.executed, 3u);
}

TEST(ThreadPoolTest, SubmitAfterShutdownFails) {
  ThreadPool pool({.workers = 1, .queue_depth = 4});
  pool.shutdown();
  Status status = pool.submit([] {});
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), ErrorCode::kUnavailable);
}

TEST(ThreadPoolTest, FanOutRunsEveryItemExactlyOnce) {
  ThreadPool pool({.workers = 3, .queue_depth = 8});
  std::vector<std::atomic<int>> counts(64);
  pool.fan_out(counts.size(), [&](std::size_t i) { counts[i].fetch_add(1); });
  for (auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(ThreadPoolTest, NestedFanOutDoesNotDeadlock) {
  // Every worker blocks in its own fan_out; caller participation must keep
  // all of them making progress.
  ThreadPool pool({.workers = 2, .queue_depth = 32});
  std::atomic<int> leaf{0};
  pool.fan_out(4, [&](std::size_t) {
    pool.fan_out(4, [&](std::size_t) { leaf.fetch_add(1); });
  });
  EXPECT_EQ(leaf.load(), 16);
}

// ---------- Service pipeline ----------

class ConcurrencyTest : public ig::test::GridFixture {
 protected:
  ConcurrencyTest() : backend(std::make_shared<exec::ForkBackend>(registry, *clock)) {}

  void make_service(InfoGramConfig config) {
    config.host = "test.sim";
    config.telemetry = std::make_shared<obs::Telemetry>(*clock);
    monitor = std::make_shared<info::SystemMonitor>(*clock, config.host);
    ASSERT_TRUE(Configuration::table1().apply(*monitor, registry).ok());
    service = std::make_unique<InfoGramService>(monitor, backend, host_cred, &trust,
                                                &gridmap, &policy, clock.get(), logger,
                                                config);
  }

  obs::MetricsRegistry& metrics() { return service_telemetry()->metrics(); }
  std::shared_ptr<obs::Telemetry> service_telemetry() { return monitor->telemetry(); }

  rsl::XrslRequest parse(const std::string& body) {
    auto parsed = rsl::XrslRequest::parse(body);
    EXPECT_TRUE(parsed.ok());
    return parsed.value();
  }

  std::shared_ptr<exec::ForkBackend> backend;
  std::shared_ptr<info::SystemMonitor> monitor;
  std::unique_ptr<InfoGramService> service;
};

TEST_F(ConcurrencyTest, SubmitAsyncWithoutPoolRunsInline) {
  make_service({});
  auto future = service->submit_async(parse("(info=Memory)"), "/O=Grid/CN=alice", "alice");
  ASSERT_EQ(future.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  auto result = future.get();
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->records.size(), 1u);
  EXPECT_EQ(result->records[0].keyword, "Memory");
}

TEST_F(ConcurrencyTest, ParallelStormLosesNoResponses) {
  InfoGramConfig config;
  config.worker_threads = 4;
  config.queue_depth = 512;
  make_service(config);

  const std::vector<std::string> keywords = {"Date", "Memory", "CPU", "CPULoad", "list"};
  constexpr int kThreads = 8;
  constexpr int kPerThread = 25;
  std::vector<std::thread> clients;
  std::mutex mu;
  // future -> the keyword its response must carry.
  std::vector<std::pair<std::future<Result<InfoGramResult>>, std::string>> inflight;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const std::string& kw = keywords[(t * kPerThread + i) % keywords.size()];
        auto future = service->submit_async(parse("(info=" + kw + ")(response=immediate)"),
                                            "/O=Grid/CN=alice", "alice");
        std::lock_guard lock(mu);
        inflight.emplace_back(std::move(future), kw);
      }
    });
  }
  for (auto& t : clients) t.join();
  ASSERT_EQ(inflight.size(), static_cast<std::size_t>(kThreads * kPerThread));
  for (auto& [future, kw] : inflight) {
    auto result = future.get();
    ASSERT_TRUE(result.ok()) << result.error().to_string();
    ASSERT_EQ(result->records.size(), 1u);
    EXPECT_EQ(result->records[0].keyword, kw);  // no cross-wired responses
  }
  EXPECT_EQ(metrics().counter(obs::metric::kRequestsTotal).value(),
            static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(metrics().counter(obs::metric::kRequestsErrors).value(), 0u);
  // A worker resolves the caller's future *before* it books the task as
  // executed, so give the accounting a moment to catch up.
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(2);
  while (service->pool()->stats().executed < static_cast<std::uint64_t>(kThreads * kPerThread) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  auto stats = service->pool()->stats();
  EXPECT_EQ(stats.executed, static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(stats.shed, 0u);
}

TEST_F(ConcurrencyTest, FanOutJoinIsOrderStable) {
  InfoGramConfig config;
  config.worker_threads = 4;
  make_service(config);
  for (int round = 0; round < 20; ++round) {
    auto future = service->submit_async(
        parse("(info=Date)(info=Memory)(info=CPU)(info=CPULoad)(info=list)"
              "(response=immediate)"),
        "/O=Grid/CN=alice", "alice");
    auto result = future.get();
    ASSERT_TRUE(result.ok());
    ASSERT_EQ(result->records.size(), 5u);
    EXPECT_EQ(result->records[0].keyword, "Date");
    EXPECT_EQ(result->records[1].keyword, "Memory");
    EXPECT_EQ(result->records[2].keyword, "CPU");
    EXPECT_EQ(result->records[3].keyword, "CPULoad");
    EXPECT_EQ(result->records[4].keyword, "list");
  }
}

TEST_F(ConcurrencyTest, QueueOverflowShedsWithErrorAndMetricsMatch) {
  InfoGramConfig config;
  config.worker_threads = 1;
  config.queue_depth = 2;
  make_service(config);

  // A provider the test can hold open, so the single worker stays busy.
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  bool started = false;
  auto blocker = std::make_shared<info::FunctionSource>(
      "Block",
      [&]() -> Result<format::InfoRecord> {
        std::unique_lock lock(mu);
        started = true;
        cv.notify_all();
        cv.wait(lock, [&] { return release; });
        format::InfoRecord record;
        record.add("Block:value", "1");
        return record;
      },
      "function:block");
  ASSERT_TRUE(monitor->add_source(blocker, info::ProviderOptions{.ttl = ms(0)}).ok());

  auto first = service->submit_async(parse("(info=Block)"), "/O=Grid/CN=alice", "alice");
  {
    std::unique_lock lock(mu);
    cv.wait(lock, [&] { return started; });
  }
  std::vector<std::future<Result<InfoGramResult>>> queued;
  queued.push_back(service->submit_async(parse("(info=Block)"), "/O=Grid/CN=alice", "alice"));
  queued.push_back(service->submit_async(parse("(info=Block)"), "/O=Grid/CN=alice", "alice"));

  auto shed = service->submit_async(parse("(info=Block)"), "/O=Grid/CN=alice", "alice");
  ASSERT_EQ(shed.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  auto shed_result = shed.get();
  ASSERT_FALSE(shed_result.ok());
  EXPECT_EQ(shed_result.code(), ErrorCode::kUnavailable);
  EXPECT_NE(shed_result.error().message.find("admission queue full"), std::string::npos);

  {
    std::lock_guard lock(mu);
    release = true;
  }
  cv.notify_all();
  ASSERT_TRUE(first.get().ok());
  for (auto& f : queued) ASSERT_TRUE(f.get().ok());
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(2);
  while (service->pool()->stats().executed < 3 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  auto stats = service->pool()->stats();
  EXPECT_EQ(stats.shed, 1u);
  EXPECT_EQ(stats.highwater, 2u);
  EXPECT_EQ(metrics().counter(obs::metric::kPoolShed).value(), 1u);
  EXPECT_EQ(metrics().gauge(obs::metric::kPoolQueueHighwater).value(), 2);
  EXPECT_EQ(metrics().counter(obs::metric::kRequestsErrors).value(), 1u);
  // Per-worker utilization counters exist and add up to the executed tasks.
  EXPECT_EQ(metrics().counter(std::string(obs::metric::kPoolWorkerPrefix) + "0.tasks").value(),
            stats.executed);
}

// ---------- Background TTL prefetch ----------

TEST_F(ConcurrencyTest, PrefetchKeepsExpiringKeywordWarm) {
  make_service({});
  auto hot = std::make_shared<info::FunctionSource>(
      "Hot",
      []() -> Result<format::InfoRecord> {
        format::InfoRecord record;
        record.add("Hot:value", "42");
        return record;
      },
      "function:hot");
  ASSERT_TRUE(monitor->add_source(hot, info::ProviderOptions{.ttl = ms(1000)}).ok());
  auto provider = monitor->provider("Hot");
  ASSERT_NE(provider, nullptr);

  ASSERT_TRUE(monitor->get("Hot", rsl::ResponseMode::kCached).ok());  // prime
  EXPECT_EQ(provider->refresh_count(), 1u);

  info::PrefetchOptions options;
  options.scan_interval = std::chrono::milliseconds(2);
  options.margin_fraction = 0.25;
  ASSERT_TRUE(monitor->start_prefetch(options).ok());
  ASSERT_FALSE(monitor->start_prefetch(options).ok());  // already running

  // 800ms of the 1000ms TTL gone: inside the 25% margin, still fresh.
  clock->advance(ms(800));
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (provider->refresh_count() < 2 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GE(provider->refresh_count(), 2u) << "prefetcher never refreshed the keyword";

  // The keyword stayed warm: a cached read succeeds with no inline refresh.
  std::uint64_t refreshes = provider->refresh_count();
  auto cached = provider->query_state();
  ASSERT_TRUE(cached.ok()) << cached.error().to_string();
  EXPECT_EQ(provider->refresh_count(), refreshes);

  const auto* prefetcher = monitor->prefetcher();
  ASSERT_NE(prefetcher, nullptr);
  EXPECT_GE(prefetcher->hits(), 1u);
  EXPECT_GE(metrics().counter(obs::metric::kPrefetchHits).value(), 1u);
  monitor->stop_prefetch();
}

TEST_F(ConcurrencyTest, PrefetchScanCountsExpiredAsMissAndSkipsColdProviders) {
  make_service({});
  auto src = [](const std::string& kw) {
    return std::make_shared<info::FunctionSource>(
        kw,
        [kw]() -> Result<format::InfoRecord> {
          format::InfoRecord record;
          record.add(kw + ":value", "1");
          return record;
        },
        "function:" + kw);
  };
  ASSERT_TRUE(monitor->add_source(src("Expired"), info::ProviderOptions{.ttl = ms(100)}).ok());
  ASSERT_TRUE(monitor->add_source(src("Cold"), info::ProviderOptions{.ttl = ms(100)}).ok());
  ASSERT_TRUE(monitor->add_source(src("Always"), info::ProviderOptions{.ttl = ms(0)}).ok());

  ASSERT_TRUE(monitor->get("Expired", rsl::ResponseMode::kCached).ok());
  clock->advance(ms(500));  // well past the 100ms TTL

  info::Prefetcher prefetcher(*monitor, {});
  EXPECT_EQ(prefetcher.scan_once(), 1u);  // only "Expired" refreshed
  EXPECT_EQ(prefetcher.hits(), 0u);
  EXPECT_EQ(prefetcher.misses(), 1u);
  EXPECT_EQ(monitor->provider("Cold")->refresh_count(), 0u);    // never queried: skipped
  EXPECT_EQ(monitor->provider("Always")->refresh_count(), 0u);  // TTL 0: skipped
  EXPECT_EQ(monitor->provider("Expired")->refresh_count(), 2u);
  EXPECT_GE(metrics().counter(obs::metric::kPrefetchMisses).value(), 1u);
}

TEST_F(ConcurrencyTest, ServiceConfigStartsAndStopsPrefetch) {
  InfoGramConfig config;
  config.prefetch = true;
  config.prefetch_options.scan_interval = std::chrono::milliseconds(5);
  make_service(config);
  const auto* prefetcher = monitor->prefetcher();
  ASSERT_NE(prefetcher, nullptr);
  EXPECT_TRUE(prefetcher->running());
  service.reset();  // destructor must stop the thread cleanly
  EXPECT_FALSE(monitor->prefetcher()->running());
}

}  // namespace
}  // namespace ig::core
