// Ablation — centralized GIIS vs JXTA-style P2P discovery (paper Sec. 10:
// "We are also experimenting with integration of our framework in Web
// services and JXTA").
//
// For growing overlays, measure how many gossip rounds full membership
// takes (every peer knows every peer) and the total gossip messages sent,
// against the GIIS baseline where discovery is a registration plus one
// aggregate query. Expected shape: gossip converges in O(log n) rounds
// with O(n * fanout) messages per round — no central point, but more
// traffic and bounded staleness; the GIIS answers in one round trip per
// client but every resource must register and the aggregate is the
// single point of failure.
#include "bench_util.hpp"

#include "grid/p2p_discovery.hpp"
#include "mds/giis.hpp"
#include "mds/gris.hpp"

using namespace ig;  // NOLINT

int main() {
  bench::header("Ablation / P2P gossip discovery vs centralized GIIS");
  std::printf("%-7s | %-16s %-16s | %-22s\n", "peers", "rounds to full",
              "gossip messages", "GIIS entries (1 query)");
  bench::rule(70);

  for (int n : {4, 8, 16, 32, 64}) {
    VirtualClock clock(seconds(1000));
    net::Network network;

    // --- P2P overlay bootstrapped as a line (worst case).
    std::vector<std::unique_ptr<grid::DiscoveryPeer>> peers;
    for (int i = 0; i < n; ++i) {
      std::string host = "p" + std::to_string(i) + ".sim";
      peers.push_back(std::make_unique<grid::DiscoveryPeer>(
          network, clock, host, net::Address{host, 2135},
          [i] { return 0.01 * i; }, grid::GossipConfig{},
          static_cast<std::uint64_t>(i) + 9));
    }
    for (int i = 1; i < n; ++i) peers[i]->add_neighbor(peers[i - 1]->gossip_address());

    auto full = [&] {
      for (const auto& peer : peers) {
        if (peer->view().size() != static_cast<std::size_t>(n)) return false;
      }
      return true;
    };
    int rounds = 0;
    while (!full() && rounds < 100) {
      for (auto& peer : peers) peer->tick();
      clock.advance(ms(100));
      ++rounds;
    }
    std::uint64_t messages = 0;
    for (const auto& peer : peers) messages += peer->messages_sent();

    // --- GIIS baseline: register every resource, one aggregate query.
    auto system = std::make_shared<exec::SimSystem>(clock, 5, "giis.sim");
    auto registry = exec::CommandRegistry::standard(clock, system, 6);
    mds::Giis giis("vo", clock, seconds(60));
    for (int i = 0; i < n; ++i) {
      auto monitor = std::make_shared<info::SystemMonitor>(clock, "g" + std::to_string(i));
      info::ProviderOptions provider_options;
      provider_options.ttl = seconds(60);
      (void)monitor->add_source(
          std::make_shared<info::CommandSource>("CPULoad", "/usr/local/bin/cpuload.exe",
                                                registry),
          provider_options);
      giis.register_child(
          std::make_shared<mds::Gris>(monitor, "g" + std::to_string(i), clock));
    }
    auto entries = giis.search("o=Grid", mds::Scope::kSubtree, mds::Filter::match_all());
    std::size_t giis_count = entries.ok() ? entries->size() : 0;

    std::printf("%-7d | %-16d %-16llu | %-22zu\n", n, rounds,
                static_cast<unsigned long long>(messages), giis_count);
  }
  std::printf(
      "\nExpected shape: rounds grow ~logarithmically in peer count while\n"
      "messages grow ~linearly per round; the GIIS resolves everything in one\n"
      "query but is a registration-time dependency and single point of failure.\n");
  return 0;
}
