// Ablation — application checkpointing (paper Sec. 6/10: restart enabled
// through checkpointing). A 100-step sandbox task fails once at varying
// points; with checkpointing the restart resumes, without it the restart
// redoes everything. The table reports total steps executed and the
// wasted (re-executed) fraction. Expected shape: waste grows linearly
// with the failure point without checkpointing and stays ~0 with it.
#include <atomic>

#include "bench_util.hpp"

#include "common/id.hpp"
#include "common/strings.hpp"
#include "exec/checkpoint.hpp"
#include "exec/sandbox.hpp"

using namespace ig;  // NOLINT

namespace {

constexpr int kSteps = 100;

/// Runs the task through the InfoGram restart machinery; returns total
/// steps executed across both attempts.
int run(int fail_at_step, bool with_checkpoints) {
  bench::Stack stack(static_cast<std::uint64_t>(fail_at_step) * 3 +
                     (with_checkpoints ? 1 : 0));
  auto checkpoints = std::make_shared<exec::CheckpointStore>();
  exec::SandboxConfig config;
  config.capabilities = exec::CapabilitySet()
                            .grant(exec::Capability::kReadFile)
                            .grant(exec::Capability::kWriteFile);
  if (with_checkpoints) config.checkpoints = checkpoints;
  auto sandbox = std::make_shared<exec::SandboxBackend>(stack.clock, config, stack.system);

  auto steps = std::make_shared<std::atomic<int>>(0);
  auto failed_once = std::make_shared<std::atomic<bool>>(false);
  sandbox->register_task(
      "work.jar",
      [steps, failed_once, fail_at_step](
          exec::SandboxContext& ctx, const std::vector<std::string>&) -> Result<std::string> {
        int start = 0;
        if (auto saved = ctx.restore(); saved.ok()) {
          start = static_cast<int>(strings::parse_int(saved.value()).value_or(0));
        }
        for (int step = start; step < kSteps; ++step) {
          if (step == fail_at_step && !failed_once->exchange(true)) {
            return Error(ErrorCode::kInternal, "injected failure");
          }
          steps->fetch_add(1);
          (void)ctx.checkpoint(std::to_string(step + 1));  // no-op without a store
        }
        return std::string("done");
      });

  auto backend = std::make_shared<exec::ForkBackend>(stack.registry, stack.clock);
  auto monitor = stack.table1_monitor();
  core::InfoGramConfig service_config;
  service_config.host = "ck.sim";
  service_config.max_restarts = 1;
  service_config.jar_backend = sandbox;
  core::InfoGramService service(monitor, backend, stack.host_cred, &stack.trust,
                                &stack.gridmap, &stack.policy, &stack.clock, stack.logger,
                                service_config);
  if (!service.start(stack.network).ok()) std::abort();
  core::InfoGramClient client(stack.network, service.address(), stack.user, stack.trust,
                              stack.clock);
  auto resp = client.request("&(executable=work.jar)(jobtype=jar)");
  if (!resp.ok()) std::abort();
  auto status = client.wait(*resp->job_contact, seconds(60));
  if (!status.ok() || status->state != exec::JobState::kDone) std::abort();
  return steps->load();
}

}  // namespace

int main() {
  bench::header("Ablation / checkpointed restart (100-step task, one failure)");
  std::printf("%-12s | %-14s %-9s | %-14s %-9s\n", "", "no checkpoints", "",
              "checkpointed", "");
  std::printf("%-12s | %-14s %-9s | %-14s %-9s\n", "fail at step", "steps run", "waste",
              "steps run", "waste");
  bench::rule(66);
  for (int fail_at : {10, 25, 50, 75, 90}) {
    int plain = run(fail_at, false);
    int checkpointed = run(fail_at, true);
    std::printf("%-12d | %-14d %7.0f%% | %-14d %7.0f%%\n", fail_at, plain,
                100.0 * (plain - kSteps) / kSteps, checkpointed,
                100.0 * (checkpointed - kSteps) / kSteps);
  }
  std::printf(
      "\nExpected shape: without checkpoints the restart redoes the first\n"
      "fail_at steps (waste grows linearly); with checkpoints waste is 0%%.\n");
  return 0;
}
