// E6 — Sec. 6.1 fault tolerance: "The execution of jobs is made more
// robust while integrating a logging and fault tolerance mechanism that
// allows to restart a job upon failure", and the restart-from-log claim:
// "the log can be used to restart our InfoGram service in case it needs to
// be restarted".
//
// Part A sweeps the per-execution failure probability against the job
// manager's max_restarts budget and reports job success rates. Part B
// crashes a service with jobs in flight and measures how many the log
// replay recovers.
#include "bench_util.hpp"

using namespace ig;  // NOLINT

int main() {
  bench::header("E6a / restart-on-failure: success rate vs failure probability");
  std::printf("%-10s", "p(fail)");
  for (int restarts : {0, 1, 2, 3}) std::printf("  restarts=%d", restarts);
  std::printf("\n");
  bench::rule(60);

  constexpr int kJobs = 200;
  for (double p : {0.0, 0.2, 0.5, 0.8}) {
    std::printf("%-10.1f", p);
    for (int restarts : {0, 1, 2, 3}) {
      bench::Stack stack(static_cast<std::uint64_t>(p * 100) * 17 +
                         static_cast<std::uint64_t>(restarts));
      stack.registry->set_failure_rate("/bin/echo", p);
      auto backend = std::make_shared<exec::ForkBackend>(stack.registry, stack.clock);
      auto monitor = stack.table1_monitor();
      core::InfoGramConfig config;
      config.host = "ft.sim";
      config.max_restarts = restarts;
      core::InfoGramService service(monitor, backend, stack.host_cred, &stack.trust,
                                    &stack.gridmap, &stack.policy, &stack.clock,
                                    stack.logger, config);
      if (!service.start(stack.network).ok()) return 1;
      core::InfoGramClient client(stack.network, service.address(), stack.user,
                                  stack.trust, stack.clock);
      int succeeded = 0;
      for (int j = 0; j < kJobs; ++j) {
        auto contact = client.request("&(executable=/bin/echo)(arguments=ft)");
        if (!contact.ok() || !contact->job_contact) return 1;
        auto status = client.wait(*contact->job_contact, seconds(60));
        if (status.ok() && status->state == exec::JobState::kDone) ++succeeded;
      }
      std::printf("  %9.1f%%", 100.0 * succeeded / kJobs);
    }
    std::printf("\n");
  }
  std::printf(
      "\nExpected shape: success rate ~ 1 - p^(restarts+1); a budget of 3\n"
      "restarts keeps even p=0.5 jobs near-certain to complete.\n");

  bench::header("E6b / crash recovery: jobs recovered from the log after a restart");
  std::printf("%-14s %-12s %-12s\n", "jobs in log", "incomplete", "recovered");
  bench::rule(40);
  for (int jobs : {5, 20, 50}) {
    bench::Stack stack(static_cast<std::uint64_t>(jobs) * 31);
    auto backend = std::make_shared<exec::ForkBackend>(stack.registry, stack.clock);
    auto monitor = stack.table1_monitor();
    core::InfoGramConfig config;
    config.host = "crash.sim";
    core::InfoGramService service(monitor, backend, stack.host_cred, &stack.trust,
                                  &stack.gridmap, &stack.policy, &stack.clock,
                                  stack.logger, config);
    if (!service.start(stack.network).ok()) return 1;
    core::InfoGramClient client(stack.network, service.address(), stack.user, stack.trust,
                                stack.clock);
    // Half the jobs complete cleanly...
    for (int j = 0; j < jobs / 2; ++j) {
      auto contact = client.request("&(executable=/bin/echo)(arguments=clean)");
      if (!contact.ok() || !contact->job_contact) return 1;
      if (!client.wait(*contact->job_contact, seconds(30)).ok()) return 1;
    }
    // ...the rest were "in flight at crash time": their submissions appear
    // in the log without terminal events.
    int in_flight = jobs - jobs / 2;
    for (int j = 0; j < in_flight; ++j) {
      stack.logger->log(logging::EventType::kJobSubmitted, stack.user.base_subject(),
                        "bench", 900000 + static_cast<std::uint64_t>(j),
                        "&(executable=/bin/echo)(arguments=interrupted)");
    }
    service.stop();

    // Fresh service instance replays the log.
    auto monitor2 = stack.table1_monitor("crash2.sim");
    core::InfoGramConfig config2;
    config2.host = "crash2.sim";
    core::InfoGramService restarted(monitor2, backend, stack.host_cred, &stack.trust,
                                    &stack.gridmap, &stack.policy, &stack.clock,
                                    stack.logger, config2);
    if (!restarted.start(stack.network).ok()) return 1;
    auto events = stack.log_sink->events();
    auto incomplete = logging::build_recovery_plan(events).size();
    auto recovered = restarted.recover_from_log(events);
    if (!recovered.ok()) return 1;
    std::printf("%-14d %-12zu %-12zu\n", jobs, incomplete, recovered.value());
  }
  std::printf("\nExpected shape: every incomplete job is resubmitted, none of the\n"
              "completed ones are.\n");
  return 0;
}
