// E11 — the xRSL `response` tag semantics (paper Sec. 6.6): immediate /
// cached / last trade command executions against information staleness.
//
// A client queries CPULoad every 50ms for 20s under each mode (provider
// TTL 200ms, command cost 10ms). The table reports executions, the mean
// age of returned information, and the mean quality. Expected shape:
//   immediate -> one execution per query, age ~0;
//   cached    -> executions ~ horizon/TTL, age bounded by TTL;
//   last      -> one execution ever, age grows without bound.
#include "bench_util.hpp"

#include "common/id.hpp"

using namespace ig;  // NOLINT

int main() {
  bench::header("E11 / response modes: executions vs staleness");
  std::printf("%-11s %-9s %-12s %-13s %-13s\n", "mode", "queries", "executions",
              "mean age(ms)", "mean quality");
  bench::rule(60);

  const Duration horizon = seconds(20);
  const Duration interval = ms(50);

  for (auto mode : {rsl::ResponseMode::kImmediate, rsl::ResponseMode::kCached,
                    rsl::ResponseMode::kLast}) {
    bench::Stack stack(fnv1a(std::string(to_string(mode))));
    auto monitor = std::make_shared<info::SystemMonitor>(stack.clock, "resp.sim");
    info::ProviderOptions options;
    options.ttl = ms(200);
    options.degradation = std::make_shared<info::LinearDegradation>(4.0);
    if (!monitor
             ->add_source(std::make_shared<info::CommandSource>(
                              "CPULoad", "/usr/local/bin/cpuload.exe", stack.registry),
                          options)
             .ok()) {
      return 1;
    }
    auto provider = monitor->provider("CPULoad");
    // Seed the cache so response=last has something to return.
    if (!provider->update_state(true).ok()) return 1;

    std::uint64_t queries = 0;
    double age_sum_ms = 0.0;
    double quality_sum = 0.0;
    for (TimePoint start = stack.clock.now(); stack.clock.now() - start < horizon;) {
      auto record = provider->get(mode);
      if (!record.ok()) return 1;
      ++queries;
      age_sum_ms +=
          static_cast<double>((stack.clock.now() - record->generated_at).count()) / 1000.0;
      quality_sum += record->min_quality();
      stack.clock.advance(interval);
    }
    std::printf("%-11s %-9llu %-12llu %-13.1f %-13.1f\n",
                std::string(to_string(mode)).c_str(),
                static_cast<unsigned long long>(queries),
                static_cast<unsigned long long>(provider->refresh_count()),
                age_sum_ms / static_cast<double>(queries),
                quality_sum / static_cast<double>(queries));
  }
  std::printf(
      "\nExpected shape: immediate = one execution per query and near-zero age;\n"
      "cached ~= horizon/TTL executions with age bounded by the TTL; last = a\n"
      "single execution with unbounded age and decaying quality.\n");
  return 0;
}
