// Ablation — TTL self-adaptation (paper Sec. 6.1: "we are integrating in
// our service the feature of information degradation and self adaptation
// of information updates").
//
// Two synthetic sources: one near-static (changes ~0.1% per refresh), one
// volatile (~20%). Each runs under a fixed 200ms TTL and under adaptive
// TTL, queried every 50ms for 60s. The table reports executions and the
// mean relative error of returned values vs ground truth at read time.
// Expected shape: adaptation cuts executions sharply for static data at
// no accuracy cost, and improves accuracy for volatile data by shrinking
// the TTL.
#include <cmath>

#include "bench_util.hpp"

#include "common/id.hpp"
#include "common/strings.hpp"

using namespace ig;  // NOLINT

namespace {

struct SourceModel {
  const char* label;
  double amplitude;  ///< relative oscillation amplitude of the ground truth
};

struct Outcome {
  std::uint64_t executions = 0;
  double mean_rel_error = 0.0;
  Duration final_ttl{0};
};

Outcome run(const SourceModel& model, bool adaptive) {
  bench::Stack stack(fnv1a(model.label) + (adaptive ? 1 : 0));
  // Ground truth oscillates with a 4s period so its *relative* change per
  // refresh interval is stationary; the provider samples it when its
  // command runs.
  VirtualClock* clock = &stack.clock;
  auto truth = [clock, model] {
    double t = static_cast<double>(clock->now().count()) / 1e6;
    return 100.0 * (1.0 + model.amplitude * std::sin(2.0 * M_PI * t / 4.0));
  };
  stack.registry->register_command(
      "/bin/probe",
      [truth](const std::vector<std::string>&) {
        return exec::CommandResult{0, strings::format("value: %.6f\n", truth())};
      },
      ms(5));

  info::ProviderOptions options;
  options.ttl = ms(200);
  options.adaptive_ttl = adaptive;
  options.min_ttl = ms(20);
  options.max_ttl = seconds(10);
  auto monitor = std::make_shared<info::SystemMonitor>(stack.clock, "adapt.sim");
  if (!monitor
           ->add_source(std::make_shared<info::CommandSource>("Probe", "/bin/probe",
                                                              stack.registry),
                        options)
           .ok()) {
    std::abort();
  }
  auto provider = monitor->provider("Probe");

  Outcome out;
  double error_sum = 0.0;
  std::uint64_t queries = 0;
  const Duration horizon = seconds(60);
  for (TimePoint start = stack.clock.now(); stack.clock.now() - start < horizon;) {
    auto record = provider->get(rsl::ResponseMode::kCached);
    if (!record.ok()) std::abort();
    double have = *strings::parse_double(record->attributes[0].value);
    double want = truth();
    error_sum += std::abs(have - want) / std::abs(want);
    ++queries;
    stack.clock.advance(ms(50));
  }
  out.executions = provider->refresh_count();
  out.mean_rel_error = error_sum / static_cast<double>(queries);
  out.final_ttl = provider->ttl();
  return out;
}

}  // namespace

int main() {
  bench::header("Ablation / adaptive TTL vs fixed 200ms TTL (60s horizon, query/50ms)");
  std::printf("%-10s %-10s %-12s %-14s %-12s\n", "source", "ttl mode", "executions",
              "mean rel err", "final TTL(ms)");
  bench::rule(62);
  const SourceModel models[] = {
      {"static", 0.0001},
      {"volatile", 0.5},
  };
  for (const SourceModel& model : models) {
    for (bool adaptive : {false, true}) {
      Outcome out = run(model, adaptive);
      std::printf("%-10s %-10s %-12llu %-14.5f %-12lld\n", model.label,
                  adaptive ? "adaptive" : "fixed",
                  static_cast<unsigned long long>(out.executions), out.mean_rel_error,
                  static_cast<long long>(out.final_ttl.count() / 1000));
    }
  }
  std::printf(
      "\nExpected shape: adaptation grows the TTL for the static source (far\n"
      "fewer executions, same accuracy) and shrinks it for the volatile source\n"
      "(lower error at the cost of more executions).\n");
  return 0;
}
