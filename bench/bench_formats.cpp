// E7 — the xRSL `format` tag: LDIF and XML returns. Serialization and
// parse throughput as the record payload grows, via google-benchmark.
// Expected shape: both scale linearly in attribute count; LDIF is the
// denser and faster encoding, XML costs more bytes and escape handling.
#include <benchmark/benchmark.h>

#include "format/ldif.hpp"
#include "format/record.hpp"
#include "format/xml.hpp"

namespace {

using ig::format::InfoRecord;

std::vector<InfoRecord> make_records(int records, int attrs_per_record) {
  std::vector<InfoRecord> out;
  for (int r = 0; r < records; ++r) {
    InfoRecord record;
    record.keyword = "Kw" + std::to_string(r);
    record.generated_at = ig::seconds(100 + r);
    record.ttl = ig::ms(80);
    for (int a = 0; a < attrs_per_record; ++a) {
      record.add("attr" + std::to_string(a),
                 "value-" + std::to_string(a * 1315423911u % 100000), 97.5);
    }
    out.push_back(std::move(record));
  }
  return out;
}

void BM_LdifSerialize(benchmark::State& state) {
  auto records = make_records(static_cast<int>(state.range(0)), 16);
  std::size_t bytes = 0;
  for (auto _ : state) {
    auto text = ig::format::to_ldif(records);
    bytes = text.size();
    benchmark::DoNotOptimize(text);
  }
  state.counters["bytes"] = static_cast<double>(bytes);
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_LdifSerialize)->Arg(1)->Arg(8)->Arg(64);

void BM_XmlSerialize(benchmark::State& state) {
  auto records = make_records(static_cast<int>(state.range(0)), 16);
  std::size_t bytes = 0;
  for (auto _ : state) {
    auto text = ig::format::to_xml(records);
    bytes = text.size();
    benchmark::DoNotOptimize(text);
  }
  state.counters["bytes"] = static_cast<double>(bytes);
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_XmlSerialize)->Arg(1)->Arg(8)->Arg(64);

void BM_LdifParse(benchmark::State& state) {
  auto text = ig::format::to_ldif(make_records(static_cast<int>(state.range(0)), 16));
  for (auto _ : state) {
    auto records = ig::format::parse_ldif(text);
    benchmark::DoNotOptimize(records);
  }
  state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(text.size()));
}
BENCHMARK(BM_LdifParse)->Arg(1)->Arg(8)->Arg(64);

void BM_XmlParse(benchmark::State& state) {
  auto text = ig::format::to_xml(make_records(static_cast<int>(state.range(0)), 16));
  for (auto _ : state) {
    auto records = ig::format::parse_xml(text);
    benchmark::DoNotOptimize(records);
  }
  state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(text.size()));
}
BENCHMARK(BM_XmlParse)->Arg(1)->Arg(8)->Arg(64);

void BM_LdifBase64HeavyValues(benchmark::State& state) {
  // Worst case: every value needs base64 (binary-ish content).
  std::vector<InfoRecord> records(1);
  records[0].keyword = "Binary";
  records[0].ttl = ig::ms(10);
  for (int a = 0; a < 32; ++a) {
    records[0].add("blob" + std::to_string(a), std::string(64, static_cast<char>(1 + a)));
  }
  for (auto _ : state) {
    auto text = ig::format::to_ldif(records);
    benchmark::DoNotOptimize(text);
  }
}
BENCHMARK(BM_LdifBase64HeavyValues);

}  // namespace

BENCHMARK_MAIN();
