// E-CONC — concurrent request pipeline throughput.
//
// Drives a mixed info/job workload through InfoGramService::submit_async
// at 1/2/4/8 pool workers and reports ops/sec per configuration plus the
// speedup over the single-worker baseline. Unlike the other experiment
// harnesses this one runs on the *wall* clock: the point is real
// parallelism across worker threads, which virtual time cannot show.
//
// Workload shape per 8 ops: six single-keyword info queries, one
// two-keyword query (exercises the fan-out join), one job submission
// (/bin/echo through the fork backend). Info keywords rotate over 16
// TTL-0 providers whose producers sleep ~2ms — a stand-in for the command
// execution cost behind a real MDS information provider — so distinct
// keywords refresh concurrently while the per-provider update lock still
// serializes collisions, exactly as in the service.
//
// Expected shape: near-linear scaling to 4 workers (>= 2x over 1), then
// flattening as provider collisions and the admission queue lock bite.
#include <chrono>
#include <cstdio>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "info/provider.hpp"
#include "obs/profile.hpp"

using namespace ig;  // NOLINT

namespace {

constexpr int kKeywords = 16;
constexpr int kOps = 384;  // divisible by 8 (workload period) and by 16
constexpr auto kProviderCost = std::chrono::milliseconds(2);

std::string burn_keyword(int i) { return "burn" + std::to_string(i % kKeywords); }

/// Everything one configuration needs, on the wall clock.
struct WallStack {
  WallClock& clock = WallClock::instance();
  std::unique_ptr<security::CertificateAuthority> ca;
  security::TrustStore trust;
  security::GridMap gridmap;
  security::AuthorizationPolicy policy{security::Decision::kAllow};
  security::Credential user;
  security::Credential host_cred;
  std::shared_ptr<logging::Logger> logger;
  std::shared_ptr<exec::SimSystem> system;
  std::shared_ptr<exec::CommandRegistry> registry;
  std::shared_ptr<info::SystemMonitor> monitor;
  std::shared_ptr<exec::ForkBackend> backend;
  std::shared_ptr<obs::Telemetry> telemetry;
  std::unique_ptr<core::InfoGramService> service;

  /// `profiled` wires full-fidelity telemetry + the continuous profiler
  /// (the untimed epilogue only — measured rows stay uninstrumented).
  explicit WallStack(std::size_t workers, bool profiled = false) {
    ca = std::make_unique<security::CertificateAuthority>(
        "/O=Grid/CN=Bench CA", seconds(365LL * 86400), clock, 7);
    trust.add_root(ca->root_certificate());
    user = ca->issue("/O=Grid/CN=bench", security::CertType::kUser, seconds(864000));
    host_cred = ca->issue("/O=Grid/CN=host/load.sim", security::CertType::kHost,
                          seconds(365LL * 86400));
    gridmap.add("/O=Grid/CN=bench", "bench");
    logger = std::make_shared<logging::Logger>(clock);
    system = std::make_shared<exec::SimSystem>(clock, 7, "load.sim");
    registry = exec::CommandRegistry::standard(clock, system, 7);
    monitor = std::make_shared<info::SystemMonitor>(clock, "load.sim");
    for (int i = 0; i < kKeywords; ++i) {
      std::string kw = burn_keyword(i);
      auto source = std::make_shared<info::FunctionSource>(
          kw,
          [kw]() -> Result<format::InfoRecord> {
            std::this_thread::sleep_for(kProviderCost);
            format::InfoRecord record;
            record.keyword = kw;
            record.add("value", "1");
            return record;
          },
          "function:" + kw);
      // TTL 0: every query refreshes inline, paying the provider cost —
      // the worst case the pool is supposed to parallelize.
      if (!monitor->add_source(source, info::ProviderOptions{.ttl = Duration{0}}).ok()) {
        std::abort();
      }
    }
    backend = std::make_shared<exec::ForkBackend>(registry, clock);
    core::InfoGramConfig config;
    config.host = "load.sim";
    config.worker_threads = workers;
    config.queue_depth = kOps + 64;  // admission never sheds in this bench
    if (profiled) {
      telemetry = std::make_shared<obs::Telemetry>(clock, "load.sim");
      config.telemetry = telemetry;
      config.trace_sample_every = 1;  // every request traced: exemplars guaranteed
    }
    service = std::make_unique<core::InfoGramService>(monitor, backend, host_cred,
                                                      &trust, &gridmap, &policy, &clock,
                                                      logger, config);
  }
};

rsl::XrslRequest parse_or_die(const std::string& body) {
  auto parsed = rsl::XrslRequest::parse(body);
  if (!parsed.ok()) {
    std::fprintf(stderr, "bad RSL %s: %s\n", body.c_str(),
                 parsed.error().to_string().c_str());
    std::abort();
  }
  return parsed.value();
}

rsl::XrslRequest op_request(int i) {
  switch (i % 8) {
    case 7:  // job submission through the same pipeline
      return parse_or_die("&(executable=/bin/echo)(arguments=ping)");
    case 3:  // two-keyword query: fan-out + order-stable join
      return parse_or_die("(info=" + burn_keyword(i) + ")(info=" + burn_keyword(i + 1) +
                          ")");
    default:
      return parse_or_die("(info=" + burn_keyword(i) + ")");
  }
}

struct Row {
  std::size_t workers;
  double elapsed_ms;
  double ops_per_sec;
  std::uint64_t executed;
  std::uint64_t shed;
};

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReport report("concurrent_load", argc, argv);
  bench::header("E-CONC: submit_async throughput vs pool size (wall clock)");
  std::vector<Row> rows;

  for (std::size_t workers : {1u, 2u, 4u, 8u}) {
    WallStack stack(workers);
    // Warm the code paths (first-touch allocation, lazy schema) untimed.
    for (int i = 0; i < kKeywords; ++i) {
      auto warm = stack.service->submit_async(parse_or_die("(info=" + burn_keyword(i) + ")"),
                                              "/O=Grid/CN=bench", "bench");
      if (!warm.get().ok()) return 1;
    }

    std::vector<std::future<Result<core::InfoGramResult>>> inflight;
    inflight.reserve(kOps);
    auto begin = std::chrono::steady_clock::now();
    for (int i = 0; i < kOps; ++i) {
      inflight.push_back(stack.service->submit_async(op_request(i), "/O=Grid/CN=bench",
                                                     "bench"));
    }
    std::vector<std::string> contacts;
    for (auto& future : inflight) {
      auto result = future.get();
      if (!result.ok()) {
        std::fprintf(stderr, "op failed: %s\n", result.error().to_string().c_str());
        return 1;
      }
      if (result->job_contact) contacts.push_back(*result->job_contact);
    }
    auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
        std::chrono::steady_clock::now() - begin);
    // Job completion drains outside the timed window (jobs run on fork
    // threads; the pipeline op being measured is the submission).
    for (const auto& contact : contacts) {
      if (!stack.service->wait(contact, seconds(30)).ok()) return 1;
    }

    Row row;
    row.workers = workers;
    row.elapsed_ms = static_cast<double>(elapsed.count()) / 1000.0;
    row.ops_per_sec = elapsed.count() > 0
                          ? static_cast<double>(kOps) * 1e6 /
                                static_cast<double>(elapsed.count())
                          : 0.0;
    auto stats = stack.service->pool()->stats();
    row.executed = stats.executed;
    row.shed = stats.shed;
    rows.push_back(row);
    // Per-op share of the batch, so the JSON ops_per_sec is the measured
    // *throughput* (1e6 / mean) rather than an isolated latency.
    double per_op = static_cast<double>(elapsed.count()) / kOps;
    for (int i = 0; i < kOps; ++i) {
      report.add("workers_" + std::to_string(workers), per_op);
    }
  }

  double baseline = rows.front().ops_per_sec;
  std::printf("%-8s %12s %12s %10s %10s %8s\n", "workers", "elapsed(ms)", "ops/sec",
              "executed", "shed", "speedup");
  bench::rule(66);
  for (const auto& row : rows) {
    std::printf("%-8zu %12.1f %12.1f %10llu %10llu %7.2fx\n", row.workers, row.elapsed_ms,
                row.ops_per_sec, static_cast<unsigned long long>(row.executed),
                static_cast<unsigned long long>(row.shed),
                baseline > 0.0 ? row.ops_per_sec / baseline : 0.0);
  }
  std::printf(
      "\nExpected shape: >= 2x ops/sec at 4 workers over 1 (provider cost\n"
      "dominates and distinct keywords refresh concurrently).\n");

  // Untimed epilogue — the profiler's acceptance path: run the same
  // contended workload on a profiled stack, then ask the service itself
  // which locks the contention landed on (info=profile.locks). The
  // measured rows above stay uninstrumented.
  bench::header("profile.locks after a profiled 8-worker run");
  {
    WallStack stack(8, /*profiled=*/true);
    obs::LockContentionRegistry::instance().reset();  // this run only
    std::vector<std::future<Result<core::InfoGramResult>>> inflight;
    inflight.reserve(kOps);
    for (int i = 0; i < kOps; ++i) {
      if (i % 8 == 7) continue;  // info-only: keep the epilogue brisk
      inflight.push_back(stack.service->submit_async(op_request(i), "/O=Grid/CN=bench",
                                                     "bench"));
    }
    for (auto& future : inflight) {
      if (!future.get().ok()) return 1;
    }
    auto profile = stack.service
                       ->submit_async(parse_or_die("(info=profile.locks)"),
                                      "/O=Grid/CN=bench", "bench")
                       .get();
    if (!profile.ok() || profile->records.empty()) {
      std::fprintf(stderr, "profile.locks query failed\n");
      return 1;
    }
    for (const auto& attr : profile->records.front().attributes) {
      std::printf("  %-58s %s\n", attr.name.c_str(), attr.value.c_str());
    }
  }
  return 0;
}
