// E8 — J-GRAM job execution: submission-to-completion overhead per backend
// family (fork, batch, matchmaking, sandbox shared/isolated), measured as
// wall time of the framework itself (command costs run on a virtual clock,
// so the numbers isolate scheduling/bookkeeping overhead — the quantity
// that differs between scheduler families).
#include <benchmark/benchmark.h>

#include "exec/batch_backend.hpp"
#include "exec/fork_backend.hpp"
#include "exec/matchmaking_backend.hpp"
#include "exec/sandbox.hpp"

namespace {

using namespace ig;  // NOLINT

struct Env {
  VirtualClock clock{seconds(1000)};
  std::shared_ptr<exec::SimSystem> system =
      std::make_shared<exec::SimSystem>(clock, 5, "bench.sim");
  std::shared_ptr<exec::CommandRegistry> registry =
      exec::CommandRegistry::standard(clock, system, 6);
};

exec::JobRequest echo_request() {
  exec::JobRequest request;
  request.spec.executable = "/bin/echo";
  request.spec.arguments = {"bench"};
  request.local_user = "bench";
  return request;
}

void run_lifecycle(benchmark::State& state, exec::LocalJobExecution& backend,
                   const exec::JobRequest& request) {
  for (auto _ : state) {
    auto id = backend.submit(request);
    if (!id.ok()) {
      state.SkipWithError("submit failed");
      return;
    }
    auto status = backend.wait(*id, seconds(30));
    if (!status.ok() || status->state != exec::JobState::kDone) {
      state.SkipWithError("job did not complete");
      return;
    }
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_ForkBackend(benchmark::State& state) {
  Env env;
  exec::ForkBackend backend(env.registry, env.clock);
  run_lifecycle(state, backend, echo_request());
}
BENCHMARK(BM_ForkBackend)->Unit(benchmark::kMicrosecond);

void BM_BatchBackend(benchmark::State& state) {
  Env env;
  exec::BatchConfig config;
  config.nodes = static_cast<int>(state.range(0));
  config.load_per_job = 0.0;
  exec::BatchBackend backend(env.registry, env.clock, config, env.system);
  run_lifecycle(state, backend, echo_request());
}
BENCHMARK(BM_BatchBackend)->Arg(1)->Arg(4)->Unit(benchmark::kMicrosecond);

void BM_MatchmakingBackend(benchmark::State& state) {
  Env env;
  std::vector<exec::NodeSpec> nodes;
  for (int i = 0; i < state.range(0); ++i) {
    nodes.push_back({"n" + std::to_string(i),
                     {{"mem_kb", std::to_string(131072 * (i + 1))}, {"arch", "sim"}}});
  }
  exec::MatchmakingBackend backend(env.registry, env.clock, nodes, env.system, 0.0);
  auto request = echo_request();
  request.spec.environment["requirements"] = "arch==sim && mem_kb>=131072";
  run_lifecycle(state, backend, request);
}
BENCHMARK(BM_MatchmakingBackend)->Arg(1)->Arg(4)->Unit(benchmark::kMicrosecond);

void BM_SandboxShared(benchmark::State& state) {
  Env env;
  exec::SandboxConfig config;
  exec::SandboxBackend backend(env.clock, config, env.system);
  backend.register_task("t.jar", [](exec::SandboxContext& ctx, const auto&) {
    (void)ctx.charge(100);
    return Result<std::string>(std::string("ok"));
  });
  exec::JobRequest request;
  request.spec.executable = "t.jar";
  request.spec.job_type = "jar";
  run_lifecycle(state, backend, request);
}
BENCHMARK(BM_SandboxShared)->Unit(benchmark::kMicrosecond);

void BM_SandboxIsolated(benchmark::State& state) {
  // Models "start up a number of external JVM": a per-job startup charge.
  Env env;
  exec::SandboxConfig config;
  config.mode = exec::SandboxMode::kIsolated;
  exec::SandboxBackend backend(env.clock, config, env.system);
  backend.register_task("t.jar", [](exec::SandboxContext& ctx, const auto&) {
    (void)ctx.charge(100);
    return Result<std::string>(std::string("ok"));
  });
  exec::JobRequest request;
  request.spec.executable = "t.jar";
  request.spec.job_type = "jar";
  run_lifecycle(state, backend, request);
}
BENCHMARK(BM_SandboxIsolated)->Unit(benchmark::kMicrosecond);

void BM_ForkBackendBurst(benchmark::State& state) {
  // Submission throughput: N jobs in flight before the first wait.
  Env env;
  exec::ForkBackend backend(env.registry, env.clock);
  auto request = echo_request();
  const int burst = static_cast<int>(state.range(0));
  for (auto _ : state) {
    std::vector<exec::JobId> ids;
    ids.reserve(static_cast<std::size_t>(burst));
    for (int i = 0; i < burst; ++i) {
      auto id = backend.submit(request);
      if (!id.ok()) {
        state.SkipWithError("submit failed");
        return;
      }
      ids.push_back(*id);
    }
    for (auto id : ids) {
      if (!backend.wait(id, seconds(30)).ok()) {
        state.SkipWithError("wait failed");
        return;
      }
    }
  }
  state.SetItemsProcessed(state.iterations() * burst);
}
BENCHMARK(BM_ForkBackendBurst)->Arg(16)->Arg(64)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
