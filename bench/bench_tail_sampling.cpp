// E-TAIL — tail-based trace retention overhead on the request pipeline.
//
// Three identical InfoGram stacks on the wall clock, all with telemetry
// at the production default (1 in kDefaultTraceSampling head-sampled),
// differing only in the tail layer:
//   head_only    tail_sampling = false: the PR-8 head-only regime — the
//                baseline the gate is measured against
//   tail         tail_sampling = true (the shipped default): every
//                head-declined request opens a provisional trace in the
//                holding ring and is classified at finish
//   tail_faulty  tail regime with 1 in kFaultEvery ops erroring —
//                informational: shows the anomaly path (verdict, ring
//                promotion, retention) while clean traffic still
//                discards; NOT part of the gate, since the error path
//                itself (envelope, no payload) costs differently
//
// All serve the same TTL-0 info workload through submit_async; providers
// cost nothing, so the measured delta is the tail machinery itself — the
// provisional TraceContext allocation, the holding-ring insert, and the
// classify-at-finish verdict — the worst case, since real provider work
// only dilutes it. Stacks run requests inline (worker_threads = 0) for
// the same reason bench_trace_overhead does: pool wake jitter swamps
// sub-µs deltas and the machinery under test is identical either way.
//
// Measurement protocol (shared with bench_trace_overhead): short slices
// of every stack interleave within each round, rotating start order;
// every overhead is the MEDIAN over rounds of the PAIRED per-round ratio
// against the baseline slice of the same round.
//
// Acceptance (ISSUE 9): <= 5% ops/sec regression for `tail` over
// `head_only` — the price of 100% anomaly retention on a clean workload.
// With --enforce the bench exits 2 when the gate is missed (the
// enforced-gate code bench_compare.py and check.sh treat as hard fail).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "info/provider.hpp"
#include "obs/telemetry.hpp"

using namespace ig;  // NOLINT

namespace {

constexpr int kKeywords = 16;
constexpr int kRounds = 36;        // one interleaved slice of each series per round
constexpr int kOpsPerBatch = 250;  // sequential submit_async round-trips per slice
constexpr int kFaultEvery = 8;     // tail_faulty: every 8th op on a keyword errors

std::string burn_keyword(int i) { return "burn" + std::to_string(i % kKeywords); }

/// One inline-execution stack on the wall clock, telemetry always on.
struct TailStack {
  WallClock& clock = WallClock::instance();
  std::unique_ptr<security::CertificateAuthority> ca;
  security::TrustStore trust;
  security::GridMap gridmap;
  security::AuthorizationPolicy policy{security::Decision::kAllow};
  security::Credential host_cred;
  std::shared_ptr<logging::Logger> logger;
  std::shared_ptr<exec::SimSystem> system;
  std::shared_ptr<exec::CommandRegistry> registry;
  std::shared_ptr<info::SystemMonitor> monitor;
  std::shared_ptr<exec::ForkBackend> backend;
  std::shared_ptr<obs::Telemetry> telemetry;
  std::unique_ptr<core::InfoGramService> service;

  TailStack(bool tail, bool faulty) {
    ca = std::make_unique<security::CertificateAuthority>(
        "/O=Grid/CN=Bench CA", seconds(365LL * 86400), clock, 7);
    trust.add_root(ca->root_certificate());
    host_cred = ca->issue("/O=Grid/CN=host/tail.sim", security::CertType::kHost,
                          seconds(365LL * 86400));
    gridmap.add("/O=Grid/CN=bench", "bench");
    logger = std::make_shared<logging::Logger>(clock);
    system = std::make_shared<exec::SimSystem>(clock, 7, "tail.sim");
    registry = exec::CommandRegistry::standard(clock, system, 7);
    monitor = std::make_shared<info::SystemMonitor>(clock, "tail.sim");
    for (int i = 0; i < kKeywords; ++i) {
      std::string kw = burn_keyword(i);
      auto calls = std::make_shared<std::atomic<std::uint64_t>>(0);
      auto source = std::make_shared<info::FunctionSource>(
          kw,
          [kw, faulty, calls]() -> Result<format::InfoRecord> {
            if (faulty && calls->fetch_add(1) % kFaultEvery == kFaultEvery - 1) {
              return Error(ErrorCode::kUnavailable, "injected fault");
            }
            format::InfoRecord record;
            record.keyword = kw;
            record.add("value", "1");
            return record;
          },
          "function:" + kw);
      // TTL 0: every op pays the full resolve path, nothing amortizes.
      if (!monitor->add_source(source, info::ProviderOptions{.ttl = Duration{0}}).ok()) {
        std::abort();
      }
    }
    backend = std::make_shared<exec::ForkBackend>(registry, clock);
    core::InfoGramConfig config;
    config.host = "tail.sim";
    config.worker_threads = 0;  // inline: isolate tail cost from pool wake jitter
    config.queue_depth = kOpsPerBatch + 64;
    telemetry = std::make_shared<obs::Telemetry>(clock, "tail.sim");
    config.telemetry = telemetry;
    config.tail_sampling = tail;
    service = std::make_unique<core::InfoGramService>(monitor, backend, host_cred,
                                                      &trust, &gridmap, &policy, &clock,
                                                      logger, config);
  }
};

rsl::XrslRequest parse_or_die(const std::string& body) {
  auto parsed = rsl::XrslRequest::parse(body);
  if (!parsed.ok()) {
    std::fprintf(stderr, "bad RSL %s: %s\n", body.c_str(),
                 parsed.error().to_string().c_str());
    std::abort();
  }
  return parsed.value();
}

/// One sequential batch; appends the batch's per-op microseconds to
/// `batch_us` and to the JSON report. Injected faults come back as error
/// results by design — count them, don't abort.
bool run_batch(TailStack& stack, const std::string& series, bench::JsonReport& report,
               std::vector<double>& batch_us, std::uint64_t& errors) {
  auto begin = std::chrono::steady_clock::now();
  for (int i = 0; i < kOpsPerBatch; ++i) {
    auto result = stack.service
                      ->submit_async(parse_or_die("(info=" + burn_keyword(i) + ")"),
                                     "/O=Grid/CN=bench", "bench")
                      .get();
    if (!result.ok()) ++errors;
  }
  auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
      std::chrono::steady_clock::now() - begin);
  double per_op = static_cast<double>(elapsed.count()) / kOpsPerBatch;
  batch_us.push_back(per_op);
  for (int i = 0; i < kOpsPerBatch; ++i) report.add(series, per_op);
  return true;
}

/// Median: scheduling blips only ever ADD time, so the median slice is
/// the robust estimate where a sum would charge one preempted slice to
/// the whole series.
double median(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  std::size_t n = values.size();
  if (n == 0) return 0.0;
  return n % 2 == 1 ? values[n / 2] : (values[n / 2 - 1] + values[n / 2]) / 2.0;
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReport report("tail_sampling", argc, argv);
  bool enforce = false;  // --enforce: exit 2 when the gate is missed
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--enforce") enforce = true;
  }
  bench::header("E-TAIL: request pipeline with and without tail retention (wall clock)");

  struct Series {
    const char* name;
    TailStack stack;
    std::vector<double> slice_us;  // per-round per-op microseconds
    std::uint64_t errors = 0;
  };
  Series series[] = {
      {"head_only", TailStack(/*tail=*/false, /*faulty=*/false)},
      {"tail", TailStack(/*tail=*/true, /*faulty=*/false)},
      {"tail_faulty", TailStack(/*tail=*/true, /*faulty=*/true)},
  };
  constexpr int kSeries = 3;

  // Warm all stacks untimed (first-touch allocation, lazy schema).
  std::vector<double> sink;
  std::uint64_t warm_errors = 0;
  bench::JsonReport warm_report("tail_sampling_warm", 0, nullptr);
  for (Series& s : series) {
    if (!run_batch(s.stack, "warm", warm_report, sink, warm_errors)) return 1;
  }
  for (int round = 0; round < kRounds; ++round) {
    // Rotate the start so no series always runs first after the round
    // boundary (cache/frequency state is position-dependent).
    for (int i = 0; i < kSeries; ++i) {
      Series& s = series[(round + i) % kSeries];
      if (!run_batch(s.stack, s.name, report, s.slice_us, s.errors)) return 1;
    }
  }

  const double ops = static_cast<double>(kRounds) * kOpsPerBatch;
  auto ops_per_sec = [](const Series& s) {
    double med = median(s.slice_us);
    return med > 0.0 ? 1e6 / med : 0.0;
  };
  // Paired estimator: each round contributes one overhead sample against
  // the baseline slice it ran next to; the median over rounds is immune
  // to the slow drift that biases whole-series aggregates.
  auto overhead_pct = [&series](const Series& s, int baseline) {
    const Series& b = series[baseline];
    std::vector<double> ratios;
    for (std::size_t r = 0; r < s.slice_us.size() && r < b.slice_us.size(); ++r) {
      if (b.slice_us[r] > 0.0) {
        ratios.push_back((s.slice_us[r] / b.slice_us[r] - 1.0) * 100.0);
      }
    }
    return median(std::move(ratios));
  };

  std::printf("%-12s %12s %14s %14s %14s\n", "series", "ops", "median(us/op)",
              "ops/sec", "vs head_only");
  bench::rule(72);
  for (const Series& s : series) {
    std::printf("%-12s %12.0f %14.3f %14.1f %13.2f%%\n", s.name, ops,
                median(s.slice_us), ops_per_sec(s), overhead_pct(s, 0));
  }

  // The acceptance metric: what does classifying every head-declined
  // request cost on a clean workload?
  double tail_pct = overhead_pct(series[1], 0);
  std::printf("\ntail retention on clean traffic, over head-only: %.2f%% (target <= 5%%)\n",
              tail_pct);

  // Retention bookkeeping (informational): clean traffic discards, every
  // injected fault is retained with a verdict.
  for (int i = 1; i < kSeries; ++i) {
    const Series& s = series[i];
    const obs::TailSampler* tail = s.stack.telemetry->tail();
    if (tail == nullptr) continue;
    std::printf(
        "%-12s errors=%llu retained=%llu discarded=%llu evicted=%llu\n", s.name,
        static_cast<unsigned long long>(s.errors),
        static_cast<unsigned long long>(tail->retained()),
        static_cast<unsigned long long>(tail->discarded()),
        static_cast<unsigned long long>(tail->evicted()));
  }
  const obs::TailSampler* faulty_tail = series[2].stack.telemetry->tail();
  if (faulty_tail != nullptr && series[2].errors > 0 &&
      faulty_tail->retained() < series[2].errors) {
    std::printf("WARNING: tail_faulty retained %llu < %llu injected faults\n",
                static_cast<unsigned long long>(faulty_tail->retained()),
                static_cast<unsigned long long>(series[2].errors));
  }

  std::printf(
      "\nExpected shape: the holding-ring insert and classify-at-finish\n"
      "verdict are O(1) per request, so `tail` tracks `head_only` within\n"
      "noise while the faulty series shows 100%% of its errors retained.\n"
      "Providers cost nothing here, so the percentage is the worst case.\n");
  if (enforce && tail_pct > 5.0) {
    std::fprintf(stderr, "GATE MISS: tail overhead %.2f%% > 5%% over head_only\n",
                 tail_pct);
    return 2;  // enforced-gate code (matches bench_compare.py's contract)
  }
  return 0;
}
