// E-PROFILE — continuous-profiler overhead on the request pipeline.
//
// Three identical InfoGram stacks on the wall clock, differing only in
// profiler regime:
//   bare          no telemetry at all (the obs layer no-ops end to end)
//   unprofiled    telemetry at the production default (PR-4 tracing
//                 baseline: metrics on every request, 1 in
//                 kDefaultTraceSampling roots span-traced) with
//                 profiling OFF
//   profiled      the same telemetry with profiling ON: per-request and
//                 per-keyword AllocScopes, keyword allocation
//                 aggregation, request-allocation histograms, and the
//                 process lock-contention listener installed
//
// All serve the same TTL-0 info workload through submit_async, inline
// (worker_threads = 0) for the same reason as bench_trace_overhead: a
// worker pool adds futex park/wake variance that swamps sub-µs deltas,
// and the attribution machinery under test is identical either way. Two
// caveats this makes explicit rather than hiding:
//   * the lock-contention listener is process-global, so once the
//     profiled stack exists the other stacks' *contended* acquisitions
//     would also reach it — but the inline sequential workload has no
//     lock contention, so the listener can only fire for the profiled
//     stack's own bookkeeping, and the uncontended fast path (one
//     try_lock) is what the other series measure;
//   * IG_PROFILE_ALLOC (default ON) replaces global operator new for the
//     whole process, so every series pays the counting shim — the delta
//     measured here is the *attribution* machinery (scopes, aggregation,
//     histograms), which rides the trace-sampling decision: at the
//     default rate 1 in kDefaultTraceSampling requests pays it, the rest
//     run at the tracing baseline.
//
// Measurement protocol: identical to bench_trace_overhead — short slices
// of every stack interleave within each round (rotating start order);
// every overhead is the MEDIAN over rounds of the PAIRED per-round ratio
// against the baseline slice of the same round.
//
// Acceptance (ISSUE 6): <= 5% ops/sec regression for `profiled` over
// `unprofiled` — the marginal cost of continuous profiling on top of the
// tracing stack the service already pays for. Providers cost nothing, so
// the measured percentage is the worst case.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "info/provider.hpp"
#include "obs/profile.hpp"
#include "obs/telemetry.hpp"

using namespace ig;  // NOLINT

namespace {

constexpr int kKeywords = 16;
constexpr int kRounds = 36;        // one interleaved slice of each series per round
constexpr int kOpsPerBatch = 250;  // sequential submit_async round-trips per slice

std::string burn_keyword(int i) { return "burn" + std::to_string(i % kKeywords); }

/// One inline-execution stack on the wall clock.
struct ProfileStack {
  WallClock& clock = WallClock::instance();
  std::unique_ptr<security::CertificateAuthority> ca;
  security::TrustStore trust;
  security::GridMap gridmap;
  security::AuthorizationPolicy policy{security::Decision::kAllow};
  security::Credential host_cred;
  std::shared_ptr<logging::Logger> logger;
  std::shared_ptr<exec::SimSystem> system;
  std::shared_ptr<exec::CommandRegistry> registry;
  std::shared_ptr<info::SystemMonitor> monitor;
  std::shared_ptr<exec::ForkBackend> backend;
  std::shared_ptr<obs::Telemetry> telemetry;
  std::unique_ptr<core::InfoGramService> service;

  /// Regime: 0 = bare (no telemetry), 1 = telemetry with profiling off,
  /// 2 = telemetry with profiling on.
  explicit ProfileStack(int regime) {
    ca = std::make_unique<security::CertificateAuthority>(
        "/O=Grid/CN=Bench CA", seconds(365LL * 86400), clock, 7);
    trust.add_root(ca->root_certificate());
    host_cred = ca->issue("/O=Grid/CN=host/profile.sim", security::CertType::kHost,
                          seconds(365LL * 86400));
    gridmap.add("/O=Grid/CN=bench", "bench");
    logger = std::make_shared<logging::Logger>(clock);
    system = std::make_shared<exec::SimSystem>(clock, 7, "profile.sim");
    registry = exec::CommandRegistry::standard(clock, system, 7);
    monitor = std::make_shared<info::SystemMonitor>(clock, "profile.sim");
    for (int i = 0; i < kKeywords; ++i) {
      std::string kw = burn_keyword(i);
      auto source = std::make_shared<info::FunctionSource>(
          kw,
          [kw]() -> Result<format::InfoRecord> {
            format::InfoRecord record;
            record.keyword = kw;
            record.add("value", "1");
            return record;
          },
          "function:" + kw);
      // TTL 0: every op pays the full resolve path, nothing amortizes.
      if (!monitor->add_source(source, info::ProviderOptions{.ttl = Duration{0}}).ok()) {
        std::abort();
      }
    }
    backend = std::make_shared<exec::ForkBackend>(registry, clock);
    core::InfoGramConfig config;
    config.host = "profile.sim";
    config.worker_threads = 0;  // inline: isolate attribution cost from pool jitter
    config.queue_depth = kOpsPerBatch + 64;
    config.profiling = false;
    if (regime > 0) {
      telemetry = std::make_shared<obs::Telemetry>(clock, "profile.sim");
      config.telemetry = telemetry;
      config.trace_sample_every = obs::kDefaultTraceSampling;
      config.profiling = regime == 2;
    }
    service = std::make_unique<core::InfoGramService>(monitor, backend, host_cred,
                                                      &trust, &gridmap, &policy, &clock,
                                                      logger, config);
  }
};

rsl::XrslRequest parse_or_die(const std::string& body) {
  auto parsed = rsl::XrslRequest::parse(body);
  if (!parsed.ok()) {
    std::fprintf(stderr, "bad RSL %s: %s\n", body.c_str(),
                 parsed.error().to_string().c_str());
    std::abort();
  }
  return parsed.value();
}

bool run_batch(ProfileStack& stack, const std::string& series, bench::JsonReport& report,
               std::vector<double>& batch_us) {
  auto begin = std::chrono::steady_clock::now();
  for (int i = 0; i < kOpsPerBatch; ++i) {
    auto result = stack.service
                      ->submit_async(parse_or_die("(info=" + burn_keyword(i) + ")"),
                                     "/O=Grid/CN=bench", "bench")
                      .get();
    if (!result.ok()) {
      std::fprintf(stderr, "op failed: %s\n", result.error().to_string().c_str());
      return false;
    }
  }
  auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
      std::chrono::steady_clock::now() - begin);
  double per_op = static_cast<double>(elapsed.count()) / kOpsPerBatch;
  batch_us.push_back(per_op);
  for (int i = 0; i < kOpsPerBatch; ++i) report.add(series, per_op);
  return true;
}

double median(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  std::size_t n = values.size();
  if (n == 0) return 0.0;
  return n % 2 == 1 ? values[n / 2] : (values[n / 2 - 1] + values[n / 2]) / 2.0;
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReport report("profile_overhead", argc, argv);
  bool enforce = false;  // --enforce: nonzero exit when the gate is missed
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--enforce") enforce = true;
  }
  bench::header("E-PROFILE: request pipeline across profiler regimes (wall clock)");

  struct Series {
    const char* name;
    ProfileStack stack;
    std::vector<double> slice_us;  // per-round per-op microseconds
  };
  Series series[] = {
      {"bare", ProfileStack(0)},
      {"unprofiled", ProfileStack(1)},
      {"profiled", ProfileStack(2)},
  };
  constexpr int kSeries = 3;

  // Warm all stacks untimed (first-touch allocation, lazy schema).
  std::vector<double> sink;
  bench::JsonReport warm_report("profile_overhead_warm", 0, nullptr);
  for (Series& s : series) {
    if (!run_batch(s.stack, "warm", warm_report, sink)) return 1;
  }
  for (int round = 0; round < kRounds; ++round) {
    for (int i = 0; i < kSeries; ++i) {
      Series& s = series[(round + i) % kSeries];
      if (!run_batch(s.stack, s.name, report, s.slice_us)) return 1;
    }
  }

  const double ops = static_cast<double>(kRounds) * kOpsPerBatch;
  auto ops_per_sec = [](const Series& s) {
    double med = median(s.slice_us);
    return med > 0.0 ? 1e6 / med : 0.0;
  };
  auto overhead_pct = [&series](const Series& s, int baseline) {
    const Series& b = series[baseline];
    std::vector<double> ratios;
    for (std::size_t r = 0; r < s.slice_us.size() && r < b.slice_us.size(); ++r) {
      if (b.slice_us[r] > 0.0) {
        ratios.push_back((s.slice_us[r] / b.slice_us[r] - 1.0) * 100.0);
      }
    }
    return median(std::move(ratios));
  };

  std::printf("%-12s %12s %14s %14s %12s\n", "series", "ops", "median(us/op)", "ops/sec",
              "vs bare");
  bench::rule(70);
  for (const Series& s : series) {
    std::printf("%-12s %12.0f %14.3f %14.1f %11.2f%%\n", s.name, ops, median(s.slice_us),
                ops_per_sec(s), overhead_pct(s, 0));
  }
  // The acceptance metric: what did continuous profiling add on top of
  // the tracing stack (the PR-4 baseline) the service already pays for?
  double profiling_pct = overhead_pct(series[2], 1);
  std::printf("\nprofiling overhead over tracing baseline: %.2f%% (target <= 5%%)\n",
              profiling_pct);

  // Show the attribution actually happened during the measured run: the
  // per-keyword allocation profile and the request histograms are live.
  std::shared_ptr<obs::Telemetry>& telemetry = series[2].stack.telemetry;
  auto keyword_allocs = telemetry->profiler().keyword_allocs();
  std::printf("profiled keywords: %zu", keyword_allocs.size());
  if (!keyword_allocs.empty()) {
    const auto& [kw, agg] = keyword_allocs.front();
    std::printf("  (hottest: %s, %llu allocs / %llu bytes over %llu samples)", kw.c_str(),
                static_cast<unsigned long long>(agg.allocs),
                static_cast<unsigned long long>(agg.bytes),
                static_cast<unsigned long long>(agg.samples));
  }
  std::printf("\n");
  if (!obs::alloc_internal::counting_enabled()) {
    std::printf("note: IG_PROFILE_ALLOC is OFF — allocation deltas all read zero\n");
  }

  // Durable profile snapshot next to the bench JSON (CI uploads both).
  if (report.enabled()) {
    telemetry->set_exporter(std::make_shared<obs::JsonlExporter>("PROFILE_profile_overhead.jsonl"));
    if (telemetry->export_profile_snapshot()) {
      std::printf("profile snapshot written to PROFILE_profile_overhead.jsonl\n");
    }
  }
  std::printf(
      "\nExpected shape: only sampled requests (1 in %d here) pay the\n"
      "attribution — thread-local counter reads plus mutex-guarded\n"
      "aggregates — so the delta over the tracing baseline amortizes to\n"
      "low single digits. Providers here cost nothing, so every\n"
      "percentage is the worst case.\n",
      static_cast<int>(obs::kDefaultTraceSampling));
  if (enforce && profiling_pct > 5.0) {
    std::fprintf(stderr, "FAIL: profiling overhead %.2f%% exceeds the 5%% gate\n",
                 profiling_pct);
    return 2;  // enforced-gate code (matches bench_compare.py's contract)
  }
  return 0;
}
