// E-DIRECTORY-SCALE — the MDS2 scaling story, replicated: single-keyword
// lookups against the replicated, sharded directory at 1k and 10k
// registered hosts, plus a chaos series with a replica killed and
// registration churn in flight.
//
// The paper's MDS2 lineage scales badly because every query walks one
// aggregate index. The replicated layer shards the index by host/VO
// prefix and serves each shard from the freshest live replica, so a
// base-scoped lookup touches one shard's immutable snapshot regardless of
// registry size — p99 should stay near-flat as the registry grows 10x.
//
// Measurement protocol (bench_snapshot_read pattern): both registries are
// built up front and short lookup slices interleave within each round
// with rotating start order, so runner speed and noisy neighbours hit
// both series equally. Every lookup is timed individually; the JSON
// report carries full percentiles for the checked-in baseline.
//
// Acceptance (ISSUE 8): with --enforce the bench exits 2 (the enforced-
// gate code CI treats as a hard failure) unless
//   * p99(10k) / p99(1k) <= 1.5, and
//   * every lookup in the chaos series (one replica partitioned, churn
//     writes interleaved) succeeds — zero kUnavailable, and
//   * after heal + one anti-entropy round the killed replica converges.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "mds/replication.hpp"
#include "mds/router.hpp"

using namespace ig;  // NOLINT

namespace {

constexpr int kRounds = 12;
constexpr int kLookupsPerSlice = 400;
constexpr double kMaxP99Growth = 1.5;  // 1k -> 10k gate

struct Cluster {
  std::unique_ptr<VirtualClock> clock;
  std::unique_ptr<net::Network> network;
  std::shared_ptr<mds::ReplicationCoordinator> coordinator;
  std::vector<std::shared_ptr<mds::ReplicaServer>> servers;
  std::vector<net::Address> addrs;
  std::shared_ptr<mds::ReplicaRouter> router;
  std::size_t hosts = 0;
};

mds::DirectoryEntry host_entry(std::size_t i) {
  mds::DirectoryEntry entry;
  entry.dn = "host=node" + std::to_string(i) + ", o=Grid";
  entry.add("objectclass", "GridHost");
  entry.add("hostname", "node" + std::to_string(i));
  entry.add("arch", i % 2 == 0 ? "x86_64" : "aarch64");
  return entry;
}

Cluster build_cluster(std::size_t hosts) {
  Cluster cluster;
  cluster.hosts = hosts;
  cluster.clock = std::make_unique<VirtualClock>(seconds(1000));
  cluster.network = std::make_unique<net::Network>();
  mds::CoordinatorOptions options;
  options.shard_count = 16;
  options.replication_factor = 3;
  cluster.coordinator =
      std::make_shared<mds::ReplicationCoordinator>(*cluster.network, options);
  for (int i = 0; i < 3; ++i) {
    net::Address addr{"replica" + std::to_string(i) + ".sim", 2137};
    auto server = std::make_shared<mds::ReplicaServer>(
        std::make_shared<mds::ReplicaStore>(cluster.coordinator->shard_count()));
    if (!server->start(*cluster.network, addr).ok()) {
      std::fprintf(stderr, "cannot start replica %d\n", i);
      std::abort();
    }
    cluster.coordinator->add_replica(addr);
    cluster.servers.push_back(std::move(server));
    cluster.addrs.push_back(addr);
  }
  std::vector<mds::DirectoryEntry> entries;
  entries.reserve(hosts);
  for (std::size_t i = 0; i < hosts; ++i) entries.push_back(host_entry(i));
  (void)cluster.coordinator->put_batch(std::move(entries));
  cluster.router = std::make_shared<mds::ReplicaRouter>(
      *cluster.network, cluster.coordinator, *cluster.clock);
  return cluster;
}

double percentile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  double rank = q * static_cast<double>(values.size() - 1);
  auto lo = static_cast<std::size_t>(rank);
  std::size_t hi = std::min(lo + 1, values.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return values[lo] + (values[hi] - values[lo]) * frac;
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReport report("directory_scale", argc, argv);
  bool enforce = false;  // --enforce: exit 2 when any gate is missed
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--enforce") enforce = true;
  }
  bench::header("E-DIRECTORY-SCALE: replicated directory lookups, 1k vs 10k hosts");

  Cluster small = build_cluster(1000);
  Cluster large = build_cluster(10000);

  // One timed single-keyword lookup: base-scoped, resolves to one shard,
  // served from one replica's published snapshot.
  std::size_t failures = 0;
  std::size_t sink = 0;
  auto lookup = [&](Cluster& cluster, std::size_t host,
                    std::vector<double>* samples, const char* series) {
    std::string base = "host=node" + std::to_string(host) + ", o=Grid";
    auto begin = std::chrono::steady_clock::now();
    auto hits = cluster.router->search(base, mds::Scope::kBase,
                                       mds::Filter::match_all());
    auto elapsed = std::chrono::duration_cast<std::chrono::nanoseconds>(
        std::chrono::steady_clock::now() - begin);
    if (!hits.ok() || hits->empty()) {
      ++failures;
      return;
    }
    sink += hits->front().dn.size();
    double us = static_cast<double>(elapsed.count()) / 1e3;
    samples->push_back(us);
    report.add(series, us);
  };

  std::vector<double> small_us;
  std::vector<double> large_us;
  std::uint64_t cursor = 0;
  auto run_slice = [&](Cluster& cluster, std::vector<double>* samples,
                       const char* series) {
    for (int i = 0; i < kLookupsPerSlice; ++i) {
      // Deterministic spread over the registry, co-prime stride.
      std::size_t host = (++cursor * 7919) % cluster.hosts;
      lookup(cluster, host, samples, series);
    }
  };
  for (int round = 0; round < kRounds; ++round) {
    if (round % 2 == 0) {
      run_slice(small, &small_us, "lookup_1k");
      run_slice(large, &large_us, "lookup_10k");
    } else {
      run_slice(large, &large_us, "lookup_10k");
      run_slice(small, &small_us, "lookup_1k");
    }
  }

  // Chaos series: one replica partitioned, churn writes interleaved with
  // the lookups, heal + anti-entropy at the end. The registry must stay
  // continuously queryable throughout.
  std::size_t failures_before_chaos = failures;
  large.network->partition(large.addrs[0]);
  std::vector<double> chaos_us;
  for (int i = 0; i < 2000; ++i) {
    if (i % 20 == 0) {
      (void)large.coordinator->put(host_entry(10000 + static_cast<std::size_t>(i)));
    }
    std::size_t host = (++cursor * 7919) % large.hosts;
    lookup(large, host, &chaos_us, "lookup_10k_chaos");
  }
  std::size_t chaos_failures = failures - failures_before_chaos;
  large.network->heal(large.addrs[0]);
  auto repair = large.coordinator->run_anti_entropy();
  bool converged =
      large.servers[0]->store()->generations() == large.coordinator->generations();

  std::printf("%-18s %10s %12s %12s %12s\n", "series", "lookups", "p50(us)",
              "p95(us)", "p99(us)");
  bench::rule(70);
  auto row = [&](const char* name, const std::vector<double>& samples) {
    std::printf("%-18s %10zu %12.3f %12.3f %12.3f\n", name, samples.size(),
                percentile(samples, 0.50), percentile(samples, 0.95),
                percentile(samples, 0.99));
  };
  row("lookup_1k", small_us);
  row("lookup_10k", large_us);
  row("lookup_10k_chaos", chaos_us);

  double p99_small = percentile(small_us, 0.99);
  double p99_large = percentile(large_us, 0.99);
  double growth = p99_small > 0.0 ? p99_large / p99_small : 0.0;
  std::printf("\np99 growth 1k -> 10k: %.2fx (gate <= %.1fx)\n", growth, kMaxP99Growth);
  std::printf("chaos lookups failed: %zu of %zu (gate 0)\n", chaos_failures,
              chaos_us.size() + chaos_failures);
  std::printf("anti-entropy after heal: %zu repair(s), replica %s\n", repair.repairs,
              converged ? "converged" : "STILL BEHIND");
  std::printf("router failovers: %llu, stale serves: %llu  (checksum %zu)\n",
              static_cast<unsigned long long>(large.router->failovers()),
              static_cast<unsigned long long>(large.router->stale_routed()), sink);
  std::printf(
      "\nExpected shape: a base-scoped lookup resolves to one shard and one\n"
      "replica snapshot (a log-time map lookup), so p99 stays near-flat as\n"
      "the registry grows 10x — the index walk, not the registry size,\n"
      "bounds the query. With a replica dead the router's reachability\n"
      "ordering keeps answering from the survivors.\n");

  if (enforce) {
    bool ok = true;
    if (growth > kMaxP99Growth) {
      std::fprintf(stderr, "FAIL: p99 grew %.2fx from 1k to 10k hosts (gate %.1fx)\n",
                   growth, kMaxP99Growth);
      ok = false;
    }
    if (failures != 0) {
      std::fprintf(stderr, "FAIL: %zu lookup(s) failed; the gate is zero\n", failures);
      ok = false;
    }
    if (!converged) {
      std::fprintf(stderr,
                   "FAIL: killed replica did not converge after heal + anti-entropy\n");
      ok = false;
    }
    if (!ok) return 2;  // enforced-gate code: CI fails hard, never warns
  }
  return 0;
}
