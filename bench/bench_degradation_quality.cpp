// E4 — Sec. 5.2/6.4: information degradation and the xRSL quality tag.
//
// "The quality threshold tag provides the possibility to specify a
// percentage number that gives additional guidance if a cached value
// should be returned or if the information needs to be refreshed."
//
// Sweeps the quality threshold against a provider with linear degradation
// (quality hits 0 at 2x TTL) queried every 40ms for 20s. Reports the
// refresh rate and the mean age/quality of returned information, plus a
// comparison of degradation models at fixed threshold. Expected shape:
// higher thresholds force more refreshes and return fresher data.
#include "bench_util.hpp"

#include "common/id.hpp"
#include "info/degradation.hpp"

using namespace ig;  // NOLINT

namespace {

struct Outcome {
  std::uint64_t queries = 0;
  std::uint64_t executions = 0;
  double mean_quality = 0.0;
  double mean_age_ms = 0.0;
};

Outcome run(bench::Stack& stack, std::shared_ptr<info::DegradationFunction> degradation,
            double threshold) {
  auto monitor = std::make_shared<info::SystemMonitor>(stack.clock, "deg.sim");
  info::ProviderOptions options;
  options.ttl = ms(200);
  options.degradation = std::move(degradation);
  if (!monitor
           ->add_source(std::make_shared<info::CommandSource>(
                            "CPULoad", "/usr/local/bin/cpuload.exe", stack.registry),
                        options)
           .ok()) {
    std::abort();
  }
  auto provider = monitor->provider("CPULoad");
  Outcome out;
  double quality_sum = 0.0;
  double age_sum_ms = 0.0;
  const Duration horizon = seconds(20);
  for (TimePoint start = stack.clock.now(); stack.clock.now() - start < horizon;) {
    auto record = provider->get_with_quality(threshold);
    if (!record.ok()) std::abort();
    ++out.queries;
    quality_sum += record->min_quality();
    age_sum_ms +=
        static_cast<double>((stack.clock.now() - record->generated_at).count()) / 1000.0;
    stack.clock.advance(ms(40));
  }
  out.executions = provider->refresh_count();
  out.mean_quality = quality_sum / static_cast<double>(out.queries);
  out.mean_age_ms = age_sum_ms / static_cast<double>(out.queries);
  return out;
}

}  // namespace

int main() {
  bench::header("E4 / quality threshold sweep (linear degradation, ttl=200ms)");
  std::printf("%-10s %-9s %-12s %-14s %-12s\n", "threshold", "queries", "executions",
              "mean quality", "mean age(ms)");
  bench::rule(60);
  for (double threshold : {0.0, 25.0, 50.0, 75.0, 90.0, 99.0}) {
    bench::Stack stack(static_cast<std::uint64_t>(threshold) + 5);
    auto out = run(stack, std::make_shared<info::LinearDegradation>(2.0), threshold);
    std::printf("%-10.0f %-9llu %-12llu %-14.1f %-12.1f\n", threshold,
                static_cast<unsigned long long>(out.queries),
                static_cast<unsigned long long>(out.executions), out.mean_quality,
                out.mean_age_ms);
  }

  bench::header("Degradation models at threshold=60 (same workload)");
  std::printf("%-22s %-12s %-14s %-12s\n", "model", "executions", "mean quality",
              "mean age(ms)");
  bench::rule(62);
  for (auto name : {"binary", "linear", "exponential", "observed"}) {
    bench::Stack stack(fnv1a(name));
    auto out = run(stack, info::make_degradation(name), 60.0);
    std::printf("%-22s %-12llu %-14.1f %-12.1f\n", name,
                static_cast<unsigned long long>(out.executions), out.mean_quality,
                out.mean_age_ms);
  }
  std::printf(
      "\nExpected shape: refreshes and mean quality rise monotonically with the\n"
      "threshold; binary degradation refreshes only at TTL expiry, exponential\n"
      "(never reaching 0 abruptly) refreshes at a rate set by its time constant.\n");
  return 0;
}
