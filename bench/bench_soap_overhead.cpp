// Ablation — the commodity-protocol trade-off (paper Sec. 5.4: "Future
// activities will include the integration of commodity protocols (such as
// SOAP) to provide interoperability to Web services and greater
// acceptance outside of the Grid community").
//
// The same operations through the native xRSL protocol and through the
// SOAP gateway, comparing bytes on the wire and modeled network time per
// operation. Expected shape: SOAP costs a constant envelope overhead per
// message — significant for small queries, amortized for large payloads.
#include "bench_util.hpp"

#include "exec/fork_backend.hpp"
#include "soap/gateway.hpp"

using namespace ig;  // NOLINT

int main() {
  bench::Stack stack(808);
  auto monitor = stack.table1_monitor("soap.sim");
  auto backend = std::make_shared<exec::ForkBackend>(stack.registry, stack.clock);
  core::InfoGramConfig config;
  config.host = "soap.sim";
  core::InfoGramService service(monitor, backend, stack.host_cred, &stack.trust,
                                &stack.gridmap, &stack.policy, &stack.clock, stack.logger,
                                config);
  if (!service.start(stack.network).ok()) return 1;
  soap::SoapGateway gateway(service, stack.host_cred, &stack.trust, &stack.gridmap,
                            &stack.clock);
  if (!gateway.start(stack.network).ok()) return 1;

  bench::header("Ablation / SOAP gateway vs native xRSL protocol (50 ops each)");
  std::printf("%-24s | %-10s %-12s | %-10s %-12s | %s\n", "operation", "native B/op",
              "net us/op", "soap B/op", "net us/op", "byte ratio");
  bench::rule(92);

  constexpr int kOps = 50;
  struct Workload {
    const char* label;
    std::function<bool(core::InfoGramClient&)> native;
    std::function<bool(soap::SoapClient&)> soap;
  };
  const Workload workloads[] = {
      {"query one keyword",
       [](core::InfoGramClient& c) { return c.query_info({"CPULoad"}).ok(); },
       [](soap::SoapClient& c) { return c.query_info({"CPULoad"}).ok(); }},
      {"query all keywords",
       [](core::InfoGramClient& c) { return c.query_info({"all"}).ok(); },
       [](soap::SoapClient& c) {
         return c.query_info({"Date", "Memory", "CPU", "CPULoad", "list"}).ok();
       }},
      {"submit + wait job",
       [](core::InfoGramClient& c) {
         auto contact = c.request("&(executable=/bin/echo)(arguments=x)");
         return contact.ok() && contact->job_contact &&
                c.wait(*contact->job_contact, seconds(30)).ok();
       },
       [](soap::SoapClient& c) {
         auto contact = c.submit_job("&(executable=/bin/echo)(arguments=x)");
         return contact.ok() && c.wait(*contact, seconds(30)).ok();
       }},
  };

  for (const Workload& workload : workloads) {
    core::InfoGramClient native(stack.network, service.address(), stack.user, stack.trust,
                                stack.clock);
    soap::SoapClient soap_client(stack.network, gateway.address(), stack.user, stack.trust,
                                 stack.clock);
    for (int i = 0; i < kOps; ++i) {
      if (!workload.native(native) || !workload.soap(soap_client)) return 1;
      stack.clock.advance(ms(10));
    }
    auto n = native.stats();
    auto s = soap_client.stats();
    double n_bytes = static_cast<double>(n.bytes_sent + n.bytes_received) / kOps;
    double s_bytes = static_cast<double>(s.bytes_sent + s.bytes_received) / kOps;
    std::printf("%-24s | %-10.0f %-12.1f | %-10.0f %-12.1f | %.2fx\n", workload.label,
                n_bytes, static_cast<double>(n.virtual_time.count()) / kOps, s_bytes,
                static_cast<double>(s.virtual_time.count()) / kOps, s_bytes / n_bytes);
  }
  std::printf(
      "\nExpected shape: SOAP adds a few hundred bytes of envelope per message;\n"
      "the relative penalty is largest for the smallest operations.\n");
  return 0;
}
