// E-SNAPSHOT — the zero-lock snapshot read path vs the legacy locked cache.
//
// Two series answer the same TTL-valid cache-hit query over the same data:
//   legacy    a faithful replica of the pre-snapshot read path: a
//             SharedMutex-guarded optional<InfoRecord> + refresh stamp;
//             every read takes the shared lock, copies the record, stamps
//             degradation quality, and renders the LDIF payload
//   snapshot  ManagedProvider::snapshot_if_fresh(): one acquire-load of
//             the published generation and a string_view over the bytes
//             pre-rendered at refresh time
//
// Measurement protocol (the bench_trace_overhead / bench_profile_overhead
// pattern): short slices of both series interleave within each round with
// rotating start order, and the speedup is the MEDIAN over rounds of the
// PAIRED per-round ratio legacy/snapshot — same process, same run, so the
// ratio is immune to runner speed and noisy neighbours.
//
// Acceptance (ISSUE 7): with --enforce the bench exits 2 (the enforced-
// gate code CI treats as a hard failure) unless
//   * the paired speedup is >= 2x, and
//   * a whole measured snapshot slice performs ZERO heap allocations, and
//   * one snapshot read performs ZERO ig lock acquisitions (validator
//     count) while the legacy replica's read takes exactly one.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "format/ldif.hpp"
#include "info/managed_provider.hpp"
#include "info/provider.hpp"
#include "obs/profile.hpp"

using namespace ig;  // NOLINT

namespace {

constexpr int kRounds = 36;        // one interleaved slice of each series per round
constexpr int kOpsPerBatch = 4000; // reads per slice (each is well under a microsecond)
constexpr double kMinSpeedup = 2.0;

/// The pre-conversion read path, preserved as a measurement replica: the
/// SharedMutex-guarded cache ManagedProvider used before generations were
/// published through a SnapshotCell. Every read pays the shared lock, the
/// record copy, the quality stamp and the render — exactly what a cache
/// hit through the old query path cost.
class LegacyLockedCache {
 public:
  LegacyLockedCache(format::InfoRecord record, TimePoint refreshed_at, Duration ttl)
      : ttl_(ttl) {
    WriterLock lock(mu_);
    cache_ = std::move(record);
    last_refresh_ = refreshed_at;
  }

  Result<std::string> query_payload(TimePoint now) const {
    ReaderLock lock(mu_);
    if (!cache_ || now - last_refresh_ > ttl_) {
      return Error(ErrorCode::kStale, "expired");
    }
    format::InfoRecord copy = *cache_;
    double q = degradation_.quality(now - last_refresh_, ttl_);
    for (auto& attr : copy.attributes) attr.quality = q;
    return format::to_ldif(std::vector<format::InfoRecord>{std::move(copy)});
  }

 private:
  mutable SharedMutex mu_{lock_rank::kUnranked, "bench.LegacyLockedCache"};
  std::optional<format::InfoRecord> cache_ IG_GUARDED_BY(mu_);
  TimePoint last_refresh_ IG_GUARDED_BY(mu_){0};
  Duration ttl_{0};
  info::BinaryDegradation degradation_;
};

double median(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  std::size_t n = values.size();
  if (n == 0) return 0.0;
  return n % 2 == 1 ? values[n / 2] : (values[n / 2 - 1] + values[n / 2]) / 2.0;
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReport report("snapshot_read", argc, argv);
  bool enforce = false;  // --enforce: exit 2 when any gate is missed
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--enforce") enforce = true;
  }
  bench::header("E-SNAPSHOT: lock-free snapshot read vs legacy locked cache");

  // One provider with a realistic record (Table-1-ish attribute count),
  // refreshed once; the whole bench is TTL-valid cache hits.
  VirtualClock clock(seconds(1000));
  auto source = std::make_shared<info::FunctionSource>(
      "Memory",
      []() -> Result<format::InfoRecord> {
        format::InfoRecord record;
        record.keyword = "Memory";
        record.add("Memory:total", "16384");
        record.add("Memory:free", "11523");
        record.add("Memory:cached", "2048");
        record.add("Memory:swap_total", "8192");
        record.add("Memory:swap_free", "8192");
        record.add("Memory:buffers", "317");
        record.add("Memory:shared", "129");
        record.add("Memory:available", "13571");
        return record;
      },
      "function:memory");
  info::ProviderOptions options;
  options.ttl = seconds(3600);  // never expires during the run
  info::ManagedProvider provider(source, clock, options);
  auto warm = provider.update_state(true);
  if (!warm.ok()) {
    std::fprintf(stderr, "refresh failed: %s\n", warm.error().to_string().c_str());
    return 1;
  }
  info::CacheSnapshotPtr snap = provider.snapshot();
  LegacyLockedCache legacy(snap->record, snap->refreshed_at, options.ttl);
  const TimePoint now = clock.now();

  // Correctness anchor: both paths must serve byte-identical payloads.
  auto legacy_payload = legacy.query_payload(now);
  if (!legacy_payload.ok() ||
      legacy_payload.value() != snap->payload(rsl::OutputFormat::kLdif)) {
    std::fprintf(stderr, "FAIL: legacy and snapshot payloads differ\n");
    return 1;
  }

  // Proof 1 — the lock ledger, via the validator's per-thread acquisition
  // counter: snapshot read = 0 ig locks, legacy read = 1 (the shared lock).
  bool was_validating = sync_internal::lock_order_validation_enabled();
  sync_internal::set_lock_order_validation(true);
  std::uint64_t locks = sync_internal::thread_acquisition_count();
  (void)provider.snapshot_if_fresh(now);
  std::uint64_t snapshot_locks = sync_internal::thread_acquisition_count() - locks;
  locks = sync_internal::thread_acquisition_count();
  (void)legacy.query_payload(now);
  std::uint64_t legacy_locks = sync_internal::thread_acquisition_count() - locks;
  sync_internal::set_lock_order_validation(was_validating);

  // Proof 2 — the allocation ledger over whole untimed slices.
  std::uint64_t snapshot_allocs = 0;
  std::uint64_t legacy_allocs = 0;
  std::size_t sink = 0;
  {
    obs::AllocScope scope;
    for (int i = 0; i < kOpsPerBatch; ++i) {
      info::CacheSnapshotPtr hit = provider.snapshot_if_fresh(now);
      sink += hit->payload(rsl::OutputFormat::kLdif).size();
    }
    snapshot_allocs = scope.allocs();
  }
  {
    obs::AllocScope scope;
    for (int i = 0; i < kOpsPerBatch; ++i) {
      sink += legacy.query_payload(now).value().size();
    }
    legacy_allocs = scope.allocs();
  }

  // The timed comparison: paired interleaved slices, rotating start order.
  std::vector<double> snapshot_us;
  std::vector<double> legacy_us;
  auto run_snapshot_slice = [&] {
    auto begin = std::chrono::steady_clock::now();
    for (int i = 0; i < kOpsPerBatch; ++i) {
      info::CacheSnapshotPtr hit = provider.snapshot_if_fresh(now);
      sink += hit->payload(rsl::OutputFormat::kLdif).size();
    }
    auto elapsed = std::chrono::duration_cast<std::chrono::nanoseconds>(
        std::chrono::steady_clock::now() - begin);
    double per_op = static_cast<double>(elapsed.count()) / 1e3 / kOpsPerBatch;
    snapshot_us.push_back(per_op);
    report.add("snapshot", per_op);
  };
  auto run_legacy_slice = [&] {
    auto begin = std::chrono::steady_clock::now();
    for (int i = 0; i < kOpsPerBatch; ++i) {
      sink += legacy.query_payload(now).value().size();
    }
    auto elapsed = std::chrono::duration_cast<std::chrono::nanoseconds>(
        std::chrono::steady_clock::now() - begin);
    double per_op = static_cast<double>(elapsed.count()) / 1e3 / kOpsPerBatch;
    legacy_us.push_back(per_op);
    report.add("legacy_locked", per_op);
  };
  for (int round = 0; round < kRounds; ++round) {
    if (round % 2 == 0) {
      run_snapshot_slice();
      run_legacy_slice();
    } else {
      run_legacy_slice();
      run_snapshot_slice();
    }
  }

  // Paired per-round ratios: same-run, same-process — runner-speed immune.
  std::vector<double> ratios;
  for (int r = 0; r < kRounds; ++r) {
    if (snapshot_us[r] > 0.0) {
      double ratio = legacy_us[r] / snapshot_us[r];
      ratios.push_back(ratio);
      report.add("paired_speedup", ratio);
    }
  }
  double speedup = median(ratios);

  std::printf("%-14s %10s %14s %14s\n", "series", "ops", "median(us/op)", "ops/sec");
  bench::rule(58);
  const double ops = static_cast<double>(kRounds) * kOpsPerBatch;
  double snap_med = median(snapshot_us);
  double legacy_med = median(legacy_us);
  std::printf("%-14s %10.0f %14.4f %14.1f\n", "legacy_locked", ops, legacy_med,
              legacy_med > 0 ? 1e6 / legacy_med : 0.0);
  std::printf("%-14s %10.0f %14.4f %14.1f\n", "snapshot", ops, snap_med,
              snap_med > 0 ? 1e6 / snap_med : 0.0);
  std::printf("\npaired speedup (median of per-round ratios): %.2fx (gate >= %.1fx)\n",
              speedup, kMinSpeedup);
  std::printf("lock acquisitions per read:  snapshot %llu (gate 0), legacy %llu\n",
              static_cast<unsigned long long>(snapshot_locks),
              static_cast<unsigned long long>(legacy_locks));
  std::printf("allocations per %d-op slice: snapshot %llu (gate 0), legacy %llu\n",
              kOpsPerBatch, static_cast<unsigned long long>(snapshot_allocs),
              static_cast<unsigned long long>(legacy_allocs));
  if (!obs::alloc_internal::counting_enabled()) {
    std::printf("note: IG_PROFILE_ALLOC is OFF — allocation deltas all read zero\n");
  }
  std::printf("(checksum %zu)\n", sink);
  std::printf(
      "\nExpected shape: the legacy read pays a shared-lock round trip, a\n"
      "record copy, a quality stamp and an LDIF render per hit; the\n"
      "snapshot read is one atomic acquire-load and a string_view into\n"
      "bytes rendered once at refresh. The ratio is paired per round, so\n"
      "it holds on any runner.\n");

  if (enforce) {
    bool ok = true;
    if (speedup < kMinSpeedup) {
      std::fprintf(stderr, "FAIL: paired speedup %.2fx below the %.1fx gate\n", speedup,
                   kMinSpeedup);
      ok = false;
    }
    if (snapshot_locks != 0) {
      std::fprintf(stderr, "FAIL: snapshot read took %llu ig lock(s); the gate is zero\n",
                   static_cast<unsigned long long>(snapshot_locks));
      ok = false;
    }
    if (obs::alloc_internal::counting_enabled() && snapshot_allocs != 0) {
      std::fprintf(stderr,
                   "FAIL: snapshot slice made %llu allocation(s); the gate is zero\n",
                   static_cast<unsigned long long>(snapshot_allocs));
      ok = false;
    }
    if (!ok) return 2;  // enforced-gate code: CI fails hard, never warns
  }
  return 0;
}
