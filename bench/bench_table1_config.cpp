// E1 — Table 1 of the paper: "The InfoGram configuration file provides a
// mapping between keywords and information providers."
//
// Regenerates the table and verifies every row is live: the keyword
// resolves to an installed command, executes, and yields attributes. Also
// demonstrates the TTL semantics per row (0 = execute every time).
#include "bench_util.hpp"

using namespace ig;  // NOLINT

int main() {
  bench::Stack stack;
  auto config = core::Configuration::table1();
  auto monitor = stack.table1_monitor();

  bench::header("E1 / Table 1: keyword -> information provider mapping");
  std::printf("%-8s %-9s %-30s %-6s %-10s\n", "TTL(ms)", "Keyword", "Command", "attrs",
              "exec(ms)");
  bench::rule();

  for (const auto& kw : config.keywords()) {
    auto provider = monitor->provider(kw.keyword);
    auto before = stack.clock.now();
    auto record = provider->update_state(true);
    double exec_ms = static_cast<double>((stack.clock.now() - before).count()) / 1000.0;
    std::printf("%-8lld %-9s %-30s %-6zu %-10.1f\n",
                static_cast<long long>(kw.ttl.count() / 1000), kw.keyword.c_str(),
                kw.command_line.c_str(), record.ok() ? record->attributes.size() : 0,
                exec_ms);
    if (!record.ok()) {
      std::fprintf(stderr, "FAILED: %s\n", record.error().to_string().c_str());
      return 1;
    }
  }

  bench::header("TTL semantics per row: executions for 5 back-to-back cached queries");
  std::printf("%-9s %-8s %-12s\n", "Keyword", "TTL(ms)", "executions");
  bench::rule(40);
  for (const auto& kw : config.keywords()) {
    auto provider = monitor->provider(kw.keyword);
    auto before = provider->refresh_count();
    for (int i = 0; i < 5; ++i) (void)provider->get(rsl::ResponseMode::kCached);
    std::printf("%-9s %-8lld %llu\n", kw.keyword.c_str(),
                static_cast<long long>(kw.ttl.count() / 1000),
                static_cast<unsigned long long>(provider->refresh_count() - before));
  }
  std::printf("\nExpected shape: TTL=0 rows execute on every query; TTL>0 rows at most "
              "once while fresh.\n");
  return 0;
}
