// E10 — xRSL handling cost: parse / unparse / substitute / typed-request
// throughput. The paper's protocol replaces LDAP queries with RSL parsing
// on every request, so the parser is on the service's critical path.
#include <benchmark/benchmark.h>

#include "rsl/parser.hpp"
#include "rsl/xrsl.hpp"

namespace {

const char* kSimpleJob = "&(executable=/bin/date)";
const char* kTypicalRequest =
    "&(executable=/bin/app)(arguments=a b c)(directory=/home/alice)"
    "(environment=(HOME /home/alice)(PATH /bin))(count=4)(stdout=out.txt)"
    "(info=Memory)(info=CPU)(response=cached)(quality=75)(format=xml)";
const char* kVariableHeavy =
    "&(rsl_substitution=(BASE /usr/local)(DATA $(BASE)/data))"
    "(executable=$(BASE)/bin/app)(directory=$(DATA)/run1)"
    "(arguments=$(DATA)/in $(DATA)/out)";

void BM_ParseSimple(benchmark::State& state) {
  for (auto _ : state) {
    auto node = ig::rsl::parse(kSimpleJob);
    benchmark::DoNotOptimize(node);
  }
}
BENCHMARK(BM_ParseSimple);

void BM_ParseTypical(benchmark::State& state) {
  for (auto _ : state) {
    auto node = ig::rsl::parse(kTypicalRequest);
    benchmark::DoNotOptimize(node);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(std::string(kTypicalRequest).size()));
}
BENCHMARK(BM_ParseTypical);

void BM_ParseManyRelations(benchmark::State& state) {
  std::string text = "&";
  for (int i = 0; i < state.range(0); ++i) {
    text += "(attr" + std::to_string(i) + "=value" + std::to_string(i) + ")";
  }
  for (auto _ : state) {
    auto node = ig::rsl::parse(text);
    benchmark::DoNotOptimize(node);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ParseManyRelations)->Arg(8)->Arg(64)->Arg(512);

void BM_Unparse(benchmark::State& state) {
  auto node = ig::rsl::parse(kTypicalRequest).value();
  for (auto _ : state) {
    auto text = ig::rsl::unparse(node);
    benchmark::DoNotOptimize(text);
  }
}
BENCHMARK(BM_Unparse);

void BM_Substitute(benchmark::State& state) {
  auto node = ig::rsl::parse(kVariableHeavy).value();
  for (auto _ : state) {
    auto resolved = ig::rsl::substitute(node);
    benchmark::DoNotOptimize(resolved);
  }
}
BENCHMARK(BM_Substitute);

void BM_TypedRequestFromText(benchmark::State& state) {
  // The full service-side path: parse + substitute + validate.
  for (auto _ : state) {
    auto request = ig::rsl::XrslRequest::parse(kTypicalRequest);
    benchmark::DoNotOptimize(request);
  }
}
BENCHMARK(BM_TypedRequestFromText);

void BM_RequestToRslRoundtrip(benchmark::State& state) {
  auto request = ig::rsl::XrslRequest::parse(kTypicalRequest).value();
  for (auto _ : state) {
    auto text = request.to_rsl();
    benchmark::DoNotOptimize(text);
  }
}
BENCHMARK(BM_RequestToRslRoundtrip);

}  // namespace

BENCHMARK_MAIN();
