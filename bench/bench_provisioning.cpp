// E-sporadic — deployment and provisioning (paper Sec. 7 "Deployment" and
// Sec. 8 "sporadic Grids"): "featured the ease of installation of such a
// service... with low overhead on installation time and administrative
// burden"; a sporadic grid must come up quickly, serve, and tear down.
//
// Sweeps the sporadic-grid size and reports: wall time to provision all
// nodes (CA issuance, provider registration, service start), time to
// first successful query on every node, and the modeled cost of pushing
// an application package (2 MiB) to the whole grid with the deployer.
#include "bench_util.hpp"

#include "grid/deployment.hpp"
#include "grid/virtual_organization.hpp"

using namespace ig;  // NOLINT

int main() {
  bench::header("Sporadic-grid provisioning and package deployment");
  std::printf("%-8s %-18s %-20s %-22s\n", "nodes", "provision (wall)",
              "first query (wall)", "deploy 2MiB pkg (virtual)");
  bench::rule(72);

  for (int nodes : {1, 2, 4, 8, 16}) {
    VirtualClock clock(seconds(1000));
    net::Network network;
    WallClock wall;

    ScopedTimer provision_timer(wall);
    grid::SporadicGrid::Options options;
    options.vo_name = "bench";
    options.resources = nodes;
    options.seed = static_cast<std::uint64_t>(nodes) * 77;
    grid::SporadicGrid sporadic(network, clock, options);
    Duration provision = provision_timer.elapsed();

    auto user = sporadic.vo().enroll_user("bench", "bench");
    ScopedTimer query_timer(wall);
    for (const auto& address : sporadic.infogram_addresses()) {
      core::InfoGramClient client(network, address, user, sporadic.vo().trust(), clock);
      if (!client.query_info({"CPULoad"}).ok()) return 1;
    }
    Duration first_query = query_timer.elapsed();

    grid::DeploymentRepository repository;
    grid::ServicePackage pkg;
    pkg.name = "app";
    pkg.version = 1;
    pkg.size_bytes = 2 << 20;
    pkg.tasks["app.jar"] = [](exec::SandboxContext&, const std::vector<std::string>&) {
      return Result<std::string>(std::string("ok"));
    };
    if (!repository.publish(std::move(pkg)).ok()) return 1;
    grid::Deployer deployer(repository, clock, /*bytes_per_us=*/50.0);
    if (!deployer.upgrade_all("app", sporadic.vo()).ok()) return 1;

    std::printf("%-8d %13.1f ms  %15.1f ms  %17.1f ms\n", nodes,
                static_cast<double>(provision.count()) / 1000.0,
                static_cast<double>(first_query.count()) / 1000.0,
                static_cast<double>(deployer.time_spent().count()) / 1000.0);
  }
  std::printf(
      "\nExpected shape: provisioning is linear in node count and sub-\n"
      "millisecond per node — the 'sporadic grid in one call' property;\n"
      "package deployment cost is pure transfer time (size/bandwidth per\n"
      "node).\n");
  return 0;
}
