// E3 — Sec. 5.1 performance claim: "Assume we have a large number of
// clients that need to know the CPU load of a remote compute resource. It
// would be wasteful to execute the command requesting the load every
// single time. Instead, it can be more efficient to cache this value
// within the information service, and only refresh this cache value
// periodically."
//
// Sweeps client count x TTL. Each client issues queries at a fixed
// interval over a fixed horizon; the table reports how many times the
// underlying command actually executed and the total simulated time spent
// producing information. Expected shape: with TTL=0 executions grow
// linearly with client count; with TTL>0 they are bounded by
// horizon/TTL regardless of client count.
#include <thread>

#include "bench_util.hpp"

using namespace ig;  // NOLINT

int main() {
  bench::header("E3 / Sec 5.1: TTL caching vs execute-every-time");
  std::printf("Workload: each client queries CPULoad every 100ms over a 10s horizon;\n");
  std::printf("the command costs 10ms of host time per execution.\n\n");
  std::printf("%-8s %-10s %-12s %-14s %-16s\n", "clients", "TTL(ms)", "queries",
              "executions", "exec time (ms)");
  bench::rule(64);

  const Duration horizon = seconds(10);
  const Duration interval = ms(100);

  for (int clients : {1, 2, 4, 8, 16, 32}) {
    for (auto ttl : {ms(0), ms(50), ms(500), ms(5000)}) {
      bench::Stack stack(static_cast<std::uint64_t>(clients) * 7 +
                         static_cast<std::uint64_t>(ttl.count()));
      auto monitor = std::make_shared<info::SystemMonitor>(stack.clock, "cache.sim");
      info::ProviderOptions options;
      options.ttl = ttl;
      if (!monitor
               ->add_source(std::make_shared<info::CommandSource>(
                                "CPULoad", "/usr/local/bin/cpuload.exe", stack.registry),
                            options)
               .ok()) {
        return 1;
      }
      auto provider = monitor->provider("CPULoad");

      std::uint64_t queries = 0;
      // Clients take turns within each tick (they share the service); the
      // virtual clock advances once per tick.
      for (TimePoint t = stack.clock.now(); stack.clock.now() - t < horizon;) {
        for (int c = 0; c < clients; ++c) {
          auto record = provider->get(rsl::ResponseMode::kCached);
          if (!record.ok()) return 1;
          ++queries;
        }
        // The command itself advanced the clock by its cost when it ran;
        // top up to the next tick boundary.
        stack.clock.advance(interval);
      }
      double exec_time_ms =
          provider->performance().mean() * 1000.0 *
          static_cast<double>(provider->refresh_count());
      std::printf("%-8d %-10lld %-12llu %-14llu %-16.0f\n", clients,
                  static_cast<long long>(ttl.count() / 1000),
                  static_cast<unsigned long long>(queries),
                  static_cast<unsigned long long>(provider->refresh_count()),
                  exec_time_ms);
    }
  }
  std::printf(
      "\nExpected shape: TTL=0 executions == queries (linear in clients);\n"
      "TTL>0 executions ~= horizon/TTL, flat in client count.\n");
  return 0;
}
