// E-TRACE — distributed-tracing overhead on the request pipeline.
//
// Four identical InfoGram stacks on the wall clock, differing only in
// observability regime:
//   untraced     no telemetry attached (the obs layer no-ops end to end)
//   traced       telemetry at the production default (metrics on every
//                request, 1 in kDefaultTraceSampling roots span-traced)
//   traced_all   every request traced (spans, exemplars, ring retention
//                on each op) — the full-fidelity cost, reported for
//                transparency, not gated
//   sampled_out  sampler declines every root: the pure metrics +
//                suppression path, the floor the default amortizes toward
//
// All serve the same TTL-0 info workload through submit_async; providers
// cost nothing, so the measured delta is the observability machinery
// itself — the worst case, since any real provider work only dilutes it.
// The stacks run requests inline (worker_threads = 0): a worker pool adds
// futex park/wake variance to every future.get() that swamps sub-µs
// deltas, and the tracing machinery under test is identical either way.
//
// Measurement protocol: short slices of every stack interleave within
// each round (rotating start order), so all four series see the same CPU
// frequency/thermal state; every overhead is the MEDIAN over rounds of
// the PAIRED per-round ratio against the baseline slice of the same
// round. Pairing cancels drift a total or even a per-series median
// cannot — scheduling noise is strictly additive and hits temporally
// adjacent slices alike.
//
// Acceptance: <= 5% ops/sec regression for `traced` (the default regime)
// over `sampled_out` — the marginal cost of the distributed-tracing
// machinery on top of the metrics layer the service already pays for.
// The table also reports every series against the bare pipeline, so the
// metrics floor itself (a few hundred ns of counters, histogram appends
// and clock reads per op) stays visible rather than hidden in a
// baseline. A full trace cycle costs ~1µs, which on this µs-scale
// pipeline is ~30% — that is WHY the default samples; the traced_all
// row keeps that cost visible instead of hiding it.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "info/provider.hpp"
#include "obs/telemetry.hpp"

using namespace ig;  // NOLINT

namespace {

constexpr int kKeywords = 16;
constexpr int kRounds = 36;        // one interleaved slice of each series per round
constexpr int kOpsPerBatch = 250;  // sequential submit_async round-trips per slice

std::string burn_keyword(int i) { return "burn" + std::to_string(i % kKeywords); }

/// One inline-execution stack on the wall clock; telemetry optional.
struct OverheadStack {
  WallClock& clock = WallClock::instance();
  std::unique_ptr<security::CertificateAuthority> ca;
  security::TrustStore trust;
  security::GridMap gridmap;
  security::AuthorizationPolicy policy{security::Decision::kAllow};
  security::Credential host_cred;
  std::shared_ptr<logging::Logger> logger;
  std::shared_ptr<exec::SimSystem> system;
  std::shared_ptr<exec::CommandRegistry> registry;
  std::shared_ptr<info::SystemMonitor> monitor;
  std::shared_ptr<exec::ForkBackend> backend;
  std::shared_ptr<obs::Telemetry> telemetry;
  std::unique_ptr<core::InfoGramService> service;

  /// `sample_every` 0 = no telemetry; otherwise the config sampling rate.
  explicit OverheadStack(std::uint64_t sample_every) {
    ca = std::make_unique<security::CertificateAuthority>(
        "/O=Grid/CN=Bench CA", seconds(365LL * 86400), clock, 7);
    trust.add_root(ca->root_certificate());
    host_cred = ca->issue("/O=Grid/CN=host/trace.sim", security::CertType::kHost,
                          seconds(365LL * 86400));
    gridmap.add("/O=Grid/CN=bench", "bench");
    logger = std::make_shared<logging::Logger>(clock);
    system = std::make_shared<exec::SimSystem>(clock, 7, "trace.sim");
    registry = exec::CommandRegistry::standard(clock, system, 7);
    monitor = std::make_shared<info::SystemMonitor>(clock, "trace.sim");
    for (int i = 0; i < kKeywords; ++i) {
      std::string kw = burn_keyword(i);
      auto source = std::make_shared<info::FunctionSource>(
          kw,
          [kw]() -> Result<format::InfoRecord> {
            format::InfoRecord record;
            record.keyword = kw;
            record.add("value", "1");
            return record;
          },
          "function:" + kw);
      // TTL 0: every op pays the full resolve path, nothing amortizes.
      if (!monitor->add_source(source, info::ProviderOptions{.ttl = Duration{0}}).ok()) {
        std::abort();
      }
    }
    backend = std::make_shared<exec::ForkBackend>(registry, clock);
    core::InfoGramConfig config;
    config.host = "trace.sim";
    config.worker_threads = 0;  // inline: isolate tracing cost from pool wake jitter
    config.queue_depth = kOpsPerBatch + 64;
    if (sample_every > 0) {
      telemetry = std::make_shared<obs::Telemetry>(clock, "trace.sim");
      config.telemetry = telemetry;
      config.trace_sample_every = sample_every;
    }
    service = std::make_unique<core::InfoGramService>(monitor, backend, host_cred,
                                                      &trust, &gridmap, &policy, &clock,
                                                      logger, config);
  }
};

rsl::XrslRequest parse_or_die(const std::string& body) {
  auto parsed = rsl::XrslRequest::parse(body);
  if (!parsed.ok()) {
    std::fprintf(stderr, "bad RSL %s: %s\n", body.c_str(),
                 parsed.error().to_string().c_str());
    std::abort();
  }
  return parsed.value();
}

/// One sequential batch; appends the batch's per-op microseconds to
/// `batch_us` and to the JSON report.
bool run_batch(OverheadStack& stack, const std::string& series, bench::JsonReport& report,
               std::vector<double>& batch_us) {
  auto begin = std::chrono::steady_clock::now();
  for (int i = 0; i < kOpsPerBatch; ++i) {
    auto result = stack.service
                      ->submit_async(parse_or_die("(info=" + burn_keyword(i) + ")"),
                                     "/O=Grid/CN=bench", "bench")
                      .get();
    if (!result.ok()) {
      std::fprintf(stderr, "op failed: %s\n", result.error().to_string().c_str());
      return false;
    }
  }
  auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
      std::chrono::steady_clock::now() - begin);
  double per_op = static_cast<double>(elapsed.count()) / kOpsPerBatch;
  batch_us.push_back(per_op);
  for (int i = 0; i < kOpsPerBatch; ++i) report.add(series, per_op);
  return true;
}

/// Median: scheduling blips (interrupts, migrations) only ever ADD time,
/// so the median slice is the robust estimate where a sum would charge
/// one preempted slice to the whole series.
double median(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  std::size_t n = values.size();
  if (n == 0) return 0.0;
  return n % 2 == 1 ? values[n / 2] : (values[n / 2 - 1] + values[n / 2]) / 2.0;
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReport report("trace_overhead", argc, argv);
  bench::header("E-TRACE: request pipeline across observability regimes (wall clock)");

  struct Series {
    const char* name;
    OverheadStack stack;
    std::vector<double> slice_us;  // per-round per-op microseconds
  };
  Series series[] = {
      {"untraced", OverheadStack(0)},
      {"traced", OverheadStack(obs::kDefaultTraceSampling)},
      {"traced_all", OverheadStack(1)},
      // Sampler declines every root: the suppressed path (metrics only).
      {"sampled_out", OverheadStack(1u << 30)},
  };
  constexpr int kSeries = 4;

  // Warm all stacks untimed (first-touch allocation, lazy schema).
  std::vector<double> sink;
  bench::JsonReport warm_report("trace_overhead_warm", 0, nullptr);
  for (Series& s : series) {
    if (!run_batch(s.stack, "warm", warm_report, sink)) return 1;
  }
  for (int round = 0; round < kRounds; ++round) {
    // Rotate the start so no series always runs first after the round
    // boundary (cache/frequency state is position-dependent).
    for (int i = 0; i < kSeries; ++i) {
      Series& s = series[(round + i) % kSeries];
      if (!run_batch(s.stack, s.name, report, s.slice_us)) return 1;
    }
  }

  const double ops = static_cast<double>(kRounds) * kOpsPerBatch;
  auto ops_per_sec = [](const Series& s) {
    double med = median(s.slice_us);
    return med > 0.0 ? 1e6 / med : 0.0;
  };
  // Paired estimator: each round contributes one overhead sample against
  // the baseline slice it ran next to; the median over rounds is immune
  // to the slow drift that biases whole-series aggregates.
  auto overhead_pct = [&series](const Series& s, int baseline) {
    const Series& b = series[baseline];
    std::vector<double> ratios;
    for (std::size_t r = 0; r < s.slice_us.size() && r < b.slice_us.size(); ++r) {
      if (b.slice_us[r] > 0.0) {
        ratios.push_back((s.slice_us[r] / b.slice_us[r] - 1.0) * 100.0);
      }
    }
    return median(std::move(ratios));
  };

  std::printf("%-12s %12s %14s %14s %12s\n", "series", "ops", "median(us/op)", "ops/sec",
              "vs untraced");
  bench::rule(70);
  for (const Series& s : series) {
    std::printf("%-12s %12.0f %14.3f %14.1f %11.2f%%\n", s.name, ops, median(s.slice_us),
                ops_per_sec(s), overhead_pct(s, 0));
  }
  // The acceptance metric: what did the *tracing* machinery add on top of
  // the metrics layer (sampled_out) the service was already paying for?
  double tracing_pct = overhead_pct(series[1], 3);
  std::printf(
      "\ntracing overhead at default sampling (1 in %llu), over metrics-only: "
      "%.2f%% (target <= 5%%)\n",
      static_cast<unsigned long long>(obs::kDefaultTraceSampling), tracing_pct);
  std::printf("every-request tracing over metrics-only: %.2f%%  |  metrics floor: %.2f%%\n",
              overhead_pct(series[2], 3), overhead_pct(series[3], 0));
  if (series[1].stack.telemetry != nullptr) {
    std::printf("traced (default): retained %zu of %llu completed roots\n",
                series[1].stack.telemetry->traces().size(),
                static_cast<unsigned long long>(
                    series[1].stack.telemetry->traces().completed()));
  }
  std::printf(
      "\nExpected shape: at default sampling the trace machinery amortizes\n"
      "to noise over the metrics layer (~1µs full cycle / %llu), while\n"
      "traced_all shows the full-fidelity cost honestly. Providers here\n"
      "cost nothing, so every percentage is the worst case — real provider\n"
      "work only shrinks it.\n",
      static_cast<unsigned long long>(obs::kDefaultTraceSampling));
  return 0;
}
