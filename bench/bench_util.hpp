// Shared setup for the experiment harnesses: a full simulated stack
// (clock, network, PKI, host, registry) plus table-printing helpers.
// Each bench binary regenerates one experiment from DESIGN.md / EXPERIMENTS.md.
#pragma once

#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/infogram_client.hpp"
#include "core/infogram_service.hpp"
#include "exec/fork_backend.hpp"
#include "logging/log.hpp"

namespace ig::bench {

/// One simulated grid host with security fabric, ready to run services.
struct Stack {
  VirtualClock clock{seconds(1000)};
  net::Network network;
  std::unique_ptr<security::CertificateAuthority> ca;
  security::TrustStore trust;
  security::GridMap gridmap;
  security::AuthorizationPolicy policy{security::Decision::kAllow};
  security::Credential user;
  security::Credential host_cred;
  std::shared_ptr<logging::Logger> logger;
  std::shared_ptr<logging::MemorySink> log_sink;
  std::shared_ptr<exec::SimSystem> system;
  std::shared_ptr<exec::CommandRegistry> registry;

  explicit Stack(std::uint64_t seed = 97, const std::string& host = "bench.sim") {
    ca = std::make_unique<security::CertificateAuthority>(
        "/O=Grid/CN=Bench CA", seconds(365LL * 86400), clock, seed);
    trust.add_root(ca->root_certificate());
    user = ca->issue("/O=Grid/CN=bench", security::CertType::kUser, seconds(864000));
    host_cred = ca->issue("/O=Grid/CN=host/" + host, security::CertType::kHost,
                          seconds(365LL * 86400));
    gridmap.add("/O=Grid/CN=bench", "bench");
    logger = std::make_shared<logging::Logger>(clock);
    log_sink = std::make_shared<logging::MemorySink>();
    logger->add_sink(log_sink);
    system = std::make_shared<exec::SimSystem>(clock, seed ^ 0xabc, host);
    registry = exec::CommandRegistry::standard(clock, system, seed ^ 0xdef);
  }

  /// Monitor loaded with the paper's Table 1 configuration.
  std::shared_ptr<info::SystemMonitor> table1_monitor(const std::string& host = "bench.sim") {
    auto monitor = std::make_shared<info::SystemMonitor>(clock, host);
    auto status = core::Configuration::table1().apply(*monitor, registry);
    if (!status.ok()) {
      std::fprintf(stderr, "table1 apply failed: %s\n", status.to_string().c_str());
      std::abort();
    }
    return monitor;
  }
};

inline void header(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void rule(int width = 78) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

/// Machine-readable results, opted in with `--json` on the bench command
/// line: every sample series becomes ops/sec, mean and p50/p95 in
/// BENCH_<name>.json next to the binary. Without the flag this is a
/// complete no-op, so the human tables stay the default.
class JsonReport {
 public:
  JsonReport(std::string name, int argc, char** argv) : name_(std::move(name)) {
    for (int i = 1; i < argc; ++i) {
      if (std::string(argv[i]) == "--json") enabled_ = true;
    }
  }

  JsonReport(const JsonReport&) = delete;
  JsonReport& operator=(const JsonReport&) = delete;

  bool enabled() const { return enabled_; }
  std::string path() const { return "BENCH_" + name_ + ".json"; }

  /// Record one latency sample (microseconds) under `series`.
  void add(const std::string& series, double micros) {
    if (enabled_) samples_[series].push_back(micros);
  }

  ~JsonReport() {
    if (!enabled_) return;
    std::FILE* out = std::fopen(path().c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path().c_str());
      return;
    }
    std::fprintf(out, "{\n  \"benchmark\": \"%s\",\n  \"series\": {", name_.c_str());
    bool first = true;
    for (auto& [series, values] : samples_) {
      std::sort(values.begin(), values.end());
      double mean = 0.0;
      for (double v : values) mean += v;
      if (!values.empty()) mean /= static_cast<double>(values.size());
      std::fprintf(out,
                   "%s\n    \"%s\": {\"count\": %zu, \"ops_per_sec\": %.3f, "
                   "\"mean_us\": %.3f, \"p50_us\": %.3f, \"p95_us\": %.3f, "
                   "\"p99_us\": %.3f}",
                   first ? "" : ",", series.c_str(), values.size(),
                   mean > 0.0 ? 1e6 / mean : 0.0, mean, percentile(values, 0.50),
                   percentile(values, 0.95), percentile(values, 0.99));
      first = false;
    }
    std::fprintf(out, "\n  }\n}\n");
    std::fclose(out);
    std::printf("wrote %s\n", path().c_str());
  }

 private:
  /// Linear-interpolation percentile over an already-sorted series.
  static double percentile(const std::vector<double>& sorted, double q) {
    if (sorted.empty()) return 0.0;
    double rank = q * static_cast<double>(sorted.size() - 1);
    auto lo = static_cast<std::size_t>(rank);
    std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    double frac = rank - static_cast<double>(lo);
    return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
  }

  std::string name_;
  bool enabled_ = false;
  std::map<std::string, std::vector<double>> samples_;
};

}  // namespace ig::bench
