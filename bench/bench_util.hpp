// Shared setup for the experiment harnesses: a full simulated stack
// (clock, network, PKI, host, registry) plus table-printing helpers.
// Each bench binary regenerates one experiment from DESIGN.md / EXPERIMENTS.md.
#pragma once

#include <cstdio>
#include <memory>
#include <string>

#include "core/config.hpp"
#include "core/infogram_client.hpp"
#include "core/infogram_service.hpp"
#include "exec/fork_backend.hpp"
#include "logging/log.hpp"

namespace ig::bench {

/// One simulated grid host with security fabric, ready to run services.
struct Stack {
  VirtualClock clock{seconds(1000)};
  net::Network network;
  std::unique_ptr<security::CertificateAuthority> ca;
  security::TrustStore trust;
  security::GridMap gridmap;
  security::AuthorizationPolicy policy{security::Decision::kAllow};
  security::Credential user;
  security::Credential host_cred;
  std::shared_ptr<logging::Logger> logger;
  std::shared_ptr<logging::MemorySink> log_sink;
  std::shared_ptr<exec::SimSystem> system;
  std::shared_ptr<exec::CommandRegistry> registry;

  explicit Stack(std::uint64_t seed = 97, const std::string& host = "bench.sim") {
    ca = std::make_unique<security::CertificateAuthority>(
        "/O=Grid/CN=Bench CA", seconds(365LL * 86400), clock, seed);
    trust.add_root(ca->root_certificate());
    user = ca->issue("/O=Grid/CN=bench", security::CertType::kUser, seconds(864000));
    host_cred = ca->issue("/O=Grid/CN=host/" + host, security::CertType::kHost,
                          seconds(365LL * 86400));
    gridmap.add("/O=Grid/CN=bench", "bench");
    logger = std::make_shared<logging::Logger>(clock);
    log_sink = std::make_shared<logging::MemorySink>();
    logger->add_sink(log_sink);
    system = std::make_shared<exec::SimSystem>(clock, seed ^ 0xabc, host);
    registry = exec::CommandRegistry::standard(clock, system, seed ^ 0xdef);
  }

  /// Monitor loaded with the paper's Table 1 configuration.
  std::shared_ptr<info::SystemMonitor> table1_monitor(const std::string& host = "bench.sim") {
    auto monitor = std::make_shared<info::SystemMonitor>(clock, host);
    auto status = core::Configuration::table1().apply(*monitor, registry);
    if (!status.ok()) {
      std::fprintf(stderr, "table1 apply failed: %s\n", status.to_string().c_str());
      std::abort();
    }
    return monitor;
  }
};

inline void header(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void rule(int width = 78) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

}  // namespace ig::bench
