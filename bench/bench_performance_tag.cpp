// E5 — the xRSL `performance` tag: "returns the number of seconds and the
// standard deviation about how long it takes to obtain a particular
// information value. The performance of a command and its attributed
// values is measured and catalogued during runtime."
//
// Registers providers whose commands have known costs (plus jitter),
// refreshes each many times, then fetches the performance record and
// compares measured mean/stddev against the configured ground truth.
#include "bench_util.hpp"

using namespace ig;  // NOLINT

int main() {
  bench::Stack stack(314);
  bench::header("E5 / performance tag: measured vs configured provider cost");

  struct Probe {
    const char* keyword;
    Duration base_cost;
    Duration jitter;  // uniform +/- jitter via an extra virtual sleep
  };
  const Probe probes[] = {
      {"Fast", ms(2), ms(1)},
      {"Medium", ms(20), ms(5)},
      {"Slow", ms(120), ms(30)},
  };

  auto monitor = std::make_shared<info::SystemMonitor>(stack.clock, "perf.sim");
  auto jitter_rng = std::make_shared<Rng>(2718);
  for (const Probe& probe : probes) {
    // Command with randomized cost around the base.
    std::string path = std::string("/bin/probe_") + probe.keyword;
    Duration jitter = probe.jitter;
    VirtualClock* clock = &stack.clock;
    stack.registry->register_command(
        path,
        [clock, jitter, jitter_rng](const std::vector<std::string>&) {
          clock->advance(us(jitter_rng->uniform_int(0, 2 * jitter.count())));
          return exec::CommandResult{0, "value: 1\n"};
        },
        probe.base_cost);
    info::ProviderOptions options;
    options.ttl = ms(0);
    if (!monitor
             ->add_source(std::make_shared<info::CommandSource>(probe.keyword, path,
                                                                stack.registry),
                          options)
             .ok()) {
      return 1;
    }
  }

  constexpr int kSamples = 200;
  for (const Probe& probe : probes) {
    auto provider = monitor->provider(probe.keyword);
    for (int i = 0; i < kSamples; ++i) {
      if (!provider->update_state(true).ok()) return 1;
      stack.clock.advance(ms(1));
    }
  }

  auto record = monitor->performance_record({"all"});
  if (!record.ok()) return 1;

  std::printf("%-8s | %-12s %-12s | %-12s %-12s %-8s\n", "keyword", "true mean",
              "true stddev", "meas mean", "meas stddev", "count");
  bench::rule(76);
  for (const Probe& probe : probes) {
    double true_mean_s =
        static_cast<double>(probe.base_cost.count() + probe.jitter.count()) / 1e6;
    // Uniform on [0, 2j]: stddev = 2j/sqrt(12).
    double true_stddev_s =
        2.0 * static_cast<double>(probe.jitter.count()) / 1e6 / std::sqrt(12.0);
    auto get = [&](const char* suffix) {
      const auto* attr = record->find(std::string(probe.keyword) + ":" + suffix);
      return attr != nullptr ? attr->value : std::string("?");
    };
    std::printf("%-8s | %-12.6f %-12.6f | %-12s %-12s %-8s\n", probe.keyword, true_mean_s,
                true_stddev_s, get("mean_s").c_str(), get("stddev_s").c_str(),
                get("count").c_str());
  }
  std::printf(
      "\nExpected shape: measured mean within ~1ms of the configured cost (the\n"
      "cost loop rounds to 1ms slices), stddev reflecting the injected jitter.\n");
  return 0;
}
