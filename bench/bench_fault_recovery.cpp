// E-FAULT-REC — resilient provider pipeline under injected failure.
//
// Drives immediate-mode info queries against fault-wrapped providers at
// 0% / 5% / 20% injected failure rates with the full resilience stack on
// (bounded retry with backoff, stale-serve degradation) and reports
// throughput and tail latency per rate. Latencies are wall-clock: the
// virtual clock makes the backoff sleeps free, so what is measured is
// the pure overhead of the injection + retry + shield machinery — the
// cost a healthy deployment pays for carrying the resilience layer, and
// the extra work a faulty one spends re-running providers.
//
// Expected shape: 0% is the baseline; 5% costs a few percent of
// throughput (occasional second attempt); 20% visibly fattens the tail
// (retry chains) while every query still succeeds — failures are
// absorbed by retry or served stale from cache, never surfaced.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/fault.hpp"
#include "info/fault_source.hpp"
#include "info/provider.hpp"

using namespace ig;  // NOLINT

namespace {

constexpr int kKeywords = 8;
constexpr int kOps = 4000;

std::string keyword(int i) { return "kw" + std::to_string(i % kKeywords); }

struct Row {
  double rate;
  double ops_per_sec;
  double p99_us;
  std::uint64_t failures;   ///< provider-level failed produces (retried away)
  std::uint64_t degraded;   ///< queries answered from stale cache
};

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReport report("fault_recovery", argc, argv);
  bench::header("E-FAULT-REC: query throughput & tail vs injected failure rate");
  std::vector<Row> rows;

  for (double rate : {0.0, 0.05, 0.20}) {
    bench::Stack stack(31);
    FaultPlan plan;
    plan.seed = 4242;
    for (int i = 0; i < kKeywords; ++i) {
      FaultSpec spec;
      spec.kind = FaultKind::kError;
      spec.probability = rate;
      plan.add("info." + keyword(i), spec);
    }
    auto injector = std::make_shared<FaultInjector>(plan);
    auto telemetry = std::make_shared<obs::Telemetry>(stack.clock);
    auto monitor = std::make_shared<info::SystemMonitor>(stack.clock, "fault.sim");
    monitor->set_telemetry(telemetry);
    std::vector<std::shared_ptr<info::ManagedProvider>> providers;
    for (int i = 0; i < kKeywords; ++i) {
      std::string kw = keyword(i);
      auto inner = std::make_shared<info::FunctionSource>(
          kw,
          [kw]() -> Result<format::InfoRecord> {
            format::InfoRecord record;
            record.keyword = kw;
            record.add("value", "1");
            return record;
          },
          "function:" + kw);
      info::ProviderOptions options;
      options.ttl = Duration(0);  // every query refreshes: worst case for faults
      options.resilience.retry.max_attempts = 3;
      options.resilience.retry.initial_backoff = ms(1);  // virtual: free in wall time
      auto provider = std::make_shared<info::ManagedProvider>(
          std::make_shared<info::FaultInjectingSource>(inner, injector, stack.clock),
          stack.clock, options);
      providers.push_back(provider);
      if (!monitor->add_provider(provider).ok()) return 1;
    }
    // Prime every cache so stale-serve always has something to shield with.
    for (int i = 0; i < kKeywords; ++i) {
      if (!monitor->get(keyword(i), rsl::ResponseMode::kImmediate).ok()) return 1;
    }

    std::string series = "failure_" + std::to_string(static_cast<int>(rate * 100));
    std::vector<double> latencies;
    latencies.reserve(kOps);
    auto begin = std::chrono::steady_clock::now();
    for (int i = 0; i < kOps; ++i) {
      auto op_begin = std::chrono::steady_clock::now();
      auto record = monitor->get(keyword(i), rsl::ResponseMode::kImmediate);
      auto op_us = std::chrono::duration_cast<std::chrono::nanoseconds>(
                       std::chrono::steady_clock::now() - op_begin)
                       .count() /
                   1000.0;
      if (!record.ok()) {
        std::fprintf(stderr, "query failed at rate %.2f: %s\n", rate,
                     record.error().to_string().c_str());
        return 1;  // the shield is supposed to make this impossible
      }
      latencies.push_back(op_us);
      report.add(series, op_us);
    }
    auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
        std::chrono::steady_clock::now() - begin);

    std::sort(latencies.begin(), latencies.end());
    Row row;
    row.rate = rate;
    row.ops_per_sec = elapsed.count() > 0 ? static_cast<double>(kOps) * 1e6 /
                                                static_cast<double>(elapsed.count())
                                          : 0.0;
    row.p99_us = latencies[static_cast<std::size_t>(0.99 * (latencies.size() - 1))];
    row.failures = 0;
    for (const auto& provider : providers) row.failures += provider->failure_count();
    row.degraded =
        telemetry->metrics().counter(obs::metric::kInfoDegradedServed).value();
    rows.push_back(row);
  }

  std::printf("%-8s %12s %12s %12s %12s\n", "rate", "ops/sec", "p99(us)", "failures",
              "degraded");
  bench::rule(60);
  for (const auto& row : rows) {
    std::printf("%6.0f%%  %12.1f %12.2f %12llu %12llu\n", row.rate * 100,
                row.ops_per_sec, row.p99_us,
                static_cast<unsigned long long>(row.failures),
                static_cast<unsigned long long>(row.degraded));
  }
  double baseline = rows.front().ops_per_sec;
  std::printf(
      "\nExpected shape: throughput degrades modestly with the failure rate\n"
      "(retries re-run providers) while no query ever fails — overhead at\n"
      "20%% vs 0%%: %.1f%%.\n",
      baseline > 0.0 ? (1.0 - rows.back().ops_per_sec / baseline) * 100.0 : 0.0);
  return 0;
}
