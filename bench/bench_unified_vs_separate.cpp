// E2 — Fig. 2 vs Fig. 4: "The new InfoGram service reduces the number of
// protocols and components in a Grid."
//
// Runs the same mixed workload (per round: one information query, one job
// submission, one wait) against the classic GRAM+GRIS deployment and the
// unified InfoGram deployment, sweeping the number of rounds, and reports
// connections, security handshakes, round trips, bytes and virtual network
// time. Expected shape: InfoGram needs half the connections/handshakes and
// fewer round trips (the combined request folds query+submit into one).
#include "bench_util.hpp"
#include "exec/batch_backend.hpp"
#include "gram/service.hpp"
#include "mds/filter.hpp"
#include "mds/service.hpp"

using namespace ig;  // NOLINT

namespace {

struct Row {
  int rounds;
  net::TrafficStats separate;
  net::TrafficStats unified;
};

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReport report("unified_vs_separate", argc, argv);
  bench::header("E2 / Fig.2 vs Fig.4: two services vs one unified endpoint");
  std::vector<Row> rows;

  for (int rounds : {1, 5, 20, 50}) {
    bench::Stack stack(1000 + static_cast<std::uint64_t>(rounds));
    auto backend = std::make_shared<exec::ForkBackend>(stack.registry, stack.clock);

    // Classic deployment: GRAM on :2119, GRIS behind MDS on :2136.
    auto gram_monitor = stack.table1_monitor("classic.sim");
    gram::GramConfig gram_config;
    gram_config.host = "classic.sim";
    gram::GramService gram_service(backend, stack.host_cred, &stack.trust, &stack.gridmap,
                                   &stack.policy, &stack.clock, stack.logger, gram_config);
    if (!gram_service.start(stack.network).ok()) return 1;
    auto gris = std::make_shared<mds::Gris>(gram_monitor, "classic.sim", stack.clock);
    mds::MdsService mds_service(gris, stack.host_cred, &stack.trust, &stack.clock,
                                stack.logger);
    if (!mds_service.start(stack.network, {"classic.sim", 2136}).ok()) return 1;

    // Unified deployment.
    auto unified_monitor = stack.table1_monitor("unified.sim");
    core::InfoGramConfig ig_config;
    ig_config.host = "unified.sim";
    core::InfoGramService infogram(unified_monitor, backend, stack.host_cred, &stack.trust,
                                   &stack.gridmap, &stack.policy, &stack.clock,
                                   stack.logger, ig_config);
    if (!infogram.start(stack.network).ok()) return 1;

    Row row;
    row.rounds = rounds;

    {  // Fig. 2 run
      gram::GramClient gram_client(stack.network, gram_service.address(), stack.user,
                                   stack.trust, stack.clock);
      mds::MdsClient mds_client(stack.network, {"classic.sim", 2136}, stack.user,
                                stack.trust, stack.clock);
      auto filter = mds::Filter::parse("(kw=CPULoad)").value();
      for (int i = 0; i < rounds; ++i) {
        net::TrafficStats before = gram_client.stats();
        before.merge(mds_client.stats());
        if (!mds_client.search("o=Grid", mds::Scope::kSubtree, filter).ok()) return 1;
        auto contact = gram_client.submit("&(executable=/bin/echo)(arguments=x)");
        if (!contact.ok()) return 1;
        if (!gram_client.wait(*contact, seconds(30)).ok()) return 1;
        net::TrafficStats after = gram_client.stats();
        after.merge(mds_client.stats());
        report.add("separate_round",
                   static_cast<double>((after.virtual_time - before.virtual_time).count()));
        stack.clock.advance(ms(100));
      }
      row.separate = gram_client.stats();
      row.separate.merge(mds_client.stats());
    }
    {  // Fig. 4 run
      core::InfoGramClient client(stack.network, infogram.address(), stack.user,
                                  stack.trust, stack.clock);
      for (int i = 0; i < rounds; ++i) {
        net::TrafficStats before = client.stats();
        auto resp =
            client.request("&(executable=/bin/echo)(arguments=x)(info=CPULoad)");
        if (!resp.ok() || !resp->job_contact) return 1;
        if (!client.wait(*resp->job_contact, seconds(30)).ok()) return 1;
        net::TrafficStats after = client.stats();
        report.add("unified_round",
                   static_cast<double>((after.virtual_time - before.virtual_time).count()));
        stack.clock.advance(ms(100));
      }
      row.unified = client.stats();
    }
    rows.push_back(row);
  }

  std::printf("%-7s | %-34s | %-34s\n", "", "Fig.2: GRAM + MDS (2 protocols)",
              "Fig.4: InfoGram (1 protocol)");
  std::printf("%-7s | %5s %5s %8s %9s | %5s %5s %8s %9s | %s\n", "rounds", "conn",
              "rtrip", "bytes", "net(ms)", "conn", "rtrip", "bytes", "net(ms)",
              "rtrip ratio");
  bench::rule(110);
  for (const auto& row : rows) {
    double ratio = static_cast<double>(row.separate.requests) /
                   static_cast<double>(row.unified.requests);
    std::printf(
        "%-7d | %5llu %5llu %8llu %9.2f | %5llu %5llu %8llu %9.2f | %.2fx\n", row.rounds,
        static_cast<unsigned long long>(row.separate.connects),
        static_cast<unsigned long long>(row.separate.requests),
        static_cast<unsigned long long>(row.separate.bytes_sent +
                                        row.separate.bytes_received),
        static_cast<double>(row.separate.virtual_time.count()) / 1000.0,
        static_cast<unsigned long long>(row.unified.connects),
        static_cast<unsigned long long>(row.unified.requests),
        static_cast<unsigned long long>(row.unified.bytes_sent +
                                        row.unified.bytes_received),
        static_cast<double>(row.unified.virtual_time.count()) / 1000.0, ratio);
  }
  std::printf(
      "\nExpected shape: InfoGram uses half the connections and handshakes, and\n"
      "~1.5x fewer round trips (query+submit fold into one request per round).\n");
  return 0;
}
