// E9 — MDS baseline scaling (paper Sec. 3): GRIS search cost, GIIS
// aggregation over growing VOs, and the effect of the MDS 2.0-style
// aggregate cache. Expected shape: GIIS search cost grows with resource
// count on a cache miss but is flat on hits; the caching function is what
// makes VO-scale queries viable.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "info/system_monitor.hpp"
#include "mds/giis.hpp"
#include "mds/gris.hpp"

namespace {

using namespace ig;  // NOLINT

struct Env {
  VirtualClock clock{seconds(1000)};
  std::shared_ptr<exec::SimSystem> system =
      std::make_shared<exec::SimSystem>(clock, 5, "mds.sim");
  std::shared_ptr<exec::CommandRegistry> registry =
      exec::CommandRegistry::standard(clock, system, 6);

  std::shared_ptr<info::SystemMonitor> make_monitor(const std::string& host) {
    auto monitor = std::make_shared<info::SystemMonitor>(clock, host);
    info::ProviderOptions options;
    options.ttl = seconds(3600);  // effectively static for the benchmark
    for (auto [kw, cmd] :
         {std::pair{"Memory", "/sbin/sysinfo.exe -mem"},
          std::pair{"CPU", "/sbin/sysinfo.exe -cpu"},
          std::pair{"CPULoad", "/usr/local/bin/cpuload.exe"}}) {
      (void)monitor->add_source(
          std::make_shared<info::CommandSource>(kw, cmd, registry), options);
    }
    return monitor;
  }
};

void BM_GrisSearch(benchmark::State& state) {
  Env env;
  mds::Gris gris(env.make_monitor("host.sim"), "host.sim", env.clock);
  auto filter = mds::Filter::parse("(kw=Memory)").value();
  for (auto _ : state) {
    auto entries = gris.search("o=Grid", mds::Scope::kSubtree, filter);
    if (!entries.ok() || entries->size() != 1) {
      state.SkipWithError("search failed");
      return;
    }
  }
}
BENCHMARK(BM_GrisSearch)->Unit(benchmark::kMicrosecond);

void BM_GiisSearchCached(benchmark::State& state) {
  Env env;
  mds::Giis giis("vo", env.clock, seconds(3600));
  for (int i = 0; i < state.range(0); ++i) {
    std::string host = "n" + std::to_string(i) + ".sim";
    giis.register_child(std::make_shared<mds::Gris>(env.make_monitor(host), host, env.clock));
  }
  auto filter = mds::Filter::parse("(kw=CPULoad)").value();
  // Warm the cache outside the timed loop.
  (void)giis.search("o=Grid", mds::Scope::kSubtree, filter);
  for (auto _ : state) {
    auto entries = giis.search("o=Grid", mds::Scope::kSubtree, filter);
    if (!entries.ok()) {
      state.SkipWithError("search failed");
      return;
    }
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GiisSearchCached)->Arg(1)->Arg(4)->Arg(16)->Arg(64)->Unit(benchmark::kMicrosecond);

void BM_GiisSearchColdCache(benchmark::State& state) {
  // Every search misses the cache (TTL 0): the full child sweep each time.
  Env env;
  mds::Giis giis("vo", env.clock, us(0));
  for (int i = 0; i < state.range(0); ++i) {
    std::string host = "n" + std::to_string(i) + ".sim";
    giis.register_child(std::make_shared<mds::Gris>(env.make_monitor(host), host, env.clock));
  }
  auto filter = mds::Filter::parse("(kw=CPULoad)").value();
  (void)giis.search("o=Grid", mds::Scope::kSubtree, filter);  // charge command costs once
  for (auto _ : state) {
    env.clock.advance(ms(1));  // invalidate
    auto entries = giis.search("o=Grid", mds::Scope::kSubtree, filter);
    if (!entries.ok()) {
      state.SkipWithError("search failed");
      return;
    }
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GiisSearchColdCache)->Arg(1)->Arg(4)->Arg(16)->Unit(benchmark::kMicrosecond);

void BM_FilterComplexity(benchmark::State& state) {
  // Cost of evaluating progressively wider disjunctions over a directory.
  Env env;
  mds::Directory directory;
  for (int i = 0; i < 256; ++i) {
    mds::DirectoryEntry entry;
    entry.dn = "kw=K" + std::to_string(i) + ", o=Grid";
    entry.add("objectclass", "X");
    entry.add("kw", "K" + std::to_string(i));
    entry.add("index", std::to_string(i));
    directory.put(std::move(entry));
  }
  std::string text = "(|";
  for (int i = 0; i < state.range(0); ++i) {
    text += "(kw=K" + std::to_string(i * 7 % 256) + ")";
  }
  text += ")";
  auto filter = mds::Filter::parse(text).value();
  for (auto _ : state) {
    auto hits = mds::search(directory, "o=Grid", mds::Scope::kSubtree, filter);
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_FilterComplexity)->Arg(1)->Arg(8)->Arg(32)->Unit(benchmark::kMicrosecond);

}  // namespace

// BENCHMARK_MAIN plus the repo-wide `--json` convention: the flag expands
// to google-benchmark's own JSON file output as BENCH_mds_search.json.
int main(int argc, char** argv) {
  std::string out_flag = "--benchmark_out=BENCH_mds_search.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  std::vector<char*> args;
  bool json = false;
  for (int i = 0; i < argc; ++i) {
    if (std::string(argv[i]) == "--json") {
      json = true;
    } else {
      args.push_back(argv[i]);
    }
  }
  if (json) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
