file(REMOVE_RECURSE
  "CMakeFiles/bench_adaptive_ttl.dir/bench_adaptive_ttl.cpp.o"
  "CMakeFiles/bench_adaptive_ttl.dir/bench_adaptive_ttl.cpp.o.d"
  "bench_adaptive_ttl"
  "bench_adaptive_ttl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_adaptive_ttl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
