# Empty compiler generated dependencies file for bench_adaptive_ttl.
# This may be replaced when dependencies are built.
