file(REMOVE_RECURSE
  "CMakeFiles/bench_cache_ttl.dir/bench_cache_ttl.cpp.o"
  "CMakeFiles/bench_cache_ttl.dir/bench_cache_ttl.cpp.o.d"
  "bench_cache_ttl"
  "bench_cache_ttl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cache_ttl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
