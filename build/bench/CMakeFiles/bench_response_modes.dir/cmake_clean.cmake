file(REMOVE_RECURSE
  "CMakeFiles/bench_response_modes.dir/bench_response_modes.cpp.o"
  "CMakeFiles/bench_response_modes.dir/bench_response_modes.cpp.o.d"
  "bench_response_modes"
  "bench_response_modes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_response_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
