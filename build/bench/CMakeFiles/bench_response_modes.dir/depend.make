# Empty dependencies file for bench_response_modes.
# This may be replaced when dependencies are built.
