file(REMOVE_RECURSE
  "CMakeFiles/bench_mds_search.dir/bench_mds_search.cpp.o"
  "CMakeFiles/bench_mds_search.dir/bench_mds_search.cpp.o.d"
  "bench_mds_search"
  "bench_mds_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mds_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
