# Empty compiler generated dependencies file for bench_mds_search.
# This may be replaced when dependencies are built.
