# Empty dependencies file for bench_soap_overhead.
# This may be replaced when dependencies are built.
