file(REMOVE_RECURSE
  "CMakeFiles/bench_soap_overhead.dir/bench_soap_overhead.cpp.o"
  "CMakeFiles/bench_soap_overhead.dir/bench_soap_overhead.cpp.o.d"
  "bench_soap_overhead"
  "bench_soap_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_soap_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
