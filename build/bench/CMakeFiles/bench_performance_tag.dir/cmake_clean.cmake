file(REMOVE_RECURSE
  "CMakeFiles/bench_performance_tag.dir/bench_performance_tag.cpp.o"
  "CMakeFiles/bench_performance_tag.dir/bench_performance_tag.cpp.o.d"
  "bench_performance_tag"
  "bench_performance_tag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_performance_tag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
