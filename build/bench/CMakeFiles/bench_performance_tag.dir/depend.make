# Empty dependencies file for bench_performance_tag.
# This may be replaced when dependencies are built.
