# Empty dependencies file for bench_rsl.
# This may be replaced when dependencies are built.
