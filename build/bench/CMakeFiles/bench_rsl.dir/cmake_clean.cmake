file(REMOVE_RECURSE
  "CMakeFiles/bench_rsl.dir/bench_rsl.cpp.o"
  "CMakeFiles/bench_rsl.dir/bench_rsl.cpp.o.d"
  "bench_rsl"
  "bench_rsl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rsl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
