# Empty dependencies file for bench_p2p_discovery.
# This may be replaced when dependencies are built.
