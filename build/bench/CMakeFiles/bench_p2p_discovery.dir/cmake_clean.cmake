file(REMOVE_RECURSE
  "CMakeFiles/bench_p2p_discovery.dir/bench_p2p_discovery.cpp.o"
  "CMakeFiles/bench_p2p_discovery.dir/bench_p2p_discovery.cpp.o.d"
  "bench_p2p_discovery"
  "bench_p2p_discovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_p2p_discovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
