file(REMOVE_RECURSE
  "CMakeFiles/bench_provisioning.dir/bench_provisioning.cpp.o"
  "CMakeFiles/bench_provisioning.dir/bench_provisioning.cpp.o.d"
  "bench_provisioning"
  "bench_provisioning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_provisioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
