# Empty compiler generated dependencies file for bench_job_submission.
# This may be replaced when dependencies are built.
