file(REMOVE_RECURSE
  "CMakeFiles/bench_job_submission.dir/bench_job_submission.cpp.o"
  "CMakeFiles/bench_job_submission.dir/bench_job_submission.cpp.o.d"
  "bench_job_submission"
  "bench_job_submission.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_job_submission.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
