file(REMOVE_RECURSE
  "CMakeFiles/bench_degradation_quality.dir/bench_degradation_quality.cpp.o"
  "CMakeFiles/bench_degradation_quality.dir/bench_degradation_quality.cpp.o.d"
  "bench_degradation_quality"
  "bench_degradation_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_degradation_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
