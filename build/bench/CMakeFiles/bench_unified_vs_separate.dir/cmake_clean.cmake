file(REMOVE_RECURSE
  "CMakeFiles/bench_unified_vs_separate.dir/bench_unified_vs_separate.cpp.o"
  "CMakeFiles/bench_unified_vs_separate.dir/bench_unified_vs_separate.cpp.o.d"
  "bench_unified_vs_separate"
  "bench_unified_vs_separate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_unified_vs_separate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
