
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_unified_vs_separate.cpp" "bench/CMakeFiles/bench_unified_vs_separate.dir/bench_unified_vs_separate.cpp.o" "gcc" "bench/CMakeFiles/bench_unified_vs_separate.dir/bench_unified_vs_separate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/grid/CMakeFiles/ig_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ig_core.dir/DependInfo.cmake"
  "/root/repo/build/src/soap/CMakeFiles/ig_soap.dir/DependInfo.cmake"
  "/root/repo/build/src/mds/CMakeFiles/ig_mds.dir/DependInfo.cmake"
  "/root/repo/build/src/gram/CMakeFiles/ig_gram.dir/DependInfo.cmake"
  "/root/repo/build/src/security/CMakeFiles/ig_security.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ig_net.dir/DependInfo.cmake"
  "/root/repo/build/src/info/CMakeFiles/ig_info.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/ig_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/rsl/CMakeFiles/ig_rsl.dir/DependInfo.cmake"
  "/root/repo/build/src/logging/CMakeFiles/ig_logging.dir/DependInfo.cmake"
  "/root/repo/build/src/format/CMakeFiles/ig_format.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ig_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
