# Empty dependencies file for bench_unified_vs_separate.
# This may be replaced when dependencies are built.
