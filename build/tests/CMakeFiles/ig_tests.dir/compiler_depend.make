# Empty compiler generated dependencies file for ig_tests.
# This may be replaced when dependencies are built.
