
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/backend_test.cpp" "tests/CMakeFiles/ig_tests.dir/backend_test.cpp.o" "gcc" "tests/CMakeFiles/ig_tests.dir/backend_test.cpp.o.d"
  "/root/repo/tests/coallocator_test.cpp" "tests/CMakeFiles/ig_tests.dir/coallocator_test.cpp.o" "gcc" "tests/CMakeFiles/ig_tests.dir/coallocator_test.cpp.o.d"
  "/root/repo/tests/common_test.cpp" "tests/CMakeFiles/ig_tests.dir/common_test.cpp.o" "gcc" "tests/CMakeFiles/ig_tests.dir/common_test.cpp.o.d"
  "/root/repo/tests/core_test.cpp" "tests/CMakeFiles/ig_tests.dir/core_test.cpp.o" "gcc" "tests/CMakeFiles/ig_tests.dir/core_test.cpp.o.d"
  "/root/repo/tests/deployment_test.cpp" "tests/CMakeFiles/ig_tests.dir/deployment_test.cpp.o" "gcc" "tests/CMakeFiles/ig_tests.dir/deployment_test.cpp.o.d"
  "/root/repo/tests/discovery_broker_test.cpp" "tests/CMakeFiles/ig_tests.dir/discovery_broker_test.cpp.o" "gcc" "tests/CMakeFiles/ig_tests.dir/discovery_broker_test.cpp.o.d"
  "/root/repo/tests/dsml_reflection_test.cpp" "tests/CMakeFiles/ig_tests.dir/dsml_reflection_test.cpp.o" "gcc" "tests/CMakeFiles/ig_tests.dir/dsml_reflection_test.cpp.o.d"
  "/root/repo/tests/exec_test.cpp" "tests/CMakeFiles/ig_tests.dir/exec_test.cpp.o" "gcc" "tests/CMakeFiles/ig_tests.dir/exec_test.cpp.o.d"
  "/root/repo/tests/extended_model_test.cpp" "tests/CMakeFiles/ig_tests.dir/extended_model_test.cpp.o" "gcc" "tests/CMakeFiles/ig_tests.dir/extended_model_test.cpp.o.d"
  "/root/repo/tests/extensions_test.cpp" "tests/CMakeFiles/ig_tests.dir/extensions_test.cpp.o" "gcc" "tests/CMakeFiles/ig_tests.dir/extensions_test.cpp.o.d"
  "/root/repo/tests/format_test.cpp" "tests/CMakeFiles/ig_tests.dir/format_test.cpp.o" "gcc" "tests/CMakeFiles/ig_tests.dir/format_test.cpp.o.d"
  "/root/repo/tests/gram_test.cpp" "tests/CMakeFiles/ig_tests.dir/gram_test.cpp.o" "gcc" "tests/CMakeFiles/ig_tests.dir/gram_test.cpp.o.d"
  "/root/repo/tests/grid_test.cpp" "tests/CMakeFiles/ig_tests.dir/grid_test.cpp.o" "gcc" "tests/CMakeFiles/ig_tests.dir/grid_test.cpp.o.d"
  "/root/repo/tests/hierarchy_test.cpp" "tests/CMakeFiles/ig_tests.dir/hierarchy_test.cpp.o" "gcc" "tests/CMakeFiles/ig_tests.dir/hierarchy_test.cpp.o.d"
  "/root/repo/tests/info_test.cpp" "tests/CMakeFiles/ig_tests.dir/info_test.cpp.o" "gcc" "tests/CMakeFiles/ig_tests.dir/info_test.cpp.o.d"
  "/root/repo/tests/integration_test.cpp" "tests/CMakeFiles/ig_tests.dir/integration_test.cpp.o" "gcc" "tests/CMakeFiles/ig_tests.dir/integration_test.cpp.o.d"
  "/root/repo/tests/logging_test.cpp" "tests/CMakeFiles/ig_tests.dir/logging_test.cpp.o" "gcc" "tests/CMakeFiles/ig_tests.dir/logging_test.cpp.o.d"
  "/root/repo/tests/mds_test.cpp" "tests/CMakeFiles/ig_tests.dir/mds_test.cpp.o" "gcc" "tests/CMakeFiles/ig_tests.dir/mds_test.cpp.o.d"
  "/root/repo/tests/net_test.cpp" "tests/CMakeFiles/ig_tests.dir/net_test.cpp.o" "gcc" "tests/CMakeFiles/ig_tests.dir/net_test.cpp.o.d"
  "/root/repo/tests/p2p_discovery_test.cpp" "tests/CMakeFiles/ig_tests.dir/p2p_discovery_test.cpp.o" "gcc" "tests/CMakeFiles/ig_tests.dir/p2p_discovery_test.cpp.o.d"
  "/root/repo/tests/property_test.cpp" "tests/CMakeFiles/ig_tests.dir/property_test.cpp.o" "gcc" "tests/CMakeFiles/ig_tests.dir/property_test.cpp.o.d"
  "/root/repo/tests/rsl_test.cpp" "tests/CMakeFiles/ig_tests.dir/rsl_test.cpp.o" "gcc" "tests/CMakeFiles/ig_tests.dir/rsl_test.cpp.o.d"
  "/root/repo/tests/search_engine_test.cpp" "tests/CMakeFiles/ig_tests.dir/search_engine_test.cpp.o" "gcc" "tests/CMakeFiles/ig_tests.dir/search_engine_test.cpp.o.d"
  "/root/repo/tests/security_test.cpp" "tests/CMakeFiles/ig_tests.dir/security_test.cpp.o" "gcc" "tests/CMakeFiles/ig_tests.dir/security_test.cpp.o.d"
  "/root/repo/tests/soap_test.cpp" "tests/CMakeFiles/ig_tests.dir/soap_test.cpp.o" "gcc" "tests/CMakeFiles/ig_tests.dir/soap_test.cpp.o.d"
  "/root/repo/tests/xrsl_test.cpp" "tests/CMakeFiles/ig_tests.dir/xrsl_test.cpp.o" "gcc" "tests/CMakeFiles/ig_tests.dir/xrsl_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/soap/CMakeFiles/ig_soap.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/ig_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ig_core.dir/DependInfo.cmake"
  "/root/repo/build/src/gram/CMakeFiles/ig_gram.dir/DependInfo.cmake"
  "/root/repo/build/src/mds/CMakeFiles/ig_mds.dir/DependInfo.cmake"
  "/root/repo/build/src/info/CMakeFiles/ig_info.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/ig_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/logging/CMakeFiles/ig_logging.dir/DependInfo.cmake"
  "/root/repo/build/src/format/CMakeFiles/ig_format.dir/DependInfo.cmake"
  "/root/repo/build/src/rsl/CMakeFiles/ig_rsl.dir/DependInfo.cmake"
  "/root/repo/build/src/security/CMakeFiles/ig_security.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ig_net.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ig_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
