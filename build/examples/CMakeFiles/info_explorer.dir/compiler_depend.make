# Empty compiler generated dependencies file for info_explorer.
# This may be replaced when dependencies are built.
