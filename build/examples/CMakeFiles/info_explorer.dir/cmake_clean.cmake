file(REMOVE_RECURSE
  "CMakeFiles/info_explorer.dir/info_explorer.cpp.o"
  "CMakeFiles/info_explorer.dir/info_explorer.cpp.o.d"
  "info_explorer"
  "info_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/info_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
