file(REMOVE_RECURSE
  "CMakeFiles/igsh.dir/igsh.cpp.o"
  "CMakeFiles/igsh.dir/igsh.cpp.o.d"
  "igsh"
  "igsh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/igsh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
