# Empty dependencies file for igsh.
# This may be replaced when dependencies are built.
