file(REMOVE_RECURSE
  "CMakeFiles/sporadic_grid.dir/sporadic_grid.cpp.o"
  "CMakeFiles/sporadic_grid.dir/sporadic_grid.cpp.o.d"
  "sporadic_grid"
  "sporadic_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sporadic_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
