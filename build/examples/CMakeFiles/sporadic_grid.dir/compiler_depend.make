# Empty compiler generated dependencies file for sporadic_grid.
# This may be replaced when dependencies are built.
