# Empty dependencies file for web_service.
# This may be replaced when dependencies are built.
