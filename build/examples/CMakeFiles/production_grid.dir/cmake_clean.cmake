file(REMOVE_RECURSE
  "CMakeFiles/production_grid.dir/production_grid.cpp.o"
  "CMakeFiles/production_grid.dir/production_grid.cpp.o.d"
  "production_grid"
  "production_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/production_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
