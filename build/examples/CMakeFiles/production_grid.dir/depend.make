# Empty dependencies file for production_grid.
# This may be replaced when dependencies are built.
