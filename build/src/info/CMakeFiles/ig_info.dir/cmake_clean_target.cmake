file(REMOVE_RECURSE
  "libig_info.a"
)
