# Empty compiler generated dependencies file for ig_info.
# This may be replaced when dependencies are built.
