file(REMOVE_RECURSE
  "CMakeFiles/ig_info.dir/degradation.cpp.o"
  "CMakeFiles/ig_info.dir/degradation.cpp.o.d"
  "CMakeFiles/ig_info.dir/managed_provider.cpp.o"
  "CMakeFiles/ig_info.dir/managed_provider.cpp.o.d"
  "CMakeFiles/ig_info.dir/provider.cpp.o"
  "CMakeFiles/ig_info.dir/provider.cpp.o.d"
  "CMakeFiles/ig_info.dir/system_monitor.cpp.o"
  "CMakeFiles/ig_info.dir/system_monitor.cpp.o.d"
  "libig_info.a"
  "libig_info.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ig_info.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
