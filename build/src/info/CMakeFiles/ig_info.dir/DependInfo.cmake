
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/info/degradation.cpp" "src/info/CMakeFiles/ig_info.dir/degradation.cpp.o" "gcc" "src/info/CMakeFiles/ig_info.dir/degradation.cpp.o.d"
  "/root/repo/src/info/managed_provider.cpp" "src/info/CMakeFiles/ig_info.dir/managed_provider.cpp.o" "gcc" "src/info/CMakeFiles/ig_info.dir/managed_provider.cpp.o.d"
  "/root/repo/src/info/provider.cpp" "src/info/CMakeFiles/ig_info.dir/provider.cpp.o" "gcc" "src/info/CMakeFiles/ig_info.dir/provider.cpp.o.d"
  "/root/repo/src/info/system_monitor.cpp" "src/info/CMakeFiles/ig_info.dir/system_monitor.cpp.o" "gcc" "src/info/CMakeFiles/ig_info.dir/system_monitor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ig_common.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/ig_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/format/CMakeFiles/ig_format.dir/DependInfo.cmake"
  "/root/repo/build/src/rsl/CMakeFiles/ig_rsl.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
