# Empty dependencies file for ig_exec.
# This may be replaced when dependencies are built.
