
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/exec/batch_backend.cpp" "src/exec/CMakeFiles/ig_exec.dir/batch_backend.cpp.o" "gcc" "src/exec/CMakeFiles/ig_exec.dir/batch_backend.cpp.o.d"
  "/root/repo/src/exec/checkpoint.cpp" "src/exec/CMakeFiles/ig_exec.dir/checkpoint.cpp.o" "gcc" "src/exec/CMakeFiles/ig_exec.dir/checkpoint.cpp.o.d"
  "/root/repo/src/exec/command.cpp" "src/exec/CMakeFiles/ig_exec.dir/command.cpp.o" "gcc" "src/exec/CMakeFiles/ig_exec.dir/command.cpp.o.d"
  "/root/repo/src/exec/fork_backend.cpp" "src/exec/CMakeFiles/ig_exec.dir/fork_backend.cpp.o" "gcc" "src/exec/CMakeFiles/ig_exec.dir/fork_backend.cpp.o.d"
  "/root/repo/src/exec/job_table.cpp" "src/exec/CMakeFiles/ig_exec.dir/job_table.cpp.o" "gcc" "src/exec/CMakeFiles/ig_exec.dir/job_table.cpp.o.d"
  "/root/repo/src/exec/matchmaking_backend.cpp" "src/exec/CMakeFiles/ig_exec.dir/matchmaking_backend.cpp.o" "gcc" "src/exec/CMakeFiles/ig_exec.dir/matchmaking_backend.cpp.o.d"
  "/root/repo/src/exec/runner.cpp" "src/exec/CMakeFiles/ig_exec.dir/runner.cpp.o" "gcc" "src/exec/CMakeFiles/ig_exec.dir/runner.cpp.o.d"
  "/root/repo/src/exec/sandbox.cpp" "src/exec/CMakeFiles/ig_exec.dir/sandbox.cpp.o" "gcc" "src/exec/CMakeFiles/ig_exec.dir/sandbox.cpp.o.d"
  "/root/repo/src/exec/sim_system.cpp" "src/exec/CMakeFiles/ig_exec.dir/sim_system.cpp.o" "gcc" "src/exec/CMakeFiles/ig_exec.dir/sim_system.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ig_common.dir/DependInfo.cmake"
  "/root/repo/build/src/rsl/CMakeFiles/ig_rsl.dir/DependInfo.cmake"
  "/root/repo/build/src/format/CMakeFiles/ig_format.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
