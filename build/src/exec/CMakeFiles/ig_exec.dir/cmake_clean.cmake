file(REMOVE_RECURSE
  "CMakeFiles/ig_exec.dir/batch_backend.cpp.o"
  "CMakeFiles/ig_exec.dir/batch_backend.cpp.o.d"
  "CMakeFiles/ig_exec.dir/checkpoint.cpp.o"
  "CMakeFiles/ig_exec.dir/checkpoint.cpp.o.d"
  "CMakeFiles/ig_exec.dir/command.cpp.o"
  "CMakeFiles/ig_exec.dir/command.cpp.o.d"
  "CMakeFiles/ig_exec.dir/fork_backend.cpp.o"
  "CMakeFiles/ig_exec.dir/fork_backend.cpp.o.d"
  "CMakeFiles/ig_exec.dir/job_table.cpp.o"
  "CMakeFiles/ig_exec.dir/job_table.cpp.o.d"
  "CMakeFiles/ig_exec.dir/matchmaking_backend.cpp.o"
  "CMakeFiles/ig_exec.dir/matchmaking_backend.cpp.o.d"
  "CMakeFiles/ig_exec.dir/runner.cpp.o"
  "CMakeFiles/ig_exec.dir/runner.cpp.o.d"
  "CMakeFiles/ig_exec.dir/sandbox.cpp.o"
  "CMakeFiles/ig_exec.dir/sandbox.cpp.o.d"
  "CMakeFiles/ig_exec.dir/sim_system.cpp.o"
  "CMakeFiles/ig_exec.dir/sim_system.cpp.o.d"
  "libig_exec.a"
  "libig_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ig_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
