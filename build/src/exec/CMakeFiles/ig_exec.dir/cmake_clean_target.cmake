file(REMOVE_RECURSE
  "libig_exec.a"
)
