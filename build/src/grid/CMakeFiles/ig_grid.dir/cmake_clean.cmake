file(REMOVE_RECURSE
  "CMakeFiles/ig_grid.dir/broker.cpp.o"
  "CMakeFiles/ig_grid.dir/broker.cpp.o.d"
  "CMakeFiles/ig_grid.dir/coallocator.cpp.o"
  "CMakeFiles/ig_grid.dir/coallocator.cpp.o.d"
  "CMakeFiles/ig_grid.dir/deployment.cpp.o"
  "CMakeFiles/ig_grid.dir/deployment.cpp.o.d"
  "CMakeFiles/ig_grid.dir/p2p_discovery.cpp.o"
  "CMakeFiles/ig_grid.dir/p2p_discovery.cpp.o.d"
  "CMakeFiles/ig_grid.dir/resource.cpp.o"
  "CMakeFiles/ig_grid.dir/resource.cpp.o.d"
  "CMakeFiles/ig_grid.dir/virtual_organization.cpp.o"
  "CMakeFiles/ig_grid.dir/virtual_organization.cpp.o.d"
  "libig_grid.a"
  "libig_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ig_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
