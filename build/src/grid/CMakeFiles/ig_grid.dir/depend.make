# Empty dependencies file for ig_grid.
# This may be replaced when dependencies are built.
