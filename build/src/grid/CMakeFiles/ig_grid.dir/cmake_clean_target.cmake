file(REMOVE_RECURSE
  "libig_grid.a"
)
