file(REMOVE_RECURSE
  "CMakeFiles/ig_mds.dir/directory.cpp.o"
  "CMakeFiles/ig_mds.dir/directory.cpp.o.d"
  "CMakeFiles/ig_mds.dir/filter.cpp.o"
  "CMakeFiles/ig_mds.dir/filter.cpp.o.d"
  "CMakeFiles/ig_mds.dir/giis.cpp.o"
  "CMakeFiles/ig_mds.dir/giis.cpp.o.d"
  "CMakeFiles/ig_mds.dir/gris.cpp.o"
  "CMakeFiles/ig_mds.dir/gris.cpp.o.d"
  "CMakeFiles/ig_mds.dir/search_engine.cpp.o"
  "CMakeFiles/ig_mds.dir/search_engine.cpp.o.d"
  "CMakeFiles/ig_mds.dir/service.cpp.o"
  "CMakeFiles/ig_mds.dir/service.cpp.o.d"
  "libig_mds.a"
  "libig_mds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ig_mds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
