
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mds/directory.cpp" "src/mds/CMakeFiles/ig_mds.dir/directory.cpp.o" "gcc" "src/mds/CMakeFiles/ig_mds.dir/directory.cpp.o.d"
  "/root/repo/src/mds/filter.cpp" "src/mds/CMakeFiles/ig_mds.dir/filter.cpp.o" "gcc" "src/mds/CMakeFiles/ig_mds.dir/filter.cpp.o.d"
  "/root/repo/src/mds/giis.cpp" "src/mds/CMakeFiles/ig_mds.dir/giis.cpp.o" "gcc" "src/mds/CMakeFiles/ig_mds.dir/giis.cpp.o.d"
  "/root/repo/src/mds/gris.cpp" "src/mds/CMakeFiles/ig_mds.dir/gris.cpp.o" "gcc" "src/mds/CMakeFiles/ig_mds.dir/gris.cpp.o.d"
  "/root/repo/src/mds/search_engine.cpp" "src/mds/CMakeFiles/ig_mds.dir/search_engine.cpp.o" "gcc" "src/mds/CMakeFiles/ig_mds.dir/search_engine.cpp.o.d"
  "/root/repo/src/mds/service.cpp" "src/mds/CMakeFiles/ig_mds.dir/service.cpp.o" "gcc" "src/mds/CMakeFiles/ig_mds.dir/service.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ig_common.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ig_net.dir/DependInfo.cmake"
  "/root/repo/build/src/security/CMakeFiles/ig_security.dir/DependInfo.cmake"
  "/root/repo/build/src/info/CMakeFiles/ig_info.dir/DependInfo.cmake"
  "/root/repo/build/src/format/CMakeFiles/ig_format.dir/DependInfo.cmake"
  "/root/repo/build/src/logging/CMakeFiles/ig_logging.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/ig_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/rsl/CMakeFiles/ig_rsl.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
