# Empty dependencies file for ig_mds.
# This may be replaced when dependencies are built.
