file(REMOVE_RECURSE
  "libig_mds.a"
)
