file(REMOVE_RECURSE
  "libig_soap.a"
)
