# Empty compiler generated dependencies file for ig_soap.
# This may be replaced when dependencies are built.
