file(REMOVE_RECURSE
  "CMakeFiles/ig_soap.dir/envelope.cpp.o"
  "CMakeFiles/ig_soap.dir/envelope.cpp.o.d"
  "CMakeFiles/ig_soap.dir/gateway.cpp.o"
  "CMakeFiles/ig_soap.dir/gateway.cpp.o.d"
  "libig_soap.a"
  "libig_soap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ig_soap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
