# Empty dependencies file for ig_gram.
# This may be replaced when dependencies are built.
