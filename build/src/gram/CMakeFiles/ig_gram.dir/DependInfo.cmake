
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gram/job_manager.cpp" "src/gram/CMakeFiles/ig_gram.dir/job_manager.cpp.o" "gcc" "src/gram/CMakeFiles/ig_gram.dir/job_manager.cpp.o.d"
  "/root/repo/src/gram/service.cpp" "src/gram/CMakeFiles/ig_gram.dir/service.cpp.o" "gcc" "src/gram/CMakeFiles/ig_gram.dir/service.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ig_common.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ig_net.dir/DependInfo.cmake"
  "/root/repo/build/src/security/CMakeFiles/ig_security.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/ig_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/rsl/CMakeFiles/ig_rsl.dir/DependInfo.cmake"
  "/root/repo/build/src/logging/CMakeFiles/ig_logging.dir/DependInfo.cmake"
  "/root/repo/build/src/format/CMakeFiles/ig_format.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
