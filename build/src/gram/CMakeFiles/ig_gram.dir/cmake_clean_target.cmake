file(REMOVE_RECURSE
  "libig_gram.a"
)
