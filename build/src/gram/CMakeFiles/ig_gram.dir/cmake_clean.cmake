file(REMOVE_RECURSE
  "CMakeFiles/ig_gram.dir/job_manager.cpp.o"
  "CMakeFiles/ig_gram.dir/job_manager.cpp.o.d"
  "CMakeFiles/ig_gram.dir/service.cpp.o"
  "CMakeFiles/ig_gram.dir/service.cpp.o.d"
  "libig_gram.a"
  "libig_gram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ig_gram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
