file(REMOVE_RECURSE
  "CMakeFiles/ig_core.dir/config.cpp.o"
  "CMakeFiles/ig_core.dir/config.cpp.o.d"
  "CMakeFiles/ig_core.dir/infogram_client.cpp.o"
  "CMakeFiles/ig_core.dir/infogram_client.cpp.o.d"
  "CMakeFiles/ig_core.dir/infogram_service.cpp.o"
  "CMakeFiles/ig_core.dir/infogram_service.cpp.o.d"
  "libig_core.a"
  "libig_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ig_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
