file(REMOVE_RECURSE
  "libig_core.a"
)
