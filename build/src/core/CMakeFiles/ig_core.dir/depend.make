# Empty dependencies file for ig_core.
# This may be replaced when dependencies are built.
