
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/security/authorization.cpp" "src/security/CMakeFiles/ig_security.dir/authorization.cpp.o" "gcc" "src/security/CMakeFiles/ig_security.dir/authorization.cpp.o.d"
  "/root/repo/src/security/certificate.cpp" "src/security/CMakeFiles/ig_security.dir/certificate.cpp.o" "gcc" "src/security/CMakeFiles/ig_security.dir/certificate.cpp.o.d"
  "/root/repo/src/security/gridmap.cpp" "src/security/CMakeFiles/ig_security.dir/gridmap.cpp.o" "gcc" "src/security/CMakeFiles/ig_security.dir/gridmap.cpp.o.d"
  "/root/repo/src/security/handshake.cpp" "src/security/CMakeFiles/ig_security.dir/handshake.cpp.o" "gcc" "src/security/CMakeFiles/ig_security.dir/handshake.cpp.o.d"
  "/root/repo/src/security/keys.cpp" "src/security/CMakeFiles/ig_security.dir/keys.cpp.o" "gcc" "src/security/CMakeFiles/ig_security.dir/keys.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ig_common.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ig_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
