# Empty dependencies file for ig_security.
# This may be replaced when dependencies are built.
