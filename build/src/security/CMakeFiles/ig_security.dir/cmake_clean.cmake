file(REMOVE_RECURSE
  "CMakeFiles/ig_security.dir/authorization.cpp.o"
  "CMakeFiles/ig_security.dir/authorization.cpp.o.d"
  "CMakeFiles/ig_security.dir/certificate.cpp.o"
  "CMakeFiles/ig_security.dir/certificate.cpp.o.d"
  "CMakeFiles/ig_security.dir/gridmap.cpp.o"
  "CMakeFiles/ig_security.dir/gridmap.cpp.o.d"
  "CMakeFiles/ig_security.dir/handshake.cpp.o"
  "CMakeFiles/ig_security.dir/handshake.cpp.o.d"
  "CMakeFiles/ig_security.dir/keys.cpp.o"
  "CMakeFiles/ig_security.dir/keys.cpp.o.d"
  "libig_security.a"
  "libig_security.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ig_security.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
