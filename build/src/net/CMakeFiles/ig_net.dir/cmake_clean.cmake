file(REMOVE_RECURSE
  "CMakeFiles/ig_net.dir/message.cpp.o"
  "CMakeFiles/ig_net.dir/message.cpp.o.d"
  "CMakeFiles/ig_net.dir/network.cpp.o"
  "CMakeFiles/ig_net.dir/network.cpp.o.d"
  "libig_net.a"
  "libig_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ig_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
