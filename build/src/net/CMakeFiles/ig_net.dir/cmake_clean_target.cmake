file(REMOVE_RECURSE
  "libig_net.a"
)
