# Empty dependencies file for ig_net.
# This may be replaced when dependencies are built.
