
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/format/dsml.cpp" "src/format/CMakeFiles/ig_format.dir/dsml.cpp.o" "gcc" "src/format/CMakeFiles/ig_format.dir/dsml.cpp.o.d"
  "/root/repo/src/format/ldif.cpp" "src/format/CMakeFiles/ig_format.dir/ldif.cpp.o" "gcc" "src/format/CMakeFiles/ig_format.dir/ldif.cpp.o.d"
  "/root/repo/src/format/record.cpp" "src/format/CMakeFiles/ig_format.dir/record.cpp.o" "gcc" "src/format/CMakeFiles/ig_format.dir/record.cpp.o.d"
  "/root/repo/src/format/schema.cpp" "src/format/CMakeFiles/ig_format.dir/schema.cpp.o" "gcc" "src/format/CMakeFiles/ig_format.dir/schema.cpp.o.d"
  "/root/repo/src/format/xml.cpp" "src/format/CMakeFiles/ig_format.dir/xml.cpp.o" "gcc" "src/format/CMakeFiles/ig_format.dir/xml.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ig_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
