file(REMOVE_RECURSE
  "CMakeFiles/ig_format.dir/dsml.cpp.o"
  "CMakeFiles/ig_format.dir/dsml.cpp.o.d"
  "CMakeFiles/ig_format.dir/ldif.cpp.o"
  "CMakeFiles/ig_format.dir/ldif.cpp.o.d"
  "CMakeFiles/ig_format.dir/record.cpp.o"
  "CMakeFiles/ig_format.dir/record.cpp.o.d"
  "CMakeFiles/ig_format.dir/schema.cpp.o"
  "CMakeFiles/ig_format.dir/schema.cpp.o.d"
  "CMakeFiles/ig_format.dir/xml.cpp.o"
  "CMakeFiles/ig_format.dir/xml.cpp.o.d"
  "libig_format.a"
  "libig_format.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ig_format.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
