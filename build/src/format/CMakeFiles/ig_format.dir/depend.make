# Empty dependencies file for ig_format.
# This may be replaced when dependencies are built.
