file(REMOVE_RECURSE
  "libig_format.a"
)
