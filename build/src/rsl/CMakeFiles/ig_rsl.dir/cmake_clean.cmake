file(REMOVE_RECURSE
  "CMakeFiles/ig_rsl.dir/parser.cpp.o"
  "CMakeFiles/ig_rsl.dir/parser.cpp.o.d"
  "CMakeFiles/ig_rsl.dir/xrsl.cpp.o"
  "CMakeFiles/ig_rsl.dir/xrsl.cpp.o.d"
  "libig_rsl.a"
  "libig_rsl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ig_rsl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
