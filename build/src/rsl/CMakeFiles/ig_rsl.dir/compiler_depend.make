# Empty compiler generated dependencies file for ig_rsl.
# This may be replaced when dependencies are built.
