file(REMOVE_RECURSE
  "libig_rsl.a"
)
