file(REMOVE_RECURSE
  "CMakeFiles/ig_common.dir/clock.cpp.o"
  "CMakeFiles/ig_common.dir/clock.cpp.o.d"
  "CMakeFiles/ig_common.dir/error.cpp.o"
  "CMakeFiles/ig_common.dir/error.cpp.o.d"
  "CMakeFiles/ig_common.dir/id.cpp.o"
  "CMakeFiles/ig_common.dir/id.cpp.o.d"
  "CMakeFiles/ig_common.dir/rng.cpp.o"
  "CMakeFiles/ig_common.dir/rng.cpp.o.d"
  "CMakeFiles/ig_common.dir/stats.cpp.o"
  "CMakeFiles/ig_common.dir/stats.cpp.o.d"
  "CMakeFiles/ig_common.dir/strings.cpp.o"
  "CMakeFiles/ig_common.dir/strings.cpp.o.d"
  "libig_common.a"
  "libig_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ig_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
