# Empty dependencies file for ig_common.
# This may be replaced when dependencies are built.
