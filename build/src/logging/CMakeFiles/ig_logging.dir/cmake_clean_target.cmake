file(REMOVE_RECURSE
  "libig_logging.a"
)
