# Empty compiler generated dependencies file for ig_logging.
# This may be replaced when dependencies are built.
