file(REMOVE_RECURSE
  "CMakeFiles/ig_logging.dir/log.cpp.o"
  "CMakeFiles/ig_logging.dir/log.cpp.o.d"
  "libig_logging.a"
  "libig_logging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ig_logging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
