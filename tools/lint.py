#!/usr/bin/env python3
"""Project lint pass — the no-build half of tools/check.sh.

Rules (each is a function returning a list of "path:line: message" strings):

  raw-sync      src/ must not use std synchronization primitives directly;
                ig::Mutex / ig::MutexLock / ig::CondVar (common/sync.hpp)
                are the annotated replacements. The wrapper header itself
                is allowlisted via `lint-allow-raw-sync` markers.
  tsa-budget    IG_NO_THREAD_SAFETY_ANALYSIS is a budgeted escape hatch:
                at most MAX_TSA_ESCAPES uses in src/, each carrying a
                justification comment on an adjacent line.
  metrics       every ig::obs::metric constant must be wired to an
                instrumentation site (used outside telemetry.hpp) and
                documented in DESIGN.md's metric table (ported from the
                old check.sh shell function).
  iostream      src/ headers must not include <iostream> (it injects a
                static constructor into every TU; src/ libraries log
                through logging::Logger, binaries under examples//bench
                may print).
  todo-tags     every TODO must carry an issue tag: TODO(#123).
  chaos-labels  the chaos CI leg selects tests with `ctest -L chaos`;
                tests/CMakeLists.txt must define the labelled discovery
                (IG_CHAOS_FILTER + LABELS chaos), and every suite in a
                chaos/fault test file must match a filter token so it
                cannot silently fall out of the labelled bucket.
  bench-baselines  every bench/baselines/BENCH_*.json maps to a bench
                target in bench/CMakeLists.txt, and every bench CI runs
                with --enforce has a baseline to compare against.

Exit status 0 = clean, 1 = findings (printed to stderr), 2 = usage.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"

# The one file allowed to touch the raw primitives (it is the wrapper).
RAW_SYNC_ALLOWLIST = {SRC / "common" / "sync.hpp"}
RAW_SYNC_MARKER = "lint-allow-raw-sync"

# Budget for IG_NO_THREAD_SAFETY_ANALYSIS in src/ (see DESIGN.md §11).
MAX_TSA_ESCAPES = 3

RAW_SYNC_TOKENS = [
    r"std::mutex\b",
    r"std::timed_mutex\b",
    r"std::recursive_mutex\b",
    r"std::shared_mutex\b",
    r"std::lock_guard\b",
    r"std::unique_lock\b",
    r"std::shared_lock\b",
    r"std::scoped_lock\b",
    r"std::condition_variable\b",
    r"std::condition_variable_any\b",
]
RAW_SYNC_INCLUDES = [
    r"#\s*include\s*<mutex>",
    r"#\s*include\s*<shared_mutex>",
    r"#\s*include\s*<condition_variable>",
]
RAW_SYNC_RE = re.compile("|".join(RAW_SYNC_TOKENS + RAW_SYNC_INCLUDES))

TODO_RE = re.compile(r"\bTODO\b")
TODO_TAGGED_RE = re.compile(r"\bTODO\(#\d+\)")

METRIC_DECL_RE = re.compile(
    r'^inline constexpr const char\* (k[A-Za-z0-9_]*) = "([^"]*)";'
)


def source_files(*suffixes: str) -> list[Path]:
    out: list[Path] = []
    for suffix in suffixes:
        out.extend(SRC.rglob(f"*{suffix}"))
    return sorted(out)


def read_lines(path: Path) -> list[str]:
    return path.read_text(encoding="utf-8", errors="replace").splitlines()


def rel(path: Path) -> str:
    return str(path.relative_to(REPO))


def check_raw_sync() -> list[str]:
    findings = []
    for path in source_files(".hpp", ".cpp"):
        if path in RAW_SYNC_ALLOWLIST:
            continue  # the wrapper header, marked with lint-allow-raw-sync
        for n, line in enumerate(read_lines(path), 1):
            if not RAW_SYNC_RE.search(line):
                continue
            if RAW_SYNC_MARKER in line:
                findings.append(
                    f"{rel(path)}:{n}: {RAW_SYNC_MARKER} marker outside "
                    "the allowlisted wrapper header"
                )
                continue
            findings.append(
                f"{rel(path)}:{n}: raw std synchronization primitive in src/ "
                "(use ig::Mutex/MutexLock/CondVar from common/sync.hpp)"
            )
    return findings


def check_tsa_budget() -> list[str]:
    findings = []
    uses: list[tuple[Path, int]] = []
    for path in source_files(".hpp", ".cpp"):
        if path == SRC / "common" / "annotations.hpp":
            continue  # the definition site
        lines = read_lines(path)
        for n, line in enumerate(lines, 1):
            if "IG_NO_THREAD_SAFETY_ANALYSIS" not in line:
                continue
            uses.append((path, n))
            # A justification comment must sit on the line or just above it.
            context = lines[max(0, n - 4) : n]
            if not any("//" in c for c in context):
                findings.append(
                    f"{rel(path)}:{n}: IG_NO_THREAD_SAFETY_ANALYSIS without a "
                    "justification comment on an adjacent line"
                )
    if len(uses) > MAX_TSA_ESCAPES:
        sites = ", ".join(f"{rel(p)}:{n}" for p, n in uses)
        findings.append(
            f"src/: {len(uses)} IG_NO_THREAD_SAFETY_ANALYSIS uses exceed the "
            f"budget of {MAX_TSA_ESCAPES} ({sites})"
        )
    return findings


def check_metrics() -> list[str]:
    """Every metric constant is instrumented somewhere and documented."""
    findings = []
    # Every header declaring an `ig::obs::metric` namespace block; the
    # profiler's constants (obs.profile.*) live next to the profiler, the
    # replication layer's (mds.replica.*) next to the coordinator, the
    # tail sampler's (obs.tail.*) next to the ring, and the exporter /
    # flight recorder's (obs.export.*, obs.fr.*) next to the sinks.
    headers = [
        SRC / "obs" / "telemetry.hpp",
        SRC / "obs" / "profile.hpp",
        SRC / "obs" / "trace.hpp",
        SRC / "obs" / "export.hpp",
        SRC / "mds" / "replication.hpp",
    ]
    design = (REPO / "DESIGN.md").read_text(encoding="utf-8")
    constants: list[tuple[Path, str, str]] = []
    for header in headers:
        for line in read_lines(header):
            m = METRIC_DECL_RE.match(line.strip())
            if m:
                constants.append((header, m.group(1), m.group(2)))
    # One scan over all candidate files beats one grep per constant.
    corpus = []
    for root in (SRC, REPO / "tests", REPO / "bench"):
        for path in sorted(root.rglob("*.cpp")) + sorted(root.rglob("*.hpp")):
            if path in headers:
                continue
            corpus.append(path.read_text(encoding="utf-8", errors="replace"))
    blob = "\n".join(corpus)
    for header, name, value in constants:
        if not re.search(rf"metric::{name}\b", blob):
            findings.append(
                f"{rel(header)}: metric::{name} (\"{value}\") has no "
                "instrumentation site in src/, tests/ or bench/"
            )
        if f"`{value}`" not in design:
            findings.append(
                f"{rel(header)}: metric \"{value}\" ({name}) missing from "
                "DESIGN.md's metric table"
            )
    return findings


def check_iostream_headers() -> list[str]:
    findings = []
    for path in source_files(".hpp"):
        for n, line in enumerate(read_lines(path), 1):
            if re.search(r"#\s*include\s*<iostream>", line):
                findings.append(
                    f"{rel(path)}:{n}: <iostream> in a src/ header (static "
                    "constructor in every includer; log via logging::Logger)"
                )
    return findings


CHAOS_FILE_RE = re.compile(r"chaos|fault", re.IGNORECASE)
TEST_SUITE_RE = re.compile(r"^\s*TEST(?:_F|_P)?\(\s*([A-Za-z0-9_]+)\s*,")
CHAOS_FILTER_RE = re.compile(r'set\(IG_CHAOS_FILTER\s+"([^"]+)"\)')


def check_chaos_labels() -> list[str]:
    """`ctest -L chaos` must keep covering every chaos/fault suite.

    The label is applied at discovery time by a gtest TEST_FILTER
    (IG_CHAOS_FILTER in tests/CMakeLists.txt), so a new chaos suite whose
    name matches no filter token would land in the unlabelled bucket and
    silently drop out of the chaos CI leg. Flag that here, at lint time.
    """
    findings = []
    cml = REPO / "tests" / "CMakeLists.txt"
    text = cml.read_text(encoding="utf-8")
    m = CHAOS_FILTER_RE.search(text)
    if m is None:
        return [
            f"{rel(cml)}: no IG_CHAOS_FILTER definition — the labelled "
            "chaos discovery is missing"
        ]
    tokens = [t.strip("*") for t in m.group(1).split(":") if t.strip("*")]
    if "LABELS chaos" not in text:
        findings.append(
            f"{rel(cml)}: no discovery block applies `LABELS chaos`; "
            "`ctest -L chaos` would select nothing"
        )
    for path in sorted((REPO / "tests").glob("*.cpp")):
        if not CHAOS_FILE_RE.search(path.name):
            continue
        for n, line in enumerate(read_lines(path), 1):
            sm = TEST_SUITE_RE.match(line)
            if sm and not any(token in sm.group(1) for token in tokens):
                findings.append(
                    f"{rel(path)}:{n}: suite {sm.group(1)} in a chaos/fault "
                    "test file matches no IG_CHAOS_FILTER token; "
                    "`ctest -L chaos` will miss it"
                )
    return findings


BENCH_TARGET_RE = re.compile(r"^\s*(bench_[a-z0-9_]+)\s*$")
BENCH_ENFORCE_RE = re.compile(r"\./bench/(bench_[a-z0-9_]+)\s+--json\s+--enforce")


def check_bench_baselines() -> list[str]:
    """Checked-in baselines and enforced benches must stay in sync.

    Every bench/baselines/BENCH_<name>.json must correspond to a
    bench_<name> target in bench/CMakeLists.txt (a renamed or deleted
    bench must not leave a stale baseline that silently gates nothing),
    and every bench CI runs with --enforce must have a baseline to
    compare against (an enforced bench without one makes
    tools/bench_compare.py a no-op that reads as a pass).
    """
    findings = []
    cml = REPO / "bench" / "CMakeLists.txt"
    targets = {
        m.group(1)
        for line in read_lines(cml)
        if (m := BENCH_TARGET_RE.match(line))
    }
    baselines = sorted((REPO / "bench" / "baselines").glob("BENCH_*.json"))
    baseline_names = set()
    for path in baselines:
        name = "bench_" + path.stem.removeprefix("BENCH_")
        baseline_names.add(name)
        if name not in targets:
            findings.append(
                f"{rel(path)}: baseline has no {name} target in "
                f"{rel(cml)} (stale baseline for a renamed/removed bench?)"
            )
    ci = REPO / ".github" / "workflows" / "ci.yml"
    for n, line in enumerate(read_lines(ci), 1):
        m = BENCH_ENFORCE_RE.search(line)
        if m is None:
            continue
        name = m.group(1)
        if name not in targets:
            findings.append(
                f"{rel(ci)}:{n}: CI enforces {name} but {rel(cml)} "
                "defines no such target"
            )
        if name not in baseline_names:
            findings.append(
                f"{rel(ci)}:{n}: {name} runs with --enforce but has no "
                f"bench/baselines/BENCH_{name.removeprefix('bench_')}.json "
                "baseline — the enforced gate compares against nothing"
            )
    return findings


def check_todo_tags() -> list[str]:
    findings = []
    for path in source_files(".hpp", ".cpp"):
        for n, line in enumerate(read_lines(path), 1):
            if TODO_RE.search(line) and not TODO_TAGGED_RE.search(line):
                findings.append(
                    f"{rel(path)}:{n}: TODO without an issue tag "
                    "(write TODO(#<issue>))"
                )
    return findings


CHECKS = {
    "raw-sync": check_raw_sync,
    "tsa-budget": check_tsa_budget,
    "metrics": check_metrics,
    "iostream": check_iostream_headers,
    "todo-tags": check_todo_tags,
    "chaos-labels": check_chaos_labels,
    "bench-baselines": check_bench_baselines,
}


def main(argv: list[str]) -> int:
    selected = argv[1:] or list(CHECKS)
    unknown = [s for s in selected if s not in CHECKS]
    if unknown:
        print(f"lint.py: unknown check(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(CHECKS)}", file=sys.stderr)
        return 2
    findings: list[str] = []
    for name in selected:
        findings.extend(CHECKS[name]())
    for finding in findings:
        print(f"lint: {finding}", file=sys.stderr)
    if findings:
        print(f"lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print(f"lint: clean ({', '.join(selected)})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
