#!/usr/bin/env bash
# Full pre-merge gate. Legs:
#
#   lint     tools/lint.py (raw-sync, tsa-budget, metrics, iostream, todo-tags)
#   release  Release build + full ctest
#   asan     same suite under AddressSanitizer + UBSan
#   tsan     same suite under ThreadSanitizer (cannot share a build with ASan)
#   tsa      clang build with -DIG_THREAD_SAFETY=ON: -Werror=thread-safety
#            turns the lock annotations into a compile-time proof
#   tidy     clang-tidy (.clang-tidy profile) over the compile database
#   chaos    fault-injection suites only (ctest -L chaos), under ASan/TSan
#   profile  profiler suites (ctest -R Profile) + bench_profile_overhead,
#            the continuous-profiler overhead gate (<= 5% over tracing)
#   snapshot snapshot suites (ctest -R Snapshot) + bench_snapshot_read,
#            the zero-lock/zero-alloc cache-hit gate (>= 2x paired speedup)
#   directory  replicated-directory suites (shard/replica/router/churn) +
#            bench_directory_scale, the near-flat-p99-at-10x-registry gate
#            (<= 1.5x growth, zero failed lookups under replica kill)
#   tail     tail-retention suites (verdict/ring/flight-recorder/chaos) +
#            bench_tail_sampling, the tail-vs-head-only overhead gate
#            (<= 5% on clean traffic at default sampling)
#   analyze  static conformance (tools/analyze): lock-rank graph,
#            fast-path purity, layering, doc drift — fixture selftest
#            first, then the real tree; writes ANALYZE_REPORT.json.
#            Uses the IR call-graph engine when clang is on PATH and a
#            compile database exists, else the regex engine.
#
#   tools/check.sh                  # lint + release + asan + tsan + tsa + tidy
#   tools/check.sh --fast           # lint + release only
#   tools/check.sh --asan           # lint + release + asan
#   tools/check.sh --tsan           # lint + tsan
#   tools/check.sh --chaos          # lint + chaos
#   tools/check.sh --tsa            # lint + tsa
#   tools/check.sh --tidy           # lint + tidy
#   tools/check.sh --profile        # lint + profile
#   tools/check.sh --snapshot       # lint + snapshot
#   tools/check.sh --directory      # lint + directory
#   tools/check.sh --tail           # lint + tail
#   tools/check.sh --analyze        # lint + analyze
#   tools/check.sh --tsa --tidy ... # flags combine; each adds its leg
#
# The tsa and tidy legs need clang/clang-tidy on PATH; when absent they
# SKIP with a notice rather than fail, so the script stays runnable on
# gcc-only hosts (CI provides the clang legs).
set -euo pipefail

# Test-name filter selecting the continuous-profiler suites.
PROFILE_FILTER='Profile'
# Test-name filter selecting the snapshot-publication suites.
SNAPSHOT_FILTER='Snapshot'
# Test-name filter selecting the replicated-directory suites.
DIRECTORY_FILTER='ShardMap|ReplicationOp|ReplicaStore|Replication|Router|GiisChurn'
# Test-name filter selecting the tail-retention suites.
TAIL_FILTER='TailVerdict|TailSampler|TailTelemetry|TailBurn|TailPropagation|TailChaos|FlightRecorder'

cd "$(dirname "$0")/.."
jobs=$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)

# ---- leg selection ---------------------------------------------------------
run_release=0 run_asan=0 run_tsan=0 run_tsa=0 run_tidy=0 run_chaos=0 run_profile=0
run_snapshot=0 run_directory=0 run_tail=0 run_analyze=0
if [ "$#" -eq 0 ]; then
  # Default gate: every leg except chaos (whose suites the sanitizer legs
  # already include); tsa/tidy skip themselves when clang is absent.
  run_release=1 run_asan=1 run_tsan=1 run_tsa=1 run_tidy=1 run_analyze=1
fi
for arg in "$@"; do
  case "${arg}" in
    --fast)  run_release=1 ;;
    --asan)  run_release=1; run_asan=1 ;;
    --tsan)  run_tsan=1 ;;
    --tsa)   run_tsa=1 ;;
    --tidy)  run_tidy=1 ;;
    --chaos) run_chaos=1 ;;
    --profile) run_profile=1 ;;
    --snapshot) run_snapshot=1 ;;
    --directory) run_directory=1 ;;
    --tail)  run_tail=1 ;;
    --analyze) run_analyze=1 ;;
    *)
      echo "usage: tools/check.sh [--fast|--asan|--tsan|--tsa|--tidy|--chaos|--profile|--snapshot|--directory|--tail|--analyze]..." >&2
      exit 2
      ;;
  esac
done

# ---- summary table ---------------------------------------------------------
# Each leg reports pass/SKIP; a failing leg aborts the script (set -e), so
# reaching the table means everything that ran passed.
summary=()
note() { summary+=("$(printf '%-8s %s' "$1" "$2")"); }

print_summary() {
  echo
  echo "==> summary"
  for line in "${summary[@]}"; do echo "    ${line}"; done
}

# ---- legs ------------------------------------------------------------------
run_pass() {
  local dir=$1; shift
  echo "==> configure ${dir} ($*)"
  cmake -B "${dir}" -S . "$@" >/dev/null
  echo "==> build ${dir}"
  cmake --build "${dir}" -j "${jobs}" >/dev/null
  echo "==> ctest ${dir}"
  ctest --test-dir "${dir}" --output-on-failure -j "${jobs}"
}

# Build a sanitizer tree and run only the chaos/resilience suites in it.
# Selection is by ctest label (tests/CMakeLists.txt tags the fault suites
# LABELS chaos at discovery time), not by a name regex that drifts.
chaos_pass() {
  local dir=$1; shift
  echo "==> configure ${dir} ($*)"
  cmake -B "${dir}" -S . "$@" >/dev/null
  echo "==> build ${dir}"
  cmake --build "${dir}" -j "${jobs}" >/dev/null
  echo "==> ctest ${dir} (chaos suite, -L chaos)"
  ctest --test-dir "${dir}" --output-on-failure -j "${jobs}" -L chaos
}

asan_pass() {
  # halt_on_error keeps a UBSan report from scrolling past unnoticed.
  export UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}"
  run_pass build-asan -DCMAKE_BUILD_TYPE=Debug -DIG_SANITIZE=address,undefined
}

tsan_pass() {
  export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1:second_deadlock_stack=1}"
  run_pass build-tsan -DCMAKE_BUILD_TYPE=Debug -DIG_SANITIZE=thread
}

# Clang thread-safety analysis: the whole point of the annotation layer.
# Build-only — the annotations are compile-time; the Release/sanitizer
# legs already run the tests.
tsa_pass() {
  local cxx
  cxx=$(command -v clang++ || true)
  if [ -z "${cxx}" ]; then
    echo "==> tsa: SKIP (clang++ not on PATH; CI runs this leg)"
    note tsa "SKIP (no clang++)"
    return 0
  fi
  echo "==> configure build-tsa (clang, -DIG_THREAD_SAFETY=ON)"
  cmake -B build-tsa -S . -DCMAKE_BUILD_TYPE=Debug \
    -DCMAKE_CXX_COMPILER="${cxx}" -DIG_THREAD_SAFETY=ON >/dev/null
  echo "==> build build-tsa (-Werror=thread-safety)"
  cmake --build build-tsa -j "${jobs}" >/dev/null
  note tsa pass
}

# Static conformance analyzer: the selftest proves the fixtures still
# trip each pass, then the real tree must come back clean. The engine
# picks itself: clang + a compile database -> IR call graph; otherwise
# the regex engine (same passes, conservative resolution).
analyze_pass() {
  echo "==> analyze: fixture selftest"
  python3 tools/analyze/selftest.py
  local cc_args=()
  if command -v clang++ >/dev/null 2>&1; then
    echo "==> configure build-tidy (compile database for the IR engine)"
    cmake -B build-tidy -S . -DCMAKE_BUILD_TYPE=Debug \
      -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
    cc_args=(--compile-commands build-tidy/compile_commands.json)
  fi
  echo "==> analyze: lock-rank, purity, layering, doc-drift"
  python3 tools/analyze --json ANALYZE_REPORT.json "${cc_args[@]}"
  note analyze pass
}

tidy_pass() {
  local tidy
  tidy=$(command -v clang-tidy || true)
  if [ -z "${tidy}" ]; then
    echo "==> tidy: SKIP (clang-tidy not on PATH; CI runs this leg)"
    note tidy "SKIP (no clang-tidy)"
    return 0
  fi
  echo "==> configure build-tidy (compile database)"
  cmake -B build-tidy -S . -DCMAKE_BUILD_TYPE=Debug \
    -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  echo "==> clang-tidy src/ (.clang-tidy profile)"
  # shellcheck disable=SC2046
  "${tidy}" -p build-tidy --quiet $(find src -name '*.cpp' | sort)
  note tidy pass
}

# ---- run -------------------------------------------------------------------
echo "==> lint (tools/lint.py)"
python3 tools/lint.py
note lint pass

if [ "${run_release}" -eq 1 ]; then
  run_pass build-check -DCMAKE_BUILD_TYPE=Release
  note release pass
fi
if [ "${run_asan}" -eq 1 ]; then
  asan_pass
  note asan pass
fi
if [ "${run_tsan}" -eq 1 ]; then
  tsan_pass
  note tsan pass
fi
if [ "${run_tsa}" -eq 1 ]; then
  tsa_pass
fi
if [ "${run_tidy}" -eq 1 ]; then
  tidy_pass
fi
if [ "${run_analyze}" -eq 1 ]; then
  analyze_pass
fi
if [ "${run_chaos}" -eq 1 ]; then
  export UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}"
  chaos_pass build-asan -DCMAKE_BUILD_TYPE=Debug -DIG_SANITIZE=address,undefined
  export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1:second_deadlock_stack=1}"
  chaos_pass build-tsan -DCMAKE_BUILD_TYPE=Debug -DIG_SANITIZE=thread
  note chaos pass
fi
if [ "${run_profile}" -eq 1 ]; then
  echo "==> configure build-check (Release, profile leg)"
  cmake -B build-check -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
  echo "==> build build-check"
  cmake --build build-check -j "${jobs}" >/dev/null
  echo "==> ctest build-check (profiler suites)"
  ctest --test-dir build-check --output-on-failure -j "${jobs}" -R "${PROFILE_FILTER}"
  echo "==> bench_profile_overhead (overhead gate, wall clock)"
  (cd build-check && ./bench/bench_profile_overhead --json --enforce)
  note profile pass
fi
if [ "${run_snapshot}" -eq 1 ]; then
  echo "==> configure build-check (Release, snapshot leg)"
  cmake -B build-check -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
  echo "==> build build-check"
  cmake --build build-check -j "${jobs}" >/dev/null
  echo "==> ctest build-check (snapshot suites)"
  ctest --test-dir build-check --output-on-failure -j "${jobs}" -R "${SNAPSHOT_FILTER}"
  echo "==> bench_snapshot_read (zero-lock/zero-alloc cache-hit gate)"
  (cd build-check && ./bench/bench_snapshot_read --json --enforce)
  note snapshot pass
fi
if [ "${run_directory}" -eq 1 ]; then
  echo "==> configure build-check (Release, directory leg)"
  cmake -B build-check -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
  echo "==> build build-check"
  cmake --build build-check -j "${jobs}" >/dev/null
  echo "==> ctest build-check (replicated-directory suites)"
  ctest --test-dir build-check --output-on-failure -j "${jobs}" -R "${DIRECTORY_FILTER}"
  echo "==> bench_directory_scale (near-flat p99 at 10x registry gate)"
  (cd build-check && ./bench/bench_directory_scale --json --enforce)
  note directory pass
fi
if [ "${run_tail}" -eq 1 ]; then
  echo "==> configure build-check (Release, tail leg)"
  cmake -B build-check -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
  echo "==> build build-check"
  cmake --build build-check -j "${jobs}" >/dev/null
  echo "==> ctest build-check (tail-retention suites)"
  ctest --test-dir build-check --output-on-failure -j "${jobs}" -R "${TAIL_FILTER}"
  echo "==> bench_tail_sampling (tail-vs-head-only overhead gate)"
  (cd build-check && ./bench/bench_tail_sampling --json --enforce)
  note tail pass
fi

print_summary
echo "All checks passed."
