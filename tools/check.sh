#!/usr/bin/env bash
# Full pre-merge gate: a clean Release build + ctest, then the same suite
# under AddressSanitizer + UndefinedBehaviorSanitizer.
#
#   tools/check.sh            # both passes
#   tools/check.sh --fast     # skip the sanitizer pass
set -euo pipefail

cd "$(dirname "$0")/.."
jobs=$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)

run_pass() {
  local dir=$1; shift
  echo "==> configure ${dir} ($*)"
  cmake -B "${dir}" -S . "$@" >/dev/null
  echo "==> build ${dir}"
  cmake --build "${dir}" -j "${jobs}" >/dev/null
  echo "==> ctest ${dir}"
  ctest --test-dir "${dir}" --output-on-failure -j "${jobs}"
}

run_pass build-check -DCMAKE_BUILD_TYPE=Release

if [[ "${1:-}" != "--fast" ]]; then
  # halt_on_error keeps a UBSan report from scrolling past unnoticed.
  export UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}"
  run_pass build-asan -DCMAKE_BUILD_TYPE=Debug -DIG_SANITIZE=address,undefined
fi

echo "All checks passed."
