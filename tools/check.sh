#!/usr/bin/env bash
# Full pre-merge gate: a clean Release build + ctest, then the same suite
# under AddressSanitizer + UndefinedBehaviorSanitizer, then under
# ThreadSanitizer (ASan and TSan cannot share a build, so they are
# separate passes in separate build trees).
#
#   tools/check.sh            # all three passes
#   tools/check.sh --fast     # Release only
#   tools/check.sh --asan     # Release + ASan/UBSan (skip TSan)
#   tools/check.sh --tsan     # TSan pass only
#   tools/check.sh --chaos    # fault-injection suite under ASan + TSan
set -euo pipefail

# Test-name filter selecting the chaos / resilience suites.
CHAOS_FILTER='Chaos|Resilience|Deadline|PrefetcherBackoff|VirtualTimeout'

cd "$(dirname "$0")/.."
jobs=$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)
mode="${1:-all}"

# Every ig::obs::metric constant must be wired to an instrumentation site
# (used outside the header that declares it) and documented in DESIGN.md's
# metric table; an orphan either way fails the gate. Runs in every mode —
# it needs no build.
lint_metrics() {
  echo "==> lint: ig::obs::metric constants (instrumented + documented)"
  local header=src/obs/telemetry.hpp fail=0 name value
  while IFS=$'\t' read -r name value; do
    if ! grep -rq "metric::${name}\b" src tests bench \
        --include='*.cpp' --include='*.hpp' --exclude=telemetry.hpp; then
      echo "lint: metric::${name} (\"${value}\") has no instrumentation site" >&2
      fail=1
    fi
    if ! grep -qF "\`${value}\`" DESIGN.md; then
      echo "lint: metric \"${value}\" (${name}) missing from DESIGN.md metric table" >&2
      fail=1
    fi
  done < <(sed -n 's/^inline constexpr const char\* \(k[A-Za-z0-9_]*\) = "\([^"]*\)";.*$/\1\t\2/p' "${header}")
  if [ "${fail}" -ne 0 ]; then
    echo "lint: orphaned metric constants (see above)" >&2
    exit 1
  fi
}

run_pass() {
  local dir=$1; shift
  echo "==> configure ${dir} ($*)"
  cmake -B "${dir}" -S . "$@" >/dev/null
  echo "==> build ${dir}"
  cmake --build "${dir}" -j "${jobs}" >/dev/null
  echo "==> ctest ${dir}"
  ctest --test-dir "${dir}" --output-on-failure -j "${jobs}"
}

# Build a sanitizer tree and run only the chaos/resilience suites in it.
chaos_pass() {
  local dir=$1; shift
  echo "==> configure ${dir} ($*)"
  cmake -B "${dir}" -S . "$@" >/dev/null
  echo "==> build ${dir}"
  cmake --build "${dir}" -j "${jobs}" >/dev/null
  echo "==> ctest ${dir} (chaos suite)"
  ctest --test-dir "${dir}" --output-on-failure -j "${jobs}" -R "${CHAOS_FILTER}"
}

asan_pass() {
  # halt_on_error keeps a UBSan report from scrolling past unnoticed.
  export UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}"
  run_pass build-asan -DCMAKE_BUILD_TYPE=Debug -DIG_SANITIZE=address,undefined
}

tsan_pass() {
  export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1:second_deadlock_stack=1}"
  run_pass build-tsan -DCMAKE_BUILD_TYPE=Debug -DIG_SANITIZE=thread
}

lint_metrics

case "${mode}" in
  --chaos)
    export UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}"
    chaos_pass build-asan -DCMAKE_BUILD_TYPE=Debug -DIG_SANITIZE=address,undefined
    export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1:second_deadlock_stack=1}"
    chaos_pass build-tsan -DCMAKE_BUILD_TYPE=Debug -DIG_SANITIZE=thread
    ;;
  --tsan)
    tsan_pass
    ;;
  --asan)
    run_pass build-check -DCMAKE_BUILD_TYPE=Release
    asan_pass
    ;;
  --fast)
    run_pass build-check -DCMAKE_BUILD_TYPE=Release
    ;;
  all)
    run_pass build-check -DCMAKE_BUILD_TYPE=Release
    asan_pass
    tsan_pass
    ;;
  *)
    echo "usage: tools/check.sh [--fast|--asan|--tsan|--chaos]" >&2
    exit 2
    ;;
esac

echo "All checks passed."
