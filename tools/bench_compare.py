#!/usr/bin/env python3
"""Compare two BENCH_<name>.json files produced by the bench harnesses.

Usage:
    tools/bench_compare.py BASELINE.json CANDIDATE.json [--threshold 0.20]

Diffs every series the two files share on ops_per_sec and prints a table
of deltas. Exits 1 when any shared series regressed by more than the
threshold (default 20%), 0 otherwise — so CI can run it as a non-blocking
smoke (`|| echo warn`) while local users get a hard signal. Series present
in only one file are reported but never fail the comparison.
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path, encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, json.JSONDecodeError) as err:
        sys.exit(f"bench_compare: cannot read {path}: {err}")
    series = doc.get("series")
    if not isinstance(series, dict):
        sys.exit(f"bench_compare: {path}: missing 'series' object")
    return doc.get("benchmark", "?"), series


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("candidate")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.20,
        help="fractional ops/sec regression that fails the comparison (default 0.20)",
    )
    args = parser.parse_args()

    base_name, base = load(args.baseline)
    cand_name, cand = load(args.candidate)
    if base_name != cand_name:
        print(f"note: comparing different benchmarks ({base_name} vs {cand_name})")

    shared = sorted(set(base) & set(cand))
    only_base = sorted(set(base) - set(cand))
    only_cand = sorted(set(cand) - set(base))

    regressions = []
    print(f"{'series':<28} {'base ops/s':>12} {'cand ops/s':>12} {'delta':>8}")
    print("-" * 64)
    for name in shared:
        b = float(base[name].get("ops_per_sec", 0.0))
        c = float(cand[name].get("ops_per_sec", 0.0))
        delta = (c - b) / b if b > 0 else 0.0
        flag = ""
        if b > 0 and delta < -args.threshold:
            regressions.append((name, delta))
            flag = "  REGRESSION"
        print(f"{name:<28} {b:>12.1f} {c:>12.1f} {delta:>+7.1%}{flag}")
    for name in only_base:
        print(f"{name:<28} {'(baseline only)':>26}")
    for name in only_cand:
        print(f"{name:<28} {'(candidate only)':>26}")

    if not shared:
        print("no shared series; nothing to compare")
        return 0
    if regressions:
        worst = min(regressions, key=lambda item: item[1])
        print(
            f"\nFAIL: {len(regressions)} series regressed more than "
            f"{args.threshold:.0%} (worst: {worst[0]} {worst[1]:+.1%})"
        )
        return 1
    print(f"\nOK: no series regressed more than {args.threshold:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
