#!/usr/bin/env python3
"""Compare two BENCH_<name>.json files produced by the bench harnesses.

Usage:
    tools/bench_compare.py BASELINE.json CANDIDATE.json [--threshold 0.20]

Diffs every series the two files share, per metric: ops_per_sec (higher
is better) and the latency percentiles mean_us/p50_us/p95_us/p99_us
(lower is better). A metric missing from either side — e.g. a baseline
written before p99_us existed — is skipped for that series rather than
failing, so old artifacts stay comparable across harness upgrades; a
metric the candidate has but the baseline lacks additionally gets a
"new metric, no baseline" notice so fresh instrumentation (like the
profiler series) is visible instead of silently uncompared.

Exits 1 when any shared series regressed by more than the threshold
(default 20%) on ops_per_sec or p99_us, 0 otherwise — so CI can run it
as a non-blocking smoke (`|| echo warn`) while local users get a hard
signal. Series present in only one file are reported but never fail the
comparison.
"""

import argparse
import json
import sys

# (metric, higher_is_better, gates_failure)
METRICS = [
    ("ops_per_sec", True, True),
    ("mean_us", False, False),
    ("p50_us", False, False),
    ("p95_us", False, False),
    ("p99_us", False, True),
]


def load(path):
    try:
        with open(path, encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, json.JSONDecodeError) as err:
        sys.exit(f"bench_compare: cannot read {path}: {err}")
    series = doc.get("series")
    if not isinstance(series, dict):
        sys.exit(f"bench_compare: {path}: missing 'series' object")
    return doc.get("benchmark", "?"), series


def regressed(delta, higher_is_better, threshold):
    if higher_is_better:
        return delta < -threshold
    return delta > threshold


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("candidate")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.20,
        help="fractional regression on a gating metric that fails the "
        "comparison (default 0.20)",
    )
    args = parser.parse_args()

    base_name, base = load(args.baseline)
    cand_name, cand = load(args.candidate)
    if base_name != cand_name:
        print(f"note: comparing different benchmarks ({base_name} vs {cand_name})")

    shared = sorted(set(base) & set(cand))
    only_base = sorted(set(base) - set(cand))
    only_cand = sorted(set(cand) - set(base))

    regressions = []
    new_metrics = []
    print(f"{'series':<28} {'metric':<12} {'baseline':>12} {'candidate':>12} {'delta':>8}")
    print("-" * 78)
    for name in shared:
        for metric, higher_is_better, gates in METRICS:
            if metric not in base[name] or metric not in cand[name]:
                if metric in cand[name] and metric not in base[name]:
                    # Baseline predates this metric: note it, never fail.
                    new_metrics.append((name, metric))
                continue
            b = float(base[name][metric])
            c = float(cand[name][metric])
            delta = (c - b) / b if b > 0 else 0.0
            flag = ""
            if gates and b > 0 and regressed(delta, higher_is_better, args.threshold):
                regressions.append((name, metric, delta))
                flag = "  REGRESSION"
            print(f"{name:<28} {metric:<12} {b:>12.1f} {c:>12.1f} {delta:>+7.1%}{flag}")
    for name in only_base:
        print(f"{name:<28} {'(baseline only)':>26}")
    for name in only_cand:
        print(f"note: new series, no baseline: {name} (not compared)")
    for name, metric in new_metrics:
        print(f"note: new metric, no baseline: {name}/{metric} (not compared)")

    if not shared:
        print("no shared series; nothing to compare")
        return 0
    if regressions:
        worst = max(regressions, key=lambda item: abs(item[2]))
        print(
            f"\nFAIL: {len(regressions)} series/metric pairs regressed more than "
            f"{args.threshold:.0%} (worst: {worst[0]} {worst[1]} {worst[2]:+.1%})"
        )
        return 1
    print(f"\nOK: no gating metric regressed more than {args.threshold:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
