#!/usr/bin/env python3
"""Compare two BENCH_<name>.json files produced by the bench harnesses.

Usage:
    tools/bench_compare.py BASELINE.json CANDIDATE.json [--threshold 0.20]

Diffs every series the two files share, per metric: ops_per_sec (higher
is better) and the latency percentiles mean_us/p50_us/p95_us/p99_us
(lower is better). A metric missing from either side — e.g. a baseline
written before p99_us existed — is skipped for that series rather than
failing, so old artifacts stay comparable across harness upgrades; a
metric the candidate has but the baseline lacks additionally gets a
"new metric, no baseline" notice so fresh instrumentation (like the
profiler series) is visible instead of silently uncompared.

Exit status is a contract CI keys off (a bare `|| warn` guard would
swallow enforced gates and broken inputs alike):

    0   no gating metric regressed
    1   advisory regression — CI surfaces a warning and keeps going; a
        baseline file that does not exist yet lands here too (a brand-new
        bench has nothing to compare against: that is missing coverage to
        surface, not broken input to fail on — check a baseline in via
        tools/update_baselines.sh to close it)
    2   regression under --enforce — CI must fail the job
    3   unreadable/malformed input — CI must fail the job (a silently
        skipped comparison is worse than a loud one; an existing-but-
        corrupt baseline or a missing candidate is a harness bug, unlike
        a baseline nobody has generated yet)

When $GITHUB_STEP_SUMMARY is set, the comparison table is also appended
there as GitHub-flavoured markdown, so the numbers land in the job
summary instead of only the step log.
"""

import argparse
import json
import os
import sys

# (metric, higher_is_better, gates_failure)
METRICS = [
    ("ops_per_sec", True, True),
    ("mean_us", False, False),
    ("p50_us", False, False),
    ("p95_us", False, False),
    ("p99_us", False, True),
]


EXIT_OK = 0
EXIT_ADVISORY = 1
EXIT_ENFORCED = 2
EXIT_BAD_INPUT = 3


def die(message):
    print(f"bench_compare: {message}", file=sys.stderr)
    sys.exit(EXIT_BAD_INPUT)


def load(path):
    try:
        with open(path, encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, json.JSONDecodeError) as err:
        die(f"cannot read {path}: {err}")
    series = doc.get("series")
    if not isinstance(series, dict):
        die(f"{path}: missing 'series' object")
    return doc.get("benchmark", "?"), series


def append_step_summary(benchmark, rows, regressions, threshold):
    """Append the comparison as a markdown table to $GITHUB_STEP_SUMMARY."""
    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if not summary_path:
        return
    lines = [f"### bench_compare: `{benchmark}`", ""]
    lines.append("| series | metric | baseline | candidate | delta | |")
    lines.append("|---|---|---:|---:|---:|---|")
    for name, metric, base, cand, delta, flag in rows:
        mark = ":small_red_triangle_down: regression" if flag else ""
        lines.append(
            f"| {name} | {metric} | {base:.1f} | {cand:.1f} | {delta:+.1%} | {mark} |"
        )
    if regressions:
        lines.append("")
        lines.append(
            f"**{len(regressions)} series/metric pair(s) regressed more than "
            f"{threshold:.0%}.**"
        )
    lines.append("")
    try:
        with open(summary_path, "a", encoding="utf-8") as handle:
            handle.write("\n".join(lines) + "\n")
    except OSError as err:
        print(f"note: cannot append to GITHUB_STEP_SUMMARY: {err}")


def regressed(delta, higher_is_better, threshold):
    if higher_is_better:
        return delta < -threshold
    return delta > threshold


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("candidate")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.20,
        help="fractional regression on a gating metric that fails the "
        "comparison (default 0.20)",
    )
    parser.add_argument(
        "--enforce",
        action="store_true",
        help="exit 2 (hard CI failure) instead of 1 (advisory) on regression",
    )
    args = parser.parse_args()

    if not os.path.exists(args.baseline):
        # No baseline checked in yet: advisory, never bad-input. The
        # candidate must still exist — a bench that failed to write its
        # report is a real failure either way.
        if not os.path.exists(args.candidate):
            die(f"cannot read {args.candidate}: no such file")
        print(
            f"advisory: baseline {args.baseline} does not exist; nothing to "
            f"compare. Generate one with tools/update_baselines.sh and "
            f"commit it."
        )
        return EXIT_ADVISORY

    base_name, base = load(args.baseline)
    cand_name, cand = load(args.candidate)
    if base_name != cand_name:
        print(f"note: comparing different benchmarks ({base_name} vs {cand_name})")

    shared = sorted(set(base) & set(cand))
    only_base = sorted(set(base) - set(cand))
    only_cand = sorted(set(cand) - set(base))

    regressions = []
    new_metrics = []
    rows = []  # (series, metric, baseline, candidate, delta, regressed)
    print(f"{'series':<28} {'metric':<12} {'baseline':>12} {'candidate':>12} {'delta':>8}")
    print("-" * 78)
    for name in shared:
        for metric, higher_is_better, gates in METRICS:
            if metric not in base[name] or metric not in cand[name]:
                if metric in cand[name] and metric not in base[name]:
                    # Baseline predates this metric: note it, never fail.
                    new_metrics.append((name, metric))
                continue
            b = float(base[name][metric])
            c = float(cand[name][metric])
            delta = (c - b) / b if b > 0 else 0.0
            flag = ""
            hit = gates and b > 0 and regressed(delta, higher_is_better, args.threshold)
            if hit:
                regressions.append((name, metric, delta))
                flag = "  REGRESSION"
            rows.append((name, metric, b, c, delta, hit))
            print(f"{name:<28} {metric:<12} {b:>12.1f} {c:>12.1f} {delta:>+7.1%}{flag}")
    for name in only_base:
        print(f"{name:<28} {'(baseline only)':>26}")
    for name in only_cand:
        print(f"note: new series, no baseline: {name} (not compared)")
    for name, metric in new_metrics:
        print(f"note: new metric, no baseline: {name}/{metric} (not compared)")

    append_step_summary(cand_name, rows, regressions, args.threshold)

    if not shared:
        print("no shared series; nothing to compare")
        return EXIT_OK
    if regressions:
        worst = max(regressions, key=lambda item: abs(item[2]))
        print(
            f"\nFAIL: {len(regressions)} series/metric pairs regressed more than "
            f"{args.threshold:.0%} (worst: {worst[0]} {worst[1]} {worst[2]:+.1%})"
        )
        return EXIT_ENFORCED if args.enforce else EXIT_ADVISORY
    print(f"\nOK: no gating metric regressed more than {args.threshold:.0%}")
    return EXIT_OK


if __name__ == "__main__":
    sys.exit(main())
