"""Pass 3: architecture layering over the #include graph.

The declared manifest (DESIGN.md §16) orders modules bottom-up; a file
may include headers from its own layer or below, never above.  The
whole module digraph is additionally checked for cycles — a cycle is
always a defect, even between exempted edges, because it makes the
layer order unsatisfiable.

Deliberate exceptions carry an inline ``analyze-allow(layering):
<justification>`` marker on the include line or the line above; they
are recorded in the JSON report as exemptions, not findings, and the
justification travels with them.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from pathlib import Path

# Bottom-up manifest.  Modules listed together are one layer and may
# include each other.  Extend by adding the new module to the right
# tier (see DESIGN.md §16 before moving anything).
LAYERS: list[tuple[str, ...]] = [
    ("common",),
    ("logging",),
    ("obs",),
    ("format", "rsl", "net"),
    ("security",),
    ("info", "exec", "soap"),
    ("gram", "mds", "grid"),
    ("core",),
]

LAYER_OF: dict[str, int] = {
    mod: i for i, mods in enumerate(LAYERS) for mod in mods
}

INCLUDE_RE = re.compile(r'^[ \t]*#[ \t]*include[ \t]+"([^"]+)"', re.MULTILINE)
ALLOW_RE = re.compile(r"analyze-allow\(layering\)(?::?\s*(.*))?")


@dataclass
class Finding:
    path: str
    line: int
    message: str


def _module_of(rel: str) -> str | None:
    parts = Path(rel).parts
    if len(parts) >= 2 and parts[0] == "src":
        return parts[1]
    if len(parts) >= 1 and parts[0] in LAYER_OF:
        return parts[0]
    return None


def run(root: Path, subdirs: tuple[str, ...] = ("src",)) -> dict:
    findings: list[Finding] = []
    exemptions: list[dict] = []
    edges: dict[str, set[str]] = {}
    unknown_modules: set[str] = set()
    files = 0

    for sub in subdirs:
        base = root / sub
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*.hpp")) + sorted(base.rglob("*.cpp")):
            files += 1
            rel = path.relative_to(root)
            from_mod = _module_of(str(rel))
            if from_mod is None or from_mod not in LAYER_OF:
                if from_mod:
                    unknown_modules.add(from_mod)
                continue
            raw = path.read_text()
            lines = raw.splitlines()
            for m in INCLUDE_RE.finditer(raw):
                to_mod = _module_of(m.group(1))
                if to_mod is None:
                    continue
                if to_mod not in LAYER_OF:
                    unknown_modules.add(to_mod)
                    continue
                if to_mod != from_mod:
                    edges.setdefault(from_mod, set()).add(to_mod)
                if LAYER_OF[to_mod] <= LAYER_OF[from_mod]:
                    continue
                line_no = raw.count("\n", 0, m.start()) + 1
                # The marker may open a multi-line justification block:
                # accept it anywhere in the contiguous // comment run
                # (or on the include line itself) above the include.
                marker = None
                am = ALLOW_RE.search(lines[line_no - 1])
                if am:
                    marker = (am.group(1) or "").strip()
                ln = line_no - 2
                while marker is None and 0 <= ln < len(lines) \
                        and lines[ln].lstrip().startswith("//"):
                    am = ALLOW_RE.search(lines[ln])
                    if am:
                        marker = (am.group(1) or "").strip()
                    ln -= 1
                msg = (f"layering violation: {from_mod} (layer "
                       f"{LAYER_OF[from_mod]}) includes \"{m.group(1)}\" "
                       f"from {to_mod} (layer {LAYER_OF[to_mod]})")
                if marker is not None:
                    exemptions.append({
                        "path": str(rel), "line": line_no,
                        "message": msg, "justification": marker,
                    })
                else:
                    findings.append(Finding(str(rel), line_no, msg))

    # Cycle detection over the full module digraph (exempted edges
    # included: an exemption permits layer skew, never a cycle).
    cycles = _cycles(edges)
    for cyc in cycles:
        findings.append(Finding(
            "src", 0,
            "layering cycle: " + " -> ".join(cyc + [cyc[0]])))

    for mod in sorted(unknown_modules):
        findings.append(Finding(
            f"src/{mod}", 0,
            f"module '{mod}' is not in the layer manifest "
            f"(tools/analyze/layering.py LAYERS; see DESIGN.md §16)"))

    return {
        "findings": [vars(f) for f in findings],
        "exemptions": exemptions,
        "stats": {
            "files": files,
            "modules": len({m for mods in LAYERS for m in mods}),
            "edges": sum(len(v) for v in edges.values()),
            "cycles": len(cycles),
        },
        "edges": {k: sorted(v) for k, v in sorted(edges.items())},
    }


def _cycles(edges: dict[str, set[str]]) -> list[list[str]]:
    """Elementary cycles via DFS; module graphs are tiny."""
    cycles: list[list[str]] = []
    seen_keys: set[tuple[str, ...]] = set()
    state: dict[str, int] = {}
    stack: list[str] = []

    def dfs(node: str) -> None:
        state[node] = 1
        stack.append(node)
        for nxt in sorted(edges.get(node, ())):
            if state.get(nxt, 0) == 0:
                dfs(nxt)
            elif state.get(nxt) == 1:
                cyc = stack[stack.index(nxt):]
                lo = min(range(len(cyc)), key=lambda i: cyc[i])
                key = tuple(cyc[lo:] + cyc[:lo])
                if key not in seen_keys:
                    seen_keys.add(key)
                    cycles.append(list(key))
        stack.pop()
        state[node] = 2

    for node in sorted(edges):
        if state.get(node, 0) == 0:
            dfs(node)
    return cycles
