"""CLI: python3 tools/analyze [--root DIR] [--json OUT] [--passes ...]

Exit codes (mirrors tools/lint.py):
  0  clean
  1  findings
  2  internal error / bad input
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

import callgraph          # noqa: E402
import cpp                # noqa: E402
import doc_drift          # noqa: E402
import layering           # noqa: E402
import lock_rank          # noqa: E402
import purity             # noqa: E402
import report as report_mod  # noqa: E402

PASSES = ("lock-rank", "purity", "layering", "doc-drift")


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="tools/analyze",
        description="whole-program static conformance analysis")
    parser.add_argument("--root", type=Path,
                        default=Path(__file__).resolve().parents[2],
                        help="repository root (default: this checkout)")
    parser.add_argument("--json", type=Path, default=None,
                        help="write the machine-readable report here")
    parser.add_argument("--markdown", type=Path, default=None,
                        help="write a step-summary markdown table here")
    parser.add_argument("--passes", default=",".join(PASSES),
                        help="comma-separated subset of: "
                        + ", ".join(PASSES))
    parser.add_argument("--engine", choices=("auto", "ir", "regex"),
                        default="auto",
                        help="call-graph engine (auto: ir when clang + "
                        "compile_commands.json are available)")
    parser.add_argument("--compile-commands", type=Path, default=None,
                        help="compile_commands.json for the ir engine "
                        "(default: <root>/build/compile_commands.json "
                        "when present)")
    parser.add_argument("-q", "--quiet", action="store_true")
    args = parser.parse_args(argv)

    selected = [p.strip() for p in args.passes.split(",") if p.strip()]
    bad = [p for p in selected if p not in PASSES]
    if bad:
        print(f"tools/analyze: unknown pass(es): {', '.join(bad)}",
              file=sys.stderr)
        return 2

    root = args.root.resolve()
    if not (root / "src").is_dir():
        print(f"tools/analyze: no src/ under {root}", file=sys.stderr)
        return 2

    cc = args.compile_commands
    if cc is None:
        default_cc = root / "build" / "compile_commands.json"
        cc = default_cc if default_cc.is_file() else None

    try:
        model = cpp.build_model(root)
        engine_name = "none"
        graph = None
        if "lock-rank" in selected:
            graph = callgraph.build_graph(model, engine=args.engine,
                                          compile_commands=cc)
            engine_name = graph.engine
        elif "purity" in selected:
            engine_name = "regex"  # purity is source-model based

        results: dict[str, dict] = {}
        if "lock-rank" in selected:
            results["lock-rank"] = lock_rank.run(model, graph)
        if "purity" in selected:
            results["purity"] = purity.run(model)
        if "layering" in selected:
            results["layering"] = layering.run(root)
        if "doc-drift" in selected:
            results["doc-drift"] = doc_drift.run(root)
    except RuntimeError as exc:
        print(f"tools/analyze: {exc}", file=sys.stderr)
        return 2

    full = report_mod.assemble(engine_name, results)
    if args.json:
        report_mod.write_json(full, args.json)
    if args.markdown:
        args.markdown.write_text(report_mod.to_markdown(full))

    total = 0
    for name, r in results.items():
        for f in r["findings"]:
            total += 1
            print(f"{f['path']}:{f['line']}: [{name}] {f['message']}")
    if not args.quiet:
        for name, r in results.items():
            stats = " ".join(f"{k}={v}" for k, v in r["stats"].items())
            print(f"tools/analyze: {name}: "
                  f"{len(r['findings'])} finding(s), "
                  f"{len(r.get('exemptions', ()))} exemption(s) [{stats}]",
                  file=sys.stderr)
        print(f"tools/analyze: engine={engine_name} "
              f"{'CLEAN' if total == 0 else f'{total} finding(s)'}",
              file=sys.stderr)
    return 0 if total == 0 else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
