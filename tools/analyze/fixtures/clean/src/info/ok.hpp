// Well-ordered locking (100 before 200) and a genuinely pure marked
// fast path: the negative control for the seeded fixtures.
#pragma once

#include "common/sync.hpp"

#include <atomic>

namespace ig::info {

class Ok {
 public:
  void ordered() {
    MutexLock low(low_mu_);
    MutexLock high(high_mu_);
    ++work_;
  }

  IG_STATIC_FAST_PATH
  long fast_read() const {
    return hits_.load(std::memory_order_relaxed);
  }

 private:
  Mutex low_mu_{lock_rank::kLow, "info.Ok.low"};
  Mutex high_mu_{lock_rank::kHigh, "info.Ok.high"};
  std::atomic<long> hits_{0};
  int work_ = 0;
};

}  // namespace ig::info
