// Clean fixture: every pass must report zero findings over this tree.
#pragma once

#define IG_STATIC_FAST_PATH

namespace ig::lock_rank {
inline constexpr int kUnranked = 0;
inline constexpr int kLow = 100;
inline constexpr int kHigh = 200;
}  // namespace ig::lock_rank
