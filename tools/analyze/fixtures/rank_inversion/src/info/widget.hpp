// Seeded rank inversions: one direct (nested RAII guards out of
// order), one through a call edge (a call under the high-rank lock
// reaching a function that acquires the low rank). The selftest pins
// the exact finding lines; renumber it if this file changes.
#pragma once

#include "common/sync.hpp"

namespace ig::info {

class Widget {
 public:
  void low_op() {
    MutexLock lock(low_mu_);
    ++low_work_;
  }

  void bad_direct() {
    MutexLock outer(high_mu_);
    MutexLock inner(low_mu_);  // line 20: direct inversion (100 under 200)
    ++low_work_;
  }

  void bad_via_call() {
    MutexLock lock(high_mu_);
    low_op();  // line 26: callee acquires 100 while 200 is held
  }

  void fine() {
    MutexLock lock(low_mu_);
    ++low_work_;
  }

 private:
  Mutex low_mu_{lock_rank::kLow, "info.Widget.low"};
  Mutex high_mu_{lock_rank::kHigh, "info.Widget.high"};
  int low_work_ = 0;
};

}  // namespace ig::info
