// Fixture stub: just enough shape for the scanner — rank constants and
// the Mutex/MutexLock spellings. Never compiled.
#pragma once

namespace ig::lock_rank {
inline constexpr int kUnranked = 0;
inline constexpr int kLow = 100;
inline constexpr int kHigh = 200;
}  // namespace ig::lock_rank
