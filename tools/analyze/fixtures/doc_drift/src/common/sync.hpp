// Seeded doc drift: kDup duplicates kB's rank value (the validator
// cannot order equal ranks), and DESIGN.md both documents a retired
// constant and misses kB/kDup. The selftest pins the exact lines.
#pragma once

namespace ig::lock_rank {
inline constexpr int kUnranked = 0;
inline constexpr int kA = 100;
inline constexpr int kB = 200;
inline constexpr int kDup = 200;  // line 10: duplicate rank value
}  // namespace ig::lock_rank
