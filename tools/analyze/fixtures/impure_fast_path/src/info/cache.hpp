// Seeded fast-path impurities: a direct lock acquisition, an
// allocating std call, and a transitive impurity through a helper.
// good_fast() is marked too and must be proven clean. The selftest
// pins the exact finding lines; renumber it if this file changes.
#pragma once

#include "common/sync.hpp"

#include <atomic>
#include <string>
#include <vector>

namespace ig::info {

class Cache {
 public:
  IG_STATIC_FAST_PATH
  int bad_fast() {
    MutexLock lock(mu_);   // line 19: acquisition on the fast path
    values_.push_back(1);  // line 20: allocating call
    helper();              // transitive: helper() allocates at line 32
    return 0;
  }

  IG_STATIC_FAST_PATH
  int good_fast() const {
    return hits_.load(std::memory_order_relaxed);
  }

 private:
  void helper() {
    label_ = std::to_string(42);  // line 32: reached from bad_fast()
  }

  Mutex mu_{lock_rank::kCache, "info.Cache.mu"};
  std::vector<int> values_;
  std::atomic<int> hits_{0};
  std::string label_;
};

}  // namespace ig::info
