// Fixture stub; never compiled.
#pragma once

#define IG_STATIC_FAST_PATH

namespace ig::lock_rank {
inline constexpr int kUnranked = 0;
inline constexpr int kCache = 100;
}  // namespace ig::lock_rank
