// Leaf header pulled in through the exempted include in obs/a.hpp.
#pragma once

namespace ig::info {
inline int c() { return 3; }
}  // namespace ig::info
