// Legal direction on its own (format may include obs) but together
// with obs/a.hpp this closes the obs <-> format cycle.
#pragma once

#include "obs/a.hpp"

namespace ig::format {
inline int b() { return 2; }
}  // namespace ig::format
