// Seeded layering defects: an upward include (obs -> format) and,
// together with format/b.hpp, a module cycle. The second include
// carries the exemption marker and must be reported as an exemption,
// not a finding. The selftest pins the exact lines.
#pragma once

#include "format/b.hpp"  // line 7: obs (layer 2) includes format (layer 3)

// analyze-allow(layering): fixture-only exemption demonstrating the
// marker; a justification travels with the record into the report.
#include "info/c.hpp"

namespace ig::obs {
inline int a() { return ig::format::b() + ig::info::c(); }
}  // namespace ig::obs
