"""Lightweight C++ source model for the conformance analyzer.

This is *not* a parser; it is a deliberately conservative scanner that
recovers exactly the structure the analysis passes need from the one
codebase they run on:

  * namespace / class nesting (with base classes, for virtual dispatch),
  * function definitions with their body spans and line numbers,
  * `ig::Mutex` / `ig::SharedMutex` / `ig::SnapshotCell` member
    declarations with their lock rank and report name,
  * lock-acquisition sites and call sites inside each body, each with the
    end offset of its innermost enclosing block (RAII scope tracking).

The model feeds the regex call-graph engine (callgraph.py). When clang is
available the IR engine supersedes the call edges recovered here, but the
mutex/rank extraction and the source positions always come from this
model — LLVM IR has no lock ranks.

Everything here works on two parallel views of a file:

  * `raw`  — the bytes on disk, used for line attribution and for
    extracting string literals (report names, marker justifications);
  * `code` — comments and string/char literal *contents* blanked with
    spaces (same length, same newlines), used for all structural
    scanning so braces in comments or strings cannot desync the scanner.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path

# Tokens that introduce a parenthesised head but never a function call.
CONTROL_KEYWORDS = {
    "if", "for", "while", "switch", "return", "catch", "sizeof", "alignof",
    "decltype", "noexcept", "static_assert", "assert", "defined",
    "static_cast", "dynamic_cast", "const_cast", "reinterpret_cast",
    "throw", "new", "delete", "co_return", "co_await", "co_yield",
    "alignas", "typeid", "requires",
}

# Things that look like a call of a bare identifier but are declarations
# or expansions the passes must not chase.
NON_CALL_NAMES = CONTROL_KEYWORDS | {
    "operator", "else", "do", "case", "default", "using", "typedef",
    "template", "typename", "public", "private", "protected",
}


def strip_comments_and_strings(raw: str) -> str:
    """Blank comments and literal contents, preserving length and lines."""
    out = list(raw)
    i, n = 0, len(raw)
    while i < n:
        c = raw[i]
        nxt = raw[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            while i < n and raw[i] != "\n":
                out[i] = " "
                i += 1
        elif c == "/" and nxt == "*":
            out[i] = out[i + 1] = " "
            i += 2
            while i < n and not (raw[i] == "*" and i + 1 < n and raw[i + 1] == "/"):
                if raw[i] != "\n":
                    out[i] = " "
                i += 1
            if i < n:
                out[i] = out[i + 1] = " "
                i += 2
        elif c == '"' or c == "'":
            quote = c
            # Keep the quotes themselves so regexes can still see that a
            # (blanked) literal sat here.
            i += 1
            while i < n and raw[i] != quote:
                if raw[i] == "\\" and i + 1 < n:
                    out[i] = " "
                    if raw[i + 1] != "\n":
                        out[i + 1] = " "
                    i += 2
                    continue
                if raw[i] != "\n":
                    out[i] = " "
                i += 1
            i += 1
        else:
            i += 1
    return "".join(out)


@dataclass
class MutexDecl:
    """One ig::Mutex / ig::SharedMutex / ig::SnapshotCell member."""

    cls: str            # owning class (qualified, '' for namespace scope)
    member: str         # field name, e.g. 'mu_'
    kind: str           # 'Mutex' | 'SharedMutex' | 'SnapshotCell'
    rank_name: str      # lock_rank constant name ('' if a literal/unknown)
    rank: int | None    # resolved numeric rank (None until resolved)
    report_name: str    # the human-readable name passed to the ctor
    path: Path
    line: int


@dataclass
class Acquisition:
    """A lock acquisition inside a function body."""

    member: str         # mutex member name as written ('mu_', 'cell_', ...)
    receiver: str       # receiver expression token ('' = this)
    kind: str           # 'raii' | 'lock' | 'try_lock' | 'update'
    offset: int         # offset inside the body text
    scope_end: int      # end offset of the innermost enclosing block
    line: int           # line in the file
    in_lambda: bool = False  # inside a lambda body (deferred execution)


@dataclass
class CallSite:
    name: str           # callee name as written (last component)
    qualifier: str      # explicit qualifier ('Cls', 'ns::Cls') or ''
    receiver: str       # receiver expression for member calls or ''
    offset: int
    line: int
    in_lambda: bool = False


@dataclass
class Function:
    qname: str          # qualified name, e.g. 'ig::info::ManagedProvider::refresh'
    cls: str            # owning class qualified name or ''
    name: str           # unqualified name
    path: Path
    line: int
    body_start: int     # offset of '{' in the file's code view
    body_end: int       # offset one past the matching '}'
    body: str = ""
    marked_fast_path: bool = False
    acquisitions: list[Acquisition] = field(default_factory=list)
    calls: list[CallSite] = field(default_factory=list)


@dataclass
class ClassInfo:
    qname: str
    bases: list[str] = field(default_factory=list)
    # member name -> declared type (best effort, for receiver resolution)
    member_types: dict[str, str] = field(default_factory=dict)


@dataclass
class SourceModel:
    root: Path
    files: list[Path] = field(default_factory=list)
    functions: dict[str, list[Function]] = field(default_factory=dict)  # by qname
    by_name: dict[str, list[Function]] = field(default_factory=dict)    # by bare name
    classes: dict[str, ClassInfo] = field(default_factory=dict)         # by last component
    mutexes: list[MutexDecl] = field(default_factory=list)
    # (class, member) -> MutexDecl ; member -> [MutexDecl] for fallback
    mutex_by_class_member: dict[tuple[str, str], MutexDecl] = field(default_factory=dict)
    mutex_by_member: dict[str, list[MutexDecl]] = field(default_factory=dict)
    rank_values: dict[str, int] = field(default_factory=dict)

    def add_function(self, fn: Function) -> None:
        self.functions.setdefault(fn.qname, []).append(fn)
        self.by_name.setdefault(fn.name, []).append(fn)


RANK_CONST_RE = re.compile(
    r"^\s*inline constexpr int (k[A-Za-z0-9_]+)\s*=\s*(\d+)\s*;", re.MULTILINE
)

# `Mutex mu_{lock_rank::kFoo, "layer.Class"};` and the rank-less /
# name-less variants; also SnapshotCell<T> cell_{"name"} (rank defaults
# to kSnapshotWriter) and `SharedMutex mu_;` (kUnranked).
MUTEX_DECL_RE = re.compile(
    r"\b(Mutex|SharedMutex)\s+(\w+)\s*(?:\{([^;{}]*)\})?\s*(?:IG_GUARDED_BY\([^)]*\)\s*)?;"
)
SNAPSHOT_CELL_DECL_RE = re.compile(
    r"\bSnapshotCell<[^;]*?>\s+(\w+)\s*(?:\{([^;{}]*)\})?\s*;"
)
RANK_ARG_RE = re.compile(r"lock_rank::(k[A-Za-z0-9_]+)")

FAST_PATH_MARKER = "IG_STATIC_FAST_PATH"

# Acquisition syntax inside bodies. Receivers are one chained token
# (`foo_->bar_`, `it->second->x_`); anything fancier resolves by member
# name alone.
RECEIVER = r"(?:[A-Za-z_]\w*(?:(?:\.|->)[A-Za-z_]\w*)*)"
RAII_ACQ_RE = re.compile(
    r"\b(MutexLock|ReaderLock|WriterLock)\s+(\w+)\s*[({]\s*(" + RECEIVER + r")\s*[)}]"
)
METHOD_ACQ_RE = re.compile(
    r"\b(" + RECEIVER + r")(?:\.|->)(lock|lock_shared|try_lock|try_lock_shared|update)\s*\("
)

QUALIFIED_CALL_RE = re.compile(
    r"(?<![\w.>])((?:[A-Za-z_]\w*::)+)([A-Za-z_]\w*)\s*\("
)
MEMBER_CALL_RE = re.compile(
    r"\b(" + RECEIVER + r")(?:\.|->)([A-Za-z_]\w*)\s*\("
)
BARE_CALL_RE = re.compile(r"(?<![\w.>:])([A-Za-z_]\w*)\s*\(")


def _line_of(text: str, offset: int) -> int:
    return text.count("\n", 0, offset) + 1


def _block_ends(body: str) -> list[tuple[int, int]]:
    """(open_offset, close_offset) for every brace pair inside `body`."""
    stack: list[int] = []
    pairs: list[tuple[int, int]] = []
    for i, c in enumerate(body):
        if c == "{":
            stack.append(i)
        elif c == "}":
            if stack:
                pairs.append((stack.pop(), i))
    return pairs


def _enclosing_block_end(pairs: list[tuple[int, int]], offset: int, default: int) -> int:
    best = default
    for open_o, close_o in pairs:
        if open_o < offset < close_o and close_o < best:
            best = close_o
    return best


# Lambda introducer: `](args) {`, `] {`, with optional mutable /
# noexcept / trailing return between the parameter list and the body.
# A call or acquisition inside a lambda body runs when the lambda runs —
# possibly on another thread, never provably under the locks held at
# the point of definition — so such sites carry in_lambda=True and the
# lock-rank nesting check skips them (the rank set the lambda acquires
# still propagates through the enclosing function, conservatively).
_LAMBDA_RE = re.compile(
    r"\]\s*(?:\([^()]*(?:\([^()]*\)[^()]*)*\)\s*)?"
    r"(?:mutable\s*)?(?:noexcept\s*)?(?:->\s*[\w:<>,&*\s]+?)?\s*\{"
)


def _lambda_spans(body: str, pairs: list[tuple[int, int]]) -> list[tuple[int, int]]:
    spans: list[tuple[int, int]] = []
    for m in _LAMBDA_RE.finditer(body):
        open_o = m.end() - 1
        for po, pc in pairs:
            if po == open_o:
                spans.append((po, pc))
                break
    return spans


class _Scope:
    def __init__(self, kind: str, name: str = "", extra=None):
        self.kind = kind  # 'namespace' | 'class' | 'function' | 'block' | 'init'
        self.name = name
        self.extra = extra


def scan_file(path: Path, model: SourceModel) -> None:
    raw = path.read_text(encoding="utf-8", errors="replace")
    code = strip_comments_and_strings(raw)
    model.files.append(path)

    scopes: list[_Scope] = []
    i, n = 0, len(code)
    # Offset of the last structural boundary (; { } or access label) —
    # the text since then is the "head" a '{' is classified by.
    head_start = 0
    pending_fn: Function | None = None

    def scope_path(kinds: tuple[str, ...]) -> str:
        return "::".join(s.name for s in scopes if s.kind in kinds and s.name)

    while i < n:
        c = code[i]
        if c == "{":
            head = code[head_start:i]
            scope = _classify_head(head, scopes, path, raw, code, i, model)
            scopes.append(scope)
            if scope.kind == "function":
                fn: Function = scope.extra
                fn.body_start = i
                pending_fn = None
            head_start = i + 1
        elif c == "}":
            if scopes:
                closing = scopes.pop()
                if closing.kind == "function":
                    fn = closing.extra
                    fn.body_end = i + 1
                    fn.body = code[fn.body_start:fn.body_end]
                    _scan_body(fn, raw, code, model)
                    model.add_function(fn)
            head_start = i + 1
        elif c == ";":
            head_start = i + 1
        elif c == ":" and code[i - 1 : i] != ":" and code[i + 1 : i + 2] != ":":
            # Access labels reset the head; initializer lists after a
            # constructor head must NOT (the head still ends in ')').
            label = code[head_start:i].strip()
            if label in ("public", "private", "protected"):
                head_start = i + 1
        i += 1

    # Member declarations (mutexes, member types) per class body.
    _scan_members(path, raw, code, model)

    # Rank constants (sync.hpp — but scan everywhere, fixtures included).
    for m in RANK_CONST_RE.finditer(code[: 1 << 20]):
        # The names live in `code` (identifiers are not blanked).
        model.rank_values[m.group(1)] = int(m.group(2))


_NAMESPACE_HEAD_RE = re.compile(r"\bnamespace\s+([A-Za-z_][\w:]*)?\s*$")
_CLASS_HEAD_RE = re.compile(
    r"\b(?:class|struct)\s+(?:IG_\w+(?:\(\s*\w*\s*\))?\s+)?([A-Za-z_]\w*)"
    r"(?:\s+final)?\s*(?::\s*(.*))?$",
    re.DOTALL,
)
_FN_NAME_RE = re.compile(
    r"(~?[A-Za-z_]\w*|operator\s*(?:[^\s\w(]+|\(\)|\[\]))\s*$"
)


def _classify_head(head: str, scopes: list[_Scope], path: Path, raw: str,
                   code: str, brace_offset: int, model: SourceModel) -> _Scope:
    stripped = head.strip()
    in_function = any(s.kind in ("function", "init") for s in scopes)
    if in_function:
        return _Scope("block")

    m = _NAMESPACE_HEAD_RE.search(stripped)
    if m is not None:
        return _Scope("namespace", m.group(1) or "")
    if re.search(r"\b(enum|union)\b", stripped) and "(" not in stripped:
        return _Scope("init")

    m = _CLASS_HEAD_RE.search(stripped)
    if m is not None:
        name = m.group(1)
        bases = []
        if m.group(2):
            for part in m.group(2).split(","):
                part = re.sub(r"\b(public|protected|private|virtual)\b", "", part)
                part = part.strip().split("<")[0].strip()
                if part:
                    bases.append(part.split("::")[-1])
        qname = _qualify(scopes, name)
        model.classes.setdefault(name, ClassInfo(qname)).bases.extend(bases)
        return _Scope("class", name)

    # Function definition: the head must contain a parameter list whose
    # closing ')' is followed only by trailing qualifiers.
    fn = _try_function_head(stripped, scopes, path, raw, code, brace_offset)
    if fn is not None:
        return _Scope("function", fn.name, fn)
    return _Scope("init")


def _qualify(scopes: list[_Scope], name: str) -> str:
    prefix = "::".join(s.name for s in scopes if s.kind in ("namespace", "class") and s.name)
    return f"{prefix}::{name}" if prefix else name


_TRAILER_RE = re.compile(
    r"^(?:\s|const|noexcept|override|final|mutable|->\s*[\w:<>,&*\s]+"
    r"|IG_[A-Z_]+(?:\([^()]*(?:\([^()]*\))?[^()]*\))?|\btry\b)*$"
)


def _top_level_paren_groups(head: str) -> list[tuple[int, int]]:
    """(open, close) index pairs of depth-0 parenthesis groups in `head`."""
    groups = []
    depth = 0
    start = -1
    for idx, ch in enumerate(head):
        if ch == "(":
            if depth == 0:
                start = idx
            depth += 1
        elif ch == ")":
            depth -= 1
            if depth == 0 and start >= 0:
                groups.append((start, idx))
                start = -1
    return groups


def _try_function_head(head: str, scopes, path: Path, raw: str, code: str,
                       brace_offset: int) -> Function | None:
    # The parameter list is the FIRST top-level paren group whose
    # preceding token is a plausible function name: later groups belong
    # to trailing annotation macros (IG_ACQUIRE(mu)) or a constructor
    # initializer list ("Ctor(args) : a_(x), b_(y)").
    name = ""
    open_idx = close = -1
    for g_open, g_close in _top_level_paren_groups(head):
        before = head[:g_open].rstrip()
        m = _FN_NAME_RE.search(before)
        if m is None:
            continue
        cand = m.group(1).replace(" ", "")
        bare = cand.lstrip("~")
        if bare in NON_CALL_NAMES or bare.startswith("IG_"):
            continue
        name, open_idx, close = cand, g_open, g_close
        break
    if open_idx < 0:
        return None
    trailer = head[close + 1 :]
    # A constructor initializer list starts at the first top-level ':'
    # that is not '::'.
    colon = re.search(r"(?<!:):(?!:)", trailer)
    if colon is not None:
        trailer = trailer[: colon.start()]
    if not _TRAILER_RE.match(trailer):
        return None
    before = head[:open_idx].rstrip()
    # 'Cls::name' / 'ns::Cls::name' out-of-line qualifier.
    qual_m = re.search(r"([A-Za-z_]\w*(?:::[A-Za-z_]\w*)*)::" + re.escape(name) + r"\s*$", before)
    cls = ""
    if qual_m is not None:
        cls = qual_m.group(1).split("<")[0]
    else:
        for s in reversed(scopes):
            if s.kind == "class":
                cls = s.name
                break
    ns = "::".join(s.name for s in scopes if s.kind == "namespace" and s.name)
    parts = [p for p in (ns, cls, name) if p]
    qname = "::".join(parts)
    line = _line_of(code, brace_offset)
    fn = Function(qname=qname, cls=cls.split("::")[-1], name=name, path=path,
                  line=line, body_start=brace_offset, body_end=brace_offset)
    # The marker may sit on the definition head or up to 3 raw lines above.
    lines = raw.splitlines()
    lo = max(0, line - 4)
    window = "\n".join(lines[lo:line]) + head
    if FAST_PATH_MARKER in window:
        fn.marked_fast_path = True
    return fn


_MEMBER_TYPE_RE = re.compile(
    r"^\s*(?:mutable\s+|const\s+)*"
    r"((?:std::)?(?:shared_ptr|unique_ptr|weak_ptr)<\s*(?:const\s+)?([\w:]+)[^;]*?>"
    r"|[A-Za-z_][\w:]*(?:<[^;<>]*>)?)\s*(?:const\s*)?([*&]*)\s*"
    r"(\w+_)\s*(?:IG_GUARDED_BY\([^)]*\)\s*)?(?:=[^;]*|\{[^;]*\})?;",
    re.MULTILINE,
)


def _scan_members(path: Path, raw: str, code: str, model: SourceModel) -> None:
    """Mutex declarations + best-effort member type table, per class."""
    # Re-walk scopes cheaply: reuse the same head classification to know
    # which class each line belongs to.
    scopes: list[_Scope] = []
    head_start = 0
    i, n = 0, len(code)
    class_spans: list[tuple[str, int, int]] = []  # (class qname, start, end)
    open_stack: list[tuple[_Scope, int]] = []
    while i < n:
        c = code[i]
        if c == "{":
            head = code[head_start:i]
            in_fn = any(s.kind in ("function", "init") for s in scopes)
            if in_fn:
                scope = _Scope("block")
            else:
                m = _NAMESPACE_HEAD_RE.search(head.strip())
                if m is not None:
                    scope = _Scope("namespace", m.group(1) or "")
                else:
                    cm = _CLASS_HEAD_RE.search(head.strip())
                    if cm is not None and "(" not in head.strip().split("=")[-1]:
                        scope = _Scope("class", cm.group(1))
                    elif _try_function_head(head.strip(), scopes, path, raw, code, i) is not None:
                        scope = _Scope("function")
                    else:
                        scope = _Scope("init")
            scopes.append(scope)
            open_stack.append((scope, i))
            head_start = i + 1
        elif c == "}":
            if scopes:
                closing = scopes.pop()
                opened = open_stack.pop()[1] if open_stack else 0
                if closing.kind == "class":
                    class_spans.append((closing.name, opened, i))
            head_start = i + 1
        elif c == ";":
            head_start = i + 1
        i += 1

    def innermost_class(offset: int) -> str:
        best = ""
        best_len = 1 << 30
        for name, start, end in class_spans:
            if start < offset < end and end - start < best_len:
                best, best_len = name, end - start
        return best

    for m in MUTEX_DECL_RE.finditer(code):
        cls = innermost_class(m.start())
        args_code = m.group(3) or ""
        rank_m = RANK_ARG_RE.search(args_code)
        rank_name = rank_m.group(1) if rank_m else ("" if args_code.strip() else "kUnranked")
        report = ""
        raw_args = raw[m.start(3) : m.end(3)] if m.group(3) else ""
        rep_m = re.search(r'"([^"]*)"', raw_args)
        if rep_m:
            report = rep_m.group(1)
        decl = MutexDecl(cls=cls, member=m.group(2), kind=m.group(1),
                         rank_name=rank_name, rank=None, report_name=report,
                         path=path, line=_line_of(code, m.start()))
        model.mutexes.append(decl)
        model.mutex_by_class_member[(cls, decl.member)] = decl
        model.mutex_by_member.setdefault(decl.member, []).append(decl)

    for m in SNAPSHOT_CELL_DECL_RE.finditer(code):
        cls = innermost_class(m.start())
        args_code = m.group(2) or ""
        rank_m = RANK_ARG_RE.search(args_code)
        rank_name = rank_m.group(1) if rank_m else "kSnapshotWriter"
        raw_args = raw[m.start(2) : m.end(2)] if m.group(2) else ""
        rep_m = re.search(r'"([^"]*)"', raw_args)
        decl = MutexDecl(cls=cls, member=m.group(1), kind="SnapshotCell",
                         rank_name=rank_name, rank=None,
                         report_name=rep_m.group(1) if rep_m else "ig.SnapshotCell",
                         path=path, line=_line_of(code, m.start()))
        model.mutexes.append(decl)
        model.mutex_by_class_member[(cls, decl.member)] = decl
        model.mutex_by_member.setdefault(decl.member, []).append(decl)

    # Member types, attributed to the innermost class span.
    for name, start, end in class_spans:
        info = model.classes.setdefault(name, ClassInfo(name))
        for m in _MEMBER_TYPE_RE.finditer(code, start, end):
            if innermost_class(m.start()) != name:
                continue
            pointee = m.group(2)
            type_name = (pointee or m.group(1)).split("<")[0].split("::")[-1]
            info.member_types[m.group(4)] = type_name


def _scan_body(fn: Function, raw: str, code: str, model: SourceModel) -> None:
    body = fn.body
    pairs = _block_ends(body)
    lambdas = _lambda_spans(body, pairs)

    def deferred(offset: int) -> bool:
        return any(s < offset < e for s, e in lambdas)

    taken: list[tuple[int, int]] = []  # spans already claimed by acquisitions

    for m in RAII_ACQ_RE.finditer(body):
        recv = m.group(3)
        member = recv.split(".")[-1].split("->")[-1]
        receiver = recv[: len(recv) - len(member)].rstrip(".->")
        fn.acquisitions.append(Acquisition(
            member=member, receiver=receiver, kind="raii", offset=m.start(),
            scope_end=_enclosing_block_end(pairs, m.start(), len(body)),
            line=fn.line + body.count("\n", 0, m.start()),
            in_lambda=deferred(m.start()),
        ))
        taken.append((m.start(), m.end()))

    for m in METHOD_ACQ_RE.finditer(body):
        recv, method = m.group(1), m.group(2)
        member = recv.split(".")[-1].split("->")[-1]
        receiver = recv[: len(recv) - len(member)].rstrip(".->")
        # `cell_.update(...)` only acquires for SnapshotCell members;
        # `x.lock()` on a weak_ptr is a different thing entirely — filter
        # by the declared member kind during resolution, not here.
        kind = {"lock": "lock", "lock_shared": "lock",
                "try_lock": "try_lock", "try_lock_shared": "try_lock",
                "update": "update"}[method]
        fn.acquisitions.append(Acquisition(
            member=member, receiver=receiver, kind=kind, offset=m.start(),
            scope_end=_enclosing_block_end(pairs, m.start(), len(body)),
            line=fn.line + body.count("\n", 0, m.start()),
            in_lambda=deferred(m.start()),
        ))
        taken.append((m.start(), m.end()))

    def claimed(offset: int) -> bool:
        return any(s <= offset < e for s, e in taken)

    seen: set[tuple[int, str]] = set()
    for m in QUALIFIED_CALL_RE.finditer(body):
        if claimed(m.start()):
            continue
        name = m.group(2)
        if name in NON_CALL_NAMES:
            continue
        qual = m.group(1).rstrip(":")
        fn.calls.append(CallSite(name=name, qualifier=qual, receiver="",
                                 offset=m.start(),
                                 line=fn.line + body.count("\n", 0, m.start()),
                                 in_lambda=deferred(m.start())))
        seen.add((m.start(1), name))

    for m in MEMBER_CALL_RE.finditer(body):
        if claimed(m.start()):
            continue
        name = m.group(2)
        if name in NON_CALL_NAMES:
            continue
        fn.calls.append(CallSite(name=name, qualifier="", receiver=m.group(1),
                                 offset=m.start(2),
                                 line=fn.line + body.count("\n", 0, m.start()),
                                 in_lambda=deferred(m.start())))

    for m in BARE_CALL_RE.finditer(body):
        if claimed(m.start()):
            continue
        name = m.group(1)
        if name in NON_CALL_NAMES or (m.start(), name) in seen:
            continue
        # Skip declarations-that-look-like-calls: 'Type name(' is rare in
        # this tree (brace init is the house style); accept the noise.
        fn.calls.append(CallSite(name=name, qualifier="", receiver="",
                                 offset=m.start(),
                                 line=fn.line + body.count("\n", 0, m.start()),
                                 in_lambda=deferred(m.start())))


def build_model(root: Path, subdirs: tuple[str, ...] = ("src",)) -> SourceModel:
    model = SourceModel(root=root)
    for sub in subdirs:
        base = root / sub
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*.hpp")) + sorted(base.rglob("*.cpp")):
            scan_file(path, model)
    # Resolve numeric ranks.
    for decl in model.mutexes:
        decl.rank = model.rank_values.get(decl.rank_name)
        if decl.rank is None and decl.rank_name == "kUnranked":
            decl.rank = 0
        if decl.rank is None and decl.rank_name == "kSnapshotWriter":
            decl.rank = 700
    return model
