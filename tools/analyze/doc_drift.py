"""Pass 4: doc drift — DESIGN.md §11 rank table and metric table vs
source declarations.

`tools/lint.py check_metrics` already demands every metric constant
appear *somewhere* in DESIGN.md; this pass is the structural
cross-check in both directions:

* rank table (``| Rank | Constant | Guards |``): every ``lock_rank``
  constant in src/common/sync.hpp must have a row with the matching
  numeric rank; every row's constant must still exist in the source
  with the same value; duplicate numeric ranks in the source are flagged
  (the validator cannot order two mutexes of equal rank);
* metric table (``| Constant | Name | Kind | Meaning |``): every
  declared metric constant must have a row whose name column matches
  the declared string; rows whose constant or string no longer exists
  are retired docs.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from pathlib import Path

RANK_CONST_RE = re.compile(
    r"^\s*inline constexpr int (k[A-Za-z0-9_]+)\s*=\s*(\d+)\s*;")
# Multiline-tolerant: the declaration may wrap after `=`.
METRIC_DECL_RE = re.compile(
    r'^\s*inline constexpr const char\* (k[A-Za-z0-9_]*)\s*=\s*"([^"]*)";',
    re.MULTILINE)

RANK_ROW_RE = re.compile(r"^\|\s*(\d+)\s*\|\s*`(k[A-Za-z0-9_]+)`\s*\|")
# The name column may carry trailing prose for prefix constants:
# | `kPoolWorkerPrefix` | `pool.worker.` + i | counter | ... |
METRIC_ROW_RE = re.compile(r"^\|\s*`(k[A-Za-z0-9_]+)`\s*\|\s*`([^`]+)`[^|]*\|")

RANK_TABLE_HEADER = "| Rank | Constant |"
METRIC_TABLE_HEADER = "| Constant | Name |"

METRIC_HEADERS = (
    Path("src/obs/telemetry.hpp"),
    Path("src/obs/profile.hpp"),
    Path("src/obs/trace.hpp"),
    Path("src/obs/export.hpp"),
    Path("src/mds/replication.hpp"),
)


@dataclass
class Finding:
    path: str
    line: int
    message: str


def _table_rows(design_lines: list[str], header: str,
                row_re: re.Pattern) -> tuple[int, list[tuple[int, tuple]]]:
    """(first header line number, [(line number, row groups)]) across
    *every* table whose header row starts with `header` — metric tables
    are split per subsystem in DESIGN.md."""
    rows: list[tuple[int, tuple]] = []
    header_line = 0
    in_table = False
    for i, line in enumerate(design_lines, start=1):
        if not in_table:
            if line.startswith(header):
                in_table = True
                if header_line == 0:
                    header_line = i
            continue
        m = row_re.match(line)
        if m:
            rows.append((i, m.groups()))
        elif not line.startswith("|"):
            in_table = False
    return header_line, rows


def run(root: Path, design: Path | None = None,
        sync_header: Path | None = None) -> dict:
    design = design or root / "DESIGN.md"
    sync_header = sync_header or root / "src" / "common" / "sync.hpp"
    findings: list[Finding] = []
    design_rel = str(design.relative_to(root)) if design.is_relative_to(root) else str(design)
    design_lines = design.read_text().splitlines()

    # ---- rank table -----------------------------------------------------
    src_ranks: dict[str, tuple[int, int]] = {}  # name -> (value, line)
    sync_rel = str(sync_header.relative_to(root)) if sync_header.is_relative_to(root) else str(sync_header)
    for i, line in enumerate(sync_header.read_text().splitlines(), start=1):
        m = RANK_CONST_RE.match(line)
        if m:
            name, value = m.group(1), int(m.group(2))
            if name in src_ranks:
                findings.append(Finding(
                    sync_rel, i,
                    f"duplicate lock_rank constant {name}"))
                continue
            src_ranks[name] = (value, i)

    by_value: dict[int, str] = {}
    for name, (value, line) in src_ranks.items():
        if value == 0:
            continue  # kUnranked: exempt from ordering, not tabled
        if value in by_value:
            findings.append(Finding(
                sync_rel, line,
                f"duplicate rank value {value}: {name} and "
                f"{by_value[value]} cannot be ordered by the validator"))
        else:
            by_value[value] = name

    header_line, rank_rows = _table_rows(
        design_lines, RANK_TABLE_HEADER, RANK_ROW_RE)
    if header_line == 0:
        findings.append(Finding(design_rel, 0,
                                "rank table (§11) not found"))
        rank_rows = []
    doc_ranks: dict[str, tuple[int, int]] = {}
    for line_no, (value_s, name) in rank_rows:
        if name in doc_ranks:
            findings.append(Finding(
                design_rel, line_no,
                f"rank table documents {name} twice"))
            continue
        doc_ranks[name] = (int(value_s), line_no)
        if name not in src_ranks:
            findings.append(Finding(
                design_rel, line_no,
                f"rank table documents retired rank {name} "
                f"(not declared in {sync_rel})"))
        elif src_ranks[name][0] != int(value_s):
            findings.append(Finding(
                design_rel, line_no,
                f"rank table says {name} = {value_s} but {sync_rel}:"
                f"{src_ranks[name][1]} declares {src_ranks[name][0]}"))
    for name, (value, line) in sorted(src_ranks.items()):
        if value == 0:
            continue
        if name not in doc_ranks:
            findings.append(Finding(
                design_rel, header_line,
                f"rank table missing row for {name} = {value} "
                f"(declared at {sync_rel}:{line})"))

    # ---- metric table ---------------------------------------------------
    src_metrics: dict[str, tuple[str, str, int]] = {}
    for rel in METRIC_HEADERS:
        header = root / rel
        if not header.is_file():
            continue
        text = header.read_text()
        for m in METRIC_DECL_RE.finditer(text):
            src_metrics[m.group(1)] = (
                m.group(2), str(rel), text.count("\n", 0, m.start()) + 1)

    m_header_line, metric_rows = _table_rows(
        design_lines, METRIC_TABLE_HEADER, METRIC_ROW_RE)
    if m_header_line == 0:
        # Only an error when there are metrics to document (fixture
        # trees have no metric headers at all).
        if src_metrics:
            findings.append(Finding(design_rel, 0,
                                    "metric table not found"))
        metric_rows = []
    doc_metrics: dict[str, tuple[str, int]] = {}
    for line_no, (name, value) in metric_rows:
        doc_metrics[name] = (value, line_no)
        if name not in src_metrics:
            findings.append(Finding(
                design_rel, line_no,
                f"metric table documents retired constant {name}"))
            continue
        declared = src_metrics[name][0]
        # Prefix constants are documented as `prefix.` + suffix.
        doc_value = value.split("`")[0].strip().rstrip("+").strip()
        if not (doc_value == declared or doc_value.startswith(declared)
                or declared.startswith(doc_value)):
            findings.append(Finding(
                design_rel, line_no,
                f"metric table says {name} = \"{value}\" but "
                f"{src_metrics[name][1]}:{src_metrics[name][2]} "
                f"declares \"{declared}\""))
    for name, (value, rel, line) in sorted(src_metrics.items()):
        if name not in doc_metrics:
            findings.append(Finding(
                design_rel, m_header_line,
                f"metric table missing row for {name} (\"{value}\", "
                f"declared at {rel}:{line})"))

    return {
        "findings": [vars(f) for f in findings],
        "exemptions": [],
        "stats": {
            "source_ranks": len(src_ranks),
            "documented_ranks": len(doc_ranks),
            "source_metrics": len(src_metrics),
            "documented_metrics": len(doc_metrics),
        },
    }
