"""Report assembly: JSON artifact + markdown summary.

The markdown table follows tools/bench_compare.py's summary style so
the CI step-summary rendering is uniform across gates.
"""

from __future__ import annotations

import json
from pathlib import Path


def assemble(engine: str, results: dict[str, dict]) -> dict:
    total = sum(len(r["findings"]) for r in results.values())
    return {
        "tool": "tools/analyze",
        "engine": engine,
        "passes": results,
        "summary": {
            "findings": total,
            "exemptions": sum(len(r.get("exemptions", ()))
                              for r in results.values()),
            "clean": total == 0,
        },
    }


def to_markdown(report: dict) -> str:
    lines = ["## Static conformance analysis", ""]
    lines.append(f"call-graph engine: `{report['engine']}`")
    lines.append("")
    lines.append("| pass | findings | exemptions | status |")
    lines.append("|---|---:|---:|---|")
    for name, r in report["passes"].items():
        n, e = len(r["findings"]), len(r.get("exemptions", ()))
        status = "ok" if n == 0 else "**FAIL**"
        lines.append(f"| {name} | {n} | {e} | {status} |")
    findings = [(name, f) for name, r in report["passes"].items()
                for f in r["findings"]]
    if findings:
        lines.append("")
        lines.append("| pass | location | finding |")
        lines.append("|---|---|---|")
        for name, f in findings:
            loc = f"`{f['path']}:{f['line']}`"
            msg = f["message"].replace("|", "\\|")
            lines.append(f"| {name} | {loc} | {msg} |")
    lines.append("")
    return "\n".join(lines)


def write_json(report: dict, path: Path) -> None:
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
