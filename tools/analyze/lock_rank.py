"""Pass 1: static lock-rank graph.

The runtime validator (src/common/sync.cpp) enforces strictly
increasing lock ranks per thread, but only on the interleavings the
test suite happens to drive.  This pass proves the same invariant over
*all* paths:

1. every acquisition site is resolved to its MutexDecl (rank, report
   name); `update()` counts only on SnapshotCell members, and `.lock()`
   on something that is not a declared mutex (weak_ptr, MutexLock
   locals) is ignored;
2. a transitive *may-acquire* rank set is computed per function over
   the call graph (fixpoint, so recursion converges);
3. inside every scope that holds rank r1, each nested acquisition and
   each call whose callee may acquire r2 with 0 < r2 <= r1 is a
   finding.

Rank 0 (kUnranked) is exempt, exactly as at runtime.  Nesting scope
comes from the source model even under the IR engine — IR edges carry
no offsets — so the IR engine sharpens the transitive sets while the
under-lock call enumeration always uses the model's sites.
"""

from __future__ import annotations

from dataclasses import dataclass

from callgraph import CallGraph, RegexEngine
from cpp import Acquisition, Function, MutexDecl, SourceModel

ALLOW_MARKER = "analyze-allow(lock-rank)"


@dataclass
class Finding:
    path: str
    line: int
    message: str


def _resolve_acq(model: SourceModel, fn: Function,
                 acq: Acquisition) -> MutexDecl | None:
    """MutexDecl an acquisition refers to, or None when it is not a
    declared ig mutex (weak_ptr::lock, RAII guard re-lock, ...)."""
    cls = fn.cls.rsplit("::", 1)[-1] if fn.cls else ""
    decl = None
    if acq.receiver in ("", "this"):
        decl = model.mutex_by_class_member.get((cls, acq.member))
    if decl is None and acq.receiver and cls:
        info = model.classes.get(cls)
        head = acq.receiver.split(".")[0].split("->")[0]
        if info is not None:
            recv_ty = info.member_types.get(head)
            if recv_ty is not None:
                decl = model.mutex_by_class_member.get((recv_ty, acq.member))
    if decl is None:
        cands = model.mutex_by_member.get(acq.member, [])
        if len(cands) == 1:
            decl = cands[0]
    if decl is None:
        return None
    if acq.kind == "update":
        return decl if decl.kind == "SnapshotCell" else None
    return decl if decl.kind in ("Mutex", "SharedMutex") else None


def _direct(model: SourceModel) -> dict[str, list[tuple[Function, Acquisition, MutexDecl]]]:
    out: dict[str, list[tuple[Function, Acquisition, MutexDecl]]] = {}
    for qname, fns in model.functions.items():
        rows = []
        for fn in fns:
            for acq in fn.acquisitions:
                decl = _resolve_acq(model, fn, acq)
                if decl is not None:
                    rows.append((fn, acq, decl))
        out[qname] = rows
    return out


def _transitive_ranks(model: SourceModel, graph: CallGraph,
                      direct: dict) -> dict[str, set[int]]:
    """Fixpoint of rank sets over the call graph."""
    ranks: dict[str, set[int]] = {
        q: {d.rank for _, _, d in rows if d.rank}
        for q, rows in direct.items()
    }
    callees = {q: graph.callees(q) for q in model.functions}
    changed = True
    while changed:
        changed = False
        for q, cs in callees.items():
            cur = ranks.setdefault(q, set())
            before = len(cur)
            for c in cs:
                cur |= ranks.get(c, set())
            if len(cur) != before:
                changed = True
    return ranks


def _allowed(fn: Function, model_raw: dict, line: int) -> bool:
    """analyze-allow(lock-rank) on the finding line or the line above."""
    lines = model_raw.get(fn.path)
    if lines is None:
        try:
            lines = fn.path.read_text().splitlines()
        except OSError:
            lines = []
        model_raw[fn.path] = lines
    for ln in (line - 1, line - 2):
        if 0 <= ln < len(lines) and ALLOW_MARKER in lines[ln]:
            return True
    return False


def run(model: SourceModel, graph: CallGraph) -> dict:
    direct = _direct(model)
    trans = _transitive_ranks(model, graph, direct)
    resolver = RegexEngine(model)
    findings: list[Finding] = []
    exemptions: list[dict] = []
    raw_cache: dict = {}

    def emit(fn: Function, line: int, msg: str) -> None:
        if _allowed(fn, raw_cache, line):
            exemptions.append({"path": str(fn.path), "line": line,
                               "message": msg})
        else:
            findings.append(Finding(str(fn.path), line, msg))

    for qname, fns in model.functions.items():
        for fn in fns:
            held = [(acq, decl) for f, acq, decl in direct.get(qname, ())
                    if f is fn and decl.rank]
            for acq, decl in held:
                r1 = decl.rank
                span = (acq.offset, acq.scope_end)
                if acq.in_lambda:
                    # A lambda's acquisitions run when the lambda runs;
                    # nothing textually inside it is provably "under"
                    # this lock.  Its ranks still propagate through the
                    # enclosing function's transitive set.
                    continue
                # (a) nested direct acquisitions in the held scope
                for acq2, decl2 in held:
                    if acq2 is acq or decl2.rank is None or not decl2.rank:
                        continue
                    if acq2.in_lambda:
                        continue
                    if span[0] < acq2.offset < span[1] and decl2.rank <= r1:
                        emit(fn, acq2.line,
                             f"lock-rank inversion: acquires "
                             f"'{decl2.report_name or decl2.member}' "
                             f"(rank {decl2.rank}) while holding "
                             f"'{decl.report_name or decl.member}' "
                             f"(rank {r1})")
                # (b) calls made in the held scope whose callee may
                # acquire a rank <= r1
                for site in fn.calls:
                    if site.in_lambda:
                        continue
                    if not (span[0] < site.offset < span[1]):
                        continue
                    rc = resolver.resolve(fn, site)
                    for target in rc.targets:
                        bad = sorted(r for r in trans.get(target.qname, ())
                                     if 0 < r <= r1)
                        if bad:
                            emit(fn, site.line,
                                 f"lock-rank inversion: call to "
                                 f"{target.qname}() may acquire rank "
                                 f"{bad[0]} while holding "
                                 f"'{decl.report_name or decl.member}' "
                                 f"(rank {r1})")
                            break  # one finding per call site

    mutex_rows = [{
        "class": d.cls, "member": d.member, "kind": d.kind,
        "rank_name": d.rank_name, "rank": d.rank,
        "report_name": d.report_name,
        "path": str(d.path), "line": d.line,
    } for d in model.mutexes]

    return {
        "findings": [vars(f) for f in findings],
        "exemptions": exemptions,
        "stats": {
            "mutexes": len(model.mutexes),
            "functions": len(model.functions),
            "functions_acquiring": sum(1 for r in trans.values() if r),
            "call_sites": graph.stats.get("sites", 0),
            "unresolved_calls": graph.stats.get("unresolved", 0),
        },
        "mutexes": mutex_rows,
    }
