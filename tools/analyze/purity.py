"""Pass 2: fast-path purity.

Functions marked ``IG_STATIC_FAST_PATH`` (src/common/annotations.hpp)
promise the PR-7 zero-lock/zero-alloc contract: no lock acquisition, no
allocation, no I/O — transitively.  The runtime proof
(tests/snapshot_test.cpp) counts acquisitions and allocations on the
paths the test drives; this pass proves the same property over every
path from every marked function.

The pass walks the closure of marked functions using the source-model
call resolution (the marker is a source artifact, so the source view is
authoritative; the IR engine sharpens pass 1, not this one) and flags,
with path:line attribution:

* any lock/update acquisition site — including `.lock()` on something
  the model cannot resolve to a declared mutex, because the fast path
  has no business calling anything named lock();
* allocation: `new` expressions, `throw`, and calls into the allocating
  std surface (push_back, resize, to_string, make_shared, ...);
* I/O: stream objects and the C file API;
* calls the model cannot resolve and that are not on the curated
  read-only allowlist — an unknown callee is an unproven callee.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from callgraph import RegexEngine
from cpp import Function, SourceModel

# Read-only / arithmetic std surface a pure fast path may use.
PURE_ALLOWLIST = frozenset({
    # atomics
    "load", "store", "exchange", "fetch_add", "fetch_sub", "fetch_or",
    "fetch_and", "compare_exchange_weak", "compare_exchange_strong",
    # const container access
    "size", "empty", "begin", "end", "cbegin", "cend", "find", "count",
    "contains", "at", "front", "back", "data", "c_str", "length",
    "first", "second", "get", "value", "has_value", "value_or",
    "use_count", "expired", "compare",
    # arithmetic / utilities
    "min", "max", "clamp", "abs", "move", "forward", "swap",
    "memcmp", "strlen", "strcmp", "isnan", "isinf",
    # chrono value types (no clock reads: now() is NOT allowlisted —
    # pass the timestamp in)
    "time_since_epoch", "duration_cast", "seconds", "milliseconds",
    "microseconds", "nanoseconds", "duration",
    # constructor-style casts of the trivially-copyable time aliases
    # (common/clock.hpp); these wrap an integer, nothing more
    "Duration", "TimePoint",
})

ALLOC_NAMES = frozenset({
    "push_back", "pop_back", "emplace_back", "emplace", "emplace_front",
    "insert", "erase", "resize", "reserve", "append", "assign", "clear",
    "substr", "to_string", "stoi", "stol", "stod", "str",
    "make_shared", "make_unique", "push_front",
})

IO_NAMES = frozenset({
    "printf", "fprintf", "snprintf", "fopen", "fclose", "fwrite", "fread",
    "open", "close", "write", "read", "flush", "put", "getline", "tellp",
    "seekp",
})

NEW_RE = re.compile(r"\bnew\b(?!\s*\()")  # `new T{...}`; placement too
THROW_RE = re.compile(r"\bthrow\b")
STREAM_RE = re.compile(
    r"\bstd::(?:cout|cerr|clog|cin|ofstream|ifstream|fstream|"
    r"ostringstream|istringstream|stringstream)\b")

ALLOW_MARKER = "analyze-allow(purity)"


@dataclass
class Finding:
    path: str
    line: int
    message: str


def _marked_roots(model: SourceModel) -> dict[str, list[Function]]:
    roots: dict[str, list[Function]] = {}
    for qname, fns in model.functions.items():
        if any(f.marked_fast_path for f in fns):
            roots[qname] = fns
    return roots


def run(model: SourceModel) -> dict:
    resolver = RegexEngine(model)
    roots = _marked_roots(model)
    findings: list[Finding] = []
    exemptions: list[dict] = []
    raw_cache: dict = {}

    def allowed(fn: Function, line: int) -> bool:
        lines = raw_cache.get(fn.path)
        if lines is None:
            try:
                lines = fn.path.read_text().splitlines()
            except OSError:
                lines = []
            raw_cache[fn.path] = lines
        return any(0 <= ln < len(lines) and ALLOW_MARKER in lines[ln]
                   for ln in (line - 1, line - 2))

    def emit(fn: Function, line: int, msg: str) -> None:
        if allowed(fn, line):
            exemptions.append({"path": str(fn.path), "line": line,
                               "message": msg})
        else:
            findings.append(Finding(str(fn.path), line, msg))

    # Closure per root so every finding names the marked entry point it
    # breaks; the visited set is shared across roots for the scan itself
    # (a function's own violations are reported once).
    scanned: set[str] = set()
    reached_by: dict[str, str] = {}

    def scan_function(qname: str, fns: list[Function], root: str,
                      work: list) -> None:
        via = f" (fast path: {root})" if root != qname else ""
        for fn in fns:
            if not fn.body:
                continue  # declaration only
            for acq in fn.acquisitions:
                emit(fn, acq.line,
                     f"fast-path impurity: {qname}() contains a lock/"
                     f"update acquisition '{acq.member}.{acq.kind}'{via}")
            for m in NEW_RE.finditer(fn.body):
                emit(fn, fn.line + fn.body.count("\n", 0, m.start()),
                     f"fast-path impurity: {qname}() has a `new` "
                     f"expression{via}")
            for m in THROW_RE.finditer(fn.body):
                emit(fn, fn.line + fn.body.count("\n", 0, m.start()),
                     f"fast-path impurity: {qname}() throws "
                     f"(allocates){via}")
            for m in STREAM_RE.finditer(fn.body):
                emit(fn, fn.line + fn.body.count("\n", 0, m.start()),
                     f"fast-path impurity: {qname}() touches a stream "
                     f"object{via}")
            for site in fn.calls:
                rc = resolver.resolve(fn, site)
                if rc.targets:
                    for t in rc.targets:
                        if t.qname not in scanned:
                            work.append((t.qname, root))
                    continue
                if site.name in ALLOC_NAMES:
                    emit(fn, site.line,
                         f"fast-path impurity: {qname}() calls "
                         f"allocating '{site.name}()'{via}")
                elif site.name in IO_NAMES:
                    emit(fn, site.line,
                         f"fast-path impurity: {qname}() performs I/O "
                         f"via '{site.name}()'{via}")
                elif site.name not in PURE_ALLOWLIST:
                    emit(fn, site.line,
                         f"fast-path impurity: {qname}() calls "
                         f"'{site.name}()' which cannot be proven pure"
                         f"{via}")

    for root in sorted(roots):
        work: list[tuple[str, str]] = [(root, root)]
        while work:
            qname, origin = work.pop()
            if qname in scanned:
                continue
            scanned.add(qname)
            reached_by[qname] = origin
            scan_function(qname, model.functions[qname], origin, work)

    return {
        "findings": [vars(f) for f in findings],
        "exemptions": exemptions,
        "stats": {
            "marked_roots": len(roots),
            "functions_proven": len(scanned),
        },
        "roots": sorted(roots),
    }
