"""Call-graph construction over the cpp.SourceModel.

Two engines produce the same artifact — a per-function list of resolved
call targets — so the passes downstream (lock_rank, purity) are engine
agnostic:

* ``RegexEngine`` resolves the CallSites the source model extracted,
  using declared member types, base-class (virtual dispatch) fan-out and
  name uniqueness.  Always available; conservative: an ambiguous call is
  recorded as unresolved (a statistic, not silently dropped).
* ``IrEngine`` compiles each TU with ``clang -S -emit-llvm`` using the
  flags recorded in ``compile_commands.json`` and reads the ``call`` /
  ``invoke`` edges out of the IR, demangled.  Exact (the optimizer has
  not run, so no edge is inlined away), but needs clang; when clang or
  the compilation database is missing the caller falls back to the
  regex engine and records which engine ran in the report.

Resolution strictness for the regex engine, in order:

1. explicit qualifier (``Cls::fn(...)`` / ``ns::fn(...)``) — suffix
   match against qualified names;
2. member call whose receiver's declared type is known
   (``monitor_->query(...)``) — methods of that class plus overrides in
   every class derived from it (virtual dispatch is fanned out, never
   guessed);
3. unqualified call inside a class — a method of the same class or one
   of its bases;
4. a name with exactly one definition in the whole tree;
5. otherwise: *unresolved* — counted, listed in stats, and treated as
   "unknown callee" by passes that care (purity flags it, lock-rank
   assumes it acquires nothing and says so in its stats).
"""

from __future__ import annotations

import json
import re
import shlex
import shutil
import subprocess
import tempfile
from dataclasses import dataclass, field
from pathlib import Path

from cpp import CallSite, Function, SourceModel

# ---------------------------------------------------------------------------
# Shared artifact


@dataclass
class ResolvedCall:
    site: CallSite
    targets: list[Function]          # empty when unresolved/external
    status: str                      # 'resolved' | 'external' | 'unresolved'


@dataclass
class CallGraph:
    # function qname -> resolved calls from *all* bodies with that qname
    calls: dict[str, list[ResolvedCall]] = field(default_factory=dict)
    engine: str = "regex"
    stats: dict[str, int] = field(default_factory=dict)

    def callees(self, qname: str) -> set[str]:
        return {t.qname for rc in self.calls.get(qname, ())
                for t in rc.targets}


# Names that are never in-tree functions: the std / libc surface the
# tree legitimately touches.  Used only to split 'external' from
# 'unresolved' in the stats; the purity pass applies its own, stricter
# allowlist on top.
EXTERNAL_NAMESPACES = ("std", "chrono", "this_thread", "filesystem")

EXTERNAL_NAMES = frozenset({
    # containers / algorithms / utilities
    "size", "empty", "begin", "end", "cbegin", "cend", "rbegin", "rend",
    "find", "count", "contains", "at", "front", "back", "data", "c_str",
    "push_back", "pop_back", "emplace_back", "emplace", "insert", "erase",
    "clear", "resize", "reserve", "assign", "append", "substr", "compare",
    "length", "swap", "get", "reset", "release", "lock", "expired",
    "value", "has_value", "value_or", "emplace_front", "pop_front",
    "push_front", "str", "first", "second", "use_count", "tie",
    "move", "forward", "min", "max", "clamp", "abs", "sqrt", "pow",
    "floor", "ceil", "round", "exp", "log", "isnan", "isinf", "signbit",
    "make_shared", "make_unique", "make_pair", "make_tuple", "to_string",
    "stoi", "stol", "stoul", "stoull", "stod", "snprintf", "memcpy",
    "memset", "strlen", "strcmp", "getenv", "exit", "abort", "assert",
    "static_cast", "dynamic_cast", "reinterpret_cast", "const_cast",
    # atomics
    "load", "store", "exchange", "fetch_add", "fetch_sub", "fetch_or",
    "fetch_and", "compare_exchange_weak", "compare_exchange_strong",
    "notify_one", "notify_all", "wait", "wait_for", "wait_until",
    # chrono
    "now", "time_since_epoch", "duration_cast", "duration", "epoch",
    "sleep_for", "sleep_until", "seconds", "milliseconds", "microseconds",
    "nanoseconds", "hours", "minutes",
    # threads
    "join", "joinable", "detach", "hardware_concurrency",
    # iostreams-ish (flagged separately by purity's I/O scan)
    "printf", "fprintf", "fflush", "fopen", "fclose", "fwrite", "fread",
    "getline", "put", "write", "read", "flush", "good", "fail", "is_open",
    "open", "close", "rdbuf", "setw", "setprecision", "fixed", "hex", "dec",
    "unsetf", "setf", "width", "fill", "precision", "tellp", "seekp",
})


def _last(name: str) -> str:
    return name.rsplit("::", 1)[-1]


# ---------------------------------------------------------------------------
# Regex engine


class RegexEngine:
    """Resolves the model's own CallSites.  No external tools."""

    name = "regex"

    def __init__(self, model: SourceModel):
        self.model = model
        # class last-component -> [class qnames] (collisions kept)
        self._derived: dict[str, list[str]] = {}
        for cls in model.classes.values():
            for base in cls.bases:
                self._derived.setdefault(_last(base), []).append(cls.qname)

    def build(self) -> CallGraph:
        graph = CallGraph(engine=self.name)
        stats = {"sites": 0, "resolved": 0, "external": 0, "unresolved": 0}
        for qname, fns in self.model.functions.items():
            out: list[ResolvedCall] = []
            for fn in fns:
                for site in fn.calls:
                    rc = self.resolve(fn, site)
                    stats["sites"] += 1
                    stats[rc.status] += 1
                    out.append(rc)
            graph.calls[qname] = out
        graph.stats = stats
        return graph

    # -- resolution -------------------------------------------------------

    def resolve(self, fn: Function, site: CallSite) -> ResolvedCall:
        if site.qualifier:
            return self._resolve_qualified(site)
        if site.receiver:
            return self._resolve_member(fn, site)
        return self._resolve_bare(fn, site)

    def _resolve_qualified(self, site: CallSite) -> ResolvedCall:
        qual = site.qualifier
        if qual.split("::", 1)[0] in EXTERNAL_NAMESPACES:
            return ResolvedCall(site, [], "external")
        want = f"{qual}::{site.name}"
        hits = [f for qname, fl in self.model.functions.items()
                if qname == want or qname.endswith("::" + want)
                for f in fl]
        if hits:
            return ResolvedCall(site, hits, "resolved")
        # Qualified name we know nothing about (std::, ig macro ns, ...).
        return ResolvedCall(site, [], "external")

    def _receiver_class(self, fn: Function, receiver: str) -> str | None:
        """Declared class of `receiver` if it is a direct member (or
        `this`) of the calling function's class.  Chained receivers
        (`it->second`) resolve one hop at a time through declared member
        types; any unknown hop gives up."""
        cls = self.model.classes.get(_last(fn.cls)) if fn.cls else None
        parts = re.split(r"\.|->", receiver)
        if parts and parts[0] == "this":
            parts = parts[1:]
            if not parts:
                return fn.cls or None
        for part in parts:
            if cls is None:
                return None
            ty = cls.member_types.get(part)
            if ty is None:
                return None
            cls = self.model.classes.get(_last(ty))
            if cls is None:
                return _last(ty) if part == parts[-1] else None
        return cls.qname if cls else None

    def _class_methods(self, cls_name: str, name: str) -> list[Function]:
        """Methods `name` of class `cls_name`, its bases, and (virtual
        dispatch) every derived class."""
        hits: list[Function] = []
        seen: set[str] = set()
        work = [cls_name]
        # walk up (inherited implementation) and down (overrides)
        while work:
            cur = work.pop()
            if cur in seen:
                continue
            seen.add(cur)
            info = self.model.classes.get(_last(cur))
            qname_want = (info.qname if info else cur) + "::" + name
            for qname, fl in self.model.functions.items():
                if qname == qname_want or qname.endswith("::" + qname_want):
                    hits.extend(fl)
            if info:
                work.extend(_last(b) for b in info.bases)
            work.extend(self._derived.get(_last(cur), ()))
        return hits

    def _resolve_member(self, fn: Function, site: CallSite) -> ResolvedCall:
        cls = self._receiver_class(fn, site.receiver)
        if cls is not None:
            hits = self._class_methods(cls, site.name)
            if hits:
                return ResolvedCall(site, hits, "resolved")
            # Known receiver class but no such method in tree: treat as
            # external only when the name looks like std surface.
            if site.name in EXTERNAL_NAMES:
                return ResolvedCall(site, [], "external")
            return ResolvedCall(site, [], "unresolved")
        # Unknown receiver type: fall back to name uniqueness.
        return self._resolve_by_name(site)

    def _resolve_bare(self, fn: Function, site: CallSite) -> ResolvedCall:
        if fn.cls:
            hits = self._class_methods(_last(fn.cls), site.name)
            if hits:
                return ResolvedCall(site, hits, "resolved")
        return self._resolve_by_name(site)

    def _resolve_by_name(self, site: CallSite) -> ResolvedCall:
        # A name on the std surface (`end`, `clear`, `close`, ...) with
        # no type evidence is overwhelmingly a container/std call; an
        # in-tree method of the same name still resolves when the
        # receiver's declared type is known (_resolve_member).  Chasing
        # uniqueness here produced false lock-rank edges (ring_.end()
        # "calling" TraceContext::Span::end).
        if site.name in EXTERNAL_NAMES:
            return ResolvedCall(site, [], "external")
        fns = self.model.by_name.get(site.name, [])
        classes = {f.cls for f in fns}
        if fns and len(classes) == 1:
            return ResolvedCall(site, fns, "resolved")
        if fns:
            # Same name in several classes and no type info: conservative
            # fan-out would poison the graph with false edges, so record
            # the ambiguity instead.
            return ResolvedCall(site, [], "unresolved")
        if site.name in EXTERNAL_NAMES:
            return ResolvedCall(site, [], "external")
        return ResolvedCall(site, [], "unresolved")


# ---------------------------------------------------------------------------
# IR engine


_DEFINE_RE = re.compile(r"^define\b[^@]*@([-\w$.]+)\(", re.MULTILINE)
_CALL_RE = re.compile(r"\b(?:call|invoke)\b[^@\n;]*@([-\w$.]+)\(")


class IrEngine:
    """clang -S -emit-llvm over compile_commands.json.

    Produces the same CallGraph artifact keyed by the model's qnames;
    mangled callees that demangle to something outside the model count
    as external.  Construction raises RuntimeError when clang or the
    compilation database is unavailable — callers catch and fall back.
    """

    name = "ir"

    def __init__(self, model: SourceModel, compile_commands: Path,
                 clang: str = "clang++"):
        self.model = model
        self.clang = shutil.which(clang) or shutil.which("clang")
        if not self.clang:
            raise RuntimeError("clang not found on PATH")
        self.cxxfilt = shutil.which("c++filt") or shutil.which("llvm-cxxfilt")
        if not self.cxxfilt:
            raise RuntimeError("c++filt not found on PATH")
        if not compile_commands.is_file():
            raise RuntimeError(f"no compilation database: {compile_commands}")
        self.entries = json.loads(compile_commands.read_text())

    def build(self) -> CallGraph:
        edges: dict[str, set[str]] = {}
        mangled: set[str] = set()
        tus = 0
        for entry in self.entries:
            src = Path(entry["file"])
            if src.suffix != ".cpp" or "/src/" not in str(src):
                continue
            ir = self._emit_ir(entry)
            if ir is None:
                continue
            tus += 1
            for m in _DEFINE_RE.finditer(ir):
                caller = m.group(1)
                mangled.add(caller)
                body_start = ir.find("{", m.end())
                body_end = ir.find("\n}", body_start)
                body = ir[body_start:body_end if body_end >= 0 else len(ir)]
                for c in _CALL_RE.finditer(body):
                    edges.setdefault(caller, set()).add(c.group(1))
                    mangled.add(c.group(1))
        if tus == 0:
            raise RuntimeError("no TU compiled to IR")
        names = self._demangle(sorted(mangled))
        return self._to_graph(edges, names)

    def _emit_ir(self, entry: dict) -> str | None:
        args = entry.get("arguments") or shlex.split(entry["command"])
        cmd = [self.clang, "-S", "-emit-llvm", "-g0",
               "-fno-discard-value-names", "-O0"]
        skip_next = False
        for a in args[1:]:
            if skip_next:
                skip_next = False
                continue
            if a in ("-o", "-MF", "-MT", "-MQ"):
                skip_next = True
                continue
            if a in ("-c", "-MD", "-MMD") or a.endswith(".o"):
                continue
            cmd.append(a)
        with tempfile.NamedTemporaryFile(suffix=".ll", delete=False) as tmp:
            out = tmp.name
        cmd += ["-o", out]
        try:
            proc = subprocess.run(cmd, cwd=entry.get("directory", "."),
                                  capture_output=True, text=True, timeout=300)
            if proc.returncode != 0:
                return None
            return Path(out).read_text()
        except (OSError, subprocess.SubprocessError):
            return None
        finally:
            Path(out).unlink(missing_ok=True)

    def _demangle(self, symbols: list[str]) -> dict[str, str]:
        proc = subprocess.run([self.cxxfilt], input="\n".join(symbols),
                              capture_output=True, text=True, timeout=120)
        demangled = proc.stdout.splitlines()
        out: dict[str, str] = {}
        for sym, dem in zip(symbols, demangled):
            # strip template args + parameter list: keep the qname
            dem = dem.split("(", 1)[0].strip()
            dem = re.sub(r"<[^<>]*>", "", dem)
            dem = dem.split(" ")[-1]  # drop return type if present
            out[sym] = dem
        return out

    def _to_graph(self, edges: dict[str, set[str]],
                  names: dict[str, str]) -> CallGraph:
        graph = CallGraph(engine=self.name)
        stats = {"sites": 0, "resolved": 0, "external": 0, "unresolved": 0}
        known = set(self.model.functions)

        def to_qname(sym: str) -> str | None:
            dem = names.get(sym, "")
            if dem in known:
                return dem
            for qname in known:
                if dem.endswith("::" + qname) or qname.endswith("::" + dem):
                    return qname
            return None

        for caller_sym, callee_syms in edges.items():
            caller = to_qname(caller_sym)
            if caller is None:
                continue
            out = graph.calls.setdefault(caller, [])
            fns = self.model.functions[caller]
            for sym in sorted(callee_syms):
                callee = to_qname(sym)
                stats["sites"] += 1
                site = CallSite(name=_last(names.get(sym, sym)),
                                qualifier="", receiver="",
                                offset=0, line=fns[0].line)
                if callee is not None:
                    stats["resolved"] += 1
                    out.append(ResolvedCall(
                        site, self.model.functions[callee], "resolved"))
                else:
                    stats["external"] += 1
                    out.append(ResolvedCall(site, [], "external"))
        # IR edges carry no source offsets, so passes needing scope
        # precision (lock_rank nesting) still consult the model's sites;
        # mark the graph so they know.
        graph.stats = stats
        return graph


def build_graph(model: SourceModel, engine: str = "auto",
                compile_commands: Path | None = None) -> CallGraph:
    """engine: 'auto' | 'ir' | 'regex'."""
    if engine in ("auto", "ir") and compile_commands is not None:
        try:
            return IrEngine(model, compile_commands).build()
        except RuntimeError:
            if engine == "ir":
                raise
    elif engine == "ir":
        raise RuntimeError("ir engine requires --compile-commands")
    return RegexEngine(model).build()
