"""Fixture self-tests for tools/analyze.

Each seeded fixture under fixtures/ plants exactly one class of defect;
the corresponding pass must report it at the pinned path:line. The
clean fixture must pass every pass with zero findings, and the real
tree must be clean too (the regression half: a source change that
introduces an inversion, an impure fast path, a layering break, or doc
drift fails this test before it fails in CI).

Run directly (``python3 tools/analyze/selftest.py``) or via
``ctest -L analyze``.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

import callgraph  # noqa: E402
import cpp        # noqa: E402
import doc_drift  # noqa: E402
import layering   # noqa: E402
import lock_rank  # noqa: E402
import purity     # noqa: E402

FIXTURES = Path(__file__).resolve().parent / "fixtures"
REPO_ROOT = Path(__file__).resolve().parents[2]

_failures: list[str] = []


def check(ok: bool, label: str, detail: str = "") -> None:
    mark = "ok" if ok else "FAIL"
    print(f"[{mark}] {label}" + (f": {detail}" if detail and not ok else ""))
    if not ok:
        _failures.append(label)


def finding_keys(result: dict) -> set[tuple[str, int]]:
    """(path-suffix-after-fixture-root, line) for every finding."""
    keys = set()
    for f in result["findings"]:
        p = f["path"].replace("\\", "/")
        for marker in ("/src/", "/DESIGN.md"):
            idx = p.find(marker)
            if idx >= 0:
                p = p[idx + 1:]
                break
        keys.add((p, f["line"]))
    return keys


def dump(result: dict) -> str:
    return "; ".join(f"{f['path']}:{f['line']}: {f['message']}"
                     for f in result["findings"]) or "<none>"


def run_lock_rank(root: Path) -> dict:
    model = cpp.build_model(root)
    graph = callgraph.build_graph(model, engine="regex")
    return lock_rank.run(model, graph)


def run_purity(root: Path) -> dict:
    return purity.run(cpp.build_model(root))


# ---- seeded fixtures ------------------------------------------------------

def test_rank_inversion() -> None:
    result = run_lock_rank(FIXTURES / "rank_inversion")
    keys = finding_keys(result)
    expected = {
        ("src/info/widget.hpp", 20),  # direct: 100 under 200
        ("src/info/widget.hpp", 26),  # via call: low_op() under 200
    }
    check(keys == expected, "rank_inversion fixture detects both inversions",
          dump(result))


def test_impure_fast_path() -> None:
    result = run_purity(FIXTURES / "impure_fast_path")
    keys = finding_keys(result)
    expected = {
        ("src/info/cache.hpp", 19),  # lock acquisition
        ("src/info/cache.hpp", 20),  # push_back
        ("src/info/cache.hpp", 32),  # transitive to_string via helper()
    }
    check(keys == expected,
          "impure_fast_path fixture detects direct and transitive impurity",
          dump(result))
    check(result["stats"]["marked_roots"] == 2,
          "impure_fast_path fixture sees both marked roots "
          "(good_fast proven clean)", str(result["stats"]))


def test_layering_cycle() -> None:
    result = layering.run(FIXTURES / "layering_cycle")
    keys = finding_keys(result)
    expected = {
        ("src/obs/a.hpp", 7),  # upward include obs -> format
        ("src", 0),            # obs <-> format module cycle
    }
    check(keys == expected,
          "layering_cycle fixture detects the violation and the cycle",
          dump(result))
    check(any("cycle" in f["message"] for f in result["findings"]),
          "layering_cycle fixture reports the cycle as such", dump(result))
    check(len(result["exemptions"]) == 1
          and result["exemptions"][0]["line"] == 11
          and result["exemptions"][0]["justification"],
          "layering_cycle fixture records the analyze-allow include as an "
          "exemption with its justification", str(result["exemptions"]))


def test_doc_drift() -> None:
    result = doc_drift.run(FIXTURES / "doc_drift")
    keys = finding_keys(result)
    expected = {
        ("src/common/sync.hpp", 10),  # kDup duplicates kB's value
        ("DESIGN.md", 8),             # retired kRetired row
        ("DESIGN.md", 5),             # missing kB + kDup rows (header line)
    }
    check(keys == expected, "doc_drift fixture detects drift at pinned lines",
          dump(result))
    missing = [f for f in result["findings"] if "missing row" in f["message"]]
    check(len(missing) == 2 and {m for f in missing
                                 for m in ("kB", "kDup") if m in f["message"]}
          == {"kB", "kDup"},
          "doc_drift fixture reports both undocumented ranks", dump(result))


# ---- negative control -----------------------------------------------------

def test_clean_fixture() -> None:
    root = FIXTURES / "clean"
    for name, result in (
        ("lock-rank", run_lock_rank(root)),
        ("purity", run_purity(root)),
        ("layering", layering.run(root)),
        ("doc-drift", doc_drift.run(root)),
    ):
        check(not result["findings"],
              f"clean fixture passes {name}", dump(result))
    result = run_purity(root)
    check(result["stats"]["marked_roots"] == 1,
          "clean fixture purity proves its marked root", str(result["stats"]))


# ---- real-tree regression -------------------------------------------------

EXPECTED_ROOTS = {
    "ig::SnapshotCell::read",
    "ig::core::InfoGramService::try_serve_snapshot",
    "ig::info::ManagedProvider::snapshot_if_fresh",
    "ig::info::SystemMonitor::query_cached_fast",
    "ig::obs::Histogram::count_now",
    "ig::obs::Histogram::quantile_now",
    "ig::obs::TailSampler::count_quick_discard",
    "ig::obs::TailSampler::maybe_refresh_threshold",
    "ig::obs::TailSampler::quick_keep",
}


def test_real_tree() -> None:
    model = cpp.build_model(REPO_ROOT)
    graph = callgraph.build_graph(model, engine="regex")
    for name, result in (
        ("lock-rank", lock_rank.run(model, graph)),
        ("purity", purity.run(model)),
        ("layering", layering.run(REPO_ROOT)),
        ("doc-drift", doc_drift.run(REPO_ROOT)),
    ):
        check(not result["findings"], f"real tree is clean under {name}",
              dump(result))
    roots = set(purity.run(model)["roots"])
    check(EXPECTED_ROOTS <= roots,
          "purity pass covers the snapshot fast path and tail-sampler roots",
          f"missing: {sorted(EXPECTED_ROOTS - roots)}")
    check(model.mutexes and all(
        d.rank is not None for d in model.mutexes if d.rank_name),
        "every named rank constant resolved to a value")


def main() -> int:
    test_rank_inversion()
    test_impure_fast_path()
    test_layering_cycle()
    test_doc_drift()
    test_clean_fixture()
    test_real_tree()
    if _failures:
        print(f"selftest: {len(_failures)} failure(s)")
        return 1
    print("selftest: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
