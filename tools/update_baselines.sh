#!/usr/bin/env bash
# Regenerate the checked-in bench baselines (bench/baselines/BENCH_*.json).
#
# CI compares every release-leg bench run against these files with
# tools/bench_compare.py: absolute-throughput drifts warn (shared runners
# are noisy), enforced gates and broken inputs fail. Refresh the baselines
# deliberately — on a quiet machine, from a Release build — whenever a PR
# intentionally moves the numbers, and commit the diff with the change
# that caused it so the motivation is in the same review.
#
#   tools/update_baselines.sh [build-dir]     # default: build-check
#
# The build dir must already be configured Release (tools/check.sh --fast
# creates build-check); the script builds the bench targets, runs each
# bench with --json, and copies the reports into bench/baselines/.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-check}"
BASELINE_DIR="bench/baselines"

# The benches CI publishes and compares (keep in sync with the "Bench
# smoke" step in .github/workflows/ci.yml).
BENCHES=(
  bench_concurrent_load
  bench_fault_recovery
  bench_trace_overhead
  bench_profile_overhead
  bench_snapshot_read
  bench_directory_scale
)

if [ ! -f "${BUILD_DIR}/CMakeCache.txt" ]; then
  echo "update_baselines: ${BUILD_DIR} is not configured; run e.g." >&2
  echo "  cmake -B ${BUILD_DIR} -S . -DCMAKE_BUILD_TYPE=Release" >&2
  exit 2
fi
if ! grep -q 'CMAKE_BUILD_TYPE:STRING=Release' "${BUILD_DIR}/CMakeCache.txt"; then
  echo "update_baselines: ${BUILD_DIR} is not a Release build; baselines" >&2
  echo "must come from the configuration CI measures" >&2
  exit 2
fi

jobs=$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)
echo "==> build bench targets (${BUILD_DIR})"
cmake --build "${BUILD_DIR}" -j "${jobs}" --target "${BENCHES[@]}" >/dev/null

mkdir -p "${BASELINE_DIR}"
for bench in "${BENCHES[@]}"; do
  echo "==> ${bench} --json"
  (cd "${BUILD_DIR}" && "./bench/${bench}" --json >/dev/null)
  name="${bench#bench_}"
  cp "${BUILD_DIR}/BENCH_${name}.json" "${BASELINE_DIR}/BENCH_${name}.json"
  echo "    ${BASELINE_DIR}/BENCH_${name}.json"
done

echo "==> done; review and commit the diff:"
git -C . diff --stat -- "${BASELINE_DIR}" || true
