// GIIS — the aggregate index service of the MDS baseline (paper Sec. 3):
// "the aggregate service is used to integrate a set of information
// providers that may be part of a virtual organization", with an
// "information caching function that allows viewing and querying the
// information about a resource from a cache" (MDS 2.0 behaviour).
//
// A Giis aggregates SearchBackends (Gris instances, remote proxies, or
// other Giis — hierarchies compose). Searches are served from a cached
// copy of all children's entries, refreshed when older than the cache TTL.
#pragma once

#include <memory>
#include <vector>

#include "common/clock.hpp"
#include "common/sync.hpp"
#include "mds/gris.hpp"
#include "obs/telemetry.hpp"

namespace ig::mds {

class Giis final : public SearchBackend {
 public:
  /// `vo_name` roots the aggregate at "vo=<name>, o=Grid".
  Giis(std::string vo_name, const Clock& clock, Duration cache_ttl = seconds(30));

  /// Register a child backend (GRIS registration in MDS terms).
  void register_child(std::shared_ptr<SearchBackend> child);
  std::size_t child_count() const;

  Result<std::vector<DirectoryEntry>> search(const std::string& base, Scope scope,
                                             const Filter& filter) override;
  std::string suffix() const override { return "o=Grid"; }

  /// Cache effectiveness counters for the benchmarks.
  std::uint64_t cache_hits() const { return hits_.load(std::memory_order_relaxed); }
  std::uint64_t cache_misses() const { return misses_.load(std::memory_order_relaxed); }

  const std::string& vo_name() const { return vo_name_; }

  /// Mirror searches and cache hit/miss into shared metrics
  /// (mds.giis.searches / mds.giis.cache.*). Nullable.
  void set_telemetry(std::shared_ptr<obs::Telemetry> telemetry) {
    MutexLock lock(mu_);
    telemetry_ = std::move(telemetry);
  }

 private:
  Status refresh_if_stale();

  std::string vo_name_;
  const Clock& clock_;
  Duration cache_ttl_;

  /// Unranked on purpose: GIIS hierarchies refresh parent-over-child, so
  /// two Giis locks of the same class legitimately nest (a fixed rank
  /// cannot order that). Recursive acquisition of one instance is still
  /// caught by the validator.
  mutable Mutex mu_{lock_rank::kUnranked, "mds.Giis"};
  std::vector<std::shared_ptr<SearchBackend>> children_ IG_GUARDED_BY(mu_);
  TimePoint last_refresh_ IG_GUARDED_BY(mu_){-1};
  Directory cache_ IG_GUARDED_BY(mu_);
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::shared_ptr<obs::Telemetry> telemetry_ IG_GUARDED_BY(mu_);
};

}  // namespace ig::mds
