// GIIS — the aggregate index service of the MDS baseline (paper Sec. 3):
// "the aggregate service is used to integrate a set of information
// providers that may be part of a virtual organization", with an
// "information caching function that allows viewing and querying the
// information about a resource from a cache" (MDS 2.0 behaviour).
//
// A Giis aggregates SearchBackends (Gris instances, remote proxies, or
// other Giis — hierarchies compose). Searches are served from a cached
// copy of all children's entries, refreshed when older than the cache TTL.
//
// Registrations may carry a lease (MDS soft-state registration): a child
// that stops re-registering before its lease runs out is dropped at the
// next refresh. Re-registering through the registration path replaces the
// previous child with the same suffix — renewal and restart-recovery are
// the same message, and duplicates cannot accumulate.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "common/sync.hpp"
#include "mds/gris.hpp"
#include "obs/telemetry.hpp"

namespace ig::mds {

class ReplicationCoordinator;

class Giis final : public SearchBackend {
 public:
  /// How a child is registered (MDS soft-state registration semantics).
  struct Registration {
    /// Registration lifetime; the child is dropped once `lease` elapses
    /// without a renewal. nullopt = permanent (direct in-process wiring).
    std::optional<Duration> lease;
    /// Replace an existing child with the same suffix instead of
    /// appending — re-registration then renews the lease in place. The
    /// wire registration path sets this; direct wiring keeps appends
    /// (sibling Giis legitimately share the "o=Grid" suffix).
    bool replace = false;
  };

  /// `vo_name` roots the aggregate at "vo=<name>, o=Grid".
  Giis(std::string vo_name, const Clock& clock, Duration cache_ttl = seconds(30));

  /// Register a child backend (GRIS registration in MDS terms).
  void register_child(std::shared_ptr<SearchBackend> child);
  void register_child(std::shared_ptr<SearchBackend> child, Registration reg);
  std::size_t child_count() const;

  Result<std::vector<DirectoryEntry>> search(const std::string& base, Scope scope,
                                             const Filter& filter) override;
  std::string suffix() const override { return "o=Grid"; }

  /// Cache effectiveness counters for the benchmarks.
  std::uint64_t cache_hits() const { return hits_.load(std::memory_order_relaxed); }
  std::uint64_t cache_misses() const { return misses_.load(std::memory_order_relaxed); }

  /// Children dropped because their lease ran out unrenewed.
  std::uint64_t expired_children() const {
    return expired_.load(std::memory_order_relaxed);
  }
  /// Refresh pulls that failed but were shielded by the child's last
  /// successful entry set (the aggregate stayed available, serving the
  /// child stale instead of failing the whole search).
  std::uint64_t stale_child_serves() const {
    return stale_served_.load(std::memory_order_relaxed);
  }

  const std::string& vo_name() const { return vo_name_; }

  /// Mirror searches and cache hit/miss into shared metrics
  /// (mds.giis.searches / mds.giis.cache.*). Nullable.
  void set_telemetry(std::shared_ptr<obs::Telemetry> telemetry) {
    MutexLock lock(mu_);
    telemetry_ = std::move(telemetry);
  }

  /// Publish the aggregate view into a replicated index after every
  /// successful refresh: changed/new entries are put, disappeared DNs
  /// erased — the diff keeps shard generations quiet when nothing moved.
  /// Nullable to detach.
  void set_replication(std::shared_ptr<ReplicationCoordinator> coordinator) {
    MutexLock lock(mu_);
    replication_ = std::move(coordinator);
  }

 private:
  struct Child {
    std::shared_ptr<SearchBackend> backend;
    std::string suffix;
    std::optional<Duration> lease;
    TimePoint registered_at{-1};
    /// Stale-serve shield: the entries of the last successful pull, used
    /// when a refresh pull fails so one dead child cannot take down the
    /// whole aggregate. Staleness is bounded by the child's lease.
    TimePoint last_success{-1};
    std::vector<DirectoryEntry> last_entries;
  };

  Status refresh_if_stale();
  void prune_expired_locked(TimePoint now) IG_REQUIRES(mu_);
  void publish_replication_locked() IG_REQUIRES(mu_);

  std::string vo_name_;
  const Clock& clock_;
  Duration cache_ttl_;

  /// Unranked on purpose: GIIS hierarchies refresh parent-over-child, so
  /// two Giis locks of the same class legitimately nest (a fixed rank
  /// cannot order that). Recursive acquisition of one instance is still
  /// caught by the validator.
  mutable Mutex mu_{lock_rank::kUnranked, "mds.Giis"};
  std::vector<Child> children_ IG_GUARDED_BY(mu_);
  TimePoint last_refresh_ IG_GUARDED_BY(mu_){-1};
  Directory cache_ IG_GUARDED_BY(mu_);
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> expired_{0};
  std::atomic<std::uint64_t> stale_served_{0};
  std::shared_ptr<obs::Telemetry> telemetry_ IG_GUARDED_BY(mu_);
  std::shared_ptr<ReplicationCoordinator> replication_ IG_GUARDED_BY(mu_);
  /// DN -> serialized entry as last pushed to the replicated index.
  std::map<std::string, std::string> published_ IG_GUARDED_BY(mu_);
};

}  // namespace ig::mds
