#include "mds/gris.hpp"

#include "common/strings.hpp"

namespace ig::mds {

DirectoryEntry record_to_entry(const format::InfoRecord& record, const std::string& host) {
  DirectoryEntry entry;
  entry.dn = "kw=" + record.keyword + ", host=" + host + ", o=Grid";
  entry.add("objectclass", "InfoGramRecord");
  entry.add("kw", record.keyword);
  entry.add("generated", std::to_string(record.generated_at.count()));
  for (const auto& attr : record.attributes) {
    entry.add(attr.name, attr.value);
    entry.add(attr.name + ";quality", strings::format("%.2f", attr.quality));
  }
  return entry;
}

Gris::Gris(std::shared_ptr<info::SystemMonitor> monitor, std::string host, const Clock& clock)
    : monitor_(std::move(monitor)), host_(std::move(host)), clock_(clock) {
  DirectoryEntry resource;
  resource.dn = suffix();
  resource.add("objectclass", "GridResource");
  resource.add("hostname", host_);
  directory_.put(std::move(resource));
}

Status Gris::refresh() {
  auto records = monitor_->query({"all"}, rsl::ResponseMode::kCached);
  if (!records.ok()) return records.error();
  for (const auto& record : records.value()) {
    directory_.put(record_to_entry(record, host_));
  }
  return Status::success();
}

Result<std::vector<DirectoryEntry>> Gris::search(const std::string& base, Scope scope,
                                                 const Filter& filter) {
  if (telemetry_ != nullptr) {
    telemetry_->metrics().counter(obs::metric::kMdsGrisSearches).add();
  }
  if (auto status = refresh(); !status.ok()) return status.error();
  return ig::mds::search(directory_, base, scope, filter);
}

}  // namespace ig::mds
