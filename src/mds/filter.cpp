#include "mds/filter.hpp"

#include <cctype>

#include "common/strings.hpp"

namespace ig::mds {

namespace {

class FilterParser {
 public:
  explicit FilterParser(std::string_view text) : text_(text) {}

  Result<Filter> parse() {
    skip_ws();
    auto f = parse_filter();
    if (!f.ok()) return f;
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing input after filter");
    return f;
  }

 private:
  Result<Filter> parse_filter() {
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != '(') return fail("expected '('");
    ++pos_;
    skip_ws();
    if (pos_ >= text_.size()) return fail("unterminated filter");
    Filter filter;
    char c = text_[pos_];
    if (c == '&' || c == '|') {
      ++pos_;
      filter.kind = c == '&' ? Filter::Kind::kAnd : Filter::Kind::kOr;
      while (true) {
        skip_ws();
        if (pos_ < text_.size() && text_[pos_] == ')') {
          ++pos_;
          return filter;
        }
        auto child = parse_filter();
        if (!child.ok()) return child;
        filter.children.push_back(std::move(child.value()));
      }
    }
    if (c == '!') {
      ++pos_;
      filter.kind = Filter::Kind::kNot;
      auto child = parse_filter();
      if (!child.ok()) return child;
      filter.children.push_back(std::move(child.value()));
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ')') return fail("expected ')' after !");
      ++pos_;
      return filter;
    }
    // Comparison: attr ( '=' | '>=' | '<=' ) value
    std::string attr;
    while (pos_ < text_.size() && text_[pos_] != '=' && text_[pos_] != '>' &&
           text_[pos_] != '<' && text_[pos_] != ')') {
      attr += text_[pos_++];
    }
    attr = std::string(strings::trim(attr));
    if (attr.empty()) return fail("expected attribute name");
    if (pos_ >= text_.size()) return fail("unterminated comparison");
    if (text_[pos_] == '=') {
      filter.kind = Filter::Kind::kEquality;
      ++pos_;
    } else {
      char op = text_[pos_++];
      if (pos_ >= text_.size() || text_[pos_] != '=') return fail("expected '='");
      ++pos_;
      filter.kind = op == '>' ? Filter::Kind::kGreaterEq : Filter::Kind::kLessEq;
    }
    filter.attribute = attr;
    std::string value;
    while (pos_ < text_.size() && text_[pos_] != ')') value += text_[pos_++];
    if (pos_ >= text_.size()) return fail("unterminated comparison value");
    ++pos_;
    filter.value = std::string(strings::trim(value));
    return filter;
  }

  void skip_ws() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) ++pos_;
  }
  Error fail(std::string what) const {
    return Error(ErrorCode::kParseError,
                 std::move(what) + " at offset " + std::to_string(pos_));
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

bool compare(const std::string& have, const std::string& want, bool greater) {
  auto lhs = strings::parse_double(have);
  auto rhs = strings::parse_double(want);
  if (lhs && rhs) return greater ? *lhs >= *rhs : *lhs <= *rhs;
  int cmp = have.compare(want);
  return greater ? cmp >= 0 : cmp <= 0;
}

}  // namespace

bool Filter::matches(const DirectoryEntry& entry) const {
  switch (kind) {
    case Kind::kAnd:
      for (const Filter& child : children) {
        if (!child.matches(entry)) return false;
      }
      return true;
    case Kind::kOr:
      for (const Filter& child : children) {
        if (child.matches(entry)) return true;
      }
      return false;
    case Kind::kNot:
      return children.empty() || !children.front().matches(entry);
    case Kind::kEquality:
    case Kind::kGreaterEq:
    case Kind::kLessEq: {
      auto it = entry.attributes.find(attribute);
      if (it == entry.attributes.end()) return false;
      for (const std::string& have : it->second) {
        if (kind == Kind::kEquality) {
          if (strings::glob_match(value, have)) return true;
        } else if (compare(have, value, kind == Kind::kGreaterEq)) {
          return true;
        }
      }
      return false;
    }
  }
  return false;
}

Result<Filter> Filter::parse(std::string_view text) { return FilterParser(text).parse(); }

std::string Filter::to_string() const {
  switch (kind) {
    case Kind::kAnd:
    case Kind::kOr: {
      std::string out = kind == Kind::kAnd ? "(&" : "(|";
      for (const Filter& child : children) out += child.to_string();
      return out + ")";
    }
    case Kind::kNot:
      return "(!" + (children.empty() ? std::string() : children.front().to_string()) + ")";
    case Kind::kEquality:
      return "(" + attribute + "=" + value + ")";
    case Kind::kGreaterEq:
      return "(" + attribute + ">=" + value + ")";
    case Kind::kLessEq:
      return "(" + attribute + "<=" + value + ")";
  }
  return "()";
}

Filter Filter::match_all() {
  Filter f;
  f.kind = Kind::kEquality;
  f.attribute = "objectclass";
  f.value = "*";
  return f;
}

std::vector<DirectoryEntry> search(const Directory& directory, const std::string& base,
                                   Scope scope, const Filter& filter) {
  std::vector<DirectoryEntry> out;
  for (auto& entry : directory.in_scope(base, scope)) {
    if (filter.matches(entry)) out.push_back(std::move(entry));
  }
  return out;
}

std::vector<DirectoryEntry> search(const EntryMap& entries, const std::string& base,
                                   Scope scope, const Filter& filter) {
  std::vector<DirectoryEntry> out;
  for (auto& entry : entries_in_scope(entries, base, scope)) {
    if (filter.matches(entry)) out.push_back(std::move(entry));
  }
  return out;
}

}  // namespace ig::mds
