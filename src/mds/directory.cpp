#include "mds/directory.hpp"

#include "common/strings.hpp"
#include "format/ldif.hpp"

namespace ig::mds {

void DirectoryEntry::add(const std::string& name, std::string value) {
  attributes[name].push_back(std::move(value));
}

std::string DirectoryEntry::first(const std::string& name) const {
  auto it = attributes.find(name);
  if (it == attributes.end() || it->second.empty()) return "";
  return it->second.front();
}

std::string DirectoryEntry::serialize() const {
  std::string out;
  auto emit = [&out](const std::string& name, const std::string& value) {
    if (format::ldif_safe(value) && !value.empty()) {
      out += name + ": " + value + "\n";
    } else if (value.empty()) {
      out += name + ":\n";
    } else {
      out += name + ":: " + format::base64_encode(value) + "\n";
    }
  };
  emit("dn", dn);
  for (const auto& [name, values] : attributes) {
    for (const auto& value : values) emit(name, value);
  }
  out += "\n";
  return out;
}

Result<std::vector<DirectoryEntry>> DirectoryEntry::parse_all(const std::string& text) {
  std::vector<DirectoryEntry> entries;
  DirectoryEntry current;
  bool in_entry = false;
  auto finish = [&]() {
    if (in_entry) entries.push_back(std::move(current));
    current = DirectoryEntry{};
    in_entry = false;
  };
  for (const auto& line : strings::split(text, '\n')) {
    if (strings::trim(line).empty()) {
      finish();
      continue;
    }
    // Separator logic matches format::parse_ldif: names may contain ':'.
    std::size_t b64 = line.find(":: ");
    std::size_t plain = line.find(": ");
    std::string name;
    std::string value;
    if (b64 != std::string::npos && (plain == std::string::npos || b64 < plain)) {
      name = line.substr(0, b64);
      auto decoded = format::base64_decode(strings::trim(line.substr(b64 + 3)));
      if (!decoded.ok()) return decoded.error();
      value = std::move(decoded.value());
    } else if (plain != std::string::npos) {
      name = line.substr(0, plain);
      value = line.substr(plain + 2);
    } else if (!line.empty() && line.back() == ':') {
      name = line.substr(0, line.size() - 1);
    } else {
      return Error(ErrorCode::kParseError, "entry line missing separator: " + line);
    }
    if (name == "dn") {
      finish();
      in_entry = true;
      current.dn = value;
    } else if (in_entry) {
      current.add(name, std::move(value));
    } else {
      return Error(ErrorCode::kParseError, "attribute before dn: " + line);
    }
  }
  finish();
  return entries;
}

std::string_view to_string(Scope scope) {
  switch (scope) {
    case Scope::kBase:
      return "base";
    case Scope::kOneLevel:
      return "one";
    case Scope::kSubtree:
      return "sub";
  }
  return "?";
}

Result<Scope> scope_from_string(std::string_view name) {
  if (name == "base") return Scope::kBase;
  if (name == "one") return Scope::kOneLevel;
  if (name == "sub") return Scope::kSubtree;
  return Error(ErrorCode::kParseError, "unknown scope: " + std::string(name));
}

std::vector<std::string> dn_components(const std::string& dn) {
  std::vector<std::string> out;
  for (const auto& raw : strings::split(dn, ',')) {
    auto comp = strings::trim(raw);
    if (comp.empty()) continue;
    std::size_t eq = comp.find('=');
    if (eq == std::string_view::npos) {
      out.emplace_back(comp);
      continue;
    }
    out.push_back(strings::to_lower(strings::trim(comp.substr(0, eq))) + "=" +
                  std::string(strings::trim(comp.substr(eq + 1))));
  }
  return out;
}

std::string normalize_dn(const std::string& dn) {
  std::vector<std::string> comps = dn_components(dn);
  return strings::join(comps, ", ");
}

bool dn_under(const std::string& dn, const std::string& base) {
  return dn_depth_below(dn, base) >= 0;
}

int dn_depth_below(const std::string& dn, const std::string& base) {
  return dn_depth_below(dn_components(dn), dn_components(base));
}

int dn_depth_below(const std::vector<std::string>& dn,
                   const std::vector<std::string>& base) {
  if (base.size() > dn.size()) return -1;
  for (std::size_t i = 0; i < base.size(); ++i) {
    if (dn[dn.size() - 1 - i] != base[base.size() - 1 - i]) return -1;
  }
  return static_cast<int>(dn.size() - base.size());
}

std::vector<DirectoryEntry> entries_in_scope(const EntryMap& entries,
                                             const std::string& base, Scope scope) {
  std::vector<DirectoryEntry> out;
  std::vector<std::string> base_comps = dn_components(base);
  if (scope == Scope::kBase) {
    auto it = entries.find(strings::join(base_comps, ", "));
    if (it != entries.end()) out.push_back(it->second);
    return out;
  }
  for (const auto& [dn, entry] : entries) {
    int depth = dn_depth_below(dn_components(dn), base_comps);
    if (depth < 0) continue;
    if (scope == Scope::kSubtree || depth == 1) out.push_back(entry);
  }
  return out;
}

void Directory::put(DirectoryEntry entry) {
  entry.dn = normalize_dn(entry.dn);
  MutexLock lock(mu_);
  entries_[entry.dn] = std::move(entry);
}

void Directory::erase(const std::string& dn) {
  MutexLock lock(mu_);
  entries_.erase(normalize_dn(dn));
}

void Directory::clear() {
  MutexLock lock(mu_);
  entries_.clear();
}

Result<DirectoryEntry> Directory::get(const std::string& dn) const {
  MutexLock lock(mu_);
  auto it = entries_.find(normalize_dn(dn));
  if (it == entries_.end()) return Error(ErrorCode::kNotFound, "no entry: " + dn);
  return it->second;
}

std::size_t Directory::size() const {
  MutexLock lock(mu_);
  return entries_.size();
}

std::vector<DirectoryEntry> Directory::in_scope(const std::string& base, Scope scope) const {
  MutexLock lock(mu_);
  return entries_in_scope(entries_, base, scope);
}

}  // namespace ig::mds
