// GRIS — the Grid Resource Information Service of the MDS baseline
// (paper Sec. 3/4): the per-resource information server. It publishes the
// local SystemMonitor's providers as directory entries under
// "host=<h>, o=Grid" and answers scoped, filtered searches.
//
// This is also the backwards-compatibility vehicle the paper stresses:
// the same providers InfoGram serves over xRSL "can still be integrated
// into the existing MDS concept" by fronting them with a Gris.
#pragma once

#include <memory>

#include "common/clock.hpp"
#include "info/system_monitor.hpp"
#include "mds/filter.hpp"
#include "obs/telemetry.hpp"

namespace ig::mds {

/// Anything a GIIS can aggregate: a GRIS, another GIIS, or a remote proxy.
class SearchBackend {
 public:
  virtual ~SearchBackend() = default;
  virtual Result<std::vector<DirectoryEntry>> search(const std::string& base, Scope scope,
                                                     const Filter& filter) = 0;
  /// The DN suffix this backend's entries live under.
  virtual std::string suffix() const = 0;
};

class Gris final : public SearchBackend {
 public:
  /// Publishes `monitor`'s keywords for resource `host`.
  Gris(std::shared_ptr<info::SystemMonitor> monitor, std::string host, const Clock& clock);

  Result<std::vector<DirectoryEntry>> search(const std::string& base, Scope scope,
                                             const Filter& filter) override;
  std::string suffix() const override { return "host=" + host_ + ", o=Grid"; }

  const std::string& host() const { return host_; }

  /// Count directory searches (mds.gris.searches). Nullable.
  void set_telemetry(std::shared_ptr<obs::Telemetry> telemetry) {
    telemetry_ = std::move(telemetry);
  }

 private:
  /// Pull current provider data (cached response mode — the providers'
  /// TTLs decide whether commands actually run) into the directory.
  Status refresh();

  std::shared_ptr<info::SystemMonitor> monitor_;
  std::string host_;
  const Clock& clock_;
  Directory directory_;
  std::shared_ptr<obs::Telemetry> telemetry_;
};

/// Convert one information record into its GRIS directory entry.
DirectoryEntry record_to_entry(const format::InfoRecord& record, const std::string& host);

}  // namespace ig::mds
