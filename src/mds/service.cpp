#include "mds/service.hpp"

#include "common/strings.hpp"
#include "net/traced.hpp"
#include "obs/propagation.hpp"

namespace ig::mds {

MdsService::MdsService(std::shared_ptr<SearchBackend> backend,
                       security::Credential credential, const security::TrustStore* trust,
                       const Clock* clock, std::shared_ptr<logging::Logger> logger,
                       std::shared_ptr<Giis> registrar)
    : backend_(std::move(backend)),
      credential_(credential),
      trust_(trust),
      clock_(clock),
      // MDS authenticates but needs no local account: no gridmap.
      authenticator_(std::move(credential), trust, nullptr, clock),
      logger_(std::move(logger)),
      registrar_(std::move(registrar)) {}

Status MdsService::start(net::Network& network, const net::Address& address) {
  network_ = &network;
  address_ = address;
  return network.listen(address, authenticator_.wrap([this](const net::Message& req,
                                                            net::Session& session) {
    return handle(req, session);
  }));
}

void MdsService::stop() {
  if (network_ != nullptr) network_->close(address_);
}

void MdsService::set_telemetry(std::shared_ptr<obs::Telemetry> telemetry) {
  telemetry_ = std::move(telemetry);
}

net::Message MdsService::handle(const net::Message& request, net::Session& session) {
  // A hierarchy node is one hop of a distributed query: join the caller's
  // trace (or root a new one), serve, and backhaul our spans — including
  // any we adopted from children we forwarded to.
  return net::serve_traced(telemetry_, request.verb, request, session,
                           [this](const net::Message& req, net::Session& s) {
                             return serve(req, s);
                           });
}

net::Message MdsService::serve(const net::Message& request, net::Session& session) {
  if (request.verb == "MDS_REGISTER") {
    if (registrar_ == nullptr) {
      return net::Message::error(
          Error(ErrorCode::kInvalidArgument, "this MDS endpoint is not an aggregate"));
    }
    auto suffix = request.header("suffix");
    auto host = request.header("host");
    auto port = ig::strings::parse_int(request.header_or("port", ""));
    if (!suffix || !host || !port) {
      return net::Message::error(Error(ErrorCode::kInvalidArgument,
                                       "MDS_REGISTER needs suffix, host and port headers"));
    }
    // Soft-state registration: an optional lease makes the entry expire
    // unless the GRIS re-registers (which replaces the child in place —
    // renewal and restart-recovery are the same message).
    Giis::Registration reg;
    reg.replace = true;
    if (auto lease = ig::strings::parse_int(request.header_or("lease_ms", ""));
        lease && *lease > 0) {
      reg.lease = ms(*lease);
    }
    // The aggregate pulls from the child with its own (host) credential.
    auto client = std::make_shared<MdsClient>(
        *network_, net::Address{*host, static_cast<int>(*port)}, credential_, *trust_,
        *clock_);
    registrar_->register_child(std::make_shared<RemoteBackend>(std::move(client), *suffix),
                               reg);
    if (logger_ != nullptr) {
      logger_->log(logging::EventType::kAuth, session.authenticated_subject().value_or(""),
                   "", 0, "mds_register " + *suffix);
    }
    return net::Message::ok();
  }
  if (request.verb == "MDS_KEYWORD") {
    SearchOptions options;
    options.base = request.header_or("base", backend_->suffix());
    if (auto n = ig::strings::parse_int(request.header_or("max_hits", "10")); n && *n > 0) {
      options.max_hits = static_cast<std::size_t>(*n);
    }
    auto hits = ig::mds::keyword_search(*backend_, request.body, options);
    if (!hits.ok()) return net::Message::error(hits.error());
    if (logger_ != nullptr) {
      logger_->log(logging::EventType::kInfoQuery,
                   session.authenticated_subject().value_or(""), "", 0,
                   "mds_keyword " + request.body);
    }
    // Carry the rank score as an extra attribute on each entry.
    std::string body;
    for (const auto& hit : hits.value()) {
      DirectoryEntry scored = hit.entry;
      scored.add("ig-score", ig::strings::format("%.2f", hit.score));
      body += scored.serialize();
    }
    net::Message resp = net::Message::ok(std::move(body));
    resp.with("count", std::to_string(hits->size()));
    return resp;
  }
  if (request.verb != "MDS_SEARCH") {
    return net::Message::error(
        Error(ErrorCode::kInvalidArgument, "unknown MDS verb: " + request.verb));
  }
  std::string base = request.header_or("base", backend_->suffix());
  auto scope = scope_from_string(request.header_or("scope", "sub"));
  if (!scope.ok()) return net::Message::error(scope.error());
  auto filter = Filter::parse(request.header_or("filter", Filter::match_all().to_string()));
  if (!filter.ok()) return net::Message::error(filter.error());

  // The backend walk is this hop's own work (a Giis walking children goes
  // back on the wire inside it, nesting rpc/connect spans under this one).
  std::optional<obs::TraceContext::Span> search_span;
  std::optional<obs::TraceScope> search_scope;
  obs::TraceContext* ctx = obs::active_trace().ctx;
  if (ctx != nullptr) {
    search_span.emplace(ctx->span("mds:search:" + base, obs::active_trace().span_id));
    // Nest forwarded-hop spans under the search span, not the root.
    search_scope.emplace(*ctx, search_span->id());
  }
  auto entries = backend_->search(base, scope.value(), filter.value());
  search_scope.reset();
  if (!entries.ok()) {
    if (search_span) search_span->end("error:" + entries.error().to_string());
    return net::Message::error(entries.error());
  }
  search_span.reset();

  if (logger_ != nullptr) {
    logger_->log(logging::EventType::kInfoQuery,
                 session.authenticated_subject().value_or(""), "", 0,
                 "mds_search " + filter->to_string());
  }
  std::string body;
  for (const auto& entry : entries.value()) body += entry.serialize();
  net::Message resp = net::Message::ok(std::move(body));
  resp.with("count", std::to_string(entries->size()));
  return resp;
}

MdsClient::MdsClient(net::Network& network, net::Address address,
                     security::Credential credential, const security::TrustStore& trust,
                     const Clock& clock)
    : network_(network),
      address_(std::move(address)),
      credential_(std::move(credential)),
      trust_(trust),
      clock_(clock) {}

Status MdsClient::ensure_connected() {
  if (connection_ != nullptr) return Status::success();
  auto conn = network_.connect(address_);
  if (!conn.ok()) return conn.error();
  connection_ = std::move(conn.value());
  auto auth = security::authenticate(*connection_, credential_, trust_, clock_);
  if (!auth.ok()) {
    closed_stats_.merge(connection_->stats());
    connection_.reset();
    return auth.error();
  }
  return Status::success();
}

Result<std::vector<DirectoryEntry>> MdsClient::search(const std::string& base, Scope scope,
                                                      const Filter& filter) {
  if (auto status = ensure_connected(); !status.ok()) return status.error();
  net::Message req("MDS_SEARCH");
  req.with("base", base);
  req.with("scope", std::string(to_string(scope)));
  req.with("filter", filter.to_string());
  auto resp = connection_->request(req);
  if (!resp.ok()) return resp.error();
  if (resp->is_error()) return net::Message::to_error(*resp);
  return DirectoryEntry::parse_all(resp->body);
}

net::TrafficStats MdsClient::stats() const {
  net::TrafficStats total = closed_stats_;
  if (connection_ != nullptr) total.merge(connection_->stats());
  return total;
}

void MdsClient::disconnect() {
  if (connection_ != nullptr) {
    closed_stats_.merge(connection_->stats());
    connection_.reset();
  }
}

Status MdsClient::register_backend(const std::string& suffix, const net::Address& address,
                                   std::optional<Duration> lease) {
  if (auto status = ensure_connected(); !status.ok()) return status;
  net::Message req("MDS_REGISTER");
  req.with("suffix", suffix);
  req.with("host", address.host);
  req.with("port", std::to_string(address.port));
  if (lease.has_value()) {
    req.with("lease_ms", std::to_string(lease->count() / 1000));
  }
  auto resp = connection_->request(req);
  if (!resp.ok()) return resp.error();
  if (resp->is_error()) return net::Message::to_error(*resp);
  return Status::success();
}

Result<std::vector<SearchHit>> MdsClient::keyword_search(const std::string& query,
                                                          std::size_t max_hits) {
  if (auto status = ensure_connected(); !status.ok()) return status.error();
  net::Message req("MDS_KEYWORD", query);
  req.with("max_hits", std::to_string(max_hits));
  auto resp = connection_->request(req);
  if (!resp.ok()) return resp.error();
  if (resp->is_error()) return net::Message::to_error(*resp);
  auto entries = DirectoryEntry::parse_all(resp->body);
  if (!entries.ok()) return entries.error();
  std::vector<SearchHit> hits;
  for (auto& entry : entries.value()) {
    SearchHit hit;
    hit.score = strings::parse_double(entry.first("ig-score")).value_or(0.0);
    entry.attributes.erase("ig-score");
    hit.entry = std::move(entry);
    hits.push_back(std::move(hit));
  }
  return hits;
}

RemoteBackend::RemoteBackend(std::shared_ptr<MdsClient> client, std::string suffix)
    : client_(std::move(client)), suffix_(std::move(suffix)) {}

Result<std::vector<DirectoryEntry>> RemoteBackend::search(const std::string& base,
                                                          Scope scope, const Filter& filter) {
  return client_->search(base, scope, filter);
}

}  // namespace ig::mds
