// Google-like keyword search over the directory (paper Sec. 3: "we argue
// that it is worthwhile to provide google-like services, as have been
// used in many previous Grid like projects").
//
// LDAP filters require knowing the schema; keyword search does not. A
// free-text query ("memory 512 anl") is tokenized and scored against
// every entry in a SearchBackend's subtree: a token matching an attribute
// *name* scores higher than one matching a *value*, DN matches highest.
// Results are ranked by total score, ties broken by DN.
#pragma once

#include "mds/gris.hpp"

namespace ig::mds {

struct SearchHit {
  DirectoryEntry entry;
  double score = 0.0;
};

struct SearchOptions {
  std::string base = "o=Grid";
  std::size_t max_hits = 10;
  double dn_weight = 3.0;
  double name_weight = 2.0;
  double value_weight = 1.0;
};

/// Tokenize a free-text query: lower-cased, split on whitespace, empty
/// tokens dropped.
std::vector<std::string> tokenize_query(const std::string& query);

/// Score one entry against tokens (exposed for tests).
double score_entry(const DirectoryEntry& entry, const std::vector<std::string>& tokens,
                   const SearchOptions& options);

/// Ranked keyword search over the backend's subtree.
Result<std::vector<SearchHit>> keyword_search(SearchBackend& backend,
                                              const std::string& query,
                                              const SearchOptions& options = {});

}  // namespace ig::mds
