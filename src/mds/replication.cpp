#include "mds/replication.hpp"

#include <algorithm>
#include <utility>

#include "common/id.hpp"
#include "common/strings.hpp"
#include "net/traced.hpp"

namespace ig::mds {

namespace {

// Wire attribute names for ReplicationOp framing. "ig-" prefixed like the
// other protocol-level attributes (ig-score), so they cannot collide with
// provider attributes.
constexpr const char* kGenAttr = "ig-gen";
constexpr const char* kTombstoneAttr = "ig-tombstone";

void count(const std::shared_ptr<obs::Telemetry>& telemetry, const char* name,
           std::uint64_t n = 1) {
  if (telemetry != nullptr && n > 0) telemetry->metrics().counter(name).add(n);
}

}  // namespace

// ---- ShardMap --------------------------------------------------------------

ShardMap::ShardMap(std::size_t shard_count)
    : shard_count_(std::max<std::size_t>(1, shard_count)) {}

std::string ShardMap::shard_key(const std::string& dn) {
  std::vector<std::string> comps = dn_components(dn);
  // The component just below the root names the resource/VO subtree;
  // root-level DNs (and the root itself) share key "".
  if (comps.size() < 2) return "";
  return comps[comps.size() - 2];
}

std::size_t ShardMap::shard_of(const std::string& dn) const {
  if (shard_count_ == 1) return 0;
  return fnv1a(shard_key(dn)) % shard_count_;
}

// ---- ReplicationOp ---------------------------------------------------------

std::string ReplicationOp::serialize() const {
  DirectoryEntry wire = entry;
  wire.attributes[kGenAttr] = {std::to_string(generation)};
  if (tombstone) wire.attributes[kTombstoneAttr] = {"1"};
  return wire.serialize();
}

Result<std::vector<ReplicationOp>> ReplicationOp::parse_all(const std::string& body) {
  auto entries = DirectoryEntry::parse_all(body);
  if (!entries.ok()) return entries.error();
  std::vector<ReplicationOp> ops;
  ops.reserve(entries->size());
  for (auto& entry : entries.value()) {
    ReplicationOp op;
    auto gen = strings::parse_int(entry.first(kGenAttr));
    if (!gen || *gen <= 0) {
      return Error(ErrorCode::kParseError, "replication op missing ig-gen: " + entry.dn);
    }
    op.generation = static_cast<std::uint64_t>(*gen);
    op.tombstone = entry.has(kTombstoneAttr);
    entry.attributes.erase(kGenAttr);
    entry.attributes.erase(kTombstoneAttr);
    op.entry = std::move(entry);
    ops.push_back(std::move(op));
  }
  return ops;
}

// ---- ReplicaStore ----------------------------------------------------------

ReplicaStore::ReplicaStore(std::size_t shard_count) {
  shards_.reserve(std::max<std::size_t>(1, shard_count));
  for (std::size_t i = 0; i < std::max<std::size_t>(1, shard_count); ++i) {
    auto slot = std::make_unique<Slot>();
    slot->cell.publish(std::make_shared<const ShardView>());
    shards_.push_back(std::move(slot));
  }
}

Status ReplicaStore::apply(std::size_t shard, std::uint64_t from_generation,
                           const std::vector<ReplicationOp>& ops) {
  if (shard >= shards_.size()) {
    return Error(ErrorCode::kInvalidArgument, "unknown shard " + std::to_string(shard));
  }
  if (ops.empty()) {
    return Error(ErrorCode::kInvalidArgument, "empty replication batch");
  }
  Slot& slot = *shards_[shard];
  MutexLock lock(slot.apply_mu);
  ShardViewPtr current = slot.cell.read();
  if (current->generation != from_generation) {
    return Error(ErrorCode::kStale,
                 "replica at generation " + std::to_string(current->generation) +
                     ", delta starts from " + std::to_string(from_generation));
  }
  auto next = std::make_shared<ShardView>();
  next->entries = current->entries;  // one copy per batch, not per op
  std::uint64_t gen = current->generation;
  for (const auto& op : ops) {
    if (op.generation != gen + 1) {
      return Error(ErrorCode::kInvalidArgument,
                   "misordered replication batch at generation " +
                       std::to_string(op.generation));
    }
    gen = op.generation;
    std::string dn = normalize_dn(op.entry.dn);
    if (op.tombstone) {
      next->entries.erase(dn);
    } else {
      DirectoryEntry entry = op.entry;
      entry.dn = dn;
      next->entries[dn] = std::move(entry);
    }
  }
  next->generation = gen;
  slot.cell.publish(std::move(next));
  return Status::success();
}

Status ReplicaStore::install(std::size_t shard, ShardView view) {
  if (shard >= shards_.size()) {
    return Error(ErrorCode::kInvalidArgument, "unknown shard " + std::to_string(shard));
  }
  Slot& slot = *shards_[shard];
  MutexLock lock(slot.apply_mu);
  if (slot.cell.read()->generation >= view.generation) return Status::success();
  slot.cell.publish(std::make_shared<const ShardView>(std::move(view)));
  return Status::success();
}

ShardViewPtr ReplicaStore::view(std::size_t shard) const {
  return shards_.at(shard)->cell.read();
}

std::uint64_t ReplicaStore::generation(std::size_t shard) const {
  return view(shard)->generation;
}

std::vector<std::uint64_t> ReplicaStore::generations() const {
  std::vector<std::uint64_t> out;
  out.reserve(shards_.size());
  for (const auto& slot : shards_) out.push_back(slot->cell.read()->generation);
  return out;
}

// ---- ReplicaServer ---------------------------------------------------------

ReplicaServer::ReplicaServer(std::shared_ptr<ReplicaStore> store,
                             std::shared_ptr<obs::Telemetry> telemetry)
    : store_(std::move(store)), telemetry_(std::move(telemetry)) {}

Status ReplicaServer::start(net::Network& network, const net::Address& address) {
  network_ = &network;
  address_ = address;
  return network.listen(address, [this](const net::Message& req, net::Session& session) {
    return net::serve_traced(telemetry_, req.verb, req, session,
                             [this](const net::Message& r, net::Session& s) {
                               return serve(r, s);
                             });
  });
}

void ReplicaServer::stop() {
  if (network_ != nullptr) network_->close(address_);
}

net::Message ReplicaServer::serve(const net::Message& request, net::Session& session) {
  (void)session;
  if (request.verb == "REPL_STATUS") {
    std::vector<std::string> gens;
    for (std::uint64_t gen : store_->generations()) gens.push_back(std::to_string(gen));
    net::Message resp = net::Message::ok();
    resp.with("gens", strings::join(gens, ","));
    return resp;
  }
  auto shard_no = strings::parse_int(request.header_or("shard", ""));
  if (!shard_no || *shard_no < 0 ||
      static_cast<std::size_t>(*shard_no) >= store_->shard_count()) {
    return net::Message::error(
        Error(ErrorCode::kInvalidArgument, "bad or missing shard header"));
  }
  std::size_t shard = static_cast<std::size_t>(*shard_no);
  if (request.verb == "REPL_APPLY") {
    auto from = strings::parse_int(request.header_or("from", ""));
    if (!from || *from < 0) {
      return net::Message::error(
          Error(ErrorCode::kInvalidArgument, "bad or missing from header"));
    }
    auto ops = ReplicationOp::parse_all(request.body);
    if (!ops.ok()) return net::Message::error(ops.error());
    Status applied = store_->apply(shard, static_cast<std::uint64_t>(*from), ops.value());
    if (!applied.ok()) {
      // The error response still reports the replica's generation so the
      // coordinator can diagnose the gap without a second round trip.
      net::Message resp = net::Message::error(applied.error());
      resp.with("gen", std::to_string(store_->generation(shard)));
      return resp;
    }
    net::Message resp = net::Message::ok();
    resp.with("gen", std::to_string(store_->generation(shard)));
    return resp;
  }
  if (request.verb == "REPL_SYNC") {
    auto gen = strings::parse_int(request.header_or("gen", ""));
    if (!gen || *gen < 0) {
      return net::Message::error(
          Error(ErrorCode::kInvalidArgument, "bad or missing gen header"));
    }
    auto entries = DirectoryEntry::parse_all(request.body);
    if (!entries.ok()) return net::Message::error(entries.error());
    ShardView view;
    view.generation = static_cast<std::uint64_t>(*gen);
    for (auto& entry : entries.value()) {
      std::string dn = normalize_dn(entry.dn);
      entry.dn = dn;
      view.entries[dn] = std::move(entry);
    }
    if (Status installed = store_->install(shard, std::move(view)); !installed.ok()) {
      return net::Message::error(installed.error());
    }
    net::Message resp = net::Message::ok();
    resp.with("gen", std::to_string(store_->generation(shard)));
    return resp;
  }
  if (request.verb == "REPL_QUERY") {
    auto scope = scope_from_string(request.header_or("scope", "sub"));
    if (!scope.ok()) return net::Message::error(scope.error());
    auto filter = Filter::parse(request.header_or("filter", Filter::match_all().to_string()));
    if (!filter.ok()) return net::Message::error(filter.error());
    std::string base = request.header_or("base", "o=Grid");
    // The whole read is one snapshot read + an immutable-map search: no
    // locks, no interaction with concurrent applies.
    ShardViewPtr view = store_->view(shard);
    std::vector<DirectoryEntry> hits = search(view->entries, base, scope.value(),
                                              filter.value());
    std::string body;
    for (const auto& entry : hits) body += entry.serialize();
    net::Message resp = net::Message::ok(std::move(body));
    resp.with("count", std::to_string(hits.size()));
    resp.with("gen", std::to_string(view->generation));
    return resp;
  }
  return net::Message::error(
      Error(ErrorCode::kInvalidArgument, "unknown replication verb: " + request.verb));
}

// ---- ReplicationCoordinator ------------------------------------------------

ReplicationCoordinator::ReplicationCoordinator(net::Network& network,
                                               CoordinatorOptions options)
    : network_(network),
      options_(options),
      shard_map_(options.shard_count),
      shards_(shard_map_.shard_count()) {}

void ReplicationCoordinator::add_replica(const net::Address& address) {
  MutexLock lock(mu_);
  if (std::find(replicas_.begin(), replicas_.end(), address) != replicas_.end()) return;
  replicas_.push_back(address);
  acked_[address].assign(shard_map_.shard_count(), 0);
}

std::vector<net::Address> ReplicationCoordinator::replicas() const {
  MutexLock lock(mu_);
  return replicas_;
}

std::vector<net::Address> ReplicationCoordinator::replicas_for(std::size_t shard) const {
  MutexLock lock(mu_);
  std::vector<net::Address> out;
  if (replicas_.empty()) return out;
  std::size_t take = std::min(options_.replication_factor, replicas_.size());
  for (std::size_t j = 0; j < take; ++j) {
    out.push_back(replicas_[(shard + j) % replicas_.size()]);
  }
  return out;
}

void ReplicationCoordinator::append_locked(std::size_t shard, ReplicationOp op) {
  ShardState& state = shards_[shard];
  state.log.push_back(std::move(op));
  while (state.log.size() > options_.op_log_limit) state.log.pop_front();
}

Status ReplicationCoordinator::put(DirectoryEntry entry) {
  entry.dn = normalize_dn(entry.dn);
  std::size_t shard = shard_map_.shard_of(entry.dn);
  std::vector<net::Address> targets;
  {
    MutexLock lock(mu_);
    ShardState& state = shards_[shard];
    state.entries[entry.dn] = entry;
    ReplicationOp op;
    op.generation = ++state.generation;
    op.entry = std::move(entry);
    append_locked(shard, std::move(op));
  }
  for (const auto& replica : replicas_for(shard)) push_replica(shard, replica);
  return Status::success();
}

Status ReplicationCoordinator::put_batch(std::vector<DirectoryEntry> entries) {
  std::vector<bool> touched(shard_map_.shard_count(), false);
  {
    MutexLock lock(mu_);
    for (auto& entry : entries) {
      entry.dn = normalize_dn(entry.dn);
      std::size_t shard = shard_map_.shard_of(entry.dn);
      touched[shard] = true;
      ShardState& state = shards_[shard];
      state.entries[entry.dn] = entry;
      ReplicationOp op;
      op.generation = ++state.generation;
      op.entry = std::move(entry);
      append_locked(shard, std::move(op));
    }
  }
  for (std::size_t shard = 0; shard < touched.size(); ++shard) {
    if (!touched[shard]) continue;
    for (const auto& replica : replicas_for(shard)) push_replica(shard, replica);
  }
  return Status::success();
}

Status ReplicationCoordinator::erase(const std::string& dn) {
  std::string norm = normalize_dn(dn);
  std::size_t shard = shard_map_.shard_of(norm);
  {
    MutexLock lock(mu_);
    ShardState& state = shards_[shard];
    if (state.entries.erase(norm) == 0) {
      return Error(ErrorCode::kNotFound, "no entry: " + norm);
    }
    ReplicationOp op;
    op.generation = ++state.generation;
    op.tombstone = true;
    op.entry.dn = norm;
    append_locked(shard, std::move(op));
  }
  for (const auto& replica : replicas_for(shard)) push_replica(shard, replica);
  return Status::success();
}

std::uint64_t ReplicationCoordinator::generation(std::size_t shard) const {
  MutexLock lock(mu_);
  return shards_.at(shard).generation;
}

std::vector<std::uint64_t> ReplicationCoordinator::generations() const {
  MutexLock lock(mu_);
  std::vector<std::uint64_t> out;
  out.reserve(shards_.size());
  for (const auto& state : shards_) out.push_back(state.generation);
  return out;
}

std::size_t ReplicationCoordinator::size() const {
  MutexLock lock(mu_);
  std::size_t total = 0;
  for (const auto& state : shards_) total += state.entries.size();
  return total;
}

std::uint64_t ReplicationCoordinator::acked_generation(const net::Address& replica,
                                                       std::size_t shard) const {
  MutexLock lock(mu_);
  auto it = acked_.find(replica);
  if (it == acked_.end() || shard >= it->second.size()) return 0;
  return it->second[shard];
}

void ReplicationCoordinator::set_fault_injector(std::shared_ptr<FaultInjector> injector) {
  MutexLock lock(mu_);
  fault_injector_ = std::move(injector);
}

void ReplicationCoordinator::set_telemetry(std::shared_ptr<obs::Telemetry> telemetry) {
  MutexLock lock(mu_);
  telemetry_ = std::move(telemetry);
}

void ReplicationCoordinator::count_apply_failure() {
  apply_failures_.fetch_add(1, std::memory_order_relaxed);
  std::shared_ptr<obs::Telemetry> telemetry;
  {
    MutexLock lock(mu_);
    telemetry = telemetry_;
  }
  count(telemetry, obs::metric::kMdsReplicaApplyFailures);
}

bool ReplicationCoordinator::push_replica(std::size_t shard, const net::Address& replica) {
  // Copy everything the push needs out of the lock: the send itself must
  // run unlocked (the replica's handler executes in this thread).
  std::uint64_t acked = 0;
  std::uint64_t target = 0;
  std::vector<ReplicationOp> delta;
  ShardView full;
  bool use_delta = false;
  std::shared_ptr<FaultInjector> injector;
  {
    MutexLock lock(mu_);
    ShardState& state = shards_[shard];
    target = state.generation;
    auto it = acked_.find(replica);
    if (it == acked_.end()) return false;  // unknown replica
    acked = it->second[shard];
    if (acked >= target) return true;  // already current
    // Delta replication if the op log still covers acked+1 .. target.
    if (!state.log.empty() && state.log.front().generation <= acked + 1) {
      use_delta = true;
      for (const auto& op : state.log) {
        if (op.generation > acked) delta.push_back(op);
      }
    } else {
      full.generation = state.generation;
      full.entries = state.entries;
    }
    injector = fault_injector_;
  }

  if (injector != nullptr) {
    FaultDecision fault = injector->evaluate(fault_point::kMdsReplication);
    if (fault.fire && fault.kind != FaultKind::kLatency) {
      count_apply_failure();
      return false;
    }
  }

  auto conn = network_.connect(replica);
  if (!conn.ok()) {
    count_apply_failure();
    return false;
  }
  net::Message req;
  if (use_delta) {
    req = net::Message("REPL_APPLY");
    req.with("shard", std::to_string(shard));
    req.with("from", std::to_string(acked));
    std::string body;
    for (const auto& op : delta) body += op.serialize();
    req.body = std::move(body);
  } else {
    req = net::Message("REPL_SYNC");
    req.with("shard", std::to_string(shard));
    req.with("gen", std::to_string(full.generation));
    std::string body;
    for (const auto& [dn, entry] : full.entries) body += entry.serialize();
    req.body = std::move(body);
  }
  auto resp = conn.value()->request(req);
  if (!resp.ok() || resp->is_error()) {
    count_apply_failure();
    return false;
  }
  auto gen = strings::parse_int(resp->header_or("gen", ""));
  std::uint64_t confirmed = gen && *gen > 0 ? static_cast<std::uint64_t>(*gen) : target;
  {
    MutexLock lock(mu_);
    auto it = acked_.find(replica);
    if (it != acked_.end() && confirmed > it->second[shard]) {
      it->second[shard] = confirmed;
    }
  }
  return confirmed >= target;
}

ReplicationCoordinator::AntiEntropyReport ReplicationCoordinator::run_anti_entropy() {
  AntiEntropyReport report;
  std::vector<net::Address> replicas;
  std::shared_ptr<FaultInjector> injector;
  std::shared_ptr<obs::Telemetry> telemetry;
  {
    MutexLock lock(mu_);
    replicas = replicas_;
    injector = fault_injector_;
    telemetry = telemetry_;
  }
  count(telemetry, obs::metric::kMdsReplicaAntiEntropyRounds);

  for (const auto& replica : replicas) {
    if (injector != nullptr) {
      FaultDecision fault = injector->evaluate(fault_point::kMdsReplication);
      if (fault.fire && fault.kind != FaultKind::kLatency) {
        ++report.unreachable;
        continue;
      }
    }
    auto conn = network_.connect(replica);
    if (!conn.ok()) {
      ++report.unreachable;
      continue;
    }
    auto resp = conn.value()->request(net::Message("REPL_STATUS"));
    if (!resp.ok() || resp->is_error()) {
      ++report.unreachable;
      continue;
    }
    ++report.replicas_checked;
    // The replica's generation vector is authoritative for what it holds:
    // a restarted (wiped) replica reports 0s, which rewinds our acked
    // view and forces full re-syncs below.
    std::vector<std::uint64_t> gens;
    for (const auto& token : strings::split(resp->header_or("gens", ""), ',')) {
      auto gen = strings::parse_int(std::string(strings::trim(token)));
      gens.push_back(gen && *gen > 0 ? static_cast<std::uint64_t>(*gen) : 0);
    }
    {
      MutexLock lock(mu_);
      auto it = acked_.find(replica);
      if (it != acked_.end()) {
        for (std::size_t shard = 0; shard < it->second.size() && shard < gens.size();
             ++shard) {
          it->second[shard] = gens[shard];
        }
      }
    }
    for (std::size_t shard = 0; shard < shard_map_.shard_count(); ++shard) {
      std::vector<net::Address> assigned = replicas_for(shard);
      if (std::find(assigned.begin(), assigned.end(), replica) == assigned.end()) continue;
      std::uint64_t have = shard < gens.size() ? gens[shard] : 0;
      if (have >= generation(shard)) continue;
      if (push_replica(shard, replica)) {
        ++report.repairs;
        anti_entropy_repairs_.fetch_add(1, std::memory_order_relaxed);
        count(telemetry, obs::metric::kMdsReplicaAntiEntropyRepairs);
      }
    }
  }
  return report;
}

}  // namespace ig::mds
