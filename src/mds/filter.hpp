// LDAP-style search filters (RFC 2254 subset) for the MDS baseline:
//
//   (&(objectclass=InfoGramRecord)(|(kw=Memory)(kw=CPU))(!(host=down*)))
//
// Supported: conjunction &, disjunction |, negation !, equality with '*'
// wildcards (which covers presence "(attr=*)"), and the ordering
// comparators >= and <= (numeric when both sides parse as numbers,
// lexicographic otherwise). Matching is against any value of a
// multi-valued attribute, LDAP semantics.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "mds/directory.hpp"

namespace ig::mds {

class Filter {
 public:
  enum class Kind { kAnd, kOr, kNot, kEquality, kGreaterEq, kLessEq };

  Kind kind = Kind::kEquality;
  std::string attribute;         ///< for comparison nodes
  std::string value;             ///< pattern (equality) or bound
  std::vector<Filter> children;  ///< for boolean nodes

  bool matches(const DirectoryEntry& entry) const;

  /// Parse "(...)" filter text.
  static Result<Filter> parse(std::string_view text);

  /// Canonical text form (parse round-trips).
  std::string to_string() const;

  /// A filter matching everything: "(objectclass=*)" analogue.
  static Filter match_all();

  friend bool operator==(const Filter&, const Filter&) = default;
};

/// in_scope + filter in one call.
std::vector<DirectoryEntry> search(const Directory& directory, const std::string& base,
                                   Scope scope, const Filter& filter);

/// Same, over a bare entry map — the read path of the replicated shard
/// views, which search immutable snapshots rather than a live Directory.
std::vector<DirectoryEntry> search(const EntryMap& entries, const std::string& base,
                                   Scope scope, const Filter& filter);

}  // namespace ig::mds
