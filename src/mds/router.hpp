// Freshest-live-replica query routing over the replicated shard index.
//
// The router is the read side of mds/replication.hpp: it implements
// SearchBackend, so an MdsService can front a replicated index exactly
// as it fronts a GRIS or GIIS. Each query resolves to one shard (or a
// fan-out over all shards for root-based searches), and the router picks
// among that shard's replicas by health — reachability first, then
// replication lag, then an EWMA of observed virtual latency — reusing
// the provider pipeline's resilience machinery (info::CircuitBreaker per
// replica, info::retry_backoff between failover passes, a per-query
// deadline on the injected clock).
//
// Mid-query failover: a failed attempt records into the replica's
// breaker and the router moves to the next candidate inside the same
// query (counted in mds.replica.failover). Serving from a replica whose
// generation trails the coordinator is allowed — that is the
// availability trade — but counted (mds.replica.stale_routed) and
// bounded by the anti-entropy cadence.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "common/rng.hpp"
#include "common/sync.hpp"
#include "format/record.hpp"
#include "info/resilience.hpp"
#include "info/system_monitor.hpp"
#include "mds/gris.hpp"
#include "mds/replication.hpp"

namespace ig::mds {

struct RouterOptions {
  /// Failover pacing: after every candidate of a pass failed, the router
  /// sleeps retry_backoff(retry, pass) on its clock and re-derives the
  /// candidate list, up to retry.max_attempts passes per query.
  info::RetryOptions retry{.max_attempts = 2, .initial_backoff = ms(1)};
  /// Per-replica circuit breaker (fast-fails known-dead replicas).
  info::BreakerOptions breaker{.failure_threshold = 3, .open_duration = ms(500)};
  /// Per-query budget on the router's clock; nullopt = no deadline.
  std::optional<Duration> deadline;
  std::uint64_t seed = 1;  ///< backoff jitter stream
};

class ReplicaRouter final : public SearchBackend {
 public:
  ReplicaRouter(net::Network& network, std::shared_ptr<ReplicationCoordinator> coordinator,
                Clock& clock, RouterOptions options = {});

  /// Route a search to the freshest live replica of the base's shard.
  /// Bases at or above the shard-key level fan out over every shard and
  /// merge (one failing shard fails the aggregate, matching Giis
  /// semantics; per-shard routing still fails over within each shard).
  Result<std::vector<DirectoryEntry>> search(const std::string& base, Scope scope,
                                             const Filter& filter) override;
  std::string suffix() const override { return "o=Grid"; }

  /// Cumulative routing counters (also mirrored to telemetry).
  std::uint64_t queries() const { return queries_.load(std::memory_order_relaxed); }
  std::uint64_t failovers() const { return failovers_.load(std::memory_order_relaxed); }
  std::uint64_t stale_routed() const {
    return stale_routed_.load(std::memory_order_relaxed);
  }

  /// Self-description for the TTL-0 `replicas` keyword: per-shard
  /// coordinator generation, per-replica reachability / breaker state /
  /// max lag / latency EWMA / success+failure counts.
  Result<format::InfoRecord> replicas_record() const;

  void set_telemetry(std::shared_ptr<obs::Telemetry> telemetry);

  const std::shared_ptr<ReplicationCoordinator>& coordinator() const {
    return coordinator_;
  }

 private:
  struct ReplicaHealth {
    std::unique_ptr<info::CircuitBreaker> breaker;
    double ewma_latency_us = 0.0;
    std::uint64_t successes = 0;
    std::uint64_t failures = 0;
    /// Highest generation this replica served us, per shard: the
    /// router's own freshness estimate, updated on every response.
    std::vector<std::uint64_t> seen_gens;
  };

  /// The health slot for `replica` (created closed/healthy on first use).
  ReplicaHealth* health(const net::Address& replica);
  std::vector<net::Address> ordered_candidates(std::size_t shard);
  Result<std::vector<DirectoryEntry>> query_shard(std::size_t shard,
                                                  const std::string& base, Scope scope,
                                                  const Filter& filter,
                                                  std::optional<TimePoint> deadline_at);
  void count_metric(const char* name);

  net::Network& network_;
  std::shared_ptr<ReplicationCoordinator> coordinator_;
  Clock& clock_;  ///< non-const: the failover backoff sleeps on it
  RouterOptions options_;

  /// Guards the health table and the backoff rng. Never held across a
  /// replica RPC or a breaker call — breakers rank below kMdsRouter.
  mutable Mutex mu_{lock_rank::kMdsRouter, "mds.ReplicaRouter"};
  std::map<net::Address, std::unique_ptr<ReplicaHealth>> health_ IG_GUARDED_BY(mu_);
  Rng rng_ IG_GUARDED_BY(mu_);
  std::shared_ptr<obs::Telemetry> telemetry_ IG_GUARDED_BY(mu_);

  std::atomic<std::uint64_t> queries_{0};
  std::atomic<std::uint64_t> failovers_{0};
  std::atomic<std::uint64_t> stale_routed_{0};
};

/// Register the TTL-0 `replicas` keyword on `monitor`, backed by
/// `router`: the replicated index becomes self-describing through the
/// same keyword machinery as every other information source.
Status register_replicas_provider(info::SystemMonitor& monitor,
                                  std::shared_ptr<ReplicaRouter> router);

}  // namespace ig::mds
