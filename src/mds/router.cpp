#include "mds/router.hpp"

#include <algorithm>

#include "common/strings.hpp"
#include "info/obs_provider.hpp"

namespace ig::mds {

ReplicaRouter::ReplicaRouter(net::Network& network,
                             std::shared_ptr<ReplicationCoordinator> coordinator,
                             Clock& clock, RouterOptions options)
    : network_(network),
      coordinator_(std::move(coordinator)),
      clock_(clock),
      options_(options),
      rng_(options.seed) {}

void ReplicaRouter::set_telemetry(std::shared_ptr<obs::Telemetry> telemetry) {
  MutexLock lock(mu_);
  telemetry_ = std::move(telemetry);
}

void ReplicaRouter::count_metric(const char* name) {
  std::shared_ptr<obs::Telemetry> telemetry;
  {
    MutexLock lock(mu_);
    telemetry = telemetry_;
  }
  if (telemetry != nullptr) telemetry->metrics().counter(name).add();
}

ReplicaRouter::ReplicaHealth* ReplicaRouter::health(const net::Address& replica) {
  MutexLock lock(mu_);
  auto& slot = health_[replica];
  if (slot == nullptr) {
    slot = std::make_unique<ReplicaHealth>();
    slot->breaker = std::make_unique<info::CircuitBreaker>(options_.breaker, clock_);
    slot->seen_gens.assign(coordinator_->shard_count(), 0);
  }
  return slot.get();
}

std::vector<net::Address> ReplicaRouter::ordered_candidates(std::size_t shard) {
  struct Scored {
    net::Address addr;
    bool reachable = false;
    std::uint64_t lag = 0;
    double ewma = 0.0;
  };
  std::uint64_t target = coordinator_->generation(shard);
  std::vector<Scored> scored;
  for (const auto& addr : coordinator_->replicas_for(shard)) {
    Scored s;
    s.addr = addr;
    // One map lookup, no connect charge: known-dead endpoints sort last
    // without burning an attempt.
    s.reachable = network_.reachable(addr);
    ReplicaHealth* h = health(addr);
    {
      MutexLock lock(mu_);
      std::uint64_t seen = std::max(h->seen_gens[shard],
                                    coordinator_->acked_generation(addr, shard));
      s.lag = target > seen ? target - seen : 0;
      s.ewma = h->ewma_latency_us;
    }
    scored.push_back(std::move(s));
  }
  // Freshest live first: reachability, then lag, then latency EWMA.
  std::stable_sort(scored.begin(), scored.end(), [](const Scored& a, const Scored& b) {
    if (a.reachable != b.reachable) return a.reachable;
    if (a.lag != b.lag) return a.lag < b.lag;
    return a.ewma < b.ewma;
  });
  std::vector<net::Address> out;
  out.reserve(scored.size());
  for (auto& s : scored) out.push_back(std::move(s.addr));
  return out;
}

Result<std::vector<DirectoryEntry>> ReplicaRouter::query_shard(
    std::size_t shard, const std::string& base, Scope scope, const Filter& filter,
    std::optional<TimePoint> deadline_at) {
  Error last_error(ErrorCode::kUnavailable,
                   "no replica for shard " + std::to_string(shard));
  bool attempted_any = false;
  int max_passes = std::max(1, options_.retry.max_attempts);
  for (int pass = 1; pass <= max_passes; ++pass) {
    for (const auto& addr : ordered_candidates(shard)) {
      if (deadline_at.has_value() && clock_.now() >= *deadline_at) {
        return Error(ErrorCode::kTimeout,
                     "replica query deadline exceeded for shard " + std::to_string(shard));
      }
      ReplicaHealth* h = health(addr);
      // The breaker is consulted per attempt (not during ordering) so a
      // half-open probe admission is spent on a real request.
      if (!h->breaker->allow()) continue;
      if (attempted_any) {
        // Mid-query switch to another replica: the failover the chaos
        // suite watches, and a tail-retention trigger — the request
        // succeeded only because routing went around a dead replica.
        failovers_.fetch_add(1, std::memory_order_relaxed);
        count_metric(obs::metric::kMdsReplicaFailover);
        obs::signal_tail(obs::kSignalFailover);
      }
      attempted_any = true;

      auto attempt = [&]() -> Result<net::Message> {
        auto conn = network_.connect(addr);
        if (!conn.ok()) return conn.error();
        net::Message req("REPL_QUERY");
        req.with("shard", std::to_string(shard));
        req.with("base", base);
        req.with("scope", std::string(to_string(scope)));
        req.with("filter", filter.to_string());
        auto resp = conn.value()->request(req);
        if (!resp.ok()) return resp.error();
        if (resp->is_error()) return net::Message::to_error(*resp);
        // Virtual wire time is the deterministic latency signal: real
        // elapsed time would make routing depend on host noise.
        double latency_us = static_cast<double>(conn.value()->stats().virtual_time.count());
        MutexLock lock(mu_);
        h->ewma_latency_us = h->ewma_latency_us == 0.0
                                 ? latency_us
                                 : 0.8 * h->ewma_latency_us + 0.2 * latency_us;
        return resp;
      }();

      if (!attempt.ok()) {
        h->breaker->record_failure();
        {
          MutexLock lock(mu_);
          ++h->failures;
        }
        last_error = attempt.error();
        continue;
      }
      h->breaker->record_success();
      std::uint64_t served_gen = 0;
      if (auto gen = strings::parse_int(attempt->header_or("gen", "")); gen && *gen > 0) {
        served_gen = static_cast<std::uint64_t>(*gen);
      }
      {
        MutexLock lock(mu_);
        ++h->successes;
        if (served_gen > h->seen_gens[shard]) h->seen_gens[shard] = served_gen;
      }
      if (served_gen < coordinator_->generation(shard)) {
        stale_routed_.fetch_add(1, std::memory_order_relaxed);
        count_metric(obs::metric::kMdsReplicaStaleRouted);
      }
      return DirectoryEntry::parse_all(attempt->body);
    }
    if (pass < max_passes) {
      Duration backoff;
      {
        MutexLock lock(mu_);
        backoff = info::retry_backoff(options_.retry, pass, rng_);
      }
      // Clock-injected, like ManagedProvider's retry loop: virtual under
      // test clocks, real pacing in a deployment.
      clock_.sleep_for(backoff);
    }
  }
  return last_error;
}

Result<std::vector<DirectoryEntry>> ReplicaRouter::search(const std::string& base,
                                                          Scope scope,
                                                          const Filter& filter) {
  queries_.fetch_add(1, std::memory_order_relaxed);
  count_metric(obs::metric::kMdsReplicaQueries);
  std::optional<TimePoint> deadline_at;
  if (options_.deadline.has_value()) deadline_at = clock_.now() + *options_.deadline;

  // A base below the shard-key level pins the whole query to one shard;
  // at or above it (the root, or an empty base) every shard may hold
  // matching entries, so fan out and merge.
  if (dn_components(base).size() >= 2) {
    return query_shard(coordinator_->shard_map().shard_of(base), base, scope, filter,
                       deadline_at);
  }
  std::vector<DirectoryEntry> merged;
  for (std::size_t shard = 0; shard < coordinator_->shard_count(); ++shard) {
    auto part = query_shard(shard, base, scope, filter, deadline_at);
    if (!part.ok()) return part.error();
    for (auto& entry : part.value()) merged.push_back(std::move(entry));
  }
  return merged;
}

Result<format::InfoRecord> ReplicaRouter::replicas_record() const {
  format::InfoRecord record;
  record.keyword = "replicas";
  std::vector<std::uint64_t> gens = coordinator_->generations();
  std::vector<net::Address> replicas = coordinator_->replicas();
  record.add("shards", std::to_string(gens.size()));
  record.add("replicas", std::to_string(replicas.size()));
  record.add("queries", std::to_string(queries()));
  record.add("failovers", std::to_string(failovers()));
  record.add("stale_routed", std::to_string(stale_routed()));
  for (std::size_t shard = 0; shard < gens.size(); ++shard) {
    record.add("shard." + std::to_string(shard) + ":gen", std::to_string(gens[shard]));
  }
  for (const auto& addr : replicas) {
    std::string key = addr.to_string();
    record.add(key + ":reachable", network_.reachable(addr) ? "yes" : "no");
    std::uint64_t max_lag = 0;
    for (std::size_t shard = 0; shard < gens.size(); ++shard) {
      auto assigned = coordinator_->replicas_for(shard);
      if (std::find(assigned.begin(), assigned.end(), addr) == assigned.end()) continue;
      std::uint64_t acked = coordinator_->acked_generation(addr, shard);
      if (gens[shard] > acked) max_lag = std::max(max_lag, gens[shard] - acked);
    }
    record.add(key + ":lag", std::to_string(max_lag));
    // Copy the health fields out of the router lock; breaker state is
    // read after unlocking (the breaker's lock ranks below the router's).
    info::CircuitBreaker* breaker = nullptr;
    double ewma = 0.0;
    std::uint64_t successes = 0;
    std::uint64_t failures = 0;
    {
      MutexLock lock(mu_);
      auto it = health_.find(addr);
      if (it != health_.end()) {
        breaker = it->second->breaker.get();
        ewma = it->second->ewma_latency_us;
        successes = it->second->successes;
        failures = it->second->failures;
      }
    }
    if (breaker == nullptr) {
      record.add(key + ":breaker", "closed");
      continue;
    }
    record.add(key + ":breaker", std::string(to_string(breaker->state())));
    record.add(key + ":ewma_us", strings::format("%.1f", ewma));
    record.add(key + ":successes", std::to_string(successes));
    record.add(key + ":failures", std::to_string(failures));
  }
  return record;
}

Status register_replicas_provider(info::SystemMonitor& monitor,
                                  std::shared_ptr<ReplicaRouter> router) {
  return info::register_live_provider(
      monitor, "replicas",
      [router]() -> Result<format::InfoRecord> { return router->replicas_record(); },
      "function:mds.replicas");
}

}  // namespace ig::mds
