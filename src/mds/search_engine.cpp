#include "mds/search_engine.hpp"

#include <algorithm>

#include "common/strings.hpp"

namespace ig::mds {

std::vector<std::string> tokenize_query(const std::string& query) {
  std::vector<std::string> tokens;
  for (const auto& raw : strings::split_fields(query, ' ')) {
    tokens.push_back(strings::to_lower(raw));
  }
  return tokens;
}

namespace {
bool contains_ci(const std::string& haystack, const std::string& lower_needle) {
  return strings::contains(strings::to_lower(haystack), lower_needle);
}
}  // namespace

double score_entry(const DirectoryEntry& entry, const std::vector<std::string>& tokens,
                   const SearchOptions& options) {
  double score = 0.0;
  for (const std::string& token : tokens) {
    if (contains_ci(entry.dn, token)) score += options.dn_weight;
    for (const auto& [name, values] : entry.attributes) {
      if (contains_ci(name, token)) score += options.name_weight;
      for (const std::string& value : values) {
        if (contains_ci(value, token)) score += options.value_weight;
      }
    }
  }
  return score;
}

Result<std::vector<SearchHit>> keyword_search(SearchBackend& backend,
                                              const std::string& query,
                                              const SearchOptions& options) {
  auto tokens = tokenize_query(query);
  if (tokens.empty()) {
    return Error(ErrorCode::kInvalidArgument, "empty search query");
  }
  auto entries = backend.search(options.base, Scope::kSubtree, Filter::match_all());
  if (!entries.ok()) return entries.error();
  std::vector<SearchHit> hits;
  for (auto& entry : entries.value()) {
    double score = score_entry(entry, tokens, options);
    if (score > 0.0) hits.push_back(SearchHit{std::move(entry), score});
  }
  std::sort(hits.begin(), hits.end(), [](const SearchHit& a, const SearchHit& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.entry.dn < b.entry.dn;
  });
  if (hits.size() > options.max_hits) hits.resize(options.max_hits);
  return hits;
}

}  // namespace ig::mds
