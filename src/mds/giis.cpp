#include "mds/giis.hpp"

namespace ig::mds {

Giis::Giis(std::string vo_name, const Clock& clock, Duration cache_ttl)
    : vo_name_(std::move(vo_name)), clock_(clock), cache_ttl_(cache_ttl) {}

void Giis::register_child(std::shared_ptr<SearchBackend> child) {
  MutexLock lock(mu_);
  children_.push_back(std::move(child));
  last_refresh_ = TimePoint(-1);  // force refresh on next search
}

std::size_t Giis::child_count() const {
  MutexLock lock(mu_);
  return children_.size();
}

Status Giis::refresh_if_stale() {
  MutexLock lock(mu_);
  TimePoint now = clock_.now();
  if (telemetry_ != nullptr) {
    telemetry_->metrics().counter(obs::metric::kMdsGiisSearches).add();
  }
  if (last_refresh_.count() >= 0 && now - last_refresh_ <= cache_ttl_) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    if (telemetry_ != nullptr) {
      telemetry_->metrics().counter(obs::metric::kMdsGiisCacheHits).add();
    }
    return Status::success();
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  if (telemetry_ != nullptr) {
    telemetry_->metrics().counter(obs::metric::kMdsGiisCacheMisses).add();
  }
  Directory fresh;
  DirectoryEntry root;
  root.dn = "vo=" + vo_name_ + ", o=Grid";
  root.add("objectclass", "VirtualOrganization");
  root.add("vo", vo_name_);
  fresh.put(std::move(root));
  for (const auto& child : children_) {
    // Pull the child's entire subtree into the aggregate cache.
    auto entries = child->search(child->suffix(), Scope::kSubtree, Filter::match_all());
    if (!entries.ok()) return entries.error();
    for (auto& entry : entries.value()) fresh.put(std::move(entry));
  }
  cache_.clear();
  // An empty base DN is the root of every entry, so this moves the whole
  // freshly-built tree over.
  for (auto& entry : fresh.in_scope("", Scope::kSubtree)) cache_.put(std::move(entry));
  last_refresh_ = now;
  return Status::success();
}

Result<std::vector<DirectoryEntry>> Giis::search(const std::string& base, Scope scope,
                                                 const Filter& filter) {
  if (auto status = refresh_if_stale(); !status.ok()) return status.error();
  MutexLock lock(mu_);
  return ig::mds::search(cache_, base, scope, filter);
}

}  // namespace ig::mds
