#include "mds/giis.hpp"

#include <algorithm>

#include "mds/replication.hpp"

namespace ig::mds {

Giis::Giis(std::string vo_name, const Clock& clock, Duration cache_ttl)
    : vo_name_(std::move(vo_name)), clock_(clock), cache_ttl_(cache_ttl) {}

void Giis::register_child(std::shared_ptr<SearchBackend> child) {
  register_child(std::move(child), Registration());
}

void Giis::register_child(std::shared_ptr<SearchBackend> child, Registration reg) {
  MutexLock lock(mu_);
  Child entry;
  entry.suffix = child->suffix();
  entry.backend = std::move(child);
  entry.lease = reg.lease;
  entry.registered_at = clock_.now();
  if (reg.replace) {
    auto it = std::find_if(children_.begin(), children_.end(), [&](const Child& c) {
      return c.suffix == entry.suffix;
    });
    if (it != children_.end()) {
      // Re-registration: renew the lease, swap in the (possibly new)
      // backend, keep the shield entries until the next successful pull.
      entry.last_success = it->last_success;
      entry.last_entries = std::move(it->last_entries);
      *it = std::move(entry);
      last_refresh_ = TimePoint(-1);
      return;
    }
  }
  children_.push_back(std::move(entry));
  last_refresh_ = TimePoint(-1);  // force refresh on next search
}

std::size_t Giis::child_count() const {
  MutexLock lock(mu_);
  return children_.size();
}

void Giis::prune_expired_locked(TimePoint now) {
  auto expired = [&](const Child& c) {
    return c.lease.has_value() && now - c.registered_at > *c.lease;
  };
  std::size_t before = children_.size();
  children_.erase(std::remove_if(children_.begin(), children_.end(), expired),
                  children_.end());
  if (children_.size() != before) {
    expired_.fetch_add(before - children_.size(), std::memory_order_relaxed);
    last_refresh_ = TimePoint(-1);  // the cached view includes dead subtrees
  }
}

Status Giis::refresh_if_stale() {
  MutexLock lock(mu_);
  TimePoint now = clock_.now();
  if (telemetry_ != nullptr) {
    telemetry_->metrics().counter(obs::metric::kMdsGiisSearches).add();
  }
  prune_expired_locked(now);
  if (last_refresh_.count() >= 0 && now - last_refresh_ <= cache_ttl_) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    if (telemetry_ != nullptr) {
      telemetry_->metrics().counter(obs::metric::kMdsGiisCacheHits).add();
    }
    return Status::success();
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  if (telemetry_ != nullptr) {
    telemetry_->metrics().counter(obs::metric::kMdsGiisCacheMisses).add();
  }
  Directory fresh;
  DirectoryEntry root;
  root.dn = "vo=" + vo_name_ + ", o=Grid";
  root.add("objectclass", "VirtualOrganization");
  root.add("vo", vo_name_);
  fresh.put(std::move(root));
  for (auto& child : children_) {
    // Pull the child's entire subtree into the aggregate cache.
    auto entries = child.backend->search(child.suffix, Scope::kSubtree,
                                         Filter::match_all());
    if (entries.ok()) {
      child.last_entries = entries.value();
      child.last_success = now;
      for (auto& entry : entries.value()) fresh.put(std::move(entry));
      continue;
    }
    // Stale-serve shield: a child that has answered before is served from
    // its last good pull instead of failing the whole aggregate; its
    // staleness is bounded by the lease that will eventually drop it. A
    // child that has never answered still fails the search — that is a
    // wiring error, not a transient.
    if (child.last_success.count() < 0) return entries.error();
    stale_served_.fetch_add(1, std::memory_order_relaxed);
    for (const auto& entry : child.last_entries) fresh.put(entry);
  }
  cache_.clear();
  // An empty base DN is the root of every entry, so this moves the whole
  // freshly-built tree over.
  for (auto& entry : fresh.in_scope("", Scope::kSubtree)) cache_.put(std::move(entry));
  last_refresh_ = now;
  publish_replication_locked();
  return Status::success();
}

void Giis::publish_replication_locked() {
  if (replication_ == nullptr) return;
  std::map<std::string, std::string> current;
  std::vector<DirectoryEntry> changed;
  for (auto& entry : cache_.in_scope("", Scope::kSubtree)) {
    std::string wire = entry.serialize();
    std::string dn = entry.dn;
    auto it = published_.find(dn);
    if (it == published_.end() || it->second != wire) changed.push_back(std::move(entry));
    current[std::move(dn)] = std::move(wire);
  }
  // Write failures cannot fail the refresh (the authoritative apply is
  // local and infallible for well-formed entries; replication fan-out is
  // best-effort by design).
  for (const auto& [dn, wire] : published_) {
    if (current.find(dn) == current.end()) (void)replication_->erase(dn);
  }
  if (!changed.empty()) (void)replication_->put_batch(std::move(changed));
  published_ = std::move(current);
}

Result<std::vector<DirectoryEntry>> Giis::search(const std::string& base, Scope scope,
                                                 const Filter& filter) {
  if (auto status = refresh_if_stale(); !status.ok()) return status.error();
  MutexLock lock(mu_);
  return ig::mds::search(cache_, base, scope, filter);
}

}  // namespace ig::mds
