// Directory information tree for the MDS baseline (paper Sec. 3).
//
// MDS 2.x is an LDAP directory; this is the in-memory equivalent: entries
// keyed by distinguished name, multi-valued attributes, and searches with
// base/one-level/subtree scope. DNs are comma-separated RDN sequences,
// most-specific first ("kw=Memory, host=hot, o=Grid"); hierarchy is DN
// suffix containment.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/sync.hpp"

namespace ig::mds {

struct DirectoryEntry {
  std::string dn;
  std::map<std::string, std::vector<std::string>> attributes;

  void add(const std::string& name, std::string value);
  /// First value of the attribute, or "".
  std::string first(const std::string& name) const;
  bool has(const std::string& name) const { return attributes.count(name) > 0; }

  /// "dn: ...\nattr: value\n..." (base64 when unsafe), one blank line
  /// terminated. Used by the MDS wire protocol.
  std::string serialize() const;
  static Result<std::vector<DirectoryEntry>> parse_all(const std::string& text);

  friend bool operator==(const DirectoryEntry&, const DirectoryEntry&) = default;
};

enum class Scope { kBase, kOneLevel, kSubtree };

std::string_view to_string(Scope scope);
Result<Scope> scope_from_string(std::string_view name);

/// Split a DN into normalized RDN components (trimmed, attribute name
/// lowercased): "KW=Memory, o=Grid" -> {"kw=Memory", "o=Grid"}.
std::vector<std::string> dn_components(const std::string& dn);
/// Normalized textual form (components rejoined with ", ").
std::string normalize_dn(const std::string& dn);
/// True if `dn` is inside the subtree rooted at `base` (inclusive).
bool dn_under(const std::string& dn, const std::string& base);
/// Levels of `dn` below `base`; negative if not under it.
int dn_depth_below(const std::string& dn, const std::string& base);
/// Same, over pre-split normalized components (the per-entry hot path:
/// callers scanning a whole map parse the base once, not once per entry).
int dn_depth_below(const std::vector<std::string>& dn,
                   const std::vector<std::string>& base);

/// Entries keyed by normalized DN — the shared shape of Directory's store
/// and the immutable shard views the replication layer publishes.
using EntryMap = std::map<std::string, DirectoryEntry>;

/// All entries of `entries` within `scope` of `base`. kBase is a direct
/// O(log n) map lookup; the other scopes are one scan with the base
/// components hoisted out of the loop.
std::vector<DirectoryEntry> entries_in_scope(const EntryMap& entries,
                                             const std::string& base, Scope scope);

/// Thread-safe entry store with scoped search.
class Directory {
 public:
  void put(DirectoryEntry entry);
  void erase(const std::string& dn);
  void clear();
  Result<DirectoryEntry> get(const std::string& dn) const;
  std::size_t size() const;

  /// All entries within `scope` of `base` (unfiltered; the filter layer
  /// sits on top — see mds/filter.hpp).
  std::vector<DirectoryEntry> in_scope(const std::string& base, Scope scope) const;

 private:
  mutable Mutex mu_{lock_rank::kMdsDirectory, "mds.Directory"};
  /// Keyed by normalized DN.
  std::map<std::string, DirectoryEntry> entries_ IG_GUARDED_BY(mu_);
};

}  // namespace ig::mds
