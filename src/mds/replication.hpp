// Replicated, sharded directory index — the BDII-style remedy for the
// MDS2 scaling story ("Performance Analysis of the Globus Toolkit
// Monitoring and Discovery Service"; "A Fault Tolerant, Dynamic and Low
// Latency BDII Architecture for Grids", PAPERS.md): the single in-process
// directory becomes N shards, each replicated across simulated hosts over
// ig::Network, so the index survives replica kills and partitions while
// queries keep flowing.
//
// Roles:
//
//   ShardMap                 pure DN -> shard assignment (keyword/VO
//                            prefix hashing; a keyword entry colocates
//                            with its host/VO parent so scoped lookups
//                            touch one shard).
//   ReplicaStore             one host's replica state: per-shard
//                            immutable ShardView published through
//                            ig::SnapshotCell — queries are lock-free.
//   ReplicaServer            wire front of a ReplicaStore (REPL_* verbs,
//                            served through net::serve_traced so
//                            replication hops appear in traces).
//   ReplicationCoordinator   the single writer: authoritative shard
//                            maps, per-shard generation counters and op
//                            logs, asynchronous best-effort fan-out to
//                            replicas, periodic anti-entropy repair.
//
// Consistency model: single-writer asynchronous replication. A write is
// applied to the authoritative map first and pushed to replicas
// best-effort — a replication failure never fails the write; the replica
// just lags until the next push or anti-entropy round repairs it. Each
// shard carries a monotonic generation; a replica's lag is the
// coordinator generation minus the replica's, which bounds staleness by
// the anti-entropy cadence (DESIGN.md §14).
//
// The replication channel has its own fault-injection point
// (ig::fault_point::kMdsReplication) distinct from the client-facing
// net.connect/net.request points, so chaos plans can partition
// replication traffic independently of query traffic.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "common/error.hpp"
#include "common/fault.hpp"
#include "common/sync.hpp"
#include "mds/filter.hpp"
#include "net/network.hpp"
#include "obs/telemetry.hpp"

// Replica metric family. Same lint contract as the constants in
// telemetry.hpp (tools/lint.py scans this header): every name is wired
// to an instrumentation site and documented in DESIGN.md's metric table.
namespace ig::obs::metric {
inline constexpr const char* kMdsReplicaQueries = "mds.replica.queries";
inline constexpr const char* kMdsReplicaFailover = "mds.replica.failover";
inline constexpr const char* kMdsReplicaStaleRouted = "mds.replica.stale_routed";
inline constexpr const char* kMdsReplicaApplyFailures = "mds.replica.apply.failures";
inline constexpr const char* kMdsReplicaAntiEntropyRounds = "mds.replica.antientropy.rounds";
inline constexpr const char* kMdsReplicaAntiEntropyRepairs =
    "mds.replica.antientropy.repairs";
}  // namespace ig::obs::metric

namespace ig::mds {

/// Pure DN -> shard assignment. The shard key is the RDN just below the
/// root ("host=node7" in "kw=Memory, host=node7, o=Grid"), so every
/// entry of one resource/VO subtree — and every base-scoped query for it
/// — lands on the same shard. Root-level DNs hash to shard 0.
class ShardMap {
 public:
  explicit ShardMap(std::size_t shard_count = 16);

  std::size_t shard_count() const { return shard_count_; }

  /// The shard key of `dn` ("" for root-level DNs).
  static std::string shard_key(const std::string& dn);
  std::size_t shard_of(const std::string& dn) const;

  friend bool operator==(const ShardMap&, const ShardMap&) = default;

 private:
  std::size_t shard_count_;
};

/// One shard's immutable published state. A ShardView is never mutated
/// after publication (SnapshotCell ownership rules, DESIGN.md §13).
struct ShardView {
  std::uint64_t generation = 0;
  EntryMap entries;  ///< keyed by normalized DN
};
using ShardViewPtr = std::shared_ptr<const ShardView>;

/// One replicated mutation: a put (full entry) or a tombstone (DN only),
/// stamped with the shard generation it produces.
struct ReplicationOp {
  std::uint64_t generation = 0;
  bool tombstone = false;
  DirectoryEntry entry;  ///< tombstones carry only the DN

  /// Wire form: the entry itself with ig-gen / ig-tombstone attributes
  /// (reuses the LDIF entry framing of the MDS protocol).
  std::string serialize() const;
  static Result<std::vector<ReplicationOp>> parse_all(const std::string& body);
};

/// One simulated host's replica of every shard. Writers (the apply path)
/// are serialized per shard; readers take one SnapshotCell::read() and
/// never touch a mutex — the property the directory-scale bench gates.
class ReplicaStore {
 public:
  explicit ReplicaStore(std::size_t shard_count);

  std::size_t shard_count() const { return shards_.size(); }

  /// Apply a delta batch that advances the shard from exactly
  /// `from_generation`. kStale if the replica is not at that generation
  /// (the coordinator then falls back to a full install), kInvalidArgument
  /// for an unknown shard or an empty/misordered batch.
  Status apply(std::size_t shard, std::uint64_t from_generation,
               const std::vector<ReplicationOp>& ops);

  /// Install a full shard state (anti-entropy catch-up / bootstrap).
  /// Installs strictly newer generations; older ones are a no-op success
  /// (a late full sync must not roll the replica back).
  Status install(std::size_t shard, ShardView view);

  /// The current published view (never null; shards start empty at
  /// generation 0). Lock-free, allocation-free.
  ShardViewPtr view(std::size_t shard) const;

  std::uint64_t generation(std::size_t shard) const;
  std::vector<std::uint64_t> generations() const;

 private:
  struct Slot {
    /// Serializes apply/install; the SnapshotCell publish happens while
    /// held (legal: kMdsReplicaStore < kSnapshotWriter is not required —
    /// publish() takes no lock; only update() would).
    Mutex apply_mu{lock_rank::kMdsReplicaStore, "mds.ReplicaStore"};
    SnapshotCell<ShardView> cell;
  };
  std::vector<std::unique_ptr<Slot>> shards_;
};

/// Serves a ReplicaStore on the network. Verbs (all responses carry a
/// `gen` header so callers can score freshness):
///
///   REPL_APPLY   headers shard, from; body = ReplicationOp batch
///   REPL_SYNC    headers shard, gen; body = full entry list
///   REPL_QUERY   headers shard, base, scope, filter; body = entries
///   REPL_STATUS  response header gens = comma-joined per-shard generations
///
/// This is an intra-service channel between the coordinator, its
/// replicas and the router — it skips the GSI handshake the client-facing
/// MDS endpoint performs. Requests are served through net::serve_traced,
/// so replication hops stitch into the caller's trace.
class ReplicaServer {
 public:
  ReplicaServer(std::shared_ptr<ReplicaStore> store,
                std::shared_ptr<obs::Telemetry> telemetry = nullptr);

  Status start(net::Network& network, const net::Address& address);
  void stop();

  const net::Address& address() const { return address_; }
  const std::shared_ptr<ReplicaStore>& store() const { return store_; }

 private:
  net::Message serve(const net::Message& request, net::Session& session);

  std::shared_ptr<ReplicaStore> store_;
  std::shared_ptr<obs::Telemetry> telemetry_;
  net::Network* network_ = nullptr;
  net::Address address_;
};

struct CoordinatorOptions {
  std::size_t shard_count = 16;
  /// Replicas per shard; with more registered replica hosts than this,
  /// shard s lives on hosts (s + j) % hosts for j in [0, factor).
  std::size_t replication_factor = 3;
  /// Per-shard op-log window for delta replication; a replica further
  /// behind than the window gets a full REPL_SYNC instead.
  std::size_t op_log_limit = 256;
};

/// The single writer of the replicated index. Thread-safe; never holds
/// its lock across a network send (ops are copied out first).
class ReplicationCoordinator {
 public:
  ReplicationCoordinator(net::Network& network, CoordinatorOptions options = {});

  const ShardMap& shard_map() const { return shard_map_; }
  std::size_t shard_count() const { return shard_map_.shard_count(); }

  /// Register a replica host (its ReplicaServer must be listening or the
  /// first pushes will count as apply failures until anti-entropy finds
  /// it). Registration order determines shard placement.
  void add_replica(const net::Address& address);
  std::vector<net::Address> replicas() const;
  /// The replicas assigned to `shard` (all of them while the host count
  /// is <= replication_factor).
  std::vector<net::Address> replicas_for(std::size_t shard) const;

  /// Write paths: apply to the authoritative map, then fan out
  /// best-effort. Replication failures never fail the write.
  Status put(DirectoryEntry entry);
  Status put_batch(std::vector<DirectoryEntry> entries);
  Status erase(const std::string& dn);

  std::uint64_t generation(std::size_t shard) const;
  std::vector<std::uint64_t> generations() const;
  std::size_t size() const;

  /// The last generation `replica` acknowledged for `shard` (0 if never).
  std::uint64_t acked_generation(const net::Address& replica, std::size_t shard) const;

  struct AntiEntropyReport {
    std::size_t replicas_checked = 0;
    std::size_t repairs = 0;      ///< shard/replica pairs brought up to date
    std::size_t unreachable = 0;  ///< replicas whose status pull failed
  };
  /// One reconciliation round: pull every replica's generation vector,
  /// re-push each lagging assigned shard (delta if the op log still
  /// covers the gap, full sync otherwise). Deterministic — no background
  /// thread; the owner decides the cadence (tests and benches drive it
  /// explicitly, a deployment would tick it from its main loop).
  AntiEntropyReport run_anti_entropy();

  /// Cumulative counters (mirrored to telemetry when attached).
  std::uint64_t apply_failures() const {
    return apply_failures_.load(std::memory_order_relaxed);
  }
  std::uint64_t anti_entropy_repairs() const {
    return anti_entropy_repairs_.load(std::memory_order_relaxed);
  }

  /// Consult `injector` at fault_point::kMdsReplication before every
  /// replication RPC: any non-latency fault fails the push (the write
  /// stands; the replica lags until repaired). Latency faults proceed —
  /// wire delay modeling belongs to the net.* points, which replication
  /// traffic also traverses. Nullable to detach.
  void set_fault_injector(std::shared_ptr<FaultInjector> injector);
  void set_telemetry(std::shared_ptr<obs::Telemetry> telemetry);

 private:
  struct ShardState {
    EntryMap entries;
    std::uint64_t generation = 0;
    std::deque<ReplicationOp> log;
  };

  void append_locked(std::size_t shard, ReplicationOp op) IG_REQUIRES(mu_);
  /// Push everything `replica` is missing for `shard`. Returns true if
  /// the replica acknowledged the current generation.
  bool push_replica(std::size_t shard, const net::Address& replica);
  void count_apply_failure();

  net::Network& network_;
  CoordinatorOptions options_;
  ShardMap shard_map_;

  mutable Mutex mu_{lock_rank::kMdsReplication, "mds.ReplicationCoordinator"};
  std::vector<ShardState> shards_ IG_GUARDED_BY(mu_);
  std::vector<net::Address> replicas_ IG_GUARDED_BY(mu_);
  /// acked_[replica][shard] = last generation the replica confirmed.
  std::map<net::Address, std::vector<std::uint64_t>> acked_ IG_GUARDED_BY(mu_);
  std::shared_ptr<FaultInjector> fault_injector_ IG_GUARDED_BY(mu_);
  std::shared_ptr<obs::Telemetry> telemetry_ IG_GUARDED_BY(mu_);

  std::atomic<std::uint64_t> apply_failures_{0};
  std::atomic<std::uint64_t> anti_entropy_repairs_{0};
};

}  // namespace ig::mds
