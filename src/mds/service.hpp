// MDS wire protocol: the *separate* information-service protocol whose
// existence alongside GRAMP motivates the paper ("not only do the services
// operate through different ports, but they also use different protocols").
//
// Verb MDS_SEARCH, headers base/scope/filter, LDIF-style entry body in the
// response. Connections authenticate with the GSI handshake first (MDS 2.x
// integrated GSI). MdsClient is the client-side counterpart, establishing
// and caching an authenticated connection.
#pragma once

#include <memory>

#include "logging/log.hpp"
#include "mds/giis.hpp"
#include "mds/search_engine.hpp"
#include "net/network.hpp"
#include "security/handshake.hpp"

namespace ig::mds {

/// Serves a SearchBackend at a network address. When the backend is a
/// Giis (pass it via `registrar` too), the service additionally accepts
/// MDS_REGISTER requests: a remote GRIS announces its address and DN
/// suffix, and the GIIS aggregates it from then on — the MDS registration
/// protocol that builds VO-wide information hierarchies.
class MdsService {
 public:
  MdsService(std::shared_ptr<SearchBackend> backend, security::Credential credential,
             const security::TrustStore* trust, const Clock* clock,
             std::shared_ptr<logging::Logger> logger = nullptr,
             std::shared_ptr<Giis> registrar = nullptr);

  /// Bind to `address` on `network`.
  Status start(net::Network& network, const net::Address& address);
  void stop();

  const net::Address& address() const { return address_; }

  /// Observability opt-in: requests are served as traces (remote children
  /// when the caller propagated a context), spans tagged with this node's
  /// telemetry node id, and the finished spans backhauled to the caller.
  void set_telemetry(std::shared_ptr<obs::Telemetry> telemetry);

 private:
  net::Message handle(const net::Message& request, net::Session& session);
  net::Message serve(const net::Message& request, net::Session& session);

  std::shared_ptr<SearchBackend> backend_;
  security::Credential credential_;  ///< also used for outbound child links
  const security::TrustStore* trust_;
  const Clock* clock_;
  security::Authenticator authenticator_;
  std::shared_ptr<logging::Logger> logger_;
  std::shared_ptr<Giis> registrar_;
  std::shared_ptr<obs::Telemetry> telemetry_;
  net::Network* network_ = nullptr;
  net::Address address_;
};

/// Client for an MdsService endpoint.
class MdsClient {
 public:
  MdsClient(net::Network& network, net::Address address, security::Credential credential,
            const security::TrustStore& trust, const Clock& clock);

  /// Search the remote directory. Connects + authenticates on first use;
  /// subsequent searches reuse the authenticated connection.
  Result<std::vector<DirectoryEntry>> search(const std::string& base, Scope scope,
                                             const Filter& filter);

  /// Register a GRIS with the remote GIIS: the aggregate will pull
  /// `suffix` from the MDS endpoint at `address` from now on. With a
  /// lease, the registration is soft state: it expires unless renewed by
  /// re-registering (which replaces the previous entry — no duplicates).
  Status register_backend(const std::string& suffix, const net::Address& address,
                          std::optional<Duration> lease = std::nullopt);

  /// Google-like keyword search (paper Sec. 3) over the remote directory;
  /// hits arrive ranked, score carried in the "ig-score" attribute.
  Result<std::vector<SearchHit>> keyword_search(const std::string& query,
                                                std::size_t max_hits = 10);

  /// Traffic accounting for the experiments (zero before first use).
  net::TrafficStats stats() const;

  /// Drop the connection (next call reconnects and re-authenticates).
  void disconnect();

 private:
  Status ensure_connected();

  net::Network& network_;
  net::Address address_;
  security::Credential credential_;
  const security::TrustStore& trust_;
  const Clock& clock_;
  std::unique_ptr<net::Connection> connection_;
  net::TrafficStats closed_stats_;  ///< accumulated from dropped connections
};

/// A SearchBackend proxy over MdsClient, so a local GIIS can aggregate a
/// *remote* GRIS exactly as MDS registration does.
class RemoteBackend final : public SearchBackend {
 public:
  RemoteBackend(std::shared_ptr<MdsClient> client, std::string suffix);

  Result<std::vector<DirectoryEntry>> search(const std::string& base, Scope scope,
                                             const Filter& filter) override;
  std::string suffix() const override { return suffix_; }

 private:
  std::shared_ptr<MdsClient> client_;
  std::string suffix_;
};

}  // namespace ig::mds
