#include "gram/job_manager.hpp"

namespace ig::gram {

namespace {
// "Indefinite" backend waits are bounded to keep a wedged backend from
// leaking monitor threads forever; generous enough for any simulated job.
constexpr Duration kLongWait = seconds(300);
}  // namespace

JobManager::JobManager(std::string contact, std::uint64_t log_job_id,
                       exec::JobRequest request,
                       std::shared_ptr<exec::LocalJobExecution> backend,
                       std::shared_ptr<logging::Logger> logger, ManagerOptions options)
    : contact_(std::move(contact)),
      log_job_id_(log_job_id),
      request_(std::move(request)),
      backend_(std::move(backend)),
      logger_(std::move(logger)),
      options_(std::move(options)) {}

JobManager::~JobManager() = default;  // monitor_ joins

Status JobManager::start() {
  auto id = backend_->submit(request_);
  if (!id.ok()) return id.error();
  {
    MutexLock lock(mu_);
    current_backend_id_ = id.value();
  }
  if (options_.telemetry != nullptr) {
    options_.telemetry->metrics().gauge(obs::metric::kJobsActive).add(1);
  }
  monitor_ = std::jthread([this] { monitor_loop(); });
  return Status::success();
}

void JobManager::record(const exec::JobStatus& status) {
  std::function<void(const exec::JobStatus&)> callback;
  bool changed = false;
  {
    MutexLock lock(mu_);
    changed = info_.status.state != status.state;
    info_.status = status;
    if (changed) callback = options_.on_transition;
  }
  cv_.notify_all();
  if (changed && options_.telemetry != nullptr) {
    options_.telemetry->metrics()
        .counter(std::string(obs::metric::kJobTransitionPrefix) +
                 std::string(exec::to_string(status.state)))
        .add();
  }
  if (callback) callback(status);
}

void JobManager::monitor_loop() {
  int attempt = 0;
  while (true) {
    exec::JobId backend_id;
    {
      MutexLock lock(mu_);
      backend_id = current_backend_id_;
    }
    // Surface the current (possibly ACTIVE) state to callbacks before
    // blocking on the terminal state.
    if (auto status = backend_->status(backend_id); status.ok()) record(status.value());

    Result<exec::JobStatus> final_status(Error(ErrorCode::kInternal, "unset"));
    if (options_.timeout) {
      final_status = backend_->wait(backend_id, *options_.timeout);
      if (!final_status.ok() && final_status.code() == ErrorCode::kTimeout) {
        if (options_.timeout_action == rsl::TimeoutAction::kCancel) {
          // (timeout=...)(action=cancel): cancel the running command.
          (void)backend_->cancel(backend_id);
          final_status = backend_->wait(backend_id, kLongWait);
        } else {
          // (action=exception): report the timeout but let the command
          // continue to completion.
          {
            MutexLock lock(mu_);
            info_.timeout_fired = true;
          }
          cv_.notify_all();
          final_status = backend_->wait(backend_id, kLongWait);
        }
      }
    } else {
      final_status = backend_->wait(backend_id, kLongWait);
    }

    const bool backend_reported = final_status.ok();
    if (!backend_reported) {
      // Backend wedged or job vanished: report as failed. Not restarted
      // below — a wait that never returned does not prove the job is
      // terminal, and resubmitting could run it twice.
      exec::JobStatus failed;
      failed.id = backend_id;
      failed.state = exec::JobState::kFailed;
      failed.error = final_status.error().to_string();
      record(failed);
    } else {
      // The backend wait above runs in wall time, so on a virtual clock a
      // simulated job "finishes" before the wall timeout can fire. Enforce
      // the deadline against the job's own (virtual) start/finish stamps:
      // cancel means the job would have been killed at the deadline;
      // exception reports the overrun but keeps the completed result.
      exec::JobStatus done = final_status.value();
      if (options_.timeout && done.state == exec::JobState::kDone &&
          done.started.count() > 0 && done.finished > done.started &&
          done.finished - done.started > *options_.timeout) {
        if (options_.timeout_action == rsl::TimeoutAction::kCancel) {
          done.state = exec::JobState::kCancelled;
          done.error = "job exceeded timeout";
        } else {
          {
            MutexLock lock(mu_);
            info_.timeout_fired = true;
          }
          cv_.notify_all();
        }
      }
      record(done);
    }

    exec::JobState state;
    {
      MutexLock lock(mu_);
      state = info_.status.state;
    }
    if (logger_ != nullptr) {
      auto type = state == exec::JobState::kDone        ? logging::EventType::kJobFinished
                  : state == exec::JobState::kCancelled ? logging::EventType::kJobCancelled
                                                        : logging::EventType::kJobFailed;
      // Intermediate failures that will be restarted are not logged as
      // final failures; the restart event below covers them.
      if (state != exec::JobState::kFailed || attempt >= options_.max_restarts) {
        logger_->log(type, options_.subject, options_.local_user, log_job_id_,
                     contact_);
      }
    }

    if (state == exec::JobState::kFailed && backend_reported &&
        attempt < options_.max_restarts) {
      ++attempt;
      {
        MutexLock lock(mu_);
        info_.restarts = attempt;
      }
      if (logger_ != nullptr) {
        logger_->log(logging::EventType::kJobRestarted, options_.subject,
                     options_.local_user, log_job_id_, request_.spec.executable);
      }
      if (options_.telemetry != nullptr) {
        options_.telemetry->metrics().counter(obs::metric::kJobsRestarted).add();
      }
      auto id = backend_->submit(request_);
      if (!id.ok()) {
        exec::JobStatus failed;
        failed.state = exec::JobState::kFailed;
        failed.error = "restart submission failed: " + id.error().to_string();
        record(failed);
        break;
      }
      {
        MutexLock lock(mu_);
        current_backend_id_ = id.value();
      }
      continue;
    }
    break;
  }
  exec::JobStatus final_state;
  {
    MutexLock lock(mu_);
    finalized_ = true;
    final_state = info_.status;
  }
  cv_.notify_all();
  if (options_.telemetry != nullptr) {
    options_.telemetry->metrics().gauge(obs::metric::kJobsActive).sub(1);
    if (final_state.finished > final_state.started && final_state.started.count() > 0) {
      options_.telemetry->metrics()
          .histogram(obs::metric::kJobSeconds)
          .observe(static_cast<double>((final_state.finished - final_state.started).count()) /
                   1e6);
    }
  }
}

ManagedJobInfo JobManager::info() const {
  MutexLock lock(mu_);
  return info_;
}

Status JobManager::cancel() {
  exec::JobId backend_id;
  {
    MutexLock lock(mu_);
    backend_id = current_backend_id_;
  }
  return backend_->cancel(backend_id);
}

Result<ManagedJobInfo> JobManager::wait(Duration timeout) const {
  MutexLock lock(mu_);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::microseconds(timeout.count());
  while (!finalized_) {
    if (cv_.wait_until(mu_, deadline) == std::cv_status::timeout && !finalized_) {
      return Error(ErrorCode::kTimeout, "job manager not finalized: " + contact_);
    }
  }
  return info_;
}

}  // namespace ig::gram
