// JobManager (paper Sec. 2, middle tier): "each job submitted by a client
// to the same GRAM will start its own job manager" which then "handles the
// communication between the client and the backend system". This one adds
// the InfoGram enhancements of Sec. 6.1: fault tolerance ("a logging and
// fault tolerance mechanism that allows to restart a job upon failure")
// and the planned timeout/action extension of Sec. 6.6.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <thread>

#include "common/sync.hpp"
#include "exec/job.hpp"
#include "logging/log.hpp"
#include "obs/telemetry.hpp"
#include "rsl/xrsl.hpp"

namespace ig::gram {

struct ManagerOptions {
  int max_restarts = 0;  ///< additional attempts after a failure
  std::optional<Duration> timeout;
  rsl::TimeoutAction timeout_action = rsl::TimeoutAction::kCancel;
  std::string subject;     ///< authenticated DN, for the log
  std::string local_user;  ///< gridmap-mapped account
  /// Called on every state transition (callback notifications).
  std::function<void(const exec::JobStatus&)> on_transition;
  /// Counts state transitions, restarts, active jobs and job runtime
  /// (gram.* metrics). Nullable.
  std::shared_ptr<obs::Telemetry> telemetry;
};

/// Client-visible job manager state.
struct ManagedJobInfo {
  exec::JobStatus status;
  int restarts = 0;
  bool timeout_fired = false;  ///< action=exception: deadline passed but job ran on
};

class JobManager {
 public:
  /// `contact` is the GRAM job handle (GlobusID). The manager logs its
  /// lifecycle through `logger` (nullable) and drives `backend`.
  JobManager(std::string contact, std::uint64_t log_job_id, exec::JobRequest request,
             std::shared_ptr<exec::LocalJobExecution> backend,
             std::shared_ptr<logging::Logger> logger, ManagerOptions options);
  ~JobManager();

  JobManager(const JobManager&) = delete;
  JobManager& operator=(const JobManager&) = delete;

  /// Begin managing: submits to the backend and starts the monitor thread.
  Status start();

  const std::string& contact() const { return contact_; }
  ManagedJobInfo info() const;

  /// Forward a cancellation to the backend.
  Status cancel();

  /// Block until the manager reached a final state (after all restarts).
  Result<ManagedJobInfo> wait(Duration timeout) const;

 private:
  void monitor_loop();
  void record(const exec::JobStatus& status);

  std::string contact_;
  std::uint64_t log_job_id_;
  exec::JobRequest request_;
  std::shared_ptr<exec::LocalJobExecution> backend_;
  std::shared_ptr<logging::Logger> logger_;
  ManagerOptions options_;

  mutable Mutex mu_{lock_rank::kJobManager, "gram.JobManager"};
  mutable CondVar cv_;
  ManagedJobInfo info_ IG_GUARDED_BY(mu_);
  exec::JobId current_backend_id_ IG_GUARDED_BY(mu_) = 0;
  bool finalized_ IG_GUARDED_BY(mu_) = false;

  std::jthread monitor_;
};

}  // namespace ig::gram
