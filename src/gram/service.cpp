#include "gram/service.hpp"

#include "common/id.hpp"
#include "common/strings.hpp"

namespace ig::gram {

Result<exec::JobState> job_state_from_string(std::string_view name) {
  for (auto state : {exec::JobState::kPending, exec::JobState::kActive, exec::JobState::kDone,
                     exec::JobState::kFailed, exec::JobState::kCancelled}) {
    if (to_string(state) == name) return state;
  }
  return Error(ErrorCode::kParseError, "unknown job state: " + std::string(name));
}

GramService::GramService(std::shared_ptr<exec::LocalJobExecution> backend,
                         security::Credential credential, const security::TrustStore* trust,
                         const security::GridMap* gridmap,
                         const security::AuthorizationPolicy* policy, const Clock* clock,
                         std::shared_ptr<logging::Logger> logger, GramConfig config)
    : backend_(std::move(backend)),
      authenticator_(std::move(credential), trust, gridmap, clock),
      policy_(policy),
      clock_(clock),
      logger_(std::move(logger)),
      config_(std::move(config)) {
  if (config_.telemetry != nullptr) authenticator_.set_telemetry(config_.telemetry);
}

Status GramService::start(net::Network& network) {
  network_ = &network;
  return network.listen(address(),
                        authenticator_.wrap([this](const net::Message& req,
                                                   net::Session& session) {
                          return handle(req, session);
                        }));
}

void GramService::stop() {
  if (network_ != nullptr) network_->close(address());
}

Result<std::string> GramService::submit_local(const rsl::XrslRequest& request,
                                              const std::string& subject,
                                              const std::string& local_user,
                                              const std::string& callback_address,
                                              obs::TraceContext* trace) {
  std::optional<obs::TraceContext::Span> span;
  if (trace != nullptr) span.emplace(trace->span("gram.submit"));
  if (!request.is_job()) {
    if (span) span->end("error: not a job");
    return Error(ErrorCode::kInvalidArgument,
                 "GRAM accepts job submissions only; use MDS for information queries");
  }
  if (policy_ != nullptr) {
    auto auth = policy_->authorize(subject, config_.host, "submit", clock_->now());
    if (!auth.ok()) {
      if (span) span->end(auth.error().to_string());
      return auth.error();
    }
  }
  std::shared_ptr<exec::LocalJobExecution> backend = backend_;
  if (request.job->job_type == "jar") {
    if (config_.jar_backend == nullptr) {
      if (span) span->end("error: no jar backend");
      return Error(ErrorCode::kInvalidArgument, "this GRAM does not accept jar jobs");
    }
    backend = config_.jar_backend;
  }

  std::uint64_t id = IdGenerator::next();
  std::string contact = IdGenerator::job_contact(config_.host, config_.port, id);

  exec::JobRequest job_request;
  job_request.spec = *request.job;
  job_request.local_user = local_user;

  ManagerOptions options;
  options.max_restarts = config_.max_restarts;
  options.timeout = request.timeout;
  options.timeout_action = request.action;
  options.subject = subject;
  options.local_user = local_user;
  options.telemetry = config_.telemetry;
  if (!callback_address.empty()) {
    options.on_transition = [this, callback_address, contact](const exec::JobStatus& status) {
      notify_callback(callback_address, contact, status);
    };
  }

  // The kJobSubmitted event carries the full RSL: it is the checkpoint
  // recovery replays after a crash.
  if (logger_ != nullptr) {
    logger_->log(logging::EventType::kJobSubmitted, subject, local_user, id,
                 request.to_rsl());
    logger_->log(logging::EventType::kJobStarted, subject, local_user, id, contact);
  }

  auto manager = std::make_shared<JobManager>(contact, id, std::move(job_request), backend,
                                              logger_, std::move(options));
  if (auto status = manager->start(); !status.ok()) {
    if (logger_ != nullptr) {
      logger_->log(logging::EventType::kJobFailed, subject, local_user, id,
                   status.error().to_string());
    }
    if (span) span->end(status.error().to_string());
    return status.error();
  }
  if (config_.telemetry != nullptr) {
    config_.telemetry->metrics().counter(obs::metric::kJobsSubmitted).add();
  }
  {
    MutexLock lock(mu_);
    jobs_[contact] = std::move(manager);
  }
  return contact;
}

std::shared_ptr<JobManager> GramService::manager(const std::string& contact) const {
  MutexLock lock(mu_);
  auto it = jobs_.find(contact);
  return it == jobs_.end() ? nullptr : it->second;
}

Result<ManagedJobInfo> GramService::job_info(const std::string& contact) const {
  auto m = manager(contact);
  if (m == nullptr) return Error(ErrorCode::kNotFound, "unknown job contact: " + contact);
  return m->info();
}

Status GramService::cancel(const std::string& contact) {
  auto m = manager(contact);
  if (m == nullptr) return Error(ErrorCode::kNotFound, "unknown job contact: " + contact);
  return m->cancel();
}

Result<ManagedJobInfo> GramService::wait(const std::string& contact, Duration timeout) const {
  auto m = manager(contact);
  if (m == nullptr) return Error(ErrorCode::kNotFound, "unknown job contact: " + contact);
  return m->wait(timeout);
}

std::size_t GramService::job_count() const {
  MutexLock lock(mu_);
  return jobs_.size();
}

void GramService::notify_callback(const std::string& callback_address,
                                  const std::string& contact,
                                  const exec::JobStatus& status) {
  auto parts = strings::split(callback_address, ':');
  if (parts.size() != 2 || network_ == nullptr) return;
  auto port = strings::parse_int(parts[1]);
  if (!port) return;
  auto conn = network_->connect({parts[0], static_cast<int>(*port)});
  if (!conn.ok()) return;  // best-effort, like GRAM's UDP-ish callbacks
  net::Message msg("GRAM_CALLBACK");
  msg.with("contact", contact);
  msg.with("state", std::string(to_string(status.state)));
  (void)(*conn)->request(msg);
}

net::Message GramService::handle(const net::Message& request, net::Session& session) {
  const std::string subject = session.authenticated_subject().value_or("");
  const std::string local_user = session.local_user().value_or("");

  if (request.verb == "GRAM_SUBMIT") return handle_submit(request, session);

  auto contact = request.header("contact");
  if (!contact) {
    return net::Message::error(
        Error(ErrorCode::kInvalidArgument, request.verb + " requires a contact header"));
  }
  if (request.verb == "GRAM_STATUS" || request.verb == "GRAM_WAIT") {
    Result<ManagedJobInfo> info(Error(ErrorCode::kInternal, "unset"));
    if (request.verb == "GRAM_WAIT") {
      auto timeout_ms = strings::parse_int(request.header_or("timeout_ms", "60000"));
      info = wait(*contact, ms(timeout_ms.value_or(60000)));
    } else {
      info = job_info(*contact);
    }
    if (!info.ok()) return net::Message::error(info.error());
    net::Message resp = net::Message::ok();
    resp.with("state", std::string(to_string(info->status.state)));
    resp.with("exit_code", std::to_string(info->status.exit_code));
    resp.with("restarts", std::to_string(info->restarts));
    resp.with("timeout_fired", info->timeout_fired ? "1" : "0");
    return resp;
  }
  if (request.verb == "GRAM_OUTPUT") {
    auto info = job_info(*contact);
    if (!info.ok()) return net::Message::error(info.error());
    return net::Message::ok(info->status.output);
  }
  if (request.verb == "GRAM_CANCEL") {
    auto status = cancel(*contact);
    if (!status.ok()) return net::Message::error(status.error());
    return net::Message::ok();
  }
  return net::Message::error(
      Error(ErrorCode::kInvalidArgument, "unknown GRAMP verb: " + request.verb));
}

net::Message GramService::handle_submit(const net::Message& request, net::Session& session) {
  auto parsed = rsl::XrslRequest::parse(request.body);
  if (!parsed.ok()) return net::Message::error(parsed.error());
  auto contact = submit_local(parsed.value(), session.authenticated_subject().value_or(""),
                              session.local_user().value_or(""),
                              request.header_or("callback", ""));
  if (!contact.ok()) return net::Message::error(contact.error());
  net::Message resp = net::Message::ok();
  resp.with("contact", contact.value());
  return resp;
}

GramClient::GramClient(net::Network& network, net::Address address,
                       security::Credential credential, const security::TrustStore& trust,
                       const Clock& clock)
    : network_(network),
      address_(std::move(address)),
      credential_(std::move(credential)),
      trust_(trust),
      clock_(clock) {}

Status GramClient::ensure_connected() {
  if (connection_ != nullptr) return Status::success();
  auto conn = network_.connect(address_);
  if (!conn.ok()) return conn.error();
  connection_ = std::move(conn.value());
  auto auth = security::authenticate(*connection_, credential_, trust_, clock_);
  if (!auth.ok()) {
    closed_stats_.merge(connection_->stats());
    connection_.reset();
    return auth.error();
  }
  return Status::success();
}

Result<net::Message> GramClient::roundtrip(const net::Message& request) {
  if (auto status = ensure_connected(); !status.ok()) return status.error();
  auto resp = connection_->request(request);
  if (!resp.ok()) return resp;
  if (resp->is_error()) return net::Message::to_error(*resp);
  return resp;
}

Result<std::string> GramClient::submit(const std::string& rsl,
                                       const std::string& callback_address) {
  net::Message req("GRAM_SUBMIT", rsl);
  if (!callback_address.empty()) req.with("callback", callback_address);
  auto resp = roundtrip(req);
  if (!resp.ok()) return resp.error();
  auto contact = resp->header("contact");
  if (!contact) return Error(ErrorCode::kInternal, "submit response missing contact");
  return *contact;
}

namespace {
Result<GramClient::RemoteStatus> parse_status(const net::Message& resp) {
  GramClient::RemoteStatus status;
  auto state = job_state_from_string(resp.header_or("state", ""));
  if (!state.ok()) return state.error();
  status.state = state.value();
  status.exit_code =
      static_cast<int>(strings::parse_int(resp.header_or("exit_code", "-1")).value_or(-1));
  status.restarts =
      static_cast<int>(strings::parse_int(resp.header_or("restarts", "0")).value_or(0));
  status.timeout_fired = resp.header_or("timeout_fired", "0") == "1";
  return status;
}
}  // namespace

Result<GramClient::RemoteStatus> GramClient::status(const std::string& contact) {
  net::Message req("GRAM_STATUS");
  req.with("contact", contact);
  auto resp = roundtrip(req);
  if (!resp.ok()) return resp.error();
  return parse_status(*resp);
}

Result<std::string> GramClient::output(const std::string& contact) {
  net::Message req("GRAM_OUTPUT");
  req.with("contact", contact);
  auto resp = roundtrip(req);
  if (!resp.ok()) return resp.error();
  return resp->body;
}

Status GramClient::cancel(const std::string& contact) {
  net::Message req("GRAM_CANCEL");
  req.with("contact", contact);
  auto resp = roundtrip(req);
  if (!resp.ok()) return resp.error();
  return Status::success();
}

Result<GramClient::RemoteStatus> GramClient::wait(const std::string& contact,
                                                  Duration timeout) {
  net::Message req("GRAM_WAIT");
  req.with("contact", contact);
  req.with("timeout_ms", std::to_string(timeout.count() / 1000));
  auto resp = roundtrip(req);
  if (!resp.ok()) return resp.error();
  return parse_status(*resp);
}

net::TrafficStats GramClient::stats() const {
  net::TrafficStats total = closed_stats_;
  if (connection_ != nullptr) total.merge(connection_->stats());
  return total;
}

void GramClient::disconnect() {
  if (connection_ != nullptr) {
    closed_stats_.merge(connection_->stats());
    connection_.reset();
  }
}

CallbackListener::CallbackListener(net::Network& network, net::Address address)
    : network_(network), address_(std::move(address)) {
  (void)network_.listen(address_, [this](const net::Message& req, net::Session&) {
    if (req.verb != "GRAM_CALLBACK") {
      return net::Message::error(Error(ErrorCode::kInvalidArgument, "expected GRAM_CALLBACK"));
    }
    Notification note;
    note.contact = req.header_or("contact", "");
    if (auto state = job_state_from_string(req.header_or("state", "")); state.ok()) {
      note.state = state.value();
    }
    {
      MutexLock lock(mu_);
      notifications_.push_back(std::move(note));
    }
    cv_.notify_all();
    return net::Message::ok();
  });
}

CallbackListener::~CallbackListener() { network_.close(address_); }

std::vector<CallbackListener::Notification> CallbackListener::notifications() const {
  MutexLock lock(mu_);
  return notifications_;
}

bool CallbackListener::wait_for(std::size_t n, Duration timeout) const {
  MutexLock lock(mu_);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::microseconds(timeout.count());
  while (notifications_.size() < n) {
    if (cv_.wait_until(mu_, deadline) == std::cv_status::timeout) {
      return notifications_.size() >= n;
    }
  }
  return true;
}

}  // namespace ig::gram
