// GRAM service and client over the GRAMP protocol (paper Sec. 2).
//
// Three-tier structure: the client submits RSL; the gatekeeper
// authenticates (GSI handshake), maps the subject to a local account
// (gridmap) and checks the authorization policy; each accepted job gets
// its own JobManager driving a pluggable backend. Job handles are GRAM
// contact strings ("https://host:port/jobmanager/<id>") usable "from
// other remote clients with appropriate authorization".
//
// GRAMP verbs: GRAM_SUBMIT (body = RSL) -> contact header;
// GRAM_STATUS / GRAM_OUTPUT / GRAM_CANCEL / GRAM_WAIT take the contact.
// Clients may pass a `callback` address at submit: the service connects
// back and delivers GRAM_CALLBACK messages on every state transition
// (the GRAM event-notification mechanism).
//
// This is the *job-only* half of the paper's Fig. 2 baseline: information
// queries are rejected here, which is exactly the two-protocol friction
// InfoGram removes.
#pragma once

#include <map>
#include <memory>

#include "common/sync.hpp"
#include "exec/job.hpp"
#include "gram/job_manager.hpp"
#include "logging/log.hpp"
#include "net/network.hpp"
#include "obs/telemetry.hpp"
#include "security/authorization.hpp"
#include "security/handshake.hpp"

namespace ig::gram {

struct GramConfig {
  std::string host = "gram.sim";
  int port = 2119;  ///< the classic gatekeeper port
  int max_restarts = 0;
  /// Backend for (jobtype=jar) submissions; nullptr rejects them.
  std::shared_ptr<exec::LocalJobExecution> jar_backend;
  /// Shared with every JobManager this service creates (gram.* metrics,
  /// submit spans). Nullable.
  std::shared_ptr<obs::Telemetry> telemetry;
};

class GramService {
 public:
  GramService(std::shared_ptr<exec::LocalJobExecution> backend,
              security::Credential credential, const security::TrustStore* trust,
              const security::GridMap* gridmap, const security::AuthorizationPolicy* policy,
              const Clock* clock, std::shared_ptr<logging::Logger> logger,
              GramConfig config = {});

  Status start(net::Network& network);
  void stop();

  net::Address address() const { return {config_.host, config_.port}; }

  /// Submit directly (in-process path used by recovery and tests). With
  /// `trace` set, the submission is recorded as a "gram.submit" span.
  Result<std::string> submit_local(const rsl::XrslRequest& request,
                                   const std::string& subject,
                                   const std::string& local_user,
                                   const std::string& callback_address = "",
                                   obs::TraceContext* trace = nullptr);

  Result<ManagedJobInfo> job_info(const std::string& contact) const;
  Status cancel(const std::string& contact);
  Result<ManagedJobInfo> wait(const std::string& contact, Duration timeout) const;

  std::size_t job_count() const;

  /// Attach a network without binding an endpoint: composing services
  /// (InfoGram) serve GRAMP through their own port but still need the
  /// network for callback notifications.
  void attach_network(net::Network& network) { network_ = &network; }

  /// Dispatch one GRAMP request (used by both this service's endpoint and
  /// the InfoGram unified endpoint for protocol backwards compatibility).
  net::Message handle(const net::Message& request, net::Session& session);

 private:
  net::Message handle_submit(const net::Message& request, net::Session& session);
  std::shared_ptr<JobManager> manager(const std::string& contact) const;
  void notify_callback(const std::string& callback_address, const std::string& contact,
                       const exec::JobStatus& status);

  std::shared_ptr<exec::LocalJobExecution> backend_;
  security::Authenticator authenticator_;
  const security::AuthorizationPolicy* policy_;
  const Clock* clock_;
  std::shared_ptr<logging::Logger> logger_;
  GramConfig config_;

  net::Network* network_ = nullptr;
  mutable Mutex mu_{lock_rank::kGramService, "gram.GramService"};
  std::map<std::string, std::shared_ptr<JobManager>> jobs_ IG_GUARDED_BY(mu_);  // by contact
};

/// Client for a GramService (or for the job half of an InfoGram service).
class GramClient {
 public:
  GramClient(net::Network& network, net::Address address, security::Credential credential,
             const security::TrustStore& trust, const Clock& clock);

  /// Submit an RSL string; returns the job contact.
  Result<std::string> submit(const std::string& rsl,
                             const std::string& callback_address = "");

  struct RemoteStatus {
    exec::JobState state = exec::JobState::kPending;
    int exit_code = -1;
    int restarts = 0;
    bool timeout_fired = false;
  };

  Result<RemoteStatus> status(const std::string& contact);
  Result<std::string> output(const std::string& contact);
  Status cancel(const std::string& contact);
  /// Server-side wait until terminal (or remote timeout).
  Result<RemoteStatus> wait(const std::string& contact, Duration timeout);

  net::TrafficStats stats() const;
  void disconnect();

 private:
  Status ensure_connected();
  Result<net::Message> roundtrip(const net::Message& request);

  net::Network& network_;
  net::Address address_;
  security::Credential credential_;
  const security::TrustStore& trust_;
  const Clock& clock_;
  std::unique_ptr<net::Connection> connection_;
  net::TrafficStats closed_stats_;
};

/// Listens at an address for GRAM_CALLBACK notifications and records them;
/// the client-side half of GRAM event notification.
class CallbackListener {
 public:
  CallbackListener(net::Network& network, net::Address address);
  ~CallbackListener();

  struct Notification {
    std::string contact;
    exec::JobState state = exec::JobState::kPending;
  };

  std::vector<Notification> notifications() const;
  /// Wait (wall time) until at least `n` notifications arrived.
  bool wait_for(std::size_t n, Duration timeout) const;

  const net::Address& address() const { return address_; }

 private:
  net::Network& network_;
  net::Address address_;
  /// Unranked: leaf lock, nothing else is acquired while it is held.
  mutable Mutex mu_{lock_rank::kUnranked, "gram.CallbackListener"};
  mutable CondVar cv_;
  std::vector<Notification> notifications_ IG_GUARDED_BY(mu_);
};

Result<exec::JobState> job_state_from_string(std::string_view name);

}  // namespace ig::gram
