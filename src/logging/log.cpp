#include "logging/log.hpp"

#include <fstream>

#include "common/strings.hpp"

namespace ig::logging {

namespace {

constexpr std::pair<std::string_view, EventType> kEventNames[] = {
    {"service_start", EventType::kServiceStart},
    {"service_stop", EventType::kServiceStop},
    {"auth", EventType::kAuth},
    {"job_submitted", EventType::kJobSubmitted},
    {"job_started", EventType::kJobStarted},
    {"job_finished", EventType::kJobFinished},
    {"job_failed", EventType::kJobFailed},
    {"job_cancelled", EventType::kJobCancelled},
    {"job_restarted", EventType::kJobRestarted},
    {"info_query", EventType::kInfoQuery},
    {"trace", EventType::kTrace},
};

std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string unescape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\' || i + 1 >= s.size()) {
      out += s[i];
      continue;
    }
    ++i;
    switch (s[i]) {
      case 't':
        out += '\t';
        break;
      case 'n':
        out += '\n';
        break;
      default:
        out += s[i];
    }
  }
  return out;
}

}  // namespace

std::string_view to_string(EventType type) {
  for (const auto& [name, t] : kEventNames) {
    if (t == type) return name;
  }
  return "unknown";
}

Result<EventType> event_type_from_string(std::string_view name) {
  for (const auto& [n, t] : kEventNames) {
    if (n == name) return t;
  }
  return Error(ErrorCode::kParseError, "unknown event type: " + std::string(name));
}

std::string LogEvent::serialize() const {
  return std::to_string(sequence) + "\t" + std::to_string(time.count()) + "\t" +
         std::string(to_string(type)) + "\t" + escape(subject) + "\t" + escape(local_user) +
         "\t" + std::to_string(job_id) + "\t" + escape(detail);
}

Result<LogEvent> LogEvent::parse(const std::string& line) {
  auto fields = strings::split(line, '\t');
  if (fields.size() != 7) {
    return Error(ErrorCode::kParseError,
                 strings::format("log line has %zu fields, expected 7", fields.size()));
  }
  LogEvent event;
  auto seq = strings::parse_int(fields[0]);
  auto time = strings::parse_int(fields[1]);
  auto job = strings::parse_int(fields[5]);
  if (!seq || !time || !job) {
    return Error(ErrorCode::kParseError, "malformed numeric field in log line");
  }
  event.sequence = static_cast<std::uint64_t>(*seq);
  event.time = TimePoint(*time);
  auto type = event_type_from_string(fields[2]);
  if (!type.ok()) return type.error();
  event.type = type.value();
  event.subject = unescape(fields[3]);
  event.local_user = unescape(fields[4]);
  event.job_id = static_cast<std::uint64_t>(*job);
  event.detail = unescape(fields[6]);
  return event;
}

void MemorySink::append(const LogEvent& event) {
  MutexLock lock(mu_);
  events_.push_back(event);
}

std::vector<LogEvent> MemorySink::events() const {
  MutexLock lock(mu_);
  return events_;
}

std::size_t MemorySink::size() const {
  MutexLock lock(mu_);
  return events_.size();
}

FileSink::FileSink(std::string path)
    : path_(std::move(path)), out_(path_, std::ios::app) {}

void FileSink::append(const LogEvent& event) {
  MutexLock lock(mu_);
  if (!out_.good()) {
    // The stream went bad (disk full, file rotated away): retry once with
    // a fresh handle rather than silently dropping every later event.
    out_.close();
    out_.clear();
    out_.open(path_, std::ios::app);
  }
  out_ << event.serialize() << '\n';
  out_.flush();
}

Result<std::vector<LogEvent>> FileSink::read(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Error(ErrorCode::kIoError, "cannot open log file: " + path);
  std::vector<LogEvent> events;
  std::string line;
  while (std::getline(in, line)) {
    if (strings::trim(line).empty()) continue;
    auto event = LogEvent::parse(line);
    if (!event.ok()) {
      // A malformed *last* line is the signature of a crash mid-write;
      // recover everything before it. Corruption earlier in the log is a
      // real error.
      if (in.peek() == std::ifstream::traits_type::eof()) break;
      return event.error();
    }
    events.push_back(std::move(event.value()));
  }
  return events;
}

Logger::Logger(const Clock& clock) : clock_(clock) {}

void Logger::add_sink(std::shared_ptr<LogSink> sink) {
  MutexLock lock(mu_);
  sinks_.push_back(std::move(sink));
  sink_count_.store(sinks_.size(), std::memory_order_relaxed);
}

bool Logger::has_sinks() const {
  MutexLock lock(mu_);
  return !sinks_.empty();
}

void Logger::log(EventType type, std::string subject, std::string local_user,
                 std::uint64_t job_id, std::string detail) {
  LogEvent event;
  event.type = type;
  event.subject = std::move(subject);
  event.local_user = std::move(local_user);
  event.job_id = job_id;
  event.detail = std::move(detail);
  event.time = clock_.now();
  std::vector<std::shared_ptr<LogSink>> sinks;
  {
    MutexLock lock(mu_);
    event.sequence = next_sequence_++;
    sinks = sinks_;
  }
  for (const auto& sink : sinks) sink->append(event);
}

std::uint64_t Logger::events_logged() const {
  MutexLock lock(mu_);
  return next_sequence_ - 1;
}

std::vector<IncompleteJob> build_recovery_plan(const std::vector<LogEvent>& events) {
  std::map<std::uint64_t, IncompleteJob> open;
  for (const LogEvent& event : events) {
    switch (event.type) {
      case EventType::kJobSubmitted:
      case EventType::kJobRestarted: {
        IncompleteJob job;
        job.job_id = event.job_id;
        job.subject = event.subject;
        job.local_user = event.local_user;
        job.rsl = event.detail;
        open[event.job_id] = std::move(job);
        break;
      }
      case EventType::kJobFinished:
      case EventType::kJobFailed:
      case EventType::kJobCancelled:
        open.erase(event.job_id);
        break;
      default:
        break;
    }
  }
  std::vector<IncompleteJob> plan;
  plan.reserve(open.size());
  for (auto& [id, job] : open) plan.push_back(std::move(job));
  return plan;
}

std::map<std::string, AccountingEntry> accounting_summary(
    const std::vector<LogEvent>& events) {
  std::map<std::string, AccountingEntry> summary;
  std::map<std::uint64_t, std::pair<std::string, TimePoint>> started;  // job -> (user, start)
  for (const LogEvent& event : events) {
    const std::string& user = event.subject.empty() ? event.local_user : event.subject;
    switch (event.type) {
      case EventType::kJobSubmitted:
      case EventType::kJobRestarted:
        ++summary[user].jobs_submitted;
        break;
      case EventType::kJobStarted:
        started[event.job_id] = {user, event.time};
        break;
      case EventType::kJobFinished:
      case EventType::kJobFailed:
      case EventType::kJobCancelled: {
        AccountingEntry& entry = summary[user];
        if (event.type == EventType::kJobFinished) ++entry.jobs_completed;
        if (event.type == EventType::kJobFailed) ++entry.jobs_failed;
        if (event.type == EventType::kJobCancelled) ++entry.jobs_cancelled;
        auto it = started.find(event.job_id);
        if (it != started.end()) {
          entry.job_wall_time += event.time - it->second.second;
          started.erase(it);
        }
        break;
      }
      case EventType::kInfoQuery:
        ++summary[user].info_queries;
        break;
      default:
        break;
    }
  }
  return summary;
}

}  // namespace ig::logging
