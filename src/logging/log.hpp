// Logging and checkpointing service (paper Sec. 6 and 7, "Logging").
//
// InfoGram routes events from all components into a logging service whose
// log "can be used to restart our InfoGram service in case it needs to be
// restarted", doubles as minimal checkpointing (command + arguments of
// each job) and feeds "simple Grid accounting". The log is an append-only
// sequence of structured events; sinks persist it (memory for tests,
// file for durability). Recovery scans the log for jobs that were
// submitted but never reached a terminal state; accounting aggregates
// per-user usage.
#pragma once

#include <atomic>
#include <cstdint>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "common/error.hpp"
#include "common/sync.hpp"

namespace ig::logging {

enum class EventType {
  kServiceStart,
  kServiceStop,
  kAuth,
  kJobSubmitted,  ///< detail = the job's RSL (the checkpoint payload)
  kJobStarted,
  kJobFinished,
  kJobFailed,
  kJobCancelled,
  kJobRestarted,
  kInfoQuery,  ///< detail = queried keywords
  kTrace,      ///< detail = completed request trace summary (obs bridge)
};

std::string_view to_string(EventType type);
Result<EventType> event_type_from_string(std::string_view name);

struct LogEvent {
  std::uint64_t sequence = 0;
  TimePoint time{0};
  EventType type = EventType::kServiceStart;
  std::string subject;     ///< authenticated DN ("" for service events)
  std::string local_user;
  std::uint64_t job_id = 0;
  std::string detail;

  /// One tab-separated line; tabs/newlines/backslashes in fields escaped.
  std::string serialize() const;
  static Result<LogEvent> parse(const std::string& line);

  friend bool operator==(const LogEvent&, const LogEvent&) = default;
};

/// Receives every event appended to a Logger.
class LogSink {
 public:
  virtual ~LogSink() = default;
  virtual void append(const LogEvent& event) = 0;
};

/// In-memory sink; also what recovery and accounting read back.
class MemorySink final : public LogSink {
 public:
  void append(const LogEvent& event) override;
  std::vector<LogEvent> events() const;
  std::size_t size() const;

 private:
  mutable Mutex mu_{lock_rank::kLogSink, "logging.MemorySink"};
  std::vector<LogEvent> events_ IG_GUARDED_BY(mu_);
};

/// Line-per-event file sink (the "backend tier" log of Fig. 3).
///
/// The stream is opened once (append mode) and flushed after every event,
/// so each record reaches the OS before append() returns — a process crash
/// loses nothing already logged. No fsync is attempted (std::ofstream has
/// none), so an OS/power failure may drop the tail; recovery tolerates a
/// truncated last line.
class FileSink final : public LogSink {
 public:
  explicit FileSink(std::string path);
  void append(const LogEvent& event) override;
  const std::string& path() const { return path_; }

  /// Read a log file back (for restart). A partial (crash-truncated) last
  /// line is skipped rather than failing the whole recovery.
  static Result<std::vector<LogEvent>> read(const std::string& path);

 private:
  Mutex mu_{lock_rank::kLogSink, "logging.FileSink"};
  std::string path_;
  std::ofstream out_ IG_GUARDED_BY(mu_);
};

class Logger {
 public:
  explicit Logger(const Clock& clock);

  void add_sink(std::shared_ptr<LogSink> sink);

  /// True once any sink is attached. Callers that build expensive event
  /// strings (the telemetry trace bridge) check this first so a sink-less
  /// logger costs nothing per event.
  bool has_sinks() const;

  /// Lock-free has_sinks(): true once any sink is attached. The query
  /// fast path consults this on every request — audited deployments
  /// (accounting reads the kInfoQuery event stream) must take the full,
  /// logging path, and the probe itself must not reintroduce a mutex.
  bool audits() const { return sink_count_.load(std::memory_order_relaxed) > 0; }

  /// Append an event; sequence and time are stamped here.
  void log(EventType type, std::string subject = "", std::string local_user = "",
           std::uint64_t job_id = 0, std::string detail = "");

  std::uint64_t events_logged() const;

 private:
  const Clock& clock_;
  mutable Mutex mu_{lock_rank::kLogger, "logging.Logger"};
  std::uint64_t next_sequence_ IG_GUARDED_BY(mu_) = 1;
  std::vector<std::shared_ptr<LogSink>> sinks_ IG_GUARDED_BY(mu_);
  std::atomic<std::size_t> sink_count_{0};  ///< mirrors sinks_.size()
};

/// A job that must be resubmitted after a crash: it was submitted (and
/// possibly started) but never finished, failed or was cancelled.
struct IncompleteJob {
  std::uint64_t job_id = 0;
  std::string subject;
  std::string local_user;
  std::string rsl;  ///< from the kJobSubmitted checkpoint

  friend bool operator==(const IncompleteJob&, const IncompleteJob&) = default;
};

/// Scan a log (oldest first) for incomplete jobs.
std::vector<IncompleteJob> build_recovery_plan(const std::vector<LogEvent>& events);

/// Per-user usage derived from the log (the paper's "simple Grid
/// accounting").
struct AccountingEntry {
  std::uint64_t jobs_submitted = 0;
  std::uint64_t jobs_completed = 0;
  std::uint64_t jobs_failed = 0;
  std::uint64_t jobs_cancelled = 0;
  std::uint64_t info_queries = 0;
  Duration job_wall_time{0};  ///< sum of start->finish spans

  friend bool operator==(const AccountingEntry&, const AccountingEntry&) = default;
};

std::map<std::string, AccountingEntry> accounting_summary(
    const std::vector<LogEvent>& events);

}  // namespace ig::logging
