#include "soap/gateway.hpp"

#include "common/strings.hpp"
#include "net/traced.hpp"

namespace ig::soap {

SoapGateway::SoapGateway(core::InfoGramService& service, security::Credential credential,
                         const security::TrustStore* trust,
                         const security::GridMap* gridmap, const Clock* clock, int port)
    : service_(service),
      authenticator_(std::move(credential), trust, gridmap, clock),
      port_(port) {}

net::Address SoapGateway::address() const {
  return {service_.address().host, port_};
}

Status SoapGateway::start(net::Network& network) {
  network_ = &network;
  return network.listen(address(),
                        authenticator_.wrap([this](const net::Message& req,
                                                   net::Session& session) {
                          return handle(req, session);
                        }));
}

void SoapGateway::stop() {
  if (network_ != nullptr) network_->close(address());
}

net::Message SoapGateway::handle(const net::Message& request, net::Session& session) {
  // SOAP posts are a grid hop like any other: extract the wire context so
  // the envelope dispatch (and everything service_.execute touches) joins
  // the caller's trace, and backhaul our spans in the response.
  return net::serve_traced(service_.telemetry(), "soap:" + request.verb, request, session,
                           [this](const net::Message& req, net::Session& s) {
                             return serve(req, s);
                           });
}

net::Message SoapGateway::serve(const net::Message& request, net::Session& session) {
  if (request.verb == "GET_WSDL") return net::Message::ok(describe());
  if (request.verb != "SOAP") {
    return net::Message::error(
        Error(ErrorCode::kInvalidArgument, "gateway accepts SOAP posts only"));
  }
  auto op = parse_envelope(request.body);
  if (!op.ok()) return net::Message::ok(to_fault(op.error()));
  auto response = dispatch(op.value(), session);
  if (!response.ok()) return net::Message::ok(to_fault(response.error()));
  return net::Message::ok(to_envelope(response.value()));
}

Result<Operation> SoapGateway::dispatch(const Operation& op, net::Session& session) {
  const std::string subject = session.authenticated_subject().value_or("");
  const std::string local_user = session.local_user().value_or("");
  Operation response;
  response.name = op.name + "Response";

  if (op.name == "submitJob") {
    auto request = rsl::XrslRequest::parse(op.parameter_or("rsl", ""));
    if (!request.ok()) return request.error();
    auto result = service_.execute(request.value(), subject, local_user,
                                   op.parameter_or("callback", ""));
    if (!result.ok()) return result.error();
    if (!result->job_contact) {
      return Error(ErrorCode::kInvalidArgument, "submitJob requires job attributes");
    }
    response.parameters["contact"] = *result->job_contact;
    return response;
  }
  if (op.name == "queryInfo") {
    rsl::XrslBuilder builder;
    for (const auto& key : strings::split_fields(op.parameter_or("keys", ""), ',')) {
      builder.info(key);
    }
    auto mode = op.parameter_or("response", "cached");
    if (mode == "immediate") {
      builder.response(rsl::ResponseMode::kImmediate);
    } else if (mode == "last") {
      builder.response(rsl::ResponseMode::kLast);
    }
    std::string fmt = op.parameter_or("format", "xml");
    if (fmt == "ldif") {
      builder.format(rsl::OutputFormat::kLdif);
    } else if (fmt == "dsml") {
      builder.format(rsl::OutputFormat::kDsml);
    } else {
      builder.format(rsl::OutputFormat::kXml);
    }
    if (auto q = strings::parse_double(op.parameter_or("quality", ""))) {
      builder.quality(*q);
    }
    for (const auto& f : strings::split_fields(op.parameter_or("filter", ""), ',')) {
      builder.filter(f);
    }
    auto result = service_.execute(builder.request(), subject, local_user);
    if (!result.ok()) return result.error();
    response.parameters["format"] = std::string(to_string(result->format));
    response.parameters["payload"] = result->payload();
    response.parameters["count"] = std::to_string(result->record_count());
    return response;
  }
  if (op.name == "getSchema") {
    rsl::XrslBuilder builder;
    builder.schema();
    auto result = service_.execute(builder.request(), subject, local_user);
    if (!result.ok()) return result.error();
    response.parameters["schema"] = result->payload();
    return response;
  }
  if (op.name == "jobStatus" || op.name == "waitJob") {
    std::string contact = op.parameter_or("contact", "");
    Result<gram::ManagedJobInfo> info(Error(ErrorCode::kInternal, "unset"));
    if (op.name == "waitJob") {
      auto timeout = strings::parse_int(op.parameter_or("timeoutMs", "60000"));
      info = service_.wait(contact, ms(timeout.value_or(60000)));
    } else {
      info = service_.job_info(contact);
    }
    if (!info.ok()) return info.error();
    response.parameters["state"] = std::string(to_string(info->status.state));
    response.parameters["exitCode"] = std::to_string(info->status.exit_code);
    response.parameters["restarts"] = std::to_string(info->restarts);
    return response;
  }
  if (op.name == "jobOutput") {
    auto info = service_.job_info(op.parameter_or("contact", ""));
    if (!info.ok()) return info.error();
    response.parameters["output"] = info->status.output;
    return response;
  }
  if (op.name == "cancelJob") {
    auto status = service_.cancel(op.parameter_or("contact", ""));
    if (!status.ok()) return status.error();
    response.parameters["ok"] = "true";
    return response;
  }
  return Error(ErrorCode::kNotFound, "unknown SOAP operation: " + op.name);
}

std::string SoapGateway::describe() const {
  // Minimal WSDL 1.1: messages, portType, binding and service location.
  struct Op {
    const char* name;
    const char* in;
    const char* out;
  };
  static const Op kOps[] = {
      {"submitJob", "rsl callback", "contact"},
      {"queryInfo", "keys response format quality filter", "format payload count"},
      {"getSchema", "", "schema"},
      {"jobStatus", "contact", "state exitCode restarts"},
      {"jobOutput", "contact", "output"},
      {"cancelJob", "contact", "ok"},
      {"waitJob", "contact timeoutMs", "state exitCode restarts"},
  };
  std::string out =
      "<definitions name=\"InfoGram\" "
      "xmlns=\"http://schemas.xmlsoap.org/wsdl/\" "
      "targetNamespace=\"http://www.globus.org/namespaces/2002/07/infogram\">\n";
  for (const Op& op : kOps) {
    out += "  <message name=\"" + std::string(op.name) + "Request\">\n";
    for (const auto& part : strings::split_fields(op.in, ' ')) {
      out += "    <part name=\"" + part + "\" type=\"xsd:string\"/>\n";
    }
    out += "  </message>\n";
    out += "  <message name=\"" + std::string(op.name) + "Response\">\n";
    for (const auto& part : strings::split_fields(op.out, ' ')) {
      out += "    <part name=\"" + part + "\" type=\"xsd:string\"/>\n";
    }
    out += "  </message>\n";
  }
  out += "  <portType name=\"InfoGramPortType\">\n";
  for (const Op& op : kOps) {
    out += "    <operation name=\"" + std::string(op.name) + "\">\n";
    out += "      <input message=\"" + std::string(op.name) + "Request\"/>\n";
    out += "      <output message=\"" + std::string(op.name) + "Response\"/>\n";
    out += "    </operation>\n";
  }
  out += "  </portType>\n";
  out += "  <service name=\"InfoGramService\">\n";
  out += "    <port name=\"InfoGramPort\" binding=\"InfoGramBinding\">\n";
  out += "      <address location=\"soap://" + address().to_string() + "\"/>\n";
  out += "    </port>\n";
  out += "  </service>\n";
  out += "</definitions>\n";
  return out;
}

SoapClient::SoapClient(net::Network& network, net::Address address,
                       security::Credential credential, const security::TrustStore& trust,
                       const Clock& clock)
    : network_(network),
      address_(std::move(address)),
      credential_(std::move(credential)),
      trust_(trust),
      clock_(clock) {}

Status SoapClient::ensure_connected() {
  if (connection_ != nullptr) return Status::success();
  auto conn = network_.connect(address_);
  if (!conn.ok()) return conn.error();
  connection_ = std::move(conn.value());
  auto auth = security::authenticate(*connection_, credential_, trust_, clock_);
  if (!auth.ok()) {
    closed_stats_.merge(connection_->stats());
    connection_.reset();
    return auth.error();
  }
  return Status::success();
}

Result<Operation> SoapClient::call(const Operation& op) {
  if (auto status = ensure_connected(); !status.ok()) return status.error();
  auto resp = connection_->request(net::Message("SOAP", to_envelope(op)));
  if (!resp.ok()) return resp.error();
  if (resp->is_error()) return net::Message::to_error(*resp);
  if (is_fault(resp->body)) {
    auto fault = parse_fault(resp->body);
    if (!fault.ok()) return fault.error();
    return fault->error;  // the remote error, surfaced to the caller
  }
  return parse_envelope(resp->body);
}

Result<std::string> SoapClient::submit_job(const std::string& rsl) {
  Operation op;
  op.name = "submitJob";
  op.parameters["rsl"] = rsl;
  auto resp = call(op);
  if (!resp.ok()) return resp.error();
  return resp->parameter_or("contact", "");
}

Result<std::vector<format::InfoRecord>> SoapClient::query_info(
    const std::vector<std::string>& keys, rsl::ResponseMode response,
    rsl::OutputFormat format) {
  Operation op;
  op.name = "queryInfo";
  op.parameters["keys"] = strings::join(keys, ",");
  op.parameters["response"] = std::string(to_string(response));
  op.parameters["format"] = std::string(to_string(format));
  auto resp = call(op);
  if (!resp.ok()) return resp.error();
  const std::string payload = resp->parameter_or("payload", "");
  return resp->parameter_or("format", "xml") == "ldif" ? format::parse_ldif(payload)
                                                       : format::parse_xml(payload);
}

Result<format::ServiceSchema> SoapClient::fetch_schema() {
  Operation op;
  op.name = "getSchema";
  auto resp = call(op);
  if (!resp.ok()) return resp.error();
  return format::ServiceSchema::parse_xml(resp->parameter_or("schema", ""));
}

Result<exec::JobState> SoapClient::job_status(const std::string& contact) {
  Operation op;
  op.name = "jobStatus";
  op.parameters["contact"] = contact;
  auto resp = call(op);
  if (!resp.ok()) return resp.error();
  return gram::job_state_from_string(resp->parameter_or("state", ""));
}

Result<std::string> SoapClient::job_output(const std::string& contact) {
  Operation op;
  op.name = "jobOutput";
  op.parameters["contact"] = contact;
  auto resp = call(op);
  if (!resp.ok()) return resp.error();
  return resp->parameter_or("output", "");
}

Status SoapClient::cancel(const std::string& contact) {
  Operation op;
  op.name = "cancelJob";
  op.parameters["contact"] = contact;
  auto resp = call(op);
  if (!resp.ok()) return resp.error();
  return Status::success();
}

Result<exec::JobState> SoapClient::wait(const std::string& contact, Duration timeout) {
  Operation op;
  op.name = "waitJob";
  op.parameters["contact"] = contact;
  op.parameters["timeoutMs"] = std::to_string(timeout.count() / 1000);
  auto resp = call(op);
  if (!resp.ok()) return resp.error();
  return gram::job_state_from_string(resp->parameter_or("state", ""));
}

Result<std::string> SoapClient::fetch_wsdl() {
  if (auto status = ensure_connected(); !status.ok()) return status.error();
  auto resp = connection_->request(net::Message("GET_WSDL"));
  if (!resp.ok()) return resp.error();
  if (resp->is_error()) return net::Message::to_error(*resp);
  return resp->body;
}

net::TrafficStats SoapClient::stats() const {
  net::TrafficStats total = closed_stats_;
  if (connection_ != nullptr) total.merge(connection_->stats());
  return total;
}

}  // namespace ig::soap
