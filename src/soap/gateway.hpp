// The InfoGram web-service gateway (paper Sec. 10/11: "We are also
// experimenting with integration of our framework in Web services"; "It
// is straight forward to cast the InfoGram in WSDL").
//
// The gateway exposes the InfoGram service as SOAP operations on its own
// port, translating envelopes to the native execute/job-management calls:
//
//   submitJob(rsl[, callback])       -> contact
//   queryInfo(keys[, response, format, quality, filter]) -> payload
//   getSchema()                      -> schema XML
//   jobStatus(contact)               -> state, exitCode, restarts
//   jobOutput(contact)               -> output
//   cancelJob(contact)               -> ok
//   waitJob(contact, timeoutMs)      -> state, exitCode
//
// describe() generates the WSDL document for these operations. Transport
// security reuses the GSI handshake (standing in for WS-Security /
// HTTPS, which the OGSA successor introduced).
#pragma once

// analyze-allow(layering): the gateway fronts a live InfoGramService
// with a WS endpoint (OGSA-style); it adapts core's public execute()
// surface and holds a non-owning reference.
#include "core/infogram_service.hpp"
#include "soap/envelope.hpp"

namespace ig::soap {

class SoapGateway {
 public:
  /// `service` must outlive the gateway. The gateway authenticates with
  /// the same credential/trust/gridmap fabric as the native endpoint.
  SoapGateway(core::InfoGramService& service, security::Credential credential,
              const security::TrustStore* trust, const security::GridMap* gridmap,
              const Clock* clock, int port = 8080);

  Status start(net::Network& network);
  void stop();
  net::Address address() const;

  /// The WSDL document describing this gateway.
  std::string describe() const;

 private:
  net::Message handle(const net::Message& request, net::Session& session);
  net::Message serve(const net::Message& request, net::Session& session);
  Result<Operation> dispatch(const Operation& op, net::Session& session);

  core::InfoGramService& service_;
  security::Authenticator authenticator_;
  int port_;
  net::Network* network_ = nullptr;
};

/// Client for a SoapGateway endpoint.
class SoapClient {
 public:
  SoapClient(net::Network& network, net::Address address, security::Credential credential,
             const security::TrustStore& trust, const Clock& clock);

  /// Raw operation call; Faults come back as Errors.
  Result<Operation> call(const Operation& op);

  /// Typed helpers.
  Result<std::string> submit_job(const std::string& rsl);
  Result<std::vector<format::InfoRecord>> query_info(
      const std::vector<std::string>& keys,
      rsl::ResponseMode response = rsl::ResponseMode::kCached,
      rsl::OutputFormat format = rsl::OutputFormat::kXml);
  Result<format::ServiceSchema> fetch_schema();
  Result<exec::JobState> job_status(const std::string& contact);
  Result<std::string> job_output(const std::string& contact);
  Status cancel(const std::string& contact);
  Result<exec::JobState> wait(const std::string& contact, Duration timeout);

  /// Fetch the service's WSDL.
  Result<std::string> fetch_wsdl();

  net::TrafficStats stats() const;

 private:
  Status ensure_connected();

  net::Network& network_;
  net::Address address_;
  security::Credential credential_;
  const security::TrustStore& trust_;
  const Clock& clock_;
  std::unique_ptr<net::Connection> connection_;
  net::TrafficStats closed_stats_;
};

}  // namespace ig::soap
