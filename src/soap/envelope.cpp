#include "soap/envelope.hpp"

#include "common/strings.hpp"
#include "format/xml.hpp"

namespace ig::soap {

namespace {
constexpr const char* kEnvelopeOpen =
    "<soap:Envelope xmlns:soap=\"http://schemas.xmlsoap.org/soap/envelope/\" "
    "xmlns:ig=\"http://www.globus.org/namespaces/2002/07/infogram\">\n";
constexpr const char* kEnvelopeClose = "</soap:Envelope>\n";
}  // namespace

std::string Operation::parameter_or(const std::string& key, std::string fallback) const {
  auto it = parameters.find(key);
  return it == parameters.end() ? std::move(fallback) : it->second;
}

std::string to_envelope(const Operation& op) {
  std::string out = kEnvelopeOpen;
  out += "  <soap:Body>\n";
  out += "    <ig:" + op.name + ">\n";
  for (const auto& [key, value] : op.parameters) {
    out += "      <ig:" + key + ">" + format::xml_escape(value) + "</ig:" + key + ">\n";
  }
  out += "    </ig:" + op.name + ">\n";
  out += "  </soap:Body>\n";
  out += kEnvelopeClose;
  return out;
}

std::string to_fault(const Error& error) {
  std::string out = kEnvelopeOpen;
  out += "  <soap:Body>\n";
  out += "    <soap:Fault>\n";
  out += "      <faultcode>soap:Server." + std::string(to_string(error.code)) +
         "</faultcode>\n";
  out += "      <faultstring>" + format::xml_escape(error.message) + "</faultstring>\n";
  out += "    </soap:Fault>\n";
  out += "  </soap:Body>\n";
  out += kEnvelopeClose;
  return out;
}

namespace {

/// Strip a "prefix:" from an element name.
std::string local_name(const std::string& name) {
  std::size_t colon = name.find(':');
  return colon == std::string::npos ? name : name.substr(colon + 1);
}

Result<const format::XmlElement*> find_body(const format::XmlElement& root) {
  if (local_name(root.name) != "Envelope") {
    return Error(ErrorCode::kParseError, "not a SOAP envelope: <" + root.name + ">");
  }
  for (const auto& child : root.children) {
    if (local_name(child.name) == "Body") return &child;
  }
  return Error(ErrorCode::kParseError, "SOAP envelope has no Body");
}

}  // namespace

bool is_fault(const std::string& xml) {
  return strings::contains(xml, "<soap:Fault>") || strings::contains(xml, ":Fault>");
}

Result<Operation> parse_envelope(const std::string& xml) {
  auto root = format::parse_xml_element(xml);
  if (!root.ok()) return root.error();
  auto body = find_body(root.value());
  if (!body.ok()) return body.error();
  if (body.value()->children.size() != 1) {
    return Error(ErrorCode::kParseError, "SOAP Body must contain exactly one operation");
  }
  const format::XmlElement& op_element = body.value()->children.front();
  if (local_name(op_element.name) == "Fault") {
    return Error(ErrorCode::kParseError, "envelope is a Fault; use parse_fault()");
  }
  Operation op;
  op.name = local_name(op_element.name);
  for (const auto& param : op_element.children) {
    op.parameters[local_name(param.name)] = param.text;
  }
  return op;
}

Result<Fault> parse_fault(const std::string& xml) {
  auto root = format::parse_xml_element(xml);
  if (!root.ok()) return root.error();
  auto body = find_body(root.value());
  if (!body.ok()) return body.error();
  for (const auto& child : body.value()->children) {
    if (local_name(child.name) != "Fault") continue;
    Fault fault;
    Error& error = fault.error;
    error = Error(ErrorCode::kInternal, "");
    for (const auto& field : child.children) {
      if (local_name(field.name) == "faultstring") error.message = field.text;
      if (local_name(field.name) == "faultcode") {
        // "soap:Server.<code-name>"
        std::size_t dot = field.text.rfind('.');
        std::string name = dot == std::string::npos ? field.text : field.text.substr(dot + 1);
        for (auto code :
             {ErrorCode::kParseError, ErrorCode::kNotFound, ErrorCode::kStale,
              ErrorCode::kDenied, ErrorCode::kTimeout, ErrorCode::kUnavailable,
              ErrorCode::kInvalidArgument, ErrorCode::kAlreadyExists,
              ErrorCode::kCancelled, ErrorCode::kIoError, ErrorCode::kInternal}) {
          if (to_string(code) == name) error.code = code;
        }
      }
    }
    return fault;
  }
  return Error(ErrorCode::kParseError, "envelope contains no Fault");
}

}  // namespace ig::soap
