// SOAP 1.1-style envelopes (paper objectives: "Improve the reliability of
// the job execution and in a second phase while replacing the protocol
// used to perform the Job submission with SOAP" and "Develop this service
// while providing forwards compatibility to Web services").
//
// The subset implemented is what the InfoGram web-service gateway needs:
// an Envelope/Body pair, one operation element with string parameters,
// and SOAP Faults for errors. Namespaces are fixed prefixes rather than a
// full namespace implementation — enough to be recognizably SOAP and to
// measure the commodity-protocol overhead the paper trades against.
#pragma once

#include <map>
#include <string>

#include "common/error.hpp"

namespace ig::soap {

/// One SOAP call or response: an operation name plus named string
/// parameters, e.g. operation "submitJob" with parameter rsl="...".
struct Operation {
  std::string name;
  std::map<std::string, std::string> parameters;

  std::string parameter_or(const std::string& key, std::string fallback) const;

  friend bool operator==(const Operation&, const Operation&) = default;
};

/// Serialize an operation into a SOAP envelope.
std::string to_envelope(const Operation& op);

/// Serialize an error into a SOAP Fault envelope.
std::string to_fault(const Error& error);

/// Parse an envelope. A Fault parses into an Error result.
Result<Operation> parse_envelope(const std::string& xml);

/// True if the XML is a Fault envelope; used by clients before parsing.
bool is_fault(const std::string& xml);

/// A parsed Fault: wraps the remote error (distinct from the Result's
/// own error channel, which reports *parse* failures).
struct Fault {
  Error error;
};

/// Map a fault back to the Error it carried.
Result<Fault> parse_fault(const std::string& xml);

}  // namespace ig::soap
