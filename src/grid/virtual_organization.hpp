// Virtual organization (paper Sec. 4, Fig. 2): "our Grid consists of one
// virtual organization that maintains a number of compute resources" —
// plus the shared security fabric: one CA, one trust store, a gridmap and
// an authorization policy, and the VO-level GIIS aggregating the
// resources' information services.
//
// SporadicGrid (paper Sec. 8) is the short-lived variant: "a Grid created
// just for a short period of time during sophisticated experiments at
// synchrotrons or photon sources". It provisions a VO with N InfoGram
// resources in one call and tears everything down on destruction; the
// ease-of-deployment measurement in the examples uses it.
#pragma once

#include <memory>
#include <vector>

#include "grid/resource.hpp"
#include "mds/giis.hpp"

namespace ig::grid {

class VirtualOrganization {
 public:
  VirtualOrganization(std::string name, net::Network& network, Clock& clock,
                      std::uint64_t seed = 7);

  const std::string& name() const { return name_; }

  /// Issue a user credential and map it to a local account on every
  /// resource of the VO.
  security::Credential enroll_user(const std::string& common_name,
                                   const std::string& local_account,
                                   Duration lifetime = seconds(86400));

  /// Provision (and start) a resource. The host certificate is issued by
  /// the VO's CA.
  Result<GridResource*> add_resource(ResourceOptions options);

  const std::vector<std::unique_ptr<GridResource>>& resources() const { return resources_; }
  GridResource* resource(const std::string& host) const;

  /// VO-level GIIS over the resources' monitors (registers each resource's
  /// GRIS on creation; resources added later register automatically).
  std::shared_ptr<mds::Giis> giis();

  security::TrustStore& trust() { return trust_; }
  security::GridMap& gridmap() { return gridmap_; }
  security::AuthorizationPolicy& policy() { return policy_; }
  std::shared_ptr<logging::Logger> logger() { return logger_; }
  security::CertificateAuthority& ca() { return ca_; }
  net::Network& network() { return network_; }
  Clock& clock() { return clock_; }

  GridContext context();

 private:
  std::string name_;
  net::Network& network_;
  Clock& clock_;
  security::CertificateAuthority ca_;
  security::TrustStore trust_;
  security::GridMap gridmap_;
  security::AuthorizationPolicy policy_;
  std::shared_ptr<logging::Logger> logger_;
  std::shared_ptr<mds::Giis> giis_;
  std::vector<std::unique_ptr<GridResource>> resources_;
};

/// RAII sporadic grid: N identical InfoGram resources, ready to use.
class SporadicGrid {
 public:
  struct Options {
    std::string vo_name = "sporadic";
    int resources = 3;
    int batch_nodes_per_resource = 2;
    std::uint64_t seed = 11;
  };

  SporadicGrid(net::Network& network, Clock& clock, Options options);

  VirtualOrganization& vo() { return vo_; }
  std::vector<net::Address> infogram_addresses() const;
  Duration provision_time() const { return provision_time_; }

 private:
  VirtualOrganization vo_;
  Duration provision_time_{0};
};

}  // namespace ig::grid
