// Load-aware broker: the "more sophisticated resource management
// strategies" the paper motivates (Sec. 5.2) — it uses the information
// half of InfoGram (CPULoad queries, optionally quality-gated) to decide
// where the job half should run. One client object per resource; both the
// query and the subsequent submission ride the same connection.
#pragma once

#include <memory>
#include <vector>

// analyze-allow(layering): the broker is deployment tooling — it drives
// whole InfoGram endpoints (the paper's Fig. 4 topology) through the
// public client, the same surface examples/ and tests/ use.
#include "core/infogram_client.hpp"

namespace ig::grid {

class LoadAwareBroker {
 public:
  struct Placement {
    std::string host;
    std::string contact;
    double load = 0.0;
  };

  struct Options {
    /// Keyword whose first numeric attribute is the load metric.
    std::string load_keyword = "CPULoad";
    rsl::ResponseMode response = rsl::ResponseMode::kCached;
    /// Minimum information quality to accept a cached load value.
    std::optional<double> quality_threshold;
  };

  LoadAwareBroker() = default;
  explicit LoadAwareBroker(Options options) : options_(std::move(options)) {}

  /// Attach a resource. The client must already point at its InfoGram
  /// endpoint; the broker keeps it alive.
  void add_resource(std::string host, std::shared_ptr<core::InfoGramClient> client);
  std::size_t resource_count() const { return resources_.size(); }

  /// Current load of every resource, by one info query each.
  Result<std::vector<std::pair<std::string, double>>> loads();

  /// Submit to the least-loaded resource.
  Result<Placement> submit(const rsl::XrslRequest& job);

  core::InfoGramClient* client(const std::string& host) const;

  /// Observability opt-in: loads() and submit() root `broker.loads` /
  /// `broker.submit` traces whose per-resource queries become hop spans
  /// propagated to each InfoGram endpoint (no-op inside an enclosing
  /// trace — the lookups become its spans instead).
  void set_telemetry(std::shared_ptr<obs::Telemetry> telemetry);

 private:
  Result<double> load_of(core::InfoGramClient& client);

  struct Entry {
    std::string host;
    std::shared_ptr<core::InfoGramClient> client;
  };

  Options options_;
  std::vector<Entry> resources_;
  std::shared_ptr<obs::Telemetry> telemetry_;  ///< set at wiring time
};

}  // namespace ig::grid
