// Peer-to-peer resource discovery — the JXTA experiment (paper Sec. 10:
// "We are also experimenting with integration of our framework in Web
// services and JXTA").
//
// Instead of registering with a central GIIS, every resource runs a
// discovery peer that gossips resource advertisements (host, InfoGram
// address, load, timestamp) with a few random neighbours per round.
// Advertisements spread epidemically — O(log n) rounds to reach every
// peer — and expire after a TTL, so departed resources age out without
// any central bookkeeping. The trade against the GIIS is the classic one:
// no single point of failure or registration step, but eventually-
// consistent (stale by up to TTL) information and per-round gossip
// traffic; bench_p2p_discovery measures both sides.
//
// Rounds are driven explicitly (tick()) so simulations are deterministic.
#pragma once

#include <atomic>
#include <map>
#include <vector>

#include "common/clock.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/sync.hpp"
#include "net/network.hpp"

namespace ig::grid {

/// What a peer advertises about its resource.
struct Advertisement {
  std::string host;
  net::Address infogram_address;
  double load = 0.0;
  TimePoint stamped{0};  ///< origin timestamp; newer always wins

  friend bool operator==(const Advertisement&, const Advertisement&) = default;
};

struct GossipConfig {
  int fanout = 2;              ///< neighbours contacted per round
  Duration advert_ttl = seconds(30);
  int gossip_port = 7400;      ///< the JXTA-ish rendezvous port
};

class DiscoveryPeer {
 public:
  /// Binds host:gossip_port on the network. `self` is this peer's own
  /// advertisement source (load is refreshed through `load_fn` each
  /// round, so adverts carry current data).
  DiscoveryPeer(net::Network& network, Clock& clock, std::string host,
                net::Address infogram_address, std::function<double()> load_fn,
                GossipConfig config, std::uint64_t seed);
  ~DiscoveryPeer();

  /// Introduce a bootstrap contact (a peer joins the overlay by knowing
  /// at least one other member — JXTA's rendezvous role).
  void add_neighbor(const net::Address& gossip_address);

  /// One gossip round: refresh the self-advert, pick `fanout` random
  /// neighbours, exchange advert sets (push-pull), expire stale entries.
  void tick();

  /// Current view of the overlay (fresh adverts only), self included.
  std::vector<Advertisement> view() const;
  /// Advert for a specific host, if known and fresh.
  Result<Advertisement> lookup(const std::string& host) const;

  net::Address gossip_address() const { return {host_, config_.gossip_port}; }
  const std::string& host() const { return host_; }

  /// Gossip messages sent by this peer (traffic metric).
  std::uint64_t messages_sent() const {
    return messages_sent_.load(std::memory_order_relaxed);
  }

  /// Observability opt-in: tick() roots a `gossip.round` trace (outbound
  /// exchanges become hop spans, propagated to the peers contacted) and
  /// served GOSSIP requests join the caller's trace as remote children.
  void set_telemetry(std::shared_ptr<obs::Telemetry> telemetry);

 private:
  net::Message handle(const net::Message& request, net::Session& session);
  net::Message serve(const net::Message& request, net::Session& session);
  std::string serialize_view() const IG_REQUIRES(mu_);
  void merge_adverts(const std::string& body);
  void expire_locked(TimePoint now) IG_REQUIRES(mu_);
  void refresh_self_locked() IG_REQUIRES(mu_);

  net::Network& network_;
  Clock& clock_;
  std::string host_;
  net::Address infogram_address_;
  std::function<double()> load_fn_;
  GossipConfig config_;
  Rng rng_ IG_GUARDED_BY(mu_);

  /// Ranked low: refresh_self_locked() runs load_fn_ (which may read the
  /// SimSystem or a SystemMonitor) while the lock is held.
  mutable Mutex mu_{lock_rank::kP2pDiscovery, "grid.DiscoveryPeer"};
  std::map<std::string, Advertisement> adverts_ IG_GUARDED_BY(mu_);  // by host
  std::vector<net::Address> neighbors_ IG_GUARDED_BY(mu_);
  std::atomic<std::uint64_t> messages_sent_{0};
  std::shared_ptr<obs::Telemetry> telemetry_;  ///< set at wiring time
};

/// Serialize/parse advert sets for the gossip wire format (exposed for
/// tests).
std::string serialize_adverts(const std::vector<Advertisement>& adverts);
Result<std::vector<Advertisement>> parse_adverts(const std::string& text);

}  // namespace ig::grid
