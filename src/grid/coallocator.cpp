#include "grid/coallocator.hpp"

#include <algorithm>
#include <optional>

#include "common/id.hpp"
#include "obs/propagation.hpp"

namespace ig::grid {

Result<CoAllocation> CoAllocator::submit(const rsl::XrslRequest& request) {
  if (!request.is_job() || request.job->count < 1) {
    return Error(ErrorCode::kInvalidArgument, "co-allocation needs a job with count >= 1");
  }
  auto loads = broker_.loads();
  if (!loads.ok()) return loads.error();
  // Least-loaded resources first.
  std::sort(loads->begin(), loads->end(),
            [](const auto& a, const auto& b) { return a.second < b.second; });

  int remaining = request.job->count;
  std::vector<std::pair<std::string, int>> plan;  // host -> processes
  for (const auto& [host, load] : loads.value()) {
    if (remaining <= 0) break;
    int take = std::min(remaining, max_per_resource_);
    plan.emplace_back(host, take);
    remaining -= take;
  }
  if (remaining > 0) {
    return Error(ErrorCode::kUnavailable,
                 "not enough resources to place count=" +
                     std::to_string(request.job->count));
  }

  CoAllocation allocation;
  allocation.id = "coalloc-" + std::to_string(IdGenerator::next());
  for (const auto& [host, count] : plan) {
    rsl::XrslRequest subjob = request;
    subjob.job->count = count;
    subjob.job->environment["coallocation_id"] = allocation.id;
    // Each placement is its own span of the enclosing trace (the broker's
    // submit trace, or a propagated InfoGram request): co-allocation cost
    // becomes attributable per target resource.
    std::optional<obs::TraceContext::Span> span;
    std::optional<obs::TraceScope> scope;
    obs::TraceContext* ctx = obs::active_trace().ctx;
    if (ctx != nullptr) {
      span.emplace(ctx->span("coalloc:" + host, obs::active_trace().span_id));
      scope.emplace(*ctx, span->id());
    }
    auto* client = broker_.client(host);
    if (client == nullptr) {
      if (span) span->end("error:lost-client");
      scope.reset();
      (void)cancel(allocation);
      return Error(ErrorCode::kInternal, "broker lost client for " + host);
    }
    auto contact = client->submit_job(subjob);
    if (!contact.ok()) {
      if (span) span->end("error:" + contact.error().to_string());
      scope.reset();
      // All-or-nothing placement: roll back what was already submitted.
      (void)cancel(allocation);
      return contact.error();
    }
    allocation.subjobs.push_back({host, std::move(contact.value()), count});
  }
  return allocation;
}

Result<CoAllocationStatus> CoAllocator::wait(const CoAllocation& allocation,
                                             Duration timeout) {
  CoAllocationStatus status;
  bool any_bad = false;
  for (const auto& subjob : allocation.subjobs) {
    auto* client = broker_.client(subjob.host);
    if (client == nullptr) {
      return Error(ErrorCode::kInternal, "broker lost client for " + subjob.host);
    }
    auto remote = client->wait(subjob.contact, timeout);
    if (!remote.ok()) return remote.error();
    switch (remote->state) {
      case exec::JobState::kDone:
        ++status.done;
        break;
      case exec::JobState::kFailed:
        ++status.failed;
        any_bad = true;
        break;
      case exec::JobState::kCancelled:
        ++status.cancelled;
        any_bad = true;
        break;
      default:
        break;
    }
    auto output = client->job_output(subjob.contact);
    if (output.ok() && !output->empty()) {
      status.output += "[" + subjob.host + "] " + output.value();
    }
  }
  if (any_bad) {
    // Barrier semantics: one bad subjob takes the allocation down.
    (void)cancel(allocation);
    status.state = status.failed > 0 ? exec::JobState::kFailed : exec::JobState::kCancelled;
  } else if (status.done == static_cast<int>(allocation.subjobs.size())) {
    status.state = exec::JobState::kDone;
  } else {
    status.state = exec::JobState::kActive;
  }
  return status;
}

Status CoAllocator::cancel(const CoAllocation& allocation) {
  Status first_error = Status::success();
  for (const auto& subjob : allocation.subjobs) {
    auto* client = broker_.client(subjob.host);
    if (client == nullptr) continue;
    auto status = client->cancel(subjob.contact);
    // Already-terminal subjobs are fine; remember real failures only.
    if (!status.ok() && status.code() != ErrorCode::kInvalidArgument &&
        status.code() != ErrorCode::kNotFound && first_error.ok()) {
      first_error = status;
    }
  }
  return first_error;
}

}  // namespace ig::grid
