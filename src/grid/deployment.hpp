// Deployment service (paper Sec. 7, "Deployment"): "We have demonstrated
// this service at SC2001 and featured the ease of installation of such a
// service while using the Java framework deployment methods known as Web
// Start... we are also able to maintain the upgradeability with more ease
// and to provide future solutions for automatically upgrading such
// services in production Grids."
//
// The repository is the Web Start server: versioned packages of sandbox
// tasks (the "jars") plus optional information-provider configuration.
// The Deployer installs or upgrades packages on grid resources, charging
// a transfer cost proportional to package size — so the "low overhead on
// installation time" claim is measurable (examples/sporadic_grid and the
// provisioning numbers in EXPERIMENTS.md).
#pragma once

#include <map>

#include "common/sync.hpp"
// analyze-allow(layering): deployment stamps out per-host service
// Configurations; the config type is core's published deployment
// surface, not service internals.
#include "core/config.hpp"
#include "grid/virtual_organization.hpp"

namespace ig::grid {

/// One deployable unit: sandbox tasks and provider configuration under a
/// versioned name.
struct ServicePackage {
  std::string name;
  int version = 1;
  std::size_t size_bytes = 1 << 20;  ///< modeled download size
  std::map<std::string, exec::SandboxTask> tasks;
  /// Extra information keywords the package brings (commands must exist
  /// in the target resource's registry).
  core::Configuration providers;
};

/// The "Web Start server": versioned package registry.
class DeploymentRepository {
 public:
  /// Publish a package; its version must exceed any published one of the
  /// same name (kInvalidArgument otherwise).
  Status publish(ServicePackage package);

  /// Latest published version of `name`.
  Result<ServicePackage> latest(const std::string& name) const;
  Result<int> latest_version(const std::string& name) const;
  std::vector<std::string> package_names() const;

 private:
  mutable Mutex mu_{lock_rank::kDeployment, "grid.DeploymentRepository"};
  std::map<std::string, ServicePackage> packages_ IG_GUARDED_BY(mu_);  // latest per name
};

/// Installs/upgrades packages onto grid resources.
class Deployer {
 public:
  /// `bytes_per_us` models the download bandwidth the transfer charges
  /// against the clock.
  Deployer(const DeploymentRepository& repository, Clock& clock,
           double bytes_per_us = 50.0);

  /// Install (or upgrade to) the latest version of `package` on the
  /// resource. No-op if already current. Returns the installed version.
  Result<int> deploy(const std::string& package, GridResource& resource);

  /// Installed version on a host; kNotFound if never deployed.
  Result<int> installed_version(const std::string& package, const std::string& host) const;

  /// Deploy the latest version of `package` to every resource of the VO;
  /// returns how many resources were (re)installed (0 = all current).
  Result<int> upgrade_all(const std::string& package, VirtualOrganization& vo);

  /// Total virtual time spent transferring + installing.
  Duration time_spent() const { return Duration(time_spent_us_.load()); }

 private:
  const DeploymentRepository& repository_;
  Clock& clock_;
  double bytes_per_us_;
  mutable Mutex mu_{lock_rank::kDeployment, "grid.Deployer"};
  /// (host, pkg) -> ver
  std::map<std::pair<std::string, std::string>, int> installed_ IG_GUARDED_BY(mu_);
  std::atomic<std::int64_t> time_spent_us_{0};
};

}  // namespace ig::grid
