#include "grid/resource.hpp"

namespace ig::grid {

GridResource::GridResource(GridContext context, security::Credential host_credential,
                           ResourceOptions options)
    : context_(context), credential_(std::move(host_credential)), options_(std::move(options)) {
  system_ = std::make_shared<exec::SimSystem>(*context_.clock, options_.seed, options_.host);
  registry_ = exec::CommandRegistry::standard(*context_.clock, system_, options_.seed ^ 0x5eed);
  monitor_ = std::make_shared<info::SystemMonitor>(*context_.clock, options_.host);
  exec::BatchConfig batch_config;
  batch_config.nodes = options_.batch_nodes;
  batch_ = std::make_shared<exec::BatchBackend>(registry_, *context_.clock, batch_config,
                                                system_);
  if (options_.telemetry != nullptr) batch_->set_telemetry(options_.telemetry);
  if (options_.with_sandbox) {
    exec::SandboxConfig sandbox_config;
    sandbox_config.capabilities = exec::CapabilitySet().grant(exec::Capability::kReadFile);
    sandbox_ = std::make_shared<exec::SandboxBackend>(*context_.clock, sandbox_config, system_);
  }
}

GridResource::~GridResource() { stop(); }

Status GridResource::start() {
  if (started_) return Status::success();
  if (auto status = options_.info_config.apply(*monitor_, registry_); !status.ok()) {
    return status;
  }
  if (options_.run_infogram) {
    core::InfoGramConfig config;
    config.host = options_.host;
    config.port = 2135;
    config.max_restarts = options_.max_restarts;
    config.jar_backend = sandbox_;
    config.telemetry = options_.telemetry;
    config.trace_sample_every = options_.trace_sample_every;
    infogram_ = std::make_unique<core::InfoGramService>(
        monitor_, batch_, credential_, context_.trust, context_.gridmap, context_.policy,
        context_.clock, context_.logger, config);
    if (auto status = infogram_->start(*context_.network); !status.ok()) return status;
  }
  if (options_.run_gram) {
    gram::GramConfig config;
    config.host = options_.host;
    config.port = 2119;
    config.max_restarts = options_.max_restarts;
    config.jar_backend = sandbox_;
    gram_ = std::make_unique<gram::GramService>(batch_, credential_, context_.trust,
                                                context_.gridmap, context_.policy,
                                                context_.clock, context_.logger, config);
    if (auto status = gram_->start(*context_.network); !status.ok()) return status;
  }
  if (options_.run_mds) {
    gris_ = std::make_shared<mds::Gris>(monitor_, options_.host, *context_.clock);
    mds_ = std::make_unique<mds::MdsService>(gris_, credential_, context_.trust,
                                             context_.clock, context_.logger);
    if (auto status = mds_->start(*context_.network, mds_address()); !status.ok()) {
      return status;
    }
  }
  started_ = true;
  return Status::success();
}

void GridResource::stop() {
  if (!started_) return;
  if (infogram_ != nullptr) infogram_->stop();
  if (gram_ != nullptr) gram_->stop();
  if (mds_ != nullptr) mds_->stop();
  started_ = false;
}

}  // namespace ig::grid
