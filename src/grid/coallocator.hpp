// Co-allocation across resources — the DUROC role (paper Sec. 7: J-GRAM
// does not implement DUROC itself but keeps multi-resource jobs such as
// MPICH-G2 startable; this is the substitute co-allocator built on the
// unified service).
//
// A (jobtype=multiple)(count=N) request is split into per-resource
// subjobs, spread over the least-loaded resources by the broker's load
// information, and managed as one logical job with barrier semantics:
// the co-allocated job is Done only when every subjob is Done, and a
// failure or cancellation of any subjob cancels the rest (the all-or-
// nothing property MPI startup needs).
#pragma once

#include "grid/broker.hpp"

namespace ig::grid {

/// One logical multi-resource job.
struct CoAllocation {
  std::string id;
  struct SubJob {
    std::string host;
    std::string contact;
    int count = 0;  ///< processes placed on this resource
  };
  std::vector<SubJob> subjobs;
};

struct CoAllocationStatus {
  exec::JobState state = exec::JobState::kPending;  ///< aggregated
  int done = 0;
  int failed = 0;
  int cancelled = 0;
  std::string output;  ///< concatenated subjob outputs (host-prefixed)
};

class CoAllocator {
 public:
  /// Uses the broker's resources and clients. `max_per_resource` caps how
  /// many of the job's `count` processes one resource receives.
  explicit CoAllocator(LoadAwareBroker& broker, int max_per_resource = 4)
      : broker_(broker), max_per_resource_(max_per_resource) {}

  /// Split and submit. The request must have (count >= 1); its count is
  /// distributed over resources in ascending-load order. Fails without
  /// side effects if the split cannot be placed; cancels already-placed
  /// subjobs if a later submission fails.
  Result<CoAllocation> submit(const rsl::XrslRequest& request);

  /// Aggregate status: Done iff all subjobs Done; Failed/Cancelled if any
  /// subjob is, with the remaining subjobs cancelled (barrier semantics).
  Result<CoAllocationStatus> wait(const CoAllocation& allocation, Duration timeout);

  /// Cancel every subjob.
  Status cancel(const CoAllocation& allocation);

 private:
  LoadAwareBroker& broker_;
  int max_per_resource_;
};

}  // namespace ig::grid
