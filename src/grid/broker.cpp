#include "grid/broker.hpp"

#include "common/strings.hpp"

namespace ig::grid {

void LoadAwareBroker::add_resource(std::string host,
                                   std::shared_ptr<core::InfoGramClient> client) {
  resources_.push_back(Entry{std::move(host), std::move(client)});
}

void LoadAwareBroker::set_telemetry(std::shared_ptr<obs::Telemetry> telemetry) {
  telemetry_ = std::move(telemetry);
}

core::InfoGramClient* LoadAwareBroker::client(const std::string& host) const {
  for (const auto& entry : resources_) {
    if (entry.host == host) return entry.client.get();
  }
  return nullptr;
}

Result<double> LoadAwareBroker::load_of(core::InfoGramClient& client) {
  rsl::XrslBuilder builder;
  builder.info(options_.load_keyword).response(options_.response);
  if (options_.quality_threshold) builder.quality(*options_.quality_threshold);
  auto resp = client.request(builder.request());
  if (!resp.ok()) return resp.error();
  for (const auto& record : resp->records) {
    for (const auto& attr : record.attributes) {
      if (auto v = strings::parse_double(attr.value)) return *v;
    }
  }
  return Error(ErrorCode::kNotFound,
               "no numeric attribute in " + options_.load_keyword + " record");
}

Result<std::vector<std::pair<std::string, double>>> LoadAwareBroker::loads() {
  // One discovery sweep = one trace; each resource's CPULoad query is a
  // propagated hop, so the per-endpoint latency is attributable.
  obs::ScopedTrace trace(telemetry_, "broker.loads");
  std::vector<std::pair<std::string, double>> out;
  for (const auto& entry : resources_) {
    auto load = load_of(*entry.client);
    if (!load.ok()) {
      trace.fail(load.error().to_string());
      return load.error();
    }
    out.emplace_back(entry.host, load.value());
  }
  return out;
}

Result<LoadAwareBroker::Placement> LoadAwareBroker::submit(const rsl::XrslRequest& job) {
  if (resources_.empty()) {
    return Error(ErrorCode::kUnavailable, "broker has no resources attached");
  }
  // Covers the load sweep AND the submission: loads() joins this trace
  // (ScopedTrace is a no-op inside an active one).
  obs::ScopedTrace trace(telemetry_, "broker.submit");
  auto all_loads = loads();
  if (!all_loads.ok()) {
    trace.fail(all_loads.error().to_string());
    return all_loads.error();
  }
  std::size_t best = 0;
  for (std::size_t i = 1; i < all_loads->size(); ++i) {
    if ((*all_loads)[i].second < (*all_loads)[best].second) best = i;
  }
  auto contact = resources_[best].client->submit_job(job);
  if (!contact.ok()) {
    trace.fail(contact.error().to_string());
    return contact.error();
  }
  Placement placement;
  placement.host = (*all_loads)[best].first;
  placement.load = (*all_loads)[best].second;
  placement.contact = std::move(contact.value());
  return placement;
}

}  // namespace ig::grid
