#include "grid/broker.hpp"

#include "common/strings.hpp"

namespace ig::grid {

void LoadAwareBroker::add_resource(std::string host,
                                   std::shared_ptr<core::InfoGramClient> client) {
  resources_.push_back(Entry{std::move(host), std::move(client)});
}

core::InfoGramClient* LoadAwareBroker::client(const std::string& host) const {
  for (const auto& entry : resources_) {
    if (entry.host == host) return entry.client.get();
  }
  return nullptr;
}

Result<double> LoadAwareBroker::load_of(core::InfoGramClient& client) {
  rsl::XrslBuilder builder;
  builder.info(options_.load_keyword).response(options_.response);
  if (options_.quality_threshold) builder.quality(*options_.quality_threshold);
  auto resp = client.request(builder.request());
  if (!resp.ok()) return resp.error();
  for (const auto& record : resp->records) {
    for (const auto& attr : record.attributes) {
      if (auto v = strings::parse_double(attr.value)) return *v;
    }
  }
  return Error(ErrorCode::kNotFound,
               "no numeric attribute in " + options_.load_keyword + " record");
}

Result<std::vector<std::pair<std::string, double>>> LoadAwareBroker::loads() {
  std::vector<std::pair<std::string, double>> out;
  for (const auto& entry : resources_) {
    auto load = load_of(*entry.client);
    if (!load.ok()) return load.error();
    out.emplace_back(entry.host, load.value());
  }
  return out;
}

Result<LoadAwareBroker::Placement> LoadAwareBroker::submit(const rsl::XrslRequest& job) {
  if (resources_.empty()) {
    return Error(ErrorCode::kUnavailable, "broker has no resources attached");
  }
  auto all_loads = loads();
  if (!all_loads.ok()) return all_loads.error();
  std::size_t best = 0;
  for (std::size_t i = 1; i < all_loads->size(); ++i) {
    if ((*all_loads)[i].second < (*all_loads)[best].second) best = i;
  }
  auto contact = resources_[best].client->submit_job(job);
  if (!contact.ok()) return contact.error();
  Placement placement;
  placement.host = (*all_loads)[best].first;
  placement.load = (*all_loads)[best].second;
  placement.contact = std::move(contact.value());
  return placement;
}

}  // namespace ig::grid
