#include "grid/p2p_discovery.hpp"

#include <algorithm>

#include "common/strings.hpp"
#include "net/traced.hpp"

namespace ig::grid {

std::string serialize_adverts(const std::vector<Advertisement>& adverts) {
  std::string out;
  for (const Advertisement& ad : adverts) {
    out += strings::format("%s\t%s\t%d\t%.6f\t%lld\n", ad.host.c_str(),
                           ad.infogram_address.host.c_str(), ad.infogram_address.port,
                           ad.load, static_cast<long long>(ad.stamped.count()));
  }
  return out;
}

Result<std::vector<Advertisement>> parse_adverts(const std::string& text) {
  std::vector<Advertisement> out;
  for (const auto& line : strings::split(text, '\n')) {
    if (strings::trim(line).empty()) continue;
    auto fields = strings::split(line, '\t');
    if (fields.size() != 5) {
      return Error(ErrorCode::kParseError, "malformed advert line: " + line);
    }
    Advertisement ad;
    ad.host = fields[0];
    ad.infogram_address.host = fields[1];
    auto port = strings::parse_int(fields[2]);
    auto load = strings::parse_double(fields[3]);
    auto stamped = strings::parse_int(fields[4]);
    if (!port || !load || !stamped) {
      return Error(ErrorCode::kParseError, "malformed advert fields: " + line);
    }
    ad.infogram_address.port = static_cast<int>(*port);
    ad.load = *load;
    ad.stamped = TimePoint(*stamped);
    out.push_back(std::move(ad));
  }
  return out;
}

DiscoveryPeer::DiscoveryPeer(net::Network& network, Clock& clock, std::string host,
                             net::Address infogram_address, std::function<double()> load_fn,
                             GossipConfig config, std::uint64_t seed)
    : network_(network),
      clock_(clock),
      host_(std::move(host)),
      infogram_address_(std::move(infogram_address)),
      load_fn_(std::move(load_fn)),
      config_(config),
      rng_(seed) {
  {
    MutexLock lock(mu_);
    refresh_self_locked();
  }
  (void)network_.listen(gossip_address(),
                        [this](const net::Message& req, net::Session& session) {
                          return handle(req, session);
                        });
}

DiscoveryPeer::~DiscoveryPeer() { network_.close(gossip_address()); }

void DiscoveryPeer::add_neighbor(const net::Address& gossip_address_in) {
  MutexLock lock(mu_);
  for (const auto& existing : neighbors_) {
    if (existing == gossip_address_in) return;
  }
  neighbors_.push_back(gossip_address_in);
}

void DiscoveryPeer::refresh_self_locked() {
  Advertisement self;
  self.host = host_;
  self.infogram_address = infogram_address_;
  self.load = load_fn_ ? load_fn_() : 0.0;
  self.stamped = clock_.now();
  adverts_[host_] = std::move(self);
}

void DiscoveryPeer::expire_locked(TimePoint now) {
  for (auto it = adverts_.begin(); it != adverts_.end();) {
    if (it->first != host_ && now - it->second.stamped > config_.advert_ttl) {
      it = adverts_.erase(it);
    } else {
      ++it;
    }
  }
}

std::string DiscoveryPeer::serialize_view() const {
  std::vector<Advertisement> snapshot;
  snapshot.reserve(adverts_.size());
  for (const auto& [host, ad] : adverts_) snapshot.push_back(ad);
  return serialize_adverts(snapshot);
}

void DiscoveryPeer::merge_adverts(const std::string& body) {
  auto incoming = parse_adverts(body);
  if (!incoming.ok()) return;  // drop malformed gossip, epidemic style
  MutexLock lock(mu_);
  for (auto& ad : incoming.value()) {
    auto it = adverts_.find(ad.host);
    if (it == adverts_.end() || ad.stamped > it->second.stamped) {
      adverts_[ad.host] = std::move(ad);
    }
  }
}

void DiscoveryPeer::set_telemetry(std::shared_ptr<obs::Telemetry> telemetry) {
  telemetry_ = std::move(telemetry);
}

net::Message DiscoveryPeer::handle(const net::Message& request, net::Session& session) {
  return net::serve_traced(telemetry_, request.verb, request, session,
                           [this](const net::Message& req, net::Session& s) {
                             return serve(req, s);
                           });
}

net::Message DiscoveryPeer::serve(const net::Message& request, net::Session&) {
  if (request.verb != "GOSSIP") {
    return net::Message::error(
        Error(ErrorCode::kInvalidArgument, "discovery peer speaks GOSSIP only"));
  }
  merge_adverts(request.body);
  MutexLock lock(mu_);
  refresh_self_locked();
  expire_locked(clock_.now());
  // Pull half of push-pull: answer with our merged view.
  return net::Message::ok(serialize_view());
}

void DiscoveryPeer::tick() {
  // One round = one trace: each exchange below contributes connect + rpc
  // hop spans, and contacted peers' serving spans stitch in via backhaul.
  obs::ScopedTrace round(telemetry_, "gossip.round");
  std::vector<net::Address> targets;
  std::string view_body;
  {
    MutexLock lock(mu_);
    refresh_self_locked();
    expire_locked(clock_.now());
    // Gossip targets: configured neighbours plus any peer we learned of.
    std::vector<net::Address> candidates = neighbors_;
    for (const auto& [host, ad] : adverts_) {
      if (host == host_) continue;
      candidates.push_back({ad.host, config_.gossip_port});
    }
    // Dedup.
    std::sort(candidates.begin(), candidates.end());
    candidates.erase(std::unique(candidates.begin(), candidates.end()), candidates.end());
    for (int i = 0; i < config_.fanout && !candidates.empty(); ++i) {
      auto index = static_cast<std::size_t>(
          rng_.uniform_int(0, static_cast<std::int64_t>(candidates.size()) - 1));
      targets.push_back(candidates[index]);
      candidates.erase(candidates.begin() + static_cast<std::ptrdiff_t>(index));
    }
    view_body = serialize_view();
  }
  for (const auto& target : targets) {
    auto conn = network_.connect(target);
    if (!conn.ok()) continue;  // unreachable peers just miss this round
    messages_sent_.fetch_add(1, std::memory_order_relaxed);
    auto resp = (*conn)->request(net::Message("GOSSIP", view_body));
    if (resp.ok() && !resp->is_error()) merge_adverts(resp->body);
  }
}

std::vector<Advertisement> DiscoveryPeer::view() const {
  MutexLock lock(mu_);
  std::vector<Advertisement> out;
  TimePoint now = clock_.now();
  for (const auto& [host, ad] : adverts_) {
    if (host == host_ || now - ad.stamped <= config_.advert_ttl) out.push_back(ad);
  }
  return out;
}

Result<Advertisement> DiscoveryPeer::lookup(const std::string& host) const {
  MutexLock lock(mu_);
  auto it = adverts_.find(host);
  if (it == adverts_.end()) return Error(ErrorCode::kNotFound, "unknown peer: " + host);
  if (host != host_ && clock_.now() - it->second.stamped > config_.advert_ttl) {
    return Error(ErrorCode::kStale, "advert expired: " + host);
  }
  return it->second;
}

}  // namespace ig::grid
